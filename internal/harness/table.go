// Package harness regenerates every table and figure of the paper's
// evaluation as plain-text tables: Figure 3 (put/get vs distance),
// Table 1 (model parameters via calibration), Figure 4 (MPB contention),
// Figure 6 (modeled broadcast latency), Table 2 (modeled throughput),
// Figure 8a/8b (measured broadcast latency/throughput), the §3.3
// mesh-stress experiment, the §6.2.1 headline numbers, and the design
// ablations DESIGN.md calls out — plus the repo's beyond-the-paper
// experiments: fig-allreduce (one-sided vs two-sided allreduce, §7) and
// fig-scale (model vs simulation on parametric meshes up to 384 cores).
//
// Experiments are registered by name in Registry and rendered as Tables;
// sweeps shard their cells across ParallelMap workers without changing
// any simulated timing. See ARCHITECTURE.md for how to plug in a new
// experiment.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row formatted from arbitrary values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n%s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}
