package ocbcast_test

import (
	"bytes"
	"math/rand"
	"testing"

	ocbcast "repro"
)

// Randomized conformance suite for the non-blocking collectives: for
// random topologies, core counts, roots, payload sizes, chunk sizes,
// fan-outs and reduction ops, every blocking collective and its
// non-blocking twin (issue + immediate Wait) must produce identical
// buffer contents on every core AND identical per-core simulated
// completion times after every operation. The suite is seeded, so CI
// runs are deterministic.

// conformanceTrial is one randomized configuration of the suite.
type conformanceTrial struct {
	meshW, meshH int
	cores        int
	k            int
	chunkLines   int
	doubleBuf    bool
	root         int
	lines        int
	opName       string
	op           ocbcast.ReduceOp
}

// drawTrial derives a trial from the seeded rng, cycling through the
// topology set so every topology is exercised regardless of trial count.
func drawTrial(rng *rand.Rand, idx int) conformanceTrial {
	topos := [][2]int{{6, 4}, {3, 2}, {8, 8}, {5, 3}}
	tp := topos[idx%len(topos)]
	maxCores := tp[0] * tp[1] * 2
	if maxCores > 32 {
		maxCores = 32 // bound simulation cost on the big meshes
	}
	n := 2 + rng.Intn(maxCores-1)
	tr := conformanceTrial{
		meshW:      tp[0],
		meshH:      tp[1],
		cores:      n,
		k:          []int{2, 3, 7}[rng.Intn(3)],
		chunkLines: []int{2, 4, 96}[rng.Intn(3)],
		doubleBuf:  rng.Intn(4) != 0,
		root:       rng.Intn(n),
		lines:      1 + rng.Intn(13),
	}
	if rng.Intn(2) == 0 {
		tr.opName, tr.op = "sum", ocbcast.SumInt64
	} else {
		tr.opName, tr.op = "max", ocbcast.MaxInt64
	}
	return tr
}

// runConformanceTrial runs all six collective pairs once on the trial's
// chip in one simulation, either blocking or issue+Wait, and returns the
// per-op per-core completion times plus every core's final private
// memory image.
func runConformanceTrial(tr conformanceTrial, blobs [][]byte, nonblocking bool) ([][]float64, [][]byte) {
	opts := ocbcast.Options{
		K:                   tr.k,
		ChunkLines:          tr.chunkLines,
		Cores:               tr.cores,
		DisableDoubleBuffer: !tr.doubleBuf,
	}
	if tr.meshW != 6 || tr.meshH != 4 {
		opts.MeshWidth, opts.MeshHeight = tr.meshW, tr.meshH
	}
	sys := ocbcast.New(opts)
	for i := 0; i < tr.cores; i++ {
		sys.WritePrivate(i, 0, blobs[i])
	}

	n, lines, root, op := tr.cores, tr.lines, tr.root, tr.op
	lineBytes := lines * ocbcast.CacheLineBytes
	// Region layout: one buffer per collective so results don't clobber
	// each other's inputs across ops.
	addrB, addrR, addrA := 0, lineBytes, 2*lineBytes
	addrS := 3 * lineBytes          // P blocks (scatter)
	addrG := (3 + n) * lineBytes    // P blocks (gather)
	addrAG := (3 + 2*n) * lineBytes // P blocks (allgather)
	total := (3 + 3*n) * lineBytes  // == len(blobs[i])

	const numOps = 6
	times := make([][]float64, numOps)
	for i := range times {
		times[i] = make([]float64, n)
	}
	sys.Run(func(c *ocbcast.Core) {
		do := func(idx int, blocking func(), issue func() *ocbcast.Request) {
			c.Barrier()
			if nonblocking {
				issue().Wait()
			} else {
				blocking()
			}
			times[idx][c.ID()] = c.NowMicros()
		}
		do(0, func() { c.BcastOC(root, addrB, lines) },
			func() *ocbcast.Request { return c.IBcastOC(root, addrB, lines) })
		do(1, func() { c.ReduceOC(root, addrR, lines, op) },
			func() *ocbcast.Request { return c.IReduceOC(root, addrR, lines, op) })
		do(2, func() { c.AllReduceOC(addrA, lines, op) },
			func() *ocbcast.Request { return c.IAllReduceOC(addrA, lines, op) })
		do(3, func() { c.ScatterOC(root, addrS, lines) },
			func() *ocbcast.Request { return c.IScatterOC(root, addrS, lines) })
		do(4, func() { c.GatherOC(root, addrG, lines) },
			func() *ocbcast.Request { return c.IGatherOC(root, addrG, lines) })
		do(5, func() { c.AllGatherOC(addrAG, lines) },
			func() *ocbcast.Request { return c.IAllGatherOC(addrAG, lines) })
	})

	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = sys.ReadPrivate(i, 0, total)
	}
	return times, bufs
}

// TestConformanceBlockingVsNonBlocking is the randomized suite entry
// point. 16 seeded trials cover 4 topologies × random (cores, root,
// size, chunking, fan-out, op); each trial runs all six collective pairs.
func TestConformanceBlockingVsNonBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	trials := 16
	if testing.Short() {
		trials = 8
	}
	opNames := []string{"BcastOC", "ReduceOC", "AllReduceOC", "ScatterOC", "GatherOC", "AllGatherOC"}
	for idx := 0; idx < trials; idx++ {
		tr := drawTrial(rng, idx)
		total := (3 + 3*tr.cores) * tr.lines * ocbcast.CacheLineBytes
		blobs := make([][]byte, tr.cores)
		for i := range blobs {
			blobs[i] = make([]byte, total)
			rng.Read(blobs[i])
		}
		bt, bb := runConformanceTrial(tr, blobs, false)
		nt, nb := runConformanceTrial(tr, blobs, true)
		for opIdx := range bt {
			for core := 0; core < tr.cores; core++ {
				if bt[opIdx][core] != nt[opIdx][core] {
					t.Errorf("trial %d (%dx%d n=%d k=%d chunk=%d db=%v root=%d lines=%d op=%s): %s core %d completed at %v µs blocking vs %v µs issue+Wait",
						idx, tr.meshW, tr.meshH, tr.cores, tr.k, tr.chunkLines, tr.doubleBuf,
						tr.root, tr.lines, tr.opName, opNames[opIdx], core, bt[opIdx][core], nt[opIdx][core])
				}
			}
		}
		for core := 0; core < tr.cores; core++ {
			if !bytes.Equal(bb[core], nb[core]) {
				t.Errorf("trial %d: core %d final memory differs between blocking and issue+Wait", idx, core)
			}
		}
		if t.Failed() {
			t.Fatalf("stopping after first failing trial %d", idx)
		}
	}
}
