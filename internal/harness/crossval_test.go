package harness

import (
	"testing"

	"repro/internal/model"
	"repro/internal/scc"
)

// TestModelSimulationCrossValidation mirrors the paper's §6.3 comparison:
// the analytical model (which assumes distance-1 hops everywhere) should
// track the simulated measurements closely, with the simulation somewhat
// slower because real placements are farther than one hop. We accept
// sim/model within [0.9, 1.8] for OC-Bcast across sizes and fan-outs in
// the contention-safe regime.
func TestModelSimulationCrossValidation(t *testing.T) {
	cfg := scc.DefaultConfig()
	mdl := model.New(cfg.Params)
	bp := model.DefaultBcastParams()
	var cells []LatencyCell
	for _, k := range []int{2, 7} {
		for _, lines := range []int{1, 16, 96, 192} {
			cells = append(cells, LatencyCell{Alg: Alg{Name: "oc", K: k}, Lines: lines, Reps: 2})
		}
	}
	sims := MeanLatencyGrid(cfg, scc.NumCores, cells)
	for i, c := range cells {
		pred := mdl.OCBcastLatency(bp, c.Lines, c.Alg.K).Microseconds()
		ratio := sims[i] / pred
		if ratio < 0.9 || ratio > 1.8 {
			t.Errorf("k=%d m=%d: sim %.2fµs vs model %.2fµs (ratio %.2f outside [0.9,1.8])",
				c.Alg.K, c.Lines, sims[i], pred, ratio)
		}
	}
}

// TestModelSimulationThroughputCrossValidation: measured peak throughput
// within 15% of Formula 15 for contention-safe k.
func TestModelSimulationThroughputCrossValidation(t *testing.T) {
	cfg := scc.DefaultConfig()
	mdl := model.New(cfg.Params)
	pred := model.LinesPerSecToMBps(mdl.OCBcastThroughput(model.DefaultBcastParams()))
	const lines = 8192
	meas := ThroughputMBps(lines, MeanLatency(cfg, Alg{Name: "oc", K: 7}, scc.NumCores, lines, 2))
	if meas < 0.85*pred || meas > 1.05*pred {
		t.Errorf("measured peak %.2f MB/s vs Formula 15's %.2f MB/s (outside [0.85,1.05])", meas, pred)
	}
}

// TestOCReduceModelCrossValidation: the internal/model closed form for
// OC-Reduce must be within 15% of the simulated contention-free latency
// (the new subsystem's acceptance bar), across fan-outs and sizes.
func TestOCReduceModelCrossValidation(t *testing.T) {
	cfg := scc.DefaultConfig()
	cfg.Contention.Enabled = false
	mdl := model.New(cfg.Params)
	rp := model.DefaultReduceParams()
	var cells []AllReduceCell
	for _, k := range []int{2, 3, 7} {
		for _, lines := range []int{1, 16, 96, 256, 1024} {
			cells = append(cells, AllReduceCell{Variant: VariantOC, K: k, Lines: lines, Reps: 2, ReduceOnly: true})
		}
	}
	sims := MeanAllReduceGrid(cfg, scc.NumCores, cells)
	for i, c := range cells {
		pred := mdl.OCReduceLatency(rp, c.Lines, c.K).Microseconds()
		ratio := sims[i] / pred
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("reduce k=%d m=%d: sim %.2fµs vs model %.2fµs (ratio %.2f outside [0.85,1.15])",
				c.K, c.Lines, sims[i], pred, ratio)
		}
	}
}

// TestOCAllReduceModelCrossValidation: same bar for the fused allreduce.
func TestOCAllReduceModelCrossValidation(t *testing.T) {
	cfg := scc.DefaultConfig()
	cfg.Contention.Enabled = false
	mdl := model.New(cfg.Params)
	rp := model.DefaultReduceParams()
	var cells []AllReduceCell
	for _, k := range []int{2, 3, 7} {
		for _, lines := range []int{1, 96, 1024} {
			cells = append(cells, AllReduceCell{Variant: VariantOC, K: k, Lines: lines, Reps: 2})
		}
	}
	sims := MeanAllReduceGrid(cfg, scc.NumCores, cells)
	for i, c := range cells {
		pred := mdl.OCAllReduceLatency(rp, c.Lines, c.K).Microseconds()
		ratio := sims[i] / pred
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("allreduce k=%d m=%d: sim %.2fµs vs model %.2fµs (ratio %.2f outside [0.85,1.15])",
				c.K, c.Lines, sims[i], pred, ratio)
		}
	}
}

// TestAllReduceOneSidedBeatsTwoSided pins the subsystem's headline: at 48
// cores and payloads >= 8 KiB, OC-AllReduce must beat the two-sided
// Reduce+Bcast composition for every measured fan-out.
func TestAllReduceOneSidedBeatsTwoSided(t *testing.T) {
	cfg := scc.DefaultConfig()
	for _, lines := range []int{256, 1024} { // 8 KiB, 32 KiB
		two := MeanAllReduce(cfg, VariantTwoSided, 7, scc.NumCores, lines, 2)
		for _, k := range []int{2, 3, 7} {
			oc := MeanAllReduce(cfg, VariantOC, k, scc.NumCores, lines, 2)
			if oc >= two {
				t.Errorf("m=%d k=%d: OC-AllReduce %.2fµs not faster than two-sided %.2fµs",
					lines, k, oc, two)
			}
		}
	}
}
