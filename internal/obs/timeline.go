package obs

import "fmt"

// ResClass says what kind of hardware resource a ResUsage row describes.
type ResClass uint8

// Resource classes reported by Timeline.Resources.
const (
	// ResMPBPort is one tile's message-passing-buffer port.
	ResMPBPort ResClass = iota
	// ResNoCLink is one directed mesh link (detailed NoC model only).
	ResNoCLink
	// ResMemory is the off-chip memory path of one core.
	ResMemory
)

// String names the resource class.
func (c ResClass) String() string {
	switch c {
	case ResMPBPort:
		return "mpb-port"
	case ResNoCLink:
		return "noc-link"
	default:
		return "memory"
	}
}

// ResUsage is the cumulative utilization of one simulated resource,
// gathered after a run from the FIFO servers' own counters.
type ResUsage struct {
	Class        ResClass
	Name         string
	Reservations int64
	Units        int64
	Busy         Time // total time the server was serving
	Queued       Time // total time reservations spent waiting
}

// Utilization reports Busy as a fraction of the elapsed horizon.
func (u ResUsage) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(u.Busy) / float64(horizon)
}

// Timeline is the complete observability record of one simulation run:
// the ordered event stream, the end-of-run resource usage snapshot, and
// the simulated horizon.
type Timeline struct {
	NCores    int
	Events    []Event
	Resources []ResUsage
	// End is the simulated end of the run: the maximum event timestamp.
	End Time
}

// Capture freezes a recorder's stream into a Timeline. The recorder
// stays usable; subsequent events are not reflected in the capture.
func Capture(r *Recorder, ncores int, resources []ResUsage) *Timeline {
	tl := &Timeline{NCores: ncores, Events: r.events, Resources: resources}
	for _, ev := range tl.Events {
		if ev.Time > tl.End {
			tl.End = ev.Time
		}
	}
	return tl
}

// CoreAttribution is one core's simulated time split into buckets.
// Buckets sum exactly to Total by construction (see Attribution).
type CoreAttribution struct {
	Core    int
	Total   Time
	Buckets [NumBuckets]Time
}

// Attribution computes the per-core time breakdown from the span
// stream. Each core's track is replayed with a cursor and a stack of
// open synchronous spans: the interval between consecutive events is
// charged to the innermost open span's bucket, or BucketOther when no
// span is open. The cursor starts at 0 and ends at the core's last
// event, so a core's buckets always sum exactly to its Total.
//
// Emitters put the span structure to work: waiting ops (WaitFlag) open
// their span *before* blocking and close it after waking, so blocked
// time lands in BucketWait; transfer ops open after argument validation
// and close at completion, so queueing inside the op is charged to the
// op's bucket. Container spans (API-level collectives) only claim time
// their leaf spans leave uncovered.
func (tl *Timeline) Attribution() []CoreAttribution {
	out := make([]CoreAttribution, tl.NCores)
	cursor := make([]Time, tl.NCores)
	stacks := make([][]Bucket, tl.NCores)
	for i := range out {
		out[i].Core = i
	}
	for _, ev := range tl.Events {
		c := int(ev.Core)
		if c < 0 || c >= tl.NCores {
			continue
		}
		a := &out[c]
		if d := ev.Time - cursor[c]; d > 0 {
			b := BucketOther
			if n := len(stacks[c]); n > 0 {
				b = stacks[c][n-1]
			}
			a.Buckets[b] += d
			a.Total += d
		}
		cursor[c] = ev.Time
		switch ev.Kind {
		case KindBegin:
			stacks[c] = append(stacks[c], ev.Bucket)
		case KindEnd:
			if n := len(stacks[c]); n > 0 {
				stacks[c] = stacks[c][:n-1]
			}
		}
	}
	return out
}

// Validate checks the structural invariants every emitter must uphold:
// per-core nondecreasing timestamps, balanced and properly nested
// Begin/End pairs, and matched async begin/end ids. It returns the
// first violation found, or nil.
func (tl *Timeline) Validate() error {
	last := make([]Time, tl.NCores)
	depth := make([]int, tl.NCores)
	asyncOpen := make(map[int64]Event)
	for i, ev := range tl.Events {
		c := int(ev.Core)
		if c < 0 || c >= tl.NCores {
			return fmt.Errorf("obs: event %d has core %d outside [0,%d)", i, c, tl.NCores)
		}
		if ev.Time < last[c] {
			return fmt.Errorf("obs: event %d (%s) goes back in time on core %d: %d < %d", i, ev, c, ev.Time, last[c])
		}
		last[c] = ev.Time
		switch ev.Kind {
		case KindBegin:
			depth[c]++
		case KindEnd:
			if depth[c] == 0 {
				return fmt.Errorf("obs: event %d: End with no open span on core %d", i, c)
			}
			depth[c]--
		case KindAsyncBegin:
			if prev, dup := asyncOpen[ev.ID]; dup {
				return fmt.Errorf("obs: event %d: async id %d already open (%s)", i, ev.ID, prev)
			}
			asyncOpen[ev.ID] = ev
		case KindAsyncEnd:
			if _, ok := asyncOpen[ev.ID]; !ok {
				return fmt.Errorf("obs: event %d: AsyncEnd for unopened id %d", i, ev.ID)
			}
			delete(asyncOpen, ev.ID)
		}
	}
	for c, d := range depth {
		if d != 0 {
			return fmt.Errorf("obs: core %d ends with %d unclosed span(s)", c, d)
		}
	}
	if len(asyncOpen) != 0 {
		for id, ev := range asyncOpen {
			return fmt.Errorf("obs: async span id %d never closed (%s)", id, ev)
		}
	}
	return nil
}
