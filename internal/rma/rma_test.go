package rma

import (
	"bytes"
	"testing"

	"repro/internal/scc"
	"repro/internal/sim"
)

// contentionFreeCfg returns a config matching the paper's §3.1 analytic
// model exactly (no port queueing, analytic NoC), for cost assertions.
func contentionFreeCfg() scc.Config {
	cfg := scc.DefaultConfig()
	cfg.Contention.Enabled = false
	return cfg
}

func TestPutMemToMPBCostMatchesFormula8(t *testing.T) {
	cfg := contentionFreeCfg()
	cfg.CacheEnabled = false
	chip := NewChipN(cfg, 4)
	p := cfg.Params

	payload := make([]byte, 16*scc.CacheLine)
	for i := range payload {
		payload[i] = byte(i)
	}
	chip.Private(0).Write(0, payload)

	var got sim.Duration
	chip.Run(func(c *Core) {
		if c.ID() != 0 {
			return
		}
		start := c.Now()
		c.PutMemToMPB(2, 0, 0, 16)
		got = c.Now() - start
	})

	m := sim.Duration(16)
	dsrc := sim.Duration(scc.MemDistance(0))
	ddst := sim.Duration(scc.CoreDistance(0, 2))
	want := p.OMemPut +
		m*(p.OMemR+2*dsrc*p.Lhop) + // m * Cmem_r(dsrc)
		m*(p.OMpb+2*ddst*p.Lhop) // m * Cmpb_w(ddst)
	if got != want {
		t.Fatalf("put completion = %v, want %v (Formula 8)", got, want)
	}

	// Data integrity at the destination MPB.
	mpb := chip.MPB(2)
	for i := 0; i < 16; i++ {
		line := mpb.ReadLine(i, 1<<62)
		if !bytes.Equal(line, payload[i*scc.CacheLine:(i+1)*scc.CacheLine]) {
			t.Fatalf("line %d corrupted", i)
		}
	}
}

func TestGetMPBToMPBCostMatchesFormula11(t *testing.T) {
	cfg := contentionFreeCfg()
	chip := NewChipN(cfg, 6)
	p := cfg.Params

	var got sim.Duration
	chip.Run(func(c *Core) {
		switch c.ID() {
		case 4: // read 8 lines from core 0's MPB
			start := c.Now()
			c.GetMPBToMPB(0, 0, 0, 8)
			got = c.Now() - start
		}
	})
	m := sim.Duration(8)
	d := sim.Duration(scc.CoreDistance(4, 0))
	want := p.OMpbGet +
		m*(p.OMpb+2*d*p.Lhop) + // m * Cmpb_r(d)
		m*(p.OMpb+2*p.Lhop) // m * Cmpb_w(1)
	if got != want {
		t.Fatalf("get completion = %v, want %v (Formula 11)", got, want)
	}
}

func TestGetMPBToMemCostMatchesFormula12(t *testing.T) {
	cfg := contentionFreeCfg()
	chip := NewChipN(cfg, 4)
	p := cfg.Params

	var got sim.Duration
	chip.Run(func(c *Core) {
		if c.ID() != 3 {
			return
		}
		start := c.Now()
		c.GetMPBToMem(1, 0, 0, 4)
		got = c.Now() - start
	})
	m := sim.Duration(4)
	d := sim.Duration(scc.CoreDistance(3, 1))
	dm := sim.Duration(scc.MemDistance(3))
	want := p.OMemGet +
		m*(p.OMpb+2*d*p.Lhop) + // m * Cmpb_r(d)
		m*(p.OMemW+2*dm*p.Lhop) // m * Cmem_w(dmem)
	if got != want {
		t.Fatalf("get-to-mem completion = %v, want %v (Formula 12)", got, want)
	}
}

func TestPutMPBToMPBCostMatchesFormula7(t *testing.T) {
	cfg := contentionFreeCfg()
	chip := NewChipN(cfg, 8)
	p := cfg.Params

	var got sim.Duration
	chip.Run(func(c *Core) {
		if c.ID() != 0 {
			return
		}
		start := c.Now()
		c.PutMPBToMPB(7, 16, 0, 12)
		got = c.Now() - start
	})
	m := sim.Duration(12)
	d := sim.Duration(scc.CoreDistance(0, 7))
	want := p.OMpbPut +
		m*(p.OMpb+2*p.Lhop) + // m * Cmpb_r(1): source is the local MPB
		m*(p.OMpb+2*d*p.Lhop) // m * Cmpb_w(d)
	if got != want {
		t.Fatalf("put mpb->mpb completion = %v, want %v (Formula 7)", got, want)
	}
}

// TestEndToEndTransfer moves a payload private->MPB->MPB->private across
// three cores and checks byte integrity, mirroring one OC-Bcast hop.
func TestEndToEndTransfer(t *testing.T) {
	chip := NewChipN(scc.DefaultConfig(), 8)
	payload := make([]byte, 32*scc.CacheLine)
	for i := range payload {
		payload[i] = byte(i*13 + 7)
	}
	chip.Private(0).Write(1024, payload)

	const flagLine = 200
	chip.Run(func(c *Core) {
		switch c.ID() {
		case 0:
			c.PutMemToMPB(0, 0, 1024, 32) // stage in own MPB
			c.SetFlag(5, flagLine, 1)
		case 5:
			c.WaitFlagGE(flagLine, 1)
			c.GetMPBToMPB(0, 0, 0, 32)
			c.SetFlag(7, flagLine, 1)
		case 7:
			c.WaitFlagGE(flagLine, 1)
			c.GetMPBToMem(5, 0, 2048, 32)
		}
	})
	got := make([]byte, len(payload))
	chip.Private(7).Read(got, 2048, len(got))
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across private->MPB->MPB->private chain")
	}
	// Wait: core 7 copied from core 5's MPB before core 5 wrote it? The
	// flag protocol must prevent that; reaching here with intact bytes
	// proves causality held.
}

// TestFlagCausality: a waiter must never observe the flag before the
// data put that preceded the flag set becomes visible.
func TestFlagCausality(t *testing.T) {
	chip := NewChipN(scc.DefaultConfig(), 2)
	data := bytes.Repeat([]byte{0xEE}, scc.CacheLine)
	chip.Private(0).Write(0, data)
	var seen byte
	chip.Run(func(c *Core) {
		switch c.ID() {
		case 0:
			c.PutMemToMPB(1, 0, 0, 1)
			c.SetFlag(1, 10, 42)
		case 1:
			c.WaitFlagGE(10, 42)
			line := c.Chip().MPB(1).ReadLine(0, c.Now())
			seen = line[0]
		}
	})
	if seen != 0xEE {
		t.Fatalf("waiter saw stale data %#x after flag", seen)
	}
}

func TestCacheReducesPutCost(t *testing.T) {
	cfg := contentionFreeCfg()
	cfg.CacheEnabled = true
	chip := NewChipN(cfg, 2)
	chip.Private(0).Write(0, make([]byte, 8*scc.CacheLine))

	var cold, warm sim.Duration
	chip.Run(func(c *Core) {
		if c.ID() != 0 {
			return
		}
		t0 := c.Now()
		c.PutMemToMPB(1, 0, 0, 8)
		cold = c.Now() - t0
		t1 := c.Now()
		c.PutMemToMPB(1, 0, 0, 8) // same source lines: all L1 hits
		warm = c.Now() - t1
	})
	p := cfg.Params
	dm := sim.Duration(scc.MemDistance(0))
	wantDiff := 8 * (p.OMemR + 2*dm*p.Lhop)
	if cold-warm != wantDiff {
		t.Fatalf("cache saving = %v, want %v (8 x Cmem_r)", cold-warm, wantDiff)
	}
	if chip.Counter[0].CacheHitLines != 8 {
		t.Fatalf("cache hits = %d, want 8", chip.Counter[0].CacheHitLines)
	}
}

func TestPortContentionDelaysConcurrentGets(t *testing.T) {
	// With contention on, 40 cores getting 128 lines from core 0's MPB
	// must finish later on average than a single core doing the same.
	const iters = 10 // sustained pressure, as in the paper's loops
	single := func() sim.Duration {
		chip := NewChipN(scc.DefaultConfig(), 48)
		var d sim.Duration
		chip.Run(func(c *Core) {
			if c.ID() == 24 {
				t0 := c.Now()
				for i := 0; i < iters; i++ {
					c.GetMPBToMPB(0, 0, 0, 128)
				}
				d = (c.Now() - t0) / iters
			}
		})
		return d
	}()

	chip := NewChipN(scc.DefaultConfig(), 48)
	finish := make([]sim.Duration, 48)
	chip.Run(func(c *Core) {
		if c.ID() == 0 {
			return
		}
		t0 := c.Now()
		for i := 0; i < iters; i++ {
			c.GetMPBToMPB(0, 0, 0, 128)
		}
		finish[c.ID()] = (c.Now() - t0) / iters
	})
	var slowest sim.Duration
	for _, f := range finish[1:] {
		if f > slowest {
			slowest = f
		}
	}
	if slowest <= single {
		t.Fatalf("47-way concurrent get slowest %v not slower than solo %v", slowest, single)
	}
	if slowest < 2*single {
		t.Errorf("contention too weak: slowest %v < 2x solo %v (paper: >2x)", slowest, single)
	}
}

func TestCountersTrackTraffic(t *testing.T) {
	chip := NewChipN(scc.DefaultConfig(), 2)
	chip.Private(0).Write(0, make([]byte, 4*scc.CacheLine))
	chip.Run(func(c *Core) {
		switch c.ID() {
		case 0:
			c.PutMemToMPB(1, 0, 0, 4)
			c.SetFlag(1, 20, 1)
		case 1:
			c.WaitFlagGE(20, 1)
			c.GetMPBToMem(1, 0, 0, 4)
		}
	})
	c0, c1 := chip.Counter[0], chip.Counter[1]
	if c0.MemReadLines != 4 || c0.MPBWriteLines != 5 { // 4 data + 1 flag
		t.Fatalf("core0 counters wrong: %v", c0)
	}
	if c0.FlagSets != 1 || c0.PutOps != 1 {
		t.Fatalf("core0 op counts wrong: %v", c0)
	}
	if c1.MPBReadLines != 5 || c1.MemWriteLines != 4 { // 4 data + 1 flag wait read
		t.Fatalf("core1 counters wrong: %v", c1)
	}
	if c1.FlagWaits != 1 || c1.GetOps != 1 {
		t.Fatalf("core1 op counts wrong: %v", c1)
	}
}

func TestChipValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("0 cores", func() { NewChipN(scc.DefaultConfig(), 0) })
	mustPanic("49 cores", func() { NewChipN(scc.DefaultConfig(), 49) })
	bad := scc.DefaultConfig()
	bad.Params.Lhop = 0
	mustPanic("bad config", func() { NewChipN(bad, 2) })
	mustPanic("misaligned addr", func() {
		chip := NewChipN(scc.DefaultConfig(), 1)
		chip.Run(func(c *Core) { c.PutMemToMPB(0, 0, 7, 1) })
	})
	mustPanic("zero lines", func() {
		chip := NewChipN(scc.DefaultConfig(), 1)
		chip.Run(func(c *Core) { c.GetMPBToMPB(0, 0, 0, 0) })
	})
}

func TestDetailedNoCMatchesAnalyticWhenIdle(t *testing.T) {
	// On an idle mesh, detailed mode must not slow anything down:
	// Lhop >= LinkSvc so the analytic path cost dominates.
	run := func(mode scc.NoCMode) sim.Duration {
		cfg := contentionFreeCfg()
		cfg.NoC = mode
		chip := NewChipN(cfg, 48)
		var d sim.Duration
		chip.Run(func(c *Core) {
			if c.ID() == 47 {
				t0 := c.Now()
				c.GetMPBToMPB(0, 0, 0, 64)
				d = c.Now() - t0
			}
		})
		return d
	}
	a, det := run(scc.NoCAnalytic), run(scc.NoCDetailed)
	if a != det {
		t.Fatalf("idle-mesh detailed mode changed latency: analytic %v vs detailed %v", a, det)
	}
}
