package scc

import (
	"fmt"
	"strconv"
)

// Topology is the chip geometry as a first-class value: a w×h tile mesh
// with a fixed number of cores per tile, a per-core MPB share, and the
// router positions of the off-chip memory controllers. The zero value is
// invalid; construct topologies with SCC (the paper-faithful 6×4 chip) or
// Mesh (an arbitrary grid of SCC-style tiles).
//
// Everything downstream — X-Y routing, hop costs, MPB addressing, the
// closed-form model's distance terms — is derived from a Topology, so
// experiments can scale the chip beyond the real SCC's 48 cores without
// touching any other layer.
type Topology struct {
	// W and H are the mesh dimensions in tiles: x ∈ [0,W), y ∈ [0,H).
	W, H int
	// TileCores is the number of cores sharing each tile (the SCC has 2).
	TileCores int
	// MPBLines is each core's share of its tile's Message Passing Buffer,
	// in 32-byte cache lines (the SCC has 256 = 8 KB per core).
	MPBLines int
	// Controllers are the router positions the off-chip memory
	// controllers attach to. A core uses its nearest controller
	// (Manhattan distance, earlier entries winning ties) — on the real
	// SCC's 6×4 grid this reproduces the quadrant LUT configuration
	// exactly.
	Controllers []Coord
}

// SCC returns the paper-faithful topology of the real chip: 24 tiles in a
// 6×4 grid, two cores per tile, 8 KB of MPB per core, and four DDR3
// controllers at tiles (0,0), (5,0), (0,2) and (5,2) (Figure 1).
func SCC() Topology { return Mesh(MeshWidth, MeshHeight) }

// Mesh returns a topology of w×h SCC-style tiles: two cores per tile,
// 8 KB of MPB per core, and four memory controllers placed as the SCC
// places them — on the left and right edges, at the bottom row and at row
// h/2. Mesh(6, 4) is exactly SCC(). It panics on non-positive dimensions
// (a programming error, like the other geometry constructors).
func Mesh(w, h int) Topology {
	t := Topology{
		W:         w,
		H:         h,
		TileCores: CoresPerTile,
		MPBLines:  MPBLinesPerCore,
		Controllers: []Coord{
			{X: 0, Y: 0},
			{X: w - 1, Y: 0},
			{X: 0, Y: h / 2},
			{X: w - 1, Y: h / 2},
		},
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// Validate reports an error if the topology is unusable.
func (t Topology) Validate() error {
	if t.W < 1 || t.H < 1 {
		return fmt.Errorf("scc: mesh %dx%d must have positive dimensions", t.W, t.H)
	}
	if t.TileCores < 1 {
		return fmt.Errorf("scc: %d cores per tile must be positive", t.TileCores)
	}
	if t.MPBLines < 1 {
		return fmt.Errorf("scc: %d MPB lines per core must be positive", t.MPBLines)
	}
	if len(t.Controllers) == 0 {
		return fmt.Errorf("scc: topology needs at least one memory controller")
	}
	for _, c := range t.Controllers {
		if !t.Contains(c) {
			return fmt.Errorf("scc: memory controller %v off the %dx%d mesh", c, t.W, t.H)
		}
	}
	return nil
}

// IsZero reports whether t is the zero value (no topology configured).
func (t Topology) IsZero() bool { return t.W == 0 && t.H == 0 }

// String formats the topology like "6x4 mesh (48 cores)".
func (t Topology) String() string {
	return fmt.Sprintf("%dx%d mesh (%d cores)", t.W, t.H, t.NumCores())
}

// NumTiles reports the number of tiles on the mesh.
func (t Topology) NumTiles() int { return t.W * t.H }

// NumCores reports the number of cores on the chip.
func (t Topology) NumCores() int { return t.NumTiles() * t.TileCores }

// MPBBytesPerCore reports each core's MPB share in bytes.
func (t Topology) MPBBytesPerCore() int { return t.MPBLines * CacheLine }

// Contains reports whether the coordinate lies on the mesh.
func (t Topology) Contains(c Coord) bool {
	return c.X >= 0 && c.X < t.W && c.Y >= 0 && c.Y < t.H
}

// TileID converts a coordinate to a tile id in row-major order.
func (t Topology) TileID(c Coord) int { return c.Y*t.W + c.X }

// TileCoord converts a tile id (0..NumTiles-1) to its mesh coordinate.
func (t Topology) TileCoord(tile int) Coord {
	if tile < 0 || tile >= t.NumTiles() {
		panic(fmt.Sprintf("scc: tile id %d out of range [0,%d)", tile, t.NumTiles()))
	}
	return Coord{X: tile % t.W, Y: tile / t.W}
}

// CoreTile reports the tile a core sits on. Cores are numbered so that
// cores c·t..c·t+t-1 share tile c (t = TileCores), matching sccLinux's
// enumeration on the real chip.
func (t Topology) CoreTile(core int) int {
	if core < 0 || core >= t.NumCores() {
		panic(fmt.Sprintf("scc: core id %d out of range [0,%d)", core, t.NumCores()))
	}
	return core / t.TileCores
}

// CoreCoord reports the mesh coordinate of a core's tile.
func (t Topology) CoreCoord(core int) Coord { return t.TileCoord(t.CoreTile(core)) }

// ControllerFor reports the memory controller serving a core: the nearest
// controller by Manhattan distance, with earlier Controllers entries
// winning ties. On the SCC's 6×4 grid the controllers form a {0,5}×{0,2}
// grid, so nearest-controller assignment decomposes into independent x
// and y halves and reproduces the standard quadrant LUT configuration.
func (t Topology) ControllerFor(core int) Coord {
	c := t.CoreCoord(core)
	best := t.Controllers[0]
	bestD := abs(c.X-best.X) + abs(c.Y-best.Y)
	for _, ctl := range t.Controllers[1:] {
		if d := abs(c.X-ctl.X) + abs(c.Y-ctl.Y); d < bestD {
			best, bestD = ctl, d
		}
	}
	return best
}

// CoreDistance is the router hop distance between two cores' tiles.
func (t Topology) CoreDistance(a, b int) int {
	return HopDistance(t.CoreCoord(a), t.CoreCoord(b))
}

// MemDistance is the hop distance from a core to its memory controller.
func (t Topology) MemDistance(core int) int {
	return HopDistance(t.CoreCoord(core), t.ControllerFor(core))
}

// XYPath returns the ordered list of directed links a packet traverses
// from src to dst under X-Y routing (X first, then Y). The path is empty
// when src == dst (local router only).
func (t Topology) XYPath(src, dst Coord) []Link {
	if !t.Contains(src) || !t.Contains(dst) {
		panic(fmt.Sprintf("scc: XYPath with off-mesh coordinate %v -> %v on %v", src, dst, t))
	}
	var path []Link
	cur := src
	for cur.X != dst.X {
		next := cur
		if dst.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		path = append(path, Link{From: cur, To: next})
		cur = next
	}
	for cur.Y != dst.Y {
		next := cur
		if dst.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		path = append(path, Link{From: cur, To: next})
		cur = next
	}
	return path
}

// Fingerprint returns a compact string identifying the topology exactly
// — geometry, per-tile cores, MPB share, and controller placement. It
// serves as a map key for caches keyed on topology, which Topology
// itself cannot be (Controllers is a slice).
func (t Topology) Fingerprint() string {
	b := make([]byte, 0, 32)
	b = strconv.AppendInt(b, int64(t.W), 10)
	b = append(b, 'x')
	b = strconv.AppendInt(b, int64(t.H), 10)
	b = append(b, 't')
	b = strconv.AppendInt(b, int64(t.TileCores), 10)
	b = append(b, 'm')
	b = strconv.AppendInt(b, int64(t.MPBLines), 10)
	for _, c := range t.Controllers {
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(c.X), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(c.Y), 10)
	}
	return string(b)
}
