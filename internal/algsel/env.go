package algsel

import (
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/occoll"
	"repro/internal/rcce"
	"repro/internal/rma"
)

// Env is the per-core execution environment algorithms run on: the RMA
// core, the two-sided port and collective layer, and lazily built
// one-sided state per (K, chunk) configuration. Create one per core
// inside Chip.Run (NewEnv); the public API attaches the core's existing
// occoll engine and OC-Bcast broadcaster so registry-routed calls share
// lane state (and therefore simulated timing) with the named methods.
type Env struct {
	Core *rma.Core
	Port *rcce.Port
	Comm *collective.Comm
	// Base is the configured one-sided parameter set (Options K, chunk,
	// channels); choices resolve against it with cfgFor.
	Base core.Config

	defaultOC *occoll.Collectives
	defaultBC *core.Broadcaster
	ocs       map[ocKey]*occoll.Collectives
	bcs       map[ocKey]*core.Broadcaster
}

// ocKey identifies one resolved one-sided configuration.
type ocKey struct{ k, chunk int }

// NewEnv builds the environment for one core. defaultOC and defaultBC
// may be nil; they are the instances to reuse when a choice resolves to
// the base configuration — passing the public Core's own engine keeps
// registry-routed calls byte-identical to the named methods.
func NewEnv(c *rma.Core, port *rcce.Port, base core.Config,
	defaultOC *occoll.Collectives, defaultBC *core.Broadcaster) *Env {
	if defaultBC != nil {
		// In mixed one-/two-sided programs the broadcaster's private
		// root-change fence lines alias RCCE's handshake lines; route its
		// quiesce through the shared barrier epoch (see core.SetFence).
		defaultBC.SetFence(port)
	}
	return &Env{
		Core: c, Port: port, Comm: collective.NewComm(port), Base: base,
		defaultOC: defaultOC, defaultBC: defaultBC,
	}
}

// OC returns the one-sided collective engine for a choice. The base
// configuration reuses the attached default engine. While the default
// engine has non-blocking requests in flight, every choice is clamped to
// it: a second engine's differently-laid-out lanes would overlap the
// in-flight lanes' MPB lines. The clamp is deterministic — outstanding
// counts are symmetric across cores for well-formed (chip-wide,
// same-order) programs — so all cores still agree on the layout.
func (e *Env) OC(ch Choice) *occoll.Collectives {
	cfg := cfgFor(e.Base, ch)
	if cfg == e.Base && e.defaultOC != nil {
		return e.defaultOC
	}
	if e.defaultOC != nil && e.defaultOC.Outstanding() > 0 {
		return e.defaultOC
	}
	key := ocKey{cfg.K, cfg.BufLines}
	if x, ok := e.ocs[key]; ok {
		return x
	}
	if e.ocs == nil {
		e.ocs = make(map[ocKey]*occoll.Collectives)
	}
	x := occoll.New(e.Core, e.Port, cfg)
	e.ocs[key] = x
	return x
}

// Bcaster returns the standalone OC-Bcast broadcaster for a choice,
// reusing the attached default for the base configuration.
func (e *Env) Bcaster(ch Choice) *core.Broadcaster {
	cfg := cfgFor(e.Base, ch)
	if cfg == e.Base && e.defaultBC != nil {
		return e.defaultBC
	}
	key := ocKey{cfg.K, cfg.BufLines}
	if b, ok := e.bcs[key]; ok {
		return b
	}
	if e.bcs == nil {
		e.bcs = make(map[ocKey]*core.Broadcaster)
	}
	b := core.NewBroadcaster(e.Core, cfg)
	b.SetFence(e.Port)
	e.bcs[key] = b
	return b
}
