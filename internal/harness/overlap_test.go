package harness

import (
	"runtime"
	"testing"

	occore "repro/internal/core"
	"repro/internal/model"
	"repro/internal/occoll"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// TestOverlapSpeedupHeadline pins the fig-overlap acceptance point: at
// some (compute, size) cell the non-blocking AllReduce must buy at least
// 1.3x over the blocking collective + compute serialization.
func TestOverlapSpeedupHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("overlap headline skipped with -short")
	}
	cfg := scc.DefaultConfig()
	points := OverlapSweep(cfg, scc.NumCores, 7, []int{96}, []float64{0.5}, []float64{1.0 / 64})
	if len(points) != 1 {
		t.Fatalf("expected 1 point, got %d", len(points))
	}
	p := points[0]
	if p.Speedup < 1.3 {
		t.Fatalf("overlap speedup %.3fx at 96 CL, W=T/2, g=W/64 — want >= 1.3x (blocking %.1f µs, overlapped %.1f µs)",
			p.Speedup, p.BlockingUs, p.OverlapUs)
	}
	t.Logf("overlap speedup %.2fx (blocking %.1f µs -> overlapped %.1f µs)",
		p.Speedup, p.BlockingUs, p.OverlapUs)
}

// TestOverlapGridParallelMatchesSequential shards overlap cells — each
// one a chip full of non-blocking requests completing inside a worker
// goroutine — across ParallelMap workers and asserts byte-identical
// results to sequential evaluation. Run under -race (CI does) this is
// the stress test for progress-engine state confined per chip.
func TestOverlapGridParallelMatchesSequential(t *testing.T) {
	cfg := scc.DefaultConfig()
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	var cells []OverlapCell
	for _, lines := range []int{8, 32} {
		for _, grain := range []float64{2.0, 8.0} {
			cells = append(cells, OverlapCell{K: 7, Lines: lines, ComputeUs: 60, GrainUs: grain, Overlap: true})
			cells = append(cells, OverlapCell{K: 3, Lines: lines, ComputeUs: 60, GrainUs: grain, Overlap: true})
		}
		cells = append(cells, OverlapCell{K: 7, Lines: lines, ComputeUs: 60})
	}
	seq := make([]float64, len(cells))
	for i, c := range cells {
		seq[i] = MeasureOverlap(cfg, scc.NumCores, c)
	}
	par := OverlapGrid(cfg, scc.NumCores, cells)
	for i := range cells {
		if par[i] != seq[i] {
			t.Errorf("cell %d (%+v): parallel %v µs != sequential %v µs", i, cells[i], par[i], seq[i])
		}
	}
}

// TestInterleavedBcastCompletionOrder issues three overlapping IBcasts
// from distinct roots (largest first) on three MPB lanes and asserts
// every core observes them complete in the order the closed-form model
// ranks their latencies — i.e. the requests genuinely progress
// concurrently instead of serializing in issue order.
func TestInterleavedBcastCompletionOrder(t *testing.T) {
	cfg := scc.DefaultConfig()
	const n = 12
	occfg := occore.Config{K: 2, BufLines: 2, DoubleBuffer: true, Channels: 3}
	if err := occoll.Validate(occfg); err != nil {
		t.Fatal(err)
	}
	// Issued largest-first so completion order (smallest-first) is the
	// reverse of issue order — serialized lanes would fail this test.
	sizes := []int{36, 12, 4}
	roots := []int{0, 5, 11}

	// The model must rank the latencies ascending with size.
	mm := model.New(cfg.Params)
	bp := model.BcastParamsFor(cfg.Topo, n, occfg.K)
	bp.Moc = occfg.BufLines
	lat := make([]sim.Duration, len(sizes))
	for i, lines := range sizes {
		lat[i] = mm.OCBcastLatency(bp, lines, occfg.K)
	}
	if !(lat[2] < lat[1] && lat[1] < lat[0]) {
		t.Fatalf("model latency ordering unexpected: %v", lat)
	}

	chip := rma.NewChipN(cfg, n)
	addrs := make([]int, len(sizes))
	base := 0
	for i, lines := range sizes {
		addrs[i] = base
		base += lines * scc.CacheLine
		pay := make([]byte, lines*scc.CacheLine)
		for j := range pay {
			pay[j] = byte(i*37 + j*5)
		}
		chip.Private(roots[i]).Write(addrs[i], pay)
	}

	completion := make([][]sim.Time, len(sizes))
	for i := range completion {
		completion[i] = make([]sim.Time, n)
	}
	chip.Run(func(c *rma.Core) {
		x := occoll.New(c, rcce.NewPort(c), occfg)
		reqs := make([]*occoll.Request, len(sizes))
		for i := range sizes {
			reqs[i] = x.IBcast(roots[i], addrs[i], sizes[i])
		}
		pending := len(sizes)
		for pending > 0 {
			c.Compute(sim.Micros(0.2))
			for i, r := range reqs {
				if r != nil && r.Test() {
					completion[i][c.ID()] = c.Now()
					reqs[i] = nil
					pending--
				}
			}
		}
		x.Finish()
	})

	// Every core must observe the model's ordering: the small broadcast
	// first, the large one last.
	for core := 0; core < n; core++ {
		if !(completion[2][core] < completion[1][core] && completion[1][core] < completion[0][core]) {
			t.Errorf("core %d: completion times %v, %v, %v do not follow model ordering (sizes %v)",
				core, completion[0][core], completion[1][core], completion[2][core], sizes)
		}
	}
}
