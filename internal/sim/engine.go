package sim

import (
	"fmt"
	"sort"
)

// Engine is a deterministic virtual-time scheduler for a fixed set of
// processes. It is single-threaded from the simulation's point of view:
// although each process is a goroutine, exactly one runs at any instant,
// and the engine always picks the runnable process with the smallest
// virtual clock (ties broken by process id). Writes to simulated memory
// are therefore applied in global time order.
type Engine struct {
	procs    []*Proc
	started  bool
	finished int

	// watchers maps a watch key to the processes blocked on it.
	watchers map[WatchKey][]*blockedProc

	panicVal any // re-panicked on Run if a process panicked
}

// WatchKey identifies a condition a process can block on. Memory
// implementations signal the key when a write may have changed the
// condition's outcome.
type WatchKey struct {
	// Space distinguishes address spaces (e.g. one per MPB).
	Space int
	// Line is the cache-line index within the space.
	Line int
}

type blockedProc struct {
	p    *Proc
	pred func() bool
	// wake is the earliest virtual time the process may resume
	// (typically the effective time of the write that satisfied the
	// predicate).
	wake Time
}

// NewEngine creates an engine with n processes whose ids are 0..n-1.
func NewEngine(n int) *Engine {
	e := &Engine{watchers: make(map[WatchKey][]*blockedProc)}
	e.procs = make([]*Proc, n)
	for i := range e.procs {
		e.procs[i] = newProc(e, i)
	}
	return e
}

// N reports the number of processes.
func (e *Engine) N() int { return len(e.procs) }

// Proc returns process i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Run executes body(p) on every process concurrently in virtual time and
// returns when all processes have finished. It panics if the simulation
// deadlocks (some process blocked forever) or if any process panics.
func (e *Engine) Run(body func(p *Proc)) {
	if e.started {
		panic("sim: Engine.Run called twice; create a new Engine per run")
	}
	e.started = true
	for _, p := range e.procs {
		p.start(body)
	}
	e.loop()
	if e.panicVal != nil {
		panic(e.panicVal)
	}
}

// loop drives the scheduler until every process has finished.
func (e *Engine) loop() {
	for e.finished < len(e.procs) {
		p := e.pickNext()
		if p == nil {
			e.reportDeadlock()
		}
		p.step()
		if e.panicVal != nil {
			// Unblock remains: tear down by abandoning; goroutines
			// blocked on resume channels are garbage once the engine
			// is dropped (they hold no OS resources).
			return
		}
	}
}

// pickNext returns the runnable process with the smallest (clock, id).
func (e *Engine) pickNext() *Proc {
	var best *Proc
	for _, p := range e.procs {
		if p.state != stateRunnable {
			continue
		}
		if best == nil || p.now < best.now || (p.now == best.now && p.id < best.id) {
			best = p
		}
	}
	return best
}

// Signal re-evaluates every process blocked on key. Processes whose
// predicate now holds become runnable no earlier than at time at.
// Memory implementations call this after applying a write.
func (e *Engine) Signal(key WatchKey, at Time) {
	blocked := e.watchers[key]
	if len(blocked) == 0 {
		return
	}
	remaining := blocked[:0]
	for _, b := range blocked {
		if b.pred() {
			if b.wake < at {
				b.wake = at
			}
			b.p.unblock(b.wake)
		} else {
			remaining = append(remaining, b)
		}
	}
	if len(remaining) == 0 {
		delete(e.watchers, key)
	} else {
		e.watchers[key] = remaining
	}
}

// addWatcher registers p as blocked on key with the given predicate.
func (e *Engine) addWatcher(key WatchKey, p *Proc, pred func() bool) {
	e.watchers[key] = append(e.watchers[key], &blockedProc{p: p, pred: pred, wake: p.now})
}

// reportDeadlock panics with a description of all blocked processes.
func (e *Engine) reportDeadlock() {
	var stuck []int
	for _, p := range e.procs {
		if p.state == stateBlocked {
			stuck = append(stuck, p.id)
		}
	}
	sort.Ints(stuck)
	panic(fmt.Sprintf("sim: deadlock — %d/%d processes finished, blocked procs: %v",
		e.finished, len(e.procs), stuck))
}
