package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/scc"
	"repro/internal/sim"
)

func newTestMPB() (*sim.Engine, *MPB) {
	e := sim.NewEngine(1)
	m := NewMPB(e, 0, scc.MPBLinesPerCore, sim.Micros(0.0065))
	return e, m
}

func lineOf(b byte) []byte {
	l := make([]byte, scc.CacheLine)
	for i := range l {
		l[i] = b
	}
	return l
}

func TestMPBWriteReadVisibility(t *testing.T) {
	_, m := newTestMPB()
	m.WriteLine(3, lineOf(0xAA), 100*sim.Nanosecond)

	// Before the effective time the line reads as zero.
	if got := m.ReadLine(3, 50*sim.Nanosecond); !bytes.Equal(got, lineOf(0)) {
		t.Fatalf("early read saw the write: %x", got[:4])
	}
	// At/after the effective time the line is visible.
	if got := m.ReadLine(3, 100*sim.Nanosecond); !bytes.Equal(got, lineOf(0xAA)) {
		t.Fatalf("read at eff time = %x, want AA..", got[:4])
	}
}

func TestMPBMultiplePendingWritesOrdered(t *testing.T) {
	_, m := newTestMPB()
	m.WriteLine(0, lineOf(1), 10*sim.Nanosecond)
	m.WriteLine(0, lineOf(2), 20*sim.Nanosecond)
	m.WriteLine(0, lineOf(3), 30*sim.Nanosecond)
	if got := m.ReadLine(0, 25*sim.Nanosecond)[0]; got != 2 {
		t.Fatalf("read at t=25 = %d, want 2", got)
	}
	if got := m.ReadLine(0, 35*sim.Nanosecond)[0]; got != 3 {
		t.Fatalf("read at t=35 = %d, want 3", got)
	}
}

func TestMPBPeekU64(t *testing.T) {
	_, m := newTestMPB()
	line := make([]byte, scc.CacheLine)
	line[0] = 0x34
	line[1] = 0x12
	m.WriteLine(5, line, 0)
	if got := m.PeekU64(5, 0); got != 0x1234 {
		t.Fatalf("PeekU64 = %#x, want 0x1234", got)
	}
}

func TestMPBLineBounds(t *testing.T) {
	_, m := newTestMPB()
	for _, bad := range []int{-1, scc.MPBLinesPerCore} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("line %d did not panic", bad)
				}
			}()
			m.ReadLine(bad, 0)
		}()
	}
	if m.Lines() != scc.MPBLinesPerCore || m.Owner() != 0 {
		t.Fatal("Lines/Owner broken")
	}
}

// TestWaitU64WakesAtEffectiveTime exercises the flag-wait primitive:
// a waiter must resume exactly at the satisfying write's effective time,
// not at the writer's completion time or the waiter's block time.
func TestWaitU64WakesAtEffectiveTime(t *testing.T) {
	e := sim.NewEngine(2)
	m := NewMPB(e, 0, scc.MPBLinesPerCore, sim.Micros(0.0065))
	var wokeAt sim.Time
	e.Run(func(p *sim.Proc) {
		switch p.ID() {
		case 0:
			m.WaitU64(p, 9, func(v uint64) bool { return v >= 7 })
			wokeAt = p.Now()
		case 1:
			p.Advance(2 * sim.Microsecond)
			// Write seq=7 landing at t=3µs.
			line := make([]byte, scc.CacheLine)
			line[0] = 7
			m.WriteLine(9, line, 3*sim.Microsecond)
			p.Advance(5 * sim.Microsecond)
		}
	})
	if wokeAt != 3*sim.Microsecond {
		t.Fatalf("waiter woke at %v, want 3µs", wokeAt)
	}
}

// TestWaitU64AlreadySatisfiedButPending: a wait issued before a pending
// write's effective time must still wake at that effective time.
func TestWaitU64AlreadySatisfiedButPending(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMPB(e, 0, scc.MPBLinesPerCore, sim.Micros(0.0065))
	line := make([]byte, scc.CacheLine)
	line[0] = 1
	m.WriteLine(0, line, 10*sim.Microsecond) // pending, lands at 10µs
	var wokeAt sim.Time
	e.Run(func(p *sim.Proc) {
		m.WaitU64(p, 0, func(v uint64) bool { return v >= 1 })
		wokeAt = p.Now()
	})
	if wokeAt != 10*sim.Microsecond {
		t.Fatalf("waiter woke at %v, want 10µs", wokeAt)
	}
}

func TestWaitU64SkipsNonSatisfyingWrites(t *testing.T) {
	e := sim.NewEngine(2)
	m := NewMPB(e, 0, scc.MPBLinesPerCore, sim.Micros(0.0065))
	var wokeAt sim.Time
	e.Run(func(p *sim.Proc) {
		switch p.ID() {
		case 0:
			m.WaitU64(p, 0, func(v uint64) bool { return v >= 3 })
			wokeAt = p.Now()
		case 1:
			for seq := byte(1); seq <= 3; seq++ {
				line := make([]byte, scc.CacheLine)
				line[0] = seq
				m.WriteLine(0, line, sim.Time(seq)*sim.Microsecond)
				p.Advance(sim.Microsecond)
			}
		}
	})
	if wokeAt != 3*sim.Microsecond {
		t.Fatalf("waiter woke at %v, want 3µs (the seq>=3 write)", wokeAt)
	}
}

func TestPrivateReadWrite(t *testing.T) {
	p := NewPrivate(4)
	if p.Owner() != 4 {
		t.Fatal("owner")
	}
	// Unwritten memory reads as zero.
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0xFF
	}
	p.Read(buf, 1024, 64)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten byte %d = %#x, want 0", i, b)
		}
	}
	// Round trip across a page boundary.
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := pageBytes - 1500
	p.Write(addr, data)
	got := make([]byte, len(data))
	p.Read(got, addr, len(got))
	if !bytes.Equal(got, data) {
		t.Fatal("page-boundary round trip failed")
	}
}

func TestPrivateRoundTripProperty(t *testing.T) {
	f := func(addr16 uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		p := NewPrivate(0)
		addr := int(addr16)
		p.Write(addr, data)
		got := make([]byte, len(data))
		p.Read(got, addr, len(got))
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCacheModel(t *testing.T) {
	c := NewCache(true)
	if c.Hit(1000) {
		t.Fatal("cold cache hit")
	}
	if !c.Hit(1000) {
		t.Fatal("second access missed")
	}
	// Same line, different byte offset: hit.
	if !c.Hit(1001) {
		t.Fatal("same-line access missed")
	}
	// Touch populates.
	c.Touch(64 * scc.CacheLine)
	if !c.Hit(64 * scc.CacheLine) {
		t.Fatal("touched line missed")
	}
	if c.Len() == 0 {
		t.Fatal("cache empty after touches")
	}
	c.Flush()
	if c.Len() != 0 || c.Hit(1000) {
		t.Fatal("flush did not empty the cache")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(false)
	c.Touch(0)
	if c.Hit(0) || c.Hit(0) {
		t.Fatal("disabled cache must always miss")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache stored lines")
	}
}

// TestWriteLinesExtentVisibility: a bulk extent's lines become visible at
// eff0 + i·stride, one line at a time.
func TestWriteLinesExtentVisibility(t *testing.T) {
	_, m := newTestMPB()
	src := make([]byte, 3*scc.CacheLine)
	for i := 0; i < 3; i++ {
		copy(src[i*scc.CacheLine:], lineOf(byte(0x10+i)))
	}
	const eff0, stride = 100 * sim.Nanosecond, 40 * sim.Nanosecond
	m.WriteLines(4, src, 3, eff0, stride)

	for i := 0; i < 3; i++ {
		eff := eff0 + sim.Duration(i)*stride
		if got := m.ReadLine(4+i, eff-1); !bytes.Equal(got, lineOf(0)) {
			t.Fatalf("line %d visible before its eff time", 4+i)
		}
		if got := m.ReadLine(4+i, eff); !bytes.Equal(got, lineOf(byte(0x10+i))) {
			t.Fatalf("line %d at eff = %x, want %x..", 4+i, got[:2], 0x10+i)
		}
	}
}

// TestWriteLinesThenOverwrite: a later single-line write layered over an
// extent settles in issue order, exactly like the per-line queue it
// replaced.
func TestWriteLinesThenOverwrite(t *testing.T) {
	_, m := newTestMPB()
	src := append(lineOf(1), lineOf(2)...)
	m.WriteLines(0, src, 2, 10*sim.Nanosecond, 5*sim.Nanosecond)
	m.WriteLine(1, lineOf(9), 20*sim.Nanosecond)

	if got := m.ReadLine(1, 16*sim.Nanosecond); !bytes.Equal(got, lineOf(2)) {
		t.Fatalf("line 1 at 16ns = %x, want extent value 02", got[:2])
	}
	if got := m.ReadLine(1, 20*sim.Nanosecond); !bytes.Equal(got, lineOf(9)) {
		t.Fatalf("line 1 at 20ns = %x, want overwrite 09", got[:2])
	}
	if got := m.ReadLine(0, 20*sim.Nanosecond); !bytes.Equal(got, lineOf(1)) {
		t.Fatalf("line 0 at 20ns = %x, want 01", got[:2])
	}
}

// TestReadLinesIntoStrided: the bulk read observes each line at its own
// per-line time t0 + i·stride.
func TestReadLinesIntoStrided(t *testing.T) {
	_, m := newTestMPB()
	src := append(lineOf(7), lineOf(8)...)
	// Line 0 visible at 100ns, line 1 at 200ns.
	m.WriteLines(0, src, 2, 100*sim.Nanosecond, 100*sim.Nanosecond)

	// Read line 0 at 150ns, line 1 at 150+30=180ns: line 1 still zero.
	dst := make([]byte, 2*scc.CacheLine)
	m.ReadLinesInto(dst, 0, 2, 150*sim.Nanosecond, 30*sim.Nanosecond)
	if !bytes.Equal(dst[:scc.CacheLine], lineOf(7)) {
		t.Fatalf("line 0 = %x, want 07", dst[:2])
	}
	if !bytes.Equal(dst[scc.CacheLine:], lineOf(0)) {
		t.Fatalf("line 1 = %x, want 00 (not yet visible at 180ns)", dst[scc.CacheLine:scc.CacheLine+2])
	}
	// Re-read with a stride that crosses the visibility time.
	m.ReadLinesInto(dst, 0, 2, 150*sim.Nanosecond, 100*sim.Nanosecond)
	if !bytes.Equal(dst[scc.CacheLine:], lineOf(8)) {
		t.Fatalf("line 1 = %x, want 08 (visible at 250ns)", dst[scc.CacheLine:scc.CacheLine+2])
	}
}

// TestExtentRecycling: settled extents are recycled, so a steady-state
// write/read loop stops allocating pending records.
func TestExtentRecycling(t *testing.T) {
	_, m := newTestMPB()
	src := append(lineOf(3), lineOf(4)...)
	allocs := testing.AllocsPerRun(100, func() {
		m.WriteLines(0, src, 2, 0, 0)
		var dst [2 * scc.CacheLine]byte
		m.ReadLinesInto(dst[:], 0, 2, 1<<40, 0)
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state write/read allocates %.1f objects per op, want 0", allocs)
	}
}

// TestMPBSweepPending covers the pending-extent sweep: writes to lines
// that are never read again (a collective's final flag writes) must not
// accumulate forever, and the sweep must preserve per-line issue order —
// a write behind a still-future write on the same line may not fold
// ahead of it, even when its own effective time is past the horizon.
func TestMPBSweepPending(t *testing.T) {
	_, m := newTestMPB()

	// Line 7 keeps a write queue with a far-future entry in the middle:
	// 0x11 (foldable), 0x22 (future), 0x33 (foldable time, but issued
	// after the future write, so it must stay queued behind it).
	m.WriteLines(7, lineOf(0x11), 1, 100*sim.Nanosecond, 0)
	m.WriteLines(7, lineOf(0x22), 1, sim.Micros(1000), 0)
	m.WriteLines(7, lineOf(0x33), 1, 200*sim.Nanosecond, 0)

	// A read elsewhere advances the fold horizon to 1 µs.
	m.ReadLine(0, sim.Micros(1))

	// Flag-style writes, never read back, enough to cross the sweep
	// threshold several times over.
	for i := 0; i < 4*sweepMinPending; i++ {
		eff := (50 + sim.Time(i)) * sim.Nanosecond
		m.WriteLines(10+i%40, lineOf(byte(i)), 1, eff, 0)
	}
	if n := len(m.pending); n >= sweepMinPending {
		t.Fatalf("pending list not swept: %d extents (threshold %d)", n, sweepMinPending)
	}

	// Issue order on line 7 survived the sweeps: the final visible value
	// is the last-issued write, not the future-timestamped one.
	if got := m.ReadLine(7, sim.Micros(2000)); !bytes.Equal(got, lineOf(0x33)) {
		t.Fatalf("line 7 reads %x, want 33.. (sweep broke per-line issue order)", got[:4])
	}
}
