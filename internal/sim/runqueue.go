package sim

// runQueue is an indexed binary min-heap of runnable processes keyed on
// (clock, id). It gives the scheduler O(log n) step cost instead of the
// former O(n) scan over all processes. The index (Proc.heapIdx) lets the
// engine assert membership invariants cheaply: a process is in the queue
// iff it is runnable and not currently executing its step.
//
// No decrease-key operation is needed: a process's clock only changes
// while it is outside the queue (it advances its own clock while running,
// and unblock adjusts the clock before the process is pushed back).
type runQueue struct {
	heap []*Proc

	// topNow/topID mirror heap[0]'s (clock, id) key whenever the heap is
	// non-empty. The yield fast path compares against these two scalars
	// instead of chasing the heap[0] pointer, keeping the hottest branch
	// free of heap-memory loads.
	topNow Time
	topID  int
}

// cacheTop refreshes the cached top key after a mutation.
func (q *runQueue) cacheTop() {
	if len(q.heap) > 0 {
		q.topNow = q.heap[0].now
		q.topID = q.heap[0].id
	}
}

// less orders the heap by (clock, id) — identical to the former linear
// scan's tie-breaking, so schedules are byte-identical.
func (q *runQueue) less(a, b *Proc) bool {
	return a.now < b.now || (a.now == b.now && a.id < b.id)
}

// push inserts p. It panics if p is already queued — that would mean the
// scheduler lost track of who is running.
func (q *runQueue) push(p *Proc) {
	if p.heapIdx >= 0 {
		panic("sim: process pushed onto run queue twice")
	}
	p.heapIdx = len(q.heap)
	q.heap = append(q.heap, p)
	q.siftUp(p.heapIdx)
	q.cacheTop()
}

// pushPop is push(p) followed by pop(), fused: it returns the minimum
// of the queued processes and p, leaving the other side queued. When p
// does not beat the current top — always the case right after a failed
// keepRunning check — the old top comes out and p takes its root slot
// with a single siftDown, instead of a push's siftUp plus a pop's
// siftDown. The machine drain loop (Engine.nextToken) lives on this.
func (q *runQueue) pushPop(p *Proc) *Proc {
	if p.heapIdx >= 0 {
		panic("sim: process pushed onto run queue twice")
	}
	if len(q.heap) == 0 || q.less(p, q.heap[0]) {
		return p
	}
	res := q.heap[0]
	res.heapIdx = -1
	q.heap[0] = p
	p.heapIdx = 0
	q.siftDown(0)
	q.cacheTop()
	return res
}

// pop removes and returns the process with the smallest (clock, id), or
// nil if the queue is empty.
func (q *runQueue) pop() *Proc {
	if len(q.heap) == 0 {
		return nil
	}
	p := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[0].heapIdx = 0
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	p.heapIdx = -1
	q.cacheTop()
	return p
}

func (q *runQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *runQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(q.heap[l], q.heap[min]) {
			min = l
		}
		if r < n && q.less(q.heap[r], q.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		q.swap(i, min)
		i = min
	}
}

func (q *runQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].heapIdx = i
	q.heap[j].heapIdx = j
}
