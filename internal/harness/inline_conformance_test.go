package harness

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/occoll"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Inline machine execution must reproduce the goroutine scheduler's
// results exactly on the real protocol stack, not just on synthetic
// sim-level workloads (internal/sim has that matrix). This suite runs
// the six collective pairs the repo measures — three broadcasts and
// three allreduce variants — across the four scaling topologies with
// randomized message sizes, in both execution modes, and requires the
// per-repetition latency vectors and the engine's slow-path switch
// counts to match event for event.

// conformanceCell runs one collective workload on a pooled chip and
// returns every repetition's latency plus the run's slow-path switch
// count (diffed around the run: pooled engines accumulate forever).
func conformanceCell(cfg scc.Config, n int, kind string, k, lines, reps int) ([]sim.Duration, int64) {
	chip := rma.AcquireChipN(cfg, n)
	defer rma.ReleaseChip(chip)

	msgBytes := lines * scc.CacheLine
	for c := 0; c < n; c++ {
		if c > 0 && (kind == "bcast/oc" || kind == "bcast/binomial" || kind == "bcast/sag") {
			break // broadcasts stage the root's payload only
		}
		payload := make([]byte, msgBytes)
		for i := range payload {
			payload[i] = byte(i*7 + c*13 + 5)
		}
		for it := 0; it < reps; it++ {
			chip.Private(c).Write(it*msgBytes, payload)
		}
	}
	scratchBase := (reps + 1) * msgBytes

	starts := make([][]sim.Time, reps)
	returns := make([][]sim.Time, reps)
	for it := range returns {
		starts[it] = make([]sim.Time, n)
		returns[it] = make([]sim.Time, n)
	}

	sw0 := chip.Engine.Switches()
	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		comm := collective.NewComm(port)
		occfg := occore.DefaultConfig()
		occfg.K = k
		var op func(addr int)
		switch kind {
		case "bcast/oc":
			b := occore.NewBroadcaster(c, occfg)
			op = func(addr int) { b.Bcast(0, addr, lines) }
		case "bcast/binomial":
			op = func(addr int) { comm.BcastBinomial(0, addr, lines) }
		case "bcast/sag":
			op = func(addr int) { comm.BcastScatterAllgather(0, addr, lines) }
		case "allreduce/oc":
			x := occoll.New(c, port, occfg)
			op = func(addr int) { x.AllReduce(addr, lines, collective.SumInt64) }
		case "allreduce/twosided":
			op = func(addr int) {
				comm.Reduce(0, addr, scratchBase, lines, collective.SumInt64)
				comm.BcastBinomial(0, addr, lines)
			}
		case "allreduce/hybrid":
			b := occore.NewBroadcaster(c, occfg)
			op = func(addr int) {
				comm.Reduce(0, addr, scratchBase, lines, collective.SumInt64)
				b.Bcast(0, addr, lines)
			}
		default:
			panic(fmt.Sprintf("unknown conformance kind %q", kind))
		}
		for it := 0; it < reps; it++ {
			port.Barrier()
			starts[it][c.ID()] = c.Now()
			op(it * msgBytes)
			returns[it][c.ID()] = c.Now()
		}
	})
	switches := chip.Engine.Switches() - sw0

	out := make([]sim.Duration, reps)
	for it := 0; it < reps; it++ {
		first, last := starts[it][0], returns[it][0]
		for id := 1; id < n; id++ {
			if starts[it][id] < first {
				first = starts[it][id]
			}
			if returns[it][id] > last {
				last = returns[it][id]
			}
		}
		out[it] = last - first
	}
	return out, switches
}

// TestInlineGoroutineConformance drives the randomized conformance grid
// in inline and goroutine execution and compares latencies and switch
// counts exactly.
func TestInlineGoroutineConformance(t *testing.T) {
	cfg := scc.DefaultConfig()
	kinds := []string{
		"bcast/oc", "bcast/binomial", "bcast/sag",
		"allreduce/oc", "allreduce/twosided", "allreduce/hybrid",
	}
	rng := rand.New(rand.NewSource(29))
	for _, topo := range ScaleMeshes() {
		cfg := cfg
		cfg.Topo = topo
		n := topo.NumCores()
		if testing.Short() && n > 96 {
			continue
		}
		for _, kind := range kinds {
			lines := 4 + rng.Intn(60)
			name := fmt.Sprintf("%s/%dx%d/%dCL", kind, topo.W, topo.H, lines)
			prev := sim.SetInline(true)
			inLat, inSw := conformanceCell(cfg, n, kind, 7, lines, 2)
			sim.SetInline(false)
			goLat, goSw := conformanceCell(cfg, n, kind, 7, lines, 2)
			sim.SetInline(prev)
			for it := range inLat {
				if inLat[it] != goLat[it] {
					t.Errorf("%s rep %d: latency %v (inline) vs %v (goroutine)",
						name, it, inLat[it], goLat[it])
				}
			}
			if inSw != goSw {
				t.Errorf("%s: switch count %d (inline) vs %d (goroutine)", name, inSw, goSw)
			}
		}
	}
}
