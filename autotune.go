package ocbcast

import (
	"fmt"

	"repro/internal/algsel"
	"repro/internal/obs"
)

// Algorithm selection. Every collective method of Core resolves its
// implementation through the algorithm registry (internal/algsel), which
// wraps both stacks — the two-sided RCCE baselines and the one-sided OC
// family — plus the algorithms that exist only through the registry
// (the Rabenseifner reduce-scatter+allgather allreduce, the one-sided
// ring allgather). Options.Algorithm picks the resolution mode:
//
//	""       paper-faithful defaults: each method runs exactly the stack
//	         its name promises (goldens stay byte-identical)
//	"auto"   model-driven: System.Tune()'s decision table picks the
//	         predicted-fastest algorithm + fan-out + chunk per call, per
//	         message size, for the chip's topology
//	name     force one registered algorithm (e.g. "rabenseifner",
//	         "ring", "twosided", "oc") wherever the operation registers
//	         it; other operations keep their defaults
//
// The explicitly one-sided methods (ReduceOC, IAllGatherOC, ...) promise
// MPB-RMA-only semantics, so under "auto" they select within the
// one-sided family only — e.g. AllGatherOC may run the ring instead of
// the gather+broadcast tree where the model prefers it.

// PlanEntry is one row of the materialized decision table: Algorithm
// (with fan-out K and pipeline chunk, 0 = configured default) wins for
// op sizes up to MaxLines cache lines.
type PlanEntry struct {
	Op          string
	MaxLines    int
	Algorithm   string
	K           int
	ChunkLines  int
	PredictedUs float64
}

// Tune materializes the decision table for this chip's topology and core
// count from the closed-form model and returns it, one entry per (op,
// size band), ops sorted, bands in ascending size order. With
// Options.Algorithm "auto" the table is what Run's cores consult; Tune
// is idempotent and cheap (pure arithmetic, no simulation).
func (s *System) Tune() []PlanEntry {
	if s.plan == nil {
		s.plan = algsel.TuneCached(s.chip.Cfg.Params, s.chip.Topo(), s.chip.NCores, s.occfg)
	}
	var out []PlanEntry
	for _, op := range algsel.Ops() {
		for _, b := range s.plan.Bands[op] {
			out = append(out, PlanEntry{
				Op:          string(op),
				MaxLines:    b.MaxLines,
				Algorithm:   b.Choice.Alg,
				K:           b.Choice.K,
				ChunkLines:  b.Choice.ChunkLines,
				PredictedUs: b.PredictedUs,
			})
		}
	}
	return out
}

// resolve returns the algorithm and tunable choice for one call: the
// named override when it names an algorithm of this op, the plan's pick
// under "auto", the compat default otherwise.
func (c *Core) resolve(op algsel.Op, def string, lines int, oneSided bool) (*algsel.Algorithm, algsel.Choice) {
	ch := algsel.Choice{Alg: def}
	switch c.algName {
	case "", "auto":
		if c.algName == "auto" && c.plan != nil {
			var planned algsel.Choice
			var ok bool
			if oneSided {
				planned, ok = c.plan.ChooseOneSided(op, lines)
			} else {
				planned, ok = c.plan.Choose(op, lines)
			}
			if ok {
				ch = planned
			}
		}
	default:
		if a, ok := algsel.Lookup(op, c.algName); ok && (!oneSided || a.OneSided) {
			ch = algsel.Choice{Alg: c.algName}
		}
	}
	a, ok := algsel.Lookup(op, ch.Alg)
	if !ok {
		panic(fmt.Sprintf("ocbcast: no registered algorithm %q for %s", ch.Alg, op))
	}
	return a, ch
}

// apiSpan opens the API-level container span for one collective call:
// cat "api"/"api.issue", named by the op, annotated with the resolved
// algorithm choice — so algsel decisions are visible on the timeline.
// It claims no attribution time itself (BucketOther): the leaf rma
// spans underneath account for where the time actually goes.
func (c *Core) apiSpan(cat string, op algsel.Op, ch algsel.Choice, a algsel.Args) *obs.Recorder {
	o := c.rma.Obs()
	if o != nil {
		o.Emit(obs.Event{
			Kind: obs.KindBegin, Bucket: obs.BucketOther,
			Core: int32(c.ID()), Time: int64(c.Now()),
			Cat: cat, Name: string(op), Str: ch.String(),
			A0: obs.Arg{Key: "lines", Val: int64(a.Lines)},
			A1: obs.Arg{Key: "root", Val: int64(a.Root)},
		})
	}
	return o
}

// run resolves and executes one blocking collective.
func (c *Core) run(op algsel.Op, def string, oneSided bool, a algsel.Args) {
	alg, ch := c.resolve(op, def, a.Lines, oneSided)
	if o := c.apiSpan("api", op, ch, a); o != nil {
		alg.Run(c.env, ch, a)
		o.End(c.ID(), int64(c.Now()))
		return
	}
	alg.Run(c.env, ch, a)
}

// issue resolves and starts one non-blocking collective. Non-blocking
// requests always run on the core's default-layout engine (so lane
// round-robin, Progress and the leak check stay coherent): the resolved
// algorithm may vary, but its K/chunk are clamped to the configured
// defaults. An algorithm without a non-blocking twin falls back to def.
func (c *Core) issue(op algsel.Op, def string, a algsel.Args) *Request {
	alg, ch := c.resolve(op, def, a.Lines, true)
	if alg.Issue == nil {
		var ok bool
		if alg, ok = algsel.Lookup(op, def); !ok || alg.Issue == nil {
			panic(fmt.Sprintf("ocbcast: no non-blocking algorithm for %s", op))
		}
		ch = algsel.Choice{Alg: def}
	}
	if o := c.apiSpan("api.issue", op, ch, a); o != nil {
		// The sync span covers only issue-time work (lane claim, begin
		// barrier); the request's own occoll async span runs to protocol
		// completion.
		r := alg.Issue(c.env, algsel.Choice{Alg: ch.Alg}, a)
		o.End(c.ID(), int64(c.Now()))
		return r
	}
	return alg.Issue(c.env, algsel.Choice{Alg: ch.Alg}, a)
}
