package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/scc"
)

// The serving subcommand runs the multi-tenant serving sweep (the
// fig-apps kernels as weighted tenants plus a Poisson telemetry stream,
// served at increasing offered load), writes the load/latency cells and
// the per-mesh saturation throughputs into BENCH_simperf.json's
// "serving" section, and gates on two acceptance criteria: auto-selected
// algorithms sustain at least min-ratio of the paper-default saturation
// throughput on every mesh, and two runs of the same mix are
// bit-identical. With -verify it re-checks the checked-in saturation
// table plus a cheap 48-core determinism double-run — the CI gate on the
// serving runtime.

// servingCell is one row of the perf file's serving section.
type servingCell struct {
	Mesh          string  `json:"mesh"`
	Cores         int     `json:"cores"`
	Load          float64 `json:"load"`
	Mode          string  `json:"mode"`
	ThroughputRps float64 `json:"throughput_rps"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	Completed     int     `json:"completed"`
	Rejected      int     `json:"rejected"`
}

// servingMesh is one row of the saturation summary the gate reads.
type servingMesh struct {
	Mesh       string  `json:"mesh"`
	Cores      int     `json:"cores"`
	DefaultRps float64 `json:"default_sat_rps"`
	AutoRps    float64 `json:"auto_sat_rps"`
	Ratio      float64 `json:"ratio"`
}

// servingSection is BENCH_simperf.json's "serving" value.
type servingSection struct {
	// MinRatioGate is the threshold the meshes were gated against;
	// MinRatio is the worst observed mesh.
	MinRatioGate float64       `json:"min_ratio_gate"`
	MinRatio     float64       `json:"min_ratio"`
	Meshes       []servingMesh `json:"meshes"`
	Cells        []servingCell `json:"cells"`
}

// runServing runs the sweep, the determinism double-run, updates the
// perf file and gates. minRatio is the failure threshold (slightly
// below 1.0, like the apps gate: at saturation both modes ride the same
// non-blocking lanes, so the expected ratio is parity within the noise
// of straggler blocking dispatches; the regime where auto genuinely
// wins — blocking selection on big collectives — is fig-apps' gate).
func runServing(cfg scc.Config, effort int, minRatio float64) error {
	cells := harness.ServingSweep(cfg, effort)
	sats := harness.Saturation(cells)
	harness.ServingTable(cells).Fprint(os.Stdout)
	harness.SaturationTable(sats).Fprint(os.Stdout)

	sec := servingSection{MinRatioGate: minRatio, MinRatio: sats[0].Ratio}
	for _, c := range cells {
		sec.Cells = append(sec.Cells, servingCell{
			Mesh:  fmt.Sprintf("%dx%d", c.Topo.W, c.Topo.H),
			Cores: c.Topo.NumCores(), Load: c.Load, Mode: modeName(c.Mode),
			ThroughputRps: c.ThroughputRps, P50Us: c.P50Us, P99Us: c.P99Us,
			Completed: c.Completed, Rejected: c.Rejected,
		})
	}
	for _, s := range sats {
		sec.Meshes = append(sec.Meshes, servingMesh{
			Mesh:       fmt.Sprintf("%dx%d", s.Topo.W, s.Topo.H),
			Cores:      s.Topo.NumCores(),
			DefaultRps: s.DefaultRps, AutoRps: s.AutoRps, Ratio: s.Ratio,
		})
		if s.Ratio < sec.MinRatio {
			sec.MinRatio = s.Ratio
		}
	}
	if err := patchPerfFile(map[string]any{"serving": sec}); err != nil {
		return err
	}
	fmt.Printf("serving: %d cells over %d mesh(es), min saturation ratio %.4fx (gate %.2fx), wrote %s\n",
		len(sec.Cells), len(sec.Meshes), sec.MinRatio, minRatio, perfFile)
	if err := servingDeterminism(cfg); err != nil {
		return err
	}
	return gateServing(sec, minRatio)
}

// runServingVerify gates the checked-in serving section without
// re-running the sweep, then re-checks determinism with one cheap
// 48-core double-run — the CI gate.
func runServingVerify(cfg scc.Config, minRatio float64) error {
	raw, err := os.ReadFile(perfFile)
	if err != nil {
		return fmt.Errorf("serving -verify: %w (run `ocbench serving` first)", err)
	}
	var doc struct {
		Serving *servingSection `json:"serving"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("serving -verify: %s: %w", perfFile, err)
	}
	if doc.Serving == nil || len(doc.Serving.Meshes) == 0 {
		return fmt.Errorf("serving -verify: %s has no serving section (run `ocbench serving`)", perfFile)
	}
	// The acceptance criteria name both the 48-core and 384-core meshes.
	seen := map[int]bool{}
	for _, m := range doc.Serving.Meshes {
		seen[m.Cores] = true
	}
	for _, cores := range []int{48, 384} {
		if !seen[cores] {
			return fmt.Errorf("serving -verify: no %d-core mesh in the checked-in table (run `ocbench serving -effort 2`)", cores)
		}
	}
	fmt.Printf("serving -verify: %d checked-in cells over %d meshes, min saturation ratio %.4fx (gate %.2fx)\n",
		len(doc.Serving.Cells), len(doc.Serving.Meshes), doc.Serving.MinRatio, minRatio)
	if err := servingDeterminism(cfg); err != nil {
		return err
	}
	return gateServing(*doc.Serving, minRatio)
}

// servingDeterminism is the bit-identical acceptance check: the same
// 48-core mix served twice on fresh Systems must produce byte-identical
// stats (every completion clock, every counter).
func servingDeterminism(cfg scc.Config) error {
	a := harness.MeasureServe(cfg, scc.SCC(), 1, "auto").Fingerprint()
	b := harness.MeasureServe(cfg, scc.SCC(), 1, "auto").Fingerprint()
	if a != b {
		return fmt.Errorf("serving: two runs of the same mix diverged — serving is not deterministic")
	}
	fmt.Println("serving: determinism double-run OK (48 cores, bit-identical stats)")
	return nil
}

// gateServing fails when any mesh's auto saturation throughput falls
// below the ratio gate.
func gateServing(sec servingSection, minRatio float64) error {
	var bad []servingMesh
	for _, m := range sec.Meshes {
		if m.Ratio < minRatio {
			bad = append(bad, m)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	for _, m := range bad {
		fmt.Fprintf(os.Stderr, "serving: SLOWDOWN on %s (%d cores): auto %.0f req/s vs default %.0f req/s (%.4fx < %.2fx)\n",
			m.Mesh, m.Cores, m.AutoRps, m.DefaultRps, m.Ratio, minRatio)
	}
	return fmt.Errorf("serving: %d mesh(es) below the %.2fx saturation-throughput gate", len(bad), minRatio)
}

// modeName renders Options.Algorithm for the perf file.
func modeName(mode string) string {
	if mode == "" {
		return "default"
	}
	return mode
}
