package occoll

import (
	"bytes"
	"testing"

	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
)

func TestAllGatherRingMatchesReference(t *testing.T) {
	for _, db := range []bool{true, false} {
		for _, n := range []int{2, 3, 5, 16, 48} {
			for _, lines := range []int{1, 4, 11} { // 11 lines = 3 chunks of 4+4+3
				cfg := Config{K: 3, BufLines: 4, DoubleBuffer: db}
				nbytes := lines * scc.CacheLine
				chip := rma.NewChipN(scc.DefaultConfig(), n)
				payloads := make([][]byte, n)
				for i := 0; i < n; i++ {
					payloads[i] = make([]byte, nbytes)
					for j := range payloads[i] {
						payloads[i][j] = byte(i*31 + j*7 + 1)
					}
					chip.Private(i).Write(i*nbytes, payloads[i])
				}
				chip.Run(func(c *rma.Core) {
					x := New(c, rcce.NewPort(c), cfg)
					x.AllGatherRing(0, lines)
				})
				for i := 0; i < n; i++ {
					for b := 0; b < n; b++ {
						got := make([]byte, nbytes)
						chip.Private(i).Read(got, b*nbytes, nbytes)
						if !bytes.Equal(got, payloads[b]) {
							t.Fatalf("db=%v n=%d lines=%d: core %d block %d mismatch", db, n, lines, i, b)
						}
					}
				}
			}
		}
	}
}

// TestAllGatherRingNonBlocking drives the ring through the progress
// engine: issue, poll with Test between compute slices, and verify the
// result matches the blocking twin's.
func TestAllGatherRingNonBlocking(t *testing.T) {
	const n, lines = 8, 5
	cfg := Config{K: 2, BufLines: 2, DoubleBuffer: true}
	nbytes := lines * scc.CacheLine
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	for i := 0; i < n; i++ {
		b := make([]byte, nbytes)
		for j := range b {
			b[j] = byte(i*13 + j*3 + 2)
		}
		chip.Private(i).Write(i*nbytes, b)
	}
	chip.Run(func(c *rma.Core) {
		x := New(c, rcce.NewPort(c), cfg)
		r := x.IAllGatherRing(0, lines)
		for !r.Test() {
			c.Compute(100) // advance virtual time so peer flags land
		}
		x.Finish()
	})
	for i := 0; i < n; i++ {
		for b := 0; b < n; b++ {
			got := make([]byte, nbytes)
			chip.Private(i).Read(got, b*nbytes, nbytes)
			want := byte(b*13 + 2)
			if got[0] != want {
				t.Fatalf("core %d block %d: first byte %d, want %d", i, b, got[0], want)
			}
		}
	}
}

// TestAllGatherRingAgreesWithTree pins the two allgather algorithms to
// identical results (the registry's contract: algorithms are
// interchangeable implementations of one operation).
func TestAllGatherRingAgreesWithTree(t *testing.T) {
	const n, lines = 12, 7
	cfg := Config{K: 7, BufLines: 96, DoubleBuffer: true}
	nbytes := lines * scc.CacheLine

	results := make([][]byte, 2)
	for v, ring := range []bool{false, true} {
		chip := rma.NewChipN(scc.DefaultConfig(), n)
		for i := 0; i < n; i++ {
			b := make([]byte, nbytes)
			for j := range b {
				b[j] = byte(i*91 + j + 5)
			}
			chip.Private(i).Write(i*nbytes, b)
		}
		chip.Run(func(c *rma.Core) {
			x := New(c, rcce.NewPort(c), cfg)
			if ring {
				x.AllGatherRing(0, lines)
			} else {
				x.AllGather(0, lines)
			}
		})
		all := make([]byte, n*nbytes)
		chip.Private(0).Read(all, 0, n*nbytes)
		results[v] = all
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatal("tree and ring allgather disagree")
	}
}
