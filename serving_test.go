package ocbcast_test

import (
	"math/rand"
	"testing"

	ocbcast "repro"
	"repro/internal/workload"
)

// The serving runtime's end-to-end contract on the real simulator:
// determinism (two Serves of the same mix are byte-identical — the
// conformance half of the test harness), robustness under -race with
// many tenants sharing few lanes (the stress half, wired into the CI
// race step), tracing parity, and the public validation surface.

// servingOptions is the stress-geometry chip: four MPB lanes need a
// smaller chunk than the paper's 96 to fit the per-core MPB share.
func servingOptions(cores int) ocbcast.Options {
	return ocbcast.Options{Cores: cores, Channels: 4, ChunkLines: 16}
}

// servingMix builds a seeded random tenant mix: every op, bursty gaps,
// skewed weights.
func servingMix(seed int64, tenants, reqs, n int) []ocbcast.ServeStream {
	rng := rand.New(rand.NewSource(seed))
	ops := workload.Ops()
	streams := make([]ocbcast.ServeStream, tenants)
	for t := range streams {
		s := ocbcast.ServeStream{
			Tenant: "tenant-" + string(rune('a'+t)),
			Weight: 1 << (t % 4),
			Reqs:   make([]ocbcast.ServeRequest, reqs),
		}
		for i := range s.Reqs {
			op := ops[rng.Intn(len(ops))]
			r := ocbcast.ServeRequest{Op: op, Lines: 1 + rng.Intn(12)}
			switch op {
			case workload.OpBcast, workload.OpReduce, workload.OpScatter, workload.OpGather:
				r.Root = rng.Intn(n)
			}
			if rng.Intn(3) > 0 {
				r.GapUs = rng.Float64() * 30
			}
			s.Reqs[i] = r
		}
		streams[t] = s
	}
	return streams
}

func serveOnce(t *testing.T, opts ocbcast.Options, cfg ocbcast.ServeConfig, streams []ocbcast.ServeStream) ocbcast.ServeStats {
	t.Helper()
	sys := ocbcast.New(opts)
	res, err := sys.Serve(cfg, streams)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return res
}

// TestServingConformance is the determinism suite: the same seeded mix
// served twice on fresh equal Systems yields byte-identical stats —
// every completion clock, every counter — across policies and both
// algorithm modes.
func TestServingConformance(t *testing.T) {
	for _, tc := range []struct {
		name      string
		policy    string
		algorithm string
	}{
		{"rr-default", ocbcast.PolicyRoundRobin, ""},
		{"wrr-default", ocbcast.PolicyWeighted, ""},
		{"wrr-auto", ocbcast.PolicyWeighted, "auto"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := servingOptions(8)
			opts.Algorithm = tc.algorithm
			cfg := ocbcast.ServeConfig{Policy: tc.policy, QueueBound: 16, MaxBatch: 4, MaxBatchLines: 64}
			streams := servingMix(42, 4, 20, 8)
			a := serveOnce(t, opts, cfg, streams)
			b := serveOnce(t, opts, cfg, streams)
			fa, fb := a.Fingerprint(), b.Fingerprint()
			if fa != fb {
				t.Fatalf("two identical serving runs diverged:\n%s\nvs\n%s", fa, fb)
			}
			if a.Completed+a.Rejected != a.Offered {
				t.Fatalf("accounting: %d completed + %d rejected != %d offered",
					a.Completed, a.Rejected, a.Offered)
			}
			if a.Completed == 0 || a.ThroughputRps <= 0 {
				t.Fatalf("no service: completed=%d throughput=%v", a.Completed, a.ThroughputRps)
			}
			for _, tm := range a.Tenants {
				if tm.Completed+tm.Rejected != tm.Offered {
					t.Fatalf("tenant %s accounting: %d+%d != %d", tm.Tenant, tm.Completed, tm.Rejected, tm.Offered)
				}
				if tm.Completed > 0 && (tm.P50Us <= 0 || tm.P99Us < tm.P50Us) {
					t.Fatalf("tenant %s latency shape: p50=%v p99=%v", tm.Tenant, tm.P50Us, tm.P99Us)
				}
			}
		})
	}
}

// TestServingStress pushes 8 tenants through 4 channels on a 16-core
// chip — the scheduler replicas, the progress engine's concurrent lanes
// and the shared completion board all under load. The CI race step runs
// it under -race.
func TestServingStress(t *testing.T) {
	cfg := ocbcast.ServeConfig{Policy: ocbcast.PolicyWeighted, QueueBound: 32, MaxBatch: 6, MaxBatchLines: 96}
	streams := servingMix(7, 8, 25, 16)
	res := serveOnce(t, servingOptions(16), cfg, streams)
	if res.Offered != 8*25 {
		t.Fatalf("offered %d, want 200", res.Offered)
	}
	if res.Completed+res.Rejected != res.Offered {
		t.Fatalf("accounting: %d+%d != %d", res.Completed, res.Rejected, res.Offered)
	}
	if res.Completed < res.Offered/2 {
		t.Fatalf("only %d of %d requests served", res.Completed, res.Offered)
	}
	if res.Batches == 0 || res.BatchOccupancy < 1 {
		t.Fatalf("batching shape: batches=%d occupancy=%v", res.Batches, res.BatchOccupancy)
	}
	for i, us := range res.DoneUs {
		if us < 0 {
			t.Fatalf("request %d completed at negative time %v", i, us)
		}
	}
}

// TestServingTrace checks the observability contract: tracing changes
// nothing about the result, and the timeline carries the serve span
// families (round instants, queue counters, async batch spans, summary
// counters) and still validates.
func TestServingTrace(t *testing.T) {
	cfg := ocbcast.ServeConfig{Policy: ocbcast.PolicyWeighted, QueueBound: 8, MaxBatch: 4}
	streams := servingMix(11, 3, 12, 8)

	plain := serveOnce(t, servingOptions(8), cfg, streams)

	opts := servingOptions(8)
	opts.Trace = true
	sys := ocbcast.New(opts)
	traced, err := sys.Serve(cfg, streams)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if plain.Fingerprint() != traced.Fingerprint() {
		t.Fatal("tracing changed the serving outcome")
	}

	tl := sys.Timeline()
	if tl == nil {
		t.Fatal("no timeline with tracing on")
	}
	if err := tl.Validate(); err != nil {
		t.Fatalf("timeline invalid: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tl.Events {
		names[ev.Cat+"/"+ev.Name] = true
	}
	for _, want := range []string{"serve/round", "serve/batch",
		"serve/" + streams[0].Tenant, "serve.summary/" + streams[0].Tenant + "/completed"} {
		if !names[want] {
			t.Fatalf("no %q events on the timeline", want)
		}
	}
}

// TestServeSpecRoundTripPublic exercises the public spec surface:
// format → parse → serve runs the same mix as serving the structs
// directly.
func TestServeSpecRoundTripPublic(t *testing.T) {
	cfg := ocbcast.ServeConfig{Policy: ocbcast.PolicyWeighted, QueueBound: 8, MaxBatch: 4, Lanes: 2}
	streams := servingMix(3, 2, 8, 8)
	text := ocbcast.FormatServeSpec(cfg, streams)
	cfg2, streams2, err := ocbcast.ParseServeSpec(text)
	if err != nil {
		t.Fatalf("ParseServeSpec: %v\n%s", err, text)
	}
	a := serveOnce(t, servingOptions(8), cfg, streams)
	b := serveOnce(t, servingOptions(8), cfg2, streams2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("spec round-trip changed the serving outcome")
	}
}

// TestServeValidation covers the public error surface.
func TestServeValidation(t *testing.T) {
	ok := []ocbcast.ServeStream{{Tenant: "a", Reqs: []ocbcast.ServeRequest{{Op: workload.OpBcast, Lines: 1}}}}

	sys := ocbcast.New(ocbcast.Options{Cores: 4})
	if _, err := sys.Serve(ocbcast.ServeConfig{Lanes: 2}, ok); err == nil {
		t.Fatal("lanes beyond the chip's channels accepted")
	}
	sys = ocbcast.New(ocbcast.Options{Cores: 4})
	if _, err := sys.Serve(ocbcast.ServeConfig{Policy: "fifo"}, ok); err == nil {
		t.Fatal("unknown policy accepted")
	}
	sys = ocbcast.New(ocbcast.Options{Cores: 4})
	bad := []ocbcast.ServeStream{{Tenant: "a", Reqs: []ocbcast.ServeRequest{{Op: workload.OpBcast, Root: 4, Lines: 1}}}}
	if _, err := sys.Serve(ocbcast.ServeConfig{}, bad); err == nil {
		t.Fatal("root outside the chip accepted")
	}
	sys = ocbcast.New(ocbcast.Options{Cores: 4})
	if _, err := sys.Serve(ocbcast.ServeConfig{}, nil); err == nil {
		t.Fatal("empty mix accepted")
	}
}
