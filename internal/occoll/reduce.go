package occoll

import (
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/scc"
)

// Reduce combines every core's `lines` cache lines at addr with op; the
// result lands at addr on the root. Unlike the two-sided binomial
// reduction, non-root cores' buffers are left untouched (no scratch area
// is needed): each core stages its contribution in its own MPB, and
// parents fold children's chunks into their MPB-resident accumulator with
// one-sided combining gets, pipelined chunk by chunk up the k-ary tree.
func (x *Collectives) Reduce(root, addr, lines int, op ReduceOp) {
	if op == nil {
		panic("occoll: nil reduce op")
	}
	t, ok := x.begin(root, addr, lines)
	if !ok {
		return
	}
	x.reduceUp(t, addr, lines, op)
}

// AllReduce is OC-Reduce fused with an OC-Bcast of the result: both
// halves share one propagation tree and the same double-buffered MPB
// slots — the reduction's drain handshake doubles as the handoff that
// frees each slot for the broadcast pipeline. Every core ends with the
// combined result at addr.
func (x *Collectives) AllReduce(addr, lines int, op ReduceOp) {
	if op == nil {
		panic("occoll: nil reduce op")
	}
	t, ok := x.begin(0, addr, lines)
	if !ok {
		return
	}
	x.reduceUp(t, addr, lines, op)
	x.bcastDown(t, addr, lines)
}

// reduceUp runs the reduction pipeline toward the root. Per chunk, a
// node stages its own contribution into its MPB slot, folds in each
// child's staged chunk with rma.GetMPBCombine (waiting on the child's
// upReady flag, acking with the child's upConsumed flag), then flags its
// own parent. The root instead drains the fully combined chunk to
// private memory. Flags carry 1-based chunk sequence numbers; slots are
// reused double-buffered like OC-Bcast (§4.2).
func (x *Collectives) reduceUp(t core.Tree, addr, lines int, op ReduceOp) {
	c, cfg := x.core, x.cfg
	n := x.nchunks(lines)
	nb := x.numBuffers()
	seq := func(ch int) uint64 { return uint64(ch) + 1 }

	for ch := 0; ch < n; ch++ {
		m := x.chunkSpan(ch, lines)
		off := addr + ch*cfg.BufLines*scc.CacheLine
		buf := x.bufLine(ch)

		// Reuse my accumulator slot only after my parent consumed the
		// chunk that previously occupied it.
		if t.Rank != 0 && ch >= nb {
			c.WaitFlagGE(x.upConsumedLine(), seq(ch-nb))
		}
		// Stage my own contribution as the slot's accumulator.
		c.PutMemToMPB(c.ID(), buf, off, m)
		// Fold in each child's chunk, in child order (deterministic and,
		// for the integer ops, exactly associative — results are
		// byte-identical to the two-sided composition).
		for i, child := range t.Children {
			c.WaitFlagGE(x.upReadyLine(i), seq(ch))
			c.GetMPBCombine(child, buf, buf, m, op)
			c.Compute(collective.CombineCost(m))
			c.SetFlag(child, x.upConsumedLine(), seq(ch))
		}
		if t.Rank == 0 {
			// Root: land the fully combined chunk in private memory.
			c.GetMPBToMem(c.ID(), buf, off, m)
		} else {
			c.SetFlag(t.Parent, x.upReadyLine(t.ChildIdx), seq(ch))
		}
	}
	// Drain: my parent must have consumed my last staged chunks before I
	// return (or hand the slots to AllReduce's broadcast half).
	if t.Rank != 0 {
		c.WaitFlagGE(x.upConsumedLine(), seq(n-1))
	}
}

// bcastDown is the OC-Bcast §4 chunk pipeline over occoll's own
// flag lines (dnNotify/dnDone), with the §5.4 leaf-direct optimization
// always on: a leaf pulls each chunk from its parent's MPB straight to
// private memory. It delivers `lines` cache lines from the tree root's
// addr to the same address everywhere.
func (x *Collectives) bcastDown(t core.Tree, addr, lines int) {
	c, cfg := x.core, x.cfg
	n := x.nchunks(lines)
	nb := x.numBuffers()
	seq := func(ch int) uint64 { return uint64(ch) + 1 }

	if t.Rank == 0 {
		for ch := 0; ch < n; ch++ {
			m := x.chunkSpan(ch, lines)
			buf := x.bufLine(ch)
			if ch >= nb {
				for i := range t.Children {
					c.WaitFlagGE(x.dnDoneLine(i), seq(ch-nb))
				}
			}
			c.PutMemToMPB(c.ID(), buf, addr+ch*cfg.BufLines*scc.CacheLine, m)
			for _, child := range t.NotifyOwn {
				c.SetFlag(child, x.dnNotifyLine(), seq(ch))
			}
		}
		for i := range t.Children {
			c.WaitFlagGE(x.dnDoneLine(i), seq(n-1))
		}
		return
	}

	for ch := 0; ch < n; ch++ {
		m := x.chunkSpan(ch, lines)
		chunkAddr := addr + ch*cfg.BufLines*scc.CacheLine
		buf := x.bufLine(ch)

		c.WaitFlagGE(x.dnNotifyLine(), seq(ch))
		for _, sib := range t.NotifyFwd {
			c.SetFlag(sib, x.dnNotifyLine(), seq(ch))
		}
		if t.IsLeaf() {
			c.GetMPBToMem(t.Parent, buf, chunkAddr, m)
			c.SetFlag(t.Parent, x.dnDoneLine(t.ChildIdx), seq(ch))
			continue
		}
		if ch >= nb {
			for i := range t.Children {
				c.WaitFlagGE(x.dnDoneLine(i), seq(ch-nb))
			}
		}
		c.GetMPBToMPB(t.Parent, buf, buf, m)
		c.SetFlag(t.Parent, x.dnDoneLine(t.ChildIdx), seq(ch))
		for _, child := range t.NotifyOwn {
			c.SetFlag(child, x.dnNotifyLine(), seq(ch))
		}
		c.GetMPBToMem(c.ID(), buf, chunkAddr, m)
	}
	// Drain: my children must have consumed my last staged chunks.
	for i := range t.Children {
		c.WaitFlagGE(x.dnDoneLine(i), seq(n-1))
	}
}
