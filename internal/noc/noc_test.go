package noc

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/sim"
)

func TestTraverseIdleMeshPipelining(t *testing.T) {
	m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
	src, dst := scc.Coord{X: 0, Y: 0}, scc.Coord{X: 3, Y: 0} // 3 links
	// Virtual cut-through: h + n - 1 link-service times.
	got := m.Traverse(0, src, dst, 5)
	want := sim.Time((3 + 5 - 1) * 2 * int(sim.Nanosecond))
	if got != want {
		t.Fatalf("idle traverse finish = %v, want %v", got, want)
	}
}

func TestTraverseZeroPacketsAndSameTile(t *testing.T) {
	m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
	if got := m.Traverse(7, scc.Coord{X: 1, Y: 1}, scc.Coord{X: 2, Y: 1}, 0); got != 7 {
		t.Fatalf("zero packets cost %v, want 7 (no-op)", got)
	}
	if got := m.Traverse(7, scc.Coord{X: 1, Y: 1}, scc.Coord{X: 1, Y: 1}, 4); got != 7 {
		t.Fatalf("same-tile transfer cost %v, want 7 (local router only)", got)
	}
}

func TestTraverseSharedLinkQueues(t *testing.T) {
	m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
	// Two simultaneous transfers share the (2,0)->(3,0) link.
	a := m.Traverse(0, scc.Coord{X: 2, Y: 0}, scc.Coord{X: 3, Y: 0}, 10)
	b := m.Traverse(0, scc.Coord{X: 2, Y: 0}, scc.Coord{X: 3, Y: 0}, 10)
	if b <= a {
		t.Fatalf("second transfer (%v) must queue behind the first (%v)", b, a)
	}
	stats := m.LinkQueueStats()
	if len(stats) != 1 {
		t.Fatalf("expected 1 used link, got %d", len(stats))
	}
	if stats[0].Packets != 20 || stats[0].Queued == 0 {
		t.Fatalf("link stats wrong: %+v", stats[0])
	}
	m.Reset()
	for _, s := range m.LinkQueueStats() {
		if s.Packets != 0 {
			t.Fatalf("reset did not clear link %v", s.Link)
		}
	}
}

func TestDisjointPathsDoNotInterfere(t *testing.T) {
	m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
	a := m.Traverse(0, scc.Coord{X: 0, Y: 0}, scc.Coord{X: 2, Y: 0}, 8)
	// Different row: no shared links under X-Y routing.
	b := m.Traverse(0, scc.Coord{X: 0, Y: 3}, scc.Coord{X: 2, Y: 3}, 8)
	if a != b {
		t.Fatalf("disjoint transfers differ: %v vs %v", a, b)
	}
}

// TestLinkIndexDense pins the slice-backed link table: every link of
// every X-Y path maps to a distinct in-range dense id, the id round
// trips back to the same link, and stats still report the links that
// were actually used.
func TestLinkIndexDense(t *testing.T) {
	for _, topo := range []scc.Topology{scc.SCC(), scc.Mesh(3, 5), scc.Mesh(16, 12)} {
		m := NewMesh(topo, 2*sim.Nanosecond)
		seen := map[int]scc.Link{}
		for src := 0; src < topo.NumTiles(); src += 3 {
			for dst := 0; dst < topo.NumTiles(); dst += 5 {
				for _, l := range topo.XYPath(topo.TileCoord(src), topo.TileCoord(dst)) {
					idx := m.linkIndex(l)
					if idx < 0 || idx >= len(m.links) {
						t.Fatalf("%v: link %v index %d out of range [0,%d)", topo, l, idx, len(m.links))
					}
					if prev, ok := seen[idx]; ok && prev != l {
						t.Fatalf("%v: links %v and %v collide on index %d", topo, prev, l, idx)
					}
					seen[idx] = l
					if back := m.linkAt(idx); back != l {
						t.Fatalf("%v: linkAt(%d) = %v, want %v", topo, idx, back, l)
					}
				}
			}
		}
	}
}

// TestTraverseDeterministicAcrossBackends pins the Traverse schedule to
// the values the map-backed mesh produced: a fixed route sequence must
// yield the exact same finish times (the link-id refactor is a pure
// lookup optimization).
func TestTraverseDeterministicAcrossBackends(t *testing.T) {
	run := func() []sim.Time {
		m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
		var out []sim.Time
		for i := 0; i < 20; i++ {
			src := scc.TileCoord((i * 7) % scc.NumTiles)
			dst := scc.TileCoord((i*11 + 3) % scc.NumTiles)
			if src == dst {
				continue
			}
			out = append(out, m.Traverse(sim.Time(i), src, dst, 1+i%4))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run-to-run mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
