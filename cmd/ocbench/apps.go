package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/scc"
)

// The apps subcommand replays the synthetic application kernels (SGD,
// stencil, shuffle — internal/workload) through the public System.Replay
// under paper-default and "auto" algorithm selection, writes the
// whole-app speedups into BENCH_simperf.json's "apps" section and fails
// when auto makes any kernel slower than the defaults (beyond noise).
// With -verify it re-checks the checked-in section without simulating —
// the CI gate on whole-application auto-selection quality.

// appCell is one row of the perf file's apps section: one kernel on one
// mesh under both selection modes.
type appCell struct {
	Kernel    string  `json:"kernel"`
	Mesh      string  `json:"mesh"`
	Cores     int     `json:"cores"`
	Records   int     `json:"records"`
	DefaultUs float64 `json:"default_us"`
	AutoUs    float64 `json:"auto_us"`
	Speedup   float64 `json:"speedup"`
}

// appsSection is BENCH_simperf.json's "apps" value: the checked-in
// whole-application validation of auto-selection.
type appsSection struct {
	// MinSpeedupGate is the threshold the cells were gated against;
	// MinSpeedup is the worst observed cell.
	MinSpeedupGate float64   `json:"min_speedup_gate"`
	MinSpeedup     float64   `json:"min_speedup"`
	Cells          []appCell `json:"cells"`
}

// runApps replays the kernel sweep, updates the perf file and gates.
// minSpeedup is the failure threshold (slightly below 1.0 to absorb
// noise-level scheduling differences).
func runApps(cfg scc.Config, effort int, minSpeedup float64) error {
	pts := harness.AppsSweep(cfg, effort)
	harness.AppsTable(pts).Fprint(os.Stdout)

	sec := appsSection{MinSpeedupGate: minSpeedup, MinSpeedup: pts[0].Speedup}
	for _, p := range pts {
		sec.Cells = append(sec.Cells, appCell{
			Kernel:    p.Kernel,
			Mesh:      fmt.Sprintf("%dx%d", p.Topo.W, p.Topo.H),
			Cores:     p.Topo.NumCores(),
			Records:   p.Records,
			DefaultUs: p.DefaultUs,
			AutoUs:    p.AutoUs,
			Speedup:   p.Speedup,
		})
		if p.Speedup < sec.MinSpeedup {
			sec.MinSpeedup = p.Speedup
		}
	}
	if err := patchPerfFile(map[string]any{"apps": sec}); err != nil {
		return err
	}
	fmt.Printf("apps: %d cells, min speedup %.3fx (gate %.2fx), wrote %s\n",
		len(sec.Cells), sec.MinSpeedup, minSpeedup, perfFile)
	return gateApps(sec, minSpeedup)
}

// runAppsVerify gates the checked-in apps section without simulating —
// the cheap CI re-check of the committed table.
func runAppsVerify(minSpeedup float64) error {
	raw, err := os.ReadFile(perfFile)
	if err != nil {
		return fmt.Errorf("apps -verify: %w (run `ocbench apps` first)", err)
	}
	var doc struct {
		Apps *appsSection `json:"apps"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("apps -verify: %s: %w", perfFile, err)
	}
	if doc.Apps == nil || len(doc.Apps.Cells) == 0 {
		return fmt.Errorf("apps -verify: %s has no apps section (run `ocbench apps`)", perfFile)
	}
	fmt.Printf("apps -verify: %d checked-in cells, min speedup %.3fx (gate %.2fx)\n",
		len(doc.Apps.Cells), doc.Apps.MinSpeedup, minSpeedup)
	return gateApps(*doc.Apps, minSpeedup)
}

// gateApps fails when auto-selection makes any kernel slower than the
// paper-default stacks beyond the noise allowance.
func gateApps(sec appsSection, minSpeedup float64) error {
	var bad []appCell
	for _, c := range sec.Cells {
		if c.Speedup < minSpeedup {
			bad = append(bad, c)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	for _, c := range bad {
		fmt.Fprintf(os.Stderr, "apps: SLOWDOWN %s on %s (%d cores): auto %.2f µs vs default %.2f µs (%.3fx < %.2fx)\n",
			c.Kernel, c.Mesh, c.Cores, c.AutoUs, c.DefaultUs, c.Speedup, minSpeedup)
	}
	return fmt.Errorf("apps: %d kernel cell(s) below the %.2fx whole-app speedup gate", len(bad), minSpeedup)
}
