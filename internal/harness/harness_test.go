package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/scc"
)

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(tbl.Rows[row][col], "+"), "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bb"}, Notes: []string{"note"}}
	tbl.AddRow("x", 1.5)
	s := tbl.String()
	for _, want := range []string{"## T", "a", "bb", "x", "1.50", "note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// TestFig3ModelAgreement: the simulator and the analytic model must agree
// almost exactly in contention-free mode (same formulas on both sides).
func TestFig3ModelAgreement(t *testing.T) {
	tbl := Fig3(scc.DefaultConfig())
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i := range tbl.Rows {
		if errPct := cell(t, tbl, i, 5); errPct > 0.01 || errPct < -0.01 {
			t.Errorf("row %v: sim/model disagreement %.3f%%", tbl.Rows[i], errPct)
		}
	}
	// 9 distances x 4 sizes x 2 MPB ops + 4 distances x 4 sizes x 2 mem ops.
	if want := 9*4*2 + 4*4*2; len(tbl.Rows) != want {
		t.Errorf("row count = %d, want %d", len(tbl.Rows), want)
	}
}

func TestTable1Experiment(t *testing.T) {
	tbl, err := Table1(scc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8 parameters", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		want, got := cell(t, tbl, i, 1), cell(t, tbl, i, 2)
		if diff := want - got; diff > 0.001 || diff < -0.001 {
			t.Errorf("parameter %s: configured %.3f fitted %.3f", tbl.Rows[i][0], want, got)
		}
	}
}

// TestFig4Shape: the contention knee — no meaningful slowdown at ≤24
// accessors, clear slowdown and ≥2x (get) / ≥3x (put) spread at 47.
func TestFig4Shape(t *testing.T) {
	tbl := Fig4(scc.DefaultConfig(), 20)
	rowFor := func(op string, n int) int {
		for i, r := range tbl.Rows {
			if r[0] == op && r[1] == strconv.Itoa(n) {
				return i
			}
		}
		t.Fatalf("row %s/%d not found", op, n)
		return -1
	}
	// Gets: avg at 24 within 15% of avg at 1; avg at 48 well above.
	g1 := cell(t, tbl, rowFor("get 128CL", 1), 2)
	g24 := cell(t, tbl, rowFor("get 128CL", 24), 2)
	g48 := cell(t, tbl, rowFor("get 128CL", 47), 2)
	if g24 > 1.15*g1 {
		t.Errorf("get contention visible at 24 accessors: %.2f vs %.2f", g24, g1)
	}
	if g48 < 1.3*g1 {
		t.Errorf("get contention too weak at 47 accessors: %.2f vs %.2f", g48, g1)
	}
	if spread := cell(t, tbl, rowFor("get 128CL", 47), 5); spread < 2 {
		t.Errorf("get slow/fast spread at 47 = %.2f, want >= 2 (paper: >2x)", spread)
	}
	// Puts.
	p1 := cell(t, tbl, rowFor("put 1CL", 1), 2)
	p48 := cell(t, tbl, rowFor("put 1CL", 47), 2)
	if p48 < 1.3*p1 {
		t.Errorf("put contention too weak at 47: %.2f vs %.2f", p48, p1)
	}
	if spread := cell(t, tbl, rowFor("put 1CL", 47), 5); spread < 3 {
		t.Errorf("put slow/fast spread at 47 = %.2f, want >= 3 (paper: >4x)", spread)
	}
}

// TestFig8aShape: measured latency — OC-Bcast k=7 wins ≥20% at 1 CL and
// at every plotted size; k=7 and k=47 stay within ~20% of each other
// (contention erases the model's k=47 edge).
func TestFig8aShape(t *testing.T) {
	cfg := scc.DefaultConfig()
	tbl := Fig8a(cfg, 2)
	for i := range tbl.Rows {
		k7, bin := cell(t, tbl, i, 2), cell(t, tbl, i, 4)
		if k7 >= bin {
			t.Errorf("size %s: OC k=7 (%.2f) not below binomial (%.2f)", tbl.Rows[i][0], k7, bin)
		}
	}
	k7_1, bin1 := cell(t, tbl, 0, 2), cell(t, tbl, 0, 4)
	if imp := (bin1 - k7_1) / bin1; imp < 0.20 {
		t.Errorf("1-CL improvement %.0f%%, paper reports 27%%", imp*100)
	}
	// k=7 vs k=47 at 96 lines: close. The paper's curves overlap; our
	// contention model leaves a small residual penalty on k=47 (see
	// EXPERIMENTS.md), so allow up to ~45%.
	for i := range tbl.Rows {
		if tbl.Rows[i][0] != "96" {
			continue
		}
		k7, k47 := cell(t, tbl, i, 2), cell(t, tbl, i, 3)
		ratio := k47 / k7
		if ratio < 0.75 || ratio > 1.45 {
			t.Errorf("k=47/k=7 at 96 CL = %.2f, expect rough parity (paper: curves overlap)", ratio)
		}
	}
}

// TestFig8bShape: measured throughput — ~3x advantage at the peak and the
// 97-CL dip.
func TestFig8bShape(t *testing.T) {
	cfg := scc.DefaultConfig()
	tbl := Fig8b(cfg, 1)
	byCL := map[string][]float64{}
	for i, r := range tbl.Rows {
		byCL[r[0]] = []float64{cell(t, tbl, i, 1), cell(t, tbl, i, 2), cell(t, tbl, i, 3), cell(t, tbl, i, 4)}
	}
	peak := byCL["8192"]
	if ratio := peak[1] / peak[3]; ratio < 2.2 {
		t.Errorf("k=7 vs s-ag peak throughput ratio = %.2f, paper: almost 3x", ratio)
	}
	// 97-CL dip: throughput at 97 lines below 96 lines for k=7.
	if byCL["97"][1] >= byCL["96"][1] {
		t.Errorf("no 97-CL dip: thr(97)=%.2f >= thr(96)=%.2f", byCL["97"][1], byCL["96"][1])
	}
	// Throughput grows with size up to the peak region for k=7.
	if byCL["8192"][1] <= byCL["256"][1] {
		t.Errorf("throughput not saturating upward: %.2f at 8192 vs %.2f at 256",
			byCL["8192"][1], byCL["256"][1])
	}
}

// TestMeshStressNoContention: the paper's negative result, reproduced
// with the detailed NoC model.
func TestMeshStressNoContention(t *testing.T) {
	tbl := MeshStress(scc.DefaultConfig(), 10)
	free, loaded := cell(t, tbl, 0, 1), cell(t, tbl, 1, 1)
	if loaded > 1.05*free {
		t.Errorf("mesh contention appeared: loaded %.3f vs free %.3f", loaded, free)
	}
}

// TestAblationNotification: binary tree must beat sequential notification
// for large k.
func TestAblationNotification(t *testing.T) {
	tbl := AblationNotification(scc.DefaultConfig(), 1)
	last := len(tbl.Rows) - 1 // k = 47
	bin, seq := cell(t, tbl, last, 1), cell(t, tbl, last, 2)
	if bin >= seq {
		t.Errorf("binary notification (%.2f) not faster than sequential (%.2f) at k=47", bin, seq)
	}
}

// TestAblationBuffering: double buffering wins latency at the 192-CL
// point and does not lose throughput.
func TestAblationBuffering(t *testing.T) {
	tbl := AblationBuffering(scc.DefaultConfig(), 1)
	latD, thD := cell(t, tbl, 0, 1), cell(t, tbl, 0, 2)
	latS, thS := cell(t, tbl, 1, 1), cell(t, tbl, 1, 2)
	if latD >= latS {
		t.Errorf("double buffering latency %.2f not below single %.2f", latD, latS)
	}
	if thD < 0.9*thS {
		t.Errorf("double buffering throughput %.2f well below single %.2f", thD, thS)
	}
}

func TestHeadline(t *testing.T) {
	tbl := Headline(scc.DefaultConfig(), 2)
	if len(tbl.Rows) != 6 {
		t.Fatalf("headline rows = %d, want 6", len(tbl.Rows))
	}
	// Improvement row formatted as "NN%".
	imp := tbl.Rows[2][2]
	if !strings.HasSuffix(imp, "%") {
		t.Fatalf("improvement cell %q", imp)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(imp, "%"), 64)
	if err != nil || v < 20 {
		t.Errorf("latency improvement %q, want >= 20%% (paper: 27%%)", imp)
	}
}

func TestRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(reg))
	}
	if _, err := Lookup("fig8a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Fast experiments run end to end through the registry.
	for _, name := range []string{"fig6", "table2", "table1"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		tabs, err := e.Run(scc.DefaultConfig(), 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			t.Fatalf("%s returned empty tables", name)
		}
	}
}

func TestMeasureBcastUnknownAlg(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm did not panic")
		}
	}()
	MeasureBcast(scc.DefaultConfig(), Alg{Name: "zzz"}, 4, 1, 1)
}
