package rma

import (
	"bytes"
	"testing"

	"repro/internal/scc"
	"repro/internal/sim"
)

func TestIPIDeliveryAndOverhead(t *testing.T) {
	cfg := contentionFreeCfg()
	chip := NewChipN(cfg, 4)
	p := cfg.Params
	var handled sim.Time
	chip.Run(func(c *Core) {
		switch c.ID() {
		case 0:
			c.Compute(10 * sim.Microsecond)
			c.SendIPI(3)
		case 3:
			handled = c.WaitIPI()
		}
	})
	d := sim.Duration(scc.CoreDistance(0, 3))
	wantDelivery := 10*sim.Microsecond + p.OMpb + d*p.Lhop
	if handled != wantDelivery+2*sim.Microsecond {
		t.Fatalf("handler started at %v, want delivery %v + 2µs overhead", handled, wantDelivery)
	}
}

func TestIPIQueueing(t *testing.T) {
	chip := NewChipN(contentionFreeCfg(), 2)
	var count int
	chip.Run(func(c *Core) {
		switch c.ID() {
		case 0:
			for i := 0; i < 3; i++ {
				c.SendIPI(1)
			}
		case 1:
			c.Compute(50 * sim.Microsecond) // all three arrive while busy
			for c.PendingIPIs() > 0 {
				c.WaitIPI()
				count++
			}
		}
	})
	if count != 3 {
		t.Fatalf("consumed %d interrupts, want 3", count)
	}
}

func TestIPIWaitBeforeSend(t *testing.T) {
	// The waiter blocks first; the IPI must wake it at delivery time.
	chip := NewChipN(contentionFreeCfg(), 2)
	var woke sim.Time
	chip.Run(func(c *Core) {
		switch c.ID() {
		case 0:
			c.WaitIPI()
			woke = c.Now()
		case 1:
			c.Compute(7 * sim.Microsecond)
			c.SendIPI(0)
		}
	})
	if woke <= 7*sim.Microsecond {
		t.Fatalf("waiter woke at %v, before the IPI was sent", woke)
	}
}

func TestPutLineReadLineBytes(t *testing.T) {
	chip := NewChipN(scc.DefaultConfig(), 3)
	payload := []byte("mpmd-descriptor-0123456789abcdef") // 32 bytes
	var got []byte
	chip.Run(func(c *Core) {
		switch c.ID() {
		case 0:
			c.PutLine(2, 100, payload)
			c.SendIPI(2)
		case 2:
			c.WaitIPI()
			got = c.ReadLineBytes(2, 100)
		}
	})
	if !bytes.Equal(got, payload) {
		t.Fatalf("descriptor round trip failed: %q", got)
	}
}
