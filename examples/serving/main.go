// Serving: run the chip as a long-running multi-tenant collective
// service. Three tenants — a heavy data-parallel trainer, a stencil
// solver and a light telemetry stream — share one simulated SCC under
// weighted fairness: requests are admitted against a bounded queue,
// same-op batches coalesce, and concurrent batches spread over the
// chip's MPB lanes via the non-blocking one-sided collectives. The mix
// is written in the ocserve v1 text format and served twice (same seed,
// fresh chips) to demonstrate the runtime's bit-determinism.
package main

import (
	"fmt"
	"log"

	ocbcast "repro"
)

// Three tenants with 3:2:1 weights. Each `req op root lines gap_us`
// line is one arrival, gap_us after the previous one: the trainer
// alternates a model broadcast with gradient all-reduces, the solver
// reduces residuals, telemetry gathers tiny samples.
const specText = `ocserve v1
policy wrr
queue 16
batch 4 128
lanes 4
tenant trainer 3
req bcast 0 32 0
req allreduce 0 16 30
req allreduce 0 16 30
req bcast 0 32 30
req allreduce 0 16 30
req allreduce 0 16 30
tenant solver 2
req reduce 0 8 10
req reduce 0 8 60
req allreduce 0 8 60
req reduce 0 8 60
tenant telemetry 1
req gather 0 1 5
req gather 0 1 80
req gather 0 1 80
req gather 0 1 80
`

func main() {
	cfg, streams, err := ocbcast.ParseServeSpec([]byte(specText))
	if err != nil {
		log.Fatal(err)
	}

	serve := func() ocbcast.ServeStats {
		// 4 channels so the runtime can keep 4 non-blocking batches in
		// flight (16-line chunks so all 4 lanes fit in the 256-line MPB);
		// "auto" resolves each blocking dispatch per the model.
		sys := ocbcast.New(ocbcast.Options{
			Channels: 4, ChunkLines: 16, Algorithm: "auto",
		})
		stats, err := sys.Serve(cfg, streams)
		if err != nil {
			log.Fatal(err)
		}
		return stats
	}

	stats := serve()
	fmt.Printf("served %d requests in %d batches over %.0f µs (%s policy, %.2f req/batch)\n",
		stats.Completed, stats.Batches, stats.MakespanUs, stats.Policy, stats.BatchOccupancy)
	fmt.Printf("aggregate: %.0f req/s, p50 %.1f µs, p99 %.1f µs\n",
		stats.ThroughputRps, stats.P50Us, stats.P99Us)
	for _, tm := range stats.Tenants {
		fmt.Printf("  %-9s w=%d  completed %2d/%2d  p99 %8.1f µs  %6.0f req/s\n",
			tm.Tenant, tm.Weight, tm.Completed, tm.Offered, tm.P99Us, tm.ThroughputRps)
	}

	again := serve()
	fmt.Printf("determinism: same mix on a fresh chip is bit-identical: %v\n",
		stats.Fingerprint() == again.Fingerprint())
}
