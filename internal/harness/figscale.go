package harness

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/scc"
)

// ScaleMeshes is the fig-scale topology sweep: the real 48-core SCC and
// progressively larger meshes of the same tiles — 96, 192 and 384 cores.
// Every layer of the stack (routing, MPB addressing, tree builders,
// model hop terms) is parameterized by the topology, so the same
// collectives run unmodified at every size.
func ScaleMeshes() []scc.Topology {
	return []scc.Topology{
		scc.SCC(),        //  48 cores, the paper's chip
		scc.Mesh(8, 6),   //  96 cores
		scc.Mesh(12, 8),  // 192 cores
		scc.Mesh(16, 12), // 384 cores
	}
}

// ScalePoint is one cell of the scaling sweep: a collective on one
// topology, simulated and predicted by the closed-form model with
// topology-derived hop terms.
type ScalePoint struct {
	Topo    scc.Topology
	Op      string // "bcast-oc" or "allreduce-oc"
	Lines   int
	K       int
	SimUs   float64 // simulated mean latency, µs
	ModelUs float64 // closed-form prediction, µs
	ErrPct  float64 // 100·(model−sim)/sim
}

// ScaleSweep cross-validates the analytical model against the simulator
// for OC-Bcast and AllReduceOC on every ScaleMeshes topology, at fan-out
// k = 7 and a message of `lines` cache lines. Cells are sharded across
// ParallelMap workers; like every harness sweep, the simulated values
// are independent of the sharding.
func ScaleSweep(cfg scc.Config, lines, reps int) []ScalePoint {
	const k = 7
	type cell struct {
		topo scc.Topology
		op   string
	}
	var cells []cell
	for _, m := range ScaleMeshes() {
		cells = append(cells, cell{m, "bcast-oc"}, cell{m, "allreduce-oc"})
	}
	mdl := model.New(cfg.Params)
	return ParallelMap(len(cells), func(i int) ScalePoint {
		c := cells[i]
		cfg2 := cfg
		cfg2.Topo = c.topo
		n := c.topo.NumCores()
		pt := ScalePoint{Topo: c.topo, Op: c.op, Lines: lines, K: k}
		switch c.op {
		case "bcast-oc":
			pt.SimUs = mean(MeasureBcast(cfg2, Alg{Name: "oc", K: k}, n, lines, reps))
			pt.ModelUs = mdl.OCBcastLatency(model.BcastParamsFor(c.topo, n, k), lines, k).Microseconds()
		case "allreduce-oc":
			pt.SimUs = mean(MeasureAllReduce(cfg2, VariantOC, k, n, lines, reps))
			pt.ModelUs = mdl.OCAllReduceLatency(model.ReduceParamsFor(c.topo, n, k), lines, k).Microseconds()
		}
		pt.ErrPct = 100 * (pt.ModelUs - pt.SimUs) / pt.SimUs
		return pt
	})
}

// FigScale renders the topology-scaling experiment: simulated vs modeled
// latency for OC-Bcast and AllReduceOC from 48 to 384 cores. It is the
// scale-out counterpart of Figure 8a: the paper validates the model on
// the one real 48-core chip; this table shows the same model, with hop
// terms derived from each topology, tracking the simulator across 8× the
// paper's core count.
func FigScale(cfg scc.Config, effort int) *Table {
	if effort < 1 {
		effort = 1
	}
	const lines = 96 // one full Moc chunk
	pts := ScaleSweep(cfg, lines, 1+effort)

	tbl := &Table{
		Title:   "fig-scale — model vs simulation across mesh sizes (µs)",
		Columns: []string{"mesh", "cores", "op", "CL", "sim", "model", "err%"},
		Notes: []string{
			"OC-Bcast and AllReduceOC at k=7; model hop terms (DMpb, DMem)",
			"derived from each topology's k-ary tree and controller placement.",
			"Cross-validation target: |err| <= 15% at every size.",
		},
	}
	for _, p := range pts {
		tbl.AddRow(
			fmt.Sprintf("%dx%d", p.Topo.W, p.Topo.H), fmt.Sprint(p.Topo.NumCores()), p.Op,
			fmt.Sprint(p.Lines),
			fmt.Sprintf("%.2f", p.SimUs),
			fmt.Sprintf("%.2f", p.ModelUs),
			fmt.Sprintf("%+.2f", p.ErrPct),
		)
	}
	return tbl
}
