// Quickstart: broadcast a message from core 0 to all 48 cores of the
// simulated SCC with OC-Bcast, verify delivery, and print the virtual
// latency — the minimal end-to-end use of the public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	ocbcast "repro"
)

func main() {
	const lines = 96 // one OC-Bcast chunk = 96 cache lines = 3 KiB

	sys := ocbcast.New(ocbcast.Options{}) // 48 cores, paper defaults (k=7)

	// Stage a payload in core 0's private off-chip memory.
	msg := bytes.Repeat([]byte("OC-Bcast! "), lines*ocbcast.CacheLineBytes/10+1)
	msg = msg[:lines*ocbcast.CacheLineBytes]
	sys.WritePrivate(0, 0, msg)

	// SPMD: every core calls the collective with matching arguments.
	var latest float64
	sys.Run(func(c *ocbcast.Core) {
		c.Broadcast(0, 0, lines)
		if us := c.NowMicros(); us > latest {
			latest = us
		}
	})

	// Verify delivery on every core.
	for i := 0; i < sys.N(); i++ {
		if !bytes.Equal(sys.ReadPrivate(i, 0, len(msg)), msg) {
			log.Fatalf("core %d did not receive the payload", i)
		}
	}
	fmt.Printf("broadcast %d bytes to %d cores in %.2f µs (virtual time)\n",
		len(msg), sys.N(), latest)
	fmt.Printf("root off-chip traffic: %d lines read (exactly the message, the paper's §5 point)\n",
		sys.Counters(0).MemReadLines)
}
