// Package mem implements the SCC's storage components as seen by the
// simulator: per-core Message Passing Buffers (MPB, paper §2.1) with the
// 32-byte line atomicity §5.1 relies on and the FIFO port contention
// model of §3.3, per-core private off-chip memory, and the L1-style
// cache model for private-memory reads that Formula 14 exploits. MPB
// capacity comes from the chip's topology (256 lines per core on the
// real SCC).
//
// Writes carry an effective virtual timestamp: a read at time t observes
// exactly the writes whose effective time is ≤ t. Because the engine
// executes operations in nondecreasing global time order, pending writes
// can be folded into the backing store lazily.
//
// Not-yet-visible writes are tracked as *extents*: one pendingExtent
// record covers a whole contiguous bulk transfer (base effective time
// plus a constant per-line stride), so an m-line RMA op costs one pending
// record instead of m per-line map entries. WriteLines/ReadLinesInto are
// the bulk entry points; WriteLine/ReadLine/ReadInto remain as the
// single-line special case.
package mem

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/scc"
	"repro/internal/sim"
)

// MPB is one core's message-passing buffer (8 KB on the real SCC; the
// capacity comes from the chip's topology). All accesses are at
// cache-line granularity; the SCC guarantees read/write atomicity per
// 32 B line (paper §5.1), which the simulator enforces structurally by
// only moving whole lines.
type MPB struct {
	owner int // core id
	lines int // capacity in cache lines
	eng   *sim.Engine
	data  []byte

	// pending holds not-yet-visible write extents in issue order. The
	// extents covering a given line form that line's write queue:
	// writes are issued in nondecreasing time order, and each line
	// folds its own prefix independently.
	pending []*pendingExtent
	// free recycles fully folded extents (and their line buffers) so the
	// steady-state write path allocates nothing.
	free []*pendingExtent
	// pendCnt counts, per line, the pending extents whose write to that
	// line has not folded yet — an index over `pending` that lets the
	// read-side scans (settle, peekU64At, satisfiedAt) skip lines with
	// no unapplied writes in O(1) instead of walking the whole list.
	pendCnt []uint32
	// settledAt is the largest read time settle has folded to — a safe
	// fold horizon for sweepPending, because the engine executes
	// operations in nondecreasing global time order, so every future
	// read happens at or after it.
	settledAt sim.Time
	// sweepAt is the pending-list length that triggers the next
	// sweepPending, doubled after each sweep so a workload whose extents
	// genuinely cannot fold yet pays amortized O(1) per write.
	sweepAt int
	// sweepBlocked is sweepPending's reusable per-line blocked bitmap.
	sweepBlocked []uint64
	// dirty marks lines whose backing bytes have been written (folded)
	// since the last Reset, so Reset zeroes only those lines instead of
	// the whole buffer — most simulations touch a handful of lines per
	// MPB, and pooled reruns pay per line used, not per line owned.
	dirty []uint64

	// Port is the FIFO server modelling the MPB's access port, the
	// contention point measured in Figure 4.
	Port *sim.Resource

	// lastAccess tracks when each core last touched this MPB's port
	// (accessNever = not yet), for the active-accessor count that drives
	// the §3.3 beyond-the-knee contention penalty. Indexed by core id
	// and grown on demand: a flat scan of a few dozen entries beats the
	// map iteration this used to be on the per-op hot path.
	lastAccess []sim.Time
	// accessLog keeps each core's access timestamps within the trailing
	// window, to measure how *sustained* its pressure on the port is.
	accessLog [][]sim.Time

	// wait is the reusable wait condition for WaitU64*: in this codebase
	// only the MPB's owner ever waits on its own MPB (flag waits are
	// local polls), so one embedded record suffices; a concurrent second
	// waiter falls back to a one-shot closure.
	wait u64Wait
}

// Wait-comparison selectors for the closure-free WaitU64 variants.
const (
	waitPred uint8 = iota // arbitrary predicate (allocates a closure)
	waitGE                // value ≥ threshold
	waitEQ                // value == threshold
)

// u64Wait is an MPB's embedded flag-wait condition. Reusing it across
// waits keeps the steady-state block path allocation-free; the fields
// are rewritten per wait and the record is released when the process
// wakes.
type u64Wait struct {
	m      *MPB
	p      *sim.Proc
	line   int
	op     uint8
	val    uint64
	pred   func(uint64) bool
	active bool
}

func (w *u64Wait) Holds() bool {
	_, ok := w.m.satisfiedAt(w.line, w.p.Now(), w.op, w.val, w.pred)
	return ok
}

// pendingExtent is one not-yet-folded bulk write of n consecutive lines
// starting at line0, where line line0+i becomes visible at eff0+i·stride.
// applied marks lines already folded into the backing store (each line
// settles independently, in its own prefix order); it is sized to the
// extent (one bit per line) and recycled with it, so MPB capacity can
// vary per topology without a compile-time bound.
type pendingExtent struct {
	line0, n int
	eff0     sim.Time
	stride   sim.Duration
	data     []byte // n×32 bytes, owned by the MPB
	applied  []uint64
	// appliedArr backs applied without a separate heap allocation for
	// extents of up to 256 lines (any default-topology transfer); larger
	// MPB shares fall back to an owned slice.
	appliedArr [4]uint64
	nApplied   int
}

func (x *pendingExtent) covers(line int) bool {
	return line >= x.line0 && line < x.line0+x.n
}

func (x *pendingExtent) effAt(line int) sim.Time {
	return x.eff0 + sim.Duration(line-x.line0)*x.stride
}

func (x *pendingExtent) lineData(line int) []byte {
	off := (line - x.line0) * scc.CacheLine
	return x.data[off : off+scc.CacheLine]
}

func (x *pendingExtent) isApplied(line int) bool {
	i := line - x.line0
	return x.applied[i/64]&(1<<(i%64)) != 0
}

func (x *pendingExtent) markApplied(line int) {
	i := line - x.line0
	x.applied[i/64] |= 1 << (i % 64)
	x.nApplied++
}

// NewMPB creates core owner's MPB of `lines` cache lines (the per-core
// share from the chip's topology; 256 on the real SCC) backed by engine e.
func NewMPB(e *sim.Engine, owner, lines int, readSvc sim.Duration) *MPB {
	if lines < 1 {
		panic(fmt.Sprintf("mem: MPB[%d] capacity %d lines must be positive", owner, lines))
	}
	return &MPB{
		owner:   owner,
		lines:   lines,
		eng:     e,
		data:    make([]byte, lines*scc.CacheLine),
		pendCnt: make([]uint32, lines),
		dirty:   make([]uint64, (lines+63)/64),
		Port:    sim.NewResource(fmt.Sprintf("mpb[%d]", owner), readSvc),
	}
}

// accessNever marks a core that has not touched this MPB's port. It is
// far enough below any simulated time that last+window arithmetic
// cannot reach a real timestamp.
const accessNever = sim.Time(-1 << 60)

// accessSlot ensures the access-tracking slices cover core.
func (m *MPB) accessSlot(core int) {
	for len(m.lastAccess) <= core {
		m.lastAccess = append(m.lastAccess, accessNever)
		m.accessLog = append(m.accessLog, nil)
	}
}

// NoteAccess records that core touched this MPB's port at time t and
// returns how many times it did so within the trailing window (including
// this access) — the sustained-pressure measure behind the contention
// penalty: a single burst (one OC-Bcast chunk) is not sustained; Figure
// 4's back-to-back loops are.
func (m *MPB) NoteAccess(core int, t sim.Time, window sim.Duration) int {
	m.accessSlot(core)
	m.lastAccess[core] = t
	log := m.accessLog[core]
	i := 0
	for i < len(log) && log[i]+window < t {
		i++
	}
	if i > 0 {
		n := copy(log, log[i:])
		log = log[:n]
	}
	log = append(log, t)
	m.accessLog[core] = log
	return len(log)
}

// ActiveAccessors counts distinct cores that touched the port within the
// trailing window — the concurrency measure behind the paper's ~24-core
// contention knee.
func (m *MPB) ActiveAccessors(t sim.Time, window sim.Duration) int {
	n := 0
	for _, last := range m.lastAccess {
		if last != accessNever && last+window >= t {
			n++
		}
	}
	return n
}

// Owner reports the core id owning this MPB.
func (m *MPB) Owner() int { return m.owner }

// Lines reports the MPB capacity in cache lines.
func (m *MPB) Lines() int { return m.lines }

// watchKey returns the engine watch key for a line of this MPB.
func (m *MPB) watchKey(line int) sim.WatchKey {
	return sim.WatchKey{Space: m.owner, Line: line}
}

func (m *MPB) checkLine(line int) {
	if line < 0 || line >= m.lines {
		panic(fmt.Sprintf("mem: MPB[%d] line %d out of range [0,%d)", m.owner, line, m.lines))
	}
}

// settle folds pending writes with effective time ≤ t into the backing
// store for the given line. Per line, folding stops at the first pending
// write in the future — each line consumes its own issue-order prefix.
func (m *MPB) settle(line int, t sim.Time) {
	if t > m.settledAt {
		m.settledAt = t
	}
	left := m.pendCnt[line]
	if left == 0 {
		return
	}
	completed := false
	for _, x := range m.pending {
		if !x.covers(line) || x.isApplied(line) {
			continue
		}
		if x.effAt(line) > t {
			break
		}
		m.fold(x, line)
		completed = completed || x.nApplied == x.n
		if left--; left == 0 {
			break // every unapplied extent for this line seen
		}
	}
	if completed {
		m.compact()
	}
}

// rangeClear reports whether no bit in [lo, hi) of the bitmap is set.
func rangeClear(bits []uint64, lo, hi int) bool {
	for w := lo / 64; w <= (hi-1)/64; w++ {
		mask := ^uint64(0)
		if w == lo/64 {
			mask &= ^uint64(0) << (lo % 64)
		}
		if w == (hi-1)/64 {
			mask &= ^uint64(0) >> (63 - (hi-1)%64)
		}
		if bits[w]&mask != 0 {
			return false
		}
	}
	return true
}

// fold copies one pending line into the backing store and maintains the
// per-line unapplied index.
func (m *MPB) fold(x *pendingExtent, line int) {
	copy(m.data[line*scc.CacheLine:], x.lineData(line))
	m.dirty[line/64] |= 1 << (line % 64)
	x.markApplied(line)
	m.pendCnt[line]--
}

// compact recycles every fully folded extent, wherever it sits in the
// list: a fully folded extent is invisible to reads (they skip applied
// lines), so removal order doesn't matter. Extents covering lines that
// are written but never read again (e.g. a collective's unread flag
// slots) can therefore not pin completed extents behind them.
func (m *MPB) compact() {
	kept := m.pending[:0]
	for _, x := range m.pending {
		if x.nApplied == x.n {
			m.recycle(x)
		} else {
			kept = append(kept, x)
		}
	}
	for j := len(kept); j < len(m.pending); j++ {
		m.pending[j] = nil
	}
	m.pending = kept
}

func (m *MPB) recycle(x *pendingExtent) {
	for i := range x.applied {
		x.applied[i] = 0
	}
	x.nApplied = 0
	x.n = 0
	m.free = append(m.free, x)
}

// newExtent returns a recycled or fresh extent with room for n lines.
// Both the data buffer and the applied bitmap are recycled, so the
// steady-state write path allocates nothing.
func (m *MPB) newExtent(n int) *pendingExtent {
	var x *pendingExtent
	if k := len(m.free); k > 0 {
		x = m.free[k-1]
		m.free[k-1] = nil
		m.free = m.free[:k-1]
	} else {
		x = &pendingExtent{}
	}
	need := n * scc.CacheLine
	if cap(x.data) < need {
		// Round the buffer up to a power-of-two class so the pool's
		// buffers converge on sizes that serve every smaller transfer,
		// instead of churning reallocations when a recycled small-flag
		// extent is popped for a larger payload write.
		class := scc.CacheLine
		for class < need {
			class <<= 1
		}
		x.data = make([]byte, need, class)
	}
	x.data = x.data[:need]
	words := (n + 63) / 64
	switch {
	case words <= len(x.appliedArr):
		x.applied = x.appliedArr[:words]
	case cap(x.applied) >= words:
		x.applied = x.applied[:words]
	default:
		x.applied = make([]uint64, words)
	}
	x.n = n
	return x
}

// sweepPending folds every pending line value whose effective time has
// already been observed by some read (settledAt is a safe horizon: the
// engine executes operations in nondecreasing global time order, so no
// future read can arrive earlier). Without it, an extent whose lines are
// never read again — a collective's final flag write, a lane's abandoned
// slot — stays pending for the rest of the simulation: the pool starves,
// and every settle scans an ever-growing list, turning long replays
// quadratic. The trigger threshold doubles when a sweep cannot shrink
// the list (extents genuinely still in the future), keeping the
// amortized cost per write O(1).
func (m *MPB) sweepPending() {
	words := (m.lines + 63) / 64
	if cap(m.sweepBlocked) < words {
		m.sweepBlocked = make([]uint64, words)
	}
	blocked := m.sweepBlocked[:words]
	for i := range blocked {
		blocked[i] = 0
	}
	completed := false
	for _, x := range m.pending {
		for line := x.line0; line < x.line0+x.n; line++ {
			if blocked[line/64]&(1<<(line%64)) != 0 || x.isApplied(line) {
				continue
			}
			if x.effAt(line) > m.settledAt {
				// A future write blocks this line's queue: later
				// extents must not fold ahead of it.
				blocked[line/64] |= 1 << (line % 64)
				continue
			}
			m.fold(x, line)
			completed = completed || x.nApplied == x.n
		}
	}
	if completed {
		m.compact()
	}
	m.sweepAt = 2 * len(m.pending)
	if m.sweepAt < sweepMinPending {
		m.sweepAt = sweepMinPending
	}
}

// sweepMinPending is the pending-list length below which sweepPending is
// never triggered: short lists are cheap to scan and recycle naturally.
const sweepMinPending = 64

// ReadLine returns the 32-byte content of a line as visible at time t.
// The returned slice is a copy.
func (m *MPB) ReadLine(line int, t sim.Time) []byte {
	m.checkLine(line)
	m.settle(line, t)
	out := make([]byte, scc.CacheLine)
	copy(out, m.data[line*scc.CacheLine:])
	return out
}

// ReadInto copies the line visible at time t into dst (≥32 bytes).
func (m *MPB) ReadInto(dst []byte, line int, t sim.Time) {
	m.checkLine(line)
	m.settle(line, t)
	copy(dst[:scc.CacheLine], m.data[line*scc.CacheLine:])
}

// ReadLinesInto copies n consecutive lines starting at line0 into dst
// (≥ n×32 bytes), where line line0+i is read as visible at t0+i·stride —
// the per-line read times of a bulk RMA op whose per-line cost is
// constant. It allocates nothing.
func (m *MPB) ReadLinesInto(dst []byte, line0, n int, t0 sim.Time, stride sim.Duration) {
	if n <= 0 {
		panic(fmt.Sprintf("mem: MPB[%d] non-positive read extent %d", m.owner, n))
	}
	m.checkLine(line0)
	m.checkLine(line0 + n - 1)
	// Settling a line only writes that line's bytes, so settling the
	// whole range first and copying once is identical to interleaving —
	// and replaces n 32-byte copies with a single memmove.
	m.settleRange(line0, n, t0, stride)
	copy(dst[:n*scc.CacheLine], m.data[line0*scc.CacheLine:(line0+n)*scc.CacheLine])
}

// settleRange folds pending writes visible to a bulk read of n lines
// starting at line0, where line line0+i is read at t0+i·stride: the
// per-extent equivalent of calling settle once per line, scanning the
// pending list once instead of once per line. Per line, folding stops
// at the first pending write in the future (tracked in the reusable
// blocked bitmap, as in sweepPending), preserving each line's
// issue-order prefix rule; the outcome is identical to the per-line
// loop. The scan stops as soon as every unapplied (extent, line) pair
// in the range has been disposed of — folded or found in the future.
func (m *MPB) settleRange(line0, n int, t0 sim.Time, stride sim.Duration) {
	if tMax := t0 + sim.Duration(n-1)*stride; tMax > m.settledAt {
		m.settledAt = tMax
	}
	todo := 0
	for i := line0; i < line0+n; i++ {
		todo += int(m.pendCnt[i])
	}
	if todo == 0 {
		return
	}
	words := (m.lines + 63) / 64
	if cap(m.sweepBlocked) < words {
		m.sweepBlocked = make([]uint64, words)
	}
	blocked := m.sweepBlocked[:words]
	for i := range blocked {
		blocked[i] = 0
	}
	completed := false
	for _, x := range m.pending {
		lo, hi := x.line0, x.line0+x.n
		if lo < line0 {
			lo = line0
		}
		if hi > line0+n {
			hi = line0 + n
		}
		if lo >= hi {
			continue
		}
		// Whole-extent fast path: an untouched extent fully inside the
		// read range whose every line is visible folds with one memmove.
		// eff(line)−t(line) is affine in line, so checking both ends
		// covers the middle; the blocked bits guard earlier future
		// writes to any of its lines.
		if lo == x.line0 && hi == x.line0+x.n && x.nApplied == 0 &&
			rangeClear(blocked, lo, hi) &&
			x.eff0 <= t0+sim.Duration(lo-line0)*stride &&
			x.effAt(hi-1) <= t0+sim.Duration(hi-1-line0)*stride {
			copy(m.data[lo*scc.CacheLine:], x.data)
			for i := range x.applied {
				x.applied[i] = ^uint64(0)
			}
			x.nApplied = x.n
			for line := lo; line < hi; line++ {
				m.dirty[line/64] |= 1 << (line % 64)
				m.pendCnt[line]--
			}
			todo -= x.n
			completed = true
			if todo == 0 {
				break
			}
			continue
		}
		for line := lo; line < hi; line++ {
			if x.isApplied(line) {
				continue
			}
			todo--
			if blocked[line/64]&(1<<(line%64)) != 0 {
				continue
			}
			if x.effAt(line) > t0+sim.Duration(line-line0)*stride {
				blocked[line/64] |= 1 << (line % 64)
				continue
			}
			m.fold(x, line)
			completed = completed || x.nApplied == x.n
		}
		if todo == 0 {
			break
		}
	}
	if completed {
		m.compact()
	}
}

// WriteLine stores 32 bytes into a line with effective time eff and
// signals any process blocked on that line. src must hold ≥32 bytes.
func (m *MPB) WriteLine(line int, src []byte, eff sim.Time) {
	m.WriteLines(line, src, 1, eff, 0)
}

// WriteLines stores n consecutive lines starting at line0, where line
// line0+i becomes visible at eff0+i·stride, and signals each line's
// watchers at its own effective time. src must hold ≥ n×32 bytes and is
// copied, so callers may reuse their buffer. The whole transfer is
// carried by a single pending record (recycled across operations), so the
// steady-state cost is O(1) allocations regardless of n.
func (m *MPB) WriteLines(line0 int, src []byte, n int, eff0 sim.Time, stride sim.Duration) {
	if n <= 0 {
		panic(fmt.Sprintf("mem: MPB[%d] non-positive write extent %d", m.owner, n))
	}
	if stride < 0 {
		panic(fmt.Sprintf("mem: MPB[%d] negative extent stride %d", m.owner, stride))
	}
	m.checkLine(line0)
	m.checkLine(line0 + n - 1)
	x := m.newExtent(n)
	x.line0 = line0
	x.eff0 = eff0
	x.stride = stride
	copy(x.data, src[:n*scc.CacheLine])
	m.pending = append(m.pending, x)
	for i := line0; i < line0+n; i++ {
		m.pendCnt[i]++
	}
	if len(m.pending) >= m.sweepAt && len(m.pending) >= sweepMinPending {
		m.sweepPending()
	}
	// One coalesced fan-out for the whole extent: the engine stops the
	// scan as soon as no process is blocked, so a wide bulk write costs
	// O(1) instead of n watcher-map probes.
	m.eng.SignalRange(m.owner, line0, n, eff0, stride)
}

// PeekU64 reads the first 8 bytes of a line as a little-endian uint64 as
// visible at time t, without copying the whole line. Used by flag polls.
func (m *MPB) PeekU64(line int, t sim.Time) uint64 {
	m.checkLine(line)
	m.settle(line, t)
	off := line * scc.CacheLine
	return binary.LittleEndian.Uint64(m.data[off:])
}

// peekU64At evaluates what PeekU64 would return at time t WITHOUT
// settling state — used inside wait predicates, which may be evaluated
// while earlier-time reads are still possible. It scans pending extents
// using only a stack buffer (it runs on every Signal delivered to a
// waiting process, so it must not allocate).
func (m *MPB) peekU64At(line int, t sim.Time) uint64 {
	off := line * scc.CacheLine
	v := binary.LittleEndian.Uint64(m.data[off:])
	if left := m.pendCnt[line]; left != 0 {
		for _, x := range m.pending {
			if !x.covers(line) || x.isApplied(line) {
				continue
			}
			if x.effAt(line) <= t {
				v = binary.LittleEndian.Uint64(x.lineData(line))
			}
			if left--; left == 0 {
				break
			}
		}
	}
	return v
}

// ProbeU64 evaluates what PeekU64 would return at time t WITHOUT settling
// pending writes into the backing store — the read has no side effects at
// all, so it is safe to issue from a core that polls a flag opportunistically
// (the non-blocking collectives' Test/Progress path) while lower-clock
// processes may still be about to issue earlier-time writes. It allocates
// nothing.
func (m *MPB) ProbeU64(line int, t sim.Time) uint64 {
	m.checkLine(line)
	return m.peekU64At(line, t)
}

// holdsOp evaluates one wait comparison: the GE/EQ fast forms compare
// inline (no closure anywhere on their path); waitPred defers to pred.
func holdsOp(v uint64, op uint8, val uint64, pred func(uint64) bool) bool {
	switch op {
	case waitGE:
		return v >= val
	case waitEQ:
		return v == val
	default:
		return pred(v)
	}
}

// satisfiedAt returns the earliest time ≥ now at which the (op, val,
// pred) comparison holds for the line's leading uint64, considering the
// settled state and pending writes in effective-time order. ok is false
// if no current or pending state satisfies it.
func (m *MPB) satisfiedAt(line int, now sim.Time, op uint8, val uint64, pred func(uint64) bool) (sim.Time, bool) {
	if holdsOp(m.peekU64At(line, now), op, val, pred) {
		return now, true
	}
	left := m.pendCnt[line]
	if left == 0 {
		return 0, false
	}
	for _, x := range m.pending {
		if !x.covers(line) || x.isApplied(line) {
			continue
		}
		eff := x.effAt(line)
		if eff > now && holdsOp(m.peekU64At(line, eff), op, val, pred) {
			// eff ≤ now is already folded into peekU64At(now) above.
			return eff, true
		}
		if left--; left == 0 {
			break
		}
	}
	return 0, false
}

// WaitU64 blocks process p until pred holds for the line's leading uint64,
// and returns with p's clock at (no earlier than) the effective time of
// the write that satisfied it. It is the simulator's flag-poll primitive:
// the process sleeps instead of burning virtual time spinning — matching
// the paper's assumption that no time elapses between a flag being set
// and observed, up to the final poll read the caller charges separately.
//
// Sequence-number waits should use WaitU64GE/WaitU64EQ, which skip the
// per-call predicate closure.
func (m *MPB) WaitU64(p *sim.Proc, line int, pred func(uint64) bool) {
	m.waitOp(p, line, waitPred, 0, pred)
}

// WaitU64GE blocks until the line's leading uint64 is ≥ val. The whole
// path is closure-free: the comparison is carried as (op, val) scalars
// in the MPB's embedded wait record.
func (m *MPB) WaitU64GE(p *sim.Proc, line int, val uint64) {
	m.waitOp(p, line, waitGE, val, nil)
}

// WaitU64EQ blocks until the line's leading uint64 is == val (the
// RCCE-style handshake wait), closure-free like WaitU64GE.
func (m *MPB) WaitU64EQ(p *sim.Proc, line int, val uint64) {
	m.waitOp(p, line, waitEQ, val, nil)
}

func (m *MPB) waitOp(p *sim.Proc, line int, op uint8, val uint64, pred func(uint64) bool) {
	m.checkLine(line)
	key := m.watchKey(line)
	for {
		if te, ok := m.satisfiedAt(line, p.Now(), op, val, pred); ok {
			p.AdvanceTo(te)
			return
		}
		w := &m.wait
		if w.active {
			// A second process is already parked on this MPB through the
			// embedded record (not a path the RCCE layers take); fall
			// back to a one-shot condition.
			p.Block(key, func() bool {
				_, ok := m.satisfiedAt(line, p.Now(), op, val, pred)
				return ok
			})
			continue
		}
		w.m, w.p, w.line, w.op, w.val, w.pred = m, p, line, op, val, pred
		w.active = true
		p.BlockCond(key, w)
		w.active = false
		w.pred = nil
	}
}

// Reset returns the MPB to its freshly constructed state — zeroed lines,
// no pending writes, idle port, empty access history — while keeping
// every warm buffer: extent records and their line buffers move to the
// free list, access-log slices are truncated in place, and map buckets
// survive, so a pooled chip's next simulation allocates nothing here.
func (m *MPB) Reset() {
	for w, mask := range m.dirty {
		for mask != 0 {
			line := w*64 + bits.TrailingZeros64(mask)
			mask &= mask - 1
			off := line * scc.CacheLine
			clear(m.data[off : off+scc.CacheLine])
		}
		m.dirty[w] = 0
	}
	for i, x := range m.pending {
		m.recycle(x)
		m.pending[i] = nil
	}
	m.pending = m.pending[:0]
	for i := range m.pendCnt {
		m.pendCnt[i] = 0
	}
	m.settledAt = 0
	m.sweepAt = 0
	m.Port.Reset()
	for i := range m.lastAccess {
		m.lastAccess[i] = accessNever
		m.accessLog[i] = m.accessLog[i][:0]
	}
	m.wait = u64Wait{}
}
