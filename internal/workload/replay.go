package workload

import (
	"fmt"

	"repro/internal/scc"
)

// Replay maps a trace onto a chip. The mapping is a fixed, documented
// contract — the conformance suite replays traces and issues the same
// calls by hand, demanding bit-identical buffers and completion times —
// and the hot loop is allocation-free so long replays stay within the
// simulator's steady-state allocation budget.
//
// Per record, in trace order, every core:
//
//  1. charges the issue-time delta as local compute: Compute(DeltaUs)
//     when DeltaUs > 0;
//  2. with ComputeUs == 0, runs the blocking collective (Runner.Run);
//  3. with ComputeUs > 0, issues the non-blocking collective
//     (Runner.Issue), computes the gap in Polls equal slices with a
//     Pending.Test poll after each slice, and Waits if still incomplete —
//     the fig-overlap interleaving, driven by the trace.
//
// A replay begins with one Barrier so every core starts the schedule
// aligned, mirroring an application entering its main loop together.

// Runner is the per-core collective surface a replay drives. The public
// API adapts *ocbcast.Core to it (System.Replay) and the harness adapts a
// pooled chip's algsel environment; unit tests use an in-memory fake.
type Runner interface {
	// Compute advances the core's virtual clock by us microseconds of
	// local work.
	Compute(us float64)
	// Barrier synchronizes all cores of the chip.
	Barrier()
	// NowUs reports the core's virtual clock in microseconds.
	NowUs() float64
	// Run executes record r's collective, blocking, with the payload at
	// byte address addr (scratch is same-size staging the two-sided
	// reductions may clobber).
	Run(r Record, addr, scratch int)
	// Issue starts record r's collective on the non-blocking
	// progress-engine path and returns its handle.
	Issue(r Record, addr, scratch int) Pending
}

// Pending is an in-flight non-blocking collective (occoll.Request
// satisfies it).
type Pending interface {
	// Test advances the protocol without blocking; true means complete.
	Test() bool
	// Wait blocks until the collective completes.
	Wait()
}

// Layout fixes where a replay stages each record's payload in private
// memory, so a trace replays onto deterministic addresses every caller
// (replayer, conformance suite, examples) can reconstruct. Records rotate
// through Slots equal regions — a record's buffers are never reused while
// it could still be in flight — with one shared scratch region after them
// for the two-sided reductions.
type Layout struct {
	// N is the chip's core count the layout was computed for.
	N int
	// SlotBytes is the size of one record region: the largest working
	// set of any record (block ops hold N per-core blocks), cache-line
	// aligned.
	SlotBytes int
	// Slots is the number of rotating record regions.
	Slots int
	// ScratchAddr is the shared scratch region's base address; it is
	// SlotBytes long.
	ScratchAddr int
}

// layoutSlots is the rotation depth. Replay keeps at most one collective
// in flight, so two regions suffice for correctness; four keep a slot
// idle for a full extra round as margin.
const layoutSlots = 4

// regionLines is the working set of one record in cache lines: block
// operations (scatter, gather, allgather) address n per-core blocks of
// Lines each at addr; the others address one Lines-sized buffer.
func regionLines(r Record, n int) int {
	switch r.Op {
	case OpScatter, OpGather, OpAllGather:
		return n * r.Lines
	}
	return r.Lines
}

// LayoutFor computes the replay layout of a trace on an n-core chip.
func LayoutFor(t *Trace, n int) Layout {
	maxRegion := 1
	for _, r := range t.Records {
		if rl := regionLines(r, n); rl > maxRegion {
			maxRegion = rl
		}
	}
	slot := maxRegion * scc.CacheLine
	return Layout{
		N:           n,
		SlotBytes:   slot,
		Slots:       layoutSlots,
		ScratchAddr: layoutSlots * slot,
	}
}

// Addr reports the base address record i's payload is staged at.
func (l Layout) Addr(i int) int { return (i % l.Slots) * l.SlotBytes }

// TotalBytes reports the private-memory footprint of a replay: the
// rotating slots plus the scratch region.
func (l Layout) TotalBytes() int { return (l.Slots + 1) * l.SlotBytes }

// ReplayOptions tune a replay.
type ReplayOptions struct {
	// Polls is the number of compute slices (each followed by a Test
	// poll) an overlapped record's compute gap is cut into; 0 means
	// DefaultPolls.
	Polls int
	// RecordDoneUs, when non-nil, receives each record's completion
	// timestamp on this core (len must be >= len(trace.Records)). The
	// conformance suite uses it; leave nil to skip the bookkeeping.
	RecordDoneUs []float64
}

// DefaultPolls is the default overlap slicing: compute gaps split into 4
// slices with a progress poll after each.
const DefaultPolls = 4

// Result is one core's replay outcome.
type Result struct {
	// StartUs is the core's clock right after the opening barrier;
	// FinishUs its clock after the last record completed.
	StartUs, FinishUs float64
}

// Replay executes the trace on one core. Every core of the chip must call
// it with the same trace, layout and options (it is a chip-wide SPMD
// operation, like the collectives themselves). The caller is responsible
// for having validated the trace against the chip (Trace.ValidateFor);
// Replay itself panics on a layout/trace mismatch as that is a
// programming error.
func Replay(run Runner, t *Trace, l Layout, o ReplayOptions) Result {
	if o.RecordDoneUs != nil && len(o.RecordDoneUs) < len(t.Records) {
		panic(fmt.Sprintf("workload: RecordDoneUs holds %d of %d records", len(o.RecordDoneUs), len(t.Records)))
	}
	polls := o.Polls
	if polls <= 0 {
		polls = DefaultPolls
	}
	run.Barrier()
	res := Result{StartUs: run.NowUs()}
	for i := range t.Records {
		r := &t.Records[i]
		if r.DeltaUs > 0 {
			run.Compute(r.DeltaUs)
		}
		addr := l.Addr(i)
		if r.ComputeUs > 0 {
			p := run.Issue(*r, addr, l.ScratchAddr)
			slice := r.ComputeUs / float64(polls)
			done := false
			for j := 0; j < polls; j++ {
				run.Compute(slice)
				if !done && p.Test() {
					done = true
				}
			}
			if !done {
				p.Wait()
			}
		} else {
			run.Run(*r, addr, l.ScratchAddr)
		}
		if o.RecordDoneUs != nil {
			o.RecordDoneUs[i] = run.NowUs()
		}
	}
	res.FinishUs = run.NowUs()
	return res
}
