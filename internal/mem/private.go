package mem

import (
	"fmt"
	"math/bits"

	"repro/internal/scc"
)

// Private is one core's private off-chip memory. The SCC gives each core
// its own DDR3 rank through one of four memory controllers; with the
// paper's no-shared-memory configuration there is no cross-core
// interference on private memory (§3.3), so Private needs no port model.
//
// Storage grows on demand in pages so large broadcast payloads (up to
// 1 MiB per the paper's Figure 8b) don't force a full-size allocation on
// every core of the chip.
type Private struct {
	owner int
	// pages is indexed by page number and grown on demand (nil = never
	// written, reads as zeros). A flat slice keeps the per-op page
	// lookup off the map hash path.
	pages []*page
	// dirty lists the page indices written since construction or the
	// last Reset, so Reset zeroes only the bytes a run actually touched
	// instead of every page ever allocated (a pooled chip accumulates
	// pages from all its past runs).
	dirty []int
}

// pageBytes is the demand-allocation granularity. 8 KiB keeps the
// zero-fill cost of a fresh chip proportional to the bytes actually
// touched (a broadcast payload staging area is a few KiB per core), which
// matters because harness sweeps construct thousands of chips.
const pageBytes = 8 * 1024

type page struct {
	data [pageBytes]byte
	// dirty marks the page as written since the last Reset (it is then
	// listed in Private.dirty exactly once).
	dirty bool
}

// NewPrivate creates core owner's private memory.
func NewPrivate(owner int) *Private {
	return &Private{owner: owner}
}

// Owner reports the core id owning this memory.
func (p *Private) Owner() int { return p.owner }

func (p *Private) check(addr, n int) {
	if addr < 0 || n < 0 {
		panic(fmt.Sprintf("mem: private[%d] bad range addr=%d n=%d", p.owner, addr, n))
	}
}

// Read copies n bytes starting at addr into dst.
func (p *Private) Read(dst []byte, addr, n int) {
	p.check(addr, n)
	for n > 0 {
		pg, off := addr/pageBytes, addr%pageBytes
		c := pageBytes - off
		if c > n {
			c = n
		}
		var pp *page
		if pg < len(p.pages) {
			pp = p.pages[pg]
		}
		if pp != nil {
			copy(dst[:c], pp.data[off:off+c])
		} else {
			for i := 0; i < c; i++ {
				dst[i] = 0
			}
		}
		dst = dst[c:]
		addr += c
		n -= c
	}
}

// Write copies len(src) bytes from src into memory at addr.
func (p *Private) Write(addr int, src []byte) {
	p.check(addr, len(src))
	for len(src) > 0 {
		pg, off := addr/pageBytes, addr%pageBytes
		for len(p.pages) <= pg {
			p.pages = append(p.pages, nil)
		}
		pp := p.pages[pg]
		if pp == nil {
			pp = &page{}
			p.pages[pg] = pp
		}
		if !pp.dirty {
			pp.dirty = true
			p.dirty = append(p.dirty, pg)
		}
		c := copy(pp.data[off:], src)
		src = src[c:]
		addr += c
	}
}

// Cache models the effect the paper leans on in Formula 14: once a core
// has touched a private-memory cache line, re-reading it costs
// (approximately) nothing because it hits the P54C's L1. The model tracks
// touched line addresses per core; capacity is approximated as unbounded
// within an experiment iteration because the paper's methodology already
// defeats cross-iteration reuse by broadcasting from fresh offsets.
//
// Residency is a bitmap per address page (one word per 64 lines), so
// marking a line on the RMA hot path allocates at most once per page
// instead of once per map insert.
type Cache struct {
	enabled bool
	// pages is indexed by residency-page number, grown on demand like
	// Private.pages.
	pages []*cachePage
	n     int
}

// cacheLinesPerPage is the number of cache lines covered by one residency
// bitmap page (mirrors Private's pageBytes granularity).
const cacheLinesPerPage = pageBytes / scc.CacheLine

type cachePage struct {
	bits [cacheLinesPerPage / 64]uint64
}

// NewCache creates a cache model; when enabled is false every lookup
// misses, which is the configuration used for OC-Bcast-only studies
// (OC-Bcast gets no benefit from it either way — see DESIGN.md §4.3).
func NewCache(enabled bool) *Cache {
	return &Cache{enabled: enabled}
}

func (c *Cache) page(line int) *cachePage {
	i := line / cacheLinesPerPage
	for len(c.pages) <= i {
		c.pages = append(c.pages, nil)
	}
	pg := c.pages[i]
	if pg == nil {
		pg = &cachePage{}
		c.pages[i] = pg
	}
	return pg
}

// Touch marks the cache line containing addr as resident.
func (c *Cache) Touch(addr int) {
	c.Hit(addr)
}

// TouchRange marks the n consecutive cache lines starting at addr as
// resident — equivalent to n Touch calls, but it holds each residency
// page once and sets whole bitmap words, so a bulk RMA op's write
// allocation costs a handful of word ORs instead of n lookups.
func (c *Cache) TouchRange(addr, n int) {
	if !c.enabled || n <= 0 {
		return
	}
	line := addr / scc.CacheLine
	end := line + n
	for line < end {
		pg := c.page(line)
		i := line % cacheLinesPerPage
		span := cacheLinesPerPage - i
		if end-line < span {
			span = end - line
		}
		line += span
		for span > 0 {
			w, b := i/64, i%64
			cnt := 64 - b
			if cnt > span {
				cnt = span
			}
			mask := ^uint64(0) >> (64 - cnt) << b
			old := pg.bits[w]
			pg.bits[w] = old | mask
			c.n += bits.OnesCount64(mask &^ old)
			i += cnt
			span -= cnt
		}
	}
}

// Hit reports whether the line containing addr is resident, and touches it.
func (c *Cache) Hit(addr int) bool {
	if !c.enabled {
		return false
	}
	line := addr / scc.CacheLine
	pg, i := c.page(line), line%cacheLinesPerPage
	if pg.bits[i/64]&(1<<(i%64)) != 0 {
		return true
	}
	pg.bits[i/64] |= 1 << (i % 64)
	c.n++
	return false
}

// Flush empties the cache (used between experiment iterations, mirroring
// the paper's fresh-offset methodology). Pages are kept and cleared so a
// steady-state measurement loop stops allocating.
func (c *Cache) Flush() {
	for _, pg := range c.pages {
		if pg != nil {
			pg.bits = [cacheLinesPerPage / 64]uint64{}
		}
	}
	c.n = 0
}

// Len reports the number of resident lines (for tests).
func (c *Cache) Len() int { return c.n }

// Reset zeroes the memory while keeping the demand-allocated pages: a
// read of a never-written address yields zero either way, so a reset
// memory is indistinguishable from a fresh one, and a pooled chip's
// next simulation reuses the pages instead of faulting them back in.
// Only pages written since the last Reset are zeroed (the rest are
// already all-zero), so the cost scales with the run's footprint, not
// the chip's high-water mark.
func (p *Private) Reset() {
	for _, pg := range p.dirty {
		pp := p.pages[pg]
		pp.data = [pageBytes]byte{}
		pp.dirty = false
	}
	p.dirty = p.dirty[:0]
}
