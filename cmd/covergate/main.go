// Command covergate enforces the repository's test-coverage floor: it
// parses a `go test -coverprofile` profile, computes per-package and
// total statement coverage, prints the delta against the checked-in
// baseline (.github/coverage-baseline.json), and exits non-zero when
// total coverage falls more than the tolerance below the baseline.
//
// Usage:
//
//	go test ./... -coverprofile=cover.out
//	go run ./cmd/covergate -profile cover.out            # gate
//	go run ./cmd/covergate -profile cover.out -update    # refresh baseline
//
// Flags:
//
//	-profile FILE     coverage profile to read (default cover.out)
//	-baseline FILE    baseline JSON (default .github/coverage-baseline.json)
//	-tolerance PCT    allowed total-coverage drop in points (default 0.5)
//	-update           rewrite the baseline from this profile and exit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// baseline is the checked-in coverage floor.
type baseline struct {
	// TotalPct is total statement coverage in percent at baseline time.
	TotalPct float64 `json:"total_pct"`
	// Packages maps import paths to their statement coverage in percent.
	Packages map[string]float64 `json:"packages"`
}

// block is one coverage-profile block; profiles may repeat a block (one
// entry per test binary), so blocks are merged by position with summed
// hit counts.
type block struct {
	stmts int
	hit   bool
}

func main() {
	profile := flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	basePath := flag.String("baseline", ".github/coverage-baseline.json", "baseline JSON path")
	tolerance := flag.Float64("tolerance", 0.5, "allowed drop in total coverage, percentage points")
	update := flag.Bool("update", false, "rewrite the baseline from this profile")
	flag.Parse()

	pkgPct, totalPct, err := coverageFromProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}

	if *update {
		b := baseline{TotalPct: round1(totalPct), Packages: map[string]float64{}}
		for pkg, pct := range pkgPct {
			b.Packages[pkg] = round1(pct)
		}
		out, err := json.MarshalIndent(b, "", "  ")
		if err == nil {
			err = os.WriteFile(*basePath, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "covergate:", err)
			os.Exit(1)
		}
		fmt.Printf("covergate: baseline updated to %.1f%% total (%d packages)\n", totalPct, len(pkgPct))
		return
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: no baseline (%v); run with -update to create one\n", err)
		os.Exit(1)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "covergate: bad baseline:", err)
		os.Exit(1)
	}

	// Per-package delta report, stable order.
	pkgs := make([]string, 0, len(pkgPct))
	for pkg := range pkgPct {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	fmt.Printf("%-40s %8s %8s %8s\n", "package", "now", "base", "delta")
	for _, pkg := range pkgs {
		now := pkgPct[pkg]
		was, ok := base.Packages[pkg]
		if !ok {
			fmt.Printf("%-40s %7.1f%% %8s %8s\n", pkg, now, "(new)", "")
			continue
		}
		fmt.Printf("%-40s %7.1f%% %7.1f%% %+7.1f\n", pkg, now, was, now-was)
	}
	for pkg := range base.Packages {
		if _, ok := pkgPct[pkg]; !ok {
			fmt.Printf("%-40s %8s %7.1f%% (gone)\n", pkg, "-", base.Packages[pkg])
		}
	}
	fmt.Printf("%-40s %7.1f%% %7.1f%% %+7.1f\n", "TOTAL", totalPct, base.TotalPct, totalPct-base.TotalPct)

	if totalPct < base.TotalPct-*tolerance {
		fmt.Fprintf(os.Stderr, "covergate: FAIL — total coverage %.1f%% fell below baseline %.1f%% - %.1f tolerance\n",
			totalPct, base.TotalPct, *tolerance)
		os.Exit(1)
	}
	fmt.Printf("covergate: OK (floor %.1f%%)\n", base.TotalPct-*tolerance)
}

// coverageFromProfile parses a cover profile into per-package and total
// statement-coverage percentages.
func coverageFromProfile(file string) (map[string]float64, float64, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	blocks := map[string]*block{} // "file:pos" -> merged block
	filePkg := func(name string) string { return path.Dir(name) }

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// repro/internal/sim/engine.go:12.34,15.2 3 1
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, 0, fmt.Errorf("malformed profile line %q", line)
		}
		stmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, 0, fmt.Errorf("malformed profile line %q", line)
		}
		key := fields[0]
		b := blocks[key]
		if b == nil {
			b = &block{stmts: stmts}
			blocks[key] = b
		}
		b.hit = b.hit || count > 0
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(blocks) == 0 {
		return nil, 0, fmt.Errorf("profile %s has no blocks", file)
	}

	type tally struct{ total, covered int }
	perPkg := map[string]*tally{}
	var grand tally
	for key, b := range blocks {
		name := key[:strings.Index(key, ":")]
		pt := perPkg[filePkg(name)]
		if pt == nil {
			pt = &tally{}
			perPkg[filePkg(name)] = pt
		}
		pt.total += b.stmts
		grand.total += b.stmts
		if b.hit {
			pt.covered += b.stmts
			grand.covered += b.stmts
		}
	}
	out := map[string]float64{}
	for pkg, t := range perPkg {
		out[pkg] = 100 * float64(t.covered) / float64(t.total)
	}
	return out, 100 * float64(grand.covered) / float64(grand.total), nil
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }
