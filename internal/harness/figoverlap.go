package harness

import (
	"fmt"

	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/occoll"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// fig-overlap measures what the paper's one-sided decoupling actually
// buys an application: a blocking AllReduce serializes communication and
// computation, while the non-blocking IAllReduce lets each core spend the
// collective's flag-wait idle time on its own work, polling the progress
// engine between compute slices. The experiment sweeps message size
// against polling granularity and reports the effective speedup of
// overlap, total(blocking + compute) / total(overlapped).

// OverlapCell is one cell of the overlap sweep: an AllReduce of Lines
// cache lines fused with ComputeUs microseconds of independent local work
// per core. With Overlap set the work is interleaved with the progress
// engine in GrainUs slices; otherwise the collective completes first.
type OverlapCell struct {
	K, Lines  int
	ComputeUs float64
	GrainUs   float64
	Overlap   bool
}

// MeasureOverlap runs one overlap cell on n cores and returns the
// makespan in microseconds: from the first core entering the phase to the
// last core holding both the allreduce result and its finished compute.
// ComputeUs of 0 measures the bare collective.
func MeasureOverlap(cfg scc.Config, n int, cell OverlapCell) float64 {
	chip := rma.AcquireChipN(cfg, n)
	defer rma.ReleaseChip(chip)
	msgBytes := cell.Lines * scc.CacheLine
	for c := 0; c < n; c++ {
		payload := make([]byte, msgBytes)
		for i := range payload {
			payload[i] = byte(i*11 + c*17 + 3)
		}
		chip.Private(c).Write(0, payload)
	}
	occfg := occore.DefaultConfig()
	occfg.K = cell.K

	starts := make([]sim.Time, n)
	returns := make([]sim.Time, n)
	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		x := occoll.New(c, port, occfg)
		port.Barrier()
		starts[c.ID()] = c.Now()
		switch {
		case cell.Overlap:
			r := x.IAllReduce(0, cell.Lines, collective.SumInt64)
			rem, done := cell.ComputeUs, false
			for rem > 0 {
				g := cell.GrainUs
				if g > rem {
					g = rem
				}
				c.Compute(sim.Micros(g))
				rem -= g
				if !done && r.Test() {
					done = true
				}
			}
			if !done {
				r.Wait()
			}
		default:
			x.AllReduce(0, cell.Lines, collective.SumInt64)
			if cell.ComputeUs > 0 {
				c.Compute(sim.Micros(cell.ComputeUs))
			}
		}
		x.Finish()
		returns[c.ID()] = c.Now()
	})

	first, last := starts[0], returns[0]
	for id := 1; id < n; id++ {
		if starts[id] < first {
			first = starts[id]
		}
		if returns[id] > last {
			last = returns[id]
		}
	}
	return (last - first).Microseconds()
}

// OverlapGrid evaluates a slice of overlap cells, sharded across CPUs
// with ParallelMap like the other sweep grids; results are byte-identical
// to sequential evaluation.
func OverlapGrid(cfg scc.Config, n int, cells []OverlapCell) []float64 {
	return ParallelMap(len(cells), func(i int) float64 {
		return MeasureOverlap(cfg, n, cells[i])
	})
}

// OverlapPoint summarizes one (size, compute load, grain) comparison.
type OverlapPoint struct {
	Lines      int
	CollUs     float64 // bare blocking AllReduce latency T
	Ratio      float64 // compute load W as a fraction of T
	GrainUs    float64 // polling granularity of the overlapped run
	BlockingUs float64 // blocking collective + compute, serialized
	OverlapUs  float64 // non-blocking collective interleaved with compute
	Speedup    float64 // BlockingUs / OverlapUs
}

// OverlapSweep measures, for each message size, the bare collective
// latency T, then compute loads W = ratio·T overlapped at the given grain
// fractions of W — returning one OverlapPoint per (size, ratio, grain)
// with the matching blocking baseline attached. All cells run through one
// sharded grid. The achievable speedup is bounded by two regimes: the
// core's own protocol work (combining gets, staging puts) is CPU-driven
// and never overlaps, so W ≫ T degenerates to 1x, while W below T minus
// that busy time hides entirely inside the collective's critical path,
// approaching 1 + W/T.
func OverlapSweep(cfg scc.Config, n, k int, sizes []int, ratios, grains []float64) []OverlapPoint {
	// Pass 1: bare collective latency per size.
	bare := make([]OverlapCell, len(sizes))
	for i, lines := range sizes {
		bare[i] = OverlapCell{K: k, Lines: lines}
	}
	collUs := OverlapGrid(cfg, n, bare)

	// Pass 2: blocking baselines and overlapped runs, one grid.
	var cells []OverlapCell
	for i, lines := range sizes {
		for _, ratio := range ratios {
			w := collUs[i] * ratio
			cells = append(cells, OverlapCell{K: k, Lines: lines, ComputeUs: w})
			for _, gf := range grains {
				cells = append(cells, OverlapCell{
					K: k, Lines: lines, ComputeUs: w, GrainUs: w * gf, Overlap: true,
				})
			}
		}
	}
	lat := OverlapGrid(cfg, n, cells)

	var out []OverlapPoint
	stride := 1 + len(grains)
	for i, lines := range sizes {
		for ri, ratio := range ratios {
			base := (i*len(ratios) + ri) * stride
			blocking := lat[base]
			for j, gf := range grains {
				w := collUs[i] * ratio
				out = append(out, OverlapPoint{
					Lines:      lines,
					CollUs:     collUs[i],
					Ratio:      ratio,
					GrainUs:    w * gf,
					BlockingUs: blocking,
					OverlapUs:  lat[base+1+j],
					Speedup:    blocking / lat[base+1+j],
				})
			}
		}
	}
	return out
}

// Default fig-overlap sweep axes: compute loads as fractions of the bare
// collective latency T, and polling granularities as fractions of the
// compute load W.
var (
	defaultOverlapRatios = []float64{0.5, 1.0}
	defaultOverlapGrains = []float64{1.0 / 4, 1.0 / 16, 1.0 / 64}
)

// FigOverlap sweeps compute load and polling granularity against message
// size for the blocking vs non-blocking AllReduce on the default chip:
// per size, compute loads of W = T/2 and W = T (T the bare AllReduceOC
// latency), each polled at W/4, W/16 and W/64 slices. The experiment is
// fully deterministic, so effort only gates the largest size.
func FigOverlap(cfg scc.Config, effort int) *Table {
	sizes := []int{32, 96, 256}
	if effort > 1 {
		sizes = append(sizes, 1024)
	}
	points := OverlapSweep(cfg, scc.NumCores, 7, sizes, defaultOverlapRatios, defaultOverlapGrains)

	t := &Table{
		Title: "fig-overlap: communication/computation overlap, blocking vs non-blocking AllReduce, 48 cores",
		Columns: []string{"size", "lines", "coll µs", "W/T", "block coll+comp µs",
			"ovl g=W/4", "ovl g=W/16", "ovl g=W/64", "best speedup"},
		Notes: []string{
			"T = bare AllReduceOC latency for that size; per-core compute load W = (W/T)·T.",
			"block: AllReduceOC then Compute(W), serialized.",
			"ovl g: IAllReduceOC issued first, W computed in g-sized slices with Test polls between slices.",
			"best speedup: (blocking total) / (best overlapped total). W below T minus the core's own",
			"protocol busy time hides inside the collective's critical path, approaching 1 + W/T.",
		},
	}
	perRatio := len(defaultOverlapGrains)
	for i, lines := range sizes {
		for ri, ratio := range defaultOverlapRatios {
			ps := points[(i*len(defaultOverlapRatios)+ri)*perRatio : (i*len(defaultOverlapRatios)+ri+1)*perRatio]
			best := ps[0].Speedup
			for _, p := range ps[1:] {
				if p.Speedup > best {
					best = p.Speedup
				}
			}
			t.AddRow(sizeLabel(lines), lines, ps[0].CollUs, ratio, ps[0].BlockingUs,
				ps[0].OverlapUs, ps[1].OverlapUs, ps[2].OverlapUs,
				fmt.Sprintf("%.2fx", best))
		}
	}
	return t
}
