// Allocation-budget regression tests for the simulator hot paths. Each
// budget pins a steady-state contract established by the
// allocation-free-hot-path work: the numbers are deliberately loose
// ceilings (2-3x current measurements), so they catch a regression that
// reintroduces per-line or per-op allocation without flaking on noise
// from runtime internals.
package ocbcast_test

import (
	"testing"

	"repro/internal/algsel"
	occore "repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scc"
	"repro/internal/serve"
	"repro/internal/workload"
)

// TestAllocsPerBroadcastBudget pins the headline number the perf gate
// also checks: one warmed 48-core, 96-line OC-Bcast simulation — chip
// acquisition, barrier, broadcast, release — must stay within 500 heap
// allocations (the seed code performed ~2268; the hot-path overhaul
// brought it under 200).
func TestAllocsPerBroadcastBudget(t *testing.T) {
	cfg := scc.DefaultConfig()
	run := func() {
		harness.MeanLatency(cfg, harness.Alg{Name: "oc", K: 7}, scc.NumCores, 96, 1)
	}
	run() // warm the chip pool
	allocs := testing.AllocsPerRun(5, run)
	if allocs > 500 {
		t.Errorf("warmed MeasureBcast allocates %.0f times per broadcast, budget 500", allocs)
	}
	t.Logf("allocs per warmed broadcast: %.0f", allocs)
}

// TestAllocsPerOverlapRun pins the non-blocking lane protocol: a warmed
// issue+progress+wait allreduce cycle (request frames, protocol
// coroutine, lane records) must not regress to per-step allocation.
func TestAllocsPerOverlapRun(t *testing.T) {
	cfg := scc.DefaultConfig()
	cell := harness.OverlapCell{K: 7, Lines: 64, Overlap: true}
	run := func() { harness.MeasureOverlap(cfg, 8, cell) }
	run() // warm the chip pool
	allocs := testing.AllocsPerRun(5, run)
	if allocs > 400 {
		t.Errorf("warmed overlap run allocates %.0f times, budget 400", allocs)
	}
	t.Logf("allocs per warmed overlap run: %.0f", allocs)
}

// TestAllocsPerReplayBudget pins the replay hot loop: a warmed
// 1000-record mixed-op replay — every collective family, blocking and
// overlapped records — on a pooled 8-core chip must stay within the same
// 500-allocation budget as a single warmed broadcast. The entire
// per-record path (replayer loop, algorithm dispatch, two-sided
// handshakes and combines, non-blocking issue/test/wait) is
// allocation-free in steady state; the budget covers only the per-run
// fixtures (ports, engines, environments).
func TestAllocsPerReplayBudget(t *testing.T) {
	cfg := scc.DefaultConfig()
	const n, records = 8, 1000
	ops := workload.Ops()
	tr := &workload.Trace{}
	for i := 0; i < records; i++ {
		r := workload.Record{Op: ops[i%len(ops)], Root: (i * 5) % n, Lines: 1 + i%4}
		if i%5 == 2 {
			r.ComputeUs = 3.5
		}
		tr.Records = append(tr.Records, r)
	}
	if err := tr.ValidateFor(n); err != nil {
		t.Fatal(err)
	}
	run := func() { harness.ReplayChip(cfg, n, tr) }
	run() // warm the chip pool
	allocs := testing.AllocsPerRun(3, run)
	if allocs > 500 {
		t.Errorf("warmed 1000-record replay allocates %.0f times, budget 500", allocs)
	}
	t.Logf("allocs per warmed 1000-record replay: %.0f (%.2f per record)", allocs, allocs/records)
}

// TestTuneCacheHitAllocs pins the Tune memo: a cache hit is a key build
// plus a map probe, far under a full grid-and-bisection sweep.
func TestTuneCacheHitAllocs(t *testing.T) {
	cfg := scc.DefaultConfig()
	base := occore.DefaultConfig()
	topo := cfg.Topology()
	warm := algsel.TuneCached(cfg.Params, topo, scc.NumCores, base)
	if warm == nil {
		t.Fatal("TuneCached returned nil plan")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if algsel.TuneCached(cfg.Params, topo, scc.NumCores, base) != warm {
			t.Fatal("cache hit returned a different plan pointer")
		}
	})
	// The only allocation on a hit is the topology fingerprint string.
	if allocs > 2 {
		t.Errorf("Tune cache hit allocates %.1f times, budget 2", allocs)
	}
}

// TestAllocsPerServeBudget pins the serving runtime's steady state: a
// warmed 60-request two-tenant serving run on a pooled 8-core chip —
// epoch syncs, admission, batching, dispatch over two lanes, completion
// accounting — must stay within budget. The scheduler replica allocates
// everything up front (newSched) and the round loop is allocation-free;
// the budget covers only per-run fixtures (ports, engines, replica
// state, collected metrics).
func TestAllocsPerServeBudget(t *testing.T) {
	cfg := scc.DefaultConfig()
	const n = 8
	scfg := serve.Config{Policy: serve.PolicyWeighted, QueueBound: 16, MaxBatch: 4, MaxBatchLines: 64, Lanes: 2}
	streams := []serve.Stream{
		serve.Synthetic(serve.SyntheticParams{
			Tenant: "a", Weight: 3, Seed: 1, Count: 30, N: n,
			Ops: workload.Ops(), Lines: []int{1, 4, 8}, MeanGapUs: 40,
		}),
		serve.Synthetic(serve.SyntheticParams{
			Tenant: "b", Weight: 1, Seed: 2, Count: 30, N: n,
			Ops: []string{workload.OpBcast, workload.OpAllReduce}, Lines: []int{2, 16}, MeanGapUs: 25,
		}),
	}
	run := func() { harness.ServeChip(cfg, n, scfg, streams) }
	run() // warm the chip pool
	allocs := testing.AllocsPerRun(3, run)
	if allocs > 1200 {
		t.Errorf("warmed 60-request serving run allocates %.0f times, budget 1200", allocs)
	}
	t.Logf("allocs per warmed serving run: %.0f", allocs)
}
