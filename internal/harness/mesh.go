package harness

import (
	"fmt"

	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// MeshStress regenerates the §3.3 mesh-contention experiment: every core
// not on tiles (2,2) or (3,2) repeatedly gets 128 cache lines from a core
// in mesh row 2 on the opposite side of the chip, so that (because the
// response data's X-Y route runs along row 2) all data packets cross the
// link between tiles (2,2) and (3,2). A probe core on tile (2,2) then
// measures its get latency from tile (3,2) under this load. The paper's
// finding — which the detailed NoC model must reproduce — is that the
// loaded-link latency matches the unloaded latency: at SCC scale the mesh
// is not a source of contention.
func MeshStress(cfg scc.Config, iters int) *Table {
	if iters <= 0 {
		iters = 20
	}
	cfg.NoC = scc.NoCDetailed
	// Isolate the mesh: MPB port queueing off so only link contention
	// could show up.
	cfg.Contention.Enabled = false

	probeCore := scc.Coord{X: 2, Y: 2}.TileID() * scc.CoresPerTile     // core on tile (2,2)
	probeTarget := scc.Coord{X: 3, Y: 2}.TileID()*scc.CoresPerTile + 1 // core on tile (3,2)
	hotLink := scc.Link{From: scc.Coord{X: 2, Y: 2}, To: scc.Coord{X: 3, Y: 2}}

	// target(c) returns the row-2 core on the opposite side of core c.
	target := func(c int) int {
		coord := scc.CoreCoord(c)
		x := 0
		if coord.X <= 2 {
			x = 5
		}
		return scc.Coord{X: x, Y: 2}.TileID() * scc.CoresPerTile
	}

	measure := func(loaded bool) float64 {
		chip := rma.NewChip(cfg)
		var probeMean float64
		chip.Run(func(c *rma.Core) {
			coord := scc.CoreCoord(c.ID())
			onHotTiles := (coord == scc.Coord{X: 2, Y: 2}) || (coord == scc.Coord{X: 3, Y: 2})
			switch {
			case c.ID() == probeCore:
				var total sim.Duration
				for i := 0; i < iters; i++ {
					t0 := c.Now()
					c.GetMPBToMPB(probeTarget, 0, 0, 128)
					total += c.Now() - t0
				}
				probeMean = total.Microseconds() / float64(iters)
			case loaded && !onHotTiles:
				for i := 0; i < 4*iters; i++ {
					c.GetMPBToMPB(target(c.ID()), 0, 0, 128)
				}
			}
		})
		return probeMean
	}

	free := measure(false)
	loaded := measure(true)

	tbl := &Table{
		Title:   "§3.3 mesh stress — get latency across the loaded (2,2)-(3,2) link",
		Columns: []string{"condition", "probe get 128CL (µs)"},
		Notes: []string{
			fmt.Sprintf("Loaded/unloaded ratio: %.3f (paper: no measurable drop).", loaded/free),
			fmt.Sprintf("Hot link under load: %s carries the stress traffic.", hotLink),
		},
	}
	tbl.AddRow("unloaded mesh", fmt.Sprintf("%.3f", free))
	tbl.AddRow("loaded mesh", fmt.Sprintf("%.3f", loaded))
	return tbl
}
