package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/obs"
)

func TestTimeConversions(t *testing.T) {
	if Micros(0.005) != 5*Nanosecond {
		t.Fatalf("Micros(0.005) = %d ps, want 5000", Micros(0.005))
	}
	if Micros(1) != Microsecond {
		t.Fatalf("Micros(1) = %v, want 1µs", Micros(1))
	}
	if got := (2 * Microsecond).Microseconds(); got != 2.0 {
		t.Fatalf("Microseconds() = %v, want 2.0", got)
	}
	if s := (1500 * Nanosecond).String(); s != "1.5000µs" {
		t.Fatalf("String() = %q", s)
	}
}

func TestEngineRunsAllProcs(t *testing.T) {
	e := NewEngine(5)
	visited := make([]bool, 5)
	e.Run(func(p *Proc) {
		visited[p.ID()] = true
		p.Advance(Time(p.ID()) * Microsecond)
	})
	for i, v := range visited {
		if !v {
			t.Errorf("proc %d did not run", i)
		}
	}
	for i := 0; i < 5; i++ {
		if got := e.Proc(i).Now(); got != Time(i)*Microsecond {
			t.Errorf("proc %d clock = %v, want %dµs", i, got, i)
		}
	}
}

func TestEngineRunTwicePanics(t *testing.T) {
	e := NewEngine(1)
	e.Run(func(p *Proc) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	e.Run(func(p *Proc) {})
}

// TestSchedulerOrder verifies the min-time, then min-id admission order by
// recording the order in which processes execute labelled steps.
func TestSchedulerOrder(t *testing.T) {
	e := NewEngine(3)
	var order []int
	e.Run(func(p *Proc) {
		// proc 0 advances 30, 10; proc 1: 10, 10; proc 2: 20, 5.
		steps := [][]Duration{
			{30 * Microsecond, 10 * Microsecond},
			{10 * Microsecond, 10 * Microsecond},
			{20 * Microsecond, 5 * Microsecond},
		}[p.ID()]
		for _, d := range steps {
			p.Advance(d)
			order = append(order, p.ID())
		}
	})
	// The append after each Advance runs when the proc is next admitted,
	// i.e. in completion-time order of the steps (ties by id):
	// completions are p1@10, p1@20 (tie with p2@20, p1 wins by id),
	// p2@20, p2@25, p0@30, p0@40.
	want := []int{1, 1, 2, 2, 0, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(8)
		e.Run(func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Advance(Duration((p.ID()*7+i*3)%11) * Nanosecond)
			}
		})
		out := make([]Time, 8)
		for i := range out {
			out[i] = e.Proc(i).Now()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic clocks: run1=%v run2=%v", a, b)
		}
	}
}

func TestBlockAndSignal(t *testing.T) {
	e := NewEngine(2)
	key := WatchKey{Space: 0, Line: 7}
	var ready bool
	var observedAt Time
	e.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Block(key, func() bool { return ready })
			observedAt = p.Now()
		case 1:
			p.Advance(5 * Microsecond)
			ready = true
			p.Engine().Signal(key, 8*Microsecond) // write lands at t=8
		}
	})
	if observedAt != 8*Microsecond {
		t.Fatalf("blocked proc woke at %v, want 8µs (the write's effective time)", observedAt)
	}
}

func TestBlockPredicateAlreadyTrue(t *testing.T) {
	e := NewEngine(1)
	e.Run(func(p *Proc) {
		p.Advance(3 * Microsecond)
		got := p.Block(WatchKey{}, func() bool { return true })
		if got != 3*Microsecond {
			t.Fatalf("Block with true predicate returned %v, want 3µs", got)
		}
	})
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked engine did not panic")
		}
	}()
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Block(WatchKey{Space: 1, Line: 1}, func() bool { return false })
		}
	})
}

// TestDeadlockReportIncludesTimeline: with an observer attached, the
// deadlock panic names each stuck proc's recent timeline events — the
// block instant itself at minimum — so the report says what the core
// was doing, not just that it was blocked.
func TestDeadlockReportIncludesTimeline(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlocked engine did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("recovered %T, want string", r)
		}
		for _, want := range []string{"proc 0 recent events:", "sim/block"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("deadlock report missing %q:\n%s", want, msg)
			}
		}
	}()
	e := NewEngine(2)
	e.SetObserver(obs.NewRecorder())
	e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(Microsecond)
			p.Block(WatchKey{Space: 1, Line: 7}, func() bool { return false })
		}
	})
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("process panic did not propagate")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	e := NewEngine(3)
	e.Run(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
	})
}

func TestResourceFIFO(t *testing.T) {
	r := NewResource("port", 10*Nanosecond)
	// Uncontended: starts immediately.
	if got := r.Reserve(100*Nanosecond, 3); got != 130*Nanosecond {
		t.Fatalf("first reserve finish = %v, want 130ns", got)
	}
	// Second request at t=105 queues behind the first.
	if got := r.Reserve(105*Nanosecond, 2); got != 150*Nanosecond {
		t.Fatalf("queued reserve finish = %v, want 150ns", got)
	}
	// After the queue drains, requests start immediately again.
	if got := r.Reserve(500*Nanosecond, 1); got != 510*Nanosecond {
		t.Fatalf("post-drain reserve finish = %v, want 510ns", got)
	}
	res, units, busy, queued := r.Stats()
	if res != 3 || units != 6 {
		t.Fatalf("stats reservations=%d units=%d, want 3, 6", res, units)
	}
	if busy != 60*Nanosecond {
		t.Fatalf("busy = %v, want 60ns", busy)
	}
	if queued != 25*Nanosecond { // second request waited 130-105
		t.Fatalf("queued = %v, want 25ns", queued)
	}
}

func TestResourceReserveDur(t *testing.T) {
	r := NewResource("port", 10*Nanosecond)
	if got := r.ReserveDur(0, 37*Nanosecond); got != 37*Nanosecond {
		t.Fatalf("ReserveDur finish = %v, want 37ns", got)
	}
	if got := r.ReserveDur(0, 5*Nanosecond); got != 42*Nanosecond {
		t.Fatalf("queued ReserveDur finish = %v, want 42ns", got)
	}
	if got := r.Reserve(0, 0); got != 0 {
		t.Fatalf("zero-unit reserve should be free, got %v", got)
	}
	r.Reset()
	if got := r.NextFree(); got != 0 {
		t.Fatalf("NextFree after Reset = %v, want 0", got)
	}
}

// Property: for any sequence of non-negative reservations issued at
// nondecreasing times, service is FIFO and work-conserving: finish times
// are nondecreasing and total busy time equals the sum of service demands.
func TestResourceProperties(t *testing.T) {
	f := func(units []uint8) bool {
		r := NewResource("p", 3*Nanosecond)
		var tm Time
		var prevFinish Time
		var total Duration
		for i, u := range units {
			n := int(u % 16)
			tm += Time(i%5) * Nanosecond
			finish := r.Reserve(tm, n)
			if n > 0 {
				if finish < prevFinish {
					return false
				}
				prevFinish = finish
				total += Duration(n) * 3 * Nanosecond
			}
			if finish < tm {
				return false
			}
		}
		_, _, busy, _ := r.Stats()
		return busy == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunQueueOrdering exercises the indexed min-heap directly: pops come
// out in (clock, id) order regardless of push order.
func TestRunQueueOrdering(t *testing.T) {
	e := NewEngine(6)
	clocks := []Time{30, 10, 20, 10, 5, 30}
	var q runQueue
	for i, p := range e.procs {
		p.now = clocks[i]
		q.push(p)
	}
	want := []int{4, 1, 3, 2, 0, 5} // by (clock, id)
	for _, id := range want {
		p := q.pop()
		if p == nil || p.id != id {
			t.Fatalf("pop = %v, want proc %d", p, id)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue not empty after all pops")
	}
}

// TestRunQueueDoublePushPanics guards the scheduler invariant that a
// process is queued at most once.
func TestRunQueueDoublePushPanics(t *testing.T) {
	e := NewEngine(1)
	var q runQueue
	q.push(e.procs[0])
	defer func() {
		if recover() == nil {
			t.Fatal("double push did not panic")
		}
	}()
	q.push(e.procs[0])
}
