package harness

import (
	"runtime"
	"testing"

	"repro/internal/scc"
	"repro/internal/workload"
)

// Golden determinism tests for the fig-apps replay path: a kernel's
// whole-application makespan is a pure function of (trace, mesh,
// algorithm mode) — independent of repetition, of ParallelMap sharding,
// and of the host's GOMAXPROCS — and the 48-core SGD default is pinned
// to the exact simulated value so any timing drift in the replay stack
// surfaces as a diff, not a flake.

// TestReplayKernelsDeterministic replays every 48-core kernel twice
// through the public path and twice through the pooled-chip path: both
// must reproduce to the last bit.
func TestReplayKernelsDeterministic(t *testing.T) {
	cfg := scc.DefaultConfig()
	for _, k := range workload.Kernels(scc.NumCores) {
		a := MeasureApp(cfg, scc.SCC(), k.Trace, "auto")
		b := MeasureApp(cfg, scc.SCC(), k.Trace, "auto")
		if a != b {
			t.Errorf("%s: public replay not deterministic: %v vs %v µs", k.Name, a, b)
		}
	}
	small := workload.Kernels(8)[0]
	a := ReplayChip(cfg, 8, small.Trace)
	b := ReplayChip(cfg, 8, small.Trace)
	if a != b {
		t.Errorf("pooled replay not deterministic: %v vs %v µs", a, b)
	}
}

// TestAppsSweepShardingInvariance pins the harness-wide ParallelMap
// contract for the apps sweep: the sharded sweep's cells equal the same
// measurements taken sequentially on a single-proc host, bit for bit.
func TestAppsSweepShardingInvariance(t *testing.T) {
	cfg := scc.DefaultConfig()
	par := AppsSweep(cfg, 1)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range par {
		var tr *workload.Trace
		for _, k := range workload.Kernels(p.Topo.NumCores()) {
			if k.Name == p.Kernel {
				tr = k.Trace
			}
		}
		if tr == nil {
			t.Fatalf("sweep reported unknown kernel %q", p.Kernel)
		}
		if seq := MeasureApp(cfg, p.Topo, tr, ""); seq != p.DefaultUs {
			t.Errorf("%s default: parallel %v vs sequential %v µs", p.Kernel, p.DefaultUs, seq)
		}
		if seq := MeasureApp(cfg, p.Topo, tr, "auto"); seq != p.AutoUs {
			t.Errorf("%s auto: parallel %v vs sequential %v µs", p.Kernel, p.AutoUs, seq)
		}
	}
}

// TestSGDReplayGolden pins the 48-core data-parallel SGD kernel under the
// paper-default stacks to its exact simulated makespan. The value moves
// only when the simulator's timing model or the replay contract changes —
// both of which should be deliberate, reviewed events.
func TestSGDReplayGolden(t *testing.T) {
	cfg := scc.DefaultConfig()
	sgd := workload.Kernels(scc.NumCores)[0]
	if sgd.Name != "sgd" {
		t.Fatalf("kernel order changed: first kernel is %q", sgd.Name)
	}
	const want = 35904.750200000002
	if got := MeasureApp(cfg, scc.SCC(), sgd.Trace, ""); got != want {
		t.Errorf("48-core SGD default makespan = %.17g µs, golden %.17g", got, want)
	}
}
