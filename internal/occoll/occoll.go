// Package occoll extends the paper's OC-Bcast technique — pipelined k-ary
// trees over one-sided MPB RMA — to the remaining collectives its §7
// names as future work: broadcast, reduce, allreduce, scatter, gather and
// allgather. Where the two-sided RCCE-based extensions in
// internal/collective pay a synchronous flag handshake and an off-chip
// round trip per hop, every operation here moves data with one-sided
// puts/gets between MPBs and combines reduction chunks directly in the
// MPBs (rma.GetMPBCombine), the same way OC-Bcast forwards broadcast
// chunks.
//
// All operations share one propagation tree (core.BuildTree) and are
// parameterized by the same Config as OC-Bcast: fan-out K, chunk size
// BufLines (Moc) and DoubleBuffer. Every operation exists in a blocking
// and a non-blocking form: the blocking form is literally the
// non-blocking form followed by an immediate Wait, so both share one
// protocol implementation (see request.go for the progress engine that
// advances issued requests).
//
// The MPB is laid out in Config.Channels independent *lanes*, each with
// its own chunk buffers and flag block, so up to Channels collectives can
// be in flight per core at once. Lane 0 reproduces the classic layout:
// data chunks live in the same MPB buffer region as OC-Bcast's, and the
// lane's synchronization flags occupy a dedicated line block placed after
// OC-Bcast's flags and below the RCCE layer's lines, so the three
// families can coexist on one chip. Additional lanes stack above lane 0's
// flag block.
//
// Every operation is a chip-wide collective: all cores must call it with
// matching arguments and in the same program order (MPI style); lanes are
// assigned round-robin by issue order, so all cores agree on the lane
// without negotiation. An operation starts by zeroing the core's own lane
// flag lines and running a barrier, which makes it safe to interleave
// occoll operations with OC-Bcast broadcasts and RCCE two-sided traffic
// that scribble over the shared MPB region; it ends fully drained (no
// peer still reads this core's MPB), so the other families are safe to
// run afterwards.
package occoll

import (
	"fmt"
	"sync"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
)

// Config re-uses OC-Bcast's configuration: K, BufLines and DoubleBuffer
// have identical meaning (the extra occast-only ablation fields are
// ignored here), and Channels sets the number of MPB lanes.
type Config = core.Config

// ReduceOp combines src into dst; see collective.ReduceOp.
type ReduceOp = collective.ReduceOp

// Flag-line layout. OC-Bcast occupies [0, nb·BufLines) for data plus
// 1+K flag lines; lane 0's occoll flags follow immediately:
//
//	dnNotify            1 line   down direction: chunk available at parent
//	dnDone[K]           K lines  down direction: child i consumed chunk
//	upReady[K]          K lines  up direction: child i staged chunk
//	upConsumed          1 line   up direction: parent consumed my chunk
//
// Lane i ≥ 1 stacks nb·BufLines data lines plus the same 2K+2 flag block
// directly above lane i−1's flags. The whole stack must stay below line
// 251: the RCCE layer owns 251..255 (barrier + send/recv handshake) and
// the MPMD descriptor line is 252.
const maxFlagLine = 250

// numBuffers reports the chunk-buffer count per lane: 2 with double
// buffering, else 1. Every layout computation derives from this one
// helper so buffer rotation and line layout cannot desynchronize.
func numBuffers(c Config) int {
	if c.DoubleBuffer {
		return 2
	}
	return 1
}

func flagBase(c Config) int {
	return numBuffers(c)*c.BufLines + 1 + c.K
}

// channels reports the configured lane count (0 means 1).
func channels(c Config) int {
	if c.Channels < 1 {
		return 1
	}
	return c.Channels
}

// laneSpan is the number of MPB lines one lane occupies: its chunk
// buffers plus its 2K+2 flag block.
func laneSpan(c Config) int {
	return numBuffers(c)*c.BufLines + 2*c.K + 2
}

// laneLayout returns lane i's first data line and first flag line. Lane 0
// shares its data region with OC-Bcast (the classic layout); later lanes
// stack above lane 0's flag block.
func laneLayout(c Config, i int) (dataBase, flagBase0 int) {
	if i == 0 {
		return 0, flagBase(c)
	}
	base := flagBase(c) + 2*c.K + 2 + (i-1)*laneSpan(c)
	return base, base + numBuffers(c)*c.BufLines
}

// Validate reports whether the MPB layout fits: OC-Bcast's buffers and
// flags plus every lane's buffers and 2K+2 flag lines within lines
// 0..250.
func Validate(c Config) error {
	if err := c.Validate(); err != nil {
		return err
	}
	_, fb := laneLayout(c, channels(c)-1)
	if top := fb + 2*c.K + 1; top > maxFlagLine {
		return fmt.Errorf("occoll: %d lane(s) need flag lines up to %d, only 0..%d available (reduce Channels, BufLines or K)",
			channels(c), top, maxFlagLine)
	}
	return nil
}

// Collectives holds a core's one-sided collective state: the lane layout
// plus the progress engine for non-blocking requests. Create one per core
// inside Chip.Run, sharing the core's rcce.Port so barrier epochs stay
// aligned with the program's own Barrier calls.
type Collectives struct {
	core  *rma.Core
	port  *rcce.Port
	cfg   Config
	lanes []*lane

	// reqs are the outstanding (issued, not yet completed) non-blocking
	// requests in issue order; nissued counts every issue for the
	// round-robin lane assignment. finished marks that the core's body
	// function returned (see Finish).
	reqs     []*Request
	nissued  uint64
	finished bool

	// freeReqs recycles completed request frames — the struct and its
	// resume/yield channel pair — so a loop of collectives stops
	// allocating per issue (the protocol goroutine itself is respawned;
	// exited goroutines are cheap, parked ones would pin the chip).
	freeReqs []*Request
}

// New prepares one-sided collective state for one core. It panics on a
// configuration whose MPB layout does not fit (a programming error, like
// core.NewBroadcaster).
func New(c *rma.Core, port *rcce.Port, cfg Config) *Collectives {
	if err := Validate(cfg); err != nil {
		panic(err)
	}
	x := &Collectives{core: c, port: port, cfg: cfg}
	for i := 0; i < channels(cfg); i++ {
		db, fb := laneLayout(cfg, i)
		x.lanes = append(x.lanes, &lane{x: x, idx: i, dataBase: db, flagBase: fb})
	}
	return x
}

// numBuffers reports the lane chunk-buffer count for this core's config.
func (x *Collectives) numBuffers() int { return numBuffers(x.cfg) }

// Lanes reports the configured lane count.
func (x *Collectives) Lanes() int { return len(x.lanes) }

// LaneIssues reports how many non-blocking collectives each MPB lane has
// carried on this core, indexed by lane. Lanes are claimed round-robin
// by issue order, so the counts differ by at most one; multi-lane
// clients (the serving runtime spreads concurrent batches over lanes)
// assert their dispatch really used the fan-out they configured.
func (x *Collectives) LaneIssues() []uint64 {
	out := make([]uint64, len(x.lanes))
	for i, l := range x.lanes {
		out[i] = l.issues
	}
	return out
}

// lane is one independent slice of the MPB layout: chunk buffers plus a
// flag block. All cores use identical lane layouts, so a lane's line
// numbers address the same protocol slot on every peer. Flag waits
// forward to the occupying request (see lane.wait): blocking requests
// wait with rma.WaitFlagGE (parking the simulated proc on the engine's
// run queue); requests being advanced by Test/Progress poll with
// rma.TryFlagGE and park the protocol coroutine instead.
type lane struct {
	x        *Collectives
	idx      int
	dataBase int
	flagBase int
	req      *Request // current/last request occupying the lane
	// issues counts the non-blocking collectives this lane has carried
	// (LaneIssues aggregates it for allocation accounting).
	issues uint64
	// dnUsed is streamDown's reusable slot-occupancy table.
	dnUsed []occupant
}

// wait is the lane protocols' flag-wait hook; it dispatches to the
// request occupying the lane. A method rather than a per-issue
// `r.waitGE` method-value field: binding that closure allocated on
// every issue.
func (l *lane) wait(line int, seq uint64) { l.req.waitGE(line, seq) }

// occupant records which child's transfer last staged into an MPB slot,
// and its per-edge sequence number, for streamDown's occupancy waits.
type occupant struct {
	childIdx int
	seq      uint64
}

// bufLine maps a chunk/transfer index to its MPB slot's first line.
func (l *lane) bufLine(i int) int {
	return l.dataBase + (i%l.x.numBuffers())*l.x.cfg.BufLines
}

// slotLine maps a buffer-slot index (0..numBuffers-1) to its first line.
func (l *lane) slotLine(s int) int { return l.dataBase + s*l.x.cfg.BufLines }

func (l *lane) dnNotifyLine() int     { return l.flagBase }
func (l *lane) dnDoneLine(i int) int  { return l.flagBase + 1 + i }
func (l *lane) upReadyLine(i int) int { return l.flagBase + 1 + l.x.cfg.K + i }
func (l *lane) upConsumedLine() int   { return l.flagBase + 1 + 2*l.x.cfg.K }

// checkArgs validates a collective's arguments; ok is false for the
// trivial 1-core chip (the operation is then a completed no-op).
func (x *Collectives) checkArgs(root, addr, lines int) (ok bool) {
	p := x.core.N()
	if lines <= 0 {
		panic(fmt.Sprintf("occoll: non-positive message size %d", lines))
	}
	if addr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("occoll: address %d not cache-line aligned", addr))
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("occoll: root %d out of range [0,%d)", root, p))
	}
	return p > 1
}

// begin quiesces the chip and resets this core's lane flag lines, so
// per-operation sequence numbers can restart at 1 regardless of what ran
// before. It returns this core's tree node.
func (l *lane) begin(root int) core.Tree {
	c, x := l.x.core, l.x
	// Zero my flag lines BEFORE the barrier: at this point nothing is in
	// flight toward them (the lane's previous occoll operation drained,
	// and non-occoll writers — e.g. a large RCCE send staging over this
	// region — complete synchronously), and no peer re-enters the
	// protocol until it passes the barrier below.
	var zero [scc.CacheLine]byte
	for ln := l.flagBase; ln <= l.flagBase+2*x.cfg.K+1; ln++ {
		c.WriteLocalLine(ln, zero[:])
	}
	// The barrier guarantees every core finished all earlier collectives
	// on this lane — no stale reader of this core's lane buffers survives
	// it.
	x.port.Barrier()
	return core.TreeFor(c.ID(), root, c.N(), x.cfg.K)
}

// chunkSpan returns the line count of chunk ch out of `lines` total.
func (x *Collectives) chunkSpan(ch, lines int) int {
	m := lines - ch*x.cfg.BufLines
	if m > x.cfg.BufLines {
		m = x.cfg.BufLines
	}
	return m
}

// nchunks is the number of BufLines-sized chunks covering `lines`.
func (x *Collectives) nchunks(lines int) int {
	return (lines + x.cfg.BufLines - 1) / x.cfg.BufLines
}

// preorderMemo is the process-wide cache behind preorder: subtree
// preorders are pure functions of (rank, p, k) and iterated read-only,
// so the scatter/gather streams share them across operations and runs.
var preorderMemo = struct {
	sync.RWMutex
	m map[[3]int32][]int
}{m: make(map[[3]int32][]int)}

// preorder is a memoized preorderRanks(r, p, k, nil). Callers must not
// mutate the returned slice.
func preorder(r, p, k int) []int {
	key := [3]int32{int32(r), int32(p), int32(k)}
	preorderMemo.RLock()
	out, ok := preorderMemo.m[key]
	preorderMemo.RUnlock()
	if ok {
		return out
	}
	out = preorderRanks(r, p, k, nil)
	preorderMemo.Lock()
	preorderMemo.m[key] = out
	preorderMemo.Unlock()
	return out
}

// preorderRanks appends the DFS preorder of the subtree rooted at rank r
// (for p cores, fan-out k) to out. Parent and child compute identical
// orders, which defines the block order of scatter/gather edge streams.
func preorderRanks(r, p, k int, out []int) []int {
	out = append(out, r)
	for j := 1; j <= k; j++ {
		cr := r*k + j
		if cr >= p {
			break
		}
		out = preorderRanks(cr, p, k, out)
	}
	return out
}

// rankID maps a rank back to a core id for root s on p cores.
func rankID(rank, s, p int) int { return (s + rank) % p }
