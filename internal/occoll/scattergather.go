package occoll

import (
	"repro/internal/core"
	"repro/internal/scc"
)

// Scatter distributes P `lines`-line blocks from the root: core i ends up
// with the block stored at addr + i·lines·32 in the root's private
// memory, at the same address in its own memory. The blocks travel down
// the k-ary tree store-and-forward: each node receives its whole
// subtree's blocks through its parent's MPB (double-buffered, pipelined),
// then streams each child's subtree onward from private memory. Interior
// nodes hold their descendants' blocks afterwards, like the two-sided
// recursive-halving scatter.
func (x *Collectives) Scatter(root, addr, lines int) {
	x.IScatter(root, addr, lines).Wait()
}

// IScatter is the non-blocking Scatter: it issues the distribution and
// returns a Request to Test or Wait on while the core computes.
func (x *Collectives) IScatter(root, addr, lines int) *Request {
	return x.issue("IScatter", root, addr, lines, nil, runIScatter)
}

func runIScatter(r *Request) {
	if r.tree.Rank != 0 {
		r.lane.recvSubtree(r.tree, r.addr, r.lines)
	}
	r.lane.streamDown(r.tree, r.addr, r.lines)
}

// Gather collects each core's `lines`-line block onto the root: core i's
// block ends up at addr + i·lines·32 in the root's private memory. The
// mirror of Scatter: each node first collects its children's subtree
// streams into final addresses, then streams its own subtree (its block
// first, descendants after, DFS order) up through its own MPB.
func (x *Collectives) Gather(root, addr, lines int) {
	x.IGather(root, addr, lines).Wait()
}

// IGather is the non-blocking Gather: it issues the collection and
// returns a Request to Test or Wait on while the core computes.
func (x *Collectives) IGather(root, addr, lines int) *Request {
	return x.issue("IGather", root, addr, lines, nil, runIGather)
}

func runIGather(r *Request) { r.lane.gatherUp(r.tree, r.addr, r.lines) }

// AllGather exchanges every core's block so all cores hold all P blocks,
// id-ordered at addr: an OC-Gather onto core 0 fused with an OC-Bcast of
// the concatenated P·lines result down the same tree.
func (x *Collectives) AllGather(addr, lines int) {
	x.IAllGather(addr, lines).Wait()
}

// IAllGather is the non-blocking AllGather: it issues the fused
// gather+broadcast and returns a Request to Test or Wait on.
func (x *Collectives) IAllGather(addr, lines int) *Request {
	return x.issue("IAllGather", 0, addr, lines, nil, runIAllGather)
}

func runIAllGather(r *Request) {
	r.lane.gatherUp(r.tree, r.addr, r.lines)
	r.lane.bcastDown(r.tree, r.addr, r.lines*r.tree.P)
}

// recvSubtree receives this node's subtree blocks from its parent, block
// by block in DFS preorder, each block chunked through the parent's
// double-buffered MPB slots and written to its final private address.
// Transfer sequence numbers are per-edge and 1-based; slot rotation
// follows the transfer index, so both ends agree without negotiation.
func (l *lane) recvSubtree(t core.Tree, addr, lines int) {
	x := l.x
	c, cfg := x.core, x.cfg
	nb := uint64(x.numBuffers())
	blockBytes := lines * scc.CacheLine
	var tr uint64
	for _, r := range preorder(t.Rank, t.P, t.K) {
		blockA := addr + rankID(r, t.Root, t.P)*blockBytes
		for chk := 0; chk < x.nchunks(lines); chk++ {
			m := x.chunkSpan(chk, lines)
			slot := int(tr % nb)
			tr++
			l.wait(l.dnNotifyLine(), tr)
			c.GetMPBToMem(t.Parent, l.slotLine(slot), blockA+chk*cfg.BufLines*scc.CacheLine, m)
			c.SetFlag(t.Parent, l.dnDoneLine(t.ChildIdx), tr)
		}
	}
}

// streamDown stages each child's subtree blocks (DFS preorder) from this
// node's private memory into its MPB slots and notifies the child, which
// pulls them with one-sided gets. Slots are shared across the per-child
// streams; an occupancy table delays each staging until the slot's
// previous occupant was consumed, and a final drain leaves the MPB free.
func (l *lane) streamDown(t core.Tree, addr, lines int) {
	if t.IsLeaf() {
		return
	}
	x := l.x
	c, cfg := x.core, x.cfg
	nb := x.numBuffers()
	blockBytes := lines * scc.CacheLine
	// The occupancy table is lane-local scratch, reused across
	// operations so the steady-state down-stream allocates nothing.
	if cap(l.dnUsed) < nb {
		l.dnUsed = make([]occupant, nb)
	}
	used := l.dnUsed[:nb]
	for i := range used {
		used[i] = occupant{}
	}

	for i, child := range t.Children {
		childRank := t.Rank*t.K + 1 + i
		var tc uint64
		for _, r := range preorder(childRank, t.P, t.K) {
			blockA := addr + rankID(r, t.Root, t.P)*blockBytes
			for chk := 0; chk < x.nchunks(lines); chk++ {
				m := x.chunkSpan(chk, lines)
				s := int(tc % uint64(nb))
				tc++
				if used[s].seq > 0 {
					l.wait(l.dnDoneLine(used[s].childIdx), used[s].seq)
				}
				c.PutMemToMPB(c.ID(), l.slotLine(s), blockA+chk*cfg.BufLines*scc.CacheLine, m)
				c.SetFlag(child, l.dnNotifyLine(), tc)
				used[s] = occupant{childIdx: i, seq: tc}
			}
		}
	}
	for s := range used {
		if used[s].seq > 0 {
			l.wait(l.dnDoneLine(used[s].childIdx), used[s].seq)
		}
	}
}

// gatherUp collects each child's subtree stream into final private
// addresses with one-sided gets from the child's MPB, then (non-root)
// streams this node's own subtree up through its MPB slots for the
// parent. The trailing upConsumed wait drains the slots before return.
func (l *lane) gatherUp(t core.Tree, addr, lines int) {
	x := l.x
	c, cfg := x.core, x.cfg
	nb := uint64(x.numBuffers())
	blockBytes := lines * scc.CacheLine

	for i, child := range t.Children {
		childRank := t.Rank*t.K + 1 + i
		var tc uint64
		for _, r := range preorder(childRank, t.P, t.K) {
			blockA := addr + rankID(r, t.Root, t.P)*blockBytes
			for chk := 0; chk < x.nchunks(lines); chk++ {
				m := x.chunkSpan(chk, lines)
				s := int(tc % nb)
				tc++
				l.wait(l.upReadyLine(i), tc)
				c.GetMPBToMem(child, l.slotLine(s), blockA+chk*cfg.BufLines*scc.CacheLine, m)
				c.SetFlag(child, l.upConsumedLine(), tc)
			}
		}
	}
	if t.Rank == 0 {
		return
	}
	var tc uint64
	for _, r := range preorder(t.Rank, t.P, t.K) {
		blockA := addr + rankID(r, t.Root, t.P)*blockBytes
		for chk := 0; chk < x.nchunks(lines); chk++ {
			m := x.chunkSpan(chk, lines)
			s := int(tc % nb)
			tc++
			if tc > nb {
				l.wait(l.upConsumedLine(), tc-nb)
			}
			c.PutMemToMPB(c.ID(), l.slotLine(s), blockA+chk*cfg.BufLines*scc.CacheLine, m)
			c.SetFlag(t.Parent, l.upReadyLine(t.ChildIdx), tc)
		}
	}
	if tc > 0 {
		l.wait(l.upConsumedLine(), tc)
	}
}
