// allreduce demonstrates the one-sided collective family (the paper's §7
// future work, implemented in internal/occoll): a data-parallel "dot
// product + argmax" round where every core combines partial results with
// AllReduceOC, then compares the one-sided latency against the two-sided
// Reduce+Bcast composition on an identical chip.
package main

import (
	"encoding/binary"
	"fmt"

	ocbcast "repro"
)

const (
	lines   = 256 // 8 KiB of partial sums per core
	addr    = 0
	scratch = 1 << 17
)

// stage writes each core's partial-sum vector: lane j of core i holds
// (i+1)·(j+1), so the global sum is verifiable in closed form.
func stage(sys *ocbcast.System) {
	for i := 0; i < sys.N(); i++ {
		b := make([]byte, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane*8 < len(b); lane++ {
			binary.LittleEndian.PutUint64(b[lane*8:], uint64((i+1)*(lane+1)))
		}
		sys.WritePrivate(i, addr, b)
	}
}

// lastReturn is the collective's completion: the latest per-core return
// time in deterministic virtual microseconds.
func lastReturn(times []float64) float64 {
	last := times[0]
	for _, t := range times[1:] {
		if t > last {
			last = t
		}
	}
	return last
}

func main() {
	// One-sided: OC-Reduce fused with OC-Bcast, one k-ary tree.
	oc := ocbcast.New(ocbcast.Options{})
	stage(oc)
	ocTimes := make([]float64, oc.N())
	oc.Run(func(c *ocbcast.Core) {
		c.AllReduceOC(addr, lines, ocbcast.SumInt64)
		ocTimes[c.ID()] = c.NowMicros()
	})
	ocUs := lastReturn(ocTimes)

	// Two-sided composition on an identical chip, for comparison.
	two := ocbcast.New(ocbcast.Options{})
	stage(two)
	twoTimes := make([]float64, two.N())
	two.Run(func(c *ocbcast.Core) {
		c.Reduce(0, addr, scratch, lines, ocbcast.SumInt64)
		c.BroadcastBinomial(0, addr, lines)
		twoTimes[c.ID()] = c.NowMicros()
	})
	twoUs := lastReturn(twoTimes)

	// Verify: lane j on every core must hold (j+1)·Σ(i+1) in both runs.
	n := oc.N()
	tri := uint64(n * (n + 1) / 2)
	for i := 0; i < n; i++ {
		a := oc.ReadPrivate(i, addr, lines*ocbcast.CacheLineBytes)
		b := two.ReadPrivate(i, addr, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane*8 < len(a); lane++ {
			want := uint64(lane+1) * tri
			if got := binary.LittleEndian.Uint64(a[lane*8:]); got != want {
				panic(fmt.Sprintf("one-sided: core %d lane %d = %d, want %d", i, lane, got, want))
			}
			if got := binary.LittleEndian.Uint64(b[lane*8:]); got != want {
				panic(fmt.Sprintf("two-sided: core %d lane %d = %d, want %d", i, lane, got, want))
			}
		}
	}

	fmt.Printf("allreduce of %d KiB partial sums on %d cores (results identical)\n",
		lines*ocbcast.CacheLineBytes/1024, n)
	fmt.Printf("  one-sided AllReduceOC:        %8.2f µs\n", ocUs)
	fmt.Printf("  two-sided Reduce+Bcast:       %8.2f µs\n", twoUs)
	fmt.Printf("  speedup:                      %8.2fx\n", twoUs/ocUs)
}
