package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/scc"
	"repro/internal/workload"
)

// simPerf is the schema of BENCH_simperf.json: the repo's wall-clock
// simulator-throughput trajectory. Simulated microseconds are pinned by
// the golden determinism tests; this file tracks how fast the simulator
// produces them. Compare the file across commits — or read the history
// section — to catch hot-path regressions.
type simPerf struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Effort     int    `json:"effort"`

	// Engine holds the per-workload engine-throughput measurements the
	// perf gate compares against; History is the per-PR trajectory.
	Engine  engineSection  `json:"engine"`
	History []historyEntry `json:"history"`

	// Legacy flat bcast fields, duplicated from Engine.Bcast so older
	// readers of the file keep working. The verifier prefers Engine.
	BcastIters       int     `json:"bcast_iters"`
	BcastMsPerSim    float64 `json:"bcast_ms_per_sim"`
	BcastSimsPerSec  float64 `json:"bcast_sims_per_sec"`
	AllocsPerBcast   float64 `json:"allocs_per_bcast"`
	SimulatedUsBcast float64 `json:"simulated_us_bcast"`

	// Parallel sweep harness: a Fig8a-style (size × algorithm) grid,
	// sharded by ParallelMap vs forced-sequential execution of the same
	// cells. On a 1-CPU host the speedup is ~1.0 by construction.
	SweepCells        int     `json:"sweep_cells"`
	SweepSequentialMs float64 `json:"sweep_sequential_ms"`
	SweepParallelMs   float64 `json:"sweep_parallel_ms"`
	SweepSpeedup      float64 `json:"sweep_speedup"`

	// Topology scaling: one 96-CL OC-Bcast k=7 per ScaleMeshes topology
	// (48..384 cores), so the trajectory covers how simulator wall-clock
	// cost grows with mesh size, not just the fixed 48-core workload.
	Scale []scalePerf `json:"scale"`

	// Overlap: fig-overlap headline cells — blocking AllReduceOC+compute
	// vs the non-blocking IAllReduceOC interleaved with compute slices.
	// Simulated microseconds, so the section is deterministic; it records
	// the achievable communication/computation overlap per message size.
	Overlap []overlapPerf `json:"overlap"`
}

// engineSection is the per-workload engine-throughput block of
// BENCH_simperf.json: how fast the simulator turns wall-clock seconds
// into finished simulations, for three workloads that stress different
// hot paths — the headline broadcast (scheduler + MPB), an 8-KiB
// allreduce (reduction combine + both collective directions), and a
// 1000-record mixed-op replay (per-record dispatch steady state).
type engineSection struct {
	Bcast       workloadPerf `json:"bcast"`
	Allreduce8K workloadPerf `json:"allreduce_8k"`
	Replay1K    workloadPerf `json:"replay_1k"`
}

// workloadPerf is one engine workload's measurement.
type workloadPerf struct {
	Iters        int     `json:"iters"`
	MsPerSim     float64 `json:"ms_per_sim"`
	SimsPerSec   float64 `json:"sims_per_sec"`
	AllocsPerSim float64 `json:"allocs_per_sim"`
	SimulatedUs  float64 `json:"simulated_us"`
}

// historyEntry is one point on the engine-throughput trajectory —
// `ocbench perf -perf-label "PR N"` appends (or, for a repeated label,
// replaces) one entry per PR, so the speedup history reads directly
// from the committed file. Wall-clock numbers are only comparable
// within one host, which is exactly the CI use.
type historyEntry struct {
	Label               string  `json:"label"`
	Timestamp           string  `json:"timestamp"`
	GoVersion           string  `json:"go_version"`
	BcastSimsPerSec     float64 `json:"bcast_sims_per_sec"`
	AllreduceSimsPerSec float64 `json:"allreduce_8k_sims_per_sec,omitempty"`
	ReplaySimsPerSec    float64 `json:"replay_1k_sims_per_sec,omitempty"`
}

// overlapPerf is one fig-overlap cell of the perf file: compute load
// W = compute_frac·T and polling grain grain_frac·W, with T the bare
// collective latency for that size.
type overlapPerf struct {
	Lines       int     `json:"lines"`
	ComputeFrac float64 `json:"compute_frac"`
	GrainFrac   float64 `json:"grain_frac"`
	BlockingUs  float64 `json:"blocking_us"`
	OverlapUs   float64 `json:"overlap_us"`
	Speedup     float64 `json:"speedup"`
}

// scalePerf is one topology point of the perf file's scaling section.
type scalePerf struct {
	Mesh        string  `json:"mesh"`
	Cores       int     `json:"cores"`
	MsPerSim    float64 `json:"ms_per_sim"`
	SimulatedUs float64 `json:"simulated_us"`
}

// allocsPerRun reports the mean number of heap allocations per call to
// f, like testing.AllocsPerRun but without linking the testing package
// into the CLI. Mallocs from runtime.ReadMemStats is exact (it stops the
// world), so warm-path runs yield a stable count.
func allocsPerRun(runs int, f func() float64) float64 {
	f() // warm caches, pools and lazily allocated state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// perfBatches is how many times measureWorkload repeats its timing
// window. The fastest batch is reported: on a shared host the minimum
// estimates the uninterfered cost of the workload, where a single mean
// is hostage to whatever else ran during its (often ~10ms) window.
const perfBatches = 5

// measureWorkload times `iters` runs of one workload (after a warm-up
// that also records the simulated time), repeated perfBatches times
// keeping the fastest batch, and samples its allocation footprint.
func measureWorkload(iters int, run func() float64) workloadPerf {
	w := workloadPerf{Iters: iters}
	w.SimulatedUs = run() // warm-up; also records the simulated time
	best := time.Duration(math.MaxInt64)
	for b := 0; b < perfBatches; b++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			run()
		}
		if wall := time.Since(t0); wall < best {
			best = wall
		}
	}
	w.MsPerSim = best.Seconds() * 1e3 / float64(iters)
	w.SimsPerSec = float64(iters) / best.Seconds()
	w.AllocsPerSim = allocsPerRun(5, run)
	return w
}

// replayPerfTrace builds the engine section's 1000-record mixed-op
// replay workload: every collective family round-robin, a compute slice
// every fifth record — the same shape the replay allocation budget
// pins.
func replayPerfTrace(n int) *workload.Trace {
	ops := workload.Ops()
	tr := &workload.Trace{}
	for i := 0; i < 1000; i++ {
		r := workload.Record{Op: ops[i%len(ops)], Root: (i * 5) % n, Lines: 1 + i%4}
		if i%5 == 2 {
			r.ComputeUs = 3.5
		}
		tr.Records = append(tr.Records, r)
	}
	return tr
}

// replayPerfCores is the chip size of the replay workload (small on
// purpose: the workload stresses per-record dispatch, not fan-out).
const replayPerfCores = 8

// runPerf measures wall-clock simulator throughput and writes the result
// to BENCH_simperf.json in the current directory. label names the
// appended history entry (an existing entry with the same label is
// replaced, so re-running within one PR does not grow the file).
func runPerf(cfg scc.Config, effort int, label string) error {
	bcast := func() float64 {
		return harness.MeanLatency(cfg, harness.Alg{Name: "oc", K: 7}, scc.NumCores, 96, 1)
	}

	perf := simPerf{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Effort:     effort,
	}

	// Engine throughput: the headline broadcast plus the allreduce and
	// replay workloads, each with its allocation footprint.
	perf.Engine.Bcast = measureWorkload(20*effort, bcast)
	perf.Engine.Allreduce8K = measureWorkload(5*effort, func() float64 {
		return harness.MeanAllReduce(cfg, harness.VariantOC, 7, scc.NumCores, 256, 1)
	})
	replayTr := replayPerfTrace(replayPerfCores)
	perf.Engine.Replay1K = measureWorkload(5*effort, func() float64 {
		return harness.ReplayChip(cfg, replayPerfCores, replayTr)
	})

	// Legacy flat mirror of the bcast workload (older readers).
	perf.BcastIters = perf.Engine.Bcast.Iters
	perf.BcastMsPerSim = perf.Engine.Bcast.MsPerSim
	perf.BcastSimsPerSec = perf.Engine.Bcast.SimsPerSec
	perf.AllocsPerBcast = perf.Engine.Bcast.AllocsPerSim
	perf.SimulatedUsBcast = perf.Engine.Bcast.SimulatedUs

	// Trajectory: keep every prior PR's entry, replace or append ours.
	perf.History = appendHistory(loadHistory(), historyEntry{
		Label:               label,
		Timestamp:           perf.Timestamp,
		GoVersion:           perf.GoVersion,
		BcastSimsPerSec:     perf.Engine.Bcast.SimsPerSec,
		AllreduceSimsPerSec: perf.Engine.Allreduce8K.SimsPerSec,
		ReplaySimsPerSec:    perf.Engine.Replay1K.SimsPerSec,
	})

	// Sweep harness: identical cells, sequential vs sharded. The grid is
	// deliberately independent of -effort so the file stays comparable
	// across commits.
	cells := harness.DefaultSweepCells()
	perf.SweepCells = len(cells)
	t0 := time.Now()
	seq := make([]float64, len(cells))
	for i, c := range cells {
		seq[i] = harness.MeanLatency(cfg, c.Alg, scc.NumCores, c.Lines, c.Reps)
	}
	perf.SweepSequentialMs = time.Since(t0).Seconds() * 1e3
	t0 = time.Now()
	par := harness.MeanLatencyGrid(cfg, scc.NumCores, cells)
	perf.SweepParallelMs = time.Since(t0).Seconds() * 1e3
	perf.SweepSpeedup = perf.SweepSequentialMs / perf.SweepParallelMs
	for i := range cells {
		if seq[i] != par[i] {
			return fmt.Errorf("perf: determinism violation in cell %d: sequential %v µs != parallel %v µs",
				i, seq[i], par[i])
		}
	}

	// Topology scaling: wall-clock cost of one broadcast simulation per
	// mesh size (iteration counts kept small; the point is the trend).
	for _, topo := range harness.ScaleMeshes() {
		cfg2 := cfg
		cfg2.Topo = topo
		n := topo.NumCores()
		run := func() float64 {
			return harness.MeanLatency(cfg2, harness.Alg{Name: "oc", K: 7}, n, 96, 1)
		}
		simUs := run() // warm-up; also records the simulated time
		iters := 2 * effort
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			run()
		}
		perf.Scale = append(perf.Scale, scalePerf{
			Mesh:        fmt.Sprintf("%dx%d", topo.W, topo.H),
			Cores:       n,
			MsPerSim:    time.Since(t0).Seconds() * 1e3 / float64(iters),
			SimulatedUs: simUs,
		})
	}

	// Overlap headline: blocking vs non-blocking AllReduce with compute
	// loads of T/2 and T, polled at W/64 (the finest fig-overlap grain).
	for _, p := range harness.OverlapSweep(cfg, scc.NumCores, 7,
		[]int{32, 96}, []float64{0.5, 1.0}, []float64{1.0 / 64}) {
		perf.Overlap = append(perf.Overlap, overlapPerf{
			Lines:       p.Lines,
			ComputeFrac: p.Ratio,
			GrainFrac:   p.GrainUs / (p.CollUs * p.Ratio),
			BlockingUs:  p.BlockingUs,
			OverlapUs:   p.OverlapUs,
			Speedup:     p.Speedup,
		})
	}

	// Merge through patchPerfFile so sections owned by other subcommands
	// (tune's "crossover") survive a perf refresh.
	var sections map[string]any
	if raw, err := json.Marshal(perf); err != nil {
		return err
	} else if err := json.Unmarshal(raw, &sections); err != nil {
		return err
	}
	if err := patchPerfFile(sections); err != nil {
		return err
	}

	fmt.Printf(`simulator performance (wrote BENCH_simperf.json)
  96-CL OC-Bcast k=7, 48 cores:  %.2f ms/simulation  (%.1f simulations/s, %.0f allocs)
  8-KiB allreduce (oc k=7):      %.2f ms/simulation  (%.1f simulations/s, %.0f allocs)
  1k-record replay (8 cores):    %.2f ms/simulation  (%.1f simulations/s, %.0f allocs)
  sweep %d cells:                %.0f ms sequential, %.0f ms sharded (%.2fx, GOMAXPROCS=%d)
`, perf.Engine.Bcast.MsPerSim, perf.Engine.Bcast.SimsPerSec, perf.Engine.Bcast.AllocsPerSim,
		perf.Engine.Allreduce8K.MsPerSim, perf.Engine.Allreduce8K.SimsPerSec, perf.Engine.Allreduce8K.AllocsPerSim,
		perf.Engine.Replay1K.MsPerSim, perf.Engine.Replay1K.SimsPerSec, perf.Engine.Replay1K.AllocsPerSim,
		perf.SweepCells, perf.SweepSequentialMs, perf.SweepParallelMs,
		perf.SweepSpeedup, perf.GOMAXPROCS)
	for _, s := range perf.Scale {
		fmt.Printf("  scale %-6s (%3d cores):     %.2f ms/simulation (%.0f simulated µs)\n",
			s.Mesh, s.Cores, s.MsPerSim, s.SimulatedUs)
	}
	for _, o := range perf.Overlap {
		fmt.Printf("  overlap %4d CL, W=%.1fT:      %.0f µs blocking -> %.0f µs overlapped (%.2fx)\n",
			o.Lines, o.ComputeFrac, o.BlockingUs, o.OverlapUs, o.Speedup)
	}
	return nil
}

// loadHistory reads the history array of the existing perf file, so a
// perf refresh preserves the trajectory. A missing or unparseable file
// starts a fresh history (the rest of the file is remeasured anyway).
func loadHistory() []historyEntry {
	raw, err := os.ReadFile(perfFile)
	if err != nil {
		return nil
	}
	var prev simPerf
	if err := json.Unmarshal(raw, &prev); err != nil {
		return nil
	}
	return prev.History
}

// appendHistory adds e to the trajectory, replacing an existing entry
// with the same label (one entry per PR, however often perf reruns).
func appendHistory(hist []historyEntry, e historyEntry) []historyEntry {
	for i := range hist {
		if hist[i].Label == e.Label {
			hist[i] = e
			return hist
		}
	}
	return append(hist, e)
}

// runPerfVerify is the hot-path performance gate: it re-measures the
// BenchmarkEngineThroughput workload (one 96-CL OC-Bcast k=7 on 48
// cores, tracing disabled — the nil-sink path) and compares it against
// the committed BENCH_simperf.json baseline. Checks, strictest first:
//
//   - simulated_us_bcast must match exactly (simulated time is part of
//     the golden contract; tracing off must be byte-identical);
//   - allocs_per_bcast must stay within allocMaxPct of the baseline, or
//     within allocSlackAbs objects of it — now that the warmed path is
//     down to a dozen allocations, ±2% is less than one object, so a
//     small absolute slack absorbs runtime jitter (map growth, pool
//     state) without weakening the relative gate at larger counts — AND
//     under the absolute allocCap budget (the allocation-free-hot-path
//     contract: a warmed broadcast must never again approach the seed's
//     ~2268 allocations);
//   - bcast_ms_per_sim must stay within wallMaxPct, and simulations/sec
//     must stay above floorPct of the baseline's bcast_sims_per_sec
//     (wall clock varies across machines, so these loose gates only
//     catch gross regressions — the floor default tolerates a 2x
//     slower CI host but fails on an order-of-magnitude collapse).
//
// allocSlackAbs is the absolute allocation jitter runPerfVerify
// tolerates on top of the relative gate (see its doc comment).
const allocSlackAbs = 2

// perfGates bundles the gate thresholds the verifier applies.
type perfGates struct {
	AllocMaxPct float64 // max |allocs drift| in percent of baseline
	WallMaxPct  float64 // max wall-clock slowdown in percent
	AllocCap    float64 // absolute allocations budget
	FloorPct    float64 // min sims/s as percent of baseline
}

// bcastBaseline extracts the verifier's bcast baseline from a parsed
// perf file: the engine section when present, else the legacy flat
// fields (pre-engine-section files), else an error.
func bcastBaseline(base simPerf) (workloadPerf, error) {
	if base.Engine.Bcast.MsPerSim > 0 && base.Engine.Bcast.AllocsPerSim > 0 {
		return base.Engine.Bcast, nil
	}
	if base.BcastMsPerSim > 0 && base.AllocsPerBcast > 0 {
		return workloadPerf{
			Iters:        base.BcastIters,
			MsPerSim:     base.BcastMsPerSim,
			SimsPerSec:   base.BcastSimsPerSec,
			AllocsPerSim: base.AllocsPerBcast,
			SimulatedUs:  base.SimulatedUsBcast,
		}, nil
	}
	return workloadPerf{}, fmt.Errorf("no bcast baseline (run `ocbench perf`)")
}

// checkPerf compares one re-measured workload against its committed
// baseline under the given gates, returning the human-readable summary
// line alongside any gate violation. Pure — unit tests drive it with
// synthetic measurements.
func checkPerf(base, meas workloadPerf, g perfGates) (string, error) {
	simsPerSec := 1e3 / meas.MsPerSim
	allocPct := 100 * (meas.AllocsPerSim - base.AllocsPerSim) / base.AllocsPerSim
	wallPct := 100 * (meas.MsPerSim - base.MsPerSim) / base.MsPerSim
	floor := base.SimsPerSec * g.FloorPct / 100
	summary := fmt.Sprintf("perf -verify: %.0f allocs/sim (baseline %.1f, %+.2f%%, gate ±%.0f%% and <=%.0f), %.2f ms/sim (baseline %.2f, %+.1f%%, gate +%.0f%%), %.1f sims/s (floor %.1f = %.0f%% of baseline %.1f)",
		meas.AllocsPerSim, base.AllocsPerSim, allocPct, g.AllocMaxPct, g.AllocCap,
		meas.MsPerSim, base.MsPerSim, wallPct, g.WallMaxPct,
		simsPerSec, floor, g.FloorPct, base.SimsPerSec)
	if meas.SimulatedUs != base.SimulatedUs {
		return summary, fmt.Errorf("perf -verify: simulated time drifted: %v µs, baseline %v µs",
			meas.SimulatedUs, base.SimulatedUs)
	}
	if math.Abs(allocPct) > g.AllocMaxPct && math.Abs(meas.AllocsPerSim-base.AllocsPerSim) > allocSlackAbs {
		return summary, fmt.Errorf("perf -verify: allocations per simulation changed %+.2f%% (gate ±%.0f%% or ±%.0f objects): the nil-sink hot path regressed",
			allocPct, g.AllocMaxPct, float64(allocSlackAbs))
	}
	if meas.AllocsPerSim > g.AllocCap {
		return summary, fmt.Errorf("perf -verify: %.0f allocations per simulation over the absolute budget %.0f: per-op allocation crept back into the hot path",
			meas.AllocsPerSim, g.AllocCap)
	}
	if wallPct > g.WallMaxPct {
		return summary, fmt.Errorf("perf -verify: wall clock per simulation %+.1f%% over baseline (gate +%.0f%%)",
			wallPct, g.WallMaxPct)
	}
	if base.SimsPerSec > 0 && simsPerSec < floor {
		return summary, fmt.Errorf("perf -verify: %.1f simulations/s below the floor %.1f (%.0f%% of the %.1f baseline)",
			simsPerSec, floor, g.FloorPct, base.SimsPerSec)
	}
	return summary, nil
}

func runPerfVerify(cfg scc.Config, allocMaxPct, wallMaxPct, allocCap, floorPct float64) error {
	raw, err := os.ReadFile(perfFile)
	if err != nil {
		return fmt.Errorf("perf -verify: %w (run `ocbench perf` first)", err)
	}
	var parsed simPerf
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return fmt.Errorf("perf -verify: %s: %w", perfFile, err)
	}
	base, err := bcastBaseline(parsed)
	if err != nil {
		return fmt.Errorf("perf -verify: %s has %w", perfFile, err)
	}

	bcast := func() float64 {
		return harness.MeanLatency(cfg, harness.Alg{Name: "oc", K: 7}, scc.NumCores, 96, 1)
	}
	meas := workloadPerf{Iters: 20}
	meas.SimulatedUs = bcast() // warm-up + determinism check
	meas.AllocsPerSim = allocsPerRun(5, bcast)
	t0 := time.Now()
	for i := 0; i < meas.Iters; i++ {
		bcast()
	}
	meas.MsPerSim = time.Since(t0).Seconds() * 1e3 / float64(meas.Iters)

	summary, err := checkPerf(base, meas, perfGates{
		AllocMaxPct: allocMaxPct, WallMaxPct: wallMaxPct,
		AllocCap: allocCap, FloorPct: floorPct,
	})
	fmt.Println(summary)
	return err
}
