package occoll

import (
	"repro/internal/core"
	"repro/internal/scc"
)

// Bcast delivers `lines` cache lines from the root's private memory at
// byte address addr to the same address on every core — OC-Bcast's §4
// chunk pipeline run over an occoll lane's own flag block (dnNotify/
// dnDone), with the §5.4 leaf-direct optimization always on. It is the
// blocking twin of IBcast; the classic core.Broadcaster remains the
// paper-faithful standalone broadcast with its own flag layout.
func (x *Collectives) Bcast(root, addr, lines int) {
	x.IBcast(root, addr, lines).Wait()
}

// IBcast is the non-blocking Bcast: it issues the broadcast and returns a
// Request to Test or Wait on while the core computes.
func (x *Collectives) IBcast(root, addr, lines int) *Request {
	return x.issue("IBcast", root, addr, lines, nil, runIBcast)
}

func runIBcast(r *Request) { r.lane.bcastDown(r.tree, r.addr, r.lines) }

// bcastDown is the OC-Bcast §4 chunk pipeline over the lane's own
// flag lines (dnNotify/dnDone), with the §5.4 leaf-direct optimization
// always on: a leaf pulls each chunk from its parent's MPB straight to
// private memory. It delivers `lines` cache lines from the tree root's
// addr to the same address everywhere.
func (l *lane) bcastDown(t core.Tree, addr, lines int) {
	x := l.x
	c, cfg := x.core, x.cfg
	n := x.nchunks(lines)
	nb := x.numBuffers()
	seq := func(ch int) uint64 { return uint64(ch) + 1 }

	if t.Rank == 0 {
		for ch := 0; ch < n; ch++ {
			m := x.chunkSpan(ch, lines)
			buf := l.bufLine(ch)
			if ch >= nb {
				for i := range t.Children {
					l.wait(l.dnDoneLine(i), seq(ch-nb))
				}
			}
			c.PutMemToMPB(c.ID(), buf, addr+ch*cfg.BufLines*scc.CacheLine, m)
			for _, child := range t.NotifyOwn {
				c.SetFlag(child, l.dnNotifyLine(), seq(ch))
			}
		}
		for i := range t.Children {
			l.wait(l.dnDoneLine(i), seq(n-1))
		}
		return
	}

	for ch := 0; ch < n; ch++ {
		m := x.chunkSpan(ch, lines)
		chunkAddr := addr + ch*cfg.BufLines*scc.CacheLine
		buf := l.bufLine(ch)

		l.wait(l.dnNotifyLine(), seq(ch))
		for _, sib := range t.NotifyFwd {
			c.SetFlag(sib, l.dnNotifyLine(), seq(ch))
		}
		if t.IsLeaf() {
			c.GetMPBToMem(t.Parent, buf, chunkAddr, m)
			c.SetFlag(t.Parent, l.dnDoneLine(t.ChildIdx), seq(ch))
			continue
		}
		if ch >= nb {
			for i := range t.Children {
				l.wait(l.dnDoneLine(i), seq(ch-nb))
			}
		}
		c.GetMPBToMPB(t.Parent, buf, buf, m)
		c.SetFlag(t.Parent, l.dnDoneLine(t.ChildIdx), seq(ch))
		for _, child := range t.NotifyOwn {
			c.SetFlag(child, l.dnNotifyLine(), seq(ch))
		}
		c.GetMPBToMem(c.ID(), buf, chunkAddr, m)
	}
	// Drain: my children must have consumed my last staged chunks.
	for i := range t.Children {
		l.wait(l.dnDoneLine(i), seq(n-1))
	}
}
