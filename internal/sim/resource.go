package sim

// Resource models a FIFO server with a single queue, such as an MPB port
// or a memory controller. A request for n service units issued at time t
// begins service when the server becomes free and occupies it for
// n × unit. Resources introduce queueing delay only under concurrency;
// an uncontended request starts immediately.
//
// Because the engine schedules processes in global virtual-time order,
// reservations arrive in nondecreasing time order and a simple
// "next free time" register implements an exact FIFO queue.
type Resource struct {
	name string
	unit Duration // service time per unit
	free Time     // next time the server is idle

	// inflight holds finish times of reservations that may still be in
	// the system; InflightAt prunes it. Used to measure instantaneous
	// queue depth for load-dependent service policies.
	inflight []Time

	// Stats.
	reservations int64
	unitsServed  int64
	busyTime     Duration
	queuedTime   Duration
}

// NewResource creates a FIFO resource with the given per-unit service time.
func NewResource(name string, unit Duration) *Resource {
	return &Resource{name: name, unit: unit}
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// Unit reports the per-unit service time.
func (r *Resource) Unit() Duration { return r.unit }

// Reserve books n service units starting no earlier than t and returns the
// time service completes. The caller decides how to combine the result
// with its analytic cost (typically a max).
func (r *Resource) Reserve(t Time, n int) (finish Time) {
	if n <= 0 {
		return t
	}
	return r.reserve(t, Duration(int64(n)*int64(r.unit)), int64(n))
}

// ReserveDur books an explicit service duration starting no earlier than t,
// for callers whose per-unit cost differs from the resource default (e.g.
// MPB ports charge reads and writes differently).
func (r *Resource) ReserveDur(t Time, service Duration) (finish Time) {
	if service <= 0 {
		return t
	}
	return r.reserve(t, service, 1)
}

func (r *Resource) reserve(t Time, service Duration, units int64) (finish Time) {
	start := t
	if r.free > start {
		start = r.free
	}
	finish = start + service
	r.free = finish
	r.pruneFinished(t)
	r.inflight = append(r.inflight, finish)

	r.reservations++
	r.unitsServed += units
	r.busyTime += service
	r.queuedTime += start - t
	return finish
}

// InflightAt reports how many previously issued reservations are still in
// the system (queued or in service) at time t. Because reservations are
// issued in nondecreasing time order, pruning finished entries is exact.
func (r *Resource) InflightAt(t Time) int {
	r.pruneFinished(t)
	return len(r.inflight)
}

// pruneFinished drops reservations already finished at t. Reservations
// are issued in nondecreasing time order, so the finished set is an exact
// prefix; compaction is in place so the slice keeps its capacity and
// stops allocating once warm.
func (r *Resource) pruneFinished(t Time) {
	i := 0
	for i < len(r.inflight) && r.inflight[i] <= t {
		i++
	}
	if i > 0 {
		n := copy(r.inflight, r.inflight[i:])
		r.inflight = r.inflight[:n]
	}
}

// NextFree reports when the server next becomes idle.
func (r *Resource) NextFree() Time { return r.free }

// Stats reports cumulative usage counters: number of reservations, units
// served, total busy time, and total time requests spent queued.
func (r *Resource) Stats() (reservations, units int64, busy, queued Duration) {
	return r.reservations, r.unitsServed, r.busyTime, r.queuedTime
}

// Reset clears the server's schedule and statistics, keeping the warm
// inflight buffer so a pooled chip's reruns stop allocating here.
func (r *Resource) Reset() {
	r.free = 0
	r.inflight = r.inflight[:0]
	r.reservations = 0
	r.unitsServed = 0
	r.busyTime = 0
	r.queuedTime = 0
}
