// Package sim provides a deterministic discrete-event simulation engine
// — the substrate on which the paper's experimental methodology (§6.1:
// barrier-separated repetitions timed with the SCC's global counters) is
// reproduced exactly rather than statistically.
//
// Simulated cores run ordinary Go code inside goroutines; a central
// scheduler admits exactly one core at a time — always the runnable core
// with the smallest virtual clock (ties broken by process id) — so
// simulation results are fully deterministic and timestamps taken on
// different cores are directly comparable, like the SCC's global
// hardware counters.
//
// The scheduler keeps runnable processes in an indexed binary min-heap
// keyed on (clock, id), maintained incrementally as processes block,
// wake and finish, so each scheduling decision is O(log n); a process
// that remains the earliest runnable continues without a goroutine
// round-trip. Both are pure wall-clock optimisations: the admission
// order is identical to scanning every process each step.
package sim

import "fmt"

// Time is a virtual timestamp in integer picoseconds. Table 1 of the paper
// expresses parameters in microseconds with 3 significant digits
// (e.g. Lhop = 0.005 µs); picosecond integers represent all of them exactly,
// so the scheduler never suffers floating-point drift.
type Time int64

// Duration is a virtual time span in picoseconds.
type Duration = Time

// Time unit constants.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros converts a duration in microseconds (as the paper reports
// parameters) to a Time.
func Micros(us float64) Time {
	return Time(us * float64(Microsecond))
}

// Microseconds reports t as a float64 number of microseconds, the unit used
// throughout the paper's tables and figures.
func (t Time) Microseconds() float64 {
	return float64(t) / float64(Microsecond)
}

// String formats the time in microseconds, matching the paper's unit.
func (t Time) String() string {
	return fmt.Sprintf("%.4fµs", t.Microseconds())
}

// maxTime is a sentinel larger than any reachable virtual time.
const maxTime = Time(1<<63 - 1)
