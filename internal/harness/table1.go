package harness

import (
	"fmt"

	"repro/internal/calibrate"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Table1 regenerates the paper's Table 1 by the paper's own method:
// microbenchmark put/get across distances and sizes, then least-squares
// fit the LogP parameters. The "configured" column is the ground truth
// the simulator was parameterised with (the paper's measured values);
// "fitted" is what calibration recovers from the microbenchmarks.
func Table1(cfg scc.Config) (*Table, error) {
	samples := calibrate.Microbench(cfg, []int{1, 2, 4, 8, 16, 32})
	fit, err := calibrate.FitParams(samples)
	if err != nil {
		return nil, err
	}
	truth := cfg.Params

	tbl := &Table{
		Title:   "Table 1 — model parameters (µs), fitted from microbenchmarks",
		Columns: []string{"parameter", "paper/configured", "fitted", "R² family"},
	}
	row := func(name string, want, got sim.Duration, fam string) {
		r2 := ""
		if fam != "" {
			r2 = fmt.Sprintf("%s (R²=%.6f)", fam, fit.R2[fam])
		}
		tbl.Rows = append(tbl.Rows, []string{
			name,
			fmt.Sprintf("%.3f", want.Microseconds()),
			fmt.Sprintf("%.3f", got.Microseconds()),
			r2,
		})
	}
	row("Lhop", truth.Lhop, fit.Params.Lhop, "mpbGet")
	row("o^mpb", truth.OMpb, fit.Params.OMpb, "mpbGet")
	row("o^mem_w", truth.OMemW, fit.Params.OMemW, "memGet")
	row("o^mem_r", truth.OMemR, fit.Params.OMemR, "memPut")
	row("o^mpb_put", truth.OMpbPut, fit.Params.OMpbPut, "mpbPut")
	row("o^mpb_get", truth.OMpbGet, fit.Params.OMpbGet, "mpbGet")
	row("o^mem_put", truth.OMemPut, fit.Params.OMemPut, "memPut")
	row("o^mem_get", truth.OMemGet, fit.Params.OMemGet, "memGet")
	return tbl, nil
}
