package ocbcast

import (
	"repro/internal/collective"
	"repro/internal/occoll"
)

// This file surfaces the extension collectives (the paper's §7 future
// work) in two families:
//
//   - Two-sided: Reduce, AllReduce, Gather, Scatter, AllGather ride the
//     RCCE send/recv baseline — every hop pays the synchronous
//     flag-handshake and off-chip round trip the paper's broadcast
//     avoids. They are the comparison baseline.
//   - One-sided (suffix OC): ReduceOC, AllReduceOC, GatherOC, ScatterOC,
//     AllGatherOC extend the OC-Bcast technique — pipelined k-ary trees,
//     chunks moved between MPBs with one-sided gets, reduction chunks
//     combined directly in the MPBs — and share OC-Bcast's (K,
//     ChunkLines, DoubleBuffer) configuration. The `fig-allreduce`
//     harness experiment measures the two families against each other.
//
// All collectives are chip-wide: every core must call them with matching
// arguments, MPI style.

// ReduceOp combines the src buffer into dst (equal lengths, cache-line
// multiples). See SumInt64 and MaxInt64.
type ReduceOp = collective.ReduceOp

// SumInt64 adds little-endian int64 lanes; MaxInt64 keeps lane maxima.
var (
	SumInt64 ReduceOp = collective.SumInt64
	MaxInt64 ReduceOp = collective.MaxInt64
)

// --- Two-sided family (RCCE send/recv substrate) ---

// Reduce combines every core's `lines` cache lines at addr with op into
// the root (binomial tree). scratchAddr is same-size private staging the
// operation may clobber on interior nodes.
func (c *Core) Reduce(root, addr, scratchAddr, lines int, op ReduceOp) {
	c.comm.Reduce(root, addr, scratchAddr, lines, op)
}

// AllReduce reduces to core 0 with the two-sided binomial tree, then
// broadcasts the result with OC-Bcast — the hybrid composition the
// paper's §7 suggests. For the fully one-sided version see AllReduceOC.
func (c *Core) AllReduce(addr, scratchAddr, lines int, op ReduceOp) {
	c.comm.Reduce(0, addr, scratchAddr, lines, op)
	c.bc.Bcast(0, addr, lines)
}

// Gather collects each core's block (at addr + id·lines·32) onto the root.
func (c *Core) Gather(root, addr, lines int) { c.comm.Gather(root, addr, lines) }

// Scatter distributes per-core blocks from the root's memory layout
// (block i at addr + i·lines·32) to each core.
func (c *Core) Scatter(root, addr, lines int) { c.comm.Scatter(root, addr, lines) }

// AllGather exchanges every core's block so all cores hold all P blocks.
func (c *Core) AllGather(addr, lines int) { c.comm.AllGather(addr, lines) }

// --- One-sided family (pipelined k-ary trees over MPB RMA) ---

// ReduceOC combines every core's `lines` cache lines at addr with op
// into the root: OC-Reduce, a k-ary reduction tree whose chunks are
// staged in MPBs and folded together with one-sided combining gets,
// pipelined like OC-Bcast. Needs no scratch area; non-root inputs are
// left untouched.
func (c *Core) ReduceOC(root, addr, lines int, op ReduceOp) {
	c.occ().Reduce(root, addr, lines, op)
}

// AllReduceOC is OC-Reduce fused with an OC-Bcast of the result down the
// same tree and MPB slots; every core ends with the combined result at
// addr. At 48 cores it beats the two-sided Reduce+Bcast composition from
// a few hundred bytes up (2.5x and rising at 8 KiB).
func (c *Core) AllReduceOC(addr, lines int, op ReduceOp) {
	c.occ().AllReduce(addr, lines, op)
}

// GatherOC collects each core's block (at addr + id·lines·32) onto the
// root, streamed up the k-ary tree through double-buffered MPB slots.
func (c *Core) GatherOC(root, addr, lines int) { c.occ().Gather(root, addr, lines) }

// ScatterOC distributes per-core blocks from the root's memory layout
// (block i at addr + i·lines·32), streamed down the k-ary tree
// store-and-forward.
func (c *Core) ScatterOC(root, addr, lines int) { c.occ().Scatter(root, addr, lines) }

// AllGatherOC is an OC-Gather onto core 0 fused with an OC-Bcast of the
// concatenated result, leaving all P blocks id-ordered at addr on every
// core.
func (c *Core) AllGatherOC(addr, lines int) { c.occ().AllGather(addr, lines) }

// BcastOC broadcasts `lines` cache lines from root's addr to the same
// address everywhere — the OC-Bcast chunk pipeline run over an occoll
// lane, and the blocking twin of IBcastOC. (Broadcast remains the
// paper-faithful standalone OC-Bcast with its own flag layout.)
func (c *Core) BcastOC(root, addr, lines int) { c.occ().Bcast(root, addr, lines) }

// --- Non-blocking one-sided family (the progress engine) ---
//
// Each I*OC call issues the same lane protocol its blocking twin runs and
// returns a Request immediately; the blocking twin is literally issue +
// Wait, so its simulated timing is identical. The protocol advances only
// inside Progress, Request.Test and Request.Wait (MPI-style progress);
// between those calls the core is free to Compute, which is what the
// fig-overlap experiment measures. Requests must be issued in the same
// program order on every core (lanes are assigned round-robin by issue
// order) and each must be completed by exactly one Wait or true Test
// before the body returns. Wait progresses only its own request, so
// cores must also Wait multiple in-flight requests in the same order —
// mismatched completion orders deadlock like mismatched blocking
// collectives; poll with Test/Progress when the order can't be
// symmetric.

// Request is the handle of an in-flight non-blocking collective; see
// occoll.Request for the Wait/Test lifecycle.
type Request = occoll.Request

// IBcastOC starts a non-blocking BcastOC and returns its handle.
func (c *Core) IBcastOC(root, addr, lines int) *Request {
	return c.occ().IBcast(root, addr, lines)
}

// IReduceOC starts a non-blocking ReduceOC and returns its handle.
func (c *Core) IReduceOC(root, addr, lines int, op ReduceOp) *Request {
	return c.occ().IReduce(root, addr, lines, op)
}

// IAllReduceOC starts a non-blocking AllReduceOC and returns its handle.
func (c *Core) IAllReduceOC(addr, lines int, op ReduceOp) *Request {
	return c.occ().IAllReduce(addr, lines, op)
}

// IScatterOC starts a non-blocking ScatterOC and returns its handle.
func (c *Core) IScatterOC(root, addr, lines int) *Request {
	return c.occ().IScatter(root, addr, lines)
}

// IGatherOC starts a non-blocking GatherOC and returns its handle.
func (c *Core) IGatherOC(root, addr, lines int) *Request {
	return c.occ().IGather(root, addr, lines)
}

// IAllGatherOC starts a non-blocking AllGatherOC and returns its handle.
func (c *Core) IAllGatherOC(addr, lines int) *Request {
	return c.occ().IAllGather(addr, lines)
}

// Progress advances every outstanding non-blocking request as far as it
// can go without blocking. It never blocks and, when no awaited flag has
// arrived, costs no simulated time — interleave it with Compute slices to
// overlap communication with computation.
func (c *Core) Progress() { c.occ().Progress() }
