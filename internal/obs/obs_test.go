package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// build records a small well-formed two-core timeline used by several
// tests: core 0 computes then transfers with a nested flag set; core 1
// waits, with an async request span and a counter overlapping it.
func build() (*Recorder, *Timeline) {
	r := NewRecorder()
	r.Begin(0, 0, "rma", "compute", BucketCompute, Arg{}, Arg{})
	r.End(0, 100)
	r.Begin(0, 100, "rma", "put.mpb", BucketMPB, Arg{"lines", 96}, Arg{"dst", 1})
	r.Begin(0, 150, "rma", "flag.set", BucketFlag, Arg{}, Arg{})
	r.End(0, 180)
	r.End(0, 300)
	r.Instant(0, 300, "sim", "done", Arg{}, Arg{})

	id := r.AsyncID()
	r.AsyncBegin(id, 1, 0, "occoll", "bcast", Arg{"lane", 0}, Arg{})
	r.Counter(1, 0, "occoll", "lanes", 1)
	r.Begin(1, 0, "rma", "flag.wait", BucketWait, Arg{}, Arg{})
	r.End(1, 250)
	r.AsyncEnd(id, 1, 250, "occoll", "bcast")
	r.Counter(1, 250, "occoll", "lanes", 0)
	r.Instant(1, 250, "sim", "done", Arg{}, Arg{})

	tl := Capture(r, 2, []ResUsage{
		{Class: ResMPBPort, Name: "mpb0", Reservations: 2, Units: 96, Busy: 120, Queued: 10},
		{Class: ResNoCLink, Name: "idle", Reservations: 0},
	})
	return r, tl
}

func TestAttributionClaiming(t *testing.T) {
	_, tl := build()
	attr := tl.Attribution()

	// Core 0: compute [0,100), put [100,300) with nested flag.set
	// [150,180) claiming its 30 from the put (innermost wins).
	a := attr[0]
	if a.Total != 300 {
		t.Fatalf("core 0 total = %d, want 300", a.Total)
	}
	want := map[Bucket]Time{BucketCompute: 100, BucketMPB: 170, BucketFlag: 30}
	for b, d := range want {
		if a.Buckets[b] != d {
			t.Errorf("core 0 bucket %s = %d, want %d", b, a.Buckets[b], d)
		}
	}

	// Core 1: pure wait.
	if attr[1].Total != 250 || attr[1].Buckets[BucketWait] != 250 {
		t.Fatalf("core 1 attribution = %+v, want 250 all wait", attr[1])
	}

	// Buckets sum to total on every core.
	for _, a := range attr {
		var sum Time
		for _, d := range a.Buckets {
			sum += d
		}
		if sum != a.Total {
			t.Fatalf("core %d buckets sum %d != total %d", a.Core, sum, a.Total)
		}
	}
}

func TestAttributionUncoveredTimeIsOther(t *testing.T) {
	r := NewRecorder()
	r.Begin(0, 50, "rma", "compute", BucketCompute, Arg{}, Arg{})
	r.End(0, 70)
	r.Instant(0, 100, "sim", "done", Arg{}, Arg{})
	tl := Capture(r, 1, nil)
	a := tl.Attribution()[0]
	if a.Total != 100 || a.Buckets[BucketOther] != 80 || a.Buckets[BucketCompute] != 20 {
		t.Fatalf("attribution = %+v, want total 100, other 80, compute 20", a)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	_, tl := build()
	if err := tl.Validate(); err != nil {
		t.Fatalf("well-formed timeline rejected: %v", err)
	}
	if tl.End != 300 {
		t.Fatalf("End = %d, want 300", tl.End)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		emit func(r *Recorder)
		want string
	}{
		{"time reversal", func(r *Recorder) {
			r.Instant(0, 100, "sim", "a", Arg{}, Arg{})
			r.Instant(0, 50, "sim", "b", Arg{}, Arg{})
		}, "back in time"},
		{"unbalanced end", func(r *Recorder) {
			r.End(0, 10)
		}, "no open span"},
		{"unclosed span", func(r *Recorder) {
			r.Begin(0, 0, "rma", "x", BucketMPB, Arg{}, Arg{})
		}, "unclosed"},
		{"async end without begin", func(r *Recorder) {
			r.AsyncEnd(7, 0, 10, "occoll", "x")
		}, "unopened"},
		{"async never closed", func(r *Recorder) {
			r.AsyncBegin(9, 0, 10, "occoll", "x", Arg{}, Arg{})
		}, "never closed"},
		{"duplicate async id", func(r *Recorder) {
			r.AsyncBegin(3, 0, 0, "occoll", "x", Arg{}, Arg{})
			r.AsyncBegin(3, 0, 5, "occoll", "y", Arg{}, Arg{})
		}, "already open"},
		{"core out of range", func(r *Recorder) {
			r.Instant(5, 0, "sim", "a", Arg{}, Arg{})
		}, "outside"},
	}
	for _, tc := range cases {
		r := NewRecorder()
		tc.emit(r)
		err := Capture(r, 2, nil).Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestTail(t *testing.T) {
	r, _ := build()
	tail := r.Tail(0, 3)
	if len(tail) != 3 {
		t.Fatalf("tail length = %d, want 3", len(tail))
	}
	// Oldest first, and only core 0 events.
	for i, ev := range tail {
		if ev.Core != 0 {
			t.Fatalf("tail[%d] from core %d", i, ev.Core)
		}
		if i > 0 && ev.Time < tail[i-1].Time {
			t.Fatalf("tail not in time order: %v", tail)
		}
	}
	if tail[2].Name != "done" {
		t.Fatalf("last tail event = %q, want the done instant", tail[2].Name)
	}
	if got := r.Tail(1, 100); len(got) == 0 || len(got) >= r.Len() {
		t.Fatalf("core-1 tail length = %d, want 0 < n < %d", len(got), r.Len())
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Kind: KindBegin, Core: 3, Time: 1_500_000, Cat: "rma", Name: "put.mem",
		Str: "oc(k=7)", A0: Arg{"lines", 96}}
	s := ev.String()
	for _, want := range []string{"1.5000µs", "B rma/put.mem", "oc(k=7)", "lines=96"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q, missing %q", s, want)
		}
	}
}

func TestWritePerfettoWellFormed(t *testing.T) {
	_, tl := build()
	var buf bytes.Buffer
	if err := tl.WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			TID   int            `json:"tid"`
			ID    string         `json:"id"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	// One thread_name metadata record per core + every recorded event.
	if want := tl.NCores + len(tl.Events); len(doc.TraceEvents) != want {
		t.Fatalf("traceEvents length = %d, want %d", len(doc.TraceEvents), want)
	}
	phases := map[string]int{}
	for _, te := range doc.TraceEvents {
		phases[te.Phase]++
		if (te.Phase == "b" || te.Phase == "e") && te.ID == "" {
			t.Fatalf("async event %q lacks an id", te.Name)
		}
	}
	for _, ph := range []string{"M", "B", "E", "i", "b", "e", "C"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q phase events exported (got %v)", ph, phases)
		}
	}
	if phases["B"] != phases["E"] {
		t.Fatalf("unbalanced B/E in export: %v", phases)
	}
}

func TestWriteSummary(t *testing.T) {
	_, tl := build()
	var buf bytes.Buffer
	if err := tl.WriteSummary(&buf, 10); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"time attribution", "top spans", "rma/put.mpb", "occoll/bcast", "mpb-port", "mpb0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// The idle resource row is suppressed.
	if strings.Contains(out, "idle") {
		t.Fatalf("summary should omit unused resources:\n%s", out)
	}
}
