package core

import (
	"repro/internal/scc"
	"repro/internal/sim"
)

// This file holds the inline state-machine form of the OC-Bcast chunk
// pipeline (a sim.Frame): runRoot and runNonRoot expressed as a program
// counter over the same rma Call* ops the blocking bodies issue. The
// blocking bodies in occast.go remain the executable spec — the
// equivalence suite pins both byte-identical — and Bcast branches on
// Core.Inline after validation, fencing and tree construction.

// bcastFrame program counter values. The r* states walk the root's
// pipeline, the n* states a non-root's; a frame uses one family only.
const (
	rDoneWait uint8 = iota // root: wait for the buffer's previous chunk
	rPut                   // root: stage the chunk into its own MPB
	rNotify                // root: notify the first children of its tree
	rFinal                 // root: final done-flag poll frees the MPB

	nNotifyWait // non-root: wait to learn the chunk reached the parent
	nFwd        // non-root: forward the notification to siblings
	nLeafDone   // leaf-direct: release the parent's buffer
	nDoneWait   // non-root: wait for own buffer's previous chunk
	nDone       // non-root: tell the parent the chunk is consumed
	nNotify     // non-root: wake the own subtree
	nAdvance    // non-root: next chunk
)

// bcastFrame is one broadcast's chunk pipeline as a resumable machine;
// the embedded instance on Broadcaster suffices because a core runs at
// most one broadcast at a time. ch is the chunk index, i the position
// in whichever per-chunk flag loop the current state iterates.
type bcastFrame struct {
	b           *Broadcaster
	t           Tree
	addr, lines int
	nchunks, nb int
	ch, i       int
	pc          uint8
}

// seq is the chunk's flag value: the monotonic sequence base plus the
// 1-based chunk number (a method, not a closure, so frames stay
// allocation-free).
func (f *bcastFrame) seq(ch int) uint64 { return f.b.base + uint64(ch) + 1 }

// chunk reports the current chunk's size in lines, MPB buffer line and
// private-memory byte address.
func (f *bcastFrame) chunk(cfg Config) (m, buf, chunkAddr int) {
	m = f.lines - f.ch*cfg.BufLines
	if m > cfg.BufLines {
		m = cfg.BufLines
	}
	return m, cfg.bufLine(f.ch), f.addr + f.ch*cfg.BufLines*scc.CacheLine
}

func (f *bcastFrame) Step(proc *sim.Proc) sim.StepStatus {
	c, cfg := f.b.core, f.b.cfg
	for {
		switch f.pc {
		// ---- root ----
		case rDoneWait:
			if f.ch == f.nchunks {
				f.i = 0
				f.pc = rFinal
				continue
			}
			if f.ch >= f.nb && f.i < len(f.t.Children) {
				f.i++
				return c.CallWaitFlagGE(cfg.doneLine(f.i-1), f.seq(f.ch-f.nb))
			}
			f.pc = rPut
		case rPut:
			m, buf, chunkAddr := f.chunk(cfg)
			f.i = 0
			f.pc = rNotify
			return c.CallPutMemToMPB(c.ID(), buf, chunkAddr, m)
		case rNotify:
			if f.i < len(f.t.NotifyOwn) {
				f.i++
				return c.CallSetFlag(f.t.NotifyOwn[f.i-1], cfg.notifyLine(), f.seq(f.ch))
			}
			f.ch++
			f.i = 0
			f.pc = rDoneWait
		case rFinal:
			if f.i < len(f.t.Children) {
				f.i++
				return c.CallWaitFlagGE(cfg.doneLine(f.i-1), f.seq(f.nchunks-1))
			}
			f.b.base += uint64(f.nchunks)
			return sim.StepDone

		// ---- non-root ----
		case nNotifyWait:
			if f.ch == f.nchunks {
				f.b.base += uint64(f.nchunks)
				return sim.StepDone
			}
			f.i = 0
			f.pc = nFwd
			return c.CallWaitFlagGE(cfg.notifyLine(), f.seq(f.ch))
		case nFwd:
			if f.i < len(f.t.NotifyFwd) {
				f.i++
				return c.CallSetFlag(f.t.NotifyFwd[f.i-1], cfg.notifyLine(), f.seq(f.ch))
			}
			if cfg.LeafDirect && f.t.IsLeaf() {
				m, buf, chunkAddr := f.chunk(cfg)
				f.pc = nLeafDone
				return c.CallGetMPBToMem(f.t.Parent, buf, chunkAddr, m)
			}
			f.i = 0
			f.pc = nDoneWait
		case nLeafDone:
			f.pc = nAdvance
			return c.CallSetFlag(f.t.Parent, cfg.doneLine(f.t.ChildIdx), f.seq(f.ch))
		case nDoneWait:
			if !f.t.IsLeaf() && f.ch >= f.nb && f.i < len(f.t.Children) {
				f.i++
				return c.CallWaitFlagGE(cfg.doneLine(f.i-1), f.seq(f.ch-f.nb))
			}
			m, buf, _ := f.chunk(cfg)
			f.pc = nDone
			return c.CallGetMPBToMPB(f.t.Parent, buf, buf, m)
		case nDone:
			f.i = 0
			f.pc = nNotify
			return c.CallSetFlag(f.t.Parent, cfg.doneLine(f.t.ChildIdx), f.seq(f.ch))
		case nNotify:
			if f.i < len(f.t.NotifyOwn) {
				f.i++
				return c.CallSetFlag(f.t.NotifyOwn[f.i-1], cfg.notifyLine(), f.seq(f.ch))
			}
			m, buf, chunkAddr := f.chunk(cfg)
			f.pc = nAdvance
			return c.CallGetMPBToMem(c.ID(), buf, chunkAddr, m)
		default: // nAdvance
			f.ch++
			f.pc = nNotifyWait
		}
	}
}
