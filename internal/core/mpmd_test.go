package core

import (
	"bytes"
	"testing"

	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// TestMPMDBroadcast: receivers learn root/addr/size from the activation
// descriptor instead of matching call arguments.
func TestMPMDBroadcast(t *testing.T) {
	const n, lines, root = 48, 200, 0
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	payload := pattern(lines*scc.CacheLine, 42)
	chip.Private(root).Write(4096, payload)

	gotRoot := make([]int, n)
	gotAddr := make([]int, n)
	gotLines := make([]int, n)
	chip.Run(func(c *rma.Core) {
		b := NewBroadcaster(c, DefaultConfig())
		if c.ID() == root {
			b.Announce(4096, lines)
			return
		}
		// An "OS service loop": blocked until interrupted.
		gotRoot[c.ID()], gotAddr[c.ID()], gotLines[c.ID()] = b.HandleAnnounce()
	})
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		if gotRoot[i] != root || gotAddr[i] != 4096 || gotLines[i] != lines {
			t.Fatalf("core %d decoded descriptor (%d,%d,%d), want (%d,4096,%d)",
				i, gotRoot[i], gotAddr[i], gotLines[i], root, lines)
		}
		got := make([]byte, len(payload))
		chip.Private(i).Read(got, 4096, len(got))
		if !bytes.Equal(got, payload) {
			t.Fatalf("core %d payload corrupted", i)
		}
	}
}

// TestMPMDNonZeroRootAndBusyReceivers: activation reaches cores that are
// busy computing when the interrupt fires, from a non-zero root.
func TestMPMDNonZeroRootAndBusyReceivers(t *testing.T) {
	const n, lines, root = 12, 97, 7
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	payload := pattern(lines*scc.CacheLine, 9)
	chip.Private(root).Write(0, payload)
	chip.Run(func(c *rma.Core) {
		b := NewBroadcaster(c, DefaultConfig())
		if c.ID() == root {
			b.Announce(0, lines)
			return
		}
		// Busy doing unrelated MPMD work of varying length.
		c.Compute(sim.Duration(c.ID()) * 3 * sim.Microsecond)
		b.HandleAnnounce()
	})
	for i := 0; i < n; i++ {
		got := make([]byte, len(payload))
		chip.Private(i).Read(got, 0, len(got))
		if !bytes.Equal(got, payload) {
			t.Fatalf("core %d payload corrupted", i)
		}
	}
}

// TestMPMDThenSPMD: an MPMD broadcast followed by a normal Bcast from the
// same root must compose (sequence bases stay aligned via the
// descriptor).
func TestMPMDThenSPMD(t *testing.T) {
	const n, root = 8, 0
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	p1 := pattern(10*scc.CacheLine, 1)
	p2 := pattern(20*scc.CacheLine, 2)
	chip.Private(root).Write(0, p1)
	chip.Private(root).Write(8192, p2)
	chip.Run(func(c *rma.Core) {
		b := NewBroadcaster(c, DefaultConfig())
		if c.ID() == root {
			b.Announce(0, 10)
			b.Bcast(root, 8192, 20)
			return
		}
		b.HandleAnnounce()
		b.Bcast(root, 8192, 20)
	})
	for i := 0; i < n; i++ {
		g1 := make([]byte, len(p1))
		g2 := make([]byte, len(p2))
		chip.Private(i).Read(g1, 0, len(g1))
		chip.Private(i).Read(g2, 8192, len(g2))
		if !bytes.Equal(g1, p1) || !bytes.Equal(g2, p2) {
			t.Fatalf("core %d corrupted in MPMD->SPMD sequence", i)
		}
	}
}

func TestMPMDAnnounceValidation(t *testing.T) {
	mustPanic := func(name string, f func(b *Broadcaster)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		chip := rma.NewChipN(scc.DefaultConfig(), 1)
		chip.Run(func(c *rma.Core) {
			f(NewBroadcaster(c, DefaultConfig()))
		})
	}
	mustPanic("zero lines", func(b *Broadcaster) { b.Announce(0, 0) })
	mustPanic("misaligned", func(b *Broadcaster) { b.Announce(3, 1) })
}
