package sim

import "repro/internal/obs"

type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateBlocked
	stateDone
)

// Proc is one simulated processor: a goroutine whose execution is
// serialized by the engine in virtual-time order. All methods must be
// called from within the process's own body function.
type Proc struct {
	id    int
	eng   *Engine
	now   Time
	state procState

	// heapIdx is the process's position in the engine's run queue, or
	// -1 when not queued (running, blocked, or done).
	heapIdx int

	// blockRec is the process's reusable watcher record: a process
	// blocks on at most one watch key at a time, and the entry is
	// removed from the watcher list exactly when the process wakes.
	blockRec blockedProc

	resume chan struct{} // engine -> proc: you may run
	yield  chan struct{} // proc -> engine: my step is done
}

func newProc(e *Engine, id int) *Proc {
	return &Proc{
		id:      id,
		eng:     e,
		state:   stateNew,
		heapIdx: -1,
		resume:  make(chan struct{}),
		yield:   make(chan struct{}),
	}
}

// ID reports the process id (0..N-1).
func (p *Proc) ID() int { return p.id }

// Now reports the process's current virtual time.
func (p *Proc) Now() Time { return p.now }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.eng }

// start launches the process goroutine. The goroutine waits for its first
// resume before executing body.
func (p *Proc) start(body func(*Proc)) {
	p.state = stateRunnable
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.eng.panicVal = r
			}
			if o := p.eng.obs; o != nil {
				// The done instant pins the core's final clock on its
				// track; attribution uses it as the core's total.
				o.Instant(p.id, int64(p.now), "sim", "done", obs.Arg{}, obs.Arg{})
			}
			p.state = stateDone
			p.eng.finished++
			p.yield <- struct{}{}
		}()
		body(p)
	}()
}

// step lets the process run until it yields (advances time, blocks, or
// finishes).
func (p *Proc) step() {
	p.resume <- struct{}{}
	<-p.yield
}

// doYield returns control to the engine and waits to be resumed.
//
// Fast path: if the process is still runnable and still strictly first in
// (clock, id) order among all runnable processes, the engine would hand
// control straight back — so skip the channel round-trip (two goroutine
// switches) and keep running. The schedule is byte-identical; only the
// bookkeeping is elided.
func (p *Proc) doYield() {
	if p.state == stateRunnable {
		q := &p.eng.runq
		if len(q.heap) == 0 || q.less(p, q.heap[0]) {
			return
		}
	}
	p.yield <- struct{}{}
	<-p.resume
}

// Advance moves the process's clock forward by d and yields so the engine
// can schedule other processes. d must be non-negative.
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	p.now += d
	p.doYield()
}

// AdvanceTo moves the clock to t if t is in the future, then yields.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.now {
		p.now = t
	}
	p.doYield()
}

// Block suspends the process until pred() holds for the given watch key.
// The predicate is evaluated immediately; if it already holds the process
// merely yields. Otherwise the process sleeps until a Signal on key finds
// the predicate true, and resumes no earlier than the signalling write's
// effective time. Block returns the process's clock after waking.
func (p *Proc) Block(key WatchKey, pred func() bool) Time {
	if pred() {
		p.doYield()
		return p.now
	}
	if o := p.eng.obs; o != nil {
		o.Instant(p.id, int64(p.now), "sim", "block",
			obs.Arg{Key: "space", Val: int64(key.Space)}, obs.Arg{Key: "line", Val: int64(key.Line)})
	}
	p.state = stateBlocked
	p.eng.addWatcher(key, p, pred)
	p.doYield()
	if o := p.eng.obs; o != nil {
		o.Instant(p.id, int64(p.now), "sim", "wake", obs.Arg{}, obs.Arg{})
	}
	return p.now
}

// unblock makes a blocked process runnable again at time wake (or its own
// clock, whichever is later) and re-queues it with the scheduler.
func (p *Proc) unblock(wake Time) {
	if p.state != stateBlocked {
		return
	}
	if wake > p.now {
		p.now = wake
	}
	p.state = stateRunnable
	p.eng.runq.push(p)
}
