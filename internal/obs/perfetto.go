package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one record of the Chrome trace-event format, the JSON
// schema Perfetto (ui.perfetto.dev) and chrome://tracing both load.
// Timestamps are microseconds; the simulator's picosecond clock divides
// down without losing the paper-relevant digits.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// psToUS converts integer picoseconds to the format's float microseconds.
func psToUS(t Time) float64 { return float64(t) / microsecond }

// WritePerfetto exports the timeline as a Chrome trace-event JSON
// object, loadable in Perfetto or chrome://tracing. Each core is one
// thread track (pid 0, tid = core id); synchronous spans become B/E
// pairs, async request spans become b/e pairs matched by id, instants
// become thread-scoped i events, and counters become C tracks.
func (tl *Timeline) WritePerfetto(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	first := true
	emit := func(te traceEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder writes a trailing newline; it is harmless inside the
		// array and keeps the file diffable.
		return enc.Encode(te)
	}

	for core := 0; core < tl.NCores; core++ {
		err := emit(traceEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: core,
			Args: map[string]any{"name": fmt.Sprintf("core %d", core)},
		})
		if err != nil {
			return err
		}
	}

	for _, ev := range tl.Events {
		te := traceEvent{
			Name:  ev.Name,
			Cat:   ev.Cat,
			Phase: ev.Kind.letter(),
			TS:    psToUS(ev.Time),
			PID:   0,
			TID:   int(ev.Core),
		}
		switch ev.Kind {
		case KindEnd:
			// The format pairs E with the innermost open B; name/cat are
			// not required and the recorder does not retain them.
			te.Name = ""
		case KindInstant:
			te.Scope = "t"
		case KindAsyncBegin, KindAsyncEnd:
			te.ID = fmt.Sprintf("0x%x", ev.ID)
		case KindCounter:
			te.Args = map[string]any{"value": ev.ID}
		}
		if ev.Kind != KindCounter {
			te.Args = eventArgs(ev)
		}
		if err := emit(te); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// eventArgs collects an event's optional annotations for the viewer.
func eventArgs(ev Event) map[string]any {
	var args map[string]any
	add := func(k string, v any) {
		if args == nil {
			args = make(map[string]any, 3)
		}
		args[k] = v
	}
	if ev.Str != "" {
		add("detail", ev.Str)
	}
	if ev.A0.Key != "" {
		add(ev.A0.Key, ev.A0.Val)
	}
	if ev.A1.Key != "" {
		add(ev.A1.Key, ev.A1.Val)
	}
	return args
}
