// Package scc models the Intel Single-Chip Cloud Computer's physical
// organization (paper §2): tiles of P54C cores on a 2D-mesh
// network-on-chip with deterministic X-Y virtual cut-through routing,
// per-tile Message Passing Buffers split between the tile's cores, and
// off-chip memory controllers attached at the mesh edges.
//
// The geometry is a first-class value, Topology: SCC() is the
// paper-faithful 6×4-tile, 48-core chip (Howard et al., ISSCC 2010) and
// Mesh(w, h) scales the same tile design to arbitrary grids. The
// package-level constants and helper functions describe the 6×4 default
// and are retained for code that is explicitly about the real chip.
package scc

import "fmt"

// Chip geometry constants of the real SCC (Howard et al., ISSCC 2010;
// paper §2.1) — the default topology returned by SCC().
const (
	MeshWidth    = 6 // tiles per row, x ∈ [0,6)
	MeshHeight   = 4 // tiles per column, y ∈ [0,4)
	NumTiles     = MeshWidth * MeshHeight
	CoresPerTile = 2
	NumCores     = NumTiles * CoresPerTile

	// CacheLine is the unit of data transmission on the SCC: one NoC
	// packet carries one 32-byte cache line (paper §2.2). It is a
	// property of the tile design, not of the mesh size, so it stays a
	// constant across topologies.
	CacheLine = 32

	// MPBBytesPerCore is each core's share of its tile's 16 KB MPB.
	MPBBytesPerCore = 8 * 1024
	// MPBLinesPerCore is the MPB size in cache lines (256).
	MPBLinesPerCore = MPBBytesPerCore / CacheLine
)

// std is the default topology backing the package-level helpers.
var std = SCC()

// Coord is a tile position on the mesh, (0,0) bottom-left to (5,3) on the
// default chip, as in Figure 1 of the paper.
type Coord struct {
	X, Y int
}

// String formats the coordinate like the paper: "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Valid reports whether the coordinate lies on the default 6×4 mesh.
// Use Topology.Contains for parametric meshes.
func (c Coord) Valid() bool { return std.Contains(c) }

// TileID converts a coordinate to a tile id in row-major order on the
// default 6×4 mesh. Use Topology.TileID for parametric meshes.
func (c Coord) TileID() int { return std.TileID(c) }

// TileCoord converts a tile id (0..23) to its mesh coordinate on the
// default 6×4 mesh.
func TileCoord(tile int) Coord { return std.TileCoord(tile) }

// CoreTile reports the tile a core sits on, on the default 6×4 mesh.
// Cores are numbered so that cores 2t and 2t+1 share tile t, matching
// sccLinux's enumeration.
func CoreTile(core int) int { return std.CoreTile(core) }

// CoreCoord reports the mesh coordinate of a core's tile on the default
// 6×4 mesh.
func CoreCoord(core int) Coord { return std.CoreCoord(core) }

// MemoryControllers are the mesh positions of the default chip's four
// DDR3 controllers. They attach to the router at the listed tile (chip
// edges: tiles (0,0), (5,0), (0,2) and (5,2), per Figure 1).
var MemoryControllers = [4]Coord{
	{X: 0, Y: 0},
	{X: 5, Y: 0},
	{X: 0, Y: 2},
	{X: 5, Y: 2},
}

// ControllerFor reports which memory controller serves a core on the
// default 6×4 mesh under the standard LUT configuration: the chip is
// split into four quadrants and each quadrant uses its nearest
// controller.
func ControllerFor(core int) Coord { return std.ControllerFor(core) }

// HopDistance is the number of routers a packet traverses from the source
// tile to the destination tile under X-Y routing: the packet enters the
// source tile's router, moves along X, then along Y. This is the model
// parameter d of the paper. A core accessing its own tile's MPB still
// goes through the local router, so the minimum distance is 1
// (paper §2.2: direct local access is discouraged due to a hardware bug).
// Pure mesh geometry — topology-independent.
func HopDistance(src, dst Coord) int {
	d := abs(src.X-dst.X) + abs(src.Y-dst.Y) + 1
	return d
}

// CoreDistance is the hop distance between two cores' tiles on the
// default 6×4 mesh.
func CoreDistance(a, b int) int { return std.CoreDistance(a, b) }

// MemDistance is the hop distance from a core to its memory controller on
// the default 6×4 mesh.
func MemDistance(core int) int { return std.MemDistance(core) }

// Link identifies a directed mesh link between two adjacent routers.
type Link struct {
	From, To Coord
}

// String formats the link as "(x,y)->(x,y)".
func (l Link) String() string { return l.From.String() + "->" + l.To.String() }

// XYPath returns the X-Y routing path on the default 6×4 mesh. Use
// Topology.XYPath for parametric meshes.
func XYPath(src, dst Coord) []Link { return std.XYPath(src, dst) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
