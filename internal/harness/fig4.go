package harness

import (
	"fmt"

	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/stats"
)

// Fig4Counts is the x-axis of Figure 4: concurrent accessors of core 0's
// MPB.
var Fig4Counts = []int{1, 2, 4, 6, 8, 12, 16, 24, 32, 40, 48}

// Fig4 regenerates Figure 4: average and per-core spread of completion
// times when N cores concurrently (a) get 128 cache lines from core 0's
// MPB and (b) put 1 cache line into it, looping `iters` iterations to
// reach the steady state the paper averages over. The paper's finding:
// no measurable contention up to ~24 accessors, then a knee, with the
// slowest core >2× the fastest for gets and >4× for puts at 48.
func Fig4(cfg scc.Config, iters int) *Table {
	if iters <= 0 {
		iters = 50
	}
	tbl := &Table{
		Title:   "Figure 4 — MPB contention: concurrent access to core 0's MPB (µs)",
		Columns: []string{"op", "cores", "avg", "fastest", "slowest", "slow/fast"},
		Notes: []string{
			fmt.Sprintf("Steady-state average over %d iterations per core.", iters),
			"Paper: contention invisible up to 24 accessors; at 48, slowest",
			"core >2x the fastest for 128-CL gets, >4x for 1-CL puts.",
		},
	}

	// Each (op, accessor-count) cell simulates on its own chip, so the
	// cells shard across ParallelMap workers; rows keep the sweep order.
	type cell struct {
		op   string
		n    int
		body func(c *rma.Core) float64
	}
	var cells []cell
	for _, n := range Fig4Counts {
		cells = append(cells, cell{"get 128CL", ncoresCap(n), func(c *rma.Core) float64 {
			var total float64
			for it := 0; it < iters; it++ {
				t0 := c.Now()
				c.GetMPBToMPB(0, 0, 0, 128)
				total += (c.Now() - t0).Microseconds()
			}
			return total / float64(iters)
		}})
	}
	for _, n := range Fig4Counts {
		cells = append(cells, cell{"put 1CL", ncoresCap(n), func(c *rma.Core) float64 {
			var total float64
			for it := 0; it < iters; it++ {
				t0 := c.Now()
				// Each writer targets its own line of core 0's MPB, as
				// the paper notes parallel large puts to one location
				// would be meaningless; 1-CL puts to distinct lines.
				c.PutMPBToMPB(0, c.ID(), 0, 1)
				total += (c.Now() - t0).Microseconds()
			}
			return total / float64(iters)
		}})
	}

	tbl.Rows = ParallelMap(len(cells), func(i int) []string {
		cl := cells[i]
		chip := rma.NewChip(cfg)
		perCore := make([]float64, 0, cl.n)
		chip.Run(func(c *rma.Core) {
			// Cores 1..n participate; the paper's accessed core 0 idles.
			if c.ID() < 1 || c.ID() > cl.n {
				return
			}
			perCore = append(perCore, cl.body(c))
		})
		s := stats.Summarize(perCore)
		return []string{
			cl.op, fmt.Sprint(cl.n),
			fmt.Sprintf("%.3f", s.Mean),
			fmt.Sprintf("%.3f", s.Min),
			fmt.Sprintf("%.3f", s.Max),
			fmt.Sprintf("%.2f", s.Max/s.Min),
		}
	})
	return tbl
}
