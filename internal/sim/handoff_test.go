package sim

import (
	"math/rand"
	"testing"
)

// The direct-handoff scheduler and the classic two-hop scheduler must
// produce the same schedule — not approximately, but event for event.
// These tests drive both modes over randomized workloads and compare
// full execution traces.

// stressEv is one observation of the running process: who ran, at what
// virtual time, at which step of its body.
type stressEv struct {
	id   int
	now  Time
	step int
}

// runStress executes a randomized run-queue workload — procs advancing
// by random (frequently tying) durations and blocking on each other
// through watch keys — and returns the full serialized execution trace
// plus the engine's slow-path switch count.
func runStress(seed int64, nproc, steps int, handoff bool) ([]stressEv, int64) {
	prev := SetDirectHandoff(handoff)
	defer SetDirectHandoff(prev)

	e := NewEngine(nproc)
	var trace []stressEv
	// vals[i] counts proc i's completed steps; procs block on a
	// neighbor reaching a threshold, exercising Signal/watcher paths.
	vals := make([]uint64, nproc)
	e.Run(func(p *Proc) {
		rng := rand.New(rand.NewSource(seed + int64(p.ID())*7919))
		for s := 0; s < steps; s++ {
			// Small durations (often zero) force clock ties so the
			// (clock, id) tiebreak is exercised constantly.
			p.Advance(Duration(rng.Intn(5)))
			trace = append(trace, stressEv{id: p.ID(), now: p.now, step: s})
			vals[p.ID()]++
			e.Signal(WatchKey{Space: 0, Line: p.ID()}, p.now)
			if s%8 == 3 {
				// Wait for the next proc to pass our progress — a
				// rendezvous that is always eventually satisfied.
				peer := (p.ID() + 1) % nproc
				want := vals[p.ID()] - 1
				if want > uint64(steps) {
					want = uint64(steps)
				}
				p.Block(WatchKey{Space: 0, Line: peer}, func() bool {
					return vals[peer] >= want
				})
			}
		}
	})
	return trace, e.Switches()
}

// TestHandoffClassicEquivalence asserts the two scheduling modes yield
// identical traces (same procs, same clocks, same order) and the same
// slow-path switch count across randomized workloads.
func TestHandoffClassicEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		ht, hs := runStress(seed, 9, 120, true)
		ct, cs := runStress(seed, 9, 120, false)
		if len(ht) != len(ct) {
			t.Fatalf("seed %d: trace length %d (handoff) vs %d (classic)", seed, len(ht), len(ct))
		}
		for i := range ht {
			if ht[i] != ct[i] {
				t.Fatalf("seed %d: trace diverges at event %d: %+v (handoff) vs %+v (classic)",
					seed, i, ht[i], ct[i])
			}
		}
		if hs != cs {
			t.Errorf("seed %d: switch count %d (handoff) vs %d (classic)", seed, hs, cs)
		}
	}
}

// TestHandoffDeterminism asserts the handoff scheduler is reproducible
// run-to-run for the same seed.
func TestHandoffDeterminism(t *testing.T) {
	a, _ := runStress(42, 7, 100, true)
	b, _ := runStress(42, 7, 100, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestClassicModeDeadlockAndPanic re-runs the failure-path contracts
// under the classic scheduler, which routes every yield through the
// engine goroutine.
func TestClassicModeDeadlockAndPanic(t *testing.T) {
	prev := SetDirectHandoff(false)
	defer SetDirectHandoff(prev)

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("classic mode: deadlock not detected")
			}
		}()
		e := NewEngine(2)
		e.Run(func(p *Proc) {
			if p.ID() == 0 {
				p.Block(WatchKey{Space: 1, Line: 1}, func() bool { return false })
			}
		})
	}()

	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("classic mode: panic = %v, want boom", r)
			}
		}()
		e := NewEngine(3)
		e.Run(func(p *Proc) {
			p.Advance(Duration(p.ID()))
			if p.ID() == 1 {
				panic("boom")
			}
		})
	}()
}

// TestPersistentEngineReuse pins the pooled-engine lifecycle: parked
// goroutines across Reset/Run cycles, identical behavior to a fresh
// engine, and a clean Shutdown.
func TestPersistentEngineReuse(t *testing.T) {
	e := NewEngine(5)
	e.SetPersistent(true)
	body := func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(Duration(1 + p.ID()))
		}
	}
	var finals [3][]Time
	for run := 0; run < 3; run++ {
		if run > 0 && !e.Reset() {
			t.Fatal("Reset refused on a cleanly completed engine")
		}
		e.Run(body)
		for _, p := range e.procs {
			finals[run] = append(finals[run], p.now)
		}
	}
	for run := 1; run < 3; run++ {
		for i := range finals[0] {
			if finals[run][i] != finals[0][i] {
				t.Errorf("run %d proc %d final clock %v, want %v", run, i, finals[run][i], finals[0][i])
			}
		}
	}
	if !e.Shutdown() {
		t.Error("Shutdown refused on an idle persistent engine")
	}
	// After Shutdown the engine spawns fresh goroutines and still works.
	if !e.Reset() {
		t.Fatal("Reset refused after Shutdown")
	}
	e.Run(body)
	if !e.Shutdown() {
		t.Error("second Shutdown refused")
	}
}

// TestAdvanceYieldAllocFree pins the scheduler hot path: on a warmed
// persistent engine, a full Reset+Run cycle of pure Advance traffic
// performs zero heap allocations.
func TestAdvanceYieldAllocFree(t *testing.T) {
	e := NewEngine(4)
	e.SetPersistent(true)
	defer e.Shutdown()
	body := func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Advance(Duration(1 + (p.ID()+i)%3))
		}
	}
	e.Run(body) // warm: spawn goroutines, grow the run-queue heap
	allocs := testing.AllocsPerRun(20, func() {
		if !e.Reset() {
			t.Fatal("Reset refused")
		}
		e.Run(body)
	})
	if allocs > 0 {
		t.Errorf("Reset+Run of a warmed persistent engine allocates %.1f times per cycle, want 0", allocs)
	}
}
