package serve

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// The scheduler property tests run the real replica against an
// in-memory fake chip: a single "core" whose clock advances by a
// synthetic latency per collective, with non-blocking issues completing
// at issue-time + latency (so lanes genuinely overlap). The properties
// are the satellite contract: no starvation under weighted fairness,
// batching never reorders a tenant's requests, admission rejects
// exactly when the bound is hit.

type fakePending struct {
	f       *fakeRunner
	readyUs float64
}

func (p *fakePending) Test() bool { return p.f.clock >= p.readyUs }
func (p *fakePending) Wait() {
	if p.f.clock < p.readyUs {
		p.f.clock = p.readyUs
	}
}

type fakeRunner struct {
	clock  float64
	syncUs float64
	latUs  func(op string, lines int) float64
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{
		syncUs: 1,
		latUs: func(op string, lines int) float64 {
			base := 5.0
			if blockOp(op) {
				base = 8
			}
			return base + float64(lines)*0.25
		},
	}
}

func (f *fakeRunner) ID() int            { return 0 }
func (f *fakeRunner) NowUs() float64     { return f.clock }
func (f *fakeRunner) Compute(us float64) { f.clock += us }
func (f *fakeRunner) SyncMaxUs() float64 {
	f.clock += f.syncUs
	return f.clock
}
func (f *fakeRunner) Run(op string, root, addr, scratch, lines int) {
	f.clock += f.latUs(op, lines)
}
func (f *fakeRunner) Issue(op string, root, addr, lines int) Pending {
	return &fakePending{f: f, readyUs: f.clock + f.latUs(op, lines)}
}

// runFake executes a mix on the fake chip and returns the replica and
// board for inspection.
func runFake(t *testing.T, cfg Config, streams []Stream) (*Sched, *Board) {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	if err := ValidateStreams(streams, 1<<20); err != nil {
		t.Fatalf("streams: %v", err)
	}
	l := LayoutFor(cfg, streams, 8)
	b := NewBoard(streams)
	s := Run(newFakeRunner(), cfg, streams, l, b, nil)
	s.sanity()
	return s, b
}

// identicalReqs builds n identical zero-gap requests.
func identicalReqs(op string, lines, n int) []Req {
	reqs := make([]Req, n)
	for i := range reqs {
		reqs[i] = Req{Op: op, Lines: lines}
	}
	return reqs
}

func TestBatchCoalescesCompatibleRequests(t *testing.T) {
	cfg := Config{MaxBatch: 4, MaxBatchLines: 1 << 10, Lanes: 1}
	streams := []Stream{{Tenant: "a", Reqs: identicalReqs(workload.OpAllReduce, 16, 6)}}
	s, b := runFake(t, cfg, streams)
	res := Collect(s, b)
	if res.Completed != 6 || res.Rejected != 0 {
		t.Fatalf("completed %d rejected %d, want 6/0", res.Completed, res.Rejected)
	}
	// All six arrive at time zero; MaxBatch 4 forces batches of 4 then 2.
	if res.Batches != 2 {
		t.Fatalf("batches %d, want 2 (4+2 coalescing)", res.Batches)
	}
	if res.BatchOccupancy != 3 {
		t.Fatalf("occupancy %v, want 3", res.BatchOccupancy)
	}
}

func TestBatchRespectsLineCap(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxBatchLines: 250, Lanes: 1}
	streams := []Stream{{Tenant: "a", Reqs: identicalReqs(workload.OpBcast, 100, 4)}}
	s, b := runFake(t, cfg, streams)
	res := Collect(s, b)
	// 100+100 fits under 250, a third would not: two batches of two.
	if res.Batches != 2 || res.Completed != 4 {
		t.Fatalf("batches %d completed %d, want 2/4", res.Batches, res.Completed)
	}
}

func TestOversizedRequestDispatchesAlone(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxBatchLines: 64, Lanes: 2}
	streams := []Stream{{Tenant: "a", Reqs: []Req{
		{Op: workload.OpAllReduce, Lines: 1000},
		{Op: workload.OpAllReduce, Lines: 8},
	}}}
	s, b := runFake(t, cfg, streams)
	res := Collect(s, b)
	if res.Completed != 2 {
		t.Fatalf("completed %d, want 2 (oversized request must still run)", res.Completed)
	}
	if res.Batches != 2 {
		t.Fatalf("batches %d, want 2 (1000-line head admits no companion)", res.Batches)
	}
}

func TestBatchingNeverMixesIncompatibleRequests(t *testing.T) {
	cfg := Config{MaxBatch: 8, Lanes: 1}
	streams := []Stream{{Tenant: "a", Reqs: []Req{
		{Op: workload.OpBcast, Root: 0, Lines: 4},
		{Op: workload.OpBcast, Root: 1, Lines: 4}, // same op, different root
		{Op: workload.OpReduce, Root: 0, Lines: 4},
	}}}
	s, b := runFake(t, cfg, streams)
	res := Collect(s, b)
	if res.Batches != 3 {
		t.Fatalf("batches %d, want 3 (no two requests are compatible)", res.Batches)
	}
}

// TestAdmissionRejectsExactlyAtBound is the admission property: a burst
// of offered = bound + k simultaneous arrivals admits exactly bound and
// rejects exactly the last k, in stream order.
func TestAdmissionRejectsExactlyAtBound(t *testing.T) {
	const bound, extra = 6, 4
	cfg := Config{QueueBound: bound, MaxBatch: 1, Lanes: 1}
	streams := []Stream{{Tenant: "a", Reqs: identicalReqs(workload.OpAllReduce, 4, bound+extra)}}
	s, b := runFake(t, cfg, streams)
	res := Collect(s, b)
	if res.Admitted != bound || res.Rejected != extra || res.Completed != bound {
		t.Fatalf("admitted/rejected/completed %d/%d/%d, want %d/%d/%d",
			res.Admitted, res.Rejected, res.Completed, bound, extra, bound)
	}
	for i := 0; i < bound+extra; i++ {
		want := "done"
		if i >= bound {
			want = "rejected"
		}
		if got := s.State(i); got != want {
			t.Fatalf("request %d state %q, want %q", i, got, want)
		}
	}
}

// TestAdmissionReadmitsAfterDrain: a queue that fills, drains and fills
// again rejects only while full — the bound is a queue depth, not a
// lifetime cap.
func TestAdmissionReadmitsAfterDrain(t *testing.T) {
	cfg := Config{QueueBound: 2, MaxBatch: 1, Lanes: 1}
	reqs := []Req{
		{Op: workload.OpBcast, Lines: 4},             // t=0
		{Op: workload.OpBcast, Lines: 4},             // t=0
		{Op: workload.OpBcast, Lines: 4, GapUs: 1e6}, // long idle, queue drained
		{Op: workload.OpBcast, Lines: 4},             // t=1e6
	}
	s, b := runFake(t, cfg, []Stream{{Tenant: "a", Reqs: reqs}})
	res := Collect(s, b)
	if res.Rejected != 0 || res.Completed != 4 {
		t.Fatalf("rejected %d completed %d, want 0/4", res.Rejected, res.Completed)
	}
	_ = s
}

// randomStream builds a seeded random stream whose requests mix all six
// operations, sizes and bursty gaps.
func randomStream(rng *rand.Rand, tenant string, weight, n int) Stream {
	ops := workload.Ops()
	s := Stream{Tenant: tenant, Weight: weight, Reqs: make([]Req, n)}
	for i := range s.Reqs {
		op := ops[rng.Intn(len(ops))]
		r := Req{Op: op, Lines: 1 + rng.Intn(64)}
		if rootedOp(op) {
			r.Root = rng.Intn(8)
		}
		if rng.Intn(3) > 0 { // bursts: two thirds arrive back-to-back
			r.GapUs = rng.Float64() * 40
		}
		s.Reqs[i] = r
	}
	return s
}

// TestNoStarvationWeighted is the starvation property: under weighted
// fairness with wildly skewed weights and an unbounded queue, every
// admitted request completes — heavy tenants cannot shut light ones
// out.
func TestNoStarvationWeighted(t *testing.T) {
	weights := []int{32, 16, 4, 1, 1}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var streams []Stream
		for i, w := range weights {
			streams = append(streams, randomStream(rng, "t"+string(rune('a'+i)), w, 40))
		}
		cfg := Config{Policy: PolicyWeighted, QueueBound: MaxQueueBound, MaxBatch: 4, Lanes: 3}
		s, b := runFake(t, cfg, streams)
		res := Collect(s, b)
		if res.Rejected != 0 {
			t.Fatalf("seed %d: %d rejected under an unbounded queue", seed, res.Rejected)
		}
		if res.Completed != res.Offered {
			t.Fatalf("seed %d: %d of %d offered requests completed — starvation",
				seed, res.Completed, res.Offered)
		}
		for id := range b.DoneUs {
			if s.State(id) != "done" {
				t.Fatalf("seed %d: request %d ended %q, want done", seed, id, s.State(id))
			}
		}
	}
}

// TestWeightedSharesFollowWeights checks stride scheduling's share
// property on a saturated incompatible-op mix: dispatch counts track
// the 3:1 weights while both tenants stay backlogged.
func TestWeightedSharesFollowWeights(t *testing.T) {
	streams := []Stream{
		{Tenant: "heavy", Weight: 3, Reqs: identicalReqs(workload.OpBcast, 4, 90)},
		{Tenant: "light", Weight: 1, Reqs: identicalReqs(workload.OpReduce, 4, 90)},
	}
	cfg := Config{Policy: PolicyWeighted, QueueBound: MaxQueueBound, MaxBatch: 1, Lanes: 1}
	s, b := runFake(t, cfg, streams)
	res := Collect(s, b)
	if res.Completed != 180 {
		t.Fatalf("completed %d, want 180", res.Completed)
	}
	// While both queues were backlogged, heavy should have dispatched
	// ~3x light. Compare completion clocks of the tenants' 30th
	// requests: heavy's should come far earlier.
	h30 := b.DoneUs[s.Offset(0)+29]
	l30 := b.DoneUs[s.Offset(1)+29]
	if h30 >= l30 {
		t.Fatalf("heavy's 30th done at %v, light's at %v — weights not honored", h30, l30)
	}
}

// TestBatchingPreservesTenantOrder is the ordering property: across
// policies, lane counts and seeds, a tenant's requests complete in
// stream order (batches only ever take queue prefixes).
func TestBatchingPreservesTenantOrder(t *testing.T) {
	for _, policy := range []string{PolicyRoundRobin, PolicyWeighted} {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed * 100))
			streams := []Stream{
				randomStream(rng, "a", 4, 50),
				randomStream(rng, "b", 2, 50),
				randomStream(rng, "c", 1, 50),
			}
			cfg := Config{Policy: policy, QueueBound: 16, MaxBatch: 6, Lanes: 3}
			s, _ := runFake(t, cfg, streams)
			last := map[int32]int32{}
			for _, id := range s.DoneOrder() {
				tn := s.tenantOf[id]
				if prev, ok := last[tn]; ok && id <= prev {
					t.Fatalf("policy %s seed %d: tenant %d completed request %d after %d — reordered",
						policy, seed, tn, id, prev)
				}
				last[tn] = id
			}
		}
	}
}

// TestDeterministicReplicas: two runs of the same mix produce
// byte-identical fingerprints, and every request ends in a final state.
func TestDeterministicReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	streams := []Stream{
		randomStream(rng, "a", 3, 60),
		randomStream(rng, "b", 1, 60),
	}
	cfg := Config{Policy: PolicyWeighted, QueueBound: 8, MaxBatch: 4, Lanes: 2}
	s1, b1 := runFake(t, cfg, streams)
	s2, b2 := runFake(t, cfg, streams)
	f1, f2 := Collect(s1, b1).Fingerprint(), Collect(s2, b2).Fingerprint()
	if f1 != f2 {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", f1, f2)
	}
}

func TestLayoutSizing(t *testing.T) {
	cfg := Config{MaxBatchLines: 64, Lanes: 2}
	streams := []Stream{{Tenant: "a", Reqs: []Req{
		{Op: workload.OpAllReduce, Lines: 100}, // linear: max(100, 64) = 100
		{Op: workload.OpAllGather, Lines: 8},   // block: 8*max(8,64) = 512
	}}}
	l := LayoutFor(cfg, streams, 8)
	if want := 512 * 32; l.SlotBytes != want {
		t.Fatalf("slot bytes %d, want %d", l.SlotBytes, want)
	}
	if l.Slots != 4 {
		t.Fatalf("slots %d, want lanes+2 = 4", l.Slots)
	}
	if l.CtrlAddr != 5*l.SlotBytes {
		t.Fatalf("ctrl addr %d, want %d", l.CtrlAddr, 5*l.SlotBytes)
	}
	if l.TotalBytes() != 5*l.SlotBytes+32 {
		t.Fatalf("total %d, want %d", l.TotalBytes(), 5*l.SlotBytes+32)
	}
}

func TestConfigAndStreamValidation(t *testing.T) {
	bad := []Config{
		{Policy: "fifo"},
		{QueueBound: -1},
		{MaxBatch: MaxMaxBatch + 1},
		{MaxBatchLines: workload.MaxLines + 1},
		{Lanes: MaxLanes + 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d (%+v) validated", i, c)
		}
	}
	ok := Req{Op: workload.OpBcast, Lines: 1}
	badStreams := [][]Stream{
		nil,
		{{Tenant: "", Reqs: []Req{ok}}},
		{{Tenant: "a b", Reqs: []Req{ok}}},
		{{Tenant: "a", Reqs: []Req{ok}}, {Tenant: "a", Reqs: []Req{ok}}},
		{{Tenant: "a", Weight: -1, Reqs: []Req{ok}}},
		{{Tenant: "a"}},
		{{Tenant: "a", Reqs: []Req{{Op: "alltoall", Lines: 1}}}},
		{{Tenant: "a", Reqs: []Req{{Op: workload.OpBcast, Root: 8, Lines: 1}}}},
	}
	for i, ss := range badStreams {
		if err := ValidateStreams(ss, 8); err == nil {
			t.Fatalf("streams %d validated", i)
		}
	}
	good := []Stream{{Tenant: "a-1.b_c", Weight: 5, Reqs: []Req{ok}}}
	if err := ValidateStreams(good, 8); err != nil {
		t.Fatalf("good streams rejected: %v", err)
	}
}
