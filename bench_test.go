// One testing.B benchmark per paper artifact (tables AND figures), as the
// repository's top-level regeneration entry points. Each benchmark runs
// the corresponding harness experiment and reports the headline simulated
// metric via b.ReportMetric, so `go test -bench=. -benchmem` both
// exercises the full pipeline and prints the numbers to compare against
// the paper. The printable tables themselves come from `go run
// ./cmd/ocbench <experiment>`.
package ocbcast_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/scc"
)

func cfg() scc.Config { return scc.DefaultConfig() }

// BenchmarkFig3PutGet regenerates Figure 3: put/get completion times vs
// distance, simulator vs model. Reported metric: simulated completion of
// a 16-CL MPB->MPB get at the maximum distance (9 hops), in µs.
func BenchmarkFig3PutGet(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		tbl := harness.Fig3(cfg())
		// Last MPB get row at d=9, 16 CL: find it.
		for _, r := range tbl.Rows {
			if r[0] == "get mpb->mpb" && r[1] == "16" && r[2] == "9" {
				last = parseF(b, r[3])
			}
		}
	}
	b.ReportMetric(last, "µs/get16CL@9hops")
}

// BenchmarkTable1Calibration regenerates Table 1 by microbenchmark +
// least-squares fit. Reported metric: fitted Lhop in µs (paper: 0.005).
func BenchmarkTable1Calibration(b *testing.B) {
	var lhop float64
	for i := 0; i < b.N; i++ {
		tbl, err := harness.Table1(cfg())
		if err != nil {
			b.Fatal(err)
		}
		lhop = parseF(b, tbl.Rows[0][2])
	}
	b.ReportMetric(lhop*1000, "ns-Lhop-fitted")
}

// BenchmarkFig4Contention regenerates Figure 4. Reported metrics: average
// 128-CL get completion with 47 concurrent accessors (µs) and the
// slowest/fastest spread (paper: >2x).
func BenchmarkFig4Contention(b *testing.B) {
	var avg47, spread float64
	for i := 0; i < b.N; i++ {
		tbl := harness.Fig4(cfg(), 25)
		for _, r := range tbl.Rows {
			if r[0] == "get 128CL" && r[1] == "47" {
				avg47 = parseF(b, r[2])
				spread = parseF(b, r[5])
			}
		}
	}
	b.ReportMetric(avg47, "µs-avg-get@47cores")
	b.ReportMetric(spread, "slow/fast")
}

// BenchmarkFig6Model regenerates Figure 6 from the analytical model.
// Reported metric: modeled OC-Bcast k=7 latency at 96 CL (µs).
func BenchmarkFig6Model(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		mdl := model.New(cfg().Params)
		v = mdl.OCBcastLatency(model.DefaultBcastParams(), 96, 7).Microseconds()
		_ = harness.Fig6(cfg())
	}
	b.ReportMetric(v, "µs-model-k7@96CL")
}

// BenchmarkTable2Model regenerates Table 2. Reported metrics: modeled
// peak throughputs in MB/s (paper: ~34-36 vs 13.38).
func BenchmarkTable2Model(b *testing.B) {
	var oc, sag float64
	for i := 0; i < b.N; i++ {
		mdl := model.New(cfg().Params)
		bp := model.DefaultBcastParams()
		oc = model.LinesPerSecToMBps(mdl.OCBcastThroughput(bp))
		sag = model.LinesPerSecToMBps(mdl.SAGThroughput(bp))
		_ = harness.Table2(cfg())
	}
	b.ReportMetric(oc, "MB/s-ocbcast")
	b.ReportMetric(sag, "MB/s-scatterAG")
}

// BenchmarkFig8aLatency regenerates Figure 8a's headline point: measured
// 1-CL broadcast latency for OC-Bcast k=7 vs binomial (paper: 16.6 vs
// 21.6 µs, 27% improvement).
func BenchmarkFig8aLatency(b *testing.B) {
	var oc, bin float64
	for i := 0; i < b.N; i++ {
		oc = harness.MeanLatency(cfg(), harness.Alg{Name: "oc", K: 7}, scc.NumCores, 1, 3)
		bin = harness.MeanLatency(cfg(), harness.Alg{Name: "binomial"}, scc.NumCores, 1, 3)
	}
	b.ReportMetric(oc, "µs-ocbcast-1CL")
	b.ReportMetric(bin, "µs-binomial-1CL")
	b.ReportMetric(100*(bin-oc)/bin, "%improvement")
}

// BenchmarkFig8bThroughput regenerates Figure 8b's peak: measured
// throughput at 8192 CL for OC-Bcast k=7 vs scatter-allgather (paper:
// almost 3x).
func BenchmarkFig8bThroughput(b *testing.B) {
	var oc, sag float64
	for i := 0; i < b.N; i++ {
		const lines = 8192
		oc = harness.ThroughputMBps(lines,
			harness.MeanLatency(cfg(), harness.Alg{Name: "oc", K: 7}, scc.NumCores, lines, 2))
		sag = harness.ThroughputMBps(lines,
			harness.MeanLatency(cfg(), harness.Alg{Name: "sag"}, scc.NumCores, lines, 2))
	}
	b.ReportMetric(oc, "MB/s-ocbcast")
	b.ReportMetric(sag, "MB/s-scatterAG")
	b.ReportMetric(oc/sag, "ratio")
}

// BenchmarkMeshStress regenerates the §3.3 mesh-stress experiment with
// the detailed NoC model. Reported metric: loaded/unloaded latency ratio
// (paper: 1.0 — the mesh is not a bottleneck).
func BenchmarkMeshStress(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tbl := harness.MeshStress(cfg(), 10)
		free := parseF(b, tbl.Rows[0][1])
		loaded := parseF(b, tbl.Rows[1][1])
		ratio = loaded / free
	}
	b.ReportMetric(ratio, "loaded/free")
}

// BenchmarkAblationNotification measures the binary-vs-sequential
// notification design choice at k=47 (1-CL broadcast).
func BenchmarkAblationNotification(b *testing.B) {
	var bin, seq float64
	for i := 0; i < b.N; i++ {
		tbl := harness.AblationNotification(cfg(), 1)
		last := len(tbl.Rows) - 1
		bin = parseF(b, tbl.Rows[last][1])
		seq = parseF(b, tbl.Rows[last][2])
	}
	b.ReportMetric(bin, "µs-binary-k47")
	b.ReportMetric(seq, "µs-sequential-k47")
}

// BenchmarkAblationBuffering measures double vs single buffering.
func BenchmarkAblationBuffering(b *testing.B) {
	var double, single float64
	for i := 0; i < b.N; i++ {
		tbl := harness.AblationBuffering(cfg(), 1)
		double = parseF(b, tbl.Rows[0][1])
		single = parseF(b, tbl.Rows[1][1])
	}
	b.ReportMetric(double, "µs-double@192CL")
	b.ReportMetric(single, "µs-single@192CL")
}

// BenchmarkFigAllReduce measures the §7-extension headline: one-sided
// OC-AllReduce vs the two-sided Reduce+Bcast composition at 8 KiB on 48
// cores (fig-allreduce's acceptance point).
func BenchmarkFigAllReduce(b *testing.B) {
	var oc, two float64
	for i := 0; i < b.N; i++ {
		const lines = 256 // 8 KiB
		oc = harness.MeanAllReduce(cfg(), harness.VariantOC, 7, scc.NumCores, lines, 2)
		two = harness.MeanAllReduce(cfg(), harness.VariantTwoSided, 7, scc.NumCores, lines, 2)
	}
	b.ReportMetric(oc, "µs-oc-allreduce-8KiB")
	b.ReportMetric(two, "µs-twosided-8KiB")
	b.ReportMetric(two/oc, "speedup")
}

// BenchmarkOCReduceModel reports the closed-form OC-Reduce prediction the
// simulation is cross-validated against (within 15%).
func BenchmarkOCReduceModel(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		mdl := model.New(cfg().Params)
		v = mdl.OCReduceLatency(model.DefaultReduceParams(), 256, 7).Microseconds()
	}
	b.ReportMetric(v, "µs-model-reduce-k7@8KiB")
}

// BenchmarkEngineThroughput measures raw simulator speed: simulated
// broadcast events per wall second for a 96-CL OC-Bcast on 48 cores.
// Run with -benchmem: the hot-path contract is under 100 allocs/op —
// pooled chips with persistent goroutines recycle every per-run
// structure, so steady state allocates only the handful of result and
// bookkeeping values outside the simulation proper (budget pinned at
// 500 by TestAllocsPerBroadcastBudget and the CI perf gate).
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.MeanLatency(cfg(), harness.Alg{Name: "oc", K: 7}, scc.NumCores, 96, 1)
	}
}

// BenchmarkSweepParallel measures the parallel experiment harness: a
// Fig8a-style (size × algorithm) grid sharded across GOMAXPROCS workers
// by MeanLatencyGrid, one independent chip per cell. Compare against
// GOMAXPROCS=1 for the sharding speedup; simulated outputs are identical
// either way (see harness.TestGoldenSequentialVsParallel).
func BenchmarkSweepParallel(b *testing.B) {
	cells := harness.DefaultSweepCells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.MeanLatencyGrid(cfg(), scc.NumCores, cells)
	}
	b.ReportMetric(float64(len(cells)), "cells")
}

func parseF(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		b.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}
