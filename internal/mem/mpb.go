// Package mem implements the SCC's storage components as seen by the
// simulator: per-core Message Passing Buffers (MPB) with cache-line
// atomicity and a FIFO port contention model, per-core private off-chip
// memory, and a simple L1-style cache model for private-memory reads.
//
// Writes carry an effective virtual timestamp: a read at time t observes
// exactly the writes whose effective time is ≤ t. Because the engine
// executes operations in nondecreasing global time order, pending writes
// can be folded into the backing store lazily.
package mem

import (
	"fmt"

	"repro/internal/scc"
	"repro/internal/sim"
)

// MPB is one core's 8 KB message-passing buffer. All accesses are at
// cache-line granularity; the SCC guarantees read/write atomicity per
// 32 B line (paper §5.1), which the simulator enforces structurally by
// only moving whole lines.
type MPB struct {
	owner int // core id
	eng   *sim.Engine
	data  []byte

	// pending holds not-yet-visible writes per line, ordered by
	// effective time (writes are issued in nondecreasing time order).
	pending map[int][]pendingWrite

	// Port is the FIFO server modelling the MPB's access port, the
	// contention point measured in Figure 4.
	Port *sim.Resource

	// lastAccess tracks when each remote core last touched this MPB's
	// port, for the active-accessor count that drives the §3.3
	// beyond-the-knee contention penalty.
	lastAccess map[int]sim.Time
	// accessLog keeps each core's access timestamps within the trailing
	// window, to measure how *sustained* its pressure on the port is.
	accessLog map[int][]sim.Time
}

type pendingWrite struct {
	eff  sim.Time
	data [scc.CacheLine]byte
}

// NewMPB creates core owner's MPB backed by engine e.
func NewMPB(e *sim.Engine, owner int, readSvc sim.Duration) *MPB {
	return &MPB{
		owner:      owner,
		eng:        e,
		data:       make([]byte, scc.MPBBytesPerCore),
		pending:    make(map[int][]pendingWrite),
		Port:       sim.NewResource(fmt.Sprintf("mpb[%d]", owner), readSvc),
		lastAccess: make(map[int]sim.Time),
		accessLog:  make(map[int][]sim.Time),
	}
}

// NoteAccess records that core touched this MPB's port at time t and
// returns how many times it did so within the trailing window (including
// this access) — the sustained-pressure measure behind the contention
// penalty: a single burst (one OC-Bcast chunk) is not sustained; Figure
// 4's back-to-back loops are.
func (m *MPB) NoteAccess(core int, t sim.Time, window sim.Duration) int {
	m.lastAccess[core] = t
	log := m.accessLog[core]
	i := 0
	for i < len(log) && log[i]+window < t {
		i++
	}
	log = append(log[i:], t)
	m.accessLog[core] = log
	return len(log)
}

// ActiveAccessors counts distinct cores that touched the port within the
// trailing window — the concurrency measure behind the paper's ~24-core
// contention knee.
func (m *MPB) ActiveAccessors(t sim.Time, window sim.Duration) int {
	n := 0
	for core, last := range m.lastAccess {
		if last+window >= t {
			n++
		} else {
			delete(m.lastAccess, core)
		}
	}
	return n
}

// Owner reports the core id owning this MPB.
func (m *MPB) Owner() int { return m.owner }

// Lines reports the MPB capacity in cache lines.
func (m *MPB) Lines() int { return scc.MPBLinesPerCore }

// watchKey returns the engine watch key for a line of this MPB.
func (m *MPB) watchKey(line int) sim.WatchKey {
	return sim.WatchKey{Space: m.owner, Line: line}
}

func (m *MPB) checkLine(line int) {
	if line < 0 || line >= scc.MPBLinesPerCore {
		panic(fmt.Sprintf("mem: MPB[%d] line %d out of range [0,%d)", m.owner, line, scc.MPBLinesPerCore))
	}
}

// settle folds pending writes with effective time ≤ t into the backing
// store for the given line.
func (m *MPB) settle(line int, t sim.Time) {
	pw := m.pending[line]
	i := 0
	for i < len(pw) && pw[i].eff <= t {
		copy(m.data[line*scc.CacheLine:], pw[i].data[:])
		i++
	}
	if i == 0 {
		return
	}
	if i == len(pw) {
		delete(m.pending, line)
	} else {
		m.pending[line] = pw[i:]
	}
}

// ReadLine returns the 32-byte content of a line as visible at time t.
// The returned slice is a copy.
func (m *MPB) ReadLine(line int, t sim.Time) []byte {
	m.checkLine(line)
	m.settle(line, t)
	out := make([]byte, scc.CacheLine)
	copy(out, m.data[line*scc.CacheLine:])
	return out
}

// ReadInto copies the line visible at time t into dst (≥32 bytes).
func (m *MPB) ReadInto(dst []byte, line int, t sim.Time) {
	m.checkLine(line)
	m.settle(line, t)
	copy(dst[:scc.CacheLine], m.data[line*scc.CacheLine:])
}

// WriteLine stores 32 bytes into a line with effective time eff and
// signals any process blocked on that line. src must hold ≥32 bytes.
func (m *MPB) WriteLine(line int, src []byte, eff sim.Time) {
	m.checkLine(line)
	var pw pendingWrite
	pw.eff = eff
	copy(pw.data[:], src[:scc.CacheLine])
	m.pending[line] = append(m.pending[line], pw)
	m.eng.Signal(m.watchKey(line), eff)
}

// PeekU64 reads the first 8 bytes of a line as a little-endian uint64 as
// visible at time t, without copying the whole line. Used by flag polls.
func (m *MPB) PeekU64(line int, t sim.Time) uint64 {
	m.checkLine(line)
	m.settle(line, t)
	off := line * scc.CacheLine
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(m.data[off+i])
	}
	return v
}

// peekU64At evaluates what PeekU64 would return at time t WITHOUT
// settling state — used inside wait predicates, which may be evaluated
// while earlier-time reads are still possible. It scans pending writes.
func (m *MPB) peekU64At(line int, t sim.Time) uint64 {
	off := line * scc.CacheLine
	buf := make([]byte, 8)
	copy(buf, m.data[off:off+8])
	for _, pw := range m.pending[line] {
		if pw.eff <= t {
			copy(buf, pw.data[:8])
		}
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// satisfiedAt returns the earliest time ≥ now at which pred holds for the
// line's leading uint64, considering the settled state and pending writes
// in effective-time order. ok is false if no current or pending state
// satisfies pred.
func (m *MPB) satisfiedAt(line int, now sim.Time, pred func(uint64) bool) (sim.Time, bool) {
	if pred(m.peekU64At(line, now)) {
		return now, true
	}
	for _, pw := range m.pending[line] {
		if pw.eff <= now {
			continue // already folded into peekU64At(now)
		}
		if pred(m.peekU64At(line, pw.eff)) {
			return pw.eff, true
		}
	}
	return 0, false
}

// WaitU64 blocks process p until pred holds for the line's leading uint64,
// and returns with p's clock at (no earlier than) the effective time of
// the write that satisfied it. It is the simulator's flag-poll primitive:
// the process sleeps instead of burning virtual time spinning — matching
// the paper's assumption that no time elapses between a flag being set
// and observed, up to the final poll read the caller charges separately.
func (m *MPB) WaitU64(p *sim.Proc, line int, pred func(uint64) bool) {
	m.checkLine(line)
	key := m.watchKey(line)
	for {
		if te, ok := m.satisfiedAt(line, p.Now(), pred); ok {
			p.AdvanceTo(te)
			return
		}
		p.Block(key, func() bool {
			_, ok := m.satisfiedAt(line, p.Now(), pred)
			return ok
		})
	}
}
