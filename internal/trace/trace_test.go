package trace

import (
	"strings"
	"testing"
)

func TestAddAndSum(t *testing.T) {
	a := CoreCounters{MPBReadLines: 1, MemWriteLines: 2, FlagSets: 3, PutOps: 1}
	b := CoreCounters{MPBReadLines: 10, MemReadLines: 5, FlagWaits: 7, GetOps: 2, CacheHitLines: 4}
	a.Add(b)
	if a.MPBReadLines != 11 || a.MemWriteLines != 2 || a.MemReadLines != 5 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.FlagSets != 3 || a.FlagWaits != 7 || a.PutOps != 1 || a.GetOps != 2 || a.CacheHitLines != 4 {
		t.Fatalf("Add wrong: %+v", a)
	}

	total := Sum([]CoreCounters{{MemReadLines: 1}, {MemReadLines: 2, MemWriteLines: 3}})
	if total.MemReadLines != 3 || total.MemWriteLines != 3 {
		t.Fatalf("Sum wrong: %+v", total)
	}
	if total.OffChipLines() != 6 {
		t.Fatalf("OffChipLines = %d, want 6", total.OffChipLines())
	}
}

func TestString(t *testing.T) {
	s := CoreCounters{MPBReadLines: 5, FlagSets: 2}.String()
	for _, want := range []string{"mpbR=5", "flagSet=2", "get=0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
