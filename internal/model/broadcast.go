package model

import (
	"repro/internal/core"
	"repro/internal/scc"
	"repro/internal/sim"
)

// BcastParams configure the broadcast-level model as §5.1 does: average
// distance 1 for both MPB and memory accesses, Moc = 96-line OC-Bcast
// chunks, Mrcce = 251-line RCCE chunks.
type BcastParams struct {
	P     int // number of cores
	DMpb  int // average MPB hop distance (paper: 1)
	DMem  int // average memory-controller distance (paper: 1)
	Moc   int // OC-Bcast chunk size in lines (paper: 96)
	Mrcce int // RCCE payload buffer in lines (paper: 251)

	// Notification models whether flag-propagation and polling costs
	// are included. The paper's simplified Formulas 13–16 omit them,
	// but its Figure 6b discussion relies on them (k = 47's polling
	// penalty); the complete formulas live in the paper's full version,
	// so this reconstruction is what regenerates Figure 6's curves.
	Notification bool
}

// DefaultBcastParams matches §5.1.
func DefaultBcastParams() BcastParams {
	return BcastParams{P: scc.NumCores, DMpb: 1, DMem: 1, Moc: 96, Mrcce: 251, Notification: true}
}

// flagSet is the cost of setting a remote flag: a 1-line put with a
// register source (no read leg).
func (m Model) flagSet(d int) sim.Duration { return m.P.OMpbPut + m.CMpbW(d) }

// flagPoll is the cost of the final successful poll of a local flag.
func (m Model) flagPoll() sim.Duration { return m.CMpbR(1) }

// notifyDepth is the number of sequential flag sets before the j-th child
// (0-based) of a sibling group hears about a chunk through the binary
// notification tree: the parent sets children 0 and 1, child j sets 2j+2
// and 2j+3 (paper Figure 5). Equivalently floor(log2(j+2)).
func notifyDepth(j int) int {
	d := 0
	for n := j + 2; n > 1; n >>= 1 {
		d++
	}
	return d
}

// lastNotifyDepth is the worst-case notification depth within a sibling
// group of g children.
func lastNotifyDepth(g int) int {
	if g <= 0 {
		return 0
	}
	return notifyDepth(g - 1)
}

// OCBcastLatency predicts the OC-Bcast latency for a message of n cache
// lines with fan-out k (Formula 13, extended with chunk pipelining for
// n > Moc and — when bp.Notification — notification/polling costs).
func (m Model) OCBcastLatency(bp BcastParams, n, k int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	depth := core.TreeDepth(bp.P, k)
	nchunks := (n + bp.Moc - 1) / bp.Moc
	first := n
	if first > bp.Moc {
		first = bp.Moc
	}

	// Critical path of the first chunk (Formula 13): root's mem->MPB
	// put, one MPB->MPB get per tree level, and the final MPB->mem get.
	lat := m.CMemPut(first, bp.DMem, 1) // root stages chunk in own MPB
	perLevelNotify := sim.Duration(0)
	if bp.Notification {
		perLevelNotify = sim.Duration(lastNotifyDepth(min(k, bp.P-1))) * m.flagSet(bp.DMpb)
		perLevelNotify += m.flagPoll()
	}
	lat += sim.Duration(depth) * (perLevelNotify + m.CMpbGet(first, bp.DMpb))
	lat += m.CMemGet(first, bp.DMpb, bp.DMem)

	// Subsequent chunks drip out of the double-buffered pipeline every
	// per-node step (Formula 15's denominator).
	if nchunks > 1 {
		step := m.CMpbGet(bp.Moc, bp.DMpb) + m.CMemGet(bp.Moc, bp.DMpb, bp.DMem)
		lat += sim.Duration(nchunks-1) * step
	}

	// The root cannot return before polling its k done flags (§5.2.3's
	// k = 47 penalty). The last done flag arrives roughly after the
	// first level's get; root polls k flags after that.
	if bp.Notification {
		rootReturn := m.CMemPut(first, bp.DMem, 1) +
			perLevelNotify + m.CMpbGet(first, bp.DMpb) + // level-1 children consume
			sim.Duration(nchunks-1)*(m.CMpbGet(bp.Moc, bp.DMpb)+m.CMemGet(bp.Moc, bp.DMpb, bp.DMem)) +
			m.flagSet(bp.DMpb) + // child's done-flag set
			sim.Duration(min(k, bp.P-1))*m.flagPoll() // root polls k flags
		if rootReturn > lat {
			lat = rootReturn
		}
	}
	return lat
}

// BinomialLatency predicts the RCCE_comm binomial-tree broadcast latency
// (Formula 14): ceil(log2 P) levels, each a full-message send/receive,
// with the sender's source reads served from L1 (zero cost) because it
// just received the message.
func (m Model) BinomialLatency(bp BcastParams, n int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	levels := ceilLog2(bp.P)
	nchunks := (n + bp.Mrcce - 1) / bp.Mrcce

	// Root's first staging reads the payload from off-chip memory once.
	lat := sim.Duration(n) * m.CMemR(bp.DMem)
	// Per level: stage m lines into own MPB (L1-hot source) and the
	// receiver's get to private memory.
	perLevel := m.P.OMemPut + sim.Duration(n)*m.CMpbW(1) +
		m.P.OMemGet + sim.Duration(n)*m.CMpbR(bp.DMpb) + sim.Duration(n)*m.CMemW(bp.DMem)
	if bp.Notification {
		// Two flag handshakes per chunk per level (sent + ready).
		perLevel += sim.Duration(nchunks) * (2*m.flagSet(bp.DMpb) + 2*m.flagPoll())
	}
	lat += sim.Duration(levels) * perLevel
	return lat
}

// OCBcastThroughput is Formula 15: the pipelined peak throughput in cache
// lines per second, limited by the slowest per-node step; independent of
// k for pipeline-filling messages.
func (m Model) OCBcastThroughput(bp BcastParams) float64 {
	step := m.CMpbGet(bp.Moc, bp.DMpb) + m.CMemGet(bp.Moc, bp.DMpb, bp.DMem)
	return float64(bp.Moc) / step.Microseconds() * 1e6
}

// SAGThroughput is Formula 16: scatter-allgather throughput in cache
// lines per second for a message of P·Moc lines. The scatter phase costs
// (P−1) root send/receives; the allgather's 2(P−2) transfers benefit from
// L1-resident resends (the paper's cache-aware refinement, giving the
// (2P−3)(Moc·Cmpb_w + Cmem_get) term).
func (m Model) SAGThroughput(bp BcastParams) float64 {
	p := bp.P
	moc := bp.Moc
	total := float64(p * moc)
	denom := sim.Duration(p)*(m.CMemPut(moc, bp.DMem, 1)+m.CMemGet(moc, bp.DMpb, bp.DMem)) +
		sim.Duration(2*p-3)*(sim.Duration(moc)*m.CMpbW(1)+m.CMemGet(moc, bp.DMpb, bp.DMem))
	return total / denom.Microseconds() * 1e6
}

// LinesPerSecToMBps converts cache lines per second to MB/s (1 MB = 10^6
// bytes, as the paper's Table 2 uses).
func LinesPerSecToMBps(lps float64) float64 {
	return lps * float64(scc.CacheLine) / 1e6
}

func ceilLog2(p int) int {
	l, v := 0, 1
	for v < p {
		v <<= 1
		l++
	}
	return l
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
