package serve

import (
	"fmt"

	"repro/internal/scc"
)

// The scheduler replica. Every core of the chip runs Run with the same
// configuration, streams and layout; the replicas make identical
// decisions because every input to a decision is common knowledge —
// stream data, replica state, and the per-round epoch agreed on through
// Runner.SyncMaxUs. The per-core Runner is the only simulator-facing
// surface; everything else is plain deterministic Go.

// Runner is the per-core surface a scheduler replica drives. The public
// API adapts *ocbcast.Core to it (System.Serve), the harness adapts a
// pooled chip's algsel environment, and the property tests use an
// in-memory fake.
type Runner interface {
	// ID reports the core id (replica 0 is the one whose counters the
	// caller collects).
	ID() int
	// NowUs reports the core's virtual clock in microseconds.
	NowUs() float64
	// Compute advances the core's clock by us microseconds of local
	// work.
	Compute(us float64)
	// SyncMaxUs runs a chip-wide max-reduction of the cores' clocks and
	// returns the agreed maximum in microseconds — the round epoch. It
	// is the runtime's only source of time for decisions: a real
	// control-plane collective, so it costs simulated time and returns
	// the same value on every core.
	SyncMaxUs() float64
	// Run executes one batch as a blocking collective: op at byte
	// address addr, `lines` cache lines (the per-core block for the
	// block ops), scratch same-size staging the two-sided reductions may
	// clobber.
	Run(op string, root, addr, scratch, lines int)
	// Issue starts one batch on the non-blocking progress-engine path.
	Issue(op string, root, addr, lines int) Pending
}

// Pending is an in-flight non-blocking batch (occoll.Request satisfies
// it).
type Pending interface {
	// Test advances the protocol without blocking; true means complete.
	Test() bool
	// Wait blocks until the batch's collective completes.
	Wait()
}

// Hooks are optional per-event callbacks for observability. The public
// adapter installs them on core 0 only, emitting internal/obs spans;
// nil hooks (or nil fields) cost one comparison per site.
type Hooks struct {
	// Epoch fires after each round's clock sync with the agreed epoch
	// and the post-admission backlog.
	Epoch func(round int, epochUs float64, queued int)
	// Queue fires per tenant after each round's admission with the
	// tenant's queue depth.
	Queue func(tenant, depth int)
	// BatchBegin fires when batch seq (1-based dispatch order) starts;
	// BatchEnd fires when its collective completes.
	BatchBegin func(seq int, op string, members, lines int)
	BatchEnd   func(seq int)
}

// Layout fixes where the runtime stages batch payloads in private
// memory. Batches rotate through Slots equal regions — a region is
// never reused while its batch could still be in flight — followed by
// one scratch region (the two-sided reductions' staging) and one
// control cache line (the SyncMaxUs clock word).
type Layout struct {
	// N is the chip's core count the layout was computed for.
	N int
	// SlotBytes is one batch region: the largest payload any batch can
	// address (block ops hold N per-core blocks), cache-line aligned.
	SlotBytes int
	// Slots is the number of rotating batch regions.
	Slots int
	// ScratchAddr is the shared scratch region's base; it is SlotBytes
	// long. CtrlAddr is the control line's base.
	ScratchAddr, CtrlAddr int
}

// LayoutFor computes the serving layout of a tenant mix on an n-core
// chip. Region sizing is worst-case over what batching can build: a
// batch's summed payload is bounded by max(largest single request,
// MaxBatchLines) — an oversized request dispatches alone but still
// needs its region — and the block operations amplify by the chip's
// core count. Private memory is demand-paged, so an over-generous
// region costs address space, not bytes.
func LayoutFor(cfg Config, streams []Stream, n int) Layout {
	linear, block := 0, 0
	for _, s := range streams {
		for _, r := range s.Reqs {
			if blockOp(r.Op) {
				if r.Lines > block {
					block = r.Lines
				}
			} else if r.Lines > linear {
				linear = r.Lines
			}
		}
	}
	batchCap := cfg.maxBatchLines()
	region := 1
	if linear > 0 {
		region = max(linear, batchCap)
	}
	if block > 0 {
		region = max(region, n*max(block, batchCap))
	}
	slot := region * scc.CacheLine
	// At most `lanes` batches are in flight at once; one spare region
	// keeps a full rotation of margin.
	slots := cfg.lanes() + 2
	return Layout{
		N:           n,
		SlotBytes:   slot,
		Slots:       slots,
		ScratchAddr: slots * slot,
		CtrlAddr:    (slots + 1) * slot,
	}
}

// SlotAddr reports the base address of the i-th dispatched batch's
// payload region.
func (l Layout) SlotAddr(i int) int { return (i % l.Slots) * l.SlotBytes }

// TotalBytes reports the layout's private-memory address span.
func (l Layout) TotalBytes() int { return (l.Slots+1)*l.SlotBytes + scc.CacheLine }

// Board is the cross-core completion record: DoneUs[id] is the latest
// completion clock any core observed for global request id (the
// chip-wide completion time). Cores write it with a read-modify-write
// max; the engine serializes cores with happens-before on every switch,
// so the shared writes are race-free and order-independent.
type Board struct {
	// DoneUs is indexed by global request id (streams concatenated in
	// order); zero means not completed.
	DoneUs []float64
}

// NewBoard sizes a board for a tenant mix.
func NewBoard(streams []Stream) *Board {
	total := 0
	for _, s := range streams {
		total += len(s.Reqs)
	}
	return &Board{DoneUs: make([]float64, total)}
}

// Per-request lifecycle states.
const (
	stPending  uint8 = iota // not yet arrived/admitted
	stQueued                // admitted, waiting in its tenant queue
	stRejected              // bounced off a full queue (final)
	stDone                  // collective completed
)

// strideUnit is the stride numerator: a weight-w tenant's pass advances
// by strideUnit/w per dispatched request, so it is at least 1 even at
// MaxWeight.
const strideUnit = MaxWeight

// idleSlackUs is the small overshoot idle rounds advance past the next
// arrival, guaranteeing the following epoch admits it even after
// float-to-picosecond truncation.
const idleSlackUs = 1e-3

// ring is a fixed-capacity FIFO of global request ids.
type ring struct {
	buf     []int32
	head, n int
}

func (r *ring) push(v int32) {
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring) peek() int32 { return r.buf[r.head] }

func (r *ring) pop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// batch is one coalesced collective: compatible requests whose payloads
// concatenate into a single op of `lines` total cache lines.
type batch struct {
	op          string
	root        int
	lines       int
	seq         int
	members     []int32
	memberLines int
}

// Sched is one core's scheduler replica. Its exported surface is what
// the caller collects after the run (Collect); all scheduling state is
// private. Replicas on different cores hold byte-identical state at
// every round boundary.
type Sched struct {
	cfg     Config
	streams []Stream
	l       Layout

	// Static stream geometry: global id offsets, absolute arrival
	// clocks (prefix sums of GapUs), tenant of each global id.
	off      []int
	arrival  [][]float64
	tenantOf []int32

	// Admission and queueing state.
	next  []int // per tenant: first stream index not yet arrived
	q     []ring
	nq    int // total queued across tenants
	state []uint8

	// Fairness state. Round-robin keeps a rotating pointer; the
	// weighted policy is stride scheduling: each tenant carries a
	// virtual pass, the backlogged tenant with the least pass wins the
	// next batch slot, and every request it dispatches advances its pass
	// by strideUnit/weight — so dispatch shares converge to the weights,
	// and a waiting tenant's pass is eventually the minimum (everyone
	// else's grows with every grant), which rules out starvation. vtime
	// tracks the winning pass so a newly backlogged tenant rejoins at
	// the current virtual time instead of monopolizing with a stale one.
	pass   []int64
	vtime  int64
	served []bool
	rrPos  int

	// Reusable per-round dispatch scratch.
	batches []batch
	pend    []Pending

	// Counters (see Collect).
	rounds, idleRounds  int
	nbatches, batchReqs int
	dispatched          int
	admitted, rejected  []int
	starved             []int
	tenantReqs          []int
	doneOrder           []int32
	endClockUs          float64
}

// newSched builds a replica. Every allocation the runtime ever makes
// happens here; the serving loop itself is allocation-free (the
// regression suite pins it).
func newSched(cfg Config, streams []Stream, l Layout) *Sched {
	T := len(streams)
	s := &Sched{
		cfg:        cfg,
		streams:    streams,
		l:          l,
		off:        make([]int, T),
		arrival:    make([][]float64, T),
		next:       make([]int, T),
		q:          make([]ring, T),
		pass:       make([]int64, T),
		served:     make([]bool, T),
		batches:    make([]batch, cfg.lanes()),
		pend:       make([]Pending, cfg.lanes()),
		admitted:   make([]int, T),
		rejected:   make([]int, T),
		starved:    make([]int, T),
		tenantReqs: make([]int, T),
	}
	total := 0
	for t, st := range streams {
		s.off[t] = total
		total += len(st.Reqs)
	}
	s.state = make([]uint8, total)
	s.tenantOf = make([]int32, total)
	s.doneOrder = make([]int32, 0, total)
	bound := cfg.queueBound()
	for t, st := range streams {
		a := make([]float64, len(st.Reqs))
		clock := 0.0
		for i, r := range st.Reqs {
			clock += r.GapUs
			a[i] = clock
		}
		s.arrival[t] = a
		s.q[t] = ring{buf: make([]int32, min(bound, len(st.Reqs)))}
		for i := range st.Reqs {
			s.tenantOf[s.off[t]+i] = int32(t)
		}
	}
	mb := cfg.maxBatch()
	for i := range s.batches {
		s.batches[i].members = make([]int32, 0, mb)
	}
	return s
}

// Run executes the serving loop on this core. Every core of the chip
// must call it with the same configuration, streams, layout and board
// (SPMD, like the collectives themselves); hooks may differ per core
// (the public adapter traces on core 0 only). The loop per round:
//
//  1. agree on the epoch — a max-allreduce of the cores' clocks;
//  2. admit every arrival at or before the epoch, tenant by tenant in
//     stream order, rejecting onto the floor when a queue is full;
//  3. if nothing is queued: exit when the streams are exhausted, else
//     advance every core to just past the next arrival and retry;
//  4. select up to Lanes batches by the fairness policy, coalescing
//     compatible requests up to the batch caps;
//  5. dispatch — one batch runs blocking, several issue non-blocking
//     over distinct progress-engine lanes and are waited in issue
//     order — and record completion clocks on the board.
//
// The caller collects metrics from any one replica plus the shared
// board (Collect); replica 0 is the convention.
func Run(r Runner, cfg Config, streams []Stream, l Layout, b *Board, h *Hooks) *Sched {
	s := newSched(cfg, streams, l)
	for {
		epoch := r.SyncMaxUs()
		s.admit(epoch)
		if h != nil {
			if h.Epoch != nil {
				h.Epoch(s.rounds+s.idleRounds, epoch, s.nq)
			}
			if h.Queue != nil {
				for t := range s.q {
					h.Queue(t, s.q[t].n)
				}
			}
		}
		if s.nq == 0 {
			next, ok := s.nextArrival()
			if !ok {
				break
			}
			s.idleRounds++
			if d := next + idleSlackUs - r.NowUs(); d > 0 {
				r.Compute(d)
			}
			continue
		}
		nb := s.selectBatches()
		s.dispatch(r, b, h, nb)
		s.rounds++
	}
	s.endClockUs = r.NowUs()
	return s
}

// admit moves every arrival at or before the epoch into its tenant's
// queue, bouncing arrivals that find the queue full.
func (s *Sched) admit(epoch float64) {
	bound := s.cfg.queueBound()
	for t := range s.streams {
		reqs := s.streams[t].Reqs
		for s.next[t] < len(reqs) && s.arrival[t][s.next[t]] <= epoch {
			id := int32(s.off[t] + s.next[t])
			if s.q[t].n < bound {
				if s.q[t].n == 0 && s.pass[t] < s.vtime {
					// Rejoining the backlog: start at the current
					// virtual time, keeping idle history worthless.
					s.pass[t] = s.vtime
				}
				s.q[t].push(id)
				s.state[id] = stQueued
				s.admitted[t]++
				s.nq++
			} else {
				s.state[id] = stRejected
				s.rejected[t]++
			}
			s.next[t]++
		}
	}
}

// nextArrival reports the earliest not-yet-arrived request's clock.
func (s *Sched) nextArrival() (float64, bool) {
	found := false
	var min float64
	for t := range s.streams {
		if s.next[t] < len(s.streams[t].Reqs) {
			if a := s.arrival[t][s.next[t]]; !found || a < min {
				min, found = a, true
			}
		}
	}
	return min, found
}

// selectBatches fills up to Lanes batches for this round and returns
// how many. Tenants left backlogged without contributing a single
// request to any batch count a starved round.
func (s *Sched) selectBatches() int {
	for t := range s.served {
		s.served[t] = false
	}
	lanes := s.cfg.lanes()
	nb := 0
	for nb < lanes && s.nq > 0 {
		s.buildBatch(nb, s.pickTenant())
		nb++
	}
	for t := range s.streams {
		if s.q[t].n > 0 && !s.served[t] {
			s.starved[t]++
		}
	}
	return nb
}

// pickTenant chooses the tenant whose queue head seeds the next batch.
func (s *Sched) pickTenant() int {
	T := len(s.streams)
	if s.cfg.policy() == PolicyWeighted {
		best, bestPass := -1, int64(0)
		for t := 0; t < T; t++ {
			if s.q[t].n > 0 && (best < 0 || s.pass[t] < bestPass) {
				best, bestPass = t, s.pass[t]
			}
		}
		if s.vtime < bestPass {
			s.vtime = bestPass
		}
		return best
	}
	for i := 0; i < T; i++ {
		t := (s.rrPos + i) % T
		if s.q[t].n > 0 {
			s.rrPos = (t + 1) % T
			return t
		}
	}
	panic("serve: pickTenant with empty queues")
}

// take dequeues tenant t's head into the current batch's bookkeeping.
func (s *Sched) take(t int) int32 {
	id := s.q[t].pop()
	s.nq--
	s.served[t] = true
	s.tenantReqs[t]++
	if s.cfg.policy() == PolicyWeighted {
		s.pass[t] += strideUnit / int64(s.streams[t].weight())
	}
	return id
}

// reqOf resolves a global id back to its request.
func (s *Sched) reqOf(id int32) *Req {
	t := s.tenantOf[id]
	return &s.streams[t].Reqs[int(id)-s.off[t]]
}

// buildBatch seeds batch bi from tenant t's queue head and extends it
// with compatible requests: first the rest of t's queue prefix, then
// the other tenants' queue prefixes in rotation order. Only queue
// *prefixes* ever join — a batch never reaches past a tenant's
// incompatible head, so requests within a tenant are dispatched in
// stream order, always (a property test holds the scheduler to it).
// Compatible means the same operation (and root, for rooted ops);
// payloads concatenate, so the batch runs as one collective of the
// summed line count.
func (s *Sched) buildBatch(bi, t int) {
	bt := &s.batches[bi]
	head := s.take(t)
	r0 := s.reqOf(head)
	bt.op, bt.root, bt.lines = r0.Op, r0.Root, r0.Lines
	bt.members = append(bt.members[:0], head)
	maxReqs := s.cfg.maxBatch()
	maxLines := s.cfg.maxBatchLines()
	T := len(s.streams)
	for i := 0; i < T && len(bt.members) < maxReqs; i++ {
		u := (t + i) % T
		for s.q[u].n > 0 && len(bt.members) < maxReqs {
			cand := s.reqOf(s.q[u].peek())
			if cand.Op != bt.op || (rootedOp(bt.op) && cand.Root != bt.root) ||
				bt.lines+cand.Lines > maxLines {
				break
			}
			bt.members = append(bt.members, s.take(u))
			bt.lines += cand.Lines
		}
	}
}

// dispatch executes this round's batches. A single batch runs the
// blocking collective — full algorithm selection, including the
// two-sided stacks. Multiple batches issue the non-blocking one-sided
// twins over distinct progress-engine lanes and are waited in issue
// order, the one completion order every core shares.
func (s *Sched) dispatch(r Runner, b *Board, h *Hooks, nb int) {
	blocking := nb == 1
	for i := 0; i < nb; i++ {
		bt := &s.batches[i]
		addr := s.l.SlotAddr(s.dispatched)
		s.dispatched++
		bt.seq = s.dispatched
		if h != nil && h.BatchBegin != nil {
			h.BatchBegin(bt.seq, bt.op, len(bt.members), bt.lines)
		}
		if blocking {
			r.Run(bt.op, bt.root, addr, s.l.ScratchAddr, bt.lines)
			s.complete(r, b, h, bt)
		} else {
			s.pend[i] = r.Issue(bt.op, bt.root, addr, bt.lines)
		}
	}
	if !blocking {
		for i := 0; i < nb; i++ {
			s.pend[i].Wait()
			s.pend[i] = nil
			s.complete(r, b, h, &s.batches[i])
		}
	}
	s.nbatches += nb
}

// complete records a batch's completion: the board keeps the max
// completion clock any core observed per request (the chip-wide
// completion time — order-independent, so the cross-core writes are
// deterministic).
func (s *Sched) complete(r Runner, b *Board, h *Hooks, bt *batch) {
	now := r.NowUs()
	for _, id := range bt.members {
		if now > b.DoneUs[id] {
			b.DoneUs[id] = now
		}
		s.state[id] = stDone
		s.doneOrder = append(s.doneOrder, id)
	}
	s.batchReqs += len(bt.members)
	if h != nil && h.BatchEnd != nil {
		h.BatchEnd(bt.seq)
	}
}

// EndUs reports this replica's clock when the serving loop exited (the
// public adapter anchors end-of-run observability events at it).
func (s *Sched) EndUs() float64 { return s.endClockUs }

// DoneOrder returns the global request ids in this replica's completion
// order (test hook: within a tenant the order must match stream order).
func (s *Sched) DoneOrder() []int32 { return s.doneOrder }

// State reports a request's final lifecycle state as a string (test
// hook): "pending", "queued", "rejected" or "done".
func (s *Sched) State(id int) string {
	switch s.state[id] {
	case stQueued:
		return "queued"
	case stRejected:
		return "rejected"
	case stDone:
		return "done"
	default:
		return "pending"
	}
}

// Offset reports tenant t's global id offset.
func (s *Sched) Offset(t int) int { return s.off[t] }

// sanity panics if internal invariants broke (debug hook for tests).
func (s *Sched) sanity() {
	if s.nq != 0 {
		panic(fmt.Sprintf("serve: %d requests still queued after run", s.nq))
	}
}
