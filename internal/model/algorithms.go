package model

import (
	"repro/internal/collective"
	"repro/internal/sim"
)

// Closed-form latency predictions for the collective algorithms the
// registry (internal/algsel) can choose between. The broadcast and
// one-sided reduction formulas live in broadcast.go and reduce.go; this
// file adds the two-sided compositions and the reduce-scatter/ring
// family, in the same style: critical-path arithmetic over the §3
// per-operation costs. The tuner only needs these predictions to *rank*
// algorithms per (topology, message size); the fig-crossover experiment
// measures how well the ranking holds up against simulation (the
// auto-vs-best regret).

// OCLaneBcastLatency predicts occoll's lane broadcast (occoll.Bcast /
// IBcast): the OC-Bcast chunk pipeline of Formula 13 plus the lane's
// per-operation entry cost — flag zeroing and the begin barrier — which
// the standalone Broadcaster does not pay. At one cache line the entry
// cost is most of the latency, which is exactly why the tuner must see
// it to rank the lane broadcast against the binomial baseline.
func (m Model) OCLaneBcastLatency(bp BcastParams, n, k int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	return m.occollBegin(bp, k) + m.OCBcastLatency(bp, n, k)
}

// barrier is the cost of one gather-release tree barrier over the
// ceil(log2 P) levels of the RCCE port's binary barrier tree.
func (m Model) barrier(bp BcastParams) sim.Duration {
	return sim.Duration(2*ceilLog2(bp.P)) * (m.flagSet(bp.DMpb) + m.flagPoll())
}

// twoSidedXfer is one RCCE send/receive of n lines on the critical path:
// the sender stages into its own MPB (srcHot selects whether the source
// read is L1-resident), the receiver pulls to private memory, and each
// Mrcce-sized chunk pays the two-flag synchronous handshake.
func (m Model) twoSidedXfer(bp BcastParams, n int, srcHot bool) sim.Duration {
	d := m.P.OMemPut + sim.Duration(n)*m.CMpbW(1) +
		m.P.OMemGet + sim.Duration(n)*m.CMpbR(bp.DMpb) + sim.Duration(n)*m.CMemW(bp.DMem)
	if !srcHot {
		d += sim.Duration(n) * m.CMemR(bp.DMem)
	}
	if bp.Notification {
		nchunks := (n + bp.Mrcce - 1) / bp.Mrcce
		d += sim.Duration(nchunks) * (2*m.flagSet(bp.DMpb) + 2*m.flagPoll())
	}
	return d
}

// BinomialReduceLatency predicts the two-sided binomial-tree reduction
// (collective.Comm.Reduce): ceil(log2 P) levels, each a turn handshake, a
// full-message transfer and one combine pass. Every staging read is
// cache-cold: the combine writes its result with a raw private-memory
// store, which — unlike GetMPBToMem's write-allocate — does not populate
// the L1 model, so no level's source is resident.
func (m Model) BinomialReduceLatency(bp BcastParams, n int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	levels := ceilLog2(bp.P)
	perLevel := m.twoSidedXfer(bp, n, false) + collective.CombineCost(n)
	if bp.Notification {
		perLevel += m.flagSet(bp.DMpb) + m.flagPoll() // the grant/await turn
	}
	return sim.Duration(levels) * perLevel
}

// TwoSidedAllReduceLatency is the binomial Reduce followed by the
// binomial broadcast — the "twosided" allreduce variant.
func (m Model) TwoSidedAllReduceLatency(bp BcastParams, n int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	return m.BinomialReduceLatency(bp, n) + m.BinomialLatency(bp, n)
}

// HybridAllReduceLatency is the binomial Reduce followed by an OC-Bcast
// of the result — the §7 composition (the "hybrid" variant). The two
// phases run different communication graphs, so each takes its own
// parameter set: rp with the binomial exchange distances, bp with the
// k-ary propagation-tree distances.
func (m Model) HybridAllReduceLatency(rp, bp BcastParams, n, k int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	return m.BinomialReduceLatency(rp, n) + m.OCBcastLatency(bp, n, k)
}

// pof2Below reports the largest power of two ≤ p and its log2.
func pof2Below(p int) (pof2, log2 int) {
	pof2 = 1
	for pof2*2 <= p {
		pof2 *= 2
		log2++
	}
	return pof2, log2
}

// RabenseifnerLatency predicts the two-sided reduce-scatter+allgather
// allreduce (collective.Comm.AllReduceRabenseifner): a fold transfer when
// P is not a power of two, log2 P' halving exchanges with combines, log2
// P' doubling exchanges, an unfold transfer, and the inter-step barriers
// the single-channel RCCE port requires. Exchange steps move n/2^i
// lines, so the transferred volume is ~2n rather than ~2n·log2 P — the
// reason the algorithm overtakes the tree compositions at large n.
func (m Model) RabenseifnerLatency(bp BcastParams, n int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	pof2, steps := pof2Below(bp.P)
	var lat sim.Duration
	if bp.P != pof2 {
		// Fold: full-vector send into the even partner plus a combine,
		// and the mirror unfold send of the result at the end. Staging
		// reads are cold (the combine's raw store bypasses the L1 model).
		lat += m.twoSidedXfer(bp, n, false) + collective.CombineCost(n) +
			m.twoSidedXfer(bp, n, false)
	}
	if bp.Notification {
		lat += sim.Duration(2*steps+1) * m.barrier(bp)
	}
	seg := n
	for i := 0; i < steps; i++ {
		seg = (seg + 1) / 2
		// One halving exchange (send + receive of seg lines, both
		// directions partially overlapped through SendRecv) + combine,
		// and the mirror doubling exchange of the same segment size.
		lat += 2*m.twoSidedXfer(bp, seg, false) + collective.CombineCost(seg)
	}
	return lat
}

// OCRingAllGatherLatency predicts the one-sided ring allgather
// (occoll.AllGatherRing): P−1 lockstep steps, each staging one n-line
// block into the core's own MPB and pulling the neighbour's block to its
// final private address, chunked by Moc. bp.DMpb must be the mean
// ring-neighbour distance (RingParamsFor), not the tree distance.
func (m Model) OCRingAllGatherLatency(bp BcastParams, n int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	nchunks := (n + bp.Moc - 1) / bp.Moc
	span := func(ch int) int {
		s := n - ch*bp.Moc
		if s > bp.Moc {
			s = bp.Moc
		}
		return s
	}
	// Per transfer a core stages (put) and pulls (get) sequentially. The
	// staged block was received by last step's get, whose write-allocate
	// leaves it L1-resident — so the put's memory-read leg is free after
	// the first step, which stages the core's own (cold) block.
	var step sim.Duration
	for ch := 0; ch < nchunks; ch++ {
		mm := span(ch)
		step += m.P.OMemPut + sim.Duration(mm)*m.CMpbW(1) + // hot-source put
			m.CMemGet(mm, bp.DMpb, bp.DMem)
		if bp.Notification {
			step += 2*m.flagSet(bp.DMpb) + m.flagPoll()
		}
	}
	lat := m.occollBegin(bp, 1) + sim.Duration(bp.P-1)*step +
		sim.Duration(n)*m.CMemR(bp.DMem) // first step's cold source read
	return lat
}

// OCTreeAllGatherLatency predicts the tree allgather (occoll.AllGather):
// an OC-Gather of every block onto the root — whose serial bottleneck is
// the root pulling P−1 blocks chunk by chunk — followed by an OC-Bcast of
// the concatenated P·n-line result down the same tree.
func (m Model) OCTreeAllGatherLatency(bp BcastParams, n, k int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	nchunks := (n + bp.Moc - 1) / bp.Moc
	span := func(ch int) int {
		s := n - ch*bp.Moc
		if s > bp.Moc {
			s = bp.Moc
		}
		return s
	}
	// Root's serial gather work: per received block, per chunk, a poll,
	// the MPB→memory get, and the consumed ack. Child staging overlaps
	// the root's drain in the pipeline, so the root's side is the step.
	var blockCost sim.Duration
	for ch := 0; ch < nchunks; ch++ {
		mm := span(ch)
		blockCost += m.CMemGet(mm, bp.DMpb, bp.DMem)
		if bp.Notification {
			blockCost += m.flagPoll() + m.flagSet(bp.DMpb)
		}
	}
	// Fill: the deepest leaf's first chunk must ripple up `depth` levels
	// of child staging before the root's steady drain covers it.
	depth := TreeDepth(bp.P, k)
	fill := sim.Duration(depth) * m.CMemPut(span(0), bp.DMem, 1)
	lat := m.occollBegin(bp, k) + fill + sim.Duration(bp.P-1)*blockCost

	// Broadcast of the concatenated result.
	bpAll := bp
	lat += m.OCBcastLatency(bpAll, bp.P*n, k)
	return lat
}

// TwoSidedRingAllGatherLatency predicts the two-sided ring allgather
// (collective.Comm.AllGather): P−1 parity-ordered rounds with fixed
// neighbours. The parity ordering makes each round fully synchronous —
// a core's send and receive serialize (Send blocks until the partner's
// ack), so every round costs two transfers, not one. The block sent in
// round t was received in round t−1, so staging reads are L1-hot.
func (m Model) TwoSidedRingAllGatherLatency(bp BcastParams, n int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	lat := sim.Duration(n) * m.CMemR(bp.DMem) // own block, cache-cold
	return lat + sim.Duration(bp.P-1)*2*m.twoSidedXfer(bp, n, true)
}
