// Package algsel is the collective-algorithm registry and its
// model-driven tuner: the one selection layer that makes the repo's two
// collective stacks — the two-sided RCCE baselines (internal/collective)
// and the one-sided OC family (internal/occoll) — interchangeable
// implementations of six operations (broadcast, reduce, allreduce,
// scatter, gather, allgather) behind one interface.
//
// Every implementation registers an Algorithm: a Run function over a
// per-core Env, an optional non-blocking Issue twin, the tunable
// parameter candidates (fan-out K, pipeline chunk), and an optional
// closed-form latency Model (internal/model). The tuner (tuner.go)
// evaluates the models per topology across message sizes and
// materializes a Plan — a decision table mapping each operation and size
// band to the predicted-fastest algorithm, fan-out and chunk. The public
// API consults the plan when Options.Algorithm is "auto"; named overrides
// and the paper-faithful defaults resolve through the same registry, so
// every future algorithm plugs in by registering itself here.
//
// The paper's crossover result is the motivation: one-sided MPB
// collectives beat two-sided ones only in certain (message size, core
// count) regimes, so a runtime that wants to be fast everywhere must
// pick per call. The fig-crossover harness experiment measures how well
// the plan's picks track the simulated best (the auto-vs-best regret).
package algsel

import (
	"fmt"
	"sort"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/occoll"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Op identifies one collective operation.
type Op string

// The six collective operations the registry covers.
const (
	OpBcast     Op = "bcast"
	OpReduce    Op = "reduce"
	OpAllReduce Op = "allreduce"
	OpScatter   Op = "scatter"
	OpGather    Op = "gather"
	OpAllGather Op = "allgather"
)

// Args are one collective call's arguments, the union across operations:
// ops without a root (allreduce, allgather) ignore Root, one-sided
// algorithms ignore Scratch, and only the reductions use Reduce.
type Args struct {
	Root    int
	Addr    int
	Scratch int
	Lines   int
	Reduce  collective.ReduceOp
}

// Choice is one tunable configuration of an algorithm: the registered
// name plus the fan-out and pipeline chunk the tuner (or a caller)
// selected. Zero K or ChunkLines means "the configured default" — the
// algorithm's substrate keeps its base parameters.
type Choice struct {
	Alg        string
	K          int
	ChunkLines int
}

// String formats a choice like "oc(k=7,chunk=96)".
func (c Choice) String() string {
	s := c.Alg
	switch {
	case c.K > 0 && c.ChunkLines > 0:
		s += fmt.Sprintf("(k=%d,chunk=%d)", c.K, c.ChunkLines)
	case c.K > 0:
		s += fmt.Sprintf("(k=%d)", c.K)
	case c.ChunkLines > 0:
		s += fmt.Sprintf("(chunk=%d)", c.ChunkLines)
	}
	return s
}

// Algorithm is one named implementation of a collective operation.
type Algorithm struct {
	// Op and Name identify the entry; (Op, Name) is unique.
	Op   Op
	Name string
	// OneSided marks implementations built on MPB RMA only (the OC
	// family); false means the two-sided RCCE substrate.
	OneSided bool
	// Run executes the collective on the calling core. Every core of the
	// chip must call it with matching arguments and the same Choice.
	Run func(e *Env, ch Choice, a Args)
	// Issue starts the non-blocking form and returns its request, or is
	// nil when the algorithm has no non-blocking twin (the two-sided
	// substrate blocks by construction).
	Issue func(e *Env, ch Choice, a Args) *occoll.Request
	// Model predicts the latency of the algorithm for `lines` cache
	// lines on the first p cores of topology t, or is nil when the
	// algorithm has no closed form (it is then never auto-selected,
	// only available as a named override).
	Model func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration
	// Ks and Chunks list the candidate fan-outs and pipeline chunk sizes
	// the tuner may pick for this algorithm; empty means the parameter
	// does not apply (Choice keeps it 0).
	Ks     []int
	Chunks []int
}

// registry maps each op to its registered algorithms, kept sorted by
// name so iteration order (and therefore tuner tie-breaking) is
// deterministic.
var registry = map[Op][]*Algorithm{}

// Register adds an algorithm to the registry. It panics on a duplicate
// (Op, Name) or a missing Run — registration is init-time wiring, so
// failing fast is the right behavior.
func Register(a Algorithm) {
	if a.Run == nil {
		panic(fmt.Sprintf("algsel: algorithm %s/%s has no Run", a.Op, a.Name))
	}
	if a.Name == "" {
		panic(fmt.Sprintf("algsel: algorithm for %s has no name", a.Op))
	}
	for _, have := range registry[a.Op] {
		if have.Name == a.Name {
			panic(fmt.Sprintf("algsel: duplicate algorithm %s/%s", a.Op, a.Name))
		}
	}
	alg := a
	registry[a.Op] = append(registry[a.Op], &alg)
	sort.Slice(registry[a.Op], func(i, j int) bool {
		return registry[a.Op][i].Name < registry[a.Op][j].Name
	})
}

// For returns the algorithms registered for an operation, sorted by name.
func For(op Op) []*Algorithm {
	return registry[op]
}

// Lookup finds an algorithm by operation and name.
func Lookup(op Op, name string) (*Algorithm, bool) {
	for _, a := range registry[op] {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Known reports whether any operation registers the given algorithm
// name — what the public API uses to validate Options.Algorithm.
func Known(name string) bool {
	for _, algs := range registry {
		for _, a := range algs {
			if a.Name == name {
				return true
			}
		}
	}
	return false
}

// Ops lists the operations with at least one registered algorithm,
// sorted.
func Ops() []Op {
	out := make([]Op, 0, len(registry))
	for op := range registry {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cfgFor resolves a choice against a base one-sided configuration: K and
// ChunkLines override when set, everything else (double buffering,
// channels) is inherited.
func cfgFor(base core.Config, ch Choice) core.Config {
	cfg := base
	if ch.K > 0 {
		cfg.K = ch.K
	}
	if ch.ChunkLines > 0 {
		cfg.BufLines = ch.ChunkLines
	}
	return cfg
}

// ValidChoice reports whether the choice's one-sided MPB layout fits
// under the base configuration (always true for two-sided algorithms,
// which have no MPB layout of their own).
func ValidChoice(base core.Config, a *Algorithm, ch Choice) bool {
	if !a.OneSided {
		return true
	}
	return occoll.Validate(cfgFor(base, ch)) == nil
}
