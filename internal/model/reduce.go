package model

import (
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Closed-form latency predictions for the one-sided reduction collectives
// of internal/occoll, in the style of §5's broadcast formulas: the
// reduction pipeline is OC-Bcast's chunk pipeline run toward the root,
// with the per-hop MPB->MPB get replaced by a combining get (remote read
// + local accumulator read + local write-back per line) and the root
// draining each fully combined chunk to private memory.

// DefaultReduceParams parameterizes the reduction model. Unlike §5.1's
// broadcast convention (distance 1 everywhere), the defaults use the
// average router distances the rank-rotated k-ary tree actually produces
// on the 6x4 mesh — ~5 hops between tree neighbours' MPBs, 2 hops to the
// nearest memory controller — because the reduction's accuracy target
// (within 15% of simulation) is tighter than Figure 6's qualitative
// curves.
func DefaultReduceParams() BcastParams {
	return BcastParams{P: scc.NumCores, DMpb: 5, DMem: 2, Moc: 96, Mrcce: 251, Notification: true}
}

// CMpbCombine is the combining get of n lines from an MPB at distance
// dSrc into the local MPB (rma.GetMPBCombine): per line one remote read,
// one local accumulator read and one local write-back.
func (m Model) CMpbCombine(n, dSrc int) sim.Duration {
	return m.P.OMpbGet + sim.Duration(n)*(m.CMpbR(dSrc)+m.CMpbR(1)+m.CMpbW(1))
}

// occollBegin is occoll's per-operation entry cost: zeroing the core's
// 2k+2 flag lines plus a gather-release barrier over ceil(log2 P) levels
// each way.
func (m Model) occollBegin(bp BcastParams, k int) sim.Duration {
	begin := sim.Duration(2*k+2) * m.CMpbW(1)
	if bp.Notification {
		begin += sim.Duration(2*ceilLog2(bp.P)) * (m.flagSet(bp.DMpb) + m.flagPoll())
	}
	return begin
}

// reduceChunkCost is an interior node's serial work per chunk of mm
// lines: staging its own contribution into its MPB slot, then folding in
// k children (poll the child's ready flag, combining get, one compute
// pass over the data, ack the child).
func (m Model) reduceChunkCost(bp BcastParams, mm, k int) sim.Duration {
	c := m.CMemPut(mm, bp.DMem, 1)
	perChild := m.CMpbCombine(mm, bp.DMpb) + collective.CombineCost(mm)
	if bp.Notification {
		perChild += m.flagPoll() + m.flagSet(bp.DMpb)
	}
	return c + sim.Duration(k)*perChild
}

// OCReduceLatency predicts the OC-Reduce latency for a message of n
// cache lines with fan-out k. The first chunk pays the full tree depth of
// combining work (the fill); subsequent chunks drip out of the
// double-buffered pipeline at the root's per-chunk rate, the pipeline's
// bottleneck (the root additionally drains each combined chunk to
// private memory).
func (m Model) OCReduceLatency(bp BcastParams, n, k int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	depth := core.TreeDepth(bp.P, k)
	nchunks := (n + bp.Moc - 1) / bp.Moc
	span := func(ch int) int {
		s := n - ch*bp.Moc
		if s > bp.Moc {
			s = bp.Moc
		}
		return s
	}
	first := span(0)

	// Fill: the deepest leaf stages, flags its parent, and the combining
	// work ripples up `depth` levels; the root drains the result.
	lat := m.occollBegin(bp, k) + m.CMemPut(first, bp.DMem, 1)
	if bp.Notification {
		lat += m.flagSet(bp.DMpb)
	}
	perChild := m.CMpbCombine(first, bp.DMpb) + collective.CombineCost(first)
	if bp.Notification {
		perChild += m.flagPoll() + m.flagSet(bp.DMpb)
	}
	lat += sim.Duration(depth*k) * perChild
	lat += m.CMemGet(first, bp.DMpb, bp.DMem)

	// Steady state: one root-chunk step per remaining chunk.
	for ch := 1; ch < nchunks; ch++ {
		lat += m.reduceChunkCost(bp, span(ch), k) + m.CMemGet(span(ch), bp.DMpb, bp.DMem)
	}
	return lat
}

// OCAllReduceLatency predicts OC-AllReduce: OC-Reduce followed by the
// OC-Bcast chunk pipeline down the same tree (leaf-direct, so a leaf's
// per-chunk step is the parent-MPB-to-memory get).
func (m Model) OCAllReduceLatency(bp BcastParams, n, k int) sim.Duration {
	if bp.P == 1 || n <= 0 {
		return 0
	}
	lat := m.OCReduceLatency(bp, n, k)

	depth := core.TreeDepth(bp.P, k)
	nchunks := (n + bp.Moc - 1) / bp.Moc
	span := func(ch int) int {
		s := n - ch*bp.Moc
		if s > bp.Moc {
			s = bp.Moc
		}
		return s
	}
	first := span(0)

	// Broadcast fill: root restages the result, one MPB->MPB get (plus
	// notification) per level, and the final MPB->memory drain.
	lat += m.CMemPut(first, bp.DMem, 1)
	perLevelNotify := sim.Duration(0)
	if bp.Notification {
		perLevelNotify = sim.Duration(lastNotifyDepth(min(k, bp.P-1))) * m.flagSet(bp.DMpb)
		perLevelNotify += m.flagPoll()
	}
	lat += sim.Duration(depth) * (perLevelNotify + m.CMpbGet(first, bp.DMpb))
	lat += m.CMemGet(first, bp.DMpb, bp.DMem)

	// Broadcast steady state: an interior node's per-chunk step.
	for ch := 1; ch < nchunks; ch++ {
		lat += m.CMpbGet(span(ch), bp.DMpb) + m.CMemGet(span(ch), bp.DMpb, bp.DMem)
	}
	return lat
}
