// Replay: run a whole recorded application — a mini data-parallel
// training loop written in the octrace text format — on the simulated
// chip, first under the paper-default algorithm stacks and then under
// model-driven auto-selection, and compare whole-application makespans.
// This is the fig-apps experiment's mechanism in miniature: trace replay
// validates auto-selection on application schedules rather than on
// isolated collective calls.
package main

import (
	"fmt"
	"log"
	"strings"

	ocbcast "repro"
)

// Five training steps: broadcast the model, three gradient allreduces
// with a compute gap each (replayed through the non-blocking progress
// engine, overlapping the gap), then gather metrics to core 0.
const traceText = `octrace v1
# op root lines delta_us compute_us
bcast 0 256 0 0
allreduce 0 128 5 40
allreduce 0 128 5 40
allreduce 0 128 5 40
gather 0 4 5 0
`

func main() {
	trace, err := ocbcast.ParseTrace([]byte(traceText))
	if err != nil {
		log.Fatal(err)
	}

	makespan := func(algorithm string) float64 {
		sys := ocbcast.New(ocbcast.Options{Algorithm: algorithm})
		stats, err := sys.Replay(trace)
		if err != nil {
			log.Fatal(err)
		}
		return stats.MakespanUs
	}

	fmt.Printf("replaying %d records on 48 cores (%s)\n",
		len(trace.Records), strings.Join([]string{"bcast", "3×allreduce", "gather"}, " + "))
	def := makespan("")      // paper-default stacks
	auto := makespan("auto") // model-driven auto-selection
	fmt.Printf("paper-default makespan: %8.2f µs\n", def)
	fmt.Printf("auto-selected makespan: %8.2f µs\n", auto)
	fmt.Printf("auto speedup: %.3fx\n", def/auto)
}
