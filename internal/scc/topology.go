// Package scc models the Intel Single-Chip Cloud Computer's physical
// organization: 48 Pentium P54C cores on 24 tiles arranged in a 6×4 grid,
// a 2D-mesh network-on-chip with deterministic X-Y virtual cut-through
// routing, per-tile Message Passing Buffers (16 KB, split between the
// tile's two cores), and four off-chip memory controllers at the mesh
// corners.
package scc

import "fmt"

// Chip geometry constants (Howard et al., ISSCC 2010; paper §2.1).
const (
	MeshWidth    = 6 // tiles per row, x ∈ [0,6)
	MeshHeight   = 4 // tiles per column, y ∈ [0,4)
	NumTiles     = MeshWidth * MeshHeight
	CoresPerTile = 2
	NumCores     = NumTiles * CoresPerTile

	// CacheLine is the unit of data transmission on the SCC: one NoC
	// packet carries one 32-byte cache line (paper §2.2).
	CacheLine = 32

	// MPBBytesPerCore is each core's share of its tile's 16 KB MPB.
	MPBBytesPerCore = 8 * 1024
	// MPBLinesPerCore is the MPB size in cache lines (256).
	MPBLinesPerCore = MPBBytesPerCore / CacheLine
)

// Coord is a tile position on the mesh, (0,0) bottom-left to (5,3) as in
// Figure 1 of the paper.
type Coord struct {
	X, Y int
}

// String formats the coordinate like the paper: "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Valid reports whether the coordinate lies on the mesh.
func (c Coord) Valid() bool {
	return c.X >= 0 && c.X < MeshWidth && c.Y >= 0 && c.Y < MeshHeight
}

// TileID converts a coordinate to a tile id in row-major order.
func (c Coord) TileID() int { return c.Y*MeshWidth + c.X }

// TileCoord converts a tile id (0..23) to its mesh coordinate.
func TileCoord(tile int) Coord {
	if tile < 0 || tile >= NumTiles {
		panic(fmt.Sprintf("scc: tile id %d out of range [0,%d)", tile, NumTiles))
	}
	return Coord{X: tile % MeshWidth, Y: tile / MeshWidth}
}

// CoreTile reports the tile a core sits on. Cores are numbered so that
// cores 2t and 2t+1 share tile t, matching sccLinux's enumeration.
func CoreTile(core int) int {
	if core < 0 || core >= NumCores {
		panic(fmt.Sprintf("scc: core id %d out of range [0,%d)", core, NumCores))
	}
	return core / CoresPerTile
}

// CoreCoord reports the mesh coordinate of a core's tile.
func CoreCoord(core int) Coord { return TileCoord(CoreTile(core)) }

// MemoryControllers are the mesh positions of the four DDR3 controllers.
// They attach to the router at the listed tile (chip edges: tiles (0,0),
// (5,0), (0,2) and (5,2), per Figure 1).
var MemoryControllers = [4]Coord{
	{X: 0, Y: 0},
	{X: 5, Y: 0},
	{X: 0, Y: 2},
	{X: 5, Y: 2},
}

// ControllerFor reports which memory controller serves a core under the
// standard LUT configuration: the chip is split into four quadrants and
// each quadrant uses its nearest controller.
func ControllerFor(core int) Coord {
	c := CoreCoord(core)
	i := 0
	if c.X >= MeshWidth/2 {
		i = 1
	}
	if c.Y >= MeshHeight/2 {
		i += 2
	}
	return MemoryControllers[i]
}

// HopDistance is the number of routers a packet traverses from the source
// tile to the destination tile under X-Y routing: the packet enters the
// source tile's router, moves along X, then along Y. This is the model
// parameter d of the paper. A core accessing its own tile's MPB still
// goes through the local router, so the minimum distance is 1
// (paper §2.2: direct local access is discouraged due to a hardware bug).
func HopDistance(src, dst Coord) int {
	d := abs(src.X-dst.X) + abs(src.Y-dst.Y) + 1
	return d
}

// CoreDistance is the hop distance between two cores' tiles.
func CoreDistance(a, b int) int {
	return HopDistance(CoreCoord(a), CoreCoord(b))
}

// MemDistance is the hop distance from a core to its memory controller.
func MemDistance(core int) int {
	return HopDistance(CoreCoord(core), ControllerFor(core))
}

// Link identifies a directed mesh link between two adjacent routers.
type Link struct {
	From, To Coord
}

// String formats the link as "(x,y)->(x,y)".
func (l Link) String() string { return l.From.String() + "->" + l.To.String() }

// XYPath returns the ordered list of directed links a packet traverses
// from src to dst under X-Y routing (X first, then Y). The path is empty
// when src == dst (local router only).
func XYPath(src, dst Coord) []Link {
	if !src.Valid() || !dst.Valid() {
		panic(fmt.Sprintf("scc: XYPath with off-mesh coordinate %v -> %v", src, dst))
	}
	var path []Link
	cur := src
	for cur.X != dst.X {
		next := cur
		if dst.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		path = append(path, Link{From: cur, To: next})
		cur = next
	}
	for cur.Y != dst.Y {
		next := cur
		if dst.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		path = append(path, Link{From: cur, To: next})
		cur = next
	}
	return path
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
