package calibrate

import (
	"strings"
	"testing"

	"repro/internal/algsel"
	"repro/internal/core"
	"repro/internal/scc"
)

func TestFindCrossover(t *testing.T) {
	// B already at or below A at size 1.
	if got := findCrossover(func(int) (float64, float64) { return 2, 1 }, 64); got != 1 {
		t.Fatalf("crossover = %d, want 1", got)
	}
	// B overtakes A at exactly 17: a = 100, b = 270 − 10n.
	g := func(lines int) (float64, float64) { return 100, 270 - 10*float64(lines) }
	if got := findCrossover(g, 1000); got != 17 {
		t.Fatalf("crossover = %d, want 17", got)
	}
	// Never crosses within the bound.
	if got := findCrossover(func(int) (float64, float64) { return 1, 2 }, 64); got != -1 {
		t.Fatalf("crossover = %d, want -1", got)
	}
	if s := (Crossover{Op: algsel.OpAllReduce, A: "a", B: "b", MaxLines: 64, Lines: -1}).String(); !strings.Contains(s, "never") {
		t.Errorf("never-crossover string %q", s)
	}
}

func TestPredictedCrossoverThresholds(t *testing.T) {
	base := core.DefaultConfig()
	topo := scc.SCC()
	// Rabenseifner overtakes the hybrid composition in the low tens of
	// lines on the 48-core chip (the fig-crossover sweep shows hybrid
	// winning at 4 lines and rabenseifner at 16).
	x, err := PredictedCrossover(scc.Table1(), topo, scc.NumCores, base,
		algsel.OpAllReduce, "hybrid", "rabenseifner", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if x.Lines < 5 || x.Lines > 16 {
		t.Errorf("hybrid->rabenseifner crossover at %d lines, want within (4, 16]", x.Lines)
	}
	if !strings.Contains(x.String(), "overtakes") {
		t.Errorf("crossover string %q", x)
	}
	// Beyond the crossover the ranking is strict: at 4096 lines the deep
	// one-sided tree must already have overtaken the hybrid.
	ocX, err := PredictedCrossover(scc.Table1(), topo, scc.NumCores, base,
		algsel.OpAllReduce, "hybrid", "oc", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if ocX.Lines < 0 || ocX.Lines > 4096 {
		t.Errorf("hybrid->oc crossover %v, want within the table", ocX)
	}
}

func TestPredictedCrossoverErrors(t *testing.T) {
	base := core.DefaultConfig()
	if _, err := PredictedCrossover(scc.Table1(), scc.SCC(), 48, base,
		algsel.OpAllReduce, "hybrid", "no-such-algorithm", 64); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// sag has no model.
	if _, err := PredictedCrossover(scc.Table1(), scc.SCC(), 48, base,
		algsel.OpBcast, "sag", "binomial", 64); err == nil {
		t.Error("model-less algorithm accepted")
	}
	if _, _, err := ValidateCrossover(scc.DefaultConfig(), base,
		algsel.OpAllReduce, "hybrid", "rabenseifner", 64, 0.5); err == nil {
		t.Error("factor < 1 accepted")
	}
}

// TestValidateCrossoverAgainstSimulation is the fit target: the model's
// hybrid→rabenseifner threshold must land within 2x of the simulator's.
// Kept to a modest maxLines so the bisection's simulations stay cheap.
func TestValidateCrossoverAgainstSimulation(t *testing.T) {
	cfg := scc.DefaultConfig()
	base := core.DefaultConfig()
	pred, meas, err := ValidateCrossover(cfg, base, algsel.OpAllReduce, "hybrid", "rabenseifner", 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Lines < 2 {
		t.Errorf("measured crossover %v suspiciously small", meas)
	}
	t.Logf("predicted %v; measured %v", pred, meas)
}

// TestValidateCrossoverBounds drives the remaining agreement branches
// with bounds derived from the actual thresholds, so the test tracks
// model refinements instead of hard-coding them: below both thresholds
// the validators agree on "never"; a bound separating the two thresholds
// must be reported as a disagreement.
func TestValidateCrossoverBounds(t *testing.T) {
	cfg := scc.DefaultConfig()
	base := core.DefaultConfig()
	pred, meas, err := ValidateCrossover(cfg, base, algsel.OpAllReduce, "hybrid", "rabenseifner", 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := pred.Lines, meas.Lines
	if lo > hi {
		lo, hi = hi, lo
	}
	if _, _, err := ValidateCrossover(cfg, base, algsel.OpAllReduce, "hybrid", "rabenseifner", lo-1, 2); err != nil {
		t.Errorf("below both thresholds: %v", err)
	}
	if lo != hi {
		if _, _, err := ValidateCrossover(cfg, base, algsel.OpAllReduce, "hybrid", "rabenseifner", hi-1, 2); err == nil {
			t.Error("bound between the thresholds not reported as disagreement")
		}
	}
	if _, _, err := ValidateCrossover(cfg, base, algsel.OpAllReduce, "hybrid", "nope", 64, 2); err == nil {
		t.Error("unknown pair accepted")
	}
}

// TestFitThenPredictCrossover closes the round trip the package exists
// for: fit the Table 1 parameters from simulated microbenchmarks, then
// predict the crossover thresholds from the *fitted* parameters — they
// must match the thresholds predicted from the configured truth, because
// the fit recovers the parameters almost exactly.
func TestFitThenPredictCrossover(t *testing.T) {
	samples := Microbench(scc.DefaultConfig(), []int{1, 2, 4, 8, 16, 32})
	fit, err := FitParams(samples)
	if err != nil {
		t.Fatal(err)
	}
	base := core.DefaultConfig()
	topo := scc.SCC()
	for _, pair := range [][2]string{{"hybrid", "rabenseifner"}, {"rabenseifner", "oc"}} {
		truth, err := PredictedCrossover(scc.Table1(), topo, scc.NumCores, base,
			algsel.OpAllReduce, pair[0], pair[1], algsel.MaxTuneLines)
		if err != nil {
			t.Fatal(err)
		}
		fitted, err := PredictedCrossover(fit.Params, topo, scc.NumCores, base,
			algsel.OpAllReduce, pair[0], pair[1], algsel.MaxTuneLines)
		if err != nil {
			t.Fatal(err)
		}
		if truth.Lines != fitted.Lines {
			t.Errorf("%s->%s: truth-params crossover %d lines, fitted-params %d",
				pair[0], pair[1], truth.Lines, fitted.Lines)
		}
	}
}
