package workload

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The octrace text format, one collective call per line:
//
//	trace   = header line*
//	header  = "octrace v1" NL
//	line    = blank | comment | record
//	comment = "#" any* NL
//	record  = op SP root SP lines SP delta SP compute NL
//	op      = "bcast" | "reduce" | "allreduce" | "scatter" | "gather" | "allgather"
//	root    = decimal integer       (0 for unrooted ops)
//	lines   = decimal integer       (payload in 32-byte cache lines, >= 1)
//	delta   = decimal float         (issue-time delta in µs, >= 0)
//	compute = decimal float         (overlappable compute gap in µs, >= 0)
//
// Fields are separated by any run of spaces or tabs. Floats round-trip
// exactly: Format emits the shortest representation that parses back to
// the identical float64. Parse is strict — unknown ops, missing or extra
// fields, out-of-range values and a missing header are all errors that
// name the offending line. A parsed trace is always a valid one.

// formatHeader is the required first non-blank, non-comment line.
const formatHeader = "octrace v1"

// Parse reads an octrace text stream. Errors carry the 1-based line
// number of the offending input line.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	t := &Trace{}
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawHeader {
			if line != formatHeader {
				return nil, fmt.Errorf("workload: line %d: missing %q header (got %q)", lineNo, formatHeader, truncate(line))
			}
			sawHeader = true
			continue
		}
		rec, err := parseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: line %d: %w", lineNo+1, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("workload: empty input: missing %q header", formatHeader)
	}
	if len(t.Records) == 0 {
		return nil, fmt.Errorf("workload: line %d: trace has no records", lineNo)
	}
	return t, nil
}

// ParseBytes parses an octrace document held in memory.
func ParseBytes(data []byte) (*Trace, error) {
	return Parse(bytes.NewReader(data))
}

// parseRecord parses one record line (already trimmed, non-empty).
func parseRecord(line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) != 5 {
		return Record{}, fmt.Errorf("want 5 fields (op root lines delta compute), got %d", len(f))
	}
	rec := Record{Op: f[0]}
	if !ValidOp(rec.Op) {
		return Record{}, fmt.Errorf("unknown op %q", truncate(rec.Op))
	}
	var err error
	if rec.Root, err = parseInt("root", f[1], 0, MaxRoot); err != nil {
		return Record{}, err
	}
	if rec.Lines, err = parseInt("lines", f[2], 1, MaxLines); err != nil {
		return Record{}, err
	}
	if rec.DeltaUs, err = parseGap("delta", f[3]); err != nil {
		return Record{}, err
	}
	if rec.ComputeUs, err = parseGap("compute", f[4]); err != nil {
		return Record{}, err
	}
	// parse bounds mirror Validate exactly, so the invariant holds by
	// construction; keep the belt-and-braces check cheap and explicit.
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// parseInt parses a bounded decimal integer field.
func parseInt(name, s string, lo, hi int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not a decimal integer", name, truncate(s))
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%s %d out of range [%d, %d]", name, v, lo, hi)
	}
	return v, nil
}

// parseGap parses a bounded non-negative float field.
func parseGap(name, s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not a number", name, truncate(s))
	}
	if err := validGap(name, v); err != nil {
		return 0, err
	}
	return v, nil
}

// truncate bounds untrusted input echoed into error messages.
func truncate(s string) string {
	if len(s) > 32 {
		return s[:32] + "..."
	}
	return s
}

// Format serializes the trace in canonical octrace text: header, one
// record per line, floats in shortest-exact form. Parse(Format(t)) yields
// a trace with identical records, and Format is a fixed point — canonical
// text re-serializes byte-identically.
func (t *Trace) Format() []byte {
	var b bytes.Buffer
	b.Grow(len(formatHeader) + 1 + 32*len(t.Records))
	b.WriteString(formatHeader)
	b.WriteByte('\n')
	for _, r := range t.Records {
		b.WriteString(r.Op)
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(r.Root))
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(r.Lines))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(r.DeltaUs, 'g', -1, 64))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(r.ComputeUs, 'g', -1, 64))
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// WriteTo serializes the trace to w in canonical octrace text.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(t.Format())
	return int64(n), err
}

// String renders the canonical octrace text (fmt.Stringer).
func (t *Trace) String() string { return string(t.Format()) }
