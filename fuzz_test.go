package ocbcast_test

import (
	"bytes"
	"testing"

	ocbcast "repro"
)

// FuzzCollectivePayload round-trips fuzz-derived payloads through
// ScatterOC followed by a non-blocking IGatherOC: the root's scattered
// blocks must land intact on every core, and gathering them back must
// reconstruct the root's original region bit-for-bit. The fuzzer also
// drives the chip geometry knobs (core count, fan-out, chunk size), so it
// explores pipeline shapes the fixed tests don't.
func FuzzCollectivePayload(f *testing.F) {
	f.Add([]byte("0123456789abcdefghijklmnopqrstuv"), uint8(4), uint8(3), uint8(7))
	f.Add([]byte{0xff}, uint8(0), uint8(0), uint8(0))
	f.Add([]byte(nil), uint8(5), uint8(6), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, linesB, coresB, kB uint8) {
		lines := 1 + int(linesB)%6
		n := 2 + int(coresB)%7
		k := 1 + int(kB)%7
		chunk := []int{2, 3, 96}[int(linesB>>4)%3]
		root := int(coresB>>4) % n

		blockBytes := lines * ocbcast.CacheLineBytes
		region := make([]byte, n*blockBytes)
		for i := range region {
			if len(data) > 0 {
				region[i] = data[i%len(data)]
			}
		}

		sys := ocbcast.New(ocbcast.Options{Cores: n, K: k, ChunkLines: chunk})
		sys.WritePrivate(root, 0, region)
		sys.Run(func(c *ocbcast.Core) {
			c.ScatterOC(root, 0, lines)
			r := c.IGatherOC(root, 0, lines)
			for !r.Test() {
				c.Compute(0.3)
			}
		})

		// Every core holds its own block after the scatter (the gather
		// does not disturb it), and the root's region is reconstructed.
		for i := 0; i < n; i++ {
			got := sys.ReadPrivate(i, i*blockBytes, blockBytes)
			want := region[i*blockBytes : (i+1)*blockBytes]
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d k=%d chunk=%d root=%d lines=%d: core %d block corrupted", n, k, chunk, root, lines, i)
			}
		}
		if got := sys.ReadPrivate(root, 0, n*blockBytes); !bytes.Equal(got, region) {
			t.Fatalf("n=%d k=%d chunk=%d root=%d lines=%d: root region not reconstructed", n, k, chunk, root, lines)
		}
	})
}
