package occoll

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// mustPanic asserts fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		var msg string
		switch v := r.(type) {
		case string:
			msg = v
		case error:
			msg = v.Error()
		default:
			t.Fatalf("panic of unexpected type %T: %v", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

// TestNonBlockingWaitImmediatelyIdentical issues each non-blocking
// collective and Waits immediately, asserting per-core completion times
// and buffer contents are identical to the blocking twin — the progress
// engine's headline contract.
func TestNonBlockingWaitImmediatelyIdentical(t *testing.T) {
	const (
		n     = 16
		lines = 11
		root  = 3
	)
	cfg := Config{K: 3, BufLines: 4, DoubleBuffer: true}
	nbytes := lines * scc.CacheLine

	type runner func(x *Collectives)
	ops := []struct {
		name     string
		blocking runner
		nonblock runner
	}{
		{"Bcast",
			func(x *Collectives) { x.Bcast(root, 0, lines) },
			func(x *Collectives) { x.IBcast(root, 0, lines).Wait() }},
		{"Reduce",
			func(x *Collectives) { x.Reduce(root, 0, lines, collective.SumInt64) },
			func(x *Collectives) { x.IReduce(root, 0, lines, collective.SumInt64).Wait() }},
		{"AllReduce",
			func(x *Collectives) { x.AllReduce(0, lines, collective.MaxInt64) },
			func(x *Collectives) { x.IAllReduce(0, lines, collective.MaxInt64).Wait() }},
		{"Scatter",
			func(x *Collectives) { x.Scatter(root, 0, lines) },
			func(x *Collectives) { x.IScatter(root, 0, lines).Wait() }},
		{"Gather",
			func(x *Collectives) { x.Gather(root, 0, lines) },
			func(x *Collectives) { x.IGather(root, 0, lines).Wait() }},
		{"AllGather",
			func(x *Collectives) { x.AllGather(0, lines) },
			func(x *Collectives) { x.IAllGather(0, lines).Wait() }},
	}

	for _, op := range ops {
		op := op
		t.Run(op.name, func(t *testing.T) {
			measure := func(body runner) ([]sim.Time, [][]byte) {
				chip := rma.NewChipN(scc.DefaultConfig(), n)
				fillPayload(chip, n, 0, n*nbytes, 7)
				times := make([]sim.Time, n)
				chip.Run(func(c *rma.Core) {
					x := New(c, rcce.NewPort(c), cfg)
					body(x)
					times[c.ID()] = c.Now()
				})
				bufs := make([][]byte, n)
				for i := range bufs {
					bufs[i] = make([]byte, n*nbytes)
					chip.Private(i).Read(bufs[i], 0, n*nbytes)
				}
				return times, bufs
			}
			bt, bb := measure(op.blocking)
			nt, nb := measure(op.nonblock)
			for i := 0; i < n; i++ {
				if bt[i] != nt[i] {
					t.Errorf("core %d: blocking finished at %v, issue+Wait at %v", i, bt[i], nt[i])
				}
				if !bytes.Equal(bb[i], nb[i]) {
					t.Errorf("core %d: buffer contents differ between blocking and issue+Wait", i)
				}
			}
		})
	}
}

// TestProgressOverlapsCompute interleaves compute slices with Test polls
// during a non-blocking AllReduce and asserts (a) the result is still
// correct and (b) the interleaved run beats collective-then-compute —
// i.e. the engine genuinely fills flag-wait idle time with computation.
func TestProgressOverlapsCompute(t *testing.T) {
	const (
		n       = 16
		lines   = 32
		compute = 150.0 // µs of local work per core
		grain   = 1.0   // µs per slice between polls
	)
	cfg := Config{K: 3, BufLines: 8, DoubleBuffer: true}
	nbytes := lines * scc.CacheLine

	runOnce := func(overlap bool) (sim.Time, *rma.Chip, [][]byte) {
		chip := rma.NewChipN(scc.DefaultConfig(), n)
		payloads := fillPayload(chip, n, 0, nbytes, 3)
		var makespan sim.Time
		chip.Run(func(c *rma.Core) {
			x := New(c, rcce.NewPort(c), cfg)
			if overlap {
				r := x.IAllReduce(0, lines, collective.SumInt64)
				rem, done := compute, false
				for rem > 0 {
					c.Compute(sim.Micros(grain))
					rem -= grain
					if !done && r.Test() {
						done = true
					}
				}
				if !done {
					r.Wait()
				}
			} else {
				x.AllReduce(0, lines, collective.SumInt64)
				c.Compute(sim.Micros(compute))
			}
			x.Finish()
			if c.Now() > makespan {
				makespan = c.Now()
			}
		})
		return makespan, chip, payloads
	}

	blocking, _, _ := runOnce(false)
	overlapped, chip, payloads := runOnce(true)

	ref := sumRef(payloads)
	for core := 0; core < n; core++ {
		got := make([]byte, nbytes)
		chip.Private(core).Read(got, 0, nbytes)
		if !bytes.Equal(got, ref) {
			t.Errorf("core %d: overlapped allreduce result wrong", core)
		}
	}
	if overlapped >= blocking {
		t.Fatalf("no overlap benefit: interleaved makespan %v >= serial %v", overlapped, blocking)
	}
	t.Logf("serial %v, overlapped %v (%.2fx)", blocking, overlapped,
		float64(blocking)/float64(overlapped))
}

// TestMultiLaneOverlappingRequests issues several broadcasts from
// distinct roots on distinct lanes before completing any of them, then
// polls all to completion with Test between compute slices.
func TestMultiLaneOverlappingRequests(t *testing.T) {
	const (
		n     = 12
		lines = 6
	)
	cfg := Config{K: 2, BufLines: 2, DoubleBuffer: true, Channels: 3}
	if err := Validate(cfg); err != nil {
		t.Fatal(err)
	}
	nbytes := lines * scc.CacheLine
	roots := []int{0, 5, 11}
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	payloads := make([][]byte, len(roots))
	for i, r := range roots {
		payloads[i] = make([]byte, nbytes)
		for j := range payloads[i] {
			payloads[i][j] = byte(i*31 + j)
		}
		chip.Private(r).Write(i*nbytes, payloads[i])
	}
	chip.Run(func(c *rma.Core) {
		x := New(c, rcce.NewPort(c), cfg)
		reqs := make([]*Request, len(roots))
		for i, r := range roots {
			reqs[i] = x.IBcast(r, i*nbytes, lines)
			if got := reqs[i].Op(); got != "IBcast" {
				t.Errorf("request op %q, want IBcast", got)
			}
		}
		if got := x.Outstanding(); got > len(roots) {
			t.Errorf("%d outstanding requests, want <= %d", got, len(roots))
		}
		pending := len(roots)
		for pending > 0 {
			c.Compute(sim.Micros(0.5))
			for i, r := range reqs {
				if r != nil && r.Test() {
					reqs[i] = nil
					pending--
				}
			}
			// A protocol can complete during a later request's Test
			// before this sweep re-polls it, so Outstanding may run
			// ahead of (but never behind) the handles observed done.
			if got := x.Outstanding(); got > pending {
				t.Errorf("Outstanding() = %d, want <= %d", got, pending)
			}
		}
		x.Finish()
	})
	for core := 0; core < n; core++ {
		for i := range roots {
			got := make([]byte, nbytes)
			chip.Private(core).Read(got, i*nbytes, nbytes)
			if !bytes.Equal(got, payloads[i]) {
				t.Errorf("core %d: broadcast %d payload corrupted", core, i)
			}
		}
	}
}

// TestLaneExhaustionDrivesPrevious issues more requests than lanes and
// asserts the engine transparently drives the lane's previous request to
// completion, with a later Wait on the auto-driven handle succeeding.
func TestLaneExhaustionDrivesPrevious(t *testing.T) {
	const n, lines = 8, 4
	cfg := Config{K: 2, BufLines: 2, DoubleBuffer: true, Channels: 1}
	nbytes := lines * scc.CacheLine
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	pay := make([]byte, 2*nbytes)
	for j := range pay {
		pay[j] = byte(j * 3)
	}
	chip.Private(0).Write(0, pay)
	chip.Run(func(c *rma.Core) {
		x := New(c, rcce.NewPort(c), cfg)
		r1 := x.IBcast(0, 0, lines)
		r2 := x.IBcast(0, nbytes, lines) // lane reuse: drives r1 internally
		r1.Wait()                        // auto-driven: returns immediately, consumes handle
		r2.Wait()
		x.Finish()
	})
	got := make([]byte, 2*nbytes)
	chip.Private(n-1).Read(got, 0, 2*nbytes)
	if !bytes.Equal(got, pay) {
		t.Fatal("payloads corrupted across lane reuse")
	}
}

// TestRequestLifecyclePanics covers the bugfix-sweep error paths: double
// Wait, Test on a consumed handle, use after the core finished, leaked
// requests, and issue after Finish.
func TestRequestLifecyclePanics(t *testing.T) {
	cfg := Config{K: 2, BufLines: 2, DoubleBuffer: true}

	runBody := func(body func(c *rma.Core, x *Collectives)) {
		chip := rma.NewChipN(scc.DefaultConfig(), 4)
		chip.Run(func(c *rma.Core) {
			body(c, New(c, rcce.NewPort(c), cfg))
		})
	}

	t.Run("double-wait", func(t *testing.T) {
		mustPanic(t, "Wait on completed IBcast request", func() {
			runBody(func(c *rma.Core, x *Collectives) {
				r := x.IBcast(0, 0, 2)
				r.Wait()
				if c.ID() == 0 {
					r.Wait()
				}
			})
		})
	})

	t.Run("test-on-completed", func(t *testing.T) {
		mustPanic(t, "Test on completed IGather request", func() {
			runBody(func(c *rma.Core, x *Collectives) {
				r := x.IGather(0, 0, 2)
				r.Wait()
				if c.ID() == 1 {
					r.Test()
				}
			})
		})
	})

	t.Run("wait-after-test-true", func(t *testing.T) {
		mustPanic(t, "Wait on completed IAllReduce request", func() {
			runBody(func(c *rma.Core, x *Collectives) {
				r := x.IAllReduce(0, 2, collective.SumInt64)
				r.Wait()
				// consume twice via Test on a second op
				r2 := x.IAllReduce(0, 2, collective.SumInt64)
				for !r2.Test() {
					c.Compute(sim.Micros(0.5))
				}
				if c.ID() == 0 {
					r2.Wait()
				}
			})
		})
	})

	t.Run("leaked-request", func(t *testing.T) {
		mustPanic(t, "unconsumed non-blocking request", func() {
			runBody(func(c *rma.Core, x *Collectives) {
				x.IBcast(0, 0, 2)
				x.Finish()
			})
		})
	})

	t.Run("leaked-auto-driven-request", func(t *testing.T) {
		// Lane reuse drives the first request's protocol to completion,
		// but its handle was never consumed: still a contract violation.
		mustPanic(t, "unconsumed non-blocking request(s) [IBcast]", func() {
			runBody(func(c *rma.Core, x *Collectives) {
				x.IBcast(0, 0, 2)
				x.IGather(0, 0, 2).Wait()
				x.Finish()
			})
		})
	})

	t.Run("use-after-finish", func(t *testing.T) {
		var leakedReq *Request
		var leakedX *Collectives
		runBody(func(c *rma.Core, x *Collectives) {
			r := x.IBcast(0, 0, 2)
			r.Wait()
			if c.ID() == 0 {
				leakedReq, leakedX = r, x
			}
			x.Finish()
		})
		mustPanic(t, "after its core finished", func() { leakedReq.Wait() })
		mustPanic(t, "Progress after its core finished", func() { leakedX.Progress() })
		mustPanic(t, "issued after its core finished", func() { leakedX.IBcast(0, 0, 2) })
	})

	t.Run("nil-op", func(t *testing.T) {
		mustPanic(t, "nil reduce op", func() {
			runBody(func(c *rma.Core, x *Collectives) {
				x.IAllReduce(0, 2, nil)
			})
		})
	})
}

// TestValidateChannels pins the multi-lane layout bound: lanes must fit
// below the RCCE-owned lines.
func TestValidateChannels(t *testing.T) {
	if err := Validate(Config{K: 2, BufLines: 2, DoubleBuffer: true, Channels: 4}); err != nil {
		t.Fatalf("4 small lanes should fit: %v", err)
	}
	if err := Validate(Config{K: 7, BufLines: 96, DoubleBuffer: true, Channels: 2}); err == nil {
		t.Fatal("2 paper-sized lanes cannot fit in 256 lines; want error")
	}
}
