package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/scc"
)

// MPMD broadcast — the paper's §7 ongoing work: "extending OC-Bcast to
// handle the MPMD programming model by leveraging parallel inter-core
// interrupts. Many-core operating systems are an interesting use-case."
//
// In the SPMD Bcast, every core calls the collective with matching
// arguments, so receivers already know the root, size and address. Under
// MPMD the receivers are running unrelated work: the root must *activate*
// them. Announce builds an activation tree: each parent writes a one-line
// descriptor (root, address, size, sequence base) into each child's MPB
// and fires an inter-core interrupt; an activated core forwards the
// activation to its own children and then joins the ordinary OC-Bcast
// data path. HandleAnnounce is the receiver half: it blocks (as an OS
// would idle) until interrupted, reads the descriptor, and participates.

// descriptor layout within one 32-byte MPB line.
const descLine = scc.MPBLinesPerCore - 4 // one line below the fence flags

func encodeDescriptor(root, addr, lines int, base uint64) []byte {
	b := make([]byte, scc.CacheLine)
	binary.LittleEndian.PutUint32(b[0:], uint32(root))
	binary.LittleEndian.PutUint32(b[4:], uint32(lines))
	binary.LittleEndian.PutUint64(b[8:], uint64(addr))
	binary.LittleEndian.PutUint64(b[16:], base)
	return b
}

func decodeDescriptor(b []byte) (root, addr, lines int, base uint64) {
	root = int(binary.LittleEndian.Uint32(b[0:]))
	lines = int(binary.LittleEndian.Uint32(b[4:]))
	addr = int(binary.LittleEndian.Uint64(b[8:]))
	base = binary.LittleEndian.Uint64(b[16:])
	return
}

// activate writes the descriptor to every propagation child and fires
// their IPIs — the parallel inter-core interrupt fan-out.
func (b *Broadcaster) activate(t Tree, root, addr, lines int) {
	desc := encodeDescriptor(root, addr, lines, b.base)
	for _, child := range t.Children {
		b.core.PutLine(child, descLine, desc)
		b.core.SendIPI(child)
	}
}

// Announce broadcasts like Bcast but without requiring receivers to know
// the arguments: the root activates the tree via descriptors + IPIs.
// Receivers must be in (or eventually reach) HandleAnnounce. Only the
// root calls Announce.
func (b *Broadcaster) Announce(addr, lines int) {
	c := b.core
	if lines <= 0 {
		panic(fmt.Sprintf("occast: non-positive message size %d", lines))
	}
	if addr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("occast: address %d not cache-line aligned", addr))
	}
	if c.N() == 1 {
		return
	}
	root := c.ID()
	t := b.buildTree(root)
	b.activate(t, root, addr, lines)
	b.lastRoot = root // activation hands every core fresh matching state
	b.runRoot(t, addr, lines)
}

// HandleAnnounce blocks until this core is activated by an MPMD
// broadcast, participates in it, and returns the delivered message's
// (root, addr, lines). It is what an OS service loop would call.
func (b *Broadcaster) HandleAnnounce() (root, addr, lines int) {
	c := b.core
	c.WaitIPI()
	root, addr, lines, base := decodeDescriptor(c.ReadLineBytes(c.ID(), descLine))
	// Adopt the announcer's sequence base so flag values line up even if
	// this core missed earlier operations.
	b.base = base
	b.lastRoot = root
	t := b.buildTree(root)
	// Forward the activation down my subtree before touching data, so
	// the whole tree wakes in parallel.
	b.activate(t, root, addr, lines)
	b.runNonRoot(t, addr, lines)
	return root, addr, lines
}
