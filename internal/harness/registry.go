package harness

import (
	"fmt"
	"sort"

	"repro/internal/scc"
)

// Experiment is a named, runnable paper artifact.
type Experiment struct {
	Name string
	Desc string
	Run  func(cfg scc.Config, effort int) ([]*Table, error)
}

// Registry lists every reproducible artifact. effort scales repetition
// counts (1 = quick, larger = more averaging).
func Registry() []Experiment {
	exps := []Experiment{
		{
			Name: "fig3", Desc: "put/get completion time vs distance (Figure 3)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{Fig3(cfg)}, nil
			},
		},
		{
			Name: "table1", Desc: "model parameters via calibration fit (Table 1)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				t, err := Table1(cfg)
				if err != nil {
					return nil, err
				}
				return []*Table{t}, nil
			},
		},
		{
			Name: "fig4", Desc: "MPB contention under concurrent access (Figure 4)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{Fig4(cfg, 25*effort)}, nil
			},
		},
		{
			Name: "fig6", Desc: "modeled broadcast latency (Figure 6a/6b)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{Fig6(cfg)}, nil
			},
		},
		{
			Name: "table2", Desc: "modeled peak throughput (Table 2)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{Table2(cfg)}, nil
			},
		},
		{
			Name: "fig8a", Desc: "measured broadcast latency (Figure 8a)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{Fig8a(cfg, 2*effort)}, nil
			},
		},
		{
			Name: "fig8b", Desc: "measured broadcast throughput (Figure 8b)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{Fig8b(cfg, 1+effort)}, nil
			},
		},
		{
			Name: "fig-allreduce", Desc: "allreduce latency: one-sided vs two-sided (§7 extension)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{FigAllReduce(cfg, effort)}, nil
			},
		},
		{
			Name: "fig-overlap", Desc: "communication/computation overlap via non-blocking AllReduce",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{FigOverlap(cfg, effort)}, nil
			},
		},
		{
			Name: "fig-crossover", Desc: "auto-selected algorithm vs best per (mesh, op, size) — regret",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{FigCrossover(cfg, effort)}, nil
			},
		},
		{
			Name: "fig-apps", Desc: "whole-application kernel replay: paper-default vs auto selection",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{FigApps(cfg, effort)}, nil
			},
		},
		{
			Name: "fig-serving", Desc: "multi-tenant serving: load vs throughput/latency, default vs auto",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return FigServing(cfg, effort), nil
			},
		},
		{
			Name: "fig-scale", Desc: "model vs simulation across mesh sizes 48-384 cores",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{FigScale(cfg, effort)}, nil
			},
		},
		{
			Name: "mesh", Desc: "mesh link stress: no NoC contention (§3.3)",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{MeshStress(cfg, 10*effort)}, nil
			},
		},
		{
			Name: "headline", Desc: "§6.2 headline numbers: 27% latency, ~3x throughput",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{Headline(cfg, 2*effort)}, nil
			},
		},
		{
			Name: "ablation", Desc: "design ablations: buffering, notification, k sweep, baseline ladder",
			Run: func(cfg scc.Config, effort int) ([]*Table, error) {
				return []*Table{
					AblationBuffering(cfg, effort),
					AblationNotification(cfg, effort),
					KSweep(cfg, effort),
					AblationNaive(cfg, effort),
					AblationOneSided(cfg, effort),
				}, nil
			},
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name })
	return exps
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", name)
}
