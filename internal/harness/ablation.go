package harness

import (
	"fmt"

	occore "repro/internal/core"
	"repro/internal/scc"
)

// AblationBuffering compares double buffering (2×96-line chunks) with the
// single-buffer variant (1×192-line chunks) the paper describes replacing
// (§4.2): latency at the 192-line buffer-filling point and throughput on
// a pipeline-filling message.
func AblationBuffering(cfg scc.Config, reps int) *Table {
	double := occore.Config{K: 7, BufLines: 96, DoubleBuffer: true}
	single := occore.Config{K: 7, BufLines: 192, DoubleBuffer: false}

	latD := MeanLatency(cfg, Alg{Name: "oc", OCConfig: &double}, scc.NumCores, 192, reps)
	latS := MeanLatency(cfg, Alg{Name: "oc", OCConfig: &single}, scc.NumCores, 192, reps)
	const big = 4096
	thD := ThroughputMBps(big, MeanLatency(cfg, Alg{Name: "oc", OCConfig: &double}, scc.NumCores, big, 2))
	thS := ThroughputMBps(big, MeanLatency(cfg, Alg{Name: "oc", OCConfig: &single}, scc.NumCores, big, 2))

	tbl := &Table{
		Title:   "Ablation — double buffering (2×96) vs single buffer (1×192), k = 7",
		Columns: []string{"variant", "latency @192CL (µs)", "throughput @4096CL (MB/s)"},
		Notes: []string{
			"§4.2: halving the chunk overlaps the root's staging of the",
			"second half with the children's pull of the first.",
		},
	}
	tbl.AddRow("double buffer", fmt.Sprintf("%.2f", latD), fmt.Sprintf("%.2f", thD))
	tbl.AddRow("single buffer", fmt.Sprintf("%.2f", latS), fmt.Sprintf("%.2f", thS))
	return tbl
}

// AblationNotification compares the binary notification tree with naive
// sequential notification by the parent (§4.1's design argument: "It can
// be shown analytically that a binary tree provides the lowest
// notification latency").
func AblationNotification(cfg scc.Config, reps int) *Table {
	tbl := &Table{
		Title:   "Ablation — binary notification tree vs sequential notification",
		Columns: []string{"k", "binary tree (µs)", "sequential (µs)"},
		Notes:   []string{"1-CL broadcast latency on 48 cores, root 0."},
	}
	for _, k := range []int{7, 16, 24, 47} {
		bin := occore.Config{K: k, BufLines: 96, DoubleBuffer: true}
		seq := bin
		seq.SequentialNotify = true
		lb := MeanLatency(cfg, Alg{Name: "oc", OCConfig: &bin}, scc.NumCores, 1, reps)
		ls := MeanLatency(cfg, Alg{Name: "oc", OCConfig: &seq}, scc.NumCores, 1, reps)
		tbl.AddRow(fmt.Sprint(k), fmt.Sprintf("%.2f", lb), fmt.Sprintf("%.2f", ls))
	}
	return tbl
}

// KSweep sweeps the fan-out k, the paper's central tuning knob: small-
// message latency (depth vs polling trade-off) and large-message
// throughput (contention at high k).
func KSweep(cfg scc.Config, reps int) *Table {
	tbl := &Table{
		Title:   "k sweep — OC-Bcast latency and throughput vs fan-out, P = 48",
		Columns: []string{"k", "depth", "lat @1CL (µs)", "lat @96CL (µs)", "thr @4096CL (MB/s)"},
		Notes: []string{
			"Paper: k=7 is the latency/throughput sweet spot; k<=24 avoids",
			"MPB contention; large k pays root-side polling at small sizes.",
		},
	}
	for _, k := range []int{2, 3, 5, 7, 11, 16, 24, 32, 47} {
		a := Alg{Name: "oc", K: k}
		l1 := MeanLatency(cfg, a, scc.NumCores, 1, reps)
		l96 := MeanLatency(cfg, a, scc.NumCores, 96, reps)
		th := ThroughputMBps(4096, MeanLatency(cfg, a, scc.NumCores, 4096, 2))
		tbl.AddRow(fmt.Sprint(k), fmt.Sprint(occore.TreeDepth(scc.NumCores, k)),
			fmt.Sprintf("%.2f", l1), fmt.Sprintf("%.2f", l96), fmt.Sprintf("%.2f", th))
	}
	return tbl
}

// AblationNaive adds the linear baseline, quantifying what trees buy.
func AblationNaive(cfg scc.Config, reps int) *Table {
	tbl := &Table{
		Title:   "Baseline ladder — 16-CL broadcast latency, P = 48",
		Columns: []string{"algorithm", "latency (µs)"},
	}
	for _, a := range []Alg{
		{Name: "naive"},
		{Name: "binomial"},
		{Name: "sag"},
		{Name: "oc", K: 7},
	} {
		tbl.AddRow(a.Label(), fmt.Sprintf("%.2f", MeanLatency(cfg, a, scc.NumCores, 16, reps)))
	}
	return tbl
}

// AblationOneSided quantifies the two §5.4 improvements the paper
// sketches but leaves out: the one-sided scatter-allgather and the
// leaf-direct OC-Bcast variant.
func AblationOneSided(cfg scc.Config, reps int) *Table {
	tbl := &Table{
		Title:   "§5.4 optimizations — one-sided s-ag and leaf-direct OC-Bcast",
		Columns: []string{"algorithm", "thr @8192CL (MB/s)", "lat @96CL (µs)"},
		Notes: []string{
			"\"Adapting the two-sided scatter-allgather to use one-sided",
			"primitives\" overlaps each ring exchange; \"a leaf does not need",
			"to copy the data to its MPB\" removes one MPB pass per chunk.",
		},
	}
	leafDirect := occore.DefaultConfig()
	leafDirect.LeafDirect = true
	for _, a := range []Alg{
		{Name: "sag"},
		{Name: "sag1s"},
		{Name: "oc", K: 7},
		{Name: "oc", OCConfig: &leafDirect},
	} {
		label := a.Label()
		if a.OCConfig != nil {
			label = "OC-Bcast k=7 leaf-direct"
		}
		const big = 8192
		thr := ThroughputMBps(big, MeanLatency(cfg, a, scc.NumCores, big, 2))
		lat := MeanLatency(cfg, a, scc.NumCores, 96, reps)
		tbl.AddRow(label, fmt.Sprintf("%.2f", thr), fmt.Sprintf("%.2f", lat))
	}
	return tbl
}
