package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/algsel"
	occore "repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scc"
)

// The tune subcommand materializes the algorithm registry's decision
// tables for the 48–384-core mesh sweep, validates auto-selection
// against simulation (the fig-crossover regret), writes the results into
// BENCH_simperf.json's "crossover" section, and fails when any cell's
// regret exceeds the gate — the covergate-style check CI runs. With
// -verify it re-checks the checked-in section without simulating.

// crossoverCell is one row of the perf file's crossover section.
type crossoverCell struct {
	Mesh      string  `json:"mesh"`
	Cores     int     `json:"cores"`
	Op        string  `json:"op"`
	Lines     int     `json:"lines"`
	Auto      string  `json:"auto"`
	AutoUs    float64 `json:"auto_us"`
	Best      string  `json:"best"`
	BestUs    float64 `json:"best_us"`
	RegretPct float64 `json:"regret_pct"`
}

// crossoverSection is BENCH_simperf.json's "crossover" value: the
// checked-in decision quality of model-driven auto-selection.
type crossoverSection struct {
	RegretMaxPct float64         `json:"regret_max_pct"`
	MaxRegretPct float64         `json:"max_regret_pct"`
	Cells        []crossoverCell `json:"cells"`
}

const perfFile = "BENCH_simperf.json"

// patchPerfFile merges the given top-level sections into the perf file,
// preserving every section it does not overwrite (perf and tune own
// disjoint keys of the same file).
func patchPerfFile(sections map[string]any) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(perfFile); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s exists but is not JSON: %w", perfFile, err)
		}
	}
	for key, val := range sections {
		raw, err := json.Marshal(val)
		if err != nil {
			return err
		}
		doc[key] = raw
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(perfFile, append(out, '\n'), 0o644)
}

// runTune computes plans, measures regret, updates the perf file and
// gates. regretMax is the failure threshold in percent.
func runTune(cfg scc.Config, effort int, regretMax float64) error {
	base := occore.DefaultConfig()
	for _, topo := range harness.CrossoverMeshes(effort) {
		plan := algsel.TuneCached(cfg.Params, topo, topo.NumCores(), base)
		fmt.Print(plan)
	}

	pts := harness.CrossoverSweep(cfg, effort)
	harness.CrossoverTable(pts).Fprint(os.Stdout)

	sec := crossoverSection{RegretMaxPct: regretMax}
	for _, p := range pts {
		sec.Cells = append(sec.Cells, crossoverCell{
			Mesh:      fmt.Sprintf("%dx%d", p.Topo.W, p.Topo.H),
			Cores:     p.Topo.NumCores(),
			Op:        string(p.Op),
			Lines:     p.Lines,
			Auto:      p.Auto.String(),
			AutoUs:    p.AutoUs,
			Best:      p.Best.String(),
			BestUs:    p.BestUs,
			RegretPct: p.RegretPct,
		})
		if p.RegretPct > sec.MaxRegretPct {
			sec.MaxRegretPct = p.RegretPct
		}
	}
	if err := patchPerfFile(map[string]any{"crossover": sec}); err != nil {
		return err
	}
	fmt.Printf("tune: %d cells, max regret %.2f%% (gate %.0f%%), wrote %s\n",
		len(sec.Cells), sec.MaxRegretPct, regretMax, perfFile)
	return gateRegret(sec, regretMax)
}

// runTuneVerify gates the checked-in crossover section without
// simulating — the cheap CI re-check of the committed table.
func runTuneVerify(regretMax float64) error {
	raw, err := os.ReadFile(perfFile)
	if err != nil {
		return fmt.Errorf("tune -verify: %w (run `ocbench tune` first)", err)
	}
	var doc struct {
		Crossover *crossoverSection `json:"crossover"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("tune -verify: %s: %w", perfFile, err)
	}
	if doc.Crossover == nil || len(doc.Crossover.Cells) == 0 {
		return fmt.Errorf("tune -verify: %s has no crossover section (run `ocbench tune`)", perfFile)
	}
	fmt.Printf("tune -verify: %d checked-in cells, max regret %.2f%% (gate %.0f%%)\n",
		len(doc.Crossover.Cells), doc.Crossover.MaxRegretPct, regretMax)
	return gateRegret(*doc.Crossover, regretMax)
}

// gateRegret fails when any cell's auto-selection regret exceeds the
// threshold.
func gateRegret(sec crossoverSection, regretMax float64) error {
	var bad []crossoverCell
	for _, c := range sec.Cells {
		if c.RegretPct > regretMax {
			bad = append(bad, c)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	for _, c := range bad {
		fmt.Fprintf(os.Stderr, "tune: REGRET %s %d cores %s %d CL: auto %s %.2f µs vs best %s %.2f µs (%.2f%% > %.0f%%)\n",
			c.Mesh, c.Cores, c.Op, c.Lines, c.Auto, c.AutoUs, c.Best, c.BestUs, c.RegretPct, regretMax)
	}
	return fmt.Errorf("tune: %d cell(s) exceed the %.0f%% auto-selection regret gate", len(bad), regretMax)
}
