package core

import (
	"testing"
	"testing/quick"
)

// TestFigure5Tree reproduces the exact tree of the paper's Figure 5:
// s = 0, P = 12, k = 7.
func TestFigure5Tree(t *testing.T) {
	root := BuildTree(0, 0, 12, 7)
	wantChildren := []int{1, 2, 3, 4, 5, 6, 7}
	if len(root.Children) != len(wantChildren) {
		t.Fatalf("root children = %v, want %v", root.Children, wantChildren)
	}
	for i, c := range wantChildren {
		if root.Children[i] != c {
			t.Fatalf("root children = %v, want %v", root.Children, wantChildren)
		}
	}
	c1 := BuildTree(1, 0, 12, 7)
	want1 := []int{8, 9, 10, 11}
	if len(c1.Children) != 4 {
		t.Fatalf("C1 children = %v, want %v", c1.Children, want1)
	}
	for i, c := range want1 {
		if c1.Children[i] != c {
			t.Fatalf("C1 children = %v, want %v", c1.Children, want1)
		}
	}
	// Notification tree among C0's children (Figure 5, right):
	// C0 -> C1, C2; C1 -> C3, C4; C2 -> C5, C6; C3 -> C7.
	cases := []struct {
		self     int
		from     int
		forwards []int
	}{
		{1, 0, []int{3, 4}},
		{2, 0, []int{5, 6}},
		{3, 1, []int{7}},
		{4, 1, nil},
		{5, 2, nil},
		{6, 2, nil},
		{7, 3, nil},
	}
	for _, tc := range cases {
		tr := BuildTree(tc.self, 0, 12, 7)
		if tr.NotifyFrom != tc.from {
			t.Errorf("C%d notified by %d, want %d", tc.self, tr.NotifyFrom, tc.from)
		}
		if len(tr.NotifyFwd) != len(tc.forwards) {
			t.Errorf("C%d forwards to %v, want %v", tc.self, tr.NotifyFwd, tc.forwards)
			continue
		}
		for i := range tc.forwards {
			if tr.NotifyFwd[i] != tc.forwards[i] {
				t.Errorf("C%d forwards to %v, want %v", tc.self, tr.NotifyFwd, tc.forwards)
			}
		}
	}
	// C1's own notification roots are its first two children C8, C9
	// (Figure 5, bottom).
	if len(c1.NotifyOwn) != 2 || c1.NotifyOwn[0] != 8 || c1.NotifyOwn[1] != 9 {
		t.Errorf("C1 NotifyOwn = %v, want [8 9]", c1.NotifyOwn)
	}
	// C8 is notified by C1 and forwards to C10, C11.
	c8 := BuildTree(8, 0, 12, 7)
	if c8.NotifyFrom != 1 {
		t.Errorf("C8 notified by %d, want 1", c8.NotifyFrom)
	}
	if len(c8.NotifyFwd) != 2 || c8.NotifyFwd[0] != 10 || c8.NotifyFwd[1] != 11 {
		t.Errorf("C8 forwards to %v, want [10 11]", c8.NotifyFwd)
	}
}

// TestTreeProperties checks structural invariants for arbitrary (P, k,
// root): every non-root core has exactly one parent that lists it as a
// child; child ranges follow the paper's id formula; notification
// relations stay within sibling groups and reach every sibling exactly
// once.
func TestTreeProperties(t *testing.T) {
	f := func(pRaw, kRaw, sRaw uint8) bool {
		p := int(pRaw%48) + 1
		k := int(kRaw%47) + 1
		s := int(sRaw) % p

		childCount := make(map[int]int)
		notifiedCount := make(map[int]int)
		for self := 0; self < p; self++ {
			tr := BuildTree(self, s, p, k)
			if tr.Rank != ((self-s)+p)%p {
				return false
			}
			if (self == s) != (tr.Parent == -1) {
				return false
			}
			for _, c := range tr.Children {
				childCount[c]++
				// The child must agree on its parent.
				ct := BuildTree(c, s, p, k)
				if ct.Parent != self {
					return false
				}
				if ct.ChildIdx < 0 || ct.ChildIdx >= k {
					return false
				}
			}
			// Notification edges.
			if self != s {
				if tr.NotifyFrom < 0 {
					return false
				}
			}
			for _, n := range tr.NotifyFwd {
				notifiedCount[n]++
				// Forwarded siblings share my parent.
				nt := BuildTree(n, s, p, k)
				if nt.Parent != tr.Parent {
					return false
				}
			}
			for _, n := range tr.NotifyOwn {
				notifiedCount[n]++
				nt := BuildTree(n, s, p, k)
				if nt.Parent != self {
					return false
				}
			}
		}
		// Every non-root has exactly one parent edge and exactly one
		// notification edge.
		for self := 0; self < p; self++ {
			if self == s {
				if childCount[s] != 0 || notifiedCount[s] != 0 {
					return false
				}
				continue
			}
			if childCount[self] != 1 || notifiedCount[self] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct{ p, k, want int }{
		{48, 47, 1},
		{48, 7, 2},
		{48, 2, 5}, // ranks: 1-2, 3-6, 7-14, 15-30, 31-47 -> depth 5
		{1, 7, 0},
		{2, 1, 1},
		{12, 7, 2},
	}
	for _, tc := range cases {
		if got := TreeDepth(tc.p, tc.k); got != tc.want {
			t.Errorf("TreeDepth(%d,%d) = %d, want %d", tc.p, tc.k, got, tc.want)
		}
	}
}

func TestBuildTreePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("k=0", func() { BuildTree(0, 0, 4, 0) })
	mustPanic("p=0", func() { BuildTree(0, 0, 0, 2) })
	mustPanic("self out of range", func() { BuildTree(4, 0, 4, 2) })
	mustPanic("root out of range", func() { BuildTree(0, 4, 4, 2) })
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// k=47 with two 96-line buffers and 48 flags fits exactly in 240+48=240...
	// 2*96 + 1 + 47 = 240 lines <= 256.
	c := Config{K: 47, BufLines: 96, DoubleBuffer: true}
	if err := c.Validate(); err != nil {
		t.Fatalf("paper layout (k=47, Moc=96, double buffered) must fit: %v", err)
	}
	// Oversized layout must be rejected.
	c = Config{K: 47, BufLines: 120, DoubleBuffer: true}
	if c.Validate() == nil {
		t.Fatal("oversized layout accepted")
	}
	if (Config{K: 0, BufLines: 96}).Validate() == nil {
		t.Fatal("k=0 accepted")
	}
	if (Config{K: 7, BufLines: 0}).Validate() == nil {
		t.Fatal("zero buffer accepted")
	}
}
