// spmd-stencil is the kind of SPMD HPC workload the paper's introduction
// motivates: an iterative computation where every step broadcasts a
// coefficient block to all cores, each core updates its partition, and a
// reduction checks global convergence. It runs the same application once
// with OC-Bcast and once with the binomial baseline and reports the
// virtual-time difference — broadcast efficiency translating directly
// into application speedup.
package main

import (
	"encoding/binary"
	"fmt"

	ocbcast "repro"
)

const (
	coeffLines = 64 // broadcast per iteration: 2 KiB of coefficients
	iterations = 20
	redLines   = 1 // residual reduction: one cache line of int64 lanes
)

// run executes the stencil-style loop and returns the final virtual time
// (µs) and the converged residual from core 0.
func run(useOC bool) (float64, int64) {
	sys := ocbcast.New(ocbcast.Options{})
	n := sys.N()

	// Core 0 owns the coefficient table.
	coeff := make([]byte, coeffLines*ocbcast.CacheLineBytes)
	for i := range coeff {
		coeff[i] = byte(i * 31)
	}
	sys.WritePrivate(0, 0, coeff)

	const (
		coeffAddr   = 0
		residAddr   = 64 * 1024
		scratchAddr = 96 * 1024
	)

	var finish float64
	sys.Run(func(c *ocbcast.Core) {
		for it := 0; it < iterations; it++ {
			// 1. Broadcast this iteration's coefficients.
			if useOC {
				c.Broadcast(0, coeffAddr, coeffLines)
			} else {
				c.BroadcastBinomial(0, coeffAddr, coeffLines)
			}
			// 2. Local stencil update over this core's partition
			//    (fixed virtual compute cost per iteration).
			c.Compute(25.0)
			// 3. Write the local residual and reduce it to check
			//    convergence everywhere.
			res := make([]byte, redLines*ocbcast.CacheLineBytes)
			binary.LittleEndian.PutUint64(res, uint64(c.ID()+it))
			// (Residuals live in private memory; the reduction tree
			// combines them.)
			sysWrite(c, residAddr, res)
			c.AllReduce(residAddr, scratchAddr, redLines, ocbcast.SumInt64)
		}
		if c.ID() == 0 && c.NowMicros() > finish {
			finish = c.NowMicros()
		}
		_ = n
	})
	final := sys.ReadPrivate(0, residAddr, 8)
	return finish, int64(binary.LittleEndian.Uint64(final))
}

// sysWrite stores into the running core's own private memory via the
// zero-cost host interface (data prep, not timed communication).
func sysWrite(c *ocbcast.Core, addr int, data []byte) {
	// Writing one's own private memory costs omem_w per line; model it
	// as compute time for the store pass.
	c.Compute(0.5)
	c.WriteOwnPrivate(addr, data)
}

func main() {
	tOC, resOC := run(true)
	tBin, resBin := run(false)
	if resOC != resBin {
		panic(fmt.Sprintf("results diverge: %d vs %d", resOC, resBin))
	}
	fmt.Printf("stencil app, %d iterations, 48 cores (virtual time):\n", iterations)
	fmt.Printf("  with OC-Bcast:        %9.2f µs\n", tOC)
	fmt.Printf("  with binomial bcast:  %9.2f µs\n", tBin)
	fmt.Printf("  application speedup:  %.2fx (residual check: %d)\n", tBin/tOC, resOC)
}
