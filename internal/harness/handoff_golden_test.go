package harness

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/sim"
)

// TestGoldenHandoffVsClassic re-runs the light golden points with the
// direct-handoff scheduler force-disabled: the classic two-hop scheduler
// must reproduce the exact same simulated latencies, byte for byte. With
// the knob restored, the same points are re-checked in handoff mode, so
// one test pins both directions of the equivalence.
func TestGoldenHandoffVsClassic(t *testing.T) {
	cfg := scc.DefaultConfig()
	run := func(t *testing.T) {
		for _, pt := range goldenPoints(cfg) {
			if pt.heavy {
				continue
			}
			checkGolden(t, pt.name, pt.run(), pt.want)
		}
	}
	prev := sim.SetDirectHandoff(false)
	t.Run("classic", run)
	sim.SetDirectHandoff(prev)
	t.Run("handoff", run)
}
