package collective

import (
	"fmt"

	"repro/internal/rcce"
	"repro/internal/scc"
)

// AllReduceRabenseifner is Rabenseifner's allreduce on the two-sided
// substrate: a recursive-halving reduce-scatter followed by a
// recursive-doubling allgather (Rabenseifner 2004, the algorithm MPI
// implementations use for large messages). Where the binomial
// Reduce+Bcast composition moves the full message up and back down
// ceil(log2 P) levels, here each of the log2 P' exchange steps moves only
// half the previous step's data, so the total bytes on the critical path
// are ~2·lines instead of ~2·lines·log2 P — the crossover against the
// tree algorithms is what the registry's tuner locates per message size.
//
// Non-power-of-two core counts use the standard fold: with P' the largest
// power of two ≤ P and r = P−P', the first 2r cores pair up — each odd
// core folds its vector into its even neighbour, which then participates
// on the pair's behalf (and sends the final result back at the end).
//
// scratchAddr names a private staging area of `lines` cache lines the
// operation may clobber on every core. Segments are line-granular; when
// lines < P' some cores own empty segments and simply skip those
// exchanges (both partners compute the same split, so the pairing stays
// matched).
func (c *Comm) AllReduceRabenseifner(addr, scratchAddr, lines int, op ReduceOp) {
	me, p := c.checkBcastArgs(0, addr, lines)
	if scratchAddr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("collective: scratch address %d not cache-line aligned", scratchAddr))
	}
	if op == nil {
		panic("collective: nil reduce op")
	}
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeRecHalf)

	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	r := p - pof2

	// Fold phase: odd cores of the first 2r pairs fold into their even
	// neighbour and sit out; even cores adopt newrank = me/2, the rest
	// newrank = me − r.
	nr := -1
	switch {
	case me < 2*r && me%2 == 1:
		c.port.Send(me-1, addr, lines)
	case me < 2*r:
		c.port.Recv(me+1, scratchAddr, lines)
		c.combine(addr, scratchAddr, lines, op)
		nr = me / 2
	default:
		nr = me - r
	}

	// The RCCE port admits one in-flight peer per core (its sent/ready
	// channels are single MPB lines with equality-matched tags), and the
	// exchange partner changes every step — so steps are separated by
	// barriers, which every core (including folded-away odd ones) runs.
	// The paper's §5.2.2-style handshake overhead per step is what the
	// model charges; it is amortized away at the large message sizes the
	// algorithm targets.

	// Reduce-scatter by recursive halving: at each step partners own the
	// same segment [lo,hi); the lower newrank keeps the low half and
	// receives the partner's contribution for it (and vice versa).
	lo, hi := 0, lines
	for mask := pof2 / 2; mask >= 1; mask /= 2 {
		c.port.Barrier()
		if nr < 0 {
			continue
		}
		partner := realRank(nr^mask, r)
		mid := lo + (hi-lo+1)/2
		keepLo, keepHi, sendLo, sendHi := lo, mid, mid, hi
		if nr&mask != 0 {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		c.exchange(partner,
			addr+sendLo*scc.CacheLine, sendHi-sendLo,
			scratchAddr+keepLo*scc.CacheLine, keepHi-keepLo)
		if keepHi > keepLo {
			c.combine(addr+keepLo*scc.CacheLine, scratchAddr+keepLo*scc.CacheLine, keepHi-keepLo, op)
		}
		lo, hi = keepLo, keepHi
	}

	// Allgather by recursive doubling: partners exchange their
	// currently-owned segments, which are siblings inside the segment
	// owned after the step (segments rejoin in reverse halving order, so
	// ownership stays contiguous).
	for mask := 1; mask < pof2; mask *= 2 {
		c.port.Barrier()
		if nr < 0 {
			continue
		}
		partner := realRank(nr^mask, r)
		plo, phi := segment(nr^mask, pof2, mask, lines)
		c.exchange(partner,
			addr+lo*scc.CacheLine, hi-lo,
			addr+plo*scc.CacheLine, phi-plo)
		if plo < lo {
			lo = plo
		}
		if phi > hi {
			hi = phi
		}
	}
	c.port.Barrier()

	// Unfold: even cores of the first 2r pairs return the result to their
	// odd neighbour.
	switch {
	case me < 2*r && me%2 == 1:
		c.port.Recv(me-1, addr, lines)
	case me < 2*r:
		c.port.Send(me+1, addr, lines)
	}
}

// realRank maps a power-of-two participant rank back to its core id for a
// fold remainder of r pairs.
func realRank(nr, r int) int {
	if nr < r {
		return nr * 2
	}
	return nr + r
}

// segment computes the line range [lo,hi) that participant nr owns after
// recursive halving has run down to granularity `until` (1 = fully
// halved): halving steps with mask ≥ until keep the low half when the
// partner's newrank bit is clear, the high half otherwise.
func segment(nr, pof2, until, lines int) (lo, hi int) {
	lo, hi = 0, lines
	for mask := pof2 / 2; mask >= until; mask /= 2 {
		mid := lo + (hi-lo+1)/2
		if nr&mask == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, hi
}

// exchange swaps segments with a partner, either side possibly empty
// (both partners compute both sizes, so the pairing stays matched).
// SendRecv stages the outgoing chunk before blocking on the incoming one,
// so the symmetric case is deadlock-free; the empty cases degenerate to a
// plain Send/Recv.
func (c *Comm) exchange(partner, sendAddr, sendLines, recvAddr, recvLines int) {
	switch {
	case sendLines > 0 && recvLines > 0:
		c.port.SendRecv(partner, sendAddr, sendLines, partner, recvAddr, recvLines)
	case sendLines > 0:
		c.port.Send(partner, sendAddr, sendLines)
	case recvLines > 0:
		c.port.Recv(partner, recvAddr, recvLines)
	}
}

// combine folds the scratch segment into the data segment with op,
// charging one compute pass like the binomial reduction does.
func (c *Comm) combine(addr, scratchAddr, lines int, op ReduceOp) {
	core := c.port.Core()
	chip := core.Chip()
	me := core.ID()
	nbytes := lines * scc.CacheLine
	mine, theirs := c.combineScratch(nbytes)
	chip.Private(me).Read(mine, addr, nbytes)
	chip.Private(me).Read(theirs, scratchAddr, nbytes)
	op(mine, theirs)
	chip.Private(me).Write(addr, mine)
	core.Compute(CombineCost(lines))
}
