package harness

import (
	"testing"

	"repro/internal/model"
	"repro/internal/scc"
)

// TestModelSimulationCrossValidation mirrors the paper's §6.3 comparison:
// the analytical model (which assumes distance-1 hops everywhere) should
// track the simulated measurements closely, with the simulation somewhat
// slower because real placements are farther than one hop. We accept
// sim/model within [0.9, 1.8] for OC-Bcast across sizes and fan-outs in
// the contention-safe regime.
func TestModelSimulationCrossValidation(t *testing.T) {
	cfg := scc.DefaultConfig()
	mdl := model.New(cfg.Params)
	bp := model.DefaultBcastParams()
	for _, k := range []int{2, 7} {
		for _, lines := range []int{1, 16, 96, 192} {
			sim := MeanLatency(cfg, Alg{Name: "oc", K: k}, scc.NumCores, lines, 2)
			pred := mdl.OCBcastLatency(bp, lines, k).Microseconds()
			ratio := sim / pred
			if ratio < 0.9 || ratio > 1.8 {
				t.Errorf("k=%d m=%d: sim %.2fµs vs model %.2fµs (ratio %.2f outside [0.9,1.8])",
					k, lines, sim, pred, ratio)
			}
		}
	}
}

// TestModelSimulationThroughputCrossValidation: measured peak throughput
// within 15% of Formula 15 for contention-safe k.
func TestModelSimulationThroughputCrossValidation(t *testing.T) {
	cfg := scc.DefaultConfig()
	mdl := model.New(cfg.Params)
	pred := model.LinesPerSecToMBps(mdl.OCBcastThroughput(model.DefaultBcastParams()))
	const lines = 8192
	meas := ThroughputMBps(lines, MeanLatency(cfg, Alg{Name: "oc", K: 7}, scc.NumCores, lines, 2))
	if meas < 0.85*pred || meas > 1.05*pred {
		t.Errorf("measured peak %.2f MB/s vs Formula 15's %.2f MB/s (outside [0.85,1.05])", meas, pred)
	}
}
