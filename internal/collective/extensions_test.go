package collective

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
)

func int64Lines(lines int, f func(lane int) int64) []byte {
	b := make([]byte, lines*scc.CacheLine)
	for i := 0; i*8 < len(b); i++ {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(f(i)))
	}
	return b
}

func TestReduceSum(t *testing.T) {
	const n, lines = 12, 4
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	for i := 0; i < n; i++ {
		id := int64(i)
		chip.Private(i).Write(0, int64Lines(lines, func(lane int) int64 { return id + int64(lane) }))
	}
	const scratch = 64 * scc.CacheLine
	chip.Run(func(core *rma.Core) {
		NewComm(rcce.NewPort(core)).Reduce(0, 0, scratch, lines, SumInt64)
	})
	got := make([]byte, lines*scc.CacheLine)
	chip.Private(0).Read(got, 0, len(got))
	// Sum over i of (i + lane) = n·lane + n(n-1)/2.
	for lane := 0; lane*8 < len(got); lane++ {
		want := int64(n*lane) + int64(n*(n-1)/2)
		if v := int64(binary.LittleEndian.Uint64(got[lane*8:])); v != want {
			t.Fatalf("lane %d = %d, want %d", lane, v, want)
		}
	}
}

func TestReduceMaxNonZeroRoot(t *testing.T) {
	const n, lines, root = 9, 2, 4
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	for i := 0; i < n; i++ {
		id := int64(i)
		chip.Private(i).Write(0, int64Lines(lines, func(lane int) int64 { return id * int64(lane+1) % 7 }))
	}
	chip.Run(func(core *rma.Core) {
		NewComm(rcce.NewPort(core)).Reduce(root, 0, 32*scc.CacheLine, lines, MaxInt64)
	})
	got := make([]byte, lines*scc.CacheLine)
	chip.Private(root).Read(got, 0, len(got))
	for lane := 0; lane*8 < len(got); lane++ {
		var want int64
		for i := int64(0); i < n; i++ {
			if v := i * int64(lane+1) % 7; v > want {
				want = v
			}
		}
		if v := int64(binary.LittleEndian.Uint64(got[lane*8:])); v != want {
			t.Fatalf("lane %d = %d, want %d", lane, v, want)
		}
	}
}

func TestAllReduce(t *testing.T) {
	const n, lines = 8, 3
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	for i := 0; i < n; i++ {
		id := int64(i)
		chip.Private(i).Write(0, int64Lines(lines, func(lane int) int64 { return id }))
	}
	chip.Run(func(core *rma.Core) {
		NewComm(rcce.NewPort(core)).AllReduce(0, 32*scc.CacheLine, lines, SumInt64)
	})
	want := int64(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		got := make([]byte, lines*scc.CacheLine)
		chip.Private(i).Read(got, 0, len(got))
		for lane := 0; lane*8 < len(got); lane++ {
			if v := int64(binary.LittleEndian.Uint64(got[lane*8:])); v != want {
				t.Fatalf("core %d lane %d = %d, want %d", i, lane, v, want)
			}
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n, lines = 11, 2
	blockBytes := lines * scc.CacheLine

	// Scatter: root 3 holds n blocks; each core must receive its own.
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	blocks := make([][]byte, n)
	for i := range blocks {
		blocks[i] = pattern(blockBytes, byte(i+1))
		chip.Private(3).Write(i*blockBytes, blocks[i])
	}
	chip.Run(func(core *rma.Core) {
		NewComm(rcce.NewPort(core)).Scatter(3, 0, lines)
	})
	for i := 0; i < n; i++ {
		got := make([]byte, blockBytes)
		chip.Private(i).Read(got, i*blockBytes, blockBytes)
		if !bytes.Equal(got, blocks[i]) {
			t.Fatalf("scatter: core %d block corrupted", i)
		}
	}

	// Gather: each core contributes a block; root 5 must hold all.
	chip2 := rma.NewChipN(scc.DefaultConfig(), n)
	for i := range blocks {
		chip2.Private(i).Write(i*blockBytes, blocks[i])
	}
	chip2.Run(func(core *rma.Core) {
		NewComm(rcce.NewPort(core)).Gather(5, 0, lines)
	})
	for i := 0; i < n; i++ {
		got := make([]byte, blockBytes)
		chip2.Private(5).Read(got, i*blockBytes, blockBytes)
		if !bytes.Equal(got, blocks[i]) {
			t.Fatalf("gather: block %d corrupted at root", i)
		}
	}
}

func TestAllGather(t *testing.T) {
	for _, n := range []int{2, 7, 16} { // even, odd, power of two
		const lines = 3
		blockBytes := lines * scc.CacheLine
		chip := rma.NewChipN(scc.DefaultConfig(), n)
		blocks := make([][]byte, n)
		for i := range blocks {
			blocks[i] = pattern(blockBytes, byte(10*i+1))
			chip.Private(i).Write(i*blockBytes, blocks[i])
		}
		chip.Run(func(core *rma.Core) {
			NewComm(rcce.NewPort(core)).AllGather(0, lines)
		})
		for c := 0; c < n; c++ {
			for i := 0; i < n; i++ {
				got := make([]byte, blockBytes)
				chip.Private(c).Read(got, i*blockBytes, blockBytes)
				if !bytes.Equal(got, blocks[i]) {
					t.Fatalf("n=%d: core %d missing block %d", n, c, i)
				}
			}
		}
	}
}

func TestAllGatherProperty(t *testing.T) {
	f := func(nRaw uint8, linesRaw uint8) bool {
		n := int(nRaw%12) + 1
		lines := int(linesRaw%5) + 1
		blockBytes := lines * scc.CacheLine
		chip := rma.NewChipN(scc.DefaultConfig(), n)
		for i := 0; i < n; i++ {
			chip.Private(i).Write(i*blockBytes, pattern(blockBytes, byte(i*3+1)))
		}
		chip.Run(func(core *rma.Core) {
			NewComm(rcce.NewPort(core)).AllGather(0, lines)
		})
		for c := 0; c < n; c++ {
			for i := 0; i < n; i++ {
				got := make([]byte, blockBytes)
				chip.Private(c).Read(got, i*blockBytes, blockBytes)
				if !bytes.Equal(got, pattern(blockBytes, byte(i*3+1))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceValidation(t *testing.T) {
	mustPanic := func(name string, f func(c *Comm)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		chip := rma.NewChipN(scc.DefaultConfig(), 2)
		chip.Run(func(core *rma.Core) {
			if core.ID() == 0 {
				f(NewComm(rcce.NewPort(core)))
			}
		})
	}
	mustPanic("nil op", func(c *Comm) { c.Reduce(0, 0, 64*scc.CacheLine, 1, nil) })
	mustPanic("misaligned scratch", func(c *Comm) { c.Reduce(0, 0, 7, 1, SumInt64) })
}
