// Package calibrate reproduces the paper's Table 1 methodology: it runs
// put/get microbenchmarks (on the simulator, where the paper used the
// SCC) across hop distances and message sizes, then least-squares fits
// the LogP model parameters from the measured completion times. A good
// fit recovering the configured parameters validates both the model
// formulas and the simulator's cost accounting against each other.
package calibrate

import (
	"fmt"

	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Sample is one microbenchmark observation.
type Sample struct {
	Op       string // "mpbPut", "mpbGet", "memPut", "memGet"
	Lines    int
	Dist     int // remote-MPB hop distance
	DMem     int // memory-controller distance of the acting core
	Duration sim.Duration
}

// coreAtDistance finds a core whose tile is exactly d hops from core 0's
// tile (d in 1..9), preferring the second core of a tile so the target
// differs from the actor.
func coreAtDistance(d int) int {
	for tile := 0; tile < scc.NumTiles; tile++ {
		if scc.HopDistance(scc.TileCoord(0), scc.TileCoord(tile)) == d {
			return tile*scc.CoresPerTile + 1
		}
	}
	panic(fmt.Sprintf("calibrate: no tile at distance %d", d))
}

// Microbench runs the four put/get families on a contention-free chip
// and returns one exact observation per (op, size, distance). Sizes are
// the paper's Figure 3 set by default.
func Microbench(cfg scc.Config, sizes []int) []Sample {
	if len(sizes) == 0 {
		sizes = []int{1, 4, 8, 16}
	}
	// Calibration, like the paper's §3.2 measurements, is contention
	// free and cache cold.
	cfg.Contention.Enabled = false
	cfg.CacheEnabled = false

	var samples []Sample
	chip := rma.NewChip(cfg)
	// Seed private memory for the mem-sourced puts.
	maxLines := 0
	for _, s := range sizes {
		if s > maxLines {
			maxLines = s
		}
	}
	chip.Private(0).Write(0, make([]byte, maxLines*scc.CacheLine))

	dmem := scc.MemDistance(0)
	chip.Run(func(c *rma.Core) {
		if c.ID() != 0 {
			return
		}
		for d := 1; d <= 9; d++ {
			target := coreAtDistance(d)
			for _, n := range sizes {
				t0 := c.Now()
				c.PutMPBToMPB(target, 0, 0, n)
				samples = append(samples, Sample{"mpbPut", n, d, dmem, c.Now() - t0})

				t0 = c.Now()
				c.GetMPBToMPB(target, 0, 0, n)
				samples = append(samples, Sample{"mpbGet", n, d, dmem, c.Now() - t0})

				t0 = c.Now()
				c.PutMemToMPB(target, 0, 0, n)
				samples = append(samples, Sample{"memPut", n, d, dmem, c.Now() - t0})

				t0 = c.Now()
				c.GetMPBToMem(target, 0, 0, n)
				samples = append(samples, Sample{"memGet", n, d, dmem, c.Now() - t0})
			}
		}
	})
	return samples
}

// Fit holds the recovered Table 1 parameters and per-family fit quality.
type Fit struct {
	Params scc.Params
	R2     map[string]float64
}

// FitParams recovers the eight Table 1 parameters from microbenchmark
// samples by staged least squares:
//
//	mpbGet: C = oget + n·2·ompb + n·(2d+2)·Lhop     → Lhop, ompb, oget
//	mpbPut: C = oput + n·2·ompb + n·(2d+2)·Lhop     → oput
//	memGet: C = omemget + n·(ompb+omemw+2dmem·Lhop) + n·2d·Lhop → omemget, omemw
//	memPut: C = omemput + n·(omemr+ompb+2dmem·Lhop) + n·2d·Lhop → omemput, omemr
func FitParams(samples []Sample) (Fit, error) {
	fit := Fit{R2: make(map[string]float64)}
	by := map[string][]Sample{}
	for _, s := range samples {
		by[s.Op] = append(by[s.Op], s)
	}
	for _, op := range []string{"mpbGet", "mpbPut", "memGet", "memPut"} {
		if len(by[op]) == 0 {
			return Fit{}, fmt.Errorf("calibrate: no %q samples", op)
		}
	}

	// Regress on features [1, n, n·d]; durations in microseconds.
	regress := func(ss []Sample) (b []float64, r2 float64, err error) {
		x := make([][]float64, len(ss))
		y := make([]float64, len(ss))
		for i, s := range ss {
			x[i] = []float64{1, float64(s.Lines), float64(s.Lines * s.Dist)}
			y[i] = s.Duration.Microseconds()
		}
		return stats.OLS(x, y)
	}

	bg, r2g, err := regress(by["mpbGet"])
	if err != nil {
		return Fit{}, fmt.Errorf("calibrate: mpbGet fit: %w", err)
	}
	fit.R2["mpbGet"] = r2g
	// C = oget + n(2·ompb + 2·Lhop) + n·d·(2·Lhop)
	lhop := bg[2] / 2
	ompb := (bg[1] - 2*lhop) / 2
	fit.Params.Lhop = sim.Micros(lhop)
	fit.Params.OMpb = sim.Micros(ompb)
	fit.Params.OMpbGet = sim.Micros(bg[0])

	bp, r2p, err := regress(by["mpbPut"])
	if err != nil {
		return Fit{}, fmt.Errorf("calibrate: mpbPut fit: %w", err)
	}
	fit.R2["mpbPut"] = r2p
	fit.Params.OMpbPut = sim.Micros(bp[0])

	dmem := float64(by["memGet"][0].DMem)
	bmg, r2mg, err := regress(by["memGet"])
	if err != nil {
		return Fit{}, fmt.Errorf("calibrate: memGet fit: %w", err)
	}
	fit.R2["memGet"] = r2mg
	// C = omemget + n(ompb + omemw + 2dmem·Lhop + 2·Lhop·d)
	fit.Params.OMemGet = sim.Micros(bmg[0])
	fit.Params.OMemW = sim.Micros(bmg[1] - ompb - 2*dmem*lhop)

	bmp, r2mp, err := regress(by["memPut"])
	if err != nil {
		return Fit{}, fmt.Errorf("calibrate: memPut fit: %w", err)
	}
	fit.R2["memPut"] = r2mp
	fit.Params.OMemPut = sim.Micros(bmp[0])
	fit.Params.OMemR = sim.Micros(bmp[1] - ompb - 2*dmem*lhop)

	return fit, nil
}
