package model

import (
	"testing"

	"repro/internal/scc"
)

func TestPof2Below(t *testing.T) {
	cases := []struct{ p, pof2, log2 int }{
		{1, 1, 0}, {2, 2, 1}, {3, 2, 1}, {4, 4, 2}, {5, 4, 2},
		{7, 4, 2}, {8, 8, 3}, {48, 32, 5}, {64, 64, 6}, {384, 256, 8},
	}
	for _, c := range cases {
		pof2, log2 := pof2Below(c.p)
		if pof2 != c.pof2 || log2 != c.log2 {
			t.Errorf("pof2Below(%d) = (%d,%d), want (%d,%d)", c.p, pof2, log2, c.pof2, c.log2)
		}
	}
}

// TestAlgorithmLatenciesDegenerate pins the conventions every latency
// formula shares: zero for the 1-core chip and non-positive sizes,
// positive otherwise.
func TestAlgorithmLatenciesDegenerate(t *testing.T) {
	m := New(scc.Table1())
	bp := DefaultBcastParams()
	forms := map[string]func(BcastParams, int) interface{ Microseconds() float64 }{
		"binomial-reduce": func(b BcastParams, n int) interface{ Microseconds() float64 } { return m.BinomialReduceLatency(b, n) },
		"twosided-allreduce": func(b BcastParams, n int) interface{ Microseconds() float64 } {
			return m.TwoSidedAllReduceLatency(b, n)
		},
		"hybrid-allreduce": func(b BcastParams, n int) interface{ Microseconds() float64 } {
			return m.HybridAllReduceLatency(b, b, n, 7)
		},
		"rabenseifner": func(b BcastParams, n int) interface{ Microseconds() float64 } { return m.RabenseifnerLatency(b, n) },
		"ring-allgather": func(b BcastParams, n int) interface{ Microseconds() float64 } {
			return m.OCRingAllGatherLatency(b, n)
		},
		"tree-allgather": func(b BcastParams, n int) interface{ Microseconds() float64 } {
			return m.OCTreeAllGatherLatency(b, n, 7)
		},
		"twosided-ring-allgather": func(b BcastParams, n int) interface{ Microseconds() float64 } {
			return m.TwoSidedRingAllGatherLatency(b, n)
		},
	}
	for name, f := range forms {
		one := bp
		one.P = 1
		if got := f(one, 96); got.Microseconds() != 0 {
			t.Errorf("%s: P=1 latency %v, want 0", name, got)
		}
		if got := f(bp, 0); got.Microseconds() != 0 {
			t.Errorf("%s: n=0 latency %v, want 0", name, got)
		}
		if got := f(bp, 96); got.Microseconds() <= 0 {
			t.Errorf("%s: latency %v, want > 0", name, got)
		}
		// Monotone in message size.
		if f(bp, 192).Microseconds() <= f(bp, 96).Microseconds() {
			t.Errorf("%s: latency not monotone in n", name)
		}
	}
}

// TestRabenseifnerBeatsTreesAtLargeSizes pins the asymptotic story the
// registry's tuner relies on: reduce-scatter+allgather moves ~2n lines
// where the binomial composition moves ~2n·log2 P, so it must win for
// pipeline-filling messages and lose at 1 line (handshake- and
// barrier-dominated).
func TestRabenseifnerBeatsTreesAtLargeSizes(t *testing.T) {
	m := New(scc.Table1())
	bp := DefaultBcastParams()
	bp.DMpb = 5
	bp.DMem = 2
	if m.RabenseifnerLatency(bp, 1024) >= m.TwoSidedAllReduceLatency(bp, 1024) {
		t.Error("rabenseifner not faster than binomial reduce+bcast at 1024 lines")
	}
	if m.RabenseifnerLatency(bp, 1) <= m.HybridAllReduceLatency(bp, bp, 1, 7) {
		t.Error("rabenseifner unexpectedly faster than hybrid at 1 line")
	}
}

// TestRingVsTreeAllGatherScaling pins the allgather ranking the
// simulator shows: the tree's root serially drains all P−1 blocks and
// then rebroadcasts P·n lines, so it is O(P) with a larger constant than
// the ring's one-put-one-get steps — the ring must come out ahead at
// both chip scales and both block sizes (verified against simulation at
// 48 and 384 cores in the fig-crossover sweep).
func TestRingVsTreeAllGatherScaling(t *testing.T) {
	m := New(scc.Table1())
	for _, topo := range []scc.Topology{scc.SCC(), scc.Mesh(16, 12)} {
		p := topo.NumCores()
		ring := RingParamsFor(topo, p)
		tree := BcastParamsFor(topo, p, 7)
		for _, n := range []int{1, 256} {
			if m.OCRingAllGatherLatency(ring, n) >= m.OCTreeAllGatherLatency(tree, n, 7) {
				t.Errorf("%v, %d-line blocks: ring should beat the tree", topo, n)
			}
		}
	}
}

func TestRingParamsFor(t *testing.T) {
	topo := scc.SCC()
	bp := RingParamsFor(topo, 48)
	if bp.P != 48 {
		t.Fatalf("P = %d, want 48", bp.P)
	}
	if bp.DMpb < 1 || bp.DMpb > 4 {
		t.Errorf("ring-neighbour distance %d implausible for the 6x4 mesh", bp.DMpb)
	}
	if d := MeanRingDistance(topo, 1); d != 1 {
		t.Errorf("MeanRingDistance(p=1) = %v, want 1", d)
	}
	// Id-adjacent cores share a tile every other step, so the mean ring
	// distance must be below the mean tree distance at k=7.
	if MeanRingDistance(topo, 48) >= MeanTreeDistance(topo, 48, 7) {
		t.Error("ring distance not below k=7 tree distance on the SCC")
	}
}
