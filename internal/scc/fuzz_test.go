package scc

import "testing"

// FuzzMeshTopology fuzzes topology construction and the routing
// invariants everything downstream depends on: distance symmetry and
// bounds, tile id round-tripping, controller validity, and X-Y path
// lengths matching the hop distance.
func FuzzMeshTopology(f *testing.F) {
	f.Add(6, 4, 0, 47)
	f.Add(1, 1, 0, 1)
	f.Add(8, 8, 3, 120)
	f.Add(16, 12, 100, 383)
	f.Add(2, 9, 17, 2)
	f.Fuzz(func(t *testing.T, w, h, a, b int) {
		if w < 1 || h < 1 || w > 64 || h > 64 {
			t.Skip()
		}
		topo := Mesh(w, h)
		if err := topo.Validate(); err != nil {
			t.Fatalf("Mesh(%d,%d) invalid: %v", w, h, err)
		}
		n := topo.NumCores()
		if n != w*h*CoresPerTile {
			t.Fatalf("Mesh(%d,%d): %d cores, want %d", w, h, n, w*h*CoresPerTile)
		}
		// Clamp the fuzzed core ids into range (the raw values also probe
		// the panic guards below).
		ca := ((a % n) + n) % n
		cb := ((b % n) + n) % n

		// Tile id <-> coordinate round trip for both cores' tiles.
		for _, core := range []int{ca, cb} {
			tile := topo.CoreTile(core)
			coord := topo.TileCoord(tile)
			if !topo.Contains(coord) {
				t.Fatalf("core %d tile coord %v off the %v", core, coord, topo)
			}
			if got := topo.TileID(coord); got != tile {
				t.Fatalf("tile round trip %d -> %v -> %d", tile, coord, got)
			}
		}

		// Distance symmetry, the local-router floor (§2.2: even a core's
		// own tile costs one router, so the minimum distance is 1), and
		// the mesh diameter bound.
		dab, dba := topo.CoreDistance(ca, cb), topo.CoreDistance(cb, ca)
		if dab != dba {
			t.Fatalf("distance asymmetry: d(%d,%d)=%d, d(%d,%d)=%d", ca, cb, dab, cb, ca, dba)
		}
		if topo.CoreDistance(ca, ca) != 1 {
			t.Fatalf("self distance of core %d is %d, want 1 (local router)", ca, topo.CoreDistance(ca, ca))
		}
		if maxD := (w - 1) + (h - 1) + 1; dab < 1 || dab > maxD {
			t.Fatalf("distance %d outside [1,%d]", dab, maxD)
		}

		// X-Y routing traverses one link fewer than the router count.
		pa, pb := topo.CoreCoord(ca), topo.CoreCoord(cb)
		if got := len(topo.XYPath(pa, pb)); got != dab-1 {
			t.Fatalf("XYPath length %d != hop distance %d - 1", got, dab)
		}

		// The serving controller must be on the mesh and at least as close
		// as every other controller.
		ctl := topo.ControllerFor(ca)
		if !topo.Contains(ctl) {
			t.Fatalf("controller %v for core %d off the %v", ctl, ca, topo)
		}
		md := topo.MemDistance(ca)
		for _, other := range topo.Controllers {
			if d := HopDistance(pa, other); d < md {
				t.Fatalf("controller %v at distance %d beats assigned %v at %d", other, d, ctl, md)
			}
		}

		// Out-of-range core ids must be rejected, not mis-route.
		for _, bad := range []int{-1, n, n + a&0xffff} {
			if bad >= 0 && bad < n {
				continue
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("CoreTile(%d) on %v did not panic", bad, topo)
					}
				}()
				topo.CoreTile(bad)
			}()
		}
	})
}
