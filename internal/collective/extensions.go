package collective

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rcce"
	"repro/internal/scc"
	"repro/internal/sim"
)

// This file implements the further collective operations the paper's §7
// names as future work — reduce, allreduce, gather, scatter, allgather —
// on the same RCCE-style two-sided substrate as the broadcast baselines,
// so OC-style one-sided variants can be compared against them.

// ReduceOp combines src into dst, both cache-line multiples of equal
// length.
type ReduceOp func(dst, src []byte)

// SumInt64 treats buffers as little-endian int64 lanes and adds them.
func SumInt64(dst, src []byte) {
	for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
		v := int64(binary.LittleEndian.Uint64(dst[i:])) + int64(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], uint64(v))
	}
}

// MaxInt64 keeps the lane-wise maximum.
func MaxInt64(dst, src []byte) {
	for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(dst[i:], uint64(b))
		}
	}
}

// Reduce combines every core's `lines` cache lines at addr with op; the
// result lands at addr on the root. scratchAddr names a private-memory
// staging area of the same size that the operation may clobber on
// interior nodes. Binomial-tree reduction: the mirror image of
// BcastBinomial, O(log2 P) levels.
func (c *Comm) Reduce(root, addr, scratchAddr, lines int, op ReduceOp) {
	me, p := c.checkBcastArgs(root, addr, lines)
	if scratchAddr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("collective: scratch address %d not cache-line aligned", scratchAddr))
	}
	if op == nil {
		panic("collective: nil reduce op")
	}
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeTree | root)
	core := c.port.Core()
	chip := core.Chip()
	vrank := ((me - root) + p) % p
	nbytes := lines * scc.CacheLine

	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			dst := (vrank - mask + root) % p
			// Wait until the parent is ready for THIS child: several
			// children share the parent's one-line sent channel.
			c.port.AwaitTurn(dst)
			c.port.Send(dst, addr, lines)
			return
		}
		if vrank+mask < p {
			src := (vrank + mask + root) % p
			c.port.GrantTurn(src)
			c.port.Recv(src, scratchAddr, lines)
			// Combine locally. The arithmetic itself is charged as
			// compute proportional to the data size (one pass).
			mine, theirs := c.combineScratch(nbytes)
			chip.Private(me).Read(mine, addr, nbytes)
			chip.Private(me).Read(theirs, scratchAddr, nbytes)
			op(mine, theirs)
			chip.Private(me).Write(addr, mine)
			core.Compute(CombineCost(lines))
		}
	}
}

// CombineCost is one compute pass over `lines` cache lines of cached data
// for the reduction arithmetic: ~10 ns per line on a P54C-class core. The
// one-sided reduction in internal/occoll charges the same pass so the two
// collective families stay directly comparable.
func CombineCost(lines int) sim.Duration {
	return sim.Duration(lines) * 10 * sim.Nanosecond
}

// AllReduce is Reduce to core 0 followed by a binomial broadcast of the
// result.
func (c *Comm) AllReduce(addr, scratchAddr, lines int, op ReduceOp) {
	c.Reduce(0, addr, scratchAddr, lines, op)
	c.BcastBinomial(0, addr, lines)
}

// Gather collects each core's `lines`-line block into the root: core i's
// block ends up at addr + i·lines·32 in the root's private memory (and
// partially on interior nodes). Binomial-tree gather in rank space.
func (c *Comm) Gather(root, addr, lines int) {
	me, p := c.checkBcastArgs(root, addr, lines)
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeTree | root)
	vrank := ((me - root) + p) % p
	// blockOff maps a rank-space block range to (byte addr, line count):
	// blocks are stored by ORIGINAL core id so the root's layout is
	// id-ordered regardless of root rotation.
	blockAddr := func(vr int) int { return addr + ((vr+root)%p)*lines*scc.CacheLine }

	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			// Send my accumulated range [vrank, vrank+mask) ∩ [0,p),
			// once the parent grants this child its turn.
			hi := vrank + mask
			if hi > p {
				hi = p
			}
			dst := (vrank - mask + root) % p
			c.port.AwaitTurn(dst)
			for vr := vrank; vr < hi; vr++ {
				c.port.Send(dst, blockAddr(vr), lines)
			}
			return
		}
		if vrank+mask < p {
			src := (vrank + mask + root) % p
			hi := vrank + 2*mask
			if hi > p {
				hi = p
			}
			c.port.GrantTurn(src)
			for vr := vrank + mask; vr < hi; vr++ {
				c.port.Recv(src, blockAddr(vr), lines)
			}
		}
	}
}

// Scatter distributes P `lines`-line blocks from the root: core i
// receives the block stored at addr + i·lines·32 in the root's memory,
// into the same address in its own memory. Recursive halving, the mirror
// of Gather.
func (c *Comm) Scatter(root, addr, lines int) {
	me, p := c.checkBcastArgs(root, addr, lines)
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeTree | root)
	vrank := ((me - root) + p) % p
	blockAddr := func(vr int) int { return addr + ((vr+root)%p)*lines*scc.CacheLine }

	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			src := (vrank - mask + root) % p
			hi := vrank + mask
			if hi > p {
				hi = p
			}
			for vr := vrank; vr < hi; vr++ {
				c.port.Recv(src, blockAddr(vr), lines)
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			dst := (vrank + mask + root) % p
			hi := vrank + 2*mask
			if hi > p {
				hi = p
			}
			for vr := vrank + mask; vr < hi; vr++ {
				c.port.Send(dst, blockAddr(vr), lines)
			}
		}
		mask >>= 1
	}
}

// AllGather exchanges every core's `lines`-line block so all cores end up
// with all P blocks, id-ordered: core i contributes the block at
// addr + i·lines·32. Ring algorithm with parity-ordered send/recv, P−1
// rounds — the same exchange structure as the allgather phase of the
// scatter-allgather broadcast.
func (c *Comm) AllGather(addr, lines int) {
	me, p := c.checkBcastArgs(0, addr, lines)
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeRing)
	blockAddr := func(id int) int { return addr + ((id%p+p)%p)*lines*scc.CacheLine }
	left, right := (me-1+p)%p, (me+1)%p
	sendFirst := me%2 == 0
	if p%2 == 1 && me == p-1 {
		sendFirst = false
	}
	for t := 0; t < p-1; t++ {
		sendBlock := blockAddr(me + t)
		recvBlock := blockAddr(me + 1 + t)
		if sendFirst {
			c.port.Send(left, sendBlock, lines)
			c.port.Recv(right, recvBlock, lines)
		} else {
			c.port.Recv(right, recvBlock, lines)
			c.port.Send(left, sendBlock, lines)
		}
	}
}
