package harness

import (
	"fmt"

	"repro/internal/scc"
)

// Fig8aSizes is the x-axis of Figure 8a (small messages, ≤ 2·Moc lines).
var Fig8aSizes = []int{1, 8, 16, 32, 48, 64, 80, 96, 97, 112, 128, 160, 192}

// Fig8a regenerates Figure 8a: *measured* (simulated) broadcast latency
// of OC-Bcast (k = 2, 7, 47) versus the RCCE_comm binomial tree on 48
// cores, root 0.
func Fig8a(cfg scc.Config, reps int) *Table {
	tbl := &Table{
		Title:   "Figure 8a — measured broadcast latency (µs), P = 48, root 0",
		Columns: []string{"CL", "k=2", "k=7", "k=47", "binomial"},
		Notes: []string{
			"Simulated on the SCC model with the contention and cache models",
			"on. Paper shape: OC-Bcast wins at every size (>=27% at 1 CL);",
			"k=7 ~ k=47 (MPB contention erases the model's k=47 edge).",
		},
	}
	algs := []Alg{{Name: "oc", K: 2}, {Name: "oc", K: 7}, {Name: "oc", K: 47}, {Name: "binomial"}}
	var cells []LatencyCell
	for _, lines := range Fig8aSizes {
		for _, a := range algs {
			cells = append(cells, LatencyCell{Alg: a, Lines: lines, Reps: reps})
		}
	}
	lat := MeanLatencyGrid(cfg, scc.NumCores, cells)
	for si, lines := range Fig8aSizes {
		row := []string{fmt.Sprint(lines)}
		for ai := range algs {
			row = append(row, fmt.Sprintf("%.2f", lat[si*len(algs)+ai]))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Fig8bSizes is the log-spaced x-axis of Figure 8b (1 CL .. 32768 CL = 1 MiB).
var Fig8bSizes = []int{1, 4, 16, 64, 96, 97, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// Fig8b regenerates Figure 8b: measured broadcast *throughput* (MB/s) of
// OC-Bcast versus the RCCE_comm scatter-allgather across four decades of
// message size. Expected shape: OC-Bcast's curve saturates near the
// Table 2 prediction (~3× scatter-allgather's peak), with a visible dip
// at 97 CL (a full 96-line chunk plus a 1-line chunk).
func Fig8b(cfg scc.Config, reps int) *Table {
	tbl := &Table{
		Title:   "Figure 8b — measured broadcast throughput (MB/s), P = 48, root 0",
		Columns: []string{"CL", "k=2", "k=7", "k=47", "s-ag"},
		Notes: []string{
			"Throughput = message bytes / measured latency.",
			"Paper shape: OC-Bcast peak ~3x scatter-allgather; dip at 97 CL;",
			"k=47 ~16% below its model prediction (MPB contention).",
		},
	}
	algs := []Alg{{Name: "oc", K: 2}, {Name: "oc", K: 7}, {Name: "oc", K: 47}, {Name: "sag"}}
	var cells []LatencyCell
	for _, lines := range Fig8bSizes {
		r := reps
		if lines >= 8192 && r > 2 {
			r = 2 // large sizes are slow to simulate and low variance
		}
		for _, a := range algs {
			cells = append(cells, LatencyCell{Alg: a, Lines: lines, Reps: r})
		}
	}
	lat := MeanLatencyGrid(cfg, scc.NumCores, cells)
	for si, lines := range Fig8bSizes {
		row := []string{fmt.Sprint(lines)}
		for ai := range algs {
			row = append(row, fmt.Sprintf("%.2f", ThroughputMBps(lines, lat[si*len(algs)+ai])))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Headline regenerates the §6.2.1 headline comparison: 1-cache-line
// broadcast latency, OC-Bcast k=7 versus binomial (paper: 16.6 µs vs
// 21.6 µs, a 27% improvement), plus the peak-throughput ratio versus
// scatter-allgather (paper: almost 3×).
func Headline(cfg scc.Config, reps int) *Table {
	const large = 8192
	lat := MeanLatencyGrid(cfg, scc.NumCores, []LatencyCell{
		{Alg: Alg{Name: "oc", K: 7}, Lines: 1, Reps: reps},
		{Alg: Alg{Name: "binomial"}, Lines: 1, Reps: reps},
		{Alg: Alg{Name: "oc", K: 7}, Lines: large, Reps: 2},
		{Alg: Alg{Name: "sag"}, Lines: large, Reps: 2},
	})
	oc1, bin1 := lat[0], lat[1]
	ocT := ThroughputMBps(large, lat[2])
	sagT := ThroughputMBps(large, lat[3])

	tbl := &Table{
		Title:   "Headline results (§6.2) — paper vs this reproduction",
		Columns: []string{"metric", "paper", "measured (sim)"},
	}
	tbl.AddRow("1-CL latency, OC-Bcast k=7 (µs)", "16.6", fmt.Sprintf("%.2f", oc1))
	tbl.AddRow("1-CL latency, binomial (µs)", "21.6", fmt.Sprintf("%.2f", bin1))
	tbl.AddRow("latency improvement", "27%", fmt.Sprintf("%.0f%%", 100*(bin1-oc1)/bin1))
	tbl.AddRow("peak throughput OC-Bcast (MB/s)", "~34-36", fmt.Sprintf("%.2f", ocT))
	tbl.AddRow("peak throughput scatter-allgather (MB/s)", "~13.4", fmt.Sprintf("%.2f", sagT))
	tbl.AddRow("throughput ratio", "almost 3x", fmt.Sprintf("%.2fx", ocT/sagT))
	return tbl
}
