package serve

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// The ocserve text format: a serving spec — runtime configuration plus
// tenant mix — as a line-oriented file, the serving sibling of the
// octrace grammar (internal/workload/format.go):
//
//	ocserve v1
//	policy wrr
//	queue 16
//	batch 8 256
//	lanes 4
//	tenant sgd 3
//	req allreduce 0 64 12.5
//	req allreduce 0 256 0
//	tenant telemetry 1
//	req bcast 2 8 400
//
// Configuration directives (each optional, zero/default when absent)
// come first: `policy rr|wrr`, `queue <bound>`, `batch <maxreqs>
// <maxlines>`, `lanes <n>`. Then one `tenant <name> <weight>` per
// stream, each followed by its `req <op> <root> <lines> <gap_us>`
// arrivals in order; root is written 0 for the unrooted ops, gap_us is
// the inter-arrival gap in microseconds. Blank lines and #-comments are
// ignored. Format emits the canonical form (directives for non-zero
// fields only); Parse(Format(spec)) reproduces the spec exactly — the
// fuzz target holds the round-trip to that.

// Spec is a parsed serving spec: the runtime configuration and the
// tenant mix.
type Spec struct {
	Config  Config
	Streams []Stream
}

// specHeader is the required first line.
const specHeader = "ocserve v1"

// Parse reads an ocserve spec. Every error names the offending line.
// A parsed spec is statically valid: the configuration passes
// Config.Validate and the streams pass ValidateStreams against an
// unbounded chip (root-vs-core-count is checked at Serve time, when the
// chip is known).
func Parse(data []byte) (*Spec, error) {
	sp := &Spec{}
	sawHeader := false
	sawTenant := false
	cur := -1
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if !sawHeader {
			if len(fields) != 2 || fields[0]+" "+fields[1] != specHeader {
				return nil, fmt.Errorf("serve: line %d: missing %q header", lineNo, specHeader)
			}
			sawHeader = true
			continue
		}
		switch fields[0] {
		case "policy":
			if sawTenant {
				return nil, fmt.Errorf("serve: line %d: policy directive after the first tenant", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("serve: line %d: want `policy rr|wrr`", lineNo)
			}
			sp.Config.Policy = fields[1]
		case "queue":
			if err := parseDirective(sawTenant, fields, 1, lineNo); err != nil {
				return nil, err
			}
			v, err := parseInt(fields[1], "queue bound", lineNo)
			if err != nil {
				return nil, err
			}
			sp.Config.QueueBound = v
		case "batch":
			if err := parseDirective(sawTenant, fields, 2, lineNo); err != nil {
				return nil, err
			}
			v, err := parseInt(fields[1], "batch max requests", lineNo)
			if err != nil {
				return nil, err
			}
			w, err := parseInt(fields[2], "batch max lines", lineNo)
			if err != nil {
				return nil, err
			}
			sp.Config.MaxBatch, sp.Config.MaxBatchLines = v, w
		case "lanes":
			if err := parseDirective(sawTenant, fields, 1, lineNo); err != nil {
				return nil, err
			}
			v, err := parseInt(fields[1], "lanes", lineNo)
			if err != nil {
				return nil, err
			}
			sp.Config.Lanes = v
		case "tenant":
			if len(fields) != 3 {
				return nil, fmt.Errorf("serve: line %d: want `tenant <name> <weight>`", lineNo)
			}
			w, err := parseInt(fields[2], "tenant weight", lineNo)
			if err != nil {
				return nil, err
			}
			sp.Streams = append(sp.Streams, Stream{Tenant: fields[1], Weight: w})
			sawTenant = true
			cur = len(sp.Streams) - 1
		case "req":
			if cur < 0 {
				return nil, fmt.Errorf("serve: line %d: req before any tenant", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("serve: line %d: want `req <op> <root> <lines> <gap_us>`", lineNo)
			}
			root, err := parseInt(fields[2], "root", lineNo)
			if err != nil {
				return nil, err
			}
			lines, err := parseInt(fields[3], "lines", lineNo)
			if err != nil {
				return nil, err
			}
			gap, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("serve: line %d: bad gap_us %q", lineNo, fields[4])
			}
			sp.Streams[cur].Reqs = append(sp.Streams[cur].Reqs,
				Req{Op: fields[1], Root: root, Lines: lines, GapUs: gap})
		default:
			return nil, fmt.Errorf("serve: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("serve: missing %q header", specHeader)
	}
	if err := sp.Config.Validate(); err != nil {
		return nil, err
	}
	// Static validation only: roots are checked against workload.MaxRoot
	// here and against the actual chip at Serve time.
	if err := ValidateStreams(sp.Streams, workload.MaxRoot+1); err != nil {
		return nil, err
	}
	return sp, nil
}

// parseDirective checks a config directive's position and arity.
func parseDirective(sawTenant bool, fields []string, args, lineNo int) error {
	if sawTenant {
		return fmt.Errorf("serve: line %d: %s directive after the first tenant", lineNo, fields[0])
	}
	if len(fields) != args+1 {
		return fmt.Errorf("serve: line %d: %s directive wants %d argument(s)", lineNo, fields[0], args)
	}
	return nil
}

// parseInt parses a non-negative bounded integer field.
func parseInt(s, what string, lineNo int) (int, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("serve: line %d: bad %s %q", lineNo, what, s)
	}
	return int(v), nil
}

// Format renders the spec in canonical ocserve form: header, non-zero
// configuration directives in fixed order, then tenants and requests in
// order. Parse(Format(sp)) reproduces sp exactly.
func Format(sp *Spec) []byte {
	var b bytes.Buffer
	b.WriteString(specHeader)
	b.WriteByte('\n')
	c := sp.Config
	if c.Policy != "" {
		fmt.Fprintf(&b, "policy %s\n", c.Policy)
	}
	if c.QueueBound != 0 {
		fmt.Fprintf(&b, "queue %d\n", c.QueueBound)
	}
	if c.MaxBatch != 0 || c.MaxBatchLines != 0 {
		fmt.Fprintf(&b, "batch %d %d\n", c.MaxBatch, c.MaxBatchLines)
	}
	if c.Lanes != 0 {
		fmt.Fprintf(&b, "lanes %d\n", c.Lanes)
	}
	for _, s := range sp.Streams {
		fmt.Fprintf(&b, "tenant %s %d\n", s.Tenant, s.Weight)
		for _, r := range s.Reqs {
			fmt.Fprintf(&b, "req %s %d %d %s\n", r.Op, r.Root, r.Lines,
				strconv.FormatFloat(r.GapUs, 'g', -1, 64))
		}
	}
	return b.Bytes()
}
