package serve

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzServeSpec hammers the ocserve parser with arbitrary bytes:
// malformed input must be rejected with an error that names the grammar
// position (never a panic), and accepted input must round-trip
// losslessly — parse → format → parse yields an identical spec and the
// canonical text is a formatting fixed point. The checked-in corpus
// under testdata/fuzz seeds both halves; CI runs the target for 10s on
// every push.
func FuzzServeSpec(f *testing.F) {
	f.Add([]byte("ocserve v1\ntenant a 1\nreq bcast 0 1 0\n"))
	f.Add([]byte("ocserve v1\npolicy wrr\nqueue 16\nbatch 8 256\nlanes 4\n" +
		"tenant sgd 3\nreq allreduce 0 64 12.5\nreq allreduce 0 256 0\n" +
		"tenant telemetry 1\nreq bcast 2 8 400\n"))
	f.Add([]byte("ocserve v1\n# comment\n\ntenant x-1._y 9\nreq scatter 3 16 0.3333333333333333\nreq allgather 0 2 1e6\n"))
	f.Add([]byte("tenant a 1\n"))                                       // missing header
	f.Add([]byte("ocserve v1\npolicy fifo\n"))                          // unknown policy
	f.Add([]byte("ocserve v1\nreq bcast 0 1 0\n"))                      // req before tenant
	f.Add([]byte("ocserve v1\ntenant a 1\nreq bcast 0 1 0\nqueue 4\n")) // late directive
	f.Add([]byte("ocserve v1\ntenant a 1\nreq frob 0 1 0\n"))           // unknown op
	f.Add([]byte("ocserve v1\ntenant a 1\nreq bcast 0 0 0\n"))          // zero lines
	f.Add([]byte("ocserve v1\ntenant a 1\nreq bcast 0 1 NaN\n"))        // non-finite gap
	f.Add([]byte("ocserve v1\ntenant a b c 1\n"))                       // tenant arity
	f.Add([]byte("ocserve v1\r\ntenant a 1\r\nreq gather 0 4 0\r\n"))   // CRLF input
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			if sp != nil {
				t.Fatalf("Parse returned both a spec and error %v", err)
			}
			if msg := err.Error(); !strings.Contains(msg, "serve: ") {
				t.Fatalf("error %q lacks the serve: prefix", msg)
			}
			return
		}
		if err := sp.Config.Validate(); err != nil {
			t.Fatalf("parsed config fails Validate: %v", err)
		}
		canon := Format(sp)
		sp2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical text does not reparse: %v\n%q", err, canon)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("round trip changed the spec:\n%+v\n%+v", sp, sp2)
		}
		if string(canon) != string(Format(sp2)) {
			t.Fatalf("canonical text is not a fixed point:\n%q\n%q", canon, Format(sp2))
		}
	})
}
