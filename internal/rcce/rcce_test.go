package rcce

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*31)
	}
	return b
}

func TestSendRecvSmall(t *testing.T) {
	chip := rma.NewChipN(scc.DefaultConfig(), 4)
	payload := fill(5*scc.CacheLine, 1)
	chip.Private(0).Write(0, payload)
	chip.Run(func(c *rma.Core) {
		p := NewPort(c)
		switch c.ID() {
		case 0:
			p.Send(2, 0, 5)
		case 2:
			p.Recv(0, 64*scc.CacheLine, 5)
		}
	})
	got := make([]byte, len(payload))
	chip.Private(2).Read(got, 64*scc.CacheLine, len(got))
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestSendRecvMultiChunk(t *testing.T) {
	// 600 lines forces three chunks (251 + 251 + 98).
	chip := rma.NewChipN(scc.DefaultConfig(), 2)
	payload := fill(600*scc.CacheLine, 9)
	chip.Private(0).Write(0, payload)
	chip.Run(func(c *rma.Core) {
		p := NewPort(c)
		switch c.ID() {
		case 0:
			p.Send(1, 0, 600)
		case 1:
			p.Recv(0, 0, 600)
		}
	})
	got := make([]byte, len(payload))
	chip.Private(1).Read(got, 0, len(got))
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-chunk payload corrupted")
	}
}

func TestSendRecvBackToBackMessages(t *testing.T) {
	// Two consecutive messages on the same pair must not confuse the
	// monotonic chunk tags (regression guard for stale-flag reuse).
	chip := rma.NewChipN(scc.DefaultConfig(), 2)
	m1 := fill(scc.CacheLine, 3)
	m2 := fill(scc.CacheLine, 200)
	chip.Private(0).Write(0, m1)
	chip.Private(0).Write(scc.CacheLine, m2)
	chip.Run(func(c *rma.Core) {
		p := NewPort(c)
		switch c.ID() {
		case 0:
			p.Send(1, 0, 1)
			p.Send(1, scc.CacheLine, 1)
		case 1:
			p.Recv(0, 0, 1)
			p.Recv(0, scc.CacheLine, 1)
		}
	})
	g1 := make([]byte, scc.CacheLine)
	g2 := make([]byte, scc.CacheLine)
	chip.Private(1).Read(g1, 0, scc.CacheLine)
	chip.Private(1).Read(g2, scc.CacheLine, scc.CacheLine)
	if !bytes.Equal(g1, m1) || !bytes.Equal(g2, m2) {
		t.Fatal("back-to-back messages corrupted")
	}
}

func TestRelayChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 relay, as in tree-based collectives.
	chip := rma.NewChipN(scc.DefaultConfig(), 4)
	payload := fill(300*scc.CacheLine, 77)
	chip.Private(0).Write(0, payload)
	chip.Run(func(c *rma.Core) {
		p := NewPort(c)
		id := c.ID()
		if id > 0 {
			p.Recv(id-1, 0, 300)
		}
		if id < 3 {
			p.Send(id+1, 0, 300)
		}
	})
	got := make([]byte, len(payload))
	chip.Private(3).Read(got, 0, len(got))
	if !bytes.Equal(got, payload) {
		t.Fatal("relayed payload corrupted")
	}
}

func TestSendRecvProperty(t *testing.T) {
	// Random sizes and pairs round-trip intact.
	f := func(linesRaw uint16, dstRaw uint8) bool {
		lines := int(linesRaw%520) + 1
		dst := int(dstRaw%7) + 1
		chip := rma.NewChipN(scc.DefaultConfig(), 8)
		payload := fill(lines*scc.CacheLine, byte(lines))
		chip.Private(0).Write(0, payload)
		chip.Run(func(c *rma.Core) {
			p := NewPort(c)
			switch c.ID() {
			case 0:
				p.Send(dst, 0, lines)
			case dst:
				p.Recv(0, 0, lines)
			}
		})
		got := make([]byte, len(payload))
		chip.Private(dst).Read(got, 0, len(got))
		return bytes.Equal(got, payload)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Core i computes for i µs, then barriers. Everyone must leave the
	// barrier no earlier than the slowest arrival.
	chip := rma.NewChipN(scc.DefaultConfig(), 16)
	exit := make([]sim.Time, 16)
	var slowestArrival sim.Time
	chip.Run(func(c *rma.Core) {
		p := NewPort(c)
		c.Compute(sim.Duration(c.ID()) * sim.Microsecond)
		if c.ID() == 15 {
			slowestArrival = c.Now()
		}
		p.Barrier()
		exit[c.ID()] = c.Now()
	})
	for i, e := range exit {
		if e < slowestArrival {
			t.Errorf("core %d left barrier at %v, before slowest arrival %v", i, e, slowestArrival)
		}
	}
}

func TestBarrierRepeated(t *testing.T) {
	// Many consecutive barriers must not deadlock or lose epochs, and
	// cores must stay in lockstep: after each barrier, no core's exit
	// precedes any other core's entry.
	chip := rma.NewChipN(scc.DefaultConfig(), 9)
	const rounds = 20
	entries := make([][]sim.Time, rounds)
	exits := make([][]sim.Time, rounds)
	for r := range entries {
		entries[r] = make([]sim.Time, 9)
		exits[r] = make([]sim.Time, 9)
	}
	chip.Run(func(c *rma.Core) {
		p := NewPort(c)
		for r := 0; r < rounds; r++ {
			c.Compute(sim.Duration((c.ID()*r)%5) * sim.Microsecond)
			entries[r][c.ID()] = c.Now()
			p.Barrier()
			exits[r][c.ID()] = c.Now()
		}
	})
	for r := 0; r < rounds; r++ {
		var maxEntry sim.Time
		for _, e := range entries[r] {
			if e > maxEntry {
				maxEntry = e
			}
		}
		for i, x := range exits[r] {
			if x < maxEntry {
				t.Fatalf("round %d: core %d exited at %v before last entry %v", r, i, x, maxEntry)
			}
		}
	}
}

func TestSendValidation(t *testing.T) {
	mustPanic := func(name string, f func(p *Port)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		chip := rma.NewChipN(scc.DefaultConfig(), 2)
		chip.Run(func(c *rma.Core) {
			if c.ID() == 0 {
				f(NewPort(c))
			}
		})
	}
	mustPanic("send to self", func(p *Port) { p.Send(0, 0, 1) })
	mustPanic("recv from self", func(p *Port) { p.Recv(0, 0, 1) })
	mustPanic("zero lines", func(p *Port) { p.Send(1, 0, 0) })
	mustPanic("misaligned", func(p *Port) { p.Send(1, 3, 1) })
}

// TestSendCostStructure checks the RCCE cost shape the paper's Formula 14
// builds on: a send+recv of m lines costs at least
// Cmem_put(m) + Cmem_get(m) end to end (one staging put, one remote get).
func TestSendCostStructure(t *testing.T) {
	cfg := scc.DefaultConfig()
	cfg.Contention.Enabled = false
	cfg.CacheEnabled = false
	chip := rma.NewChipN(cfg, 2)
	chip.Private(0).Write(0, fill(16*scc.CacheLine, 5))
	var recvDone sim.Time
	chip.Run(func(c *rma.Core) {
		p := NewPort(c)
		switch c.ID() {
		case 0:
			p.Send(1, 0, 16)
		case 1:
			p.Recv(0, 0, 16)
			recvDone = c.Now()
		}
	})
	pms := cfg.Params
	m := sim.Duration(16)
	// Lower bound: staging put (mem read + local MPB write per line)
	// plus remote get (remote MPB read + mem write per line).
	lower := pms.OMemPut + m*(pms.OMemR+2*pms.Lhop) + m*(pms.OMpb+2*pms.Lhop) +
		pms.OMemGet + m*(pms.OMpb) + m*(pms.OMemW)
	if recvDone < lower {
		t.Fatalf("recv completed at %v, below structural lower bound %v", recvDone, lower)
	}
}
