package ocbcast_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	ocbcast "repro"
)

// stageVectors writes a distinct int64 vector per core and returns the
// expected elementwise sum.
func stageVectors(sys *ocbcast.System, lines int) []byte {
	n := sys.N()
	nbytes := lines * ocbcast.CacheLineBytes
	want := make([]byte, nbytes)
	for c := 0; c < n; c++ {
		buf := make([]byte, nbytes)
		for i := 0; i+8 <= nbytes; i += 8 {
			binary.LittleEndian.PutUint64(buf[i:], uint64(c*1000+i))
		}
		sys.WritePrivate(c, 0, buf)
		ocbcast.SumInt64(want, buf)
	}
	return want
}

// checkAllReduce verifies every core holds the elementwise sum.
func checkAllReduce(t *testing.T, sys *ocbcast.System, lines int, want []byte) {
	t.Helper()
	for c := 0; c < sys.N(); c++ {
		got := sys.ReadPrivate(c, 0, len(want))
		if !bytes.Equal(got, want) {
			t.Fatalf("core %d: allreduce result mismatch", c)
		}
	}
}

// TestAlgorithmAuto runs AllReduce at sizes landing in different bands
// of the decision table (hybrid, rabenseifner, deep oc tree): the
// auto-selected algorithm must be invisible in the results.
func TestAlgorithmAuto(t *testing.T) {
	for _, lines := range []int{1, 16, 96, 256} {
		sys := ocbcast.New(ocbcast.Options{Algorithm: "auto"})
		want := stageVectors(sys, lines)
		scratch := 1 << 20
		sys.Run(func(c *ocbcast.Core) {
			c.AllReduce(0, scratch, lines, ocbcast.SumInt64)
		})
		checkAllReduce(t, sys, lines, want)
	}
}

// TestAlgorithmNamedOverride forces the registry's new algorithms from
// the public API: Rabenseifner for AllReduce, the one-sided ring for
// AllGather. Operations that do not register the name keep their
// defaults (Broadcast under "rabenseifner" still works).
func TestAlgorithmNamedOverride(t *testing.T) {
	const lines = 13
	sys := ocbcast.New(ocbcast.Options{Algorithm: "rabenseifner"})
	want := stageVectors(sys, lines)
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	sys.Run(func(c *ocbcast.Core) {
		c.AllReduce(0, 1<<20, lines, ocbcast.SumInt64)
		c.Barrier()
		c.Broadcast(0, 1<<21, 2) // rabenseifner registers no bcast: default OC-Bcast
	})
	checkAllReduce(t, sys, lines, want)

	sys2 := ocbcast.New(ocbcast.Options{Algorithm: "ring"})
	n := sys2.N()
	nbytes := lines * ocbcast.CacheLineBytes
	blocks := make([][]byte, n)
	for c := 0; c < n; c++ {
		blocks[c] = make([]byte, nbytes)
		for i := range blocks[c] {
			blocks[c][i] = byte(c*7 + i + 3)
		}
		sys2.WritePrivate(c, c*nbytes, blocks[c])
	}
	sys2.Run(func(c *ocbcast.Core) {
		c.AllGather(0, lines)
	})
	for c := 0; c < n; c++ {
		for b := 0; b < n; b++ {
			if !bytes.Equal(sys2.ReadPrivate(c, b*nbytes, nbytes), blocks[b]) {
				t.Fatalf("ring override: core %d block %d mismatch", c, b)
			}
		}
	}
}

// TestAlgorithmAutoOneSided: the explicitly one-sided methods select
// within the OC family only — AllGatherOC under "auto" may run the ring,
// IAllReduceOC stays a working non-blocking handle.
func TestAlgorithmAutoOneSided(t *testing.T) {
	const lines = 5
	sys := ocbcast.New(ocbcast.Options{Algorithm: "auto"})
	n := sys.N()
	nbytes := lines * ocbcast.CacheLineBytes
	blocks := make([][]byte, n)
	for c := 0; c < n; c++ {
		blocks[c] = make([]byte, nbytes)
		for i := range blocks[c] {
			blocks[c][i] = byte(c*11 + i)
		}
		sys.WritePrivate(c, c*nbytes, blocks[c])
	}
	sys.Run(func(c *ocbcast.Core) {
		c.AllGatherOC(0, lines)
	})
	for c := 0; c < n; c++ {
		for b := 0; b < n; b++ {
			if !bytes.Equal(sys.ReadPrivate(c, b*nbytes, nbytes), blocks[b]) {
				t.Fatalf("auto AllGatherOC: core %d block %d mismatch", c, b)
			}
		}
	}

	sys2 := ocbcast.New(ocbcast.Options{Algorithm: "auto"})
	want := stageVectors(sys2, lines)
	sys2.Run(func(c *ocbcast.Core) {
		r := c.IAllReduceOC(0, lines, ocbcast.SumInt64)
		c.Compute(1)
		r.Wait()
	})
	checkAllReduce(t, sys2, lines, want)
}

func TestAlgorithmUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm did not panic")
		}
	}()
	ocbcast.New(ocbcast.Options{Algorithm: "definitely-not-registered"})
}

// TestTuneTable: the materialized decision table is well formed and
// includes the crossover ladder the paper's story is about.
func TestTuneTable(t *testing.T) {
	sys := ocbcast.New(ocbcast.Options{})
	entries := sys.Tune()
	if len(entries) == 0 {
		t.Fatal("empty plan")
	}
	seenOps := map[string]bool{}
	prev := map[string]int{}
	algs := map[string]bool{}
	for _, e := range entries {
		seenOps[e.Op] = true
		algs[e.Algorithm] = true
		if e.MaxLines <= prev[e.Op] {
			t.Fatalf("%s: non-increasing band edge %d", e.Op, e.MaxLines)
		}
		prev[e.Op] = e.MaxLines
		if e.PredictedUs <= 0 {
			t.Fatalf("%s@%d: non-positive prediction", e.Op, e.MaxLines)
		}
	}
	for _, op := range []string{"bcast", "reduce", "allreduce", "allgather"} {
		if !seenOps[op] {
			t.Errorf("plan missing op %s", op)
		}
	}
	for _, alg := range []string{"rabenseifner", "ring"} {
		if !algs[alg] {
			t.Errorf("plan never selects %s", alg)
		}
	}
}

// TestCompatTimingPinned is the public-API twin of the internal golden
// tests: with default options the registry-routed AllReduceOC must cost
// exactly the pre-registry simulated time (the engine-era golden value).
func TestCompatTimingPinned(t *testing.T) {
	sys := ocbcast.New(ocbcast.Options{})
	const lines = 256
	stageVectors(sys, lines)
	n := sys.N()
	starts := make([]float64, n)
	ends := make([]float64, n)
	sys.Run(func(c *ocbcast.Core) {
		c.Barrier()
		starts[c.ID()] = c.NowMicros()
		c.AllReduceOC(0, lines, ocbcast.SumInt64)
		ends[c.ID()] = c.NowMicros()
	})
	first, last := starts[0], ends[0]
	for i := 1; i < n; i++ {
		if starts[i] < first {
			first = starts[i]
		}
		if ends[i] > last {
			last = ends[i]
		}
	}
	if got := last - first; got != 1617.671 {
		t.Fatalf("default-options AllReduceOC(8KiB) = %v µs, want exactly 1617.671 (the golden snapshot)", got)
	}
}
