// Package noc models the SCC's 2D-mesh network-on-chip at link
// granularity. The paper's model charges only d·Lhop per packet because
// §3.3 showed the mesh is never a bottleneck at SCC scale; this package
// exists to let the simulator *demonstrate* that finding (the mesh-stress
// experiment) and to serve as an ablation: with detailed accounting on,
// results must match analytic mode within measurement noise.
package noc

import (
	"sort"

	"repro/internal/scc"
	"repro/internal/sim"
)

// Mesh tracks per-link FIFO occupancy for every directed link of a w×h
// tile grid. Links live in a preallocated slice indexed by a dense link
// id (tile × direction) rather than a map: Traverse reserves every link
// of every path in detailed-NoC mode, so the lookup is hot, and an array
// index costs no hashing and no per-key allocation. Resources are still
// created lazily on first use, which keeps the analytic mode (which
// never traverses) allocation-free and the link creation order — and
// therefore determinism — identical to the map version.
type Mesh struct {
	topo    scc.Topology
	linkSvc sim.Duration
	links   []*sim.Resource
}

// Directed link directions for the dense link id: east, west, north,
// south of the link's source tile.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// NewMesh creates a mesh over the given topology whose links serve one
// 32 B packet per linkSvc.
func NewMesh(topo scc.Topology, linkSvc sim.Duration) *Mesh {
	return &Mesh{
		topo:    topo,
		linkSvc: linkSvc,
		links:   make([]*sim.Resource, topo.NumTiles()*numDirs),
	}
}

// linkIndex maps a directed link between adjacent routers to its dense
// id: the source tile's id times the direction count plus the direction.
// Every XYPath link is adjacent by construction, so the mapping is total
// and injective over the links Traverse can visit.
func (m *Mesh) linkIndex(l scc.Link) int {
	dir := dirEast
	switch {
	case l.To.X == l.From.X+1:
		dir = dirEast
	case l.To.X == l.From.X-1:
		dir = dirWest
	case l.To.Y == l.From.Y+1:
		dir = dirNorth
	default:
		dir = dirSouth
	}
	return m.topo.TileID(l.From)*numDirs + dir
}

// linkAt reconstructs the directed link a dense id denotes.
func (m *Mesh) linkAt(idx int) scc.Link {
	from := m.topo.TileCoord(idx / numDirs)
	to := from
	switch idx % numDirs {
	case dirEast:
		to.X++
	case dirWest:
		to.X--
	case dirNorth:
		to.Y++
	case dirSouth:
		to.Y--
	}
	return scc.Link{From: from, To: to}
}

func (m *Mesh) link(l scc.Link) *sim.Resource {
	idx := m.linkIndex(l)
	r := m.links[idx]
	if r == nil {
		r = sim.NewResource(l.String(), m.linkSvc)
		m.links[idx] = r
	}
	return r
}

// Traverse books npackets packets on every link of the X-Y path from src
// to dst starting at time t, and returns the time the last packet clears
// the last link. With an idle mesh this equals
// t + hops·linkSvc + (npackets-1)·linkSvc (pipelined cut-through); the
// caller combines it (by max) with the analytic d·Lhop cost, which is
// larger on an idle mesh because Lhop ≥ linkSvc.
func (m *Mesh) Traverse(t sim.Time, src, dst scc.Coord, npackets int) sim.Time {
	if npackets <= 0 {
		return t
	}
	path := m.topo.XYPath(src, dst)
	if len(path) == 0 {
		return t
	}
	// Virtual cut-through: the head packet advances to the next link
	// one link-service time after this link starts serving it, while
	// follow-on packets pipeline behind. On an idle mesh the whole
	// transfer clears in (hops + npackets - 1) link-service times.
	head := t // head packet arrival at the next link's input
	var last sim.Time
	for _, l := range path {
		finish := m.link(l).Reserve(head, npackets)
		start := finish - sim.Duration(int64(npackets)*int64(m.linkSvc))
		head = start + m.linkSvc
		last = finish
	}
	return last
}

// LinkQueueStats returns aggregate queueing across all links with at least
// one reservation, sorted by link name — used to verify the paper's "mesh
// is not a source of contention" claim.
func (m *Mesh) LinkQueueStats() []LinkStat {
	var out []LinkStat
	for idx, r := range m.links {
		if r == nil {
			continue
		}
		res, units, busy, queued := r.Stats()
		out = append(out, LinkStat{
			Link:         m.linkAt(idx),
			Reservations: res,
			Packets:      units,
			Busy:         busy,
			Queued:       queued,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link.String() < out[j].Link.String() })
	return out
}

// LinkStat summarizes one link's utilisation.
type LinkStat struct {
	Link         scc.Link
	Reservations int64
	Packets      int64
	Busy         sim.Duration
	Queued       sim.Duration
}

// Reset clears all link schedules and statistics.
func (m *Mesh) Reset() {
	for _, r := range m.links {
		if r != nil {
			r.Reset()
		}
	}
}
