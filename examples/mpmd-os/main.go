// mpmd-os sketches the paper's §7 use case: a many-core OS where a
// coordinator core pushes a configuration image to worker cores that are
// busy with their own (MPMD) work. Workers do not pre-post a matching
// broadcast call — they are activated by inter-core interrupts carrying
// an activation descriptor, OC-Bcast's MPMD extension.
package main

import (
	"bytes"
	"fmt"
	"log"

	ocbcast "repro"
)

func main() {
	const lines = 128 // a 4 KiB "policy image"

	sys := ocbcast.New(ocbcast.Options{})
	image := bytes.Repeat([]byte("policy-v2:"), lines*ocbcast.CacheLineBytes/10+1)
	image = image[:lines*ocbcast.CacheLineBytes]
	sys.WritePrivate(0, 0, image)

	type report struct {
		core      int
		busyUntil float64
		doneAt    float64
	}
	reports := make([]report, sys.N())

	sys.Run(func(c *ocbcast.Core) {
		if c.ID() == 0 {
			// The coordinator decides, at its own pace, to push the
			// new image to everyone.
			c.Compute(50)
			c.Announce(0, lines)
			return
		}
		// Workers crunch their own jobs; the interrupt pulls them in.
		c.Compute(float64(c.ID() % 7 * 10))
		busy := c.NowMicros()
		root, addr, n := c.HandleAnnounce()
		reports[c.ID()] = report{c.ID(), busy, c.NowMicros()}
		if root != 0 || addr != 0 || n != lines {
			log.Fatalf("core %d decoded wrong descriptor (%d,%d,%d)", c.ID(), root, addr, n)
		}
	})

	var last float64
	for i := 1; i < sys.N(); i++ {
		if !bytes.Equal(sys.ReadPrivate(i, 0, len(image)), image) {
			log.Fatalf("core %d image corrupted", i)
		}
		if reports[i].doneAt > last {
			last = reports[i].doneAt
		}
	}
	fmt.Printf("coordinator pushed a %d-byte image to %d busy workers\n", len(image), sys.N()-1)
	fmt.Printf("all workers updated by t=%.2f µs (virtual), no pre-posted receives\n", last)
}
