package calibrate

import (
	"math"
	"testing"

	"repro/internal/scc"
	"repro/internal/sim"
)

func TestMicrobenchCoverage(t *testing.T) {
	samples := Microbench(scc.DefaultConfig(), nil)
	// 9 distances × 4 default sizes × 4 op families.
	if want := 9 * 4 * 4; len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	for _, s := range samples {
		if s.Duration <= 0 {
			t.Fatalf("non-positive duration in sample %+v", s)
		}
	}
}

func TestCoreAtDistance(t *testing.T) {
	for d := 1; d <= 9; d++ {
		c := coreAtDistance(d)
		if got := scc.CoreDistance(0, c); got != d {
			t.Errorf("coreAtDistance(%d) = core %d at distance %d", d, c, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("distance 10 did not panic")
		}
	}()
	coreAtDistance(10)
}

// TestFitRecoversTable1 is the Table 1 reproduction: fitting the model to
// simulated microbenchmarks must recover the configured parameters almost
// exactly (the simulator charges exactly the analytic costs when
// contention is off, so R² ≈ 1 and parameters match to rounding).
func TestFitRecoversTable1(t *testing.T) {
	samples := Microbench(scc.DefaultConfig(), []int{1, 2, 4, 8, 16, 32})
	fit, err := FitParams(samples)
	if err != nil {
		t.Fatal(err)
	}
	truth := scc.Table1()
	check := func(name string, got, want sim.Duration) {
		t.Helper()
		g, w := got.Microseconds(), want.Microseconds()
		if math.Abs(g-w) > 1e-4 {
			t.Errorf("%s fitted %.6f µs, configured %.6f µs", name, g, w)
		}
	}
	check("Lhop", fit.Params.Lhop, truth.Lhop)
	check("ompb", fit.Params.OMpb, truth.OMpb)
	check("omem_w", fit.Params.OMemW, truth.OMemW)
	check("omem_r", fit.Params.OMemR, truth.OMemR)
	check("ompb_put", fit.Params.OMpbPut, truth.OMpbPut)
	check("ompb_get", fit.Params.OMpbGet, truth.OMpbGet)
	check("omem_put", fit.Params.OMemPut, truth.OMemPut)
	check("omem_get", fit.Params.OMemGet, truth.OMemGet)
	for fam, r2 := range fit.R2 {
		if r2 < 0.999999 {
			t.Errorf("family %s R² = %v, want ≈ 1", fam, r2)
		}
	}
}

// TestFitRecoversPerturbedParams: calibration must work for parameter
// sets other than Table 1 (it fits, not memorizes).
func TestFitRecoversPerturbedParams(t *testing.T) {
	cfg := scc.DefaultConfig()
	cfg.Params.Lhop = sim.Micros(0.009)
	cfg.Params.OMpb = sim.Micros(0.2)
	cfg.Params.OMemR = sim.Micros(0.35)
	samples := Microbench(cfg, []int{1, 4, 16})
	fit, err := FitParams(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Params.Lhop.Microseconds()-0.009) > 1e-4 {
		t.Errorf("Lhop fitted %.6f, want 0.009", fit.Params.Lhop.Microseconds())
	}
	if math.Abs(fit.Params.OMpb.Microseconds()-0.2) > 1e-4 {
		t.Errorf("ompb fitted %.6f, want 0.2", fit.Params.OMpb.Microseconds())
	}
	if math.Abs(fit.Params.OMemR.Microseconds()-0.35) > 1e-4 {
		t.Errorf("omem_r fitted %.6f, want 0.35", fit.Params.OMemR.Microseconds())
	}
}

func TestFitParamsMissingFamily(t *testing.T) {
	samples := Microbench(scc.DefaultConfig(), []int{1, 4})
	var getOnly []Sample
	for _, s := range samples {
		if s.Op == "mpbGet" {
			getOnly = append(getOnly, s)
		}
	}
	if _, err := FitParams(getOnly); err == nil {
		t.Fatal("fit with missing families did not fail")
	}
}
