package model

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/sim"
)

func table1Model() Model { return New(scc.Table1()) }

func TestPerLineFormulas(t *testing.T) {
	m := table1Model()
	// Hand-computed from Table 1: ompb=0.126, Lhop=0.005.
	if got := m.CMpbR(4); got != sim.Micros(0.126+8*0.005) {
		t.Fatalf("CMpbR(4) = %v, want 0.166µs", got)
	}
	if got := m.LMpbW(4); got != sim.Micros(0.126+4*0.005) {
		t.Fatalf("LMpbW(4) = %v, want 0.146µs", got)
	}
	if got := m.CMemW(2); got != sim.Micros(0.461+4*0.005) {
		t.Fatalf("CMemW(2) = %v, want 0.481µs", got)
	}
	if got := m.CMemR(1); got != sim.Micros(0.208+2*0.005) {
		t.Fatalf("CMemR(1) = %v, want 0.218µs", got)
	}
}

func TestOperationFormulas(t *testing.T) {
	m := table1Model()
	// Formula 7 with n=4, d=3:
	want := sim.Micros(0.069) + 4*m.CMpbR(1) + 4*m.CMpbW(3)
	if got := m.CMpbPut(4, 3); got != want {
		t.Fatalf("CMpbPut(4,3) = %v, want %v", got, want)
	}
	// Latency excludes the last ack leg: C - d·Lhop (Formulas 9/2/1).
	if got := m.LMpbPut(4, 3); got != want-sim.Micros(3*0.005) {
		t.Fatalf("LMpbPut(4,3) = %v, want %v", got, want-sim.Micros(0.015))
	}
	// Formula 11 with n=16, d=1 — the §5.3 throughput denominator term.
	wantGet := sim.Micros(0.33) + 16*m.CMpbR(1) + 16*m.CMpbW(1)
	if got := m.CMpbGet(16, 1); got != wantGet {
		t.Fatalf("CMpbGet(16,1) = %v, want %v", got, wantGet)
	}
	// Formula 12.
	wantMemGet := sim.Micros(0.095) + 8*m.CMpbR(2) + 8*m.CMemW(1)
	if got := m.CMemGet(8, 2, 1); got != wantMemGet {
		t.Fatalf("CMemGet(8,2,1) = %v, want %v", got, wantMemGet)
	}
}

// TestTable2Throughput reproduces the paper's Table 2: OC-Bcast ≈
// 34–36 MB/s (k-independent), scatter-allgather ≈ 13.4 MB/s, i.e. an
// almost threefold advantage.
func TestTable2Throughput(t *testing.T) {
	m := table1Model()
	bp := DefaultBcastParams()
	oc := LinesPerSecToMBps(m.OCBcastThroughput(bp))
	sag := LinesPerSecToMBps(m.SAGThroughput(bp))
	if oc < 33 || oc > 38 {
		t.Errorf("OC-Bcast modeled throughput = %.2f MB/s, paper Table 2 ≈ 34.3–35.9", oc)
	}
	if sag < 12 || sag > 15 {
		t.Errorf("scatter-allgather modeled throughput = %.2f MB/s, paper Table 2 = 13.38", sag)
	}
	ratio := oc / sag
	if ratio < 2.4 || ratio > 3.2 {
		t.Errorf("throughput ratio = %.2fx, paper: almost 3x", ratio)
	}
}

// TestFigure6Shape checks the qualitative properties of Figure 6:
// OC-Bcast beats binomial at every size; the gap grows with message
// size; k=7 beats k=2; k=47 is worst for tiny messages (polling cost)
// but best at the 96–192-line range (depth 1).
func TestFigure6Shape(t *testing.T) {
	m := table1Model()
	bp := DefaultBcastParams()
	for _, n := range []int{1, 8, 32, 96, 160, 192} {
		bin := m.BinomialLatency(bp, n)
		for _, k := range []int{2, 7, 47} {
			oc := m.OCBcastLatency(bp, n, k)
			if oc >= bin {
				t.Errorf("n=%d k=%d: OC %v not below binomial %v", n, k, oc, bin)
			}
		}
	}
	// Gap grows with size (compare relative gap at 1 vs 192 lines).
	gap := func(n int) float64 {
		bin := m.BinomialLatency(bp, n)
		oc := m.OCBcastLatency(bp, n, 7)
		return float64(bin-oc) / float64(bin)
	}
	if gap(192) <= gap(1) {
		t.Errorf("OC advantage should grow with size: gap(1)=%.2f gap(192)=%.2f", gap(1), gap(192))
	}
	// k=7 < k=2 at 96 lines (depth 2 vs 5).
	if m.OCBcastLatency(bp, 96, 7) >= m.OCBcastLatency(bp, 96, 2) {
		t.Error("k=7 should beat k=2 at 96 lines")
	}
	// k=47 worst for 1 line (root polls 47 flags).
	l47, l7, l2 := m.OCBcastLatency(bp, 1, 47), m.OCBcastLatency(bp, 1, 7), m.OCBcastLatency(bp, 1, 2)
	if l47 <= l7 || l47 <= l2 {
		t.Errorf("k=47 must be slowest at 1 line: k47=%v k7=%v k2=%v", l47, l7, l2)
	}
	// k=47 best at 96 lines in the pure model (Fig. 6a: model predicts
	// a visible gap that the experiment then erases via contention).
	if m.OCBcastLatency(bp, 96, 47) >= m.OCBcastLatency(bp, 96, 7) {
		t.Error("model should favor k=47 at 96 lines (depth 1 vs 2)")
	}
}

// TestSlopeChangesAtMoc: Figure 6a notes the latency slope changes past
// Moc = 96 lines (second chunk enters the pipeline).
func TestSlopeChangesAtMoc(t *testing.T) {
	m := table1Model()
	bp := DefaultBcastParams()
	// Marginal cost per line below vs above the chunk boundary.
	below := m.OCBcastLatency(bp, 96, 7) - m.OCBcastLatency(bp, 95, 7)
	above := m.OCBcastLatency(bp, 98, 7) - m.OCBcastLatency(bp, 97, 7)
	if above >= below {
		t.Errorf("slope above Moc (%v/line) should be below the pre-Moc slope (%v/line): pipelining absorbs deeper levels", above, below)
	}
}

func TestNotifyDepth(t *testing.T) {
	// Children 0,1 hear in one flag set; 2..5 in two; 6..13 in three
	// (Figure 5's binary notification tree).
	wants := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 2, 5: 2, 6: 3, 13: 3, 14: 4}
	for j, want := range wants {
		if got := notifyDepth(j); got != want {
			t.Errorf("notifyDepth(%d) = %d, want %d", j, got, want)
		}
	}
	if lastNotifyDepth(7) != 3 { // k=7: last child heard after 3 sets
		t.Errorf("lastNotifyDepth(7) = %d, want 3", lastNotifyDepth(7))
	}
	if lastNotifyDepth(0) != 0 {
		t.Errorf("lastNotifyDepth(0) = %d, want 0", lastNotifyDepth(0))
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 48: 6, 64: 6}
	for p, want := range cases {
		if got := ceilLog2(p); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	m := table1Model()
	bp := DefaultBcastParams()
	bp.P = 1
	if m.OCBcastLatency(bp, 10, 7) != 0 || m.BinomialLatency(bp, 10) != 0 {
		t.Error("single-core broadcast should cost 0")
	}
	bp = DefaultBcastParams()
	if m.OCBcastLatency(bp, 0, 7) != 0 {
		t.Error("empty message should cost 0")
	}
}
