package harness

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/scc"
)

// Fig6Ks are the OC-Bcast fan-outs plotted in Figure 6.
var Fig6Ks = []int{2, 7, 47}

// Fig6Sizes is the x-axis of Figure 6a (cache lines, up to 192 = 2·Moc).
var Fig6Sizes = []int{1, 4, 8, 16, 24, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192}

// Fig6 regenerates Figure 6 (and its 6b zoom): the *modeled* broadcast
// latency of OC-Bcast (k = 2, 7, 47) versus the RCCE_comm binomial tree,
// from the analytical model only — no simulation.
func Fig6(cfg scc.Config) *Table {
	mdl := model.New(cfg.Params)
	bp := model.DefaultBcastParams()

	tbl := &Table{
		Title:   "Figure 6 — modeled broadcast latency (µs), P = 48",
		Columns: []string{"CL", "k=2", "k=7", "k=47", "binomial"},
		Notes: []string{
			"Analytical model (Formulas 13-14 + notification costs).",
			"Paper shape: OC-Bcast below binomial everywhere; gap grows with",
			"size; k=47 worst at 1 CL (root polls 47 flags); slope changes",
			"past Moc = 96 CL.",
		},
	}
	for _, n := range Fig6Sizes {
		row := []string{fmt.Sprint(n)}
		for _, k := range Fig6Ks {
			row = append(row, fmt.Sprintf("%.2f", mdl.OCBcastLatency(bp, n, k).Microseconds()))
		}
		row = append(row, fmt.Sprintf("%.2f", mdl.BinomialLatency(bp, n).Microseconds()))
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Table2 regenerates the paper's Table 2: modeled peak broadcast
// throughput in MB/s for OC-Bcast (k-independent, Formula 15) and
// two-sided scatter-allgather (Formula 16).
func Table2(cfg scc.Config) *Table {
	mdl := model.New(cfg.Params)
	bp := model.DefaultBcastParams()
	oc := model.LinesPerSecToMBps(mdl.OCBcastThroughput(bp))
	sag := model.LinesPerSecToMBps(mdl.SAGThroughput(bp))

	tbl := &Table{
		Title:   "Table 2 — modeled peak broadcast throughput (MB/s)",
		Columns: []string{"algorithm", "throughput MB/s"},
		Notes: []string{
			fmt.Sprintf("OC-Bcast / scatter-allgather ratio: %.2fx (paper: almost 3x;", oc/sag),
			"paper values 34.30-35.88 vs 13.38 MB/s).",
		},
	}
	tbl.AddRow("OC-Bcast, k=2", fmt.Sprintf("%.2f", oc))
	tbl.AddRow("OC-Bcast, k=7", fmt.Sprintf("%.2f", oc))
	tbl.AddRow("OC-Bcast, k=47", fmt.Sprintf("%.2f", oc))
	tbl.AddRow("scatter-allgather", fmt.Sprintf("%.2f", sag))
	return tbl
}
