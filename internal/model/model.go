// Package model implements the paper's LogP-based analytical performance
// model (§3 Figure 2, §5 Figure 7): per-operation put/get cost formulas,
// broadcast latency predictors for OC-Bcast and the binomial tree, and
// peak-throughput predictors for OC-Bcast and scatter-allgather. It is
// pure arithmetic — no simulation — and regenerates Figure 6 and Table 2.
//
// The formulas' hop terms are functions of the chip geometry:
// BcastParamsFor / ReduceParamsFor derive the distance parameters from a
// scc.Topology (mean tree-neighbour and memory-controller distances), so
// the same closed forms predict latency on meshes far larger than the
// 48-core chip the paper measured (see the fig-scale experiment).
package model

import (
	"repro/internal/scc"
	"repro/internal/sim"
)

// Model evaluates the paper's cost formulas for a given parameter set.
type Model struct {
	P scc.Params
}

// New creates a model from timing parameters (typically scc.Table1()).
func New(p scc.Params) Model { return Model{P: p} }

// --- Per-line primitives (Formulas 1–6) ---

// LMpbW is Formula 1: the latency of writing one line to an MPB at
// distance d.
func (m Model) LMpbW(d int) sim.Duration { return m.P.OMpb + sim.Duration(d)*m.P.Lhop }

// CMpbW is Formula 2: the completion time of that write (incl. ack).
func (m Model) CMpbW(d int) sim.Duration { return m.P.OMpb + sim.Duration(2*d)*m.P.Lhop }

// CMpbR is Formula 3: read one line from an MPB at distance d.
func (m Model) CMpbR(d int) sim.Duration { return m.P.OMpb + sim.Duration(2*d)*m.P.Lhop }

// LMemW is Formula 4: the latency of writing one line to off-chip memory
// at controller distance d.
func (m Model) LMemW(d int) sim.Duration { return m.P.OMemW + sim.Duration(d)*m.P.Lhop }

// CMemW is Formula 5: the completion time of that write.
func (m Model) CMemW(d int) sim.Duration { return m.P.OMemW + sim.Duration(2*d)*m.P.Lhop }

// CMemR is Formula 6: read one line from off-chip memory at distance d.
func (m Model) CMemR(d int) sim.Duration { return m.P.OMemR + sim.Duration(2*d)*m.P.Lhop }

// --- Whole-operation formulas (7–12); sizes in cache lines ---

// CMpbPut is Formula 7: put of n lines from the local MPB to an MPB at
// distance dDst.
func (m Model) CMpbPut(n, dDst int) sim.Duration {
	return m.P.OMpbPut + sim.Duration(n)*m.CMpbR(1) + sim.Duration(n)*m.CMpbW(dDst)
}

// CMemPut is Formula 8: put of n lines from private memory (controller
// distance dSrc) to an MPB at distance dDst.
func (m Model) CMemPut(n, dSrc, dDst int) sim.Duration {
	return m.P.OMemPut + sim.Duration(n)*m.CMemR(dSrc) + sim.Duration(n)*m.CMpbW(dDst)
}

// LMpbPut is Formula 9: the put's latency (last line visible remotely).
func (m Model) LMpbPut(n, dDst int) sim.Duration {
	return m.CMpbPut(n, dDst) - (m.CMpbW(dDst) - m.LMpbW(dDst))
}

// LMemPut is Formula 10.
func (m Model) LMemPut(n, dSrc, dDst int) sim.Duration {
	return m.CMemPut(n, dSrc, dDst) - (m.CMpbW(dDst) - m.LMpbW(dDst))
}

// CMpbGet is Formula 11: get of n lines from an MPB at distance dSrc into
// the local MPB. Latency equals completion for gets.
func (m Model) CMpbGet(n, dSrc int) sim.Duration {
	return m.P.OMpbGet + sim.Duration(n)*m.CMpbR(dSrc) + sim.Duration(n)*m.CMpbW(1)
}

// CMemGet is Formula 12: get of n lines from an MPB at distance dSrc into
// private memory at controller distance dDst.
func (m Model) CMemGet(n, dSrc, dDst int) sim.Duration {
	return m.P.OMemGet + sim.Duration(n)*m.CMpbR(dSrc) + sim.Duration(n)*m.CMemW(dDst)
}
