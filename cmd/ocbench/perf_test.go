package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// Baselines and measurements for the gate tests: a healthy measurement
// exactly on the baseline, mutated per case.
func basePerf() workloadPerf {
	return workloadPerf{Iters: 40, MsPerSim: 0.5, SimsPerSec: 2000, AllocsPerSim: 300, SimulatedUs: 156.594}
}

func gates() perfGates {
	return perfGates{AllocMaxPct: 2, WallMaxPct: 50, AllocCap: 500, FloorPct: 60}
}

func TestCheckPerfPasses(t *testing.T) {
	meas := basePerf()
	if _, err := checkPerf(basePerf(), meas, gates()); err != nil {
		t.Fatalf("on-baseline measurement failed the gate: %v", err)
	}
}

func TestCheckPerfGates(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*workloadPerf)
		want   string // substring of the expected error; "" = pass
	}{
		{"simulated time drift", func(w *workloadPerf) { w.SimulatedUs += 0.001 }, "simulated time drifted"},
		{"alloc drift over pct and abs", func(w *workloadPerf) { w.AllocsPerSim += 50 }, "allocations per simulation changed"},
		{"alloc drift within abs slack", func(w *workloadPerf) { w.AllocsPerSim += allocSlackAbs }, ""},
		{"wall clock blowup", func(w *workloadPerf) { w.MsPerSim *= 1.6 }, "wall clock per simulation"},
		// 1.4x slower stays under the +50% wall gate but sinks sims/s
		// (1000/0.7 ≈ 1428) below the 60% floor (1200)? No — 1428 > 1200,
		// so the floor needs a harsher slowdown than the wall gate allows:
		// the floor only bites when the baseline sims/s and ms/sim
		// disagree (different hosts), modeled by raising SimsPerSec.
		{"sims/s floor", func(w *workloadPerf) { w.MsPerSim *= 1.4 }, ""},
	}
	for _, tc := range cases {
		meas := basePerf()
		tc.mutate(&meas)
		_, err := checkPerf(basePerf(), meas, gates())
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected gate failure: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Absolute cap: a baseline that crept over the budget fails even with
	// zero drift — the cap is independent of the relative gate.
	base := basePerf()
	base.AllocsPerSim = 501
	meas := basePerf()
	meas.AllocsPerSim = 501
	if _, err := checkPerf(base, meas, gates()); err == nil || !strings.Contains(err.Error(), "over the absolute budget") {
		t.Errorf("alloc cap: error %v, want substring %q", err, "over the absolute budget")
	}

	// Floor violation proper: baseline claims far higher sims/s than the
	// measured ms/sim implies (e.g. the baseline host was faster).
	base = basePerf()
	base.SimsPerSec = 4000 // floor at 60% = 2400 sims/s
	meas = basePerf()      // measures 1000/0.5 = 2000 sims/s
	if _, err := checkPerf(base, meas, gates()); err == nil || !strings.Contains(err.Error(), "below the floor") {
		t.Errorf("floor: error %v, want substring %q", err, "below the floor")
	}
}

// TestBcastBaselineShapes pins the file-shape contract: the verifier
// reads the engine section when present, falls back to the legacy flat
// fields, and reports a usable error when neither exists.
func TestBcastBaselineShapes(t *testing.T) {
	engineJSON := `{
		"engine": {"bcast": {"iters": 40, "ms_per_sim": 0.5, "sims_per_sec": 2000,
			"allocs_per_sim": 300, "simulated_us": 156.594}},
		"bcast_ms_per_sim": 0.9, "allocs_per_bcast": 12,
		"bcast_sims_per_sec": 1111, "simulated_us_bcast": 156.594}`
	legacyJSON := `{
		"bcast_iters": 40, "bcast_ms_per_sim": 0.55, "allocs_per_bcast": 12,
		"bcast_sims_per_sec": 1813.2, "simulated_us_bcast": 156.594}`
	emptyJSON := `{"timestamp": "2026-01-01T00:00:00Z"}`

	var parsed simPerf
	if err := json.Unmarshal([]byte(engineJSON), &parsed); err != nil {
		t.Fatal(err)
	}
	got, err := bcastBaseline(parsed)
	if err != nil {
		t.Fatalf("engine shape: %v", err)
	}
	if got.MsPerSim != 0.5 || got.AllocsPerSim != 300 || got.SimsPerSec != 2000 {
		t.Errorf("engine shape: picked %+v, want the engine section, not the flat fields", got)
	}

	parsed = simPerf{}
	if err := json.Unmarshal([]byte(legacyJSON), &parsed); err != nil {
		t.Fatal(err)
	}
	got, err = bcastBaseline(parsed)
	if err != nil {
		t.Fatalf("legacy shape: %v", err)
	}
	if got.MsPerSim != 0.55 || got.AllocsPerSim != 12 || got.SimsPerSec != 1813.2 {
		t.Errorf("legacy shape: picked %+v, want the flat fields", got)
	}

	parsed = simPerf{}
	if err := json.Unmarshal([]byte(emptyJSON), &parsed); err != nil {
		t.Fatal(err)
	}
	if _, err = bcastBaseline(parsed); err == nil {
		t.Error("empty file: want an error, got a baseline")
	}
}

// TestAppendHistory pins the one-entry-per-label contract.
func TestAppendHistory(t *testing.T) {
	h := appendHistory(nil, historyEntry{Label: "PR 9", BcastSimsPerSec: 1813})
	h = appendHistory(h, historyEntry{Label: "PR 10", BcastSimsPerSec: 3000})
	h = appendHistory(h, historyEntry{Label: "PR 10", BcastSimsPerSec: 3800})
	if len(h) != 2 {
		t.Fatalf("history has %d entries, want 2 (same-label replace)", len(h))
	}
	if h[0].Label != "PR 9" || h[1].Label != "PR 10" || h[1].BcastSimsPerSec != 3800 {
		t.Errorf("history %+v: want PR 9 kept and PR 10 replaced", h)
	}
}
