package mem

import "repro/internal/sim"

// This file is the state-machine face of the WaitU64GE/WaitU64EQ flag
// waits: inline frames (sim.Frame) cannot sit in waitOp's blocking
// loop, so they drive the same satisfiedAt / embedded-record machinery
// through explicit check / arm / disarm steps and carry the loop in
// their own program counter. The goroutine form in waitOp remains the
// executable spec; the equivalence tests pin both byte-identical.

// WaitSatisfiedAt is one waitOp loop iteration's satisfaction check:
// the earliest time ≥ now at which the line's leading uint64 compares
// ≥ val (or == val when eq), considering pending writes. ok is false
// if no current or pending state satisfies it, in which case the
// caller should ArmWait and block.
func (m *MPB) WaitSatisfiedAt(line int, now sim.Time, eq bool, val uint64) (te sim.Time, ok bool) {
	m.checkLine(line)
	op := waitGE
	if eq {
		op = waitEQ
	}
	return m.satisfiedAt(line, now, op, val, nil)
}

// ArmWait registers p as blocked on the line's watch key with the same
// condition waitOp would use: the MPB's embedded closure-free record
// when free, or a one-shot allocated condition when a second process
// is already parked through it. It reports whether the embedded record
// was taken; the caller passes that to DisarmWait when the machine
// wakes, mirroring waitOp's release of the record after BlockCond
// returns. The caller must have just seen WaitSatisfiedAt report not
// ok at p.Now() and must return sim.StepBlock from the same Step.
func (m *MPB) ArmWait(p *sim.Proc, line int, eq bool, val uint64) (embedded bool) {
	key := m.watchKey(line)
	op := waitGE
	if eq {
		op = waitEQ
	}
	w := &m.wait
	if w.active {
		p.MachineBlock(key, &oneShotWait{m: m, p: p, line: line, op: op, val: val})
		return false
	}
	w.m, w.p, w.line, w.op, w.val, w.pred = m, p, line, op, val, nil
	w.active = true
	p.MachineBlock(key, w)
	return true
}

// DisarmWait releases the embedded wait record after a wake, the
// machine-mode counterpart of waitOp's post-BlockCond cleanup. Pass
// the embedded result of the matching ArmWait; a one-shot condition
// needs no release (the signal scan already dropped it).
func (m *MPB) DisarmWait(embedded bool) {
	if embedded {
		m.wait.active = false
		m.wait.pred = nil
	}
}

// oneShotWait is ArmWait's fallback condition when the embedded record
// is taken — the allocated analogue of waitOp's fallback closure.
type oneShotWait struct {
	m    *MPB
	p    *sim.Proc
	line int
	op   uint8
	val  uint64
}

func (c *oneShotWait) Holds() bool {
	_, ok := c.m.satisfiedAt(c.line, c.p.Now(), c.op, c.val, nil)
	return ok
}
