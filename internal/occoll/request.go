package occoll

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// The progress engine.
//
// A non-blocking collective is issued with IBcast/IReduce/IAllReduce/
// IScatter/IGather/IAllGather, which returns a Request handle. Issuing
// validates the arguments, claims the next MPB lane round-robin, zeroes
// the lane's flags, runs the begin barrier, and then starts the lane
// protocol — the same pipelined k-ary state machine the blocking
// operation runs — but parks it at the first flag wait whose flag has not
// arrived yet instead of blocking the simulated core.
//
// The parked protocol is advanced only when the core calls Progress,
// Request.Test or Request.Wait (MPI-style: communication progresses
// inside library calls). Progress and Test poll the pending flag with
// rma.TryFlagGE — a failed probe costs no virtual time, a successful one
// charges the same single C^mpb_r(1) poll read the blocking path charges
// — and let the protocol run until its next unsatisfied wait. Wait
// switches the protocol's waits to rma.WaitFlagGE, which parks the
// simulated proc on the engine's run queue (internal/sim's indexed heap)
// until a peer's flag write signals the watched MPB line; the blocking
// collectives are exactly issue + Wait, which is why their simulated
// timings are byte-identical to the pre-engine run-to-completion loops.
//
// Each protocol runs on its own goroutine, but exactly one goroutine per
// simulated core is ever runnable: control transfers synchronously
// between the core's body function and a request's protocol through the
// resume/yield channel pair, so the protocol is a resumable state machine
// whose program counter is its goroutine stack. Determinism is untouched
// — the simulated proc is embodied by exactly one goroutine at a time.

// waitMode selects how a request protocol's flag waits behave.
type waitMode int

const (
	// modeTry polls once with rma.TryFlagGE and parks the protocol
	// coroutine (yielding back to the driver) when the flag has not
	// arrived — the Test/Progress path.
	modeTry waitMode = iota
	// modeBlock waits with rma.WaitFlagGE, parking the simulated proc on
	// the scheduler until the flag write arrives — the Wait path.
	modeBlock
	// modeAbort makes the protocol unwind with errAbandoned so its
	// goroutine exits — Finish's cleanup for leaked requests.
	modeAbort
)

// errAbandoned unwinds an abandoned protocol coroutine; it never escapes
// the request (body swallows it).
var errAbandoned = errors.New("occoll: request abandoned")

// Request is the handle of one in-flight non-blocking collective. A
// request must be completed — observed by exactly one successful Test or
// one Wait — before the issuing core's body returns; the handle is dead
// afterwards, and reusing it panics (see Wait and Test).
type Request struct {
	x    *Collectives
	op   string
	lane *lane

	// The protocol program: a static per-operation function plus its
	// arguments, carried in the frame (instead of a per-issue closure)
	// so a warmed issue loop allocates nothing here.
	run   func(*Request)
	tree  core.Tree
	addr  int
	lines int
	rop   ReduceOp

	mode     waitMode
	done     bool // protocol locally complete (lane drained)
	consumed bool // completion observed by Wait or a true Test

	// pendLine/pendSeq describe the flag wait the protocol is parked on
	// (valid while parked in modeTry).
	pendLine int
	pendSeq  uint64

	// obsID is the request's async-span id when tracing is on (0 = off):
	// the span runs from issue to protocol completion, overlapping other
	// requests on the same core's track.
	obsID int64

	panicVal any
	resume   chan struct{} // driver -> protocol: run
	yield    chan struct{} // protocol -> driver: parked or finished

	// start spawns the protocol coroutine: a zero-argument closure over
	// the frame, built once per frame and kept across recycles. A go
	// statement on a zero-arg func value allocates nothing, whereas
	// `go f(r)` heap-allocates a hidden wrapper closure per issue.
	start func()
}

// Op reports the name of the collective the request was issued by (e.g.
// "IAllReduce"), for error messages and tests.
func (r *Request) Op() string { return r.op }

// issue starts a non-blocking collective: argument validation, lane
// claim, begin (flag zeroing + barrier), then the protocol coroutine,
// eagerly advanced to its first unsatisfied flag wait so communication
// starts at issue time.
func (x *Collectives) issue(op string, root, addr, lines int, rop ReduceOp, run func(*Request)) *Request {
	if x.finished {
		panic(fmt.Sprintf("occoll: %s issued after its core finished", op))
	}
	if !x.checkArgs(root, addr, lines) {
		// Trivial 1-core chip: the collective is a completed no-op.
		return &Request{x: x, op: op, done: true}
	}
	l := x.lanes[int(x.nissued)%len(x.lanes)]
	x.nissued++
	l.issues++
	if l.req != nil && !l.req.done {
		// The lane's previous collective is still in flight: drive it to
		// local completion before reusing the lane. Deterministic and
		// symmetric — every core drives its own previous request at the
		// same issue index — so all cores still agree on lane contents.
		l.req.drive()
	}
	r := x.newRequest()
	r.x, r.op, r.lane = x, op, l
	r.run, r.addr, r.lines, r.rop = run, addr, lines, rop
	if o := x.core.Obs(); o != nil {
		r.obsID = o.AsyncID()
		o.AsyncBegin(r.obsID, x.core.ID(), int64(x.core.Now()), "occoll", op,
			obs.Arg{Key: "lane", Val: int64(l.idx)}, obs.Arg{Key: "lines", Val: int64(lines)})
	}
	l.req = r
	r.tree = l.begin(root)
	go r.start()
	x.compactReqs() // keep the list bounded by in-flight requests
	x.reqs = append(x.reqs, r)
	r.advance(modeTry)
	if o := x.core.Obs(); o != nil {
		o.Counter(x.core.ID(), int64(x.core.Now()), "occoll", "inflight", int64(x.Outstanding()))
	}
	return r
}

// newRequest returns a recycled request frame when one is free, else a
// fresh one with its resume/yield channel pair. Recycled frames are
// zeroed except for the channels; the caller fills x/op/lane.
func (x *Collectives) newRequest() *Request {
	if n := len(x.freeReqs); n > 0 {
		r := x.freeReqs[n-1]
		x.freeReqs[n-1] = nil
		x.freeReqs = x.freeReqs[:n-1]
		*r = Request{resume: r.resume, yield: r.yield, start: r.start}
		return r
	}
	r := &Request{
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	r.start = func() { r.body() }
	return r
}

// reqFreeListMax bounds the free list; a serial issue/Wait loop keeps it
// at one or two entries, so anything beyond a few lanes' worth is churn
// from an unusual burst and is left to the garbage collector.
const reqFreeListMax = 16

// compactReqs drops fully finished requests — protocol done AND handle
// consumed — from the outstanding list, bounding it by the number of
// requests still in flight or awaiting their Wait/Test, and recycles
// the dropped frames. Done-but-unconsumed requests are kept so Finish
// can flag them as leaked.
//
// A recycled frame means a stale handle kept across a later issue
// aliases the new request, so the double-completion panic in
// checkUsable is only guaranteed until the core's next issue; the
// request contract (a handle is dead after its Wait or true Test)
// already forbids such use.
func (x *Collectives) compactReqs() {
	live := x.reqs[:0]
	for _, r := range x.reqs {
		if !r.done || !r.consumed {
			live = append(live, r)
		} else if r.resume != nil && len(x.freeReqs) < reqFreeListMax {
			x.freeReqs = append(x.freeReqs, r)
		}
	}
	for i := len(live); i < len(x.reqs); i++ {
		x.reqs[i] = nil
	}
	x.reqs = live
}

// body is the protocol coroutine: it waits for the first resume, runs the
// lane protocol, and hands control back marking the request done. A panic
// inside the protocol (a programming error or a simulated deadlock being
// torn down) is captured and re-raised on the driving goroutine.
func (r *Request) body() {
	<-r.resume
	defer func() {
		if p := recover(); p != nil && p != errAbandoned {
			r.panicVal = p
		}
		r.done = true
		// Emit before handing control back: after the yield send the
		// driver goroutine may record, and the recorder is unlocked.
		if o := r.x.core.Obs(); o != nil && r.obsID != 0 {
			now := int64(r.x.core.Now())
			o.AsyncEnd(r.obsID, r.x.core.ID(), now, "occoll", r.op)
			o.Counter(r.x.core.ID(), now, "occoll", "inflight", int64(r.x.Outstanding()))
		}
		r.yield <- struct{}{}
	}()
	r.run(r)
}

// advance transfers control to the protocol coroutine in the given wait
// mode and returns when it parks on a flag or finishes.
func (r *Request) advance(m waitMode) {
	r.mode = m
	r.resume <- struct{}{}
	<-r.yield
	if r.panicVal != nil {
		p := r.panicVal
		r.panicVal = nil
		panic(p)
	}
}

// waitGE is the lane's flag-wait hook while this request owns it. It runs
// on the protocol coroutine: in modeBlock it simply blocks the simulated
// proc like the classic run-to-completion loop did; in modeTry it polls
// once and, if the flag has not arrived, parks the coroutine until the
// driver's next advance (which may have switched the mode — a Wait after
// some Progress calls finishes the protocol in modeBlock).
func (r *Request) waitGE(line int, seq uint64) {
	for {
		switch r.mode {
		case modeBlock:
			r.x.core.WaitFlagGE(line, seq)
			return
		case modeAbort:
			panic(errAbandoned)
		}
		if r.x.core.TryFlagGE(line, seq) {
			return
		}
		r.pendLine, r.pendSeq = line, seq
		r.yield <- struct{}{}
		<-r.resume
	}
}

// drive runs the protocol to completion with blocking waits, without
// consuming the handle (used by Wait and by lane reuse at issue).
func (r *Request) drive() {
	for !r.done {
		r.advance(modeBlock)
	}
}

// Wait drives the request's protocol to completion, blocking the
// simulated core on each pending flag (the proc parks on the scheduler
// and unparks when the flag write arrives), and consumes the handle.
// Waiting again — or after a true Test — panics: the handle is dead and a
// second completion would desynchronize the lane's flag sequence.
//
// Wait progresses only THIS request (a simulated proc can park on one
// flag line at a time), so with several requests in flight all cores
// must Wait them in the same order — mismatched completion orders
// deadlock the chip, exactly like mismatched blocking collectives, and
// the simulator reports it as a deadlock panic. Cores that cannot
// guarantee a symmetric order should poll with Test/Progress (which
// advance every outstanding request) and only Wait the last one.
func (r *Request) Wait() {
	r.checkUsable("Wait")
	r.drive()
	r.consumed = true
}

// Test advances every outstanding request of the issuing core without
// blocking (one Progress pass) and reports whether this request has
// completed, consuming the handle if so. Testing a handle already
// consumed by Wait or an earlier true Test panics.
func (r *Request) Test() bool {
	r.checkUsable("Test")
	if !r.done {
		r.x.Progress()
	}
	if r.done {
		r.consumed = true
		return true
	}
	return false
}

// checkUsable panics descriptively on the request-lifecycle misuses that
// would otherwise corrupt MPB state: completing a handle twice, or
// touching one after the issuing core's body returned.
func (r *Request) checkUsable(method string) {
	if r.x != nil && r.x.finished {
		panic(fmt.Sprintf("occoll: %s on %s request after its core finished", method, r.op))
	}
	if r.consumed {
		panic(fmt.Sprintf("occoll: %s on completed %s request (already observed by Wait or Test)", method, r.op))
	}
}

// Progress advances every outstanding request as far as it can go without
// blocking: each parked protocol re-polls its pending flag and, when the
// flag has arrived, runs until its next unsatisfied wait (or completion).
// Progress never blocks and — when nothing has arrived — costs no
// simulated time, so a core can interleave it with Compute slices to
// overlap communication with computation. Note that Progress alone never
// advances the virtual clock: a polling loop must advance time (compute)
// or Wait, or no peer's flag write can ever become visible.
func (x *Collectives) Progress() {
	if x.finished {
		panic("occoll: Progress after its core finished")
	}
	advanced := false
	for _, r := range x.reqs {
		if r.done {
			advanced = advanced || r.consumed
			continue
		}
		// Every live request is parked on (pendLine, pendSeq); probe the
		// flag for free before paying the context switch into the
		// protocol coroutine. The coroutine re-polls with TryFlagGE,
		// which charges the successful poll read.
		if !x.core.ProbeFlagGE(r.pendLine, r.pendSeq) {
			continue
		}
		if o := x.core.Obs(); o != nil {
			o.Instant(x.core.ID(), int64(x.core.Now()), "occoll", "progress.resume",
				obs.Arg{Key: "lane", Val: int64(r.lane.idx)}, obs.Arg{Key: "line", Val: int64(r.pendLine)})
		}
		r.advance(modeTry)
		advanced = advanced || r.done
	}
	if advanced {
		x.compactReqs()
	}
}

// Outstanding reports how many issued requests have not completed their
// protocol yet.
func (x *Collectives) Outstanding() int {
	n := 0
	for _, r := range x.reqs {
		if !r.done {
			n++
		}
	}
	return n
}

// Finish marks the core's body function as returned and enforces the
// request contract: every issued request must have been consumed by one
// Wait or one true Test. Leaking an in-flight request would leave peers
// waiting on this core's lane flags with nobody left to progress the
// protocol, and a completed-but-unobserved one is a latent bug, so
// Finish panics descriptively instead of letting the chip corrupt MPB
// state or deadlock obscurely — after unwinding any in-flight protocols'
// coroutines, so a recovered panic leaks no goroutines. The public API
// calls it when the SPMD body returns; after Finish, any use of the
// engine or a request handle panics.
func (x *Collectives) Finish() {
	x.finished = true
	var leaked []string
	for _, r := range x.reqs {
		if r.consumed {
			continue
		}
		leaked = append(leaked, r.Op())
		if !r.done {
			r.abort()
		}
	}
	if len(leaked) > 0 {
		panic(fmt.Sprintf("occoll: core %d finished with %d unconsumed non-blocking request(s) %v: complete every request with Wait or a true Test before returning",
			x.core.ID(), len(leaked), leaked))
	}
}

// abort unwinds a parked protocol coroutine so its goroutine exits; the
// request stays incomplete (done is set, but the lane protocol was cut
// short — the chip is broken, which is why abort only runs on the way
// into Finish's panic).
func (r *Request) abort() {
	r.mode = modeAbort
	r.resume <- struct{}{}
	<-r.yield
	r.panicVal = nil
}
