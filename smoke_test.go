package ocbcast_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Smoke tests: every runnable artifact in the repository must build and
// run end to end, so example drift is caught by CI. The tests run from
// the module root (this package's directory).

func runGo(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestSmokeExamples(t *testing.T) {
	for _, example := range []string{
		"quickstart", "collectives", "allreduce", "autotune",
		"contention", "ksweep", "mpmd-os", "spmd-stencil", "replay",
		"serving",
	} {
		example := example
		t.Run(example, func(t *testing.T) {
			t.Parallel()
			out := runGo(t, "run", "./examples/"+example)
			if strings.TrimSpace(out) == "" {
				t.Fatalf("example %s produced no output", example)
			}
		})
	}
}

func TestSmokeOcbench(t *testing.T) {
	list := runGo(t, "run", "./cmd/ocbench", "list")
	for _, name := range []string{"fig3", "fig-allreduce", "headline"} {
		if !strings.Contains(list, name) {
			t.Fatalf("ocbench list missing experiment %q:\n%s", name, list)
		}
	}
	// A fast simulated experiment and a model-only one, end to end.
	out := runGo(t, "run", "./cmd/ocbench", "-effort", "1", "fig3", "table2")
	if !strings.Contains(out, "## ") {
		t.Fatalf("ocbench produced no tables:\n%s", out)
	}
}

func TestSmokeOcbenchTrace(t *testing.T) {
	out := runGo(t, "run", "./cmd/ocbench", "trace",
		"-lines", "32", "-out", t.TempDir()+"/trace.json")
	for _, want := range []string{"time attribution", "top spans", "ui.perfetto.dev"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ocbench trace output missing %q:\n%s", want, out)
		}
	}
}
