package serve

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

func mustParse(t *testing.T, text string) *Spec {
	t.Helper()
	sp, err := Parse([]byte(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sp
}

func TestParseSpec(t *testing.T) {
	sp := mustParse(t, `
# serving mix for the fig-serving experiment
ocserve v1
policy wrr
queue 16
batch 8 256
lanes 4

tenant sgd 3
req allreduce 0 64 12.5
req bcast 2 8 0
tenant telemetry 1   # best-effort
req gather 0 4 400
`)
	want := &Spec{
		Config: Config{Policy: PolicyWeighted, QueueBound: 16, MaxBatch: 8, MaxBatchLines: 256, Lanes: 4},
		Streams: []Stream{
			{Tenant: "sgd", Weight: 3, Reqs: []Req{
				{Op: workload.OpAllReduce, Lines: 64, GapUs: 12.5},
				{Op: workload.OpBcast, Root: 2, Lines: 8},
			}},
			{Tenant: "telemetry", Weight: 1, Reqs: []Req{
				{Op: workload.OpGather, Lines: 4, GapUs: 400},
			}},
		},
	}
	if !reflect.DeepEqual(sp, want) {
		t.Fatalf("parsed\n%+v\nwant\n%+v", sp, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"no header", "policy rr\n", "header"},
		{"wrong header", "octrace v1\n", "header"},
		{"empty", "", "header"},
		{"unknown directive", "ocserve v1\nshard 3\n", "unknown directive"},
		{"bad policy", "ocserve v1\npolicy fifo\ntenant a 1\nreq bcast 0 1 0\n", "policy"},
		{"policy arity", "ocserve v1\npolicy\n", "policy"},
		{"late directive", "ocserve v1\ntenant a 1\nreq bcast 0 1 0\nqueue 4\n", "after the first tenant"},
		{"bad queue", "ocserve v1\nqueue -2\n", "queue"},
		{"batch arity", "ocserve v1\nbatch 8\n", "batch"},
		{"bad lanes", "ocserve v1\nlanes many\n", "lanes"},
		{"tenant arity", "ocserve v1\ntenant a\n", "tenant"},
		{"bad weight", "ocserve v1\ntenant a x\n", "weight"},
		{"req before tenant", "ocserve v1\nreq bcast 0 1 0\n", "before any tenant"},
		{"req arity", "ocserve v1\ntenant a 1\nreq bcast 0 1\n", "req"},
		{"bad op", "ocserve v1\ntenant a 1\nreq alltoall 0 1 0\n", "op"},
		{"bad gap", "ocserve v1\ntenant a 1\nreq bcast 0 1 NaN\n", "gap"},
		{"zero lines", "ocserve v1\ntenant a 1\nreq bcast 0 0 0\n", "lines"},
		{"dup tenant", "ocserve v1\ntenant a 1\nreq bcast 0 1 0\ntenant a 1\nreq bcast 0 1 0\n", "duplicate"},
		{"empty tenant", "ocserve v1\ntenant a 1\ntenant b 1\nreq bcast 0 1 0\n", "no requests"},
		{"no tenants", "ocserve v1\n", "no tenant"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.text)); err == nil {
			t.Errorf("%s: parsed", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.wantSub)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	specs := []*Spec{
		{
			Streams: []Stream{{Tenant: "a", Reqs: []Req{{Op: workload.OpBcast, Lines: 1}}}},
		},
		{
			Config: Config{Policy: PolicyRoundRobin, QueueBound: 7, MaxBatchLines: 128, Lanes: 2},
			Streams: []Stream{
				{Tenant: "x-1._y", Weight: 9, Reqs: []Req{
					{Op: workload.OpScatter, Root: 3, Lines: 16, GapUs: 0.3333333333333333},
					{Op: workload.OpAllGather, Lines: 2, GapUs: 1e6},
				}},
				{Tenant: "z", Reqs: []Req{{Op: workload.OpReduce, Root: 1, Lines: 5, GapUs: 1e-12}}},
			},
		},
	}
	for i, sp := range specs {
		text := Format(sp)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("spec %d: reparse: %v\n%s", i, err, text)
		}
		if !reflect.DeepEqual(got, sp) {
			t.Fatalf("spec %d round-trip:\ngot  %+v\nwant %+v\ntext:\n%s", i, got, sp, text)
		}
		if again := Format(got); string(again) != string(text) {
			t.Fatalf("spec %d: Format not canonical:\n%s\nvs\n%s", i, text, again)
		}
	}
}
