package algsel

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/scc"
)

func defaultPlan(t *testing.T) *Plan {
	t.Helper()
	return Tune(scc.Table1(), scc.SCC(), scc.NumCores, core.DefaultConfig())
}

func TestTuneDeterministic(t *testing.T) {
	a, b := defaultPlan(t), defaultPlan(t)
	if a.String() != b.String() {
		t.Fatalf("two Tune runs disagree:\n%s\nvs\n%s", a, b)
	}
}

func TestTuneBandsWellFormed(t *testing.T) {
	plan := defaultPlan(t)
	if len(plan.Bands) == 0 {
		t.Fatal("empty plan")
	}
	for op, bands := range plan.Bands {
		if len(bands) == 0 {
			t.Fatalf("%s: no bands", op)
		}
		prev := 0
		for _, b := range bands {
			if b.MaxLines <= prev {
				t.Fatalf("%s: non-increasing band edge %d after %d", op, b.MaxLines, prev)
			}
			if b.Choice.Alg == "" {
				t.Fatalf("%s: band with empty choice", op)
			}
			if _, ok := Lookup(op, b.Choice.Alg); !ok {
				t.Fatalf("%s: band names unregistered algorithm %q", op, b.Choice.Alg)
			}
			if b.PredictedUs <= 0 {
				t.Fatalf("%s: band at %d has non-positive prediction", op, b.MaxLines)
			}
			prev = b.MaxLines
		}
		if bands[len(bands)-1].MaxLines != MaxTuneLines {
			t.Fatalf("%s: last band ends at %d, not MaxTuneLines", op, bands[len(bands)-1].MaxLines)
		}
	}
	// Ops with no modeled algorithms must have no table.
	if _, ok := plan.Choose(OpScatter, 96); ok {
		t.Error("scatter has a decision table despite having no models")
	}
}

// TestTunePicksCrossover pins the headline selection behavior on the
// paper's 48-core chip: small allreduces go to a tree algorithm, large
// ones to the reduce-scatter composition; beyond-table sizes reuse the
// last band.
func TestTunePicksCrossover(t *testing.T) {
	plan := defaultPlan(t)
	small, ok := plan.Choose(OpAllReduce, 1)
	if !ok {
		t.Fatal("no allreduce decision")
	}
	if small.Alg == "rabenseifner" {
		t.Errorf("1-line allreduce picked %s; reduce-scatter cannot win at 1 line", small)
	}
	mid, _ := plan.Choose(OpAllReduce, 96)
	if mid.Alg != "rabenseifner" {
		t.Errorf("96-line allreduce picked %s, want rabenseifner", mid)
	}
	// At pipeline-filling sizes a deep one-sided tree with small chunks
	// wins (less serial combining per node than k=7, no barrier tax) —
	// confirmed against simulation: oc k=2 beats rabenseifner by ~20%
	// at 4096 lines.
	big, _ := plan.Choose(OpAllReduce, 4096)
	if big.Alg != "oc" || big.K > 3 {
		t.Errorf("4096-line allreduce picked %s, want a deep oc tree", big)
	}
	beyond, _ := plan.Choose(OpAllReduce, MaxTuneLines*4)
	if beyond != big {
		t.Errorf("beyond-table size picked %s, want last band's %s", beyond, big)
	}
	// The one-sided ring should own allgather on the 48-core chip (it
	// beats tree and two-sided at every size in both model and sim).
	ag, _ := plan.Choose(OpAllGather, 96)
	if ag.Alg != "ring" {
		t.Errorf("allgather picked %s, want ring", ag)
	}
}

// TestTuneRespectsLayout: a base configuration with multiple channels
// shrinks the MPB room, so choices that no longer fit must not appear.
func TestTuneRespectsLayout(t *testing.T) {
	base := core.DefaultConfig()
	base.BufLines = 24
	base.Channels = 4
	plan := Tune(scc.Table1(), scc.SCC(), scc.NumCores, base)
	for op, bands := range plan.Bands {
		for _, b := range bands {
			a, ok := Lookup(op, b.Choice.Alg)
			if !ok {
				t.Fatalf("%s: unknown algorithm %q", op, b.Choice.Alg)
			}
			if !ValidChoice(base, a, b.Choice) {
				t.Errorf("%s: band choice %s does not fit the 4-channel layout", op, b.Choice)
			}
		}
	}
}

func TestBestChoiceFor(t *testing.T) {
	m := model.New(scc.Table1())
	base := core.DefaultConfig()
	oc, _ := Lookup(OpAllReduce, "oc")
	ch, ok := BestChoiceFor(m, scc.SCC(), scc.NumCores, base, oc, 256)
	if !ok {
		t.Fatal("no best choice for modeled algorithm")
	}
	if ch.Alg != "oc" || ch.K == 0 || ch.ChunkLines == 0 {
		t.Errorf("best oc choice %s missing tuned parameters", ch)
	}
	sag, _ := Lookup(OpBcast, "sag")
	if _, ok := BestChoiceFor(m, scc.SCC(), scc.NumCores, base, sag, 256); ok {
		t.Error("unmodeled algorithm returned a best choice")
	}
}

func TestPlanString(t *testing.T) {
	s := defaultPlan(t).String()
	for _, want := range []string{"allreduce", "6x4 mesh", "rabenseifner", ".."} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

// TestTuneScalesWithTopology: the plan is topology-sensitive — on the
// 384-core mesh the allreduce crossovers move, but the table stays well
// formed and every pick still fits.
func TestTuneScalesWithTopology(t *testing.T) {
	topo := scc.Mesh(16, 12)
	plan := Tune(scc.Table1(), topo, topo.NumCores(), core.DefaultConfig())
	if plan.P != 384 {
		t.Fatalf("plan.P = %d", plan.P)
	}
	bands := plan.Bands[OpAllReduce]
	if len(bands) < 3 {
		t.Fatalf("384-core allreduce table has %d bands, want the full crossover ladder", len(bands))
	}
	algs := map[string]bool{}
	for _, b := range bands {
		algs[b.Choice.Alg] = true
	}
	if !algs["rabenseifner"] {
		t.Errorf("384-core allreduce ladder %v missing the reduce-scatter regime", bands)
	}
}
