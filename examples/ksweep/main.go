// ksweep explores the paper's central tuning knob: the fan-out k of the
// OC-Bcast propagation tree. It measures small-message latency and
// large-message throughput for a range of k and prints the trade-off the
// paper discusses in §5.2/§6.2 (deep trees at small k, root polling cost
// at large k, contention past the ~24-accessor knee).
package main

import (
	"fmt"

	ocbcast "repro"
)

func measure(k, lines int) float64 {
	sys := ocbcast.New(ocbcast.Options{K: k})
	payload := make([]byte, lines*ocbcast.CacheLineBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	sys.WritePrivate(0, 0, payload)
	var last float64
	sys.Run(func(c *ocbcast.Core) {
		c.Broadcast(0, 0, lines)
		if us := c.NowMicros(); us > last {
			last = us
		}
	})
	return last
}

func main() {
	fmt.Println("k   lat@1CL(µs)  lat@96CL(µs)  throughput@4096CL(MB/s)")
	for _, k := range []int{2, 3, 5, 7, 11, 16, 24, 32, 47} {
		l1 := measure(k, 1)
		l96 := measure(k, 96)
		const big = 4096
		thr := float64(big*ocbcast.CacheLineBytes) / measure(k, big)
		fmt.Printf("%-3d %-12.2f %-13.2f %.2f\n", k, l1, l96, thr)
	}
	fmt.Println("\npaper: k=7 is the sweet spot; k>24 risks MPB contention;")
	fmt.Println("very large k pays the root's flag-polling cost at small sizes.")
}
