package main

import (
	"flag"
	"fmt"
	"os"

	ocbcast "repro"
)

// The trace subcommand runs one collective with the observability layer
// on and writes (a) a Chrome/Perfetto trace-event JSON — load it at
// ui.perfetto.dev or chrome://tracing — and (b) a text report to stdout:
// the per-core time-attribution table, the top spans by cumulative
// simulated time with latency quantiles, and resource utilization.

// runTrace parses the trace subcommand's own flags and runs the traced
// simulation. args are the arguments after "trace".
func runTrace(args []string, noContention bool) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	op := fs.String("op", "bcast", "collective to trace: bcast | reduce | allreduce | scatter | gather | allgather | ibcast-overlap")
	lines := fs.Int("lines", 256, "message size in 32-byte cache lines")
	cores := fs.Int("cores", 0, "simulated cores (0 = all 48)")
	algorithm := fs.String("algorithm", "", `algorithm selection: "" (paper default), "auto", or a registered name`)
	channels := fs.Int("channels", 0, "MPB lanes for ibcast-overlap (0 = 1)")
	out := fs.String("out", "ocbench-trace.json", "Perfetto trace-event JSON output path")
	topN := fs.Int("top", 12, "span groups to list in the text summary")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ocbench trace [-op bcast] [-lines 256] [-cores 0] [-algorithm auto] [-out trace.json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := ocbcast.Options{
		Cores:             *cores,
		Algorithm:         *algorithm,
		Channels:          *channels,
		DisableContention: noContention,
		Trace:             true,
	}
	if *op == "ibcast-overlap" && *channels > 1 {
		// Extra lanes need a smaller chunk to fit the MPB layout.
		opts.ChunkLines = 48
	}

	sys := ocbcast.New(opts)
	payload := make([]byte, *lines*ocbcast.CacheLineBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	sys.WritePrivate(0, 0, payload)

	body, err := traceBody(*op, *lines)
	if err != nil {
		return err
	}
	sys.Run(body)

	tl := sys.Timeline()
	if err := tl.Validate(); err != nil {
		return fmt.Errorf("trace: invalid timeline: %w", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := tl.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: %s of %d cache lines on %d cores -> %s (load at ui.perfetto.dev)\n\n",
		*op, *lines, sys.N(), *out)
	return tl.WriteSummary(os.Stdout, *topN)
}

// traceBody returns the SPMD body for the chosen collective.
func traceBody(op string, lines int) (func(c *ocbcast.Core), error) {
	switch op {
	case "bcast":
		return func(c *ocbcast.Core) { c.Broadcast(0, 0, lines) }, nil
	case "reduce":
		return func(c *ocbcast.Core) { c.ReduceOC(0, 0, lines, ocbcast.SumInt64) }, nil
	case "allreduce":
		return func(c *ocbcast.Core) { c.AllReduceOC(0, lines, ocbcast.SumInt64) }, nil
	case "scatter":
		return func(c *ocbcast.Core) { c.ScatterOC(0, 0, lines) }, nil
	case "gather":
		return func(c *ocbcast.Core) { c.GatherOC(0, 0, lines) }, nil
	case "allgather":
		return func(c *ocbcast.Core) { c.AllGatherOC(0, lines) }, nil
	case "ibcast-overlap":
		// Non-blocking broadcast overlapped with compute slices — the
		// trace shows the async request span riding under the compute
		// spans, with progress.resume instants where flags arrive.
		return func(c *ocbcast.Core) {
			r := c.IBcastOC(0, 0, lines)
			for !r.Test() {
				c.Compute(5)
			}
		}, nil
	default:
		return nil, fmt.Errorf("trace: unknown -op %q (want bcast, reduce, allreduce, scatter, gather, allgather or ibcast-overlap)", op)
	}
}
