package occoll

import (
	"repro/internal/scc"
)

// AllGatherRing exchanges every core's `lines`-line block so all cores
// hold all P blocks id-ordered at addr — like AllGather, but with a
// one-sided *ring* instead of the gather+broadcast tree: at step t each
// core stages the block it received at step t−1 into its own MPB and its
// right neighbour pulls it with a one-sided get. P−1 steps move every
// block once per hop, so the algorithm is bandwidth-optimal (each core
// transfers (P−1)·lines once in and once out) where the tree funnels all
// P blocks through the root; the tree wins on latency for small blocks,
// the ring on bandwidth for large ones — the registry's tuner picks per
// size (internal/algsel).
func (x *Collectives) AllGatherRing(addr, lines int) {
	x.IAllGatherRing(addr, lines).Wait()
}

// IAllGatherRing is the non-blocking AllGatherRing: it issues the ring
// exchange and returns a Request to Test or Wait on while the core
// computes.
func (x *Collectives) IAllGatherRing(addr, lines int) *Request {
	return x.issue("IAllGatherRing", 0, addr, lines, nil, runIAllGatherRing)
}

func runIAllGatherRing(r *Request) { r.lane.ringAllGather(r.addr, r.lines) }

// ringAllGather runs the ring pipeline on the lane. Cores form a ring in
// id order; transfers carry a global 1-based sequence number tr shared by
// all cores, so slot rotation and flag sequences agree everywhere without
// negotiation. Per transfer a core
//
//  1. waits (slot reuse) until its right neighbour acked the transfer
//     that previously occupied the slot (own dnDone[0] ≥ tr−nb),
//  2. stages the outgoing chunk into the slot and bumps the right
//     neighbour's dnNotify to tr,
//  3. waits for its own dnNotify ≥ tr (left neighbour staged), and
//  4. pulls the chunk from the left neighbour's identical slot straight
//     to its final private address and acks with the left neighbour's
//     dnDone[0].
//
// Staging (2) never depends on the left neighbour, so the cycle of waits
// around the ring is broken the same way a pipelined ring of sendrecvs
// is: every core posts its "send" before blocking on its "receive".
func (l *lane) ringAllGather(addr, lines int) {
	x := l.x
	c, cfg := x.core, x.cfg
	p := c.N()
	me := c.ID()
	left, right := (me-1+p)%p, (me+1)%p
	nb := x.numBuffers()
	nchunks := x.nchunks(lines)
	blockBytes := lines * scc.CacheLine

	var tr uint64
	for t := 0; t < p-1; t++ {
		sendBlock := ((me-t)%p + p) % p
		recvBlock := ((me-1-t)%p + p) % p
		for chk := 0; chk < nchunks; chk++ {
			m := x.chunkSpan(chk, lines)
			off := chk * cfg.BufLines * scc.CacheLine
			slot := l.slotLine(int(tr) % nb)
			tr++
			if tr > uint64(nb) {
				l.wait(l.dnDoneLine(0), tr-uint64(nb))
			}
			c.PutMemToMPB(me, slot, addr+sendBlock*blockBytes+off, m)
			c.SetFlag(right, l.dnNotifyLine(), tr)
			l.wait(l.dnNotifyLine(), tr)
			c.GetMPBToMem(left, slot, addr+recvBlock*blockBytes+off, m)
			c.SetFlag(left, l.dnDoneLine(0), tr)
		}
	}
	// Drain: the right neighbour must have consumed my last staged chunks
	// before the lane is handed to the next collective.
	if tr > 0 {
		l.wait(l.dnDoneLine(0), tr)
	}
}
