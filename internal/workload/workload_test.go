package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, text string) *Trace {
	t.Helper()
	tr, err := ParseBytes([]byte(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tr
}

func TestParseFormatRoundTrip(t *testing.T) {
	text := "octrace v1\n" +
		"# a comment\n" +
		"\n" +
		"allreduce 0 64 12.5 30\n" +
		"bcast 3 96 0 0\n" +
		"scatter 1 8 0.125 7.75\n" +
		"gather 1 8 1e-3 0\n" +
		"allgather 0 4 0 0\n" +
		"reduce 2 1 3.5 0\n"
	tr := mustParse(t, text)
	if len(tr.Records) != 6 {
		t.Fatalf("parsed %d records, want 6", len(tr.Records))
	}
	if tr.Records[0] != (Record{Op: OpAllReduce, Lines: 64, DeltaUs: 12.5, ComputeUs: 30}) {
		t.Fatalf("record 0 = %+v", tr.Records[0])
	}
	out := tr.Format()
	tr2, err := ParseBytes(out)
	if err != nil {
		t.Fatalf("reparse canonical text: %v", err)
	}
	if !reflect.DeepEqual(tr.Records, tr2.Records) {
		t.Fatalf("round trip changed records:\n%+v\n%+v", tr.Records, tr2.Records)
	}
	// Canonical text is a fixed point.
	if string(out) != string(tr2.Format()) {
		t.Fatalf("canonical text not stable:\n%q\n%q", out, tr2.Format())
	}
}

func TestParseExactFloats(t *testing.T) {
	// Shortest-exact formatting must reproduce awkward float64s bit for bit.
	in := &Trace{Records: []Record{
		{Op: OpBcast, Lines: 1, DeltaUs: 0.1, ComputeUs: 1.0 / 3.0},
		{Op: OpReduce, Lines: 2, DeltaUs: math.Nextafter(5, 6), ComputeUs: 1e-300},
	}}
	out, err := ParseBytes(in.Format())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(in.Records, out.Records) {
		t.Fatalf("floats changed: %v vs %v", in.Records, out.Records)
	}
}

func TestParseErrorsArePositional(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"missing header", "bcast 0 1 0 0\n", `line 1: missing "octrace v1"`},
		{"empty", "", "missing"},
		{"comments only", "# hi\n\n# bye\n", "missing"},
		{"no records", "octrace v1\n# empty\n", "line 2: trace has no records"},
		{"unknown op", "octrace v1\nfrobnicate 0 1 0 0\n", `line 2: unknown op "frobnicate"`},
		{"field count", "octrace v1\nbcast 0 1 0\n", "line 2: want 5 fields"},
		{"extra field", "octrace v1\nbcast 0 1 0 0 9\n", "line 2: want 5 fields"},
		{"bad root", "octrace v1\nbcast x 1 0 0\n", `line 2: root: "x"`},
		{"negative root", "octrace v1\nbcast -1 1 0 0\n", "line 2: root -1 out of range"},
		{"zero lines", "octrace v1\nbcast 0 0 0 0\n", "line 2: lines 0 out of range"},
		{"huge lines", "octrace v1\nbcast 0 9999999 0 0\n", "line 2: lines 9999999 out of range"},
		{"bad delta", "octrace v1\nbcast 0 1 abc 0\n", `line 2: delta: "abc"`},
		{"negative delta", "octrace v1\nbcast 0 1 -2 0\n", "line 2: delta -2 out of range"},
		{"inf compute", "octrace v1\nbcast 0 1 0 1e999\n", "line 2: compute"},
		{"nan compute", "octrace v1\nbcast 0 1 0 NaN\n", "line 2: compute NaN is not finite"},
		{"later line", "octrace v1\nbcast 0 1 0 0\n# ok\nreduce 0 0 0 0\n", "line 4: lines 0 out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseBytes([]byte(c.text))
			if err == nil {
				t.Fatalf("Parse accepted %q", c.text)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateFor(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Op: OpBcast, Root: 7, Lines: 1},
		{Op: OpAllReduce, Root: 100, Lines: 1}, // unrooted: root ignored
	}}
	if err := tr.ValidateFor(8); err != nil {
		t.Fatalf("ValidateFor(8): %v", err)
	}
	if err := tr.ValidateFor(4); err == nil || !strings.Contains(err.Error(), "record 0: root 7") {
		t.Fatalf("ValidateFor(4) = %v, want record-0 root error", err)
	}
}

func TestLayout(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Op: OpAllReduce, Lines: 100},       // region 100 lines
		{Op: OpScatter, Root: 0, Lines: 10}, // region 8*10 lines on 8 cores
	}}
	l := LayoutFor(tr, 8)
	if want := 100 * 32; l.SlotBytes != want {
		t.Fatalf("SlotBytes = %d, want %d", l.SlotBytes, want)
	}
	if l.Addr(0) != 0 || l.Addr(1) != l.SlotBytes || l.Addr(l.Slots) != 0 {
		t.Fatalf("slot rotation wrong: %d %d %d", l.Addr(0), l.Addr(1), l.Addr(l.Slots))
	}
	if l.ScratchAddr != l.Slots*l.SlotBytes {
		t.Fatalf("ScratchAddr = %d", l.ScratchAddr)
	}
	if l.TotalBytes() != (l.Slots+1)*l.SlotBytes {
		t.Fatalf("TotalBytes = %d", l.TotalBytes())
	}
	// Block ops dominate when n*lines exceeds the biggest flat record.
	l2 := LayoutFor(tr, 16)
	if want := 16 * 10 * 32; l2.SlotBytes != want {
		t.Fatalf("block-dominated SlotBytes = %d, want %d", l2.SlotBytes, want)
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Op: OpBcast, Lines: 4, DeltaUs: 10},
		{Op: OpBcast, Lines: 9, ComputeUs: 5},
		{Op: OpGather, Lines: 2, DeltaUs: 1, ComputeUs: 2},
	}}
	if got := tr.MaxLines(); got != 9 {
		t.Fatalf("MaxLines = %d", got)
	}
	if got := tr.DurationUs(); got != 18 {
		t.Fatalf("DurationUs = %v", got)
	}
	counts := tr.OpCounts()
	if counts[OpBcast] != 2 || counts[OpGather] != 1 {
		t.Fatalf("OpCounts = %v", counts)
	}
}

// fakeRunner records the call sequence Replay makes, advancing a fake
// clock, so the mapping contract is testable without a simulator.
type fakeRunner struct {
	clock  float64
	log    []string
	sched  []int   // per issued op: Test polls until complete; 0 = never (Wait required)
	issued int     // ops issued so far
	cur    int     // schedule entry of the live pending op
	polls  int     // Test polls observed on the live pending op
	waitUs float64 // clock advance charged by Wait on an unfinished op
}

type fakePending struct{ r *fakeRunner }

func (f *fakeRunner) Compute(us float64) {
	f.clock += us
	f.log = append(f.log, "compute")
}
func (f *fakeRunner) Barrier()       { f.log = append(f.log, "barrier") }
func (f *fakeRunner) NowUs() float64 { return f.clock }
func (f *fakeRunner) Run(r Record, addr, scratch int) {
	f.clock += 100
	f.log = append(f.log, "run:"+r.Op)
}
func (f *fakeRunner) Issue(r Record, addr, scratch int) Pending {
	f.cur = 0
	if f.issued < len(f.sched) {
		f.cur = f.sched[f.issued]
	}
	f.issued++
	f.polls = 0
	f.log = append(f.log, "issue:"+r.Op)
	return fakePending{f}
}
func (p fakePending) Test() bool {
	p.r.polls++
	p.r.log = append(p.r.log, "test")
	return p.r.cur > 0 && p.r.polls >= p.r.cur
}
func (p fakePending) Wait() {
	p.r.clock += p.r.waitUs
	p.r.log = append(p.r.log, "wait")
}

func TestReplayMapping(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Op: OpBcast, Root: 0, Lines: 4, DeltaUs: 50},         // compute + blocking
		{Op: OpAllReduce, Lines: 4, ComputeUs: 40},            // overlap, completes at 2nd poll
		{Op: OpGather, Root: 1, Lines: 2},                     // blocking, no delta
		{Op: OpAllGather, Lines: 2, DeltaUs: 1, ComputeUs: 8}, // overlap, never completes -> Wait
	}}
	l := LayoutFor(tr, 4)
	done := make([]float64, len(tr.Records))
	f := &fakeRunner{sched: []int{2, 0}, waitUs: 30}
	res := Replay(f, tr, l, ReplayOptions{Polls: 4, RecordDoneUs: done})

	want := []string{
		"barrier",
		"compute", "run:bcast",
		"issue:allreduce", "compute", "test", "compute", "test", "compute", "compute",
		"run:gather",
		"compute", "issue:allgather", "compute", "test", "compute", "test", "compute", "test", "compute", "test", "wait",
	}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("call sequence:\n got %v\nwant %v", f.log, want)
	}
	// Clock: 50 + 100 (bcast) + 40 (4 slices) + 100 (gather) + 1 + 8 + 30 (wait).
	if res.FinishUs != 329 || res.StartUs != 0 {
		t.Fatalf("Result = %+v", res)
	}
	if done[0] != 150 || done[3] != res.FinishUs {
		t.Fatalf("RecordDoneUs = %v", done)
	}
	if done[1] != 190 || done[2] != 290 {
		t.Fatalf("mid-record timestamps = %v", done)
	}
}

func TestReplayDefaultPolls(t *testing.T) {
	tr := &Trace{Records: []Record{{Op: OpReduce, Root: 0, Lines: 1, ComputeUs: 12}}}
	f := &fakeRunner{}
	Replay(f, tr, LayoutFor(tr, 2), ReplayOptions{})
	if f.polls != DefaultPolls {
		t.Fatalf("polled %d times, want DefaultPolls=%d", f.polls, DefaultPolls)
	}
}

func TestReplayShortDoneBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short RecordDoneUs")
		}
	}()
	tr := &Trace{Records: []Record{{Op: OpBcast, Lines: 1}, {Op: OpBcast, Lines: 1}}}
	Replay(&fakeRunner{}, tr, LayoutFor(tr, 2), ReplayOptions{RecordDoneUs: make([]float64, 1)})
}

func TestKernelsValidAndDeterministic(t *testing.T) {
	for _, n := range []int{8, 48, 384} {
		ks := Kernels(n)
		if len(ks) != 3 {
			t.Fatalf("Kernels(%d) returned %d kernels", n, len(ks))
		}
		again := Kernels(n)
		for i, k := range ks {
			if err := k.Trace.ValidateFor(n); err != nil {
				t.Errorf("kernel %s at n=%d invalid: %v", k.Name, n, err)
			}
			if string(k.Trace.Format()) != string(again[i].Trace.Format()) {
				t.Errorf("kernel %s at n=%d not deterministic", k.Name, n)
			}
			// Round-trip each kernel through the text format.
			back, err := ParseBytes(k.Trace.Format())
			if err != nil {
				t.Errorf("kernel %s does not reparse: %v", k.Name, err)
			} else if !reflect.DeepEqual(back.Records, k.Trace.Records) {
				t.Errorf("kernel %s changed across serialize/parse", k.Name)
			}
		}
	}
}

func TestKernelShapes(t *testing.T) {
	// SGD is allreduce-dominated; its last per-step allreduce blocks.
	sgd := SGDTrace(DefaultSGD(48))
	counts := sgd.OpCounts()
	if counts[OpAllReduce] != len(sgd.Records) {
		t.Fatalf("SGD has non-allreduce records: %v", counts)
	}
	layers := len(DefaultSGD(48).LayerLines)
	for i, r := range sgd.Records {
		last := i%layers == layers-1
		if last && r.ComputeUs != 0 {
			t.Fatalf("SGD record %d: blocking tail has compute gap %v", i, r.ComputeUs)
		}
		if !last && r.ComputeUs == 0 {
			t.Fatalf("SGD record %d: overlapped layer lost its gap", i)
		}
	}
	// Stencil rotates its halo roots and broadcasts periodically.
	st := StencilTrace(DefaultStencil(48))
	stc := st.OpCounts()
	if stc[OpGather] == 0 || stc[OpScatter] == 0 || stc[OpBcast] == 0 {
		t.Fatalf("stencil op mix missing a family: %v", stc)
	}
	// Shuffle composes scatter+gather rounds with allgather/allreduce.
	sh := ShuffleTrace(DefaultShuffle(48))
	shc := sh.OpCounts()
	if shc[OpScatter] != shc[OpGather] || shc[OpAllGather] == 0 || shc[OpAllReduce] == 0 {
		t.Fatalf("shuffle op mix wrong: %v", shc)
	}
}
