package rma

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Per-line analytic costs (paper Figure 2, Formulas 1–6). All distances d
// are router hop counts.

// CMpbR is the completion (= latency) of reading one cache line from an
// MPB at distance d: o^mpb + 2d·Lhop (Formula 3).
func (c *Core) CMpbR(d int) sim.Duration {
	p := c.chip.Cfg.Params
	return p.OMpb + sim.Duration(2*d)*p.Lhop
}

// CMpbW is the completion of writing one cache line to an MPB at distance
// d, including the acknowledgment: o^mpb + 2d·Lhop (Formula 2).
func (c *Core) CMpbW(d int) sim.Duration {
	p := c.chip.Cfg.Params
	return p.OMpb + sim.Duration(2*d)*p.Lhop
}

// LMpbW is the latency of an MPB write — when the line becomes visible at
// the destination: o^mpb + d·Lhop (Formula 1).
func (c *Core) LMpbW(d int) sim.Duration {
	p := c.chip.Cfg.Params
	return p.OMpb + sim.Duration(d)*p.Lhop
}

// CMemR is the completion of reading one line from off-chip memory at
// controller distance d: o^mem_r + 2d·Lhop (Formula 6).
func (c *Core) CMemR(d int) sim.Duration {
	p := c.chip.Cfg.Params
	return p.OMemR + sim.Duration(2*d)*p.Lhop
}

// CMemW is the completion of writing one line to off-chip memory at
// controller distance d: o^mem_w + 2d·Lhop (Formula 5).
func (c *Core) CMemW(d int) sim.Duration {
	p := c.chip.Cfg.Params
	return p.OMemW + sim.Duration(2*d)*p.Lhop
}

// checkLines validates a line-count argument.
func checkLines(m int) {
	if m <= 0 {
		panic(fmt.Sprintf("rma: non-positive line count %d", m))
	}
}

// opCompletion combines the analytic completion time with contention
// effects, without touching the clock. analytic is the contention-free
// completion; portFinish is the (possibly zero) FIFO-port service
// finish; tail is the path cost from port back to the issuing core
// (d·Lhop); meshFinish is the detailed-NoC clearing time (or 0). delay
// is the extra completion beyond the analytic time, which shifts write
// visibility accordingly. Pre steps store both in the opFrame; the
// blocking driver advances to completion itself.
func (c *Core) opCompletion(analytic, portFinish sim.Time, tail sim.Duration, meshFinish sim.Time) (completion sim.Time, delay sim.Duration) {
	completion = analytic
	if c.chip.Cfg.Contention.Enabled && portFinish > 0 {
		if t := portFinish + tail; t > completion {
			completion = t
		}
	}
	if meshFinish > completion {
		completion = meshFinish
	}
	return completion, completion - analytic
}

// finishOp is opCompletion plus the clock advance — the epilogue of the
// ops that have no framed form (GetMPBCombine, ReadFlag, TryFlagGE).
func (c *Core) finishOp(analytic, portFinish sim.Time, tail sim.Duration, meshFinish sim.Time) sim.Duration {
	completion, delay := c.opCompletion(analytic, portFinish, tail, meshFinish)
	c.proc.AdvanceTo(completion)
	return delay
}

// meshTraverse books the transfer on the detailed NoC if enabled.
func (c *Core) meshTraverse(t sim.Time, src, dst scc.Coord, packets int) sim.Time {
	if c.chip.mesh == nil {
		return 0
	}
	return c.chip.mesh.Traverse(t, src, dst, packets)
}

// reservePort books service units on an MPB port if contention is on.
// Beyond the knee (the paper's ~24-accessor threshold) the requester
// additionally pays a deterministic per-core penalty scaled by queue
// depth: §3.3 observed that past the threshold "contention does not
// equally affect all cores" with non-deterministic per-core overhead
// (slowest >2× fastest for gets, >4× for puts); a fair FIFO alone would
// equalize steady-state latencies, so the spread is modelled as a fixed
// per-core bias that only activates under saturation.
func (c *Core) reservePort(owner int, t sim.Time, lines int, write bool) sim.Time {
	cp := c.chip.Cfg.Contention
	if !cp.Enabled {
		return 0
	}
	svc, esc := cp.ReadSvc, cp.ReadEscalation
	if write {
		svc, esc = cp.WriteSvc, cp.WriteEscalation
	}
	mpb := c.chip.MPB(owner)
	// Only remote cores count toward the contention knee: the paper's
	// "up to 24 cores accessing the same MPB" are remote accessors, and
	// OC-Bcast with k = 24 (24 children + the owner's own staging puts)
	// is explicitly within the safe region.
	recent := 0
	if c.id != owner {
		recent = mpb.NoteAccess(c.id, t, accessorWindow)
	}
	active := mpb.ActiveAccessors(t, accessorWindow)
	finish := mpb.Port.ReserveDur(t, sim.Duration(int64(lines)*int64(svc)))
	if c.id != owner && cp.Knee > 0 && esc > 1 && active > cp.Knee {
		// Sustained-pressure ramp: the penalty fully applies only to
		// cores that keep hammering the port (Figure 4's loops); an
		// isolated burst, like one OC-Bcast chunk, is barely affected
		// (the paper's k=47 curve overlaps k=7 at small sizes).
		ramp := float64(recent-1) / rampOps
		if ramp > 1 {
			ramp = 1
		}
		finish += sim.Duration(float64(active) * float64(lines) * float64(svc) * (esc - 1) * unfairness(c.id) * ramp)
	}
	return finish
}

// accessorWindow is the trailing window over which cores count as
// concurrently hammering an MPB port; rampOps is how many accesses within
// that window make the pressure fully "sustained".
const (
	accessorWindow = 400 * sim.Microsecond
	rampOps        = 4.0
)

// unfairness maps a core id deterministically to [0,1): the relative
// arbitration penalty the core suffers on a saturated MPB port. The
// distribution is cubed so most cores see mild penalties while a few
// outliers are much slower — matching the paper's per-core scatter in
// Figure 4 ("contention does not equally affect all cores").
func unfairness(core int) float64 {
	h := uint32(core) * 0x9E3779B1 // golden-ratio hash for spread
	u := float64(h>>24) / 256.0
	return u * u * u
}

// PutMPBToMPB copies m cache lines from this core's own MPB (starting at
// srcLine) into core dst's MPB (starting at dstLine). Cost: Formula 7,
// C^mpb_put(m, d) = o^mpb_put + m·C^mpb_r(1) + m·C^mpb_w(d). The last
// line becomes visible d·Lhop before the operation completes (Formula 9).
func (c *Core) PutMPBToMPB(dst, dstLine, srcLine, m int) {
	f := &c.opf
	c.putMPBPre(f, dst, dstLine, srcLine, m)
	c.proc.AdvanceTo(f.completion)
	c.opPost(f)
}

// putMPBPre is PutMPBToMPB up to the completion advance.
func (c *Core) putMPBPre(f *opFrame, dst, dstLine, srcLine, m int) {
	checkLines(m)
	f.c, f.op, f.pc = c, opPutMPB, 0
	f.span = c.beginSpan("put.mpb", obs.BucketMPB,
		obs.Arg{Key: "dst", Val: int64(dst)}, obs.Arg{Key: "lines", Val: int64(m)})
	p := c.chip.Cfg.Params
	d := c.distMPB(dst)
	t0 := c.Now()
	own, rem := c.chip.MPB(c.id), c.chip.MPB(dst)

	srcPort := c.reservePort(c.id, t0, m, false)
	dstPort := c.reservePort(dst, t0, m, true)
	mesh := c.meshTraverse(t0, c.coord(), c.coordOf(dst), m)

	// Each line costs one local read then one remote write, so read
	// times, visibility times and the op clock all advance by the same
	// constant stride — the whole transfer is one extent.
	step := c.CMpbR(1) + c.CMpbW(d)
	read0 := t0 + p.OMpbPut + c.CMpbR(1)
	buf := c.scratchBuf(m * scc.CacheLine)
	own.ReadLinesInto(buf, srcLine, m, read0, step)
	t := t0 + p.OMpbPut + sim.Duration(m)*step
	port := srcPort
	if dstPort > port {
		port = dstPort
	}
	f.completion, f.delay = c.opCompletion(t, port, sim.Duration(d)*p.Lhop, mesh)
	f.dst, f.line, f.m, f.buf = rem, dstLine, m, buf
	f.eff0, f.stride = read0+c.LMpbW(d)+f.delay, step
}

// PutMemToMPB copies m cache lines from this core's private off-chip
// memory (byte address srcAddr, 32-byte aligned) into core dst's MPB.
// Cost: Formula 8, C^mem_put = o^mem_put + m·C^mem_r(dsrc) + m·C^mpb_w(ddst),
// with L1-cached source lines read at (approximately) zero cost.
func (c *Core) PutMemToMPB(dst, dstLine, srcAddr, m int) {
	f := &c.opf
	c.putMemPre(f, dst, dstLine, srcAddr, m)
	c.proc.AdvanceTo(f.completion)
	c.opPost(f)
}

// putMemPre is PutMemToMPB up to the completion advance; the post step
// replays c.runs shifted by the contention delay.
func (c *Core) putMemPre(f *opFrame, dst, dstLine, srcAddr, m int) {
	checkLines(m)
	checkAlign(srcAddr)
	f.c, f.op, f.pc = c, opPutMem, 0
	f.span = c.beginSpan("put.mem", obs.BucketMem,
		obs.Arg{Key: "dst", Val: int64(dst)}, obs.Arg{Key: "lines", Val: int64(m)})
	p := c.chip.Cfg.Params
	d := c.distMPB(dst)
	dm := c.distMem()
	t0 := c.Now()
	priv, rem, cache := c.chip.Private(c.id), c.chip.MPB(dst), c.chip.Cache(c.id)

	dstPort := c.reservePort(dst, t0, m, true)
	mesh := c.meshTraverse(t0, c.coord(), c.coordOf(dst), m)

	buf := c.scratchBuf(m * scc.CacheLine)
	priv.Read(buf, srcAddr, m*scc.CacheLine)

	// Visibility times advance by C^mpb_w(d) per line, plus C^mem_r(dm)
	// for lines that miss the L1 model — so a run of lines with the same
	// hit/miss outcome forms one uniform-stride extent, and a whole
	// transfer is typically one extent (all hit or all miss).
	t := t0 + p.OMemPut
	ctr := c.counters()
	runs := c.runs[:0]
	var cur writeRun
	for i := 0; i < m; i++ {
		stride := c.CMpbW(d)
		if cache.Hit(srcAddr + i*scc.CacheLine) {
			ctr.CacheHitLines++
		} else {
			t += c.CMemR(dm)
			stride += c.CMemR(dm)
			ctr.MemReadLines++
		}
		eff := t + c.LMpbW(d)
		t += c.CMpbW(d)
		if cur.n > 0 && cur.stride == stride && eff == cur.eff0+sim.Duration(cur.n)*cur.stride {
			cur.n++
		} else {
			if cur.n > 0 {
				runs = append(runs, cur)
			}
			cur = writeRun{line0: dstLine + i, n: 1, eff0: eff, stride: stride}
		}
	}
	runs = append(runs, cur)
	c.runs = runs
	f.completion, f.delay = c.opCompletion(t, dstPort, sim.Duration(d)*p.Lhop, mesh)
	f.dst, f.m, f.buf = rem, m, buf
}

// writeRun is one uniform-stride sub-extent of a bulk write whose
// per-line costs vary (PutMemToMPB's cache hits vs misses).
type writeRun struct {
	line0, n int
	eff0     sim.Time
	stride   sim.Duration
}

// GetMPBToMPB copies m cache lines from core src's MPB into this core's
// own MPB. Cost: Formula 11,
// C^mpb_get = o^mpb_get + m·C^mpb_r(dsrc) + m·C^mpb_w(1).
func (c *Core) GetMPBToMPB(src, srcLine, dstLine, m int) {
	f := &c.opf
	c.getMPBPre(f, src, srcLine, dstLine, m)
	c.proc.AdvanceTo(f.completion)
	c.opPost(f)
}

// getMPBPre is GetMPBToMPB up to the completion advance.
func (c *Core) getMPBPre(f *opFrame, src, srcLine, dstLine, m int) {
	checkLines(m)
	f.c, f.op, f.pc = c, opGetMPB, 0
	f.span = c.beginSpan("get.mpb", obs.BucketMPB,
		obs.Arg{Key: "src", Val: int64(src)}, obs.Arg{Key: "lines", Val: int64(m)})
	p := c.chip.Cfg.Params
	d := c.distMPB(src)
	t0 := c.Now()
	own, rem := c.chip.MPB(c.id), c.chip.MPB(src)

	srcPort := c.reservePort(src, t0, m, false)
	ownPort := c.reservePort(c.id, t0, m, true)
	mesh := c.meshTraverse(t0, c.coordOf(src), c.coord(), m)

	step := c.CMpbR(d) + c.CMpbW(1)
	read0 := t0 + p.OMpbGet + c.CMpbR(d)
	buf := c.scratchBuf(m * scc.CacheLine)
	rem.ReadLinesInto(buf, srcLine, m, read0, step)
	t := t0 + p.OMpbGet + sim.Duration(m)*step
	port := srcPort
	if ownPort > port {
		port = ownPort
	}
	f.completion, f.delay = c.opCompletion(t, port, sim.Duration(d)*p.Lhop, mesh)
	f.dst, f.line, f.m, f.buf = own, dstLine, m, buf
	f.eff0, f.stride = read0+c.LMpbW(1)+f.delay, step
}

// GetMPBCombine reads m cache lines from core src's MPB starting at
// srcLine and folds them into the same-size region of this core's own MPB
// at dstLine via combine(dst, src) — the reduction analogue of Formula
// 11's get: each line costs a remote read C^mpb_r(dsrc), a local
// accumulator read C^mpb_r(1) and a local write-back C^mpb_w(1). The
// reduction arithmetic itself is NOT charged here; callers account for it
// separately (one compute pass over the data), keeping the primitive's
// cost purely communicational like the other ops.
func (c *Core) GetMPBCombine(src, srcLine, dstLine, m int, combine func(dst, src []byte)) {
	checkLines(m)
	o := c.beginSpan("get.combine", obs.BucketMPB,
		obs.Arg{Key: "src", Val: int64(src)}, obs.Arg{Key: "lines", Val: int64(m)})
	p := c.chip.Cfg.Params
	d := c.distMPB(src)
	t0 := c.Now()
	own, rem := c.chip.MPB(c.id), c.chip.MPB(src)

	srcPort := c.reservePort(src, t0, m, false)
	// The local MPB port serves both the accumulator reads and the
	// write-backs: 2m line accesses.
	ownPortR := c.reservePort(c.id, t0, m, false)
	ownPortW := c.reservePort(c.id, t0, m, true)
	mesh := c.meshTraverse(t0, c.coordOf(src), c.coord(), m)

	// Per line: remote read, local accumulator read, local write-back —
	// three accesses with one combined stride, so both read sequences
	// and the write-back extent march in lockstep.
	step := c.CMpbR(d) + c.CMpbR(1) + c.CMpbW(1)
	remRead0 := t0 + p.OMpbGet + c.CMpbR(d)
	ownRead0 := remRead0 + c.CMpbR(1)
	buf := c.scratchBuf(2 * m * scc.CacheLine)
	theirs, mine := buf[:m*scc.CacheLine], buf[m*scc.CacheLine:]
	rem.ReadLinesInto(theirs, srcLine, m, remRead0, step)
	own.ReadLinesInto(mine, dstLine, m, ownRead0, step)
	for i := 0; i < m; i++ {
		o := i * scc.CacheLine
		combine(mine[o:o+scc.CacheLine], theirs[o:o+scc.CacheLine])
	}
	t := t0 + p.OMpbGet + sim.Duration(m)*step
	port := srcPort
	if ownPortR > port {
		port = ownPortR
	}
	if ownPortW > port {
		port = ownPortW
	}
	delay := c.finishOp(t, port, sim.Duration(d)*p.Lhop, mesh)
	own.WriteLines(dstLine, mine, m, ownRead0+c.LMpbW(1)+delay, step)
	ctr := c.counters()
	ctr.MPBReadLines += int64(2 * m)
	ctr.MPBWriteLines += int64(m)
	ctr.GetOps++
	c.endSpan(o)
}

// GetMPBToMem copies m cache lines from core src's MPB into this core's
// private off-chip memory at byte address dstAddr (32-byte aligned).
// Cost: Formula 12,
// C^mem_get = o^mem_get + m·C^mpb_r(dsrc) + m·C^mem_w(ddst).
// Written lines populate the L1 model (write allocate), which is what
// Formula 14 exploits for the binomial baseline's resends.
func (c *Core) GetMPBToMem(src, srcLine, dstAddr, m int) {
	f := &c.opf
	c.getMemPre(f, src, srcLine, dstAddr, m)
	c.proc.AdvanceTo(f.completion)
	c.opPost(f)
}

// getMemPre is GetMPBToMem up to the completion advance; the post step
// is counters and the span close only (the private-memory write and L1
// touch happen here, before the yield, as they always have).
func (c *Core) getMemPre(f *opFrame, src, srcLine, dstAddr, m int) {
	checkLines(m)
	checkAlign(dstAddr)
	f.c, f.op, f.pc = c, opGetMem, 0
	f.span = c.beginSpan("get.mem", obs.BucketMem,
		obs.Arg{Key: "src", Val: int64(src)}, obs.Arg{Key: "lines", Val: int64(m)})
	p := c.chip.Cfg.Params
	d := c.distMPB(src)
	dm := c.distMem()
	t0 := c.Now()
	priv, rem, cache := c.chip.Private(c.id), c.chip.MPB(src), c.chip.Cache(c.id)

	srcPort := c.reservePort(src, t0, m, false)
	mesh := c.meshTraverse(t0, c.coordOf(src), c.coord(), m)

	step := c.CMpbR(d) + c.CMemW(dm)
	read0 := t0 + p.OMemGet + c.CMpbR(d)
	buf := c.scratchBuf(m * scc.CacheLine)
	rem.ReadLinesInto(buf, srcLine, m, read0, step)
	priv.Write(dstAddr, buf)
	cache.TouchRange(dstAddr, m)
	t := t0 + p.OMemGet + sim.Duration(m)*step
	f.completion, f.delay = c.opCompletion(t, srcPort, sim.Duration(d)*p.Lhop, mesh)
	f.dst, f.m = nil, m
}

func checkAlign(addr int) {
	if addr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("rma: address %d not %d-byte aligned", addr, scc.CacheLine))
	}
}
