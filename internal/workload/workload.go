// Package workload is the application layer of the reproduction: recorded
// collective traces and the machinery to replay them on the simulated
// chip. Where the harness (internal/harness) measures isolated calls the
// way the paper's figures do, workload asks the question an application
// programmer would — how fast does a whole program run — by representing a
// program as the schedule of collectives it issues:
//
//   - a Trace is a sequence of Records, each one collective call — its
//     operation, root, payload size in cache lines, the issue-time delta
//     since the previous call, and the compute gap available to overlap
//     with the collective (format.go gives the text grammar);
//   - Replay (replay.go) maps a trace onto any per-core collective surface
//     (a Runner): records without a compute gap run the blocking
//     collective, records with one drive the non-blocking issue/Test/Wait
//     path of the PR 4 progress engine, interleaving compute slices;
//   - the kernel generators (kernels.go) emit realistic synthetic traces —
//     data-parallel SGD, stencil halo exchange, MapReduce-style shuffle —
//     that the fig-apps experiment replays under paper-default vs "auto"
//     algorithm selection to validate the tuner on whole-application time.
//
// The package is deliberately free of simulator dependencies: traces are
// plain data, and Replay drives an interface the public API (System.Replay
// in the root package) and the harness both implement.
package workload

import (
	"fmt"
	"math"
)

// The collective operations a trace record may name. They match the
// operation names of the algorithm registry (internal/algsel); bcast,
// reduce and scatter address a root, allreduce and allgather ignore it.
const (
	OpBcast     = "bcast"
	OpReduce    = "reduce"
	OpAllReduce = "allreduce"
	OpScatter   = "scatter"
	OpGather    = "gather"
	OpAllGather = "allgather"
)

// Ops lists the valid record operations in canonical order.
func Ops() []string {
	return []string{OpBcast, OpReduce, OpAllReduce, OpScatter, OpGather, OpAllGather}
}

// ValidOp reports whether op names a collective a record may carry.
func ValidOp(op string) bool {
	switch op {
	case OpBcast, OpReduce, OpAllReduce, OpScatter, OpGather, OpAllGather:
		return true
	}
	return false
}

// Record bounds keep every arithmetic downstream of a parsed trace (layout
// sizing, virtual-clock advances) far from integer or float overflow, so a
// hostile trace can fail validation but never corrupt a replay.
const (
	// MaxLines caps one record's payload at 1 Mi cache lines (32 MiB).
	MaxLines = 1 << 20
	// MaxRoot caps the root id; replay additionally requires root < N.
	MaxRoot = 1 << 20
	// MaxGapUs caps DeltaUs and ComputeUs at 1e9 µs (~17 simulated
	// minutes) per record.
	MaxGapUs = 1e9
)

// Record is one collective call of a recorded trace.
type Record struct {
	// Op is the collective operation, one of Ops().
	Op string
	// Root is the rooted operations' root core; allreduce and allgather
	// ignore it (serialize it as 0 for those).
	Root int
	// Lines is the payload size in 32-byte cache lines: the message for
	// bcast/reduce/allreduce, the per-core block for scatter/gather/
	// allgather.
	Lines int
	// DeltaUs is the issue-time delta: microseconds of application time
	// between the previous record's issue point and this record's issue
	// point that the replayer charges as local compute before issuing.
	DeltaUs float64
	// ComputeUs is the compute gap: microseconds of application work that
	// may overlap this collective. Zero replays the blocking call; a
	// positive gap replays the non-blocking twin, computing in slices
	// with progress-engine polls in between (see Replay).
	ComputeUs float64
}

// Validate checks one record's invariants — a known op, bounded
// non-negative fields, finite gaps.
func (r Record) Validate() error {
	if !ValidOp(r.Op) {
		return fmt.Errorf("unknown op %q", r.Op)
	}
	if r.Root < 0 || r.Root > MaxRoot {
		return fmt.Errorf("root %d out of range [0, %d]", r.Root, MaxRoot)
	}
	if r.Lines < 1 || r.Lines > MaxLines {
		return fmt.Errorf("lines %d out of range [1, %d]", r.Lines, MaxLines)
	}
	if err := validGap("delta", r.DeltaUs); err != nil {
		return err
	}
	return validGap("compute", r.ComputeUs)
}

// validGap bounds one time field: finite, non-negative, under MaxGapUs.
func validGap(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s %v is not finite", name, v)
	}
	if v < 0 || v > MaxGapUs {
		return fmt.Errorf("%s %v out of range [0, %g]", name, v, MaxGapUs)
	}
	return nil
}

// Trace is a recorded schedule of collective calls, issued in order by
// every core of the chip (SPMD, like the collectives themselves).
type Trace struct {
	// Records are the calls in issue order.
	Records []Record
}

// Validate checks every record; the error names the first offending
// record by index.
func (t *Trace) Validate() error {
	if len(t.Records) == 0 {
		return fmt.Errorf("workload: trace has no records")
	}
	for i, r := range t.Records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("workload: record %d: %w", i, err)
		}
	}
	return nil
}

// ValidateFor checks the trace against a chip of n cores: every record
// must be valid and every rooted record's root must exist.
func (t *Trace) ValidateFor(n int) error {
	if err := t.Validate(); err != nil {
		return err
	}
	for i, r := range t.Records {
		if rooted(r.Op) && r.Root >= n {
			return fmt.Errorf("workload: record %d: root %d outside the %d-core chip", i, r.Root, n)
		}
	}
	return nil
}

// rooted reports whether the operation addresses Record.Root.
func rooted(op string) bool {
	switch op {
	case OpBcast, OpReduce, OpScatter, OpGather:
		return true
	}
	return false
}

// MaxLines reports the largest record payload, 0 for an empty trace.
func (t *Trace) MaxLines() int {
	max := 0
	for _, r := range t.Records {
		if r.Lines > max {
			max = r.Lines
		}
	}
	return max
}

// OpCounts tallies records by operation, keyed by op name.
func (t *Trace) OpCounts() map[string]int {
	out := make(map[string]int, 6)
	for _, r := range t.Records {
		out[r.Op]++
	}
	return out
}

// DurationUs sums the trace's recorded application time — every issue
// delta and compute gap — the lower bound a replay's makespan approaches
// when the collectives are free.
func (t *Trace) DurationUs() float64 {
	var sum float64
	for _, r := range t.Records {
		sum += r.DeltaUs + r.ComputeUs
	}
	return sum
}
