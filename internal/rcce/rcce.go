// Package rcce reimplements the communication layer the paper's baselines
// are built on: the RCCE library's one-sided-backed *two-sided* send/recv
// (van der Wijngaart et al., 2011) plus a barrier. RCCE pipelines a
// message through the sender's MPB in chunks of at most 251 cache lines
// (the paper's Mrcce), with a fully synchronous per-chunk handshake — the
// very structure whose off-chip traffic OC-Bcast eliminates.
package rcce

import (
	"fmt"

	"repro/internal/rma"
	"repro/internal/scc"
)

// MPB line layout used by the RCCE layer (per core).
const (
	// PayloadLines is Mrcce: the send/recv staging buffer, lines 0..250.
	PayloadLines = 251
	// Barrier tree flag lines.
	lineBarrierChildA  = 251 // set by left child on arrival
	lineBarrierChildB  = 252 // set by right child on arrival
	lineBarrierRelease = 253 // set by parent on release
	// Two-sided handshake flag lines.
	lineReady = 254 // written by my current receiver: chunk consumed
	lineSent  = 255 // written by my current sender: chunk staged
)

// Port is a per-core handle to the two-sided layer. Create one per core
// inside Chip.Run. A core has at most one outstanding send and one
// outstanding receive, and at most one sender may target a given receiver
// at a time — the discipline RCCE itself imposes and that the RCCE_comm
// collectives satisfy by construction.
type Port struct {
	core *rma.Core
	// Monotonic per-pair chunk sequence numbers. Chunk tags never
	// repeat, so stale flag lines can never satisfy a future wait.
	sendSeq   map[int]uint64 // per destination
	recvSeq   map[int]uint64 // per source
	turnGrant map[int]uint64 // send turns granted, per peer
	turnWait  map[int]uint64 // send turns awaited, per peer
	epoch     uint64         // barrier epoch
	shape     int            // root of the last rooted collective, -1 before the first

	// bar and two are the port's reusable inline state machines (see
	// frames.go), used instead of the blocking bodies when the engine
	// latched inline execution. One of each suffices: a core runs at
	// most one barrier or two-sided call at a time.
	bar barrierFrame
	two twoFrame
}

// NewPort wraps a core with two-sided communication state. The RCCE line
// layout above is anchored in the paper-standard 256-line per-core MPB
// share (scc.MPBLinesPerCore); topologies below that cannot host the
// protocol — the public API rejects them up front, and a smaller MPB
// fails fast on the first out-of-range line access.
func NewPort(core *rma.Core) *Port {
	return &Port{
		core:      core,
		sendSeq:   make(map[int]uint64),
		recvSeq:   make(map[int]uint64),
		turnGrant: make(map[int]uint64),
		turnWait:  make(map[int]uint64),
		shape:     -1,
	}
}

// Shape classes for SyncShape. Two consecutive collectives may skip the
// fence only when their pairing graphs coincide: same class AND same
// root. The binomial rank-space tree is one class shared by broadcast,
// reduce, gather and scatter (they pair (vrank, vrank±mask) identically,
// which is what lets reduce+broadcast fusions like AllReduce stay
// fence-free); the naive star, the scatter-allgather halving-tree+ring,
// the neighbor ring and the recursive halving/doubling exchange each pair
// cores differently and form their own classes.
const (
	ShapeTree = iota << 16
	ShapeStar
	ShapeSAG
	ShapeRing
	ShapeRecHalf
)

// SyncShape fences consecutive two-sided collectives whose pairing
// structure differs. The handshake lines (lineSent, lineReady) are
// single-writer by the RCCE discipline: within one collective a core's
// partner set is fixed by the pairing graph, and per-pair flow control
// keeps one writer per line. Across two collectives with DIFFERENT
// graphs a core's new partner can overwrite a flag its old partner's
// handshake still needs — a lost wake-up and a deadlock (e.g. Gather(0)
// directly followed by Gather(1), or a root-0 tree gather followed by
// the neighbor-ring allgather). Every two-sided collective declares its
// shape here — a class constant above, OR'd with the root for rooted
// trees; when the shape changes, the cores run a barrier first, which
// drains all handshakes before any new-graph flag is written.
// Back-to-back collectives of the SAME shape — every measurement loop,
// and reduce+broadcast fusions like AllReduce — pass through untouched,
// so the fence costs nothing on existing paths.
func (p *Port) SyncShape(shape int) {
	if p.shape >= 0 && p.shape != shape {
		p.Barrier()
	}
	p.shape = shape
}

// Core returns the underlying RMA core handle.
func (p *Port) Core() *rma.Core { return p.core }

// tag encodes (peer, seq) into a flag value. Sequence numbers are
// per-ordered-pair and monotonic, so equality matching is unambiguous.
func tag(peer int, seq uint64) uint64 {
	return uint64(peer+1)<<40 | seq
}

// Send transmits `lines` cache lines starting at byte address addr (32-B
// aligned) of this core's private memory to core dst. It blocks, RCCE
// style, until the receiver has consumed every chunk: per chunk the
// sender stages data into its OWN MPB (a local put), flags the receiver,
// and waits for the receiver's ack before reusing the staging buffer.
//
// The one-line sent channel admits a single in-flight sender per
// receiver. Tree collectives satisfy this by construction for broadcast
// and scatter; operations where several children target one parent
// (reduce, gather) serialize senders with GrantTurn/AwaitTurn.
func (p *Port) Send(dst int, addr, lines int) {
	if dst == p.core.ID() {
		panic("rcce: send to self")
	}
	checkMsg(addr, lines)
	if p.core.Inline() {
		p.two = twoFrame{p: p, op: twoSend, pc: sLoop, dst: dst, sendAddr: addr, sendLines: lines}
		p.core.Exec(&p.two)
		return
	}
	me := p.core.ID()
	for off := 0; off < lines; off += PayloadLines {
		m := lines - off
		if m > PayloadLines {
			m = PayloadLines
		}
		p.sendSeq[dst]++
		seq := p.sendSeq[dst]
		// Stage the chunk in my own MPB: local put, distance 1.
		p.core.PutMemToMPB(me, 0, addr+off*scc.CacheLine, m)
		// Tell the receiver the chunk is ready.
		p.core.SetFlag(dst, lineSent, tag(me, seq))
		// Wait for the consumption ack before overwriting the buffer.
		want := tag(dst, seq)
		p.core.WaitFlagEQ(lineReady, want)
	}
}

// Recv receives `lines` cache lines from core src into this core's
// private memory at byte address addr. Chunks are pulled from the
// sender's MPB with a one-sided get, then acked.
func (p *Port) Recv(src int, addr, lines int) {
	if src == p.core.ID() {
		panic("rcce: recv from self")
	}
	checkMsg(addr, lines)
	if p.core.Inline() {
		p.two = twoFrame{p: p, op: twoRecv, pc: rLoop, src: src, recvAddr: addr, recvLines: lines}
		p.core.Exec(&p.two)
		return
	}
	me := p.core.ID()
	for off := 0; off < lines; off += PayloadLines {
		m := lines - off
		if m > PayloadLines {
			m = PayloadLines
		}
		p.recvSeq[src]++
		seq := p.recvSeq[src]
		want := tag(src, seq)
		p.core.WaitFlagEQ(lineSent, want)
		p.core.GetMPBToMem(src, 0, addr+off*scc.CacheLine, m)
		p.core.SetFlag(src, lineReady, tag(me, seq))
	}
}

// turnTag marks a turn-grant value, disjoint from data-ack tags.
func turnTag(peer int, seq uint64) uint64 {
	return 1<<63 | tag(peer, seq)
}

// GrantTurn tells peer it may now send to this core. It writes the
// peer's ready line, which is safe because the granter is also the
// peer's current ack writer (the parent in reduce/gather), so the line
// keeps a single writer.
func (p *Port) GrantTurn(peer int) {
	p.turnGrant[peer]++
	p.core.SetFlag(peer, lineReady, turnTag(p.core.ID(), p.turnGrant[peer]))
}

// AwaitTurn blocks until peer grants this core a send turn.
func (p *Port) AwaitTurn(peer int) {
	p.turnWait[peer]++
	want := turnTag(peer, p.turnWait[peer])
	p.core.WaitFlagEQ(lineReady, want)
}

func checkMsg(addr, lines int) {
	if lines <= 0 {
		panic(fmt.Sprintf("rcce: non-positive message size %d lines", lines))
	}
	if addr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("rcce: address %d not cache-line aligned", addr))
	}
}

// SendRecv simultaneously sends to dst and receives from src (both
// nonzero-size, both ≤ PayloadLines per chunk round). It stages each
// outgoing chunk and flags the receiver BEFORE blocking on the incoming
// chunk, which makes ring exchanges (each core sends left, receives
// right) deadlock-free — the reason MPI provides sendrecv and what the
// scatter-allgather baseline's exchange rounds need.
func (p *Port) SendRecv(dst, sendAddr, sendLines, src, recvAddr, recvLines int) {
	if dst == p.core.ID() || src == p.core.ID() {
		panic("rcce: sendrecv with self")
	}
	checkMsg(sendAddr, sendLines)
	checkMsg(recvAddr, recvLines)
	if p.core.Inline() {
		p.two = twoFrame{p: p, op: twoSendRecv, pc: xLoop,
			dst: dst, sendAddr: sendAddr, sendLines: sendLines,
			src: src, recvAddr: recvAddr, recvLines: recvLines}
		p.core.Exec(&p.two)
		return
	}
	me := p.core.ID()

	sendOff, recvOff := 0, 0
	for sendOff < sendLines || recvOff < recvLines {
		var seq uint64
		staged := false
		if sendOff < sendLines {
			m := sendLines - sendOff
			if m > PayloadLines {
				m = PayloadLines
			}
			p.sendSeq[dst]++
			seq = p.sendSeq[dst]
			p.core.PutMemToMPB(me, 0, sendAddr+sendOff*scc.CacheLine, m)
			p.core.SetFlag(dst, lineSent, tag(me, seq))
			sendOff += m
			staged = true
		}
		if recvOff < recvLines {
			m := recvLines - recvOff
			if m > PayloadLines {
				m = PayloadLines
			}
			p.recvSeq[src]++
			want := tag(src, p.recvSeq[src])
			p.core.WaitFlagEQ(lineSent, want)
			p.core.GetMPBToMem(src, 0, recvAddr+recvOff*scc.CacheLine, m)
			p.core.SetFlag(src, lineReady, tag(me, p.recvSeq[src]))
			recvOff += m
		}
		if staged {
			want := tag(dst, seq)
			p.core.WaitFlagEQ(lineReady, want)
		}
	}
}

// Barrier synchronizes all cores using a binary gather-release tree over
// MPB flags. Each call uses a fresh epoch value, so flag lines are safely
// reused across barriers (single writer per line per epoch, waits are ≥).
func (p *Port) Barrier() {
	p.epoch++
	if p.core.Inline() {
		p.bar = barrierFrame{p: p, pc: bWaitA}
		p.core.Exec(&p.bar)
		return
	}
	me := p.core.ID()
	n := p.core.N()
	left, right := 2*me+1, 2*me+2

	// Gather: wait for children, then report to parent.
	if left < n {
		p.core.WaitFlagGE(lineBarrierChildA, p.epoch)
	}
	if right < n {
		p.core.WaitFlagGE(lineBarrierChildB, p.epoch)
	}
	if me != 0 {
		parent := (me - 1) / 2
		childLine := lineBarrierChildA
		if me == 2*parent+2 {
			childLine = lineBarrierChildB
		}
		p.core.SetFlag(parent, childLine, p.epoch)
		p.core.WaitFlagGE(lineBarrierRelease, p.epoch)
	}
	// Release downward.
	if left < n {
		p.core.SetFlag(left, lineBarrierRelease, p.epoch)
	}
	if right < n {
		p.core.SetFlag(right, lineBarrierRelease, p.epoch)
	}
}
