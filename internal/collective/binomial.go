// Package collective implements the broadcast baselines the paper
// compares OC-Bcast against — the RCCE_comm binomial tree and
// scatter-allgather algorithms built on two-sided send/receive (Chan,
// 2010) — plus a naive sequential broadcast and, as extensions, further
// collective operations built on the same machinery (§7's future work).
package collective

import (
	"fmt"

	"repro/internal/rcce"
	"repro/internal/scc"
)

// Comm wraps a two-sided port with collective operations. Create one per
// core inside Chip.Run.
type Comm struct {
	port *rcce.Port
	// combineBuf is the reusable host-side staging buffer for local
	// reduction combines (grown on demand, never shrunk), keeping the
	// steady-state collective path allocation-free.
	combineBuf []byte
}

// NewComm creates the collective layer over a two-sided port.
func NewComm(port *rcce.Port) *Comm {
	return &Comm{port: port}
}

// Port exposes the underlying two-sided port.
func (c *Comm) Port() *rcce.Port { return c.port }

// combineScratch returns two nbytes-sized staging slices for a local
// combine, backed by the Comm's reusable buffer. Callers overwrite both
// slices entirely (private-memory reads) before use.
func (c *Comm) combineScratch(nbytes int) (mine, theirs []byte) {
	if cap(c.combineBuf) < 2*nbytes {
		c.combineBuf = make([]byte, 2*nbytes)
	}
	b := c.combineBuf[:2*nbytes]
	return b[:nbytes], b[nbytes:]
}

func (c *Comm) checkBcastArgs(root, addr, lines int) (me, p int) {
	me = c.port.Core().ID()
	p = c.port.Core().N()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: root %d out of range [0,%d)", root, p))
	}
	if lines <= 0 {
		panic(fmt.Sprintf("collective: non-positive message size %d", lines))
	}
	if addr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("collective: address %d not cache-line aligned", addr))
	}
	return me, p
}

// BcastBinomial is the RCCE_comm binomial-tree broadcast (§5.2.2): a
// binary recursive tree of O(log2 P) levels, each level moving the whole
// message between node pairs with two-sided send/receive. The message is
// identified by (addr, lines) in every core's private memory.
func (c *Comm) BcastBinomial(root, addr, lines int) {
	me, p := c.checkBcastArgs(root, addr, lines)
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeTree | root)
	vrank := ((me - root) + p) % p

	// Receive phase: find the bit that links me to my parent.
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			src := (vrank - mask + root) % p
			c.port.Recv(src, addr, lines)
			break
		}
		mask <<= 1
	}
	// Send phase: peel the mask back down, sending to each subtree.
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			dst := (vrank + mask + root) % p
			c.port.Send(dst, addr, lines)
		}
		mask >>= 1
	}
}

// BcastNaive is the obvious lower baseline: the root sends the full
// message to every core, one after the other. Linear in P; motivates
// trees.
func (c *Comm) BcastNaive(root, addr, lines int) {
	me, p := c.checkBcastArgs(root, addr, lines)
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeStar | root)
	if me == root {
		for i := 1; i < p; i++ {
			c.port.Send((root+i)%p, addr, lines)
		}
	} else {
		c.port.Recv(root, addr, lines)
	}
}
