package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/scc"
)

// ParallelMap evaluates fn(0..n-1) across up to GOMAXPROCS worker
// goroutines and returns the results in index order. It is the harness's
// experiment-sharding runner: each job builds its own Chip (and therefore
// its own sim.Engine), so jobs share no mutable state and the results are
// byte-identical to running the same jobs sequentially — concurrency
// changes only wall-clock time, never simulated time. A panic in any job
// (e.g. a simulated deadlock) is re-raised on the caller's goroutine
// after all workers drain.
func ParallelMap[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			runJob(out, i, n, fn)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked *JobPanic
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							jp := r.(JobPanic) // runJob wraps every panic
							panicMu.Lock()
							// Keep the lowest failing index so the
							// surfaced failure is deterministic even
							// when several jobs panic in one run.
							if panicked == nil || jp.Job < panicked.Job {
								panicked = &jp
							}
							panicMu.Unlock()
						}
					}()
					runJob(out, i, n, fn)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(*panicked)
	}
	return out
}

// runJob evaluates one job, converting any panic into a JobPanic so the
// failure surfaces identically on the sequential and parallel paths.
func runJob[T any](out []T, i, n int, fn func(i int) T) {
	defer func() {
		if r := recover(); r != nil {
			panic(JobPanic{Job: i, Jobs: n, Val: r})
		}
	}()
	out[i] = fn(i)
}

// JobPanic is re-raised by ParallelMap when a job panics. It attributes
// the failure to a job index while preserving the job's original panic
// value (e.g. the engine's deadlock report) in Val.
type JobPanic struct {
	Job, Jobs int
	Val       any
}

func (p JobPanic) String() string {
	return fmt.Sprintf("harness: job %d of %d panicked: %v", p.Job, p.Jobs, p.Val)
}

// LatencyCell is one point of a broadcast sweep: an algorithm at one
// message size with a repetition count.
type LatencyCell struct {
	Alg   Alg
	Lines int
	Reps  int
}

// MeanLatencyGrid measures every cell on its own independent chip, shards
// the cells across ParallelMap workers, and returns the mean latency (µs)
// per cell in input order.
func MeanLatencyGrid(cfg scc.Config, n int, cells []LatencyCell) []float64 {
	return ParallelMap(len(cells), func(i int) float64 {
		return mean(MeasureBcast(cfg, cells[i].Alg, n, cells[i].Lines, cells[i].Reps))
	})
}

// AllReduceCell is one point of an allreduce (or, with ReduceOnly,
// reduce-only) sweep.
type AllReduceCell struct {
	Variant    string
	K          int
	Lines      int
	Reps       int
	ReduceOnly bool
}

// MeanAllReduceGrid is MeanLatencyGrid for allreduce/reduce variants.
func MeanAllReduceGrid(cfg scc.Config, n int, cells []AllReduceCell) []float64 {
	return ParallelMap(len(cells), func(i int) float64 {
		c := cells[i]
		return mean(measureCollective(cfg, c.Variant, c.K, n, c.Lines, c.Reps, c.ReduceOnly))
	})
}

// DefaultSweepCells is the canonical Fig8a-style (size × algorithm)
// sweep used to measure the parallel harness itself — by ocbench perf
// (BENCH_simperf.json's sweep numbers) and BenchmarkSweepParallel. The
// workload is fixed (including its repetition count) so the two agree
// and cross-commit comparisons measure hot-path changes only.
func DefaultSweepCells() []LatencyCell {
	algs := []Alg{{Name: "oc", K: 2}, {Name: "oc", K: 7}, {Name: "oc", K: 47}, {Name: "binomial"}}
	var cells []LatencyCell
	for _, lines := range []int{1, 16, 48, 96} {
		for _, a := range algs {
			cells = append(cells, LatencyCell{Alg: a, Lines: lines, Reps: 2})
		}
	}
	return cells
}

// ncoresCap clamps an accessor count to the 47 remote cores available
// when core 0 is the target (Figure 4's x-axis).
func ncoresCap(n int) int {
	if n > scc.NumCores-1 {
		return scc.NumCores - 1
	}
	return n
}
