package sim

import "repro/internal/obs"

type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateBlocked
	stateDone
)

// Proc is one simulated processor: a goroutine whose execution is
// serialized by the engine in virtual-time order. All methods must be
// called from within the process's own body function.
//
// The goroutine normally exits when the body finishes and is re-spawned
// by the next Run; on a persistent engine (the chip pool's) it instead
// parks on the resume channel between runs — see spawn.
type Proc struct {
	id    int
	eng   *Engine
	now   Time
	state procState

	// heapIdx is the process's position in the engine's run queue, or
	// -1 when not queued (running, blocked, or done).
	heapIdx int

	// blockRec is the process's reusable watcher record: a process
	// blocks on at most one watch key at a time, and the entry is
	// removed from the watcher list exactly when the process wakes.
	blockRec blockedProc

	// resume delivers the control token to this process: exactly one
	// process (or the engine goroutine) holds the token at any time, and
	// whoever holds it sends here to make this process the one running.
	// The payload is the stop flag: true tells a parked persistent
	// goroutine to exit (Shutdown) and is carried in the token itself so
	// no flag read can race with the next run's spawns.
	resume chan bool

	// frames is the proc's inline state-machine stack (see Exec/Call):
	// non-empty exactly while the proc is inside a machine section, in
	// which case schedulers step the top frame directly instead of
	// resuming the goroutine. The backing array is retained across
	// sections and runs, so steady-state Exec allocates nothing.
	frames []Frame

	// wokeMachine marks that the machine blocked via MachineBlock and
	// the next runMachine entry must emit the wake instant blockOn's
	// goroutine form emits after its park.
	wokeMachine bool
}

func newProc(e *Engine, id int) *Proc {
	return &Proc{
		id:      id,
		eng:     e,
		state:   stateNew,
		heapIdx: -1,
		resume:  make(chan bool),
	}
}

// ID reports the process id (0..N-1).
func (p *Proc) ID() int { return p.id }

// Now reports the process's current virtual time.
func (p *Proc) Now() Time { return p.now }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.eng }

// spawn launches the process goroutine. By default it exits when the
// body finishes rather than parking for the next run: a goroutine
// blocked on a channel is a GC root that is never collected, so parked
// procs would pin their engine — and the whole chip hanging off it —
// in memory for every engine the program ever discards. Run re-spawns
// instead; the runtime recycles exited goroutines' g structs and
// stacks, so a spawn costs far less than the leak would.
//
// A persistent engine (SetPersistent, used by the bounded chip pool)
// loops back to park instead, skipping the respawn and the body's
// first-call stack growth on every pooled rerun; Shutdown wakes the
// parked goroutines with a true stop token so they can exit.
func (p *Proc) spawn() {
	go func() {
		for {
			if stop := <-p.resume; stop {
				return
			}
			p.runBody()
			if !p.eng.persistent {
				return
			}
		}
	}()
}

// runBody executes one simulation's body and releases the control token
// when it finishes (normally or by panic). The done instant, state flip
// and finished count run in a deferred function so a panicking body is
// still accounted for before the engine goroutine is notified.
func (p *Proc) runBody() {
	defer func() {
		r := recover()
		if r != nil {
			p.eng.panicVal = r
		}
		if o := p.eng.obs; o != nil {
			// The done instant pins the core's final clock on its
			// track; attribution uses it as the core's total.
			o.Instant(p.id, int64(p.now), "sim", "done", obs.Arg{}, obs.Arg{})
		}
		p.state = stateDone
		p.eng.finished++
		if r != nil || !p.eng.handoff {
			// Panic unwinding (any mode) and classic-mode finishes hand
			// the token to the engine goroutine.
			p.eng.engch <- nil
		} else {
			p.passControl()
		}
	}()
	p.eng.body(p)
}

// keepRunning reports whether p — which must be the currently running
// process — is still strictly first in (clock, id) order among all
// runnable processes. If so the scheduler would hand control straight
// back, so the switch is elided entirely: same schedule, zero channel
// operations. The comparison uses the run queue's cached top key, not
// heap[0] itself, so the fast path touches no heap memory.
func (p *Proc) keepRunning() bool {
	if p.state != stateRunnable {
		return false
	}
	q := &p.eng.runq
	return len(q.heap) == 0 || p.now < q.topNow || (p.now == q.topNow && p.id < q.topID)
}

// doYield returns control to the scheduler and waits to be resumed,
// unless the fast path shows this process would be chosen again anyway.
func (p *Proc) doYield() {
	if p.keepRunning() {
		return
	}
	p.slowYield()
}

// slowYield relinquishes the control token and parks until it comes
// back. In direct-handoff mode the yielding process re-queues itself
// (if still runnable), pops the next runnable process and sends the
// token straight to it — one channel operation per switch. Process ids
// are unique, so after a failed keepRunning check the queue's top is
// strictly ahead of p and the pop can never return p itself. In classic
// mode the token goes back to the engine goroutine, which re-queues and
// re-pops centrally (two channel operations per switch).
func (p *Proc) slowYield() {
	e := p.eng
	e.switches++
	if e.handoff {
		var next *Proc
		if p.state == stateRunnable {
			next = e.tokenFrom(p)
		} else {
			next = e.nextToken()
		}
		if next == p {
			// nextToken drained the machine procs that were ahead of p
			// inline and p came out of the queue again: p still holds
			// the token, so the park is skipped entirely.
			return
		}
		if next != nil {
			next.resume <- false
		} else {
			e.engch <- nil
		}
	} else {
		e.engch <- p
	}
	<-p.resume
}

// passControl sends the control token to the next process due a
// goroutine resume (stepping inline machines along the way — see
// nextToken), or to the engine goroutine when the run queue drains
// (the engine then arbitrates termination vs deadlock) or a machine
// frame panicked.
func (p *Proc) passControl() {
	e := p.eng
	if next := e.nextToken(); next != nil {
		next.resume <- false
	} else {
		e.engch <- nil
	}
}

// Advance moves the process's clock forward by d and yields so the engine
// can schedule other processes. d must be non-negative.
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	p.now += d
	p.doYield()
}

// AdvanceTo moves the clock to t if t is in the future, then yields.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.now {
		p.now = t
	}
	p.doYield()
}

// Block suspends the process until pred() holds for the given watch key.
// The predicate is evaluated immediately; if it already holds the
// process yields only when another process is due first — the same fast
// path doYield uses, so a satisfied wait on an idle schedule costs no
// channel operations. Otherwise the process sleeps until a Signal on key
// finds the predicate true, and resumes no earlier than the signalling
// write's effective time. Block returns the process's clock after
// waking.
//
// Hot paths that would otherwise allocate a closure per call should use
// BlockCond with a reusable condition value.
func (p *Proc) Block(key WatchKey, pred func() bool) Time {
	if pred() {
		if !p.keepRunning() {
			p.slowYield()
		}
		return p.now
	}
	return p.blockOn(key, condFunc(pred))
}

// BlockCond is Block with a caller-managed condition: semantics are
// identical, but the caller may reuse one Cond value across calls, so
// the steady-state block path allocates nothing.
func (p *Proc) BlockCond(key WatchKey, cond Cond) Time {
	if cond.Holds() {
		if !p.keepRunning() {
			p.slowYield()
		}
		return p.now
	}
	return p.blockOn(key, cond)
}

// blockOn registers the condition and parks until a Signal wakes it.
func (p *Proc) blockOn(key WatchKey, cond Cond) Time {
	if o := p.eng.obs; o != nil {
		o.Instant(p.id, int64(p.now), "sim", "block",
			obs.Arg{Key: "space", Val: int64(key.Space)}, obs.Arg{Key: "line", Val: int64(key.Line)})
	}
	p.state = stateBlocked
	p.eng.addWatcher(key, p, cond)
	p.slowYield()
	if o := p.eng.obs; o != nil {
		o.Instant(p.id, int64(p.now), "sim", "wake", obs.Arg{}, obs.Arg{})
	}
	return p.now
}

// unblock makes a blocked process runnable again at time wake (or its own
// clock, whichever is later) and re-queues it with the scheduler.
func (p *Proc) unblock(wake Time) {
	if p.state != stateBlocked {
		return
	}
	if wake > p.now {
		p.now = wake
	}
	p.state = stateRunnable
	p.eng.runq.push(p)
}
