package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed)*131 + i*29)
	}
	return b
}

// runBcast broadcasts `lines` cache lines from root on n cores with the
// given OC-Bcast config and returns the chip for inspection.
func runBcast(t *testing.T, n, root, lines int, cfg Config) *rma.Chip {
	t.Helper()
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	payload := pattern(lines*scc.CacheLine, byte(lines))
	chip.Private(root).Write(0, payload)
	chip.Run(func(c *rma.Core) {
		NewBroadcaster(c, cfg).Bcast(root, 0, lines)
	})
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		got := make([]byte, len(payload))
		chip.Private(i).Read(got, 0, len(got))
		if !bytes.Equal(got, payload) {
			t.Fatalf("core %d payload corrupted (n=%d root=%d lines=%d k=%d db=%v)",
				i, n, root, lines, cfg.K, cfg.DoubleBuffer)
		}
	}
	return chip
}

func TestBcastSingleChunk(t *testing.T) {
	runBcast(t, 12, 0, 5, DefaultConfig())
}

func TestBcastExactChunk(t *testing.T) {
	runBcast(t, 12, 0, 96, DefaultConfig())
}

func TestBcast97Lines(t *testing.T) {
	// The paper's Figure 8b calls out 97 lines: one full chunk + one
	// 1-line chunk.
	runBcast(t, 48, 0, 97, DefaultConfig())
}

func TestBcastManyChunks(t *testing.T) {
	runBcast(t, 48, 0, 1000, DefaultConfig())
}

func TestBcastNonZeroRoot(t *testing.T) {
	runBcast(t, 48, 17, 200, DefaultConfig())
}

func TestBcastKExtremes(t *testing.T) {
	for _, k := range []int{1, 2, 47} {
		cfg := DefaultConfig()
		cfg.K = k
		runBcast(t, 48, 0, 300, cfg)
	}
}

func TestBcastSingleBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DoubleBuffer = false
	runBcast(t, 48, 0, 500, cfg)
}

func TestBcastLeafDirect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeafDirect = true
	for _, tc := range []struct{ n, root, lines int }{
		{48, 0, 300}, {12, 5, 97}, {2, 0, 10},
	} {
		runBcast(t, tc.n, tc.root, tc.lines, cfg)
	}
}

// TestLeafDirectSavesLeafTraffic: with the §5.4 optimization a leaf's
// MPB never sees the payload, and its latency improves.
func TestLeafDirectSavesLeafTraffic(t *testing.T) {
	const lines = 192
	run := func(leafDirect bool) (sim.Time, *rma.Chip) {
		cfg := DefaultConfig()
		cfg.LeafDirect = leafDirect
		chip := rma.NewChipN(scc.DefaultConfig(), 48)
		chip.Private(0).Write(0, pattern(lines*scc.CacheLine, 6))
		var last sim.Time
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, cfg).Bcast(0, 0, lines)
			if c.Now() > last {
				last = c.Now()
			}
		})
		return last, chip
	}
	plain, _ := run(false)
	direct, chip := run(true)
	if direct >= plain {
		t.Fatalf("leaf-direct latency %v not below default %v", direct, plain)
	}
	// Core 47 (rank 47, k=7) is a leaf: zero MPB writes of payload; its
	// only MPB writes are its done flags (one per chunk).
	leaf := chip.Counter[47]
	nchunks := (lines + 95) / 96
	if leaf.MPBWriteLines != int64(nchunks) {
		t.Fatalf("leaf MPB writes = %d, want %d (done flags only)", leaf.MPBWriteLines, nchunks)
	}
}

func TestBcastTwoCores(t *testing.T) {
	runBcast(t, 2, 1, 100, DefaultConfig())
}

func TestBcastSingleCoreNoop(t *testing.T) {
	chip := rma.NewChipN(scc.DefaultConfig(), 1)
	chip.Run(func(c *rma.Core) {
		NewBroadcaster(c, DefaultConfig()).Bcast(0, 0, 10)
	})
}

// TestBcastBackToBack runs consecutive broadcasts (different roots and
// sizes) through the same Broadcasters: the monotonic flag sequences must
// isolate them.
func TestBcastBackToBack(t *testing.T) {
	chip := rma.NewChipN(scc.DefaultConfig(), 16)
	p1 := pattern(97*scc.CacheLine, 1)
	p2 := pattern(10*scc.CacheLine, 2)
	p3 := pattern(200*scc.CacheLine, 3)
	chip.Private(0).Write(0, p1)
	chip.Private(5).Write(8192, p2)
	chip.Private(0).Write(16384, p3)
	chip.Run(func(c *rma.Core) {
		b := NewBroadcaster(c, DefaultConfig())
		b.Bcast(0, 0, 97)
		b.Bcast(5, 8192, 10)
		b.Bcast(0, 16384, 200)
	})
	for i := 0; i < 16; i++ {
		for _, tc := range []struct {
			addr int
			want []byte
		}{{0, p1}, {8192, p2}, {16384, p3}} {
			got := make([]byte, len(tc.want))
			chip.Private(i).Read(got, tc.addr, len(got))
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("core %d: broadcast at addr %d corrupted", i, tc.addr)
			}
		}
	}
}

// TestBcastProperty: payload integrity for random (n, root, k, lines).
func TestBcastProperty(t *testing.T) {
	f := func(nRaw, rootRaw, kRaw uint8, linesRaw uint16) bool {
		n := int(nRaw%48) + 1
		root := int(rootRaw) % n
		k := int(kRaw%47) + 1
		lines := int(linesRaw%400) + 1
		cfg := Config{K: k, BufLines: 96, DoubleBuffer: true}
		chip := rma.NewChipN(scc.DefaultConfig(), n)
		payload := pattern(lines*scc.CacheLine, byte(lines))
		chip.Private(root).Write(0, payload)
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, cfg).Bcast(root, 0, lines)
		})
		for i := 0; i < n; i++ {
			got := make([]byte, len(payload))
			chip.Private(i).Read(got, 0, len(got))
			if !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBcastDeterminism: identical virtual-time results across runs.
func TestBcastDeterminism(t *testing.T) {
	run := func() []sim.Time {
		chip := rma.NewChipN(scc.DefaultConfig(), 48)
		chip.Private(0).Write(0, pattern(192*scc.CacheLine, 7))
		times := make([]sim.Time, 48)
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, DefaultConfig()).Bcast(0, 0, 192)
			times[c.ID()] = c.Now()
		})
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: core %d finished at %v vs %v", i, a[i], b[i])
		}
	}
}

// TestDoubleBufferingHelpsLatency verifies the §4.2 comparison: without
// double buffering chunks are MPB-buffer sized (1×192 lines here); with
// it they are halved (2×96). For a message that fills the buffer space,
// double buffering lets children start pulling the first half while the
// root stages the second, cutting latency.
func TestDoubleBufferingHelpsLatency(t *testing.T) {
	run := func(db bool) sim.Time {
		cfg := DefaultConfig()
		cfg.DoubleBuffer = db
		if db {
			cfg.BufLines = 96
		} else {
			cfg.BufLines = 192
		}
		chip := rma.NewChipN(scc.DefaultConfig(), 48)
		chip.Private(0).Write(0, pattern(192*scc.CacheLine, 9))
		var last sim.Time
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, cfg).Bcast(0, 0, 192)
			if c.Now() > last {
				last = c.Now()
			}
		})
		return last
	}
	single, double := run(false), run(true)
	if double >= single {
		t.Fatalf("double buffering did not help: double %v >= single %v", double, single)
	}
}

// TestDoubleBufferingThroughputParity: for pipeline-filling messages the
// peak throughput is buffer-count independent (Formula 15's denominator
// is per-chunk work); double buffering must not be slower.
func TestDoubleBufferingThroughputParity(t *testing.T) {
	run := func(db bool, bufLines int) sim.Time {
		cfg := DefaultConfig()
		cfg.DoubleBuffer = db
		cfg.BufLines = bufLines
		chip := rma.NewChipN(scc.DefaultConfig(), 48)
		chip.Private(0).Write(0, pattern(2048*scc.CacheLine, 9))
		var last sim.Time
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, cfg).Bcast(0, 0, 2048)
			if c.Now() > last {
				last = c.Now()
			}
		})
		return last
	}
	single, double := run(false, 192), run(true, 96)
	if double > single+single/10 {
		t.Fatalf("double buffering notably slower on large messages: %v vs %v", double, single)
	}
}

// TestLargerKReducesDepthLatency: for small messages, k=7 must beat k=2
// (fewer tree levels on the critical path), per §6.2.1.
func TestLargerKReducesDepthLatency(t *testing.T) {
	lat := func(k int) sim.Time {
		cfg := DefaultConfig()
		cfg.K = k
		chip := rma.NewChipN(scc.DefaultConfig(), 48)
		chip.Private(0).Write(0, pattern(96*scc.CacheLine, 4))
		var last sim.Time
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, cfg).Bcast(0, 0, 96)
			if c.Now() > last {
				last = c.Now()
			}
		})
		return last
	}
	l2, l7 := lat(2), lat(7)
	if l7 >= l2 {
		t.Fatalf("k=7 latency %v not better than k=2 latency %v", l7, l2)
	}
}

// TestOffChipTrafficMinimal verifies the §5 explanation: in OC-Bcast a
// non-root core's off-chip traffic is exactly the message size (one write
// pass), and the root's is exactly one read pass — unlike send/receive
// algorithms which re-read/re-write on every tree level.
func TestOffChipTrafficMinimal(t *testing.T) {
	const lines = 300
	chip := runBcast(t, 48, 0, lines, DefaultConfig())
	for i := 0; i < 48; i++ {
		ctr := chip.Counter[i]
		if i == 0 {
			if ctr.MemReadLines != lines || ctr.MemWriteLines != 0 {
				t.Fatalf("root off-chip traffic r=%d w=%d, want %d/0",
					ctr.MemReadLines, ctr.MemWriteLines, lines)
			}
			continue
		}
		if ctr.MemWriteLines != lines || ctr.MemReadLines != 0 {
			t.Fatalf("core %d off-chip traffic r=%d w=%d, want 0/%d",
				i, ctr.MemReadLines, ctr.MemWriteLines, lines)
		}
	}
}

func TestBcastPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad config", func() {
		chip := rma.NewChipN(scc.DefaultConfig(), 2)
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, Config{K: 0, BufLines: 96})
		})
	})
	mustPanic("zero lines", func() {
		chip := rma.NewChipN(scc.DefaultConfig(), 2)
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, DefaultConfig()).Bcast(0, 0, 0)
		})
	})
	mustPanic("misaligned", func() {
		chip := rma.NewChipN(scc.DefaultConfig(), 2)
		chip.Run(func(c *rma.Core) {
			NewBroadcaster(c, DefaultConfig()).Bcast(0, 5, 1)
		})
	})
}
