package harness

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/serve"
	"repro/internal/workload"
)

// The serving harness determinism contract: sweep cells are independent
// simulations, so sharding them across ParallelMap workers changes only
// wall-clock time — byte-identical stats either way — and the pooled
// ServeChip path reproduces itself run over run on a warm chip pool.

// servingTestCells is a small (load, mode) grid at 48 cores.
var servingTestCells = []struct {
	load float64
	mode string
}{
	{0.5, ""},
	{0.5, "auto"},
	{4, ""},
	{4, "auto"},
}

func TestServingSequentialVsParallel(t *testing.T) {
	cfg := scc.DefaultConfig()
	seq := make([]string, len(servingTestCells))
	for i, c := range servingTestCells {
		seq[i] = MeasureServe(cfg, scc.SCC(), c.load, c.mode).Fingerprint()
	}
	par := ParallelMap(len(servingTestCells), func(i int) string {
		c := servingTestCells[i]
		return MeasureServe(cfg, scc.SCC(), c.load, c.mode).Fingerprint()
	})
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("cell %d (load %g, mode %q): sequential and parallel sharding diverge",
				i, servingTestCells[i].load, servingTestCells[i].mode)
		}
	}
}

// serveChipMix is a small synthetic mix for the pooled-chip path.
func serveChipMix(n int) []serve.Stream {
	return []serve.Stream{
		serve.Synthetic(serve.SyntheticParams{
			Tenant: "a", Weight: 3, Seed: 1, Count: 30, N: n,
			Ops:   workload.Ops(),
			Lines: []int{1, 4, 8}, MeanGapUs: 40,
		}),
		serve.Synthetic(serve.SyntheticParams{
			Tenant: "b", Weight: 1, Seed: 2, Count: 30, N: n,
			Ops:   []string{workload.OpBcast, workload.OpAllReduce},
			Lines: []int{2, 16}, MeanGapUs: 25,
		}),
	}
}

func TestServeChipDeterminism(t *testing.T) {
	cfg := scc.DefaultConfig()
	const n = 8
	scfg := serve.Config{Policy: serve.PolicyWeighted, QueueBound: 16, MaxBatch: 4, MaxBatchLines: 64, Lanes: 2}
	streams := serveChipMix(n)
	a := ServeChip(cfg, n, scfg, streams)
	b := ServeChip(cfg, n, scfg, streams) // warm pool, recycled chip
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("ServeChip diverged between a cold and a warm pooled run")
	}
	if a.Completed == 0 || a.Completed+a.Rejected != a.Offered {
		t.Fatalf("accounting: completed %d rejected %d offered %d", a.Completed, a.Rejected, a.Offered)
	}
}

func TestServingSaturationShape(t *testing.T) {
	cells := []ServeCell{
		{Topo: scc.SCC(), Load: 1, Mode: "", ThroughputRps: 100},
		{Topo: scc.SCC(), Load: 4, Mode: "", ThroughputRps: 90},
		{Topo: scc.SCC(), Load: 1, Mode: "auto", ThroughputRps: 105},
		{Topo: scc.SCC(), Load: 4, Mode: "auto", ThroughputRps: 95},
		{Topo: scc.Mesh(16, 12), Load: 1, Mode: "", ThroughputRps: 50},
		{Topo: scc.Mesh(16, 12), Load: 1, Mode: "auto", ThroughputRps: 50},
	}
	sats := Saturation(cells)
	if len(sats) != 2 {
		t.Fatalf("saturation rows = %d, want 2", len(sats))
	}
	if sats[0].DefaultRps != 100 || sats[0].AutoRps != 105 || sats[0].Ratio != 1.05 {
		t.Fatalf("48-core saturation %+v", sats[0])
	}
	if sats[1].Ratio != 1 {
		t.Fatalf("384-core ratio %v, want 1", sats[1].Ratio)
	}
}
