package ocbcast

import (
	"fmt"

	"repro/internal/workload"
)

// Trace replay: the whole-application layer of the public API. A Trace is
// a recorded schedule of collective calls — each record an operation, a
// root, a payload size, the issue-time delta since the previous call and
// the compute gap available to overlap — and System.Replay runs a whole
// trace on the simulated chip, mapping blocking records onto the blocking
// collectives and overlapped records onto the non-blocking I*/progress
// engine path. The octrace text grammar, the synthetic application
// kernels (SGD, stencil, shuffle) and the replay semantics live in
// internal/workload; the fig-apps experiment replays the kernels under
// paper-default vs "auto" algorithm selection to validate auto-selection
// on whole-application time.

// TraceRecord is one collective call of a recorded trace; Trace is the
// recorded schedule. See ParseTrace for the text format.
type (
	TraceRecord = workload.Record
	Trace       = workload.Trace
)

// ParseTrace parses octrace text, one collective call per line:
//
//	octrace v1
//	# op root lines delta_us compute_us
//	allreduce 0 1024 200 0
//	bcast 3 96 12.5 40
//
// Operations are bcast, reduce, allreduce, scatter, gather, allgather;
// root is ignored (write 0) for allreduce and allgather; lines is the
// payload in 32-byte cache lines; delta is the issue-time gap since the
// previous record (µs); a non-zero compute gap (µs) replays the record on
// the non-blocking path, overlapping that much local work. Malformed
// input is rejected with an error naming the offending line.
func ParseTrace(data []byte) (*Trace, error) {
	return workload.ParseBytes(data)
}

// ReplayStats summarize one whole-trace replay.
type ReplayStats struct {
	// Records is the number of collective calls replayed.
	Records int
	// FirstStartUs and LastFinishUs bound the replay in virtual time:
	// the earliest core's clock after the opening barrier and the latest
	// core's clock after the final record.
	FirstStartUs, LastFinishUs float64
	// MakespanUs is the whole-application time, LastFinishUs −
	// FirstStartUs.
	MakespanUs float64
	// FinishUs is each core's completion clock, indexed by core id.
	FinishUs []float64
}

// Replay runs a recorded trace on the chip: every core issues the
// trace's collectives in order, charging each record's issue-time delta
// as local compute first, running gap-free records as blocking calls and
// records with a compute gap through the non-blocking progress engine
// (issue, compute in slices with Test polls, Wait). Payloads live at
// deterministic addresses — records rotate through four regions sized by
// the trace's largest working set (see internal/workload.Layout) — so
// stage input with WritePrivate and read results back with ReadPrivate.
// Algorithm resolution follows Options.Algorithm like every collective
// method, so the same trace replays under the paper-default stacks,
// "auto", or a named override.
//
// Replay consumes the System's single Run; build a fresh System per
// replay. It returns an error for a trace that does not fit the chip
// (unknown op, root outside the core count).
func (s *System) Replay(t *Trace) (ReplayStats, error) {
	if t == nil {
		return ReplayStats{}, fmt.Errorf("ocbcast: Replay of a nil trace")
	}
	if err := t.ValidateFor(s.N()); err != nil {
		return ReplayStats{}, err
	}
	n := s.N()
	l := workload.LayoutFor(t, n)
	res := make([]workload.Result, n)
	s.Run(func(c *Core) {
		res[c.ID()] = workload.Replay(replayCore{c}, t, l, workload.ReplayOptions{})
	})
	st := ReplayStats{
		Records:      len(t.Records),
		FirstStartUs: res[0].StartUs,
		LastFinishUs: res[0].FinishUs,
		FinishUs:     make([]float64, n),
	}
	for id, r := range res {
		st.FinishUs[id] = r.FinishUs
		if r.StartUs < st.FirstStartUs {
			st.FirstStartUs = r.StartUs
		}
		if r.FinishUs > st.LastFinishUs {
			st.LastFinishUs = r.FinishUs
		}
	}
	st.MakespanUs = st.LastFinishUs - st.FirstStartUs
	return st, nil
}

// replayCore adapts a public Core to the replayer's Runner surface. The
// record-to-method mapping is part of the replay contract (the
// conformance suite issues it by hand): blocking records run the public
// collective of the same name — Broadcast, Reduce, AllReduce, Scatter,
// Gather, AllGather, each resolving through the algorithm registry per
// Options.Algorithm — and overlapped records run the one-sided
// non-blocking twins IBcastOC, IReduceOC, IAllReduceOC, IScatterOC,
// IGatherOC, IAllGatherOC. Reductions combine with SumInt64.
type replayCore struct{ c *Core }

// Compute charges local work on the simulated core.
func (r replayCore) Compute(us float64) { r.c.Compute(us) }

// Barrier joins the chip-wide barrier.
func (r replayCore) Barrier() { r.c.Barrier() }

// NowUs reports the core's virtual clock in microseconds.
func (r replayCore) NowUs() float64 { return r.c.NowMicros() }

// Run executes one blocking record via the public collective of the
// record's name.
func (r replayCore) Run(rec TraceRecord, addr, scratch int) {
	switch rec.Op {
	case workload.OpBcast:
		r.c.Broadcast(rec.Root, addr, rec.Lines)
	case workload.OpReduce:
		r.c.Reduce(rec.Root, addr, scratch, rec.Lines, SumInt64)
	case workload.OpAllReduce:
		r.c.AllReduce(addr, scratch, rec.Lines, SumInt64)
	case workload.OpScatter:
		r.c.Scatter(rec.Root, addr, rec.Lines)
	case workload.OpGather:
		r.c.Gather(rec.Root, addr, rec.Lines)
	case workload.OpAllGather:
		r.c.AllGather(addr, rec.Lines)
	default:
		panic(fmt.Sprintf("ocbcast: replay of unknown op %q", rec.Op))
	}
}

// Issue starts one overlapped record via the non-blocking one-sided
// twin of the record's operation.
func (r replayCore) Issue(rec TraceRecord, addr, scratch int) workload.Pending {
	switch rec.Op {
	case workload.OpBcast:
		return r.c.IBcastOC(rec.Root, addr, rec.Lines)
	case workload.OpReduce:
		return r.c.IReduceOC(rec.Root, addr, rec.Lines, SumInt64)
	case workload.OpAllReduce:
		return r.c.IAllReduceOC(addr, rec.Lines, SumInt64)
	case workload.OpScatter:
		return r.c.IScatterOC(rec.Root, addr, rec.Lines)
	case workload.OpGather:
		return r.c.IGatherOC(rec.Root, addr, rec.Lines)
	case workload.OpAllGather:
		return r.c.IAllGatherOC(addr, rec.Lines)
	default:
		panic(fmt.Sprintf("ocbcast: replay of unknown op %q", rec.Op))
	}
}
