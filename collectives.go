package ocbcast

import (
	"repro/internal/algsel"
	"repro/internal/collective"
	"repro/internal/occoll"
)

// This file surfaces the extension collectives (the paper's §7 future
// work) in two families:
//
//   - Two-sided: Reduce, AllReduce, Gather, Scatter, AllGather ride the
//     RCCE send/recv baseline — every hop pays the synchronous
//     flag-handshake and off-chip round trip the paper's broadcast
//     avoids. They are the comparison baseline.
//   - One-sided (suffix OC): ReduceOC, AllReduceOC, GatherOC, ScatterOC,
//     AllGatherOC extend the OC-Bcast technique — pipelined k-ary trees,
//     chunks moved between MPBs with one-sided gets, reduction chunks
//     combined directly in the MPBs — and share OC-Bcast's (K,
//     ChunkLines, DoubleBuffer) configuration. The `fig-allreduce`
//     harness experiment measures the two families against each other.
//
// All collectives are chip-wide: every core must call them with matching
// arguments, MPI style.

// ReduceOp combines the src buffer into dst (equal lengths, cache-line
// multiples). See SumInt64 and MaxInt64.
type ReduceOp = collective.ReduceOp

// SumInt64 adds little-endian int64 lanes; MaxInt64 keeps lane maxima.
var (
	SumInt64 ReduceOp = collective.SumInt64
	MaxInt64 ReduceOp = collective.MaxInt64
)

// --- Two-sided family (RCCE send/recv substrate) ---

// Reduce combines every core's `lines` cache lines at addr with op into
// the root (binomial tree). scratchAddr is same-size private staging the
// operation may clobber on interior nodes.
func (c *Core) Reduce(root, addr, scratchAddr, lines int, op ReduceOp) {
	c.run(algsel.OpReduce, "twosided", false,
		algsel.Args{Root: root, Addr: addr, Scratch: scratchAddr, Lines: lines, Reduce: op})
}

// AllReduce reduces to core 0 with the two-sided binomial tree, then
// broadcasts the result with OC-Bcast — the hybrid composition the
// paper's §7 suggests. For the fully one-sided version see AllReduceOC.
func (c *Core) AllReduce(addr, scratchAddr, lines int, op ReduceOp) {
	c.run(algsel.OpAllReduce, "hybrid", false,
		algsel.Args{Addr: addr, Scratch: scratchAddr, Lines: lines, Reduce: op})
}

// Gather collects each core's block (at addr + id·lines·32) onto the root.
func (c *Core) Gather(root, addr, lines int) {
	c.run(algsel.OpGather, "twosided", false, algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// Scatter distributes per-core blocks from the root's memory layout
// (block i at addr + i·lines·32) to each core.
func (c *Core) Scatter(root, addr, lines int) {
	c.run(algsel.OpScatter, "twosided", false, algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// AllGather exchanges every core's block so all cores hold all P blocks.
func (c *Core) AllGather(addr, lines int) {
	c.run(algsel.OpAllGather, "twosided", false, algsel.Args{Addr: addr, Lines: lines})
}

// --- One-sided family (pipelined k-ary trees over MPB RMA) ---

// ReduceOC combines every core's `lines` cache lines at addr with op
// into the root: OC-Reduce, a k-ary reduction tree whose chunks are
// staged in MPBs and folded together with one-sided combining gets,
// pipelined like OC-Bcast. Needs no scratch area; non-root inputs are
// left untouched.
func (c *Core) ReduceOC(root, addr, lines int, op ReduceOp) {
	c.occ()
	c.run(algsel.OpReduce, "oc", true, algsel.Args{Root: root, Addr: addr, Lines: lines, Reduce: op})
}

// AllReduceOC is OC-Reduce fused with an OC-Bcast of the result down the
// same tree and MPB slots; every core ends with the combined result at
// addr. At 48 cores it beats the two-sided Reduce+Bcast composition from
// a few hundred bytes up (2.5x and rising at 8 KiB).
func (c *Core) AllReduceOC(addr, lines int, op ReduceOp) {
	c.occ()
	c.run(algsel.OpAllReduce, "oc", true, algsel.Args{Addr: addr, Lines: lines, Reduce: op})
}

// GatherOC collects each core's block (at addr + id·lines·32) onto the
// root, streamed up the k-ary tree through double-buffered MPB slots.
func (c *Core) GatherOC(root, addr, lines int) {
	c.occ()
	c.run(algsel.OpGather, "oc", true, algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// ScatterOC distributes per-core blocks from the root's memory layout
// (block i at addr + i·lines·32), streamed down the k-ary tree
// store-and-forward.
func (c *Core) ScatterOC(root, addr, lines int) {
	c.occ()
	c.run(algsel.OpScatter, "oc", true, algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// AllGatherOC is an OC-Gather onto core 0 fused with an OC-Bcast of the
// concatenated result, leaving all P blocks id-ordered at addr on every
// core.
func (c *Core) AllGatherOC(addr, lines int) {
	c.occ()
	c.run(algsel.OpAllGather, "oc", true, algsel.Args{Addr: addr, Lines: lines})
}

// BcastOC broadcasts `lines` cache lines from root's addr to the same
// address everywhere — the OC-Bcast chunk pipeline run over an occoll
// lane, and the blocking twin of IBcastOC. (Broadcast remains the
// paper-faithful standalone OC-Bcast with its own flag layout.)
func (c *Core) BcastOC(root, addr, lines int) {
	c.occ()
	c.run(algsel.OpBcast, "oc", true, algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// --- Non-blocking one-sided family (the progress engine) ---
//
// Each I*OC call issues the same lane protocol its blocking twin runs and
// returns a Request immediately; the blocking twin is literally issue +
// Wait, so its simulated timing is identical. The protocol advances only
// inside Progress, Request.Test and Request.Wait (MPI-style progress);
// between those calls the core is free to Compute, which is what the
// fig-overlap experiment measures. Requests must be issued in the same
// program order on every core (lanes are assigned round-robin by issue
// order) and each must be completed by exactly one Wait or true Test
// before the body returns. Wait progresses only its own request, so
// cores must also Wait multiple in-flight requests in the same order —
// mismatched completion orders deadlock like mismatched blocking
// collectives; poll with Test/Progress when the order can't be
// symmetric.

// Request is the handle of an in-flight non-blocking collective; see
// occoll.Request for the Wait/Test lifecycle.
type Request = occoll.Request

// IBcastOC starts a non-blocking BcastOC and returns its handle.
func (c *Core) IBcastOC(root, addr, lines int) *Request {
	c.occ()
	return c.issue(algsel.OpBcast, "oc", algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// IReduceOC starts a non-blocking ReduceOC and returns its handle.
func (c *Core) IReduceOC(root, addr, lines int, op ReduceOp) *Request {
	c.occ()
	return c.issue(algsel.OpReduce, "oc", algsel.Args{Root: root, Addr: addr, Lines: lines, Reduce: op})
}

// IAllReduceOC starts a non-blocking AllReduceOC and returns its handle.
func (c *Core) IAllReduceOC(addr, lines int, op ReduceOp) *Request {
	c.occ()
	return c.issue(algsel.OpAllReduce, "oc", algsel.Args{Addr: addr, Lines: lines, Reduce: op})
}

// IScatterOC starts a non-blocking ScatterOC and returns its handle.
func (c *Core) IScatterOC(root, addr, lines int) *Request {
	c.occ()
	return c.issue(algsel.OpScatter, "oc", algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// IGatherOC starts a non-blocking GatherOC and returns its handle.
func (c *Core) IGatherOC(root, addr, lines int) *Request {
	c.occ()
	return c.issue(algsel.OpGather, "oc", algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// IAllGatherOC starts a non-blocking AllGatherOC and returns its handle.
func (c *Core) IAllGatherOC(addr, lines int) *Request {
	c.occ()
	return c.issue(algsel.OpAllGather, "oc", algsel.Args{Addr: addr, Lines: lines})
}

// Progress advances every outstanding non-blocking request as far as it
// can go without blocking. It never blocks and, when no awaited flag has
// arrived, costs no simulated time — interleave it with Compute slices to
// overlap communication with computation.
func (c *Core) Progress() { c.occ().Progress() }
