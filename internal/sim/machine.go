package sim

import "repro/internal/obs"

// inlineExec is the package-wide default for newly started runs: when
// true, protocol sections that expose explicit resume points (see
// Proc.Exec) run as resumable state machines stepped directly on
// whatever goroutine holds the control token — no channel send, no
// goroutine park per yield — and every machine runnable at the head
// timestamp drains in one scheduler pass. When false, Exec falls back
// to the goroutine-per-proc scheduler, which stays around as the
// executable spec. Both modes produce byte-identical simulated timings
// and switch counts — SetInline exists so the equivalence suite can
// prove it.
var inlineExec = true

// SetInline sets the execution mode every engine latches at the start
// of its next Run (pooled engines included) and returns the previous
// setting. Simulated timings are identical either way; only wall-clock
// cost differs. It is a test knob, not a tuning parameter — do not
// flip it concurrently with running simulations.
func SetInline(enabled bool) (prev bool) {
	prev = inlineExec
	inlineExec = enabled
	return
}

// InlineEnabled reports the current package-wide inline default.
func InlineEnabled() bool { return inlineExec }

// StepStatus is what a Frame.Step reports back to the machine driver:
// how the section's clock position changed and whether it is done.
type StepStatus uint8

const (
	// StepYield means the frame advanced the proc's clock (via
	// MachineAdvance/MachineAdvanceTo) and another proc may now be due.
	// Equivalent to the yield inside Advance/AdvanceTo: the same
	// keepRunning fast path applies, so a yield that would hand control
	// straight back is elided without touching the run queue.
	StepYield StepStatus = iota
	// StepBlock means the frame registered a watcher via MachineBlock
	// and the proc must sleep until a Signal wakes it. The next Step
	// call observes the post-wake clock.
	StepBlock
	// StepCall means the frame pushed a child frame with Proc.Call; the
	// driver steps the child to completion before resuming this frame.
	StepCall
	// StepDone means the frame finished; the driver pops it.
	StepDone
)

// Frame is one resumable section of a protocol: a state machine whose
// Step method runs the code between two resume points and reports how
// it left the clock. Step always executes on the goroutine holding the
// control token (the engine's, or another proc's in direct-handoff
// mode) — never concurrently with any other simulation code — so frame
// state needs no synchronization, but Step must only touch simulation
// state through p and the usual token-serialized structures.
type Frame interface {
	Step(p *Proc) StepStatus
}

// InlineActive reports whether the engine driving p latched inline
// execution for the current run. Protocol layers branch on it to choose
// between Exec'ing a frame and running the equivalent blocking body.
func (p *Proc) InlineActive() bool { return p.eng.inline }

// Call pushes a child frame onto the proc's machine stack. Only valid
// from within a Frame.Step that then returns StepCall.
func (p *Proc) Call(f Frame) { p.frames = append(p.frames, f) }

// Exec runs f as an inline machine section of the calling proc's body.
// It returns when the frame (and every child it Calls) has completed,
// with the proc's clock wherever the frame left it — exactly as if the
// body had executed the equivalent blocking code. If the whole section
// completes without the scheduler choosing another proc, Exec costs
// zero channel operations; otherwise the body goroutine parks once for
// the entire section (instead of once per yield) while the section's
// remaining steps run on whichever goroutine holds the token.
//
// Exec requires inline mode (callers branch on InlineActive) and must
// not be called from within a frame — frames nest with Call.
func (p *Proc) Exec(f Frame) {
	e := p.eng
	if !e.inline {
		panic("sim: Exec without inline mode; gate callers on InlineActive")
	}
	if len(p.frames) != 0 {
		panic("sim: Exec from within a machine; nest frames with Call")
	}
	p.frames = append(p.frames, f)
	st := p.runMachine(true)
	if st == machineDone {
		// Section completed without ever losing the token.
		return
	}
	// The machine yielded or blocked: hand the token onward and park
	// this goroutine until the machine's last frame completes. From
	// here on other token holders step the machine via nextToken.
	if e.handoff {
		var next *Proc
		if st == machineYield {
			next = e.tokenFrom(p)
		} else {
			next = e.nextToken()
		}
		if next == p {
			// The drain stepped the procs ahead of p inline — including
			// p's own remaining frames — and p's section is complete:
			// the token never left this goroutine, so just continue.
			return
		}
		if next != nil {
			next.resume <- false
		} else {
			e.engch <- nil
		}
	} else {
		if st == machineYield {
			e.runq.push(p)
		}
		e.engch <- nil
	}
	<-p.resume
}

// machineStatus is how a runMachine stint ended: the section completed
// (or a foreign-goroutine panic was accounted), the proc yielded to an
// earlier proc and must re-enter the run queue, or it blocked on a
// watch key and will be re-queued by the waking Signal.
type machineStatus uint8

const (
	machineDone machineStatus = iota
	machineYield
	machineBlock
)

// runMachine steps the proc's frame stack until the section completes
// or the proc must give up the control token. On machineYield the proc
// is NOT re-queued — the caller fuses the re-queue with its next pop
// (runQueue.pushPop) — so every non-Done status must be followed by the
// matching queue operation. own says the calling goroutine is the
// proc's own body goroutine (the Exec entry path), which determines how
// a panicking frame is routed — see stepTop. A foreign-goroutine panic
// is recorded like a body panic and reported as machineDone so the
// caller unwinds without touching the dead proc again.
// runMachine steps the proc's frame stack until the section completes
// or the proc must give up the token. A panic on the proc's own body
// goroutine (own) propagates so it unwinds through Exec into runBody's
// deferred recover — identical accounting to a body panic. A panic
// while stepping a foreign proc's frames cannot reach that proc's
// (parked) goroutine, so one deferred recover per stint (not per step)
// accounts it exactly as runBody would: mark the proc done, record the
// panic for Run to re-raise, report machineDone; the parked goroutine
// is abandoned, as any panicked run's goroutines are.
func (p *Proc) runMachine(own bool) (st machineStatus) {
	if own {
		return p.machineSteps()
	}
	defer func() {
		if r := recover(); r != nil {
			p.eng.panicVal = r
			if o := p.eng.obs; o != nil {
				o.Instant(p.id, int64(p.now), "sim", "done", obs.Arg{}, obs.Arg{})
			}
			p.state = stateDone
			p.eng.finished++
			st = machineDone
		}
	}()
	return p.machineSteps()
}

// machineSteps is runMachine's stepping loop, with panics unhandled.
func (p *Proc) machineSteps() machineStatus {
	e := p.eng
	if p.wokeMachine {
		// Mirror blockOn's post-wake instant: the goroutine form emits
		// it when the proc resumes after a blocking wait.
		p.wokeMachine = false
		if o := e.obs; o != nil {
			o.Instant(p.id, int64(p.now), "sim", "wake", obs.Arg{}, obs.Arg{})
		}
	}
	for {
		switch p.frames[len(p.frames)-1].Step(p) {
		case StepCall:
			// Child pushed; next iteration steps it.
		case StepDone:
			n := len(p.frames) - 1
			p.frames[n] = nil
			p.frames = p.frames[:n]
			if n == 0 {
				return machineDone
			}
		case StepYield:
			if p.keepRunning() {
				continue
			}
			e.switches++
			return machineYield
		case StepBlock:
			e.switches++
			return machineBlock
		}
	}
}

// MachineAdvance moves the clock forward by d without yielding: the
// frame returns StepYield and the machine driver applies the same
// keepRunning fast path Advance uses. d must be non-negative.
func (p *Proc) MachineAdvance(d Duration) {
	if d < 0 {
		panic("sim: negative MachineAdvance")
	}
	p.now += d
}

// MachineAdvanceTo moves the clock to t if t is in the future; the
// frame then returns StepYield (the machine form of AdvanceTo).
func (p *Proc) MachineAdvanceTo(t Time) {
	if t > p.now {
		p.now = t
	}
}

// MachineBlock registers the condition and marks the proc blocked; the
// frame then returns StepBlock (the machine form of an unsatisfied
// BlockCond). The next Step call runs after a Signal wakes the proc,
// no earlier than the signalling write's effective time.
func (p *Proc) MachineBlock(key WatchKey, cond Cond) {
	if o := p.eng.obs; o != nil {
		o.Instant(p.id, int64(p.now), "sim", "block",
			obs.Arg{Key: "space", Val: int64(key.Space)}, obs.Arg{Key: "line", Val: int64(key.Line)})
	}
	p.state = stateBlocked
	p.eng.addWatcher(key, p, cond)
	p.wokeMachine = true
}

// nextToken picks the proc that should run next, draining machine
// steps inline: popped procs with a non-empty frame stack are stepped
// on the calling goroutine until one completes its section (its body
// goroutine must be resumed) or the queue empties. Because stepping
// never leaves this goroutine while machines yield to each other, every
// machine proc runnable at the head timestamp executes in one pass with
// zero channel operations — the same-clock batch. Returns nil when the
// queue is empty (termination or deadlock, arbitrated by the engine
// goroutine) or a frame panicked.
func (e *Engine) nextToken() *Proc {
	return e.drainToken(e.runq.pop())
}

// tokenFrom is nextToken for a token holder whose proc p just yielded
// while still runnable: p re-enters the queue and the best candidate
// comes out in one fused heap operation (runQueue.pushPop).
func (e *Engine) tokenFrom(p *Proc) *Proc {
	return e.drainToken(e.runq.pushPop(p))
}

func (e *Engine) drainToken(q *Proc) *Proc {
	for {
		if q == nil || len(q.frames) == 0 {
			return q
		}
		switch q.runMachine(false) {
		case machineDone:
			if e.panicVal != nil {
				return nil
			}
			// Section complete: q's body goroutine (parked in Exec)
			// takes the token and continues after the section.
			return q
		case machineYield:
			q = e.runq.pushPop(q)
		case machineBlock:
			q = e.runq.pop()
		}
	}
}
