// Command doclint enforces the repo's documentation contract in CI:
//
//   - every Go package in the module (root, internal/*, cmd/*) has a
//     package-level doc comment;
//   - every exported identifier in the packages listed in strictPkgs
//     (the root package and the model/occoll subsystems) has a doc
//     comment — a group doc on a const/var/type block covers the block;
//   - every relative link in the listed markdown files points at a file
//     that exists.
//
// It prints one line per violation and exits non-zero if there are any,
// like go vet. Run it from the repo root: go run ./cmd/doclint
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// strictPkgs are the directories whose exported identifiers must all
// carry doc comments (repo-root relative).
var strictPkgs = []string{".", "internal/model", "internal/occoll"}

// markdownFiles are checked for dangling relative links.
var markdownFiles = []string{"README.md", "ARCHITECTURE.md", "examples/README.md"}

func main() {
	var violations []string
	complain := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	for _, dir := range goPackageDirs(".") {
		checkPackageDoc(dir, complain)
	}
	for _, dir := range strictPkgs {
		checkExportedDocs(dir, complain)
	}
	for _, md := range markdownFiles {
		checkMarkdownLinks(md, complain)
	}

	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Printf("doclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doclint: ok")
}

// goPackageDirs lists every directory under root containing non-test Go
// files, skipping hidden directories.
func goPackageDirs(root string) []string {
	var dirs []string
	seen := map[string]bool{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() && strings.HasPrefix(info.Name(), ".") && path != root {
			return filepath.SkipDir
		}
		if !info.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		// A truncated walk would silently shrink lint coverage; fail
		// loudly instead of letting the docs job pass green.
		fmt.Fprintf(os.Stderr, "doclint: walking %s: %v\n", root, err)
		os.Exit(2)
	}
	return dirs
}

// parseDir parses a directory's non-test Go files.
func parseDir(dir string) (*token.FileSet, []*ast.File) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		os.Exit(2)
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			files = append(files, f)
		}
	}
	return fset, files
}

// checkPackageDoc requires at least one file in the package to carry a
// package doc comment.
func checkPackageDoc(dir string, complain func(string, ...any)) {
	_, files := parseDir(dir)
	if len(files) == 0 {
		return
	}
	for _, f := range files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return
		}
	}
	complain("%s: package %s has no package doc comment", dir, files[0].Name.Name)
}

// checkExportedDocs requires a doc comment on every exported top-level
// identifier (and every exported method) in the package.
func checkExportedDocs(dir string, complain func(string, ...any)) {
	fset, files := parseDir(dir)
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					complain("%s: exported %s %s has no doc comment", pos(d), kind, d.Name.Name)
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					continue // a group doc covers the whole block
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							complain("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && s.Doc == nil && s.Comment == nil {
								complain("%s: exported %s %s has no doc comment", pos(s), declKind(d.Tok), name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// declKind names a GenDecl token for messages.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// linkRe matches markdown link targets: [text](target).
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies that every relative link target in the
// file exists on disk (anchors stripped; absolute URLs skipped).
func checkMarkdownLinks(md string, complain func(string, ...any)) {
	data, err := os.ReadFile(md)
	if err != nil {
		complain("%s: %v", md, err)
		return
	}
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue // pure in-page anchor
		}
		resolved := filepath.Join(filepath.Dir(md), target)
		if _, err := os.Stat(resolved); err != nil {
			complain("%s: dangling link %q (%s does not exist)", md, m[1], resolved)
		}
	}
}
