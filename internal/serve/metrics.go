package serve

import (
	"strconv"
	"strings"

	"repro/internal/stats"
)

// TenantMetrics is one tenant's serving outcome.
type TenantMetrics struct {
	// Tenant and Weight echo the stream.
	Tenant string `json:"tenant"`
	Weight int    `json:"weight"`
	// Offered counts the stream's arrivals; Admitted and Rejected split
	// them at the admission bound; Completed counts finished requests
	// (everything admitted, once the run drains).
	Offered   int `json:"offered"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	// StarvedRounds counts dispatch rounds the tenant sat backlogged
	// without placing a single request in any batch.
	StarvedRounds int `json:"starved_rounds"`
	// Completion latency (done − arrival, µs) over completed requests.
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MeanUs float64 `json:"mean_us"`
	MaxUs  float64 `json:"max_us"`
	// ThroughputRps is the tenant's completions per second of the run's
	// makespan.
	ThroughputRps float64 `json:"throughput_rps"`
}

// Result is one serving run's outcome: aggregate counters, latency
// percentiles and the per-tenant breakdown. Two runs of the same mix on
// the same chip produce byte-identical Results (Fingerprint checks it).
type Result struct {
	// Policy echoes the resolved fairness policy.
	Policy string `json:"policy"`
	// Rounds counts dispatch rounds, IdleRounds the empty-queue rounds
	// that advanced time to the next arrival, Batches the dispatched
	// collectives.
	Rounds     int `json:"rounds"`
	IdleRounds int `json:"idle_rounds"`
	Batches    int `json:"batches"`
	// Aggregate admission and completion counters across tenants.
	Offered   int `json:"offered"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	// BatchOccupancy is the mean requests coalesced per batch.
	BatchOccupancy float64 `json:"batch_occupancy"`
	// StartUs is the earliest arrival, EndUs the latest completion,
	// MakespanUs their difference — the denominator of the throughputs.
	StartUs    float64 `json:"start_us"`
	EndUs      float64 `json:"end_us"`
	MakespanUs float64 `json:"makespan_us"`
	// ThroughputRps is aggregate completions per second; P50Us/P99Us are
	// completion-latency percentiles over all completed requests.
	ThroughputRps float64 `json:"throughput_rps"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	// Tenants is the per-tenant breakdown, in stream order.
	Tenants []TenantMetrics `json:"tenants"`
	// DoneUs is the raw per-request completion clock (global id order;
	// 0 = not completed). It feeds Fingerprint and the conformance
	// suite; it is omitted from JSON.
	DoneUs []float64 `json:"-"`
}

// Collect aggregates one replica's counters and the shared board into a
// Result. Pass replica 0 by convention (all replicas hold identical
// counters; the board is shared).
func Collect(s *Sched, b *Board) Result {
	res := Result{
		Policy:     s.cfg.policy(),
		Rounds:     s.rounds,
		IdleRounds: s.idleRounds,
		Batches:    s.nbatches,
		DoneUs:     append([]float64(nil), b.DoneUs...),
		Tenants:    make([]TenantMetrics, len(s.streams)),
	}
	if s.nbatches > 0 {
		res.BatchOccupancy = float64(s.batchReqs) / float64(s.nbatches)
	}
	var all []float64
	var lat []float64
	first, last := 0.0, 0.0
	haveFirst := false
	for t, st := range s.streams {
		tm := &res.Tenants[t]
		tm.Tenant, tm.Weight = st.Tenant, st.weight()
		tm.Offered = len(st.Reqs)
		tm.Admitted = s.admitted[t]
		tm.Rejected = s.rejected[t]
		tm.StarvedRounds = s.starved[t]
		if len(st.Reqs) > 0 {
			if a := s.arrival[t][0]; !haveFirst || a < first {
				first, haveFirst = a, true
			}
		}
		lat = lat[:0]
		for i := range st.Reqs {
			id := s.off[t] + i
			if s.state[id] != stDone {
				continue
			}
			tm.Completed++
			done := b.DoneUs[id]
			lat = append(lat, done-s.arrival[t][i])
			if done > last {
				last = done
			}
		}
		if len(lat) > 0 {
			sum := stats.Summarize(lat)
			tm.P50Us, tm.P99Us = sum.P50, sum.P99
			tm.MeanUs, tm.MaxUs = sum.Mean, sum.Max
			all = append(all, lat...)
		}
		res.Offered += tm.Offered
		res.Admitted += tm.Admitted
		res.Rejected += tm.Rejected
		res.Completed += tm.Completed
	}
	res.StartUs, res.EndUs = first, last
	res.MakespanUs = last - first
	if res.MakespanUs > 0 {
		res.ThroughputRps = float64(res.Completed) / res.MakespanUs * 1e6
		for t := range res.Tenants {
			res.Tenants[t].ThroughputRps = float64(res.Tenants[t].Completed) / res.MakespanUs * 1e6
		}
	}
	if len(all) > 0 {
		sum := stats.Summarize(all)
		res.P50Us, res.P99Us = sum.P50, sum.P99
	}
	return res
}

// Fingerprint renders every counter and every raw completion clock of
// the result into one string, floats in exact hexadecimal — two results
// are byte-identical iff their fingerprints are equal. The determinism
// gates (conformance suite, ocbench -verify serving) compare
// fingerprints of repeated runs.
func (r Result) Fingerprint() string {
	var sb strings.Builder
	num := func(v float64) {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	cnt := func(v int) {
		sb.WriteByte(' ')
		sb.WriteString(strconv.Itoa(v))
	}
	sb.WriteString(r.Policy)
	cnt(r.Rounds)
	cnt(r.IdleRounds)
	cnt(r.Batches)
	cnt(r.Offered)
	cnt(r.Admitted)
	cnt(r.Rejected)
	cnt(r.Completed)
	num(r.BatchOccupancy)
	num(r.StartUs)
	num(r.EndUs)
	num(r.ThroughputRps)
	num(r.P50Us)
	num(r.P99Us)
	for _, tm := range r.Tenants {
		sb.WriteByte('\n')
		sb.WriteString(tm.Tenant)
		cnt(tm.Weight)
		cnt(tm.Offered)
		cnt(tm.Admitted)
		cnt(tm.Rejected)
		cnt(tm.Completed)
		cnt(tm.StarvedRounds)
		num(tm.P50Us)
		num(tm.P99Us)
		num(tm.MeanUs)
		num(tm.MaxUs)
	}
	sb.WriteString("\ndone")
	for _, d := range r.DoneUs {
		num(d)
	}
	return sb.String()
}
