package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// directHandoff is the package-wide default for newly created (or Reset)
// engines: when true, a yielding process transfers control straight to
// the next runnable process in one channel operation; when false, every
// switch bounces through the engine goroutine (the classic two-hop
// scheduler). Both modes admit processes in exactly the same (clock, id)
// order — SetDirectHandoff exists so the equivalence suite can prove it.
var directHandoff = true

// SetDirectHandoff sets the scheduling mode every engine latches at the
// start of its next Run (pooled engines included) and returns the
// previous setting. Simulated timings are identical either way; only
// wall-clock cost differs. It is a test knob, not a tuning parameter —
// do not flip it concurrently with running simulations.
func SetDirectHandoff(enabled bool) (prev bool) {
	prev = directHandoff
	directHandoff = enabled
	return prev
}

// Engine is a deterministic virtual-time scheduler for a fixed set of
// processes. It is single-threaded from the simulation's point of view:
// although each process is a goroutine, exactly one runs at any instant,
// and the scheduler always picks the runnable process with the smallest
// virtual clock (ties broken by process id). Writes to simulated memory
// are therefore applied in global time order.
//
// Scheduling uses direct handoff: the process that yields picks the next
// runnable process off the run queue itself and passes the control token
// in a single channel send, so a switch costs one goroutine wakeup
// instead of a round-trip through a central goroutine. The engine
// goroutine (the caller of Run) only arbitrates the cases a yielding
// process cannot decide alone: an empty run queue (termination or
// deadlock) and panic unwinding.
type Engine struct {
	procs     []*Proc
	started   bool
	completed bool // last Run finished cleanly; required by Reset
	finished  int

	// handoff selects direct proc-to-proc control transfer (see
	// SetDirectHandoff); latched from the package default at the start
	// of every Run, so a pooled engine follows the current test knob no
	// matter when it was built or reset.
	handoff bool

	// inline selects inline state-machine execution for procs that Exec
	// frames (see SetInline); latched from the package default at the
	// start of every Run, like handoff.
	inline bool

	// persistent makes process goroutines park between runs instead of
	// exiting after one body (see SetPersistent). Only pooled engines
	// opt in: a parked goroutine pins its engine in memory forever, so
	// persistence is safe only under an owner that bounds engine count
	// and calls Shutdown before dropping one.
	persistent bool
	// spawned means persistent goroutines are live (parked on their
	// resume channels between runs).
	spawned bool

	// engch returns the control token to the engine goroutine. In
	// handoff mode it carries nil and is used only when the run queue is
	// empty (termination/deadlock) or a process panicked; in classic
	// mode every yield sends the yielding process through it.
	engch chan *Proc

	// body is the current Run's process body; persistent process
	// goroutines read it after being resumed.
	body func(*Proc)

	// runq holds every runnable process except the one currently
	// executing, keyed on (clock, id). The heap is maintained
	// incrementally: start and unblock push, the scheduler pops, and a
	// process that blocks or finishes simply is not pushed back.
	runq runQueue

	// watchers lists every blocked process with the key it waits on,
	// bucketed by the key's space so a signal scans only the waiters of
	// the space it touches — in practice 0 or 1 entries, since only an
	// MPB's owning core ever waits on it. At most one entry exists per
	// process across all buckets, so the total never exceeds N; within a
	// bucket registration order is preserved on removal, so wake order
	// matches the old per-key slices. Bucket backing arrays are retained
	// across runs, so the steady-state block path allocates nothing.
	watchers [][]watcherEntry
	// nWatchers counts entries across all watcher buckets; the signal
	// fast path bails on zero without touching the buckets at all.
	nWatchers int

	// obs, when non-nil, receives scheduling events (block/wake/done
	// instants) and supplies deadlock context. Nil means tracing is off;
	// every emission site guards on that.
	obs *obs.Recorder

	// switches counts slow-path context switches (yields that could not
	// take the keepRunning fast path) across the engine's lifetime. Both
	// scheduling modes produce the same count for the same workload — the
	// equivalence tests assert exactly that — and the number is the
	// scheduler's wall-clock cost driver, so benchmarks report it.
	switches int64

	panicVal any // re-panicked on Run if a process panicked
}

// Switches reports the cumulative number of slow-path context switches
// (not elided by the same-proc fast path) since the engine was created.
// Reset does not clear it; callers diff before/after a Run.
func (e *Engine) Switches() int64 { return e.switches }

// SetPersistent selects whether process goroutines park between runs
// (true) or exit after each run (false, the default). Parking makes a
// Reset+Run cycle skip 1 goroutine spawn per process, but a parked
// goroutine is a GC root that pins the whole engine, so only owners
// that bound how many engines exist — the chip pool — should opt in,
// and they must call Shutdown before dropping the engine. It must not
// be called while persistent goroutines are parked (Shutdown first).
func (e *Engine) SetPersistent(on bool) {
	if e.spawned && !on {
		panic("sim: SetPersistent(false) with parked goroutines; call Shutdown first")
	}
	e.persistent = on
}

// Shutdown wakes and exits the parked goroutines of a persistent
// engine so it can be garbage-collected. It is a no-op if nothing is
// parked, and refuses (returning false) for an engine abandoned
// mid-run or after a panic — its goroutines are parked at arbitrary
// yield points and cannot be released; such an engine must simply be
// dropped, accepting the pinned memory, as a panicked run already is.
func (e *Engine) Shutdown() bool {
	if !e.spawned {
		return true
	}
	if e.started && !e.completed {
		return false
	}
	for _, p := range e.procs {
		p.resume <- true
	}
	e.spawned = false
	return true
}

// WatchKey identifies a condition a process can block on. Memory
// implementations signal the key when a write may have changed the
// condition's outcome.
type WatchKey struct {
	// Space distinguishes address spaces (e.g. one per MPB).
	Space int
	// Line is the cache-line index within the space.
	Line int
}

// Cond is a block condition evaluated on Signal. Implementations that
// are reused across blocks (e.g. a buffer embedded in the waiting
// structure) keep the steady-state block path allocation-free; Block
// wraps plain closures for callers that don't care.
type Cond interface {
	// Holds reports whether the condition is now satisfied.
	Holds() bool
}

// condFunc adapts a plain predicate closure to Cond.
type condFunc func() bool

func (f condFunc) Holds() bool { return f() }

type blockedProc struct {
	p    *Proc
	cond Cond
	// wake is the earliest virtual time the process may resume
	// (typically the effective time of the write that satisfied the
	// predicate).
	wake Time
}

// watcherEntry pairs a blocked process's record with its watch key.
type watcherEntry struct {
	key WatchKey
	b   *blockedProc
}

// NewEngine creates an engine with n processes whose ids are 0..n-1.
func NewEngine(n int) *Engine {
	e := &Engine{
		engch:   make(chan *Proc),
		handoff: directHandoff,
	}
	e.procs = make([]*Proc, n)
	for i := range e.procs {
		e.procs[i] = newProc(e, i)
	}
	return e
}

// N reports the number of processes.
func (e *Engine) N() int { return len(e.procs) }

// SetObserver attaches a timeline recorder (nil detaches). Call before
// Run; the engine and its processes emit scheduling instants to it.
func (e *Engine) SetObserver(r *obs.Recorder) { e.obs = r }

// Observer returns the attached recorder, or nil when tracing is off.
func (e *Engine) Observer() *obs.Recorder { return e.obs }

// Proc returns process i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Run executes body(p) on every process concurrently in virtual time and
// returns when all processes have finished. It panics if the simulation
// deadlocks (some process blocked forever) or if any process panics.
//
// After a clean Run, Reset re-arms the engine for another; calling Run
// again without Reset panics.
func (e *Engine) Run(body func(p *Proc)) {
	if e.started {
		panic("sim: Engine.Run called twice; Reset the engine (or create a new one) between runs")
	}
	e.started = true
	e.handoff = directHandoff
	e.inline = inlineExec
	e.body = body
	if !e.spawned {
		for _, p := range e.procs {
			p.spawn()
		}
		e.spawned = e.persistent
	}
	for _, p := range e.procs {
		p.state = stateRunnable
		e.runq.push(p)
	}
	e.loop()
	e.body = nil
	if e.panicVal != nil {
		panic(e.panicVal)
	}
	e.completed = true
}

// Reset re-arms a cleanly completed engine for another Run, keeping
// every warm structure — process goroutines (parked on their resume
// channels), the run-queue array, and the watcher map with its drained
// per-key slices — so repeated simulations allocate nothing in the
// scheduler. It reports false (and does nothing) if the engine is
// mid-run or its last Run panicked: such an engine has goroutines parked
// at arbitrary points and must be abandoned.
func (e *Engine) Reset() bool {
	if e.started && !e.completed {
		return false
	}
	e.started = false
	e.completed = false
	e.finished = 0
	e.panicVal = nil
	e.obs = nil
	for s, ws := range e.watchers {
		for i := range ws {
			ws[i] = watcherEntry{}
		}
		e.watchers[s] = ws[:0]
	}
	e.nWatchers = 0
	for _, p := range e.procs {
		p.now = 0
		p.state = stateNew
		p.heapIdx = -1
		p.blockRec.cond = nil
		p.blockRec.wake = 0
		for i := range p.frames {
			p.frames[i] = nil
		}
		p.frames = p.frames[:0]
		p.wokeMachine = false
	}
	return true
}

// loop drives the scheduler until every process has finished. It picks
// the next process due a goroutine resume via nextToken — stepping any
// inline machines on this goroutine along the way — hands it the
// control token, and waits for the token to come back on engch. In
// handoff mode the token circulates among the processes themselves and
// returns only for termination, deadlock arbitration, or panic
// unwinding; in classic mode it returns after every goroutine step (y
// is then the process that just yielded, re-queued here if still
// runnable).
func (e *Engine) loop() {
	for e.finished < len(e.procs) {
		p := e.nextToken()
		if e.panicVal != nil {
			// Tear down by abandoning; goroutines parked on resume
			// channels are garbage once the engine is dropped (they
			// hold no OS resources).
			return
		}
		if p == nil {
			e.reportDeadlock()
		}
		p.resume <- false
		y := <-e.engch
		if e.panicVal != nil {
			return
		}
		if y != nil && y.state == stateRunnable {
			e.runq.push(y)
		}
	}
}

// Signal re-evaluates every process blocked on key. Processes whose
// predicate now holds become runnable no earlier than at time at.
// Memory implementations call this after applying a write.
func (e *Engine) Signal(key WatchKey, at Time) {
	if e.nWatchers == 0 {
		return
	}
	e.signalScan(key.Space, key.Line, 1, at, 0)
}

// SignalRange signals n consecutive line keys of one space, where line
// line0+i's write becomes effective at eff0+i·stride — the watcher
// fan-out of one bulk write extent, coalesced into a single scan of the
// blocked-process list. Each blocked process is woken at most once (a
// process blocks on a single key), and a wide extent costs one pass
// regardless of n — O(1) when nobody is waiting at all.
func (e *Engine) SignalRange(space, line0, n int, eff0 Time, stride Duration) {
	if e.nWatchers == 0 {
		return
	}
	e.signalScan(space, line0, n, eff0, stride)
}

// signalScan wakes every process blocked on a key inside the signalled
// line range whose condition now holds, compacting the space's watcher
// bucket in place (registration order preserved).
func (e *Engine) signalScan(space, line0, n int, eff0 Time, stride Duration) {
	if space >= len(e.watchers) {
		return
	}
	ws := e.watchers[space]
	keep := 0
	for idx, w := range ws {
		if w.key.Line >= line0 && w.key.Line < line0+n {
			b := w.b
			if b.cond.Holds() {
				at := eff0 + Duration(w.key.Line-line0)*stride
				if b.wake < at {
					b.wake = at
				}
				b.cond = nil // release the condition; the record is reused
				b.p.unblock(b.wake)
				continue
			}
		}
		if keep != idx {
			// Compact in place only once a wake opened a gap; until
			// then the scan is read-only — the common no-wake signal
			// never writes the list.
			ws[keep] = w
		}
		keep++
	}
	if keep == len(ws) {
		return
	}
	e.nWatchers -= len(ws) - keep
	for i := keep; i < len(ws); i++ {
		ws[i] = watcherEntry{}
	}
	e.watchers[space] = ws[:keep]
}

// addWatcher registers p as blocked on key with the given condition. A
// process blocks on at most one key at a time and its watcher entry is
// removed exactly when it is woken, so the record embedded in the Proc
// can be reused — no allocation per block once the list has grown.
func (e *Engine) addWatcher(key WatchKey, p *Proc, cond Cond) {
	p.blockRec.p = p
	p.blockRec.cond = cond
	p.blockRec.wake = p.now
	for key.Space >= len(e.watchers) {
		e.watchers = append(e.watchers, nil)
	}
	e.watchers[key.Space] = append(e.watchers[key.Space], watcherEntry{key: key, b: &p.blockRec})
	e.nWatchers++
}

// reportDeadlock panics with a description of all blocked processes.
// When tracing is on, the panic message includes each stuck process's
// last few timeline events, so the report says what every blocked core
// was doing — not just that it was blocked.
func (e *Engine) reportDeadlock() {
	var stuck []int
	for _, p := range e.procs {
		if p.state == stateBlocked {
			stuck = append(stuck, p.id)
		}
	}
	sort.Ints(stuck)
	msg := fmt.Sprintf("sim: deadlock — %d/%d processes finished, blocked procs: %v",
		e.finished, len(e.procs), stuck)
	if e.obs != nil {
		var sb strings.Builder
		sb.WriteString(msg)
		for _, id := range stuck {
			fmt.Fprintf(&sb, "\n  proc %d recent events:", id)
			tail := e.obs.Tail(id, deadlockTailEvents)
			if len(tail) == 0 {
				sb.WriteString(" (none recorded)")
			}
			for _, ev := range tail {
				fmt.Fprintf(&sb, "\n    %s", ev)
			}
		}
		msg = sb.String()
	}
	panic(msg)
}

// deadlockTailEvents is how many recent events per stuck process a
// deadlock report includes when tracing is on.
const deadlockTailEvents = 8
