package rcce

import (
	"repro/internal/scc"
	"repro/internal/sim"
)

// This file holds the inline state-machine forms of the RCCE protocol
// bodies (sim.Frame implementations): Barrier's gather-release tree and
// the chunked Send/Recv/SendRecv handshakes, each expressed as a
// program counter over the same rma Call* ops the blocking bodies
// issue. The blocking bodies in rcce.go remain the executable spec —
// the equivalence suite pins both byte-identical — and every Port
// method branches on Core.Inline at entry.

// barrierFrame program counter values.
const (
	bWaitA    uint8 = iota // wait for left child's arrival
	bWaitB                 // wait for right child's arrival
	bReport                // report arrival to parent
	bWaitRel               // wait for parent's release
	bRelLeft               // release left child
	bRelRight              // release right child
	bDone
)

// barrierFrame is Barrier's tree walk as a resumable machine. The
// epoch was already bumped by Barrier before Exec.
type barrierFrame struct {
	p  *Port
	pc uint8
}

func (f *barrierFrame) Step(proc *sim.Proc) sim.StepStatus {
	pt := f.p
	c := pt.core
	me := c.ID()
	n := c.N()
	left, right := 2*me+1, 2*me+2
	for {
		switch f.pc {
		case bWaitA:
			f.pc = bWaitB
			if left < n {
				return c.CallWaitFlagGE(lineBarrierChildA, pt.epoch)
			}
		case bWaitB:
			f.pc = bReport
			if right < n {
				return c.CallWaitFlagGE(lineBarrierChildB, pt.epoch)
			}
		case bReport:
			if me == 0 {
				f.pc = bRelLeft
				continue
			}
			parent := (me - 1) / 2
			childLine := lineBarrierChildA
			if me == 2*parent+2 {
				childLine = lineBarrierChildB
			}
			f.pc = bWaitRel
			return c.CallSetFlag(parent, childLine, pt.epoch)
		case bWaitRel:
			f.pc = bRelLeft
			return c.CallWaitFlagGE(lineBarrierRelease, pt.epoch)
		case bRelLeft:
			f.pc = bRelRight
			if left < n {
				return c.CallSetFlag(left, lineBarrierRelease, pt.epoch)
			}
		case bRelRight:
			f.pc = bDone
			if right < n {
				return c.CallSetFlag(right, lineBarrierRelease, pt.epoch)
			}
		default:
			return sim.StepDone
		}
	}
}

// twoFrame op selector.
type twoOp uint8

const (
	twoSend twoOp = iota
	twoRecv
	twoSendRecv
)

// twoFrame program counter values. Each op starts at its own loop head.
const (
	sLoop uint8 = iota // Send: next chunk — stage into own MPB
	sFlag              // flag the receiver
	sAck               // await the consumption ack
	sNext              // advance the chunk offset

	rLoop // Recv: next chunk — await the sender's flag
	rGet  // pull the chunk
	rAck  // ack consumption
	rNext // advance the chunk offset

	xLoop     // SendRecv: next round — maybe stage outgoing
	xSendFlag // flag the receiver
	xSendDone // outgoing chunk staged+flagged
	xRecvGet  // incoming flag seen: pull the chunk
	xRecvAck  // ack the incoming chunk
	xRecvDone // incoming chunk consumed
	xAck      // await the ack for this round's staged chunk
)

// twoFrame is the chunk loop of Send, Recv or SendRecv as a resumable
// machine; one embedded instance per Port suffices because a core runs
// at most one two-sided call at a time (SendRecv is the one call that
// interleaves a send and a receive, and it is a single frame here).
type twoFrame struct {
	p  *Port
	op twoOp
	pc uint8

	dst, src            int
	sendAddr, sendLines int
	recvAddr, recvLines int
	sendOff, recvOff    int
	m, rm               int
	seq                 uint64
	staged              bool
}

func (f *twoFrame) Step(proc *sim.Proc) sim.StepStatus {
	pt := f.p
	c := pt.core
	me := c.ID()
	for {
		switch f.pc {
		// ---- Send ----
		case sLoop:
			if f.sendOff >= f.sendLines {
				return sim.StepDone
			}
			f.m = chunkLines(f.sendLines - f.sendOff)
			pt.sendSeq[f.dst]++
			f.seq = pt.sendSeq[f.dst]
			f.pc = sFlag
			return c.CallPutMemToMPB(me, 0, f.sendAddr+f.sendOff*scc.CacheLine, f.m)
		case sFlag:
			f.pc = sAck
			return c.CallSetFlag(f.dst, lineSent, tag(me, f.seq))
		case sAck:
			f.pc = sNext
			return c.CallWaitFlagEQ(lineReady, tag(f.dst, f.seq))
		case sNext:
			f.sendOff += f.m
			f.pc = sLoop

		// ---- Recv ----
		case rLoop:
			if f.recvOff >= f.recvLines {
				return sim.StepDone
			}
			f.rm = chunkLines(f.recvLines - f.recvOff)
			pt.recvSeq[f.src]++
			f.seq = pt.recvSeq[f.src]
			f.pc = rGet
			return c.CallWaitFlagEQ(lineSent, tag(f.src, f.seq))
		case rGet:
			f.pc = rAck
			return c.CallGetMPBToMem(f.src, 0, f.recvAddr+f.recvOff*scc.CacheLine, f.rm)
		case rAck:
			f.pc = rNext
			return c.CallSetFlag(f.src, lineReady, tag(me, f.seq))
		case rNext:
			f.recvOff += f.rm
			f.pc = rLoop

		// ---- SendRecv ----
		case xLoop:
			if f.sendOff >= f.sendLines && f.recvOff >= f.recvLines {
				return sim.StepDone
			}
			f.staged = false
			if f.sendOff < f.sendLines {
				f.m = chunkLines(f.sendLines - f.sendOff)
				pt.sendSeq[f.dst]++
				f.seq = pt.sendSeq[f.dst]
				f.pc = xSendFlag
				return c.CallPutMemToMPB(me, 0, f.sendAddr+f.sendOff*scc.CacheLine, f.m)
			}
			f.pc = xSendDone
		case xSendFlag:
			f.pc = xSendDone
			f.sendOff += f.m
			f.staged = true
			return c.CallSetFlag(f.dst, lineSent, tag(me, f.seq))
		case xSendDone:
			if f.recvOff < f.recvLines {
				f.rm = chunkLines(f.recvLines - f.recvOff)
				pt.recvSeq[f.src]++
				f.pc = xRecvGet
				return c.CallWaitFlagEQ(lineSent, tag(f.src, pt.recvSeq[f.src]))
			}
			f.pc = xAck
		case xRecvGet:
			f.pc = xRecvAck
			return c.CallGetMPBToMem(f.src, 0, f.recvAddr+f.recvOff*scc.CacheLine, f.rm)
		case xRecvAck:
			f.pc = xRecvDone
			return c.CallSetFlag(f.src, lineReady, tag(me, pt.recvSeq[f.src]))
		case xRecvDone:
			f.recvOff += f.rm
			f.pc = xAck
		default: // xAck
			f.pc = xLoop
			if f.staged {
				return c.CallWaitFlagEQ(lineReady, tag(f.dst, f.seq))
			}
		}
	}
}

// chunkLines caps one chunk at the RCCE staging-buffer size.
func chunkLines(rem int) int {
	if rem > PayloadLines {
		return PayloadLines
	}
	return rem
}
