package sim

import (
	"math/rand"
	"testing"
)

// Inline machine execution must be indistinguishable from the goroutine
// scheduler — same traces, same clocks, same slow-path switch counts —
// across both handoff modes. These tests drive the same randomized
// workload handoff_test.go uses through a state-machine frame and
// through the plain goroutine body, and compare every event.

// stressCtx is the shared state of one stress run: the trace, the
// per-proc progress counters the blocking rendezvous reads, and the
// engine (frames signal through it).
type stressCtx struct {
	e     *Engine
	trace []stressEv
	vals  []uint64
	nproc int
	steps int
}

// stressStep performs one loop iteration's post-advance work (identical
// for the frame and the goroutine body): record the event, bump the
// counter, signal watchers. It reports whether step s is a rendezvous
// step and, if so, which peer/threshold to wait for.
func (c *stressCtx) stressStep(p *Proc, s int) (peer int, want uint64, blockNow bool) {
	c.trace = append(c.trace, stressEv{id: p.ID(), now: p.now, step: s})
	c.vals[p.ID()]++
	c.e.Signal(WatchKey{Space: 0, Line: p.ID()}, p.now)
	if s%8 != 3 {
		return 0, 0, false
	}
	peer = (p.ID() + 1) % c.nproc
	want = c.vals[p.ID()] - 1
	if want > uint64(c.steps) {
		want = uint64(c.steps)
	}
	return peer, want, true
}

// stressCond is the frame's reusable rendezvous condition (the machine
// form of the closure the goroutine body passes to Block).
type stressCond struct {
	c    *stressCtx
	peer int
	want uint64
}

func (sc *stressCond) Holds() bool { return sc.c.vals[sc.peer] >= sc.want }

// stressFrame is the state-machine transcription of runStress's body:
// pc 0 advances, pc 1 records/signals and optionally blocks, matching
// the goroutine form resume point for resume point.
type stressFrame struct {
	c    *stressCtx
	rng  *rand.Rand
	s    int
	pc   uint8
	cond stressCond
}

func (f *stressFrame) Step(p *Proc) StepStatus {
	for {
		switch f.pc {
		case 0:
			if f.s == f.c.steps {
				return StepDone
			}
			p.MachineAdvance(Duration(f.rng.Intn(5)))
			f.pc = 1
			return StepYield
		default:
			peer, want, block := f.c.stressStep(p, f.s)
			f.s++
			f.pc = 0
			if block {
				f.cond = stressCond{c: f.c, peer: peer, want: want}
				if f.cond.Holds() {
					// BlockCond on a satisfied condition still yields
					// (subject to the keepRunning fast path).
					return StepYield
				}
				p.MachineBlock(WatchKey{Space: 0, Line: peer}, &f.cond)
				return StepBlock
			}
		}
	}
}

// runMachineStress executes the handoff_test.go stress workload in the
// requested execution × scheduling mode and returns the trace and
// slow-path switch count. inline runs the body as an Exec'd frame;
// otherwise the goroutine form runs (Advance/BlockCond directly).
func runMachineStress(seed int64, nproc, steps int, inline, handoff bool) ([]stressEv, int64) {
	prevH := SetDirectHandoff(handoff)
	defer SetDirectHandoff(prevH)
	prevI := SetInline(inline)
	defer SetInline(prevI)

	e := NewEngine(nproc)
	c := &stressCtx{e: e, vals: make([]uint64, nproc), nproc: nproc, steps: steps}
	frames := make([]stressFrame, nproc)
	conds := make([]stressCond, nproc)
	e.Run(func(p *Proc) {
		rng := rand.New(rand.NewSource(seed + int64(p.ID())*7919))
		if p.InlineActive() {
			frames[p.ID()] = stressFrame{c: c, rng: rng}
			p.Exec(&frames[p.ID()])
			return
		}
		for s := 0; s < steps; s++ {
			p.Advance(Duration(rng.Intn(5)))
			peer, want, block := c.stressStep(p, s)
			if block {
				conds[p.ID()] = stressCond{c: c, peer: peer, want: want}
				p.BlockCond(WatchKey{Space: 0, Line: peer}, &conds[p.ID()])
			}
		}
	})
	return c.trace, e.Switches()
}

// TestMachineEquivalenceMatrix asserts all four execution × scheduling
// modes — {inline, goroutine} × {handoff, classic} — produce identical
// traces and slow-path switch counts on randomized workloads.
func TestMachineEquivalenceMatrix(t *testing.T) {
	type mode struct {
		name            string
		inline, handoff bool
	}
	modes := []mode{
		{"inline+handoff", true, true},
		{"inline+classic", true, false},
		{"goroutine+handoff", false, true},
		{"goroutine+classic", false, false},
	}
	for seed := int64(1); seed <= 6; seed++ {
		ref, refSw := runMachineStress(seed, 9, 120, modes[0].inline, modes[0].handoff)
		for _, m := range modes[1:] {
			got, gotSw := runMachineStress(seed, 9, 120, m.inline, m.handoff)
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %s trace length %d, %s %d",
					seed, modes[0].name, len(ref), m.name, len(got))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: trace diverges at event %d: %+v (%s) vs %+v (%s)",
						seed, i, ref[i], modes[0].name, got[i], m.name)
				}
			}
			if gotSw != refSw {
				t.Errorf("seed %d: switch count %d (%s) vs %d (%s)",
					seed, refSw, modes[0].name, gotSw, m.name)
			}
		}
	}
}

// countFrame advances n times by fixed durations, bumping a counter.
type countFrame struct {
	n, s  int
	d     Duration
	count *int
}

func (f *countFrame) Step(p *Proc) StepStatus {
	if f.s == f.n {
		return StepDone
	}
	f.s++
	*f.count++
	p.MachineAdvance(f.d)
	return StepYield
}

// callerFrame Calls a child countFrame and then runs one more advance
// of its own, exercising the frame stack push/pop.
type callerFrame struct {
	pc    uint8
	child countFrame
	count *int
}

func (f *callerFrame) Step(p *Proc) StepStatus {
	switch f.pc {
	case 0:
		f.pc = 1
		f.child = countFrame{n: 3, d: 2, count: f.count}
		p.Call(&f.child)
		return StepCall
	default:
		*f.count += 100
		return StepDone
	}
}

// TestMachineCall pins nested frames: the parent resumes only after the
// child completes, and the clock reflects both frames' advances.
func TestMachineCall(t *testing.T) {
	e := NewEngine(2)
	counts := make([]int, 2)
	frames := make([]callerFrame, 2)
	var finals [2]Time
	e.Run(func(p *Proc) {
		frames[p.ID()] = callerFrame{count: &counts[p.ID()]}
		p.Exec(&frames[p.ID()])
		finals[p.ID()] = p.Now()
	})
	for i := 0; i < 2; i++ {
		if counts[i] != 103 {
			t.Errorf("proc %d count %d, want 103 (3 child steps + parent tail)", i, counts[i])
		}
		if finals[i] != 6 {
			t.Errorf("proc %d final clock %v, want 6", i, finals[i])
		}
	}
}

// panicFrame panics at step s of n advances.
type panicFrame struct {
	n, s, at int
}

func (f *panicFrame) Step(p *Proc) StepStatus {
	if f.s == f.at {
		panic("frame boom")
	}
	if f.s == f.n {
		return StepDone
	}
	f.s++
	p.MachineAdvance(1)
	return StepYield
}

// TestMachinePanic asserts a panicking frame surfaces through Run in
// both scheduling modes, whether the panic fires on the proc's own
// goroutine (first step, inside Exec) or on a foreign token holder's
// (a later step, reached via the drain loop).
func TestMachinePanic(t *testing.T) {
	for _, handoff := range []bool{true, false} {
		for _, at := range []int{0, 3} {
			func() {
				prev := SetDirectHandoff(handoff)
				defer SetDirectHandoff(prev)
				defer func() {
					if r := recover(); r != "frame boom" {
						t.Errorf("handoff=%v at=%d: panic = %v, want frame boom", handoff, at, r)
					}
				}()
				e := NewEngine(3)
				frames := make([]panicFrame, 3)
				e.Run(func(p *Proc) {
					// Proc 1 panics; the others advance long enough that
					// a foreign goroutine is holding the token when the
					// late panic fires.
					at := at
					if p.ID() != 1 {
						at = -1
					}
					frames[p.ID()] = panicFrame{n: 6, at: at}
					p.Exec(&frames[p.ID()])
				})
			}()
		}
	}
}

// foreverFrame blocks on a condition that never holds.
type foreverFrame struct{ blocked bool }

type neverCond struct{}

func (neverCond) Holds() bool { return false }

func (f *foreverFrame) Step(p *Proc) StepStatus {
	if f.blocked {
		panic("sim: woken from a never-true condition")
	}
	f.blocked = true
	p.MachineBlock(WatchKey{Space: 1, Line: 1}, neverCond{})
	return StepBlock
}

// TestMachineDeadlock asserts a frame blocking forever produces the
// standard deadlock report.
func TestMachineDeadlock(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("machine deadlock not detected")
		}
	}()
	e := NewEngine(2)
	var frames [2]foreverFrame
	e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Exec(&frames[0])
		}
	})
}

// TestMachineExecAllocFree pins the inline hot path: a warmed
// persistent engine running Exec'd frames allocates nothing per
// Reset+Run cycle — the frame stack, run queue and watcher buckets all
// reuse their backing arrays.
func TestMachineExecAllocFree(t *testing.T) {
	e := NewEngine(4)
	e.SetPersistent(true)
	defer e.Shutdown()
	count := 0
	frames := make([]countFrame, 4)
	body := func(p *Proc) {
		frames[p.ID()] = countFrame{n: 50, d: Duration(1 + p.ID()%3), count: &count}
		p.Exec(&frames[p.ID()])
	}
	e.Run(body) // warm: spawn goroutines, grow heap and frame stacks
	allocs := testing.AllocsPerRun(20, func() {
		if !e.Reset() {
			t.Fatal("Reset refused")
		}
		e.Run(body)
	})
	if allocs > 0 {
		t.Errorf("Reset+Run of warmed inline machines allocates %.1f times per cycle, want 0", allocs)
	}
}
