package serve

import (
	"fmt"
	"math/rand"

	"repro/internal/workload"
)

// Stream adapters: the bridges from the repo's load sources — recorded
// application traces (internal/workload) and seeded synthetic
// generators — to serving request streams. Both are pure functions of
// their inputs, so a tenant mix is reproducible byte-for-byte and the
// serving runs built on it are deterministic.

// FromTrace turns a recorded application trace into a tenant stream:
// each record becomes one request, its inter-arrival gap the record's
// issue delta plus its compute gap (the application's own think time —
// in a serving mix the runtime, not the tenant, decides what overlaps).
func FromTrace(tenant string, weight int, t *workload.Trace) Stream {
	s := Stream{Tenant: tenant, Weight: weight, Reqs: make([]Req, len(t.Records))}
	for i, r := range t.Records {
		s.Reqs[i] = Req{Op: r.Op, Root: r.Root, Lines: r.Lines, GapUs: r.DeltaUs + r.ComputeUs}
	}
	return s
}

// ScaleGaps returns a copy of the stream with every inter-arrival gap
// divided by load — the offered-load knob of the fig-serving sweep
// (load 2 arrives twice as fast). It panics on a non-positive load
// (programming error).
func ScaleGaps(s Stream, load float64) Stream {
	if load <= 0 {
		panic(fmt.Sprintf("serve: ScaleGaps load %v must be positive", load))
	}
	out := Stream{Tenant: s.Tenant, Weight: s.Weight, Reqs: make([]Req, len(s.Reqs))}
	for i, r := range s.Reqs {
		r.GapUs /= load
		out.Reqs[i] = r
	}
	return out
}

// SyntheticParams shape a seeded synthetic tenant: Count requests, each
// drawing an operation and payload uniformly from Ops/Lines, a root
// uniform over the chip's N cores for rooted ops, and an exponential
// inter-arrival gap of mean MeanGapUs — an open-loop Poisson tenant.
type SyntheticParams struct {
	// Tenant and Weight identify the stream.
	Tenant string
	Weight int
	// Seed drives the generator; the same seed reproduces the stream
	// byte-for-byte.
	Seed int64
	// Count is the number of requests.
	Count int
	// N is the chip's core count (rooted ops draw roots below it).
	N int
	// Ops and Lines are the choice sets (uniform).
	Ops   []string
	Lines []int
	// MeanGapUs is the mean inter-arrival gap in microseconds.
	MeanGapUs float64
}

// Synthetic generates the stream. It panics on empty choice sets or a
// non-positive count (programming errors in experiment setup).
func Synthetic(p SyntheticParams) Stream {
	if p.Count <= 0 || len(p.Ops) == 0 || len(p.Lines) == 0 || p.N <= 0 {
		panic(fmt.Sprintf("serve: Synthetic needs positive Count/N and non-empty Ops/Lines (got %+v)", p))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := Stream{Tenant: p.Tenant, Weight: p.Weight, Reqs: make([]Req, p.Count)}
	for i := range s.Reqs {
		op := p.Ops[rng.Intn(len(p.Ops))]
		r := Req{Op: op, Lines: p.Lines[rng.Intn(len(p.Lines))]}
		if rootedOp(op) {
			r.Root = rng.Intn(p.N)
		}
		gap := p.MeanGapUs * rng.ExpFloat64()
		if gap > workload.MaxGapUs {
			gap = workload.MaxGapUs
		}
		r.GapUs = gap
		s.Reqs[i] = r
	}
	return s
}
