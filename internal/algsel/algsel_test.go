package algsel

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
)

func TestRegistryShape(t *testing.T) {
	wantOps := []Op{OpAllGather, OpAllReduce, OpBcast, OpGather, OpReduce, OpScatter}
	got := Ops()
	if len(got) != len(wantOps) {
		t.Fatalf("Ops() = %v, want %v", got, wantOps)
	}
	for i, op := range wantOps {
		if got[i] != op {
			t.Fatalf("Ops() = %v, want %v", got, wantOps)
		}
	}
	// Every op wraps both existing stacks.
	for _, op := range wantOps {
		if _, ok := Lookup(op, "oc"); !ok {
			t.Errorf("%s: no one-sided entry", op)
		}
		names := []string{}
		for _, a := range For(op) {
			names = append(names, a.Name)
		}
		if !strings.Contains(strings.Join(names, ","), "twosided") && op != OpBcast {
			t.Errorf("%s: no two-sided entry (have %v)", op, names)
		}
	}
	// The new algorithms that prove the interface generalizes.
	if _, ok := Lookup(OpAllReduce, "rabenseifner"); !ok {
		t.Error("allreduce: rabenseifner not registered")
	}
	if _, ok := Lookup(OpAllGather, "ring"); !ok {
		t.Error("allgather: ring not registered")
	}
	// Registered names resolve through Known; unknown ones don't.
	for _, name := range []string{"oc", "twosided", "rabenseifner", "ring", "binomial"} {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	if Known("nonsense") {
		t.Error(`Known("nonsense") = true`)
	}
}

func TestRegisterPanics(t *testing.T) {
	check := func(name string, a Algorithm) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(a)
	}
	check("duplicate", Algorithm{Op: OpBcast, Name: "oc", Run: func(*Env, Choice, Args) {}})
	check("no run", Algorithm{Op: OpBcast, Name: "newalg"})
	check("no name", Algorithm{Op: OpBcast, Run: func(*Env, Choice, Args) {}})
}

func TestChoiceString(t *testing.T) {
	cases := map[string]Choice{
		"oc(k=7,chunk=96)": {Alg: "oc", K: 7, ChunkLines: 96},
		"oc(k=7)":          {Alg: "oc", K: 7},
		"ring(chunk=48)":   {Alg: "ring", ChunkLines: 48},
		"twosided":         {Alg: "twosided"},
	}
	for want, ch := range cases {
		if got := ch.String(); got != want {
			t.Errorf("Choice%+v.String() = %q, want %q", ch, got, want)
		}
	}
}

func TestValidChoice(t *testing.T) {
	base := core.DefaultConfig()
	oc, _ := Lookup(OpAllReduce, "oc")
	if !ValidChoice(base, oc, Choice{Alg: "oc", K: 7, ChunkLines: 96}) {
		t.Error("paper default rejected")
	}
	// Two 96-line buffers + 2·47+2 flags exceed the 250-line budget.
	if ValidChoice(base, oc, Choice{Alg: "oc", K: 47, ChunkLines: 96}) {
		t.Error("k=47 with 96-line chunks accepted (cannot fit occoll flags)")
	}
	ts, _ := Lookup(OpAllReduce, "twosided")
	if !ValidChoice(base, ts, Choice{Alg: "twosided", K: 47, ChunkLines: 9999}) {
		t.Error("two-sided choice rejected (has no MPB layout)")
	}
}

// runEnv executes body on an n-core chip with a fresh Env per core.
func runEnv(t *testing.T, n int, body func(e *Env)) *rma.Chip {
	t.Helper()
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	base := core.DefaultConfig()
	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		body(NewEnv(c, port, base, nil, nil))
	})
	return chip
}

// TestEveryRegisteredAlgorithmRuns executes every registry entry of
// every operation on a small chip and verifies the operation's semantics
// — the registry's core contract: entries of one op are interchangeable.
func TestEveryRegisteredAlgorithmRuns(t *testing.T) {
	const n, lines = 8, 3
	nbytes := lines * scc.CacheLine
	for _, op := range Ops() {
		for _, alg := range For(op) {
			alg := alg
			t.Run(string(op)+"/"+alg.Name, func(t *testing.T) {
				chip := rma.NewChipN(scc.DefaultConfig(), n)
				payloads := make([][]byte, n)
				for i := 0; i < n; i++ {
					payloads[i] = make([]byte, (n+1)*nbytes)
					for j := range payloads[i] {
						payloads[i][j] = byte(i*29 + j*3 + 7)
					}
					chip.Private(i).Write(0, payloads[i])
				}
				args := Args{Root: 0, Addr: 0, Scratch: 1 << 16, Lines: lines, Reduce: collective.SumInt64}
				base := core.DefaultConfig()
				chip.Run(func(c *rma.Core) {
					e := NewEnv(c, rcce.NewPort(c), base, nil, nil)
					alg.Run(e, Choice{Alg: alg.Name}, args)
				})
				verifyOp(t, chip, op, n, lines, payloads)
			})
		}
	}
}

// verifyOp checks an operation's defining postcondition.
func verifyOp(t *testing.T, chip *rma.Chip, op Op, n, lines int, payloads [][]byte) {
	t.Helper()
	nbytes := lines * scc.CacheLine
	read := func(core, addr, nb int) []byte {
		b := make([]byte, nb)
		chip.Private(core).Read(b, addr, nb)
		return b
	}
	switch op {
	case OpBcast:
		for i := 0; i < n; i++ {
			if !bytes.Equal(read(i, 0, nbytes), payloads[0][:nbytes]) {
				t.Fatalf("core %d: broadcast payload mismatch", i)
			}
		}
	case OpReduce:
		want := append([]byte(nil), payloads[0][:nbytes]...)
		for i := 1; i < n; i++ {
			collective.SumInt64(want, payloads[i][:nbytes])
		}
		if !bytes.Equal(read(0, 0, nbytes), want) {
			t.Fatal("root: reduce result mismatch")
		}
	case OpAllReduce:
		want := append([]byte(nil), payloads[0][:nbytes]...)
		for i := 1; i < n; i++ {
			collective.SumInt64(want, payloads[i][:nbytes])
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(read(i, 0, nbytes), want) {
				t.Fatalf("core %d: allreduce result mismatch", i)
			}
		}
	case OpScatter:
		for i := 1; i < n; i++ {
			if !bytes.Equal(read(i, i*nbytes, nbytes), payloads[0][i*nbytes:(i+1)*nbytes]) {
				t.Fatalf("core %d: scatter block mismatch", i)
			}
		}
	case OpGather:
		for i := 0; i < n; i++ {
			if !bytes.Equal(read(0, i*nbytes, nbytes), payloads[i][i*nbytes:(i+1)*nbytes]) {
				t.Fatalf("root: gathered block %d mismatch", i)
			}
		}
	case OpAllGather:
		for i := 0; i < n; i++ {
			for b := 0; b < n; b++ {
				if !bytes.Equal(read(i, b*nbytes, nbytes), payloads[b][b*nbytes:(b+1)*nbytes]) {
					t.Fatalf("core %d: allgather block %d mismatch", i, b)
				}
			}
		}
	}
}

// TestEnvReusesInstances pins the Env caching rules: the base
// configuration resolves to the attached default engine, per-choice
// engines are cached, and the non-default path builds a working engine.
func TestEnvReusesInstances(t *testing.T) {
	runEnv(t, 4, func(e *Env) {
		a := e.OC(Choice{Alg: "oc"})
		if e.OC(Choice{Alg: "oc", K: e.Base.K, ChunkLines: e.Base.BufLines}) != a {
			t.Error("explicit base choice built a second engine")
		}
		b := e.OC(Choice{Alg: "oc", K: 3})
		if b == a {
			t.Error("k=3 choice reused the base engine")
		}
		if e.OC(Choice{Alg: "oc", K: 3}) != b {
			t.Error("k=3 engine not cached")
		}
		bc := e.Bcaster(Choice{})
		if e.Bcaster(Choice{}) != bc {
			t.Error("base broadcaster not cached")
		}
		if e.Bcaster(Choice{K: 3}) == bc {
			t.Error("k=3 broadcaster reused the base one")
		}
	})
}
