package ocbcast_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	ocbcast "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

// The observability contract: Options.Trace records the timeline but
// NEVER changes what the simulator computes. These tests pin that
// contract on a real workload that exercises every span family —
// blocking collectives (sync spans), Compute (compute bucket), a
// non-blocking broadcast polled to completion (async spans, counters,
// progress instants) and the flag waits underneath all of them.

const (
	traceBcastLines = 64
	traceRedLines   = 16
	traceIbLines    = 32
	traceRedAddr    = 16 << 10
	traceIbAddr     = 32 << 10
)

func traceWorkload(c *ocbcast.Core) {
	c.Broadcast(0, 0, traceBcastLines)
	c.Compute(3)
	c.AllReduceOC(traceRedAddr, traceRedLines, ocbcast.SumInt64)
	r := c.IBcastOC(0, traceIbAddr, traceIbLines)
	for !r.Test() {
		c.Compute(2)
	}
}

// runTraceWorkload runs traceWorkload on a fresh System and returns
// everything an identical re-run must reproduce bit for bit: per-core
// completion times, per-core data-movement counters and the broadcast
// output buffers.
func runTraceWorkload(t *testing.T, traceOn bool) (sys *ocbcast.System, us []float64, ctr []trace.CoreCounters, out [][]byte) {
	t.Helper()
	sys = ocbcast.New(ocbcast.Options{Trace: traceOn})
	sys.WritePrivate(0, 0, payload(traceBcastLines))
	sys.WritePrivate(0, traceIbAddr, payload(traceIbLines))
	us = make([]float64, sys.N())
	sys.Run(func(c *ocbcast.Core) {
		red := make([]byte, traceRedLines*ocbcast.CacheLineBytes)
		for i := range red {
			red[i] = byte(c.ID())
		}
		c.WriteOwnPrivate(traceRedAddr, red)
		traceWorkload(c)
		us[c.ID()] = c.NowMicros()
	})
	for i := 0; i < sys.N(); i++ {
		ctr = append(ctr, sys.Counters(i))
		out = append(out, sys.ReadPrivate(i, traceIbAddr, traceIbLines*ocbcast.CacheLineBytes))
	}
	return sys, us, ctr, out
}

// TestTraceParity is the zero-cost-when-observed guarantee: a traced
// run produces bit-identical simulated times, counters and data as the
// untraced run of the same workload.
func TestTraceParity(t *testing.T) {
	offSys, offUs, offCtr, offOut := runTraceWorkload(t, false)
	onSys, onUs, onCtr, onOut := runTraceWorkload(t, true)

	if tl := offSys.Timeline(); tl != nil {
		t.Fatal("Timeline() != nil with tracing off")
	}
	for i := range offUs {
		if offUs[i] != onUs[i] {
			t.Fatalf("core %d completion time: untraced %v µs, traced %v µs", i, offUs[i], onUs[i])
		}
		if offCtr[i] != onCtr[i] {
			t.Fatalf("core %d counters diverge:\n  untraced %v\n  traced   %v", i, offCtr[i], onCtr[i])
		}
		if !bytes.Equal(offOut[i], onOut[i]) {
			t.Fatalf("core %d output bytes diverge between traced and untraced runs", i)
		}
	}

	tl := onSys.Timeline()
	if tl == nil {
		t.Fatal("Timeline() == nil with tracing on")
	}
	if err := tl.Validate(); err != nil {
		t.Fatalf("timeline invalid: %v", err)
	}
	if tl.NCores != onSys.N() || len(tl.Events) == 0 || tl.End <= 0 {
		t.Fatalf("timeline shape: ncores=%d events=%d end=%d", tl.NCores, len(tl.Events), tl.End)
	}
}

// TestTraceAttributionSumsToTotal is the acceptance criterion on the
// time-attribution report: per core, the six buckets partition the
// core's full simulated lifetime with nothing dropped or counted twice.
func TestTraceAttributionSumsToTotal(t *testing.T) {
	sys, us, _, _ := runTraceWorkload(t, true)
	tl := sys.Timeline()
	att := tl.Attribution()
	if len(att) != sys.N() {
		t.Fatalf("attribution rows = %d, want %d", len(att), sys.N())
	}
	for _, a := range att {
		var sum obs.Time
		for _, b := range a.Buckets {
			sum += b
		}
		if sum != a.Total {
			t.Fatalf("core %d: buckets sum to %d ps, total %d ps", a.Core, sum, a.Total)
		}
		// Total is the core's final clock: the "done" instant pins it.
		if got := float64(a.Total) / 1e6; got != us[a.Core] {
			t.Fatalf("core %d: attribution total %.4f µs, core finished at %.4f µs", a.Core, got, us[a.Core])
		}
		if a.Buckets[obs.BucketCompute] <= 0 {
			t.Fatalf("core %d: workload computes but compute bucket is %d", a.Core, a.Buckets[obs.BucketCompute])
		}
		if a.Buckets[obs.BucketMPB]+a.Buckets[obs.BucketMem] <= 0 {
			t.Fatalf("core %d: no data-movement time attributed", a.Core)
		}
	}
}

// perfettoEvent mirrors the fields of the exported trace-event records
// that the schema test checks.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// TestTracePerfettoSchema validates the exported JSON the way the
// Perfetto importer would: parseable, one metadata record per core,
// balanced B/E per track, per-track timestamps nondecreasing, async
// begin/end ids paired, and only known phase letters.
func TestTracePerfettoSchema(t *testing.T) {
	sys, _, _, _ := runTraceWorkload(t, true)
	tl := sys.Timeline()
	var buf bytes.Buffer
	if err := tl.WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}

	var doc struct {
		DisplayTimeUnit string          `json:"displayTimeUnit"`
		TraceEvents     []perfettoEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if want := tl.NCores + len(tl.Events); len(doc.TraceEvents) != want {
		t.Fatalf("traceEvents = %d records, want %d (metadata + events)", len(doc.TraceEvents), want)
	}

	depth := make(map[int]int)      // per-track open sync spans
	lastTs := make(map[int]float64) // per-track timestamp cursor
	asyncOpen := make(map[string]int)
	meta := 0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			continue
		case "B":
			depth[ev.Tid]++
		case "E":
			depth[ev.Tid]--
			if depth[ev.Tid] < 0 {
				t.Fatalf("record %d: E without B on track %d", i, ev.Tid)
			}
		case "b":
			if ev.ID == "" {
				t.Fatalf("record %d: async begin without id", i)
			}
			asyncOpen[ev.ID]++
		case "e":
			asyncOpen[ev.ID]--
			if asyncOpen[ev.ID] < 0 {
				t.Fatalf("record %d: async end %q without begin", i, ev.ID)
			}
		case "i":
			if ev.S != "t" {
				t.Fatalf("record %d: instant scope %q, want \"t\"", i, ev.S)
			}
		case "C":
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("record %d: counter without args.value", i)
			}
		default:
			t.Fatalf("record %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Ts < lastTs[ev.Tid] {
			t.Fatalf("record %d: track %d goes back in time (%v µs after %v µs)", i, ev.Tid, ev.Ts, lastTs[ev.Tid])
		}
		lastTs[ev.Tid] = ev.Ts
	}
	if meta != tl.NCores {
		t.Fatalf("metadata records = %d, want one per core (%d)", meta, tl.NCores)
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("track %d ends with %d unclosed sync spans", tid, d)
		}
	}
	for id, n := range asyncOpen {
		if n != 0 {
			t.Fatalf("async span %s left open", id)
		}
	}
}

// TestTraceSpanFamilies spot-checks that each layer shows up on the
// timeline under its documented category.
func TestTraceSpanFamilies(t *testing.T) {
	sys, _, _, _ := runTraceWorkload(t, true)
	tl := sys.Timeline()
	cats := map[string]bool{}
	names := map[string]bool{}
	for _, ev := range tl.Events {
		cats[ev.Cat] = true
		names[fmt.Sprintf("%s/%s", ev.Cat, ev.Name)] = true
	}
	for _, cat := range []string{"api", "api.issue", "rma", "occoll", "sim"} {
		if !cats[cat] {
			t.Fatalf("no %q events on the timeline (cats: %v)", cat, cats)
		}
	}
	for _, name := range []string{"rma/compute", "rma/flag.wait", "sim/done", "occoll/inflight", "occoll/IBcast"} {
		if !names[name] {
			t.Fatalf("no %q events on the timeline", name)
		}
	}
}
