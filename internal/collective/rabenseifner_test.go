package collective

import (
	"bytes"
	"testing"

	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
)

func TestSegmentPartition(t *testing.T) {
	// The final halving segments of all pof2 participants must tile
	// [0,lines) exactly, in some order, for any lines (including
	// lines < pof2, where some segments are empty).
	for _, pof2 := range []int{2, 4, 8, 16, 32} {
		for _, lines := range []int{1, 3, 16, 17, 100} {
			covered := make([]int, lines)
			for nr := 0; nr < pof2; nr++ {
				lo, hi := segment(nr, pof2, 1, lines)
				if lo < 0 || hi > lines || lo > hi {
					t.Fatalf("pof2=%d lines=%d nr=%d: bad segment [%d,%d)", pof2, lines, nr, lo, hi)
				}
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("pof2=%d lines=%d: line %d covered %d times", pof2, lines, i, c)
				}
			}
		}
	}
}

func TestRealRankInvertsFold(t *testing.T) {
	// realRank must map the pof2 participant space injectively onto the
	// surviving core ids: evens of the first 2r cores plus cores >= 2r.
	for _, p := range []int{2, 3, 5, 8, 12, 48} {
		pof2 := 1
		for pof2*2 <= p {
			pof2 *= 2
		}
		r := p - pof2
		seen := map[int]bool{}
		for nr := 0; nr < pof2; nr++ {
			id := realRank(nr, r)
			if id < 0 || id >= p || seen[id] {
				t.Fatalf("p=%d: realRank(%d)=%d invalid or duplicate", p, nr, id)
			}
			if id < 2*r && id%2 == 1 {
				t.Fatalf("p=%d: realRank(%d)=%d is a folded-away odd core", p, nr, id)
			}
			seen[id] = true
		}
	}
}

func TestAllReduceRabenseifnerMatchesBinomial(t *testing.T) {
	// Core counts cover powers of two, the general case (fold needed) and
	// the paper's 48; sizes cover segments smaller than the participant
	// count (empty exchanges) and multi-chunk messages.
	for _, n := range []int{2, 3, 4, 5, 7, 8, 12, 48} {
		for _, lines := range []int{1, 2, 5, 16, 33} {
			nbytes := lines * scc.CacheLine
			scratch := 1 << 16

			run := func(rab bool) ([][]byte, [][]byte) {
				chip := rma.NewChipN(scc.DefaultConfig(), n)
				in := make([][]byte, n)
				for i := 0; i < n; i++ {
					in[i] = make([]byte, nbytes)
					for j := range in[i] {
						in[i][j] = byte(i*37 + j*11 + 3)
					}
					chip.Private(i).Write(0, in[i])
				}
				chip.Run(func(c *rma.Core) {
					comm := NewComm(rcce.NewPort(c))
					if rab {
						comm.AllReduceRabenseifner(0, scratch, lines, SumInt64)
					} else {
						comm.AllReduce(0, scratch, lines, SumInt64)
					}
				})
				out := make([][]byte, n)
				for i := 0; i < n; i++ {
					out[i] = make([]byte, nbytes)
					chip.Private(i).Read(out[i], 0, nbytes)
				}
				return in, out
			}

			_, want := run(false)
			_, got := run(true)
			for i := 0; i < n; i++ {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("n=%d lines=%d: core %d rabenseifner != binomial allreduce", n, lines, i)
				}
			}
		}
	}
}

func TestAllReduceRabenseifnerPanics(t *testing.T) {
	chip := rma.NewChipN(scc.DefaultConfig(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned scratch did not panic")
		}
	}()
	chip.Run(func(c *rma.Core) {
		comm := NewComm(rcce.NewPort(c))
		comm.AllReduceRabenseifner(0, 7, 1, SumInt64)
	})
}
