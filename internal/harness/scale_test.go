package harness

import (
	"math"
	"testing"

	"repro/internal/scc"
)

// TestScaleCrossValidation is the fig-scale acceptance gate: the
// closed-form model with topology-derived hop terms must track the
// simulator within 15% for OC-Bcast and AllReduceOC on every sweep
// topology (48, 96, 192 and 384 cores), at one-chunk and multi-chunk
// message sizes.
func TestScaleCrossValidation(t *testing.T) {
	cfg := scc.DefaultConfig()
	for _, lines := range []int{96, 256} {
		for _, p := range ScaleSweep(cfg, lines, 2) {
			if math.Abs(p.ErrPct) > 15 {
				t.Errorf("%v %s %d CL: sim %.2f µs, model %.2f µs, err %+.2f%% exceeds 15%%",
					p.Topo, p.Op, p.Lines, p.SimUs, p.ModelUs, p.ErrPct)
			}
			if p.SimUs <= 0 || p.ModelUs <= 0 {
				t.Errorf("%v %s: non-positive latency (sim %v, model %v)", p.Topo, p.Op, p.SimUs, p.ModelUs)
			}
		}
	}
}

// TestScaleDeterminism pins run-to-run determinism beyond 48 cores: the
// parametric-mesh simulations must produce bit-identical latencies on
// repeated sweeps, like the 6×4 golden points.
func TestScaleDeterminism(t *testing.T) {
	cfg := scc.DefaultConfig()
	a := ScaleSweep(cfg, 96, 2)
	b := ScaleSweep(cfg, 96, 2)
	if len(a) != len(b) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SimUs != b[i].SimUs {
			t.Errorf("%v %s: run 1 = %v µs, run 2 = %v µs", a[i].Topo, a[i].Op, a[i].SimUs, b[i].SimUs)
		}
	}
}

// TestMeshGoldenPoint pins one beyond-SCC simulated latency exactly, the
// same contract as the 6×4 golden points: future refactors may change
// wall-clock behaviour but never simulated time.
func TestMeshGoldenPoint(t *testing.T) {
	cfg := scc.DefaultConfig()
	cfg.Topo = scc.Mesh(8, 6)
	got := MeasureBcast(cfg, Alg{Name: "oc", K: 7}, cfg.Topo.NumCores(), 96, 2)
	want := []float64{193.696, 193.696}
	checkGolden(t, "mesh-8x6/oc-k7-96CL", got, want)
}
