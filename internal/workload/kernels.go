package workload

import "fmt"

// Synthetic application kernels: generators that emit realistic traces
// for three archetypal HPC communication patterns. They are the whole-app
// benchmark the fig-apps experiment replays under paper-default vs "auto"
// algorithm selection — isolated-call regret (fig-crossover) cannot tell
// whether the tuner helps a program, these can. Generators are pure
// functions of their parameters, so a kernel's trace is reproducible
// byte-for-byte and the replays are deterministic.

// SGDParams shape a data-parallel SGD training loop: each step runs a
// forward pass, then backpropagates layer by layer, starting each layer's
// gradient allreduce as soon as that layer's gradients exist and
// overlapping it with the next layer's backprop — except the last
// allreduce, which has no work left to hide behind and blocks (the
// optimizer needs every gradient before the weight update).
type SGDParams struct {
	// Steps is the number of training steps.
	Steps int
	// LayerLines are the per-layer gradient sizes in cache lines, in
	// allreduce issue order (reverse layer order; the final entry is the
	// blocking tail).
	LayerLines []int
	// FwdUs is the forward-pass compute per step, charged as the first
	// allreduce's issue delta.
	FwdUs float64
	// BwdUs is one layer's backprop compute, the gap overlapped with the
	// previous layer's in-flight allreduce.
	BwdUs float64
	// UpdateUs is the optimizer step, charged before the next step.
	UpdateUs float64
}

// DefaultSGD is the fig-apps SGD kernel for an n-core chip: a 4-layer
// model whose gradient allreduces span 512 B to 32 KiB, with fewer steps
// on the big meshes to bound simulation cost.
func DefaultSGD(n int) SGDParams {
	steps := 4
	if n > 96 {
		steps = 2
	}
	return SGDParams{
		Steps:      steps,
		LayerLines: []int{16, 64, 256, 1024},
		FwdUs:      200,
		BwdUs:      150,
		UpdateUs:   50,
	}
}

// SGDTrace emits the allreduce-dominated SGD schedule.
func SGDTrace(p SGDParams) *Trace {
	t := &Trace{}
	for s := 0; s < p.Steps; s++ {
		for i, lines := range p.LayerLines {
			r := Record{Op: OpAllReduce, Lines: lines}
			if i == 0 {
				r.DeltaUs = p.FwdUs
				if s > 0 {
					r.DeltaUs += p.UpdateUs
				}
			}
			if i < len(p.LayerLines)-1 {
				r.ComputeUs = p.BwdUs
			}
			t.Records = append(t.Records, r)
		}
	}
	return t
}

// StencilParams shape an iterative stencil (halo-exchange) solver: every
// iteration updates the local domain, exchanges halos with neighbors —
// mapped onto a rotating-root gather (boundary collection) and scatter
// (boundary distribution) pair, so successive iterations stress different
// tree roots and distances — and periodically broadcasts the global field
// (a coefficient refresh) and allreduces a tiny convergence residual.
type StencilParams struct {
	// N is the chip's core count (roots rotate modulo N).
	N int
	// Iters is the number of solver iterations.
	Iters int
	// HaloLines is the per-core halo block exchanged each iteration.
	HaloLines int
	// FieldLines is the broadcast payload of the periodic refresh.
	FieldLines int
	// BcastEvery broadcasts the field every BcastEvery iterations
	// (0 disables the refresh).
	BcastEvery int
	// ComputeUs is the per-iteration domain update, charged before the
	// halo exchange.
	ComputeUs float64
}

// DefaultStencil is the fig-apps stencil kernel for an n-core chip.
func DefaultStencil(n int) StencilParams {
	iters := 6
	if n > 96 {
		iters = 3
	}
	return StencilParams{
		N:          n,
		Iters:      iters,
		HaloLines:  4,
		FieldLines: 512,
		BcastEvery: 3,
		ComputeUs:  120,
	}
}

// StencilTrace emits the halo-exchange schedule.
func StencilTrace(p StencilParams) *Trace {
	t := &Trace{}
	for it := 0; it < p.Iters; it++ {
		root := it % p.N
		t.Records = append(t.Records,
			Record{Op: OpGather, Root: root, Lines: p.HaloLines, DeltaUs: p.ComputeUs},
			Record{Op: OpScatter, Root: root, Lines: p.HaloLines},
			Record{Op: OpAllReduce, Lines: 2, DeltaUs: 5},
		)
		if p.BcastEvery > 0 && (it+1)%p.BcastEvery == 0 {
			t.Records = append(t.Records,
				Record{Op: OpBcast, Root: 0, Lines: p.FieldLines, DeltaUs: 10})
		}
	}
	return t
}

// ShuffleParams shape a MapReduce-style shuffle: each round maps locally,
// redistributes blocks through a rotating set of scatter roots (the
// alltoall decomposed into per-root scatters, partitioning overlapped
// with the next scatter's preparation), collects results with a gather,
// then exchanges the partition index with an allgather and combines
// global counters with an allreduce.
type ShuffleParams struct {
	// N is the chip's core count (scatter/gather roots rotate modulo N).
	N int
	// Rounds is the number of map/shuffle rounds.
	Rounds int
	// Fanout is the number of scatter roots per round.
	Fanout int
	// BlockLines is the per-core block size of the shuffle collectives.
	BlockLines int
	// MapUs is the per-round map compute, charged before the shuffle;
	// PartitionUs is the per-scatter partitioning work overlapped with
	// the in-flight scatter.
	MapUs, PartitionUs float64
}

// DefaultShuffle is the fig-apps shuffle kernel for an n-core chip.
func DefaultShuffle(n int) ShuffleParams {
	rounds := 3
	if n > 96 {
		rounds = 2
	}
	return ShuffleParams{
		N:           n,
		Rounds:      rounds,
		Fanout:      4,
		BlockLines:  8,
		MapUs:       150,
		PartitionUs: 60,
	}
}

// ShuffleTrace emits the scatter/gather alltoall composition.
func ShuffleTrace(p ShuffleParams) *Trace {
	t := &Trace{}
	for rd := 0; rd < p.Rounds; rd++ {
		for j := 0; j < p.Fanout; j++ {
			root := (rd*p.Fanout + j) % p.N
			delta := 0.0
			if j == 0 {
				delta = p.MapUs
			}
			t.Records = append(t.Records,
				Record{Op: OpScatter, Root: root, Lines: p.BlockLines,
					DeltaUs: delta, ComputeUs: p.PartitionUs},
				Record{Op: OpGather, Root: root, Lines: p.BlockLines},
			)
		}
		t.Records = append(t.Records,
			Record{Op: OpAllGather, Lines: p.BlockLines, DeltaUs: 20},
			Record{Op: OpAllReduce, Lines: 64, DeltaUs: 10},
		)
	}
	return t
}

// Kernel is one named synthetic application of the fig-apps set.
type Kernel struct {
	// Name identifies the kernel in tables and BENCH_simperf.json.
	Name string
	// Desc is the one-line description shown by ocbench.
	Desc string
	// Trace is the kernel's schedule for the chip it was built for.
	Trace *Trace
}

// Kernels builds the fig-apps kernel set for an n-core chip with the
// default parameters. Every trace validates against n by construction.
func Kernels(n int) []Kernel {
	ks := []Kernel{
		{Name: "sgd", Desc: "data-parallel SGD: layered gradient allreduces, last one blocking",
			Trace: SGDTrace(DefaultSGD(n))},
		{Name: "stencil", Desc: "stencil halo exchange: rotating gather/scatter + periodic field bcast",
			Trace: StencilTrace(DefaultStencil(n))},
		{Name: "shuffle", Desc: "MapReduce shuffle: scatter/gather alltoall + allgather/allreduce combine",
			Trace: ShuffleTrace(DefaultShuffle(n))},
	}
	for _, k := range ks {
		if err := k.Trace.ValidateFor(n); err != nil {
			panic(fmt.Sprintf("workload: kernel %s generated an invalid trace: %v", k.Name, err))
		}
	}
	return ks
}
