package ocbcast

import "repro/internal/collective"

// ReduceOp combines the src buffer into dst (equal lengths, cache-line
// multiples). See SumInt64 and MaxInt64.
type ReduceOp = collective.ReduceOp

// SumInt64 adds little-endian int64 lanes; MaxInt64 keeps lane maxima.
var (
	SumInt64 ReduceOp = collective.SumInt64
	MaxInt64 ReduceOp = collective.MaxInt64
)

// Reduce combines every core's `lines` cache lines at addr with op into
// the root (binomial tree). scratchAddr is same-size private staging the
// operation may clobber on interior nodes.
func (c *Core) Reduce(root, addr, scratchAddr, lines int, op ReduceOp) {
	c.comm.Reduce(root, addr, scratchAddr, lines, op)
}

// AllReduce reduces to core 0, then broadcasts the result with OC-Bcast —
// the paper's §7 direction: collectives composed from the RMA-based
// broadcast.
func (c *Core) AllReduce(addr, scratchAddr, lines int, op ReduceOp) {
	c.comm.Reduce(0, addr, scratchAddr, lines, op)
	c.bc.Bcast(0, addr, lines)
}

// Gather collects each core's block (at addr + id·lines·32) onto the root.
func (c *Core) Gather(root, addr, lines int) { c.comm.Gather(root, addr, lines) }

// Scatter distributes per-core blocks from the root's memory layout
// (block i at addr + i·lines·32) to each core.
func (c *Core) Scatter(root, addr, lines int) { c.comm.Scatter(root, addr, lines) }

// AllGather exchanges every core's block so all cores hold all P blocks.
func (c *Core) AllGather(addr, lines int) { c.comm.AllGather(addr, lines) }
