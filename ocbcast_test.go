package ocbcast_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	ocbcast "repro"
)

func payload(lines int) []byte {
	b := make([]byte, lines*ocbcast.CacheLineBytes)
	for i := range b {
		b[i] = byte(i*17 + 3)
	}
	return b
}

func TestPublicBroadcast(t *testing.T) {
	sys := ocbcast.New(ocbcast.Options{})
	if sys.N() != ocbcast.MaxCores {
		t.Fatalf("default cores = %d, want %d", sys.N(), ocbcast.MaxCores)
	}
	const lines = 100
	p := payload(lines)
	sys.WritePrivate(0, 0, p)
	sys.Run(func(c *ocbcast.Core) {
		c.Broadcast(0, 0, lines)
	})
	for i := 0; i < sys.N(); i++ {
		if !bytes.Equal(sys.ReadPrivate(i, 0, len(p)), p) {
			t.Fatalf("core %d payload corrupted", i)
		}
	}
	// Counters are exposed: root read the message once from off-chip.
	if got := sys.Counters(0).MemReadLines; got != lines {
		t.Fatalf("root off-chip reads = %d, want %d", got, lines)
	}
}

func TestPublicBaselinesAndOptions(t *testing.T) {
	for _, alg := range []string{"binomial", "sag"} {
		sys := ocbcast.New(ocbcast.Options{Cores: 16, K: 3, DisableContention: true})
		const lines = 60
		p := payload(lines)
		sys.WritePrivate(5, 0, p)
		sys.Run(func(c *ocbcast.Core) {
			if alg == "binomial" {
				c.BroadcastBinomial(5, 0, lines)
			} else {
				c.BroadcastScatterAllgather(5, 0, lines)
			}
		})
		for i := 0; i < 16; i++ {
			if !bytes.Equal(sys.ReadPrivate(i, 0, len(p)), p) {
				t.Fatalf("%s: core %d corrupted", alg, i)
			}
		}
	}
}

func TestPublicSendRecvBarrier(t *testing.T) {
	sys := ocbcast.New(ocbcast.Options{Cores: 4})
	p := payload(10)
	sys.WritePrivate(1, 0, p)
	var t3after float64
	sys.Run(func(c *ocbcast.Core) {
		switch c.ID() {
		case 1:
			c.Compute(5)
			c.Send(3, 0, 10)
		case 3:
			c.Recv(1, 0, 10)
		}
		c.Barrier()
		if c.ID() == 0 {
			t3after = c.NowMicros()
		}
	})
	if !bytes.Equal(sys.ReadPrivate(3, 0, len(p)), p) {
		t.Fatal("send/recv corrupted")
	}
	if t3after < 5 {
		t.Fatalf("barrier released core 0 at %.2fµs, before the transfer could finish", t3after)
	}
}

func TestPublicAllReduce(t *testing.T) {
	const n, lines = 8, 2
	sys := ocbcast.New(ocbcast.Options{Cores: n})
	for i := 0; i < n; i++ {
		b := make([]byte, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane*8 < len(b); lane++ {
			binary.LittleEndian.PutUint64(b[lane*8:], uint64(i+1))
		}
		sys.WritePrivate(i, 0, b)
	}
	sys.Run(func(c *ocbcast.Core) {
		c.AllReduce(0, 4096, lines, ocbcast.SumInt64)
	})
	want := uint64(n * (n + 1) / 2)
	for i := 0; i < n; i++ {
		b := sys.ReadPrivate(i, 0, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane*8 < len(b); lane++ {
			if got := binary.LittleEndian.Uint64(b[lane*8:]); got != want {
				t.Fatalf("core %d lane %d = %d, want %d", i, lane, got, want)
			}
		}
	}
}

func TestPublicGatherScatterAllGather(t *testing.T) {
	const n, lines = 6, 1
	bb := lines * ocbcast.CacheLineBytes
	sys := ocbcast.New(ocbcast.Options{Cores: n})
	for i := 0; i < n; i++ {
		blk := payload(lines)
		blk[0] = byte(i)
		sys.WritePrivate(i, i*bb, blk)
	}
	sys.Run(func(c *ocbcast.Core) {
		c.Gather(0, 0, lines)
		c.Barrier()
		c.AllGather(8192, lines) // independent region
	})
	for i := 0; i < n; i++ {
		if got := sys.ReadPrivate(0, i*bb, 1)[0]; got != byte(i) {
			t.Fatalf("gather: root block %d header = %d", i, got)
		}
	}
}

func TestPublicModel(t *testing.T) {
	m := ocbcast.Model(nil)
	if got := m.CMpbR(1).Microseconds(); got != 0.136 {
		t.Fatalf("model CMpbR(1) = %v, want 0.136", got)
	}
}

func TestOptionsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid options did not panic")
		}
	}()
	ocbcast.New(ocbcast.Options{K: -1})
}
