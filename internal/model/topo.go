package model

import (
	"math"

	"repro/internal/core"
	"repro/internal/scc"
)

// Topology-derived model parameters. The paper's §5.1 convention fixes
// every hop term at distance 1 because on the 6×4 chip the hop cost
// (2d·Lhop ≤ 0.09 µs) is dwarfed by the per-line overheads; on larger
// meshes the router distances grow with w+h and the hop terms become a
// first-order effect, so here the distance parameters of BcastParams are
// derived from the topology: the mean router distance between
// parent/child MPBs of the k-ary propagation tree actually built by the
// collectives (root 0, rank = core id), and the mean memory-controller
// distance over the participating cores.

// MeanTreeDistance is the mean parent↔child router hop distance of the
// k-ary propagation tree core.BuildTree constructs over p cores with
// root 0 on topology t — the DMpb the simulated collectives actually see.
func MeanTreeDistance(t scc.Topology, p, k int) float64 {
	if p <= 1 {
		return 1
	}
	sum := 0
	for rank := 1; rank < p; rank++ {
		parent := (rank - 1) / k
		sum += t.CoreDistance(parent, rank)
	}
	return float64(sum) / float64(p-1)
}

// MeanMemDistance is the mean router distance from the first p cores of
// topology t to their memory controllers — the DMem of the model's
// off-chip terms.
func MeanMemDistance(t scc.Topology, p int) float64 {
	if p < 1 {
		return 1
	}
	sum := 0
	for c := 0; c < p; c++ {
		sum += t.MemDistance(c)
	}
	return float64(sum) / float64(p)
}

// roundDist rounds a mean distance to the nearest whole hop count for
// the integer distance parameters of BcastParams, never below 1.
func roundDist(d float64) int {
	r := int(math.Round(d))
	if r < 1 {
		return 1
	}
	return r
}

// BcastParamsFor derives broadcast model parameters for the first p
// cores of topology t with fan-out k: §5.1's chunk sizes with the hop
// terms replaced by the topology's mean tree and memory distances.
func BcastParamsFor(t scc.Topology, p, k int) BcastParams {
	bp := DefaultBcastParams()
	bp.P = p
	bp.DMpb = roundDist(MeanTreeDistance(t, p, k))
	bp.DMem = roundDist(MeanMemDistance(t, p))
	return bp
}

// MeanRingDistance is the mean router hop distance between id-adjacent
// cores (i, i+1 mod p) — the DMpb the ring algorithms (one- and
// two-sided allgather) actually see on topology t.
func MeanRingDistance(t scc.Topology, p int) float64 {
	if p <= 1 {
		return 1
	}
	sum := 0
	for i := 0; i < p; i++ {
		sum += t.CoreDistance(i, (i+1)%p)
	}
	return float64(sum) / float64(p)
}

// RingParamsFor derives model parameters for the ring algorithms on the
// first p cores of topology t: like BcastParamsFor, but with DMpb set to
// the mean ring-neighbour distance instead of the tree distance.
func RingParamsFor(t scc.Topology, p int) BcastParams {
	bp := DefaultBcastParams()
	bp.P = p
	bp.DMpb = roundDist(MeanRingDistance(t, p))
	bp.DMem = roundDist(MeanMemDistance(t, p))
	return bp
}

// ReduceParamsFor derives reduction model parameters for the first p
// cores of topology t with fan-out k. The reduction pipeline runs over
// the same k-ary tree as the broadcast, so the distances are the same;
// the function exists so call sites say which model they parameterize.
func ReduceParamsFor(t scc.Topology, p, k int) BcastParams {
	return BcastParamsFor(t, p, k)
}

// TreeDepth re-exports the propagation-tree depth for p cores and
// fan-out k (the O(log_k p) factor of Formula 13) so model users don't
// need to import internal/core for scaling studies.
func TreeDepth(p, k int) int { return core.TreeDepth(p, k) }
