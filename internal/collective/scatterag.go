package collective

import (
	"repro/internal/rcce"
	"repro/internal/scc"
)

// sliceStart returns the starting line of slice i when `lines` lines are
// split into p balanced contiguous slices (slice i covers
// [i·lines/p, (i+1)·lines/p)). Slices may be empty when lines < p.
func sliceStart(i, lines, p int) int { return i * lines / p }

// BcastScatterAllgather is the RCCE_comm large-message broadcast (§5.3.2):
// a recursive-halving scatter distributes one slice per core, then P−1
// ring exchange rounds (the Bruck-style allgather the paper describes:
// "core i sends to core i−1 the slices it received in the previous step")
// reassemble the full message everywhere.
func (c *Comm) BcastScatterAllgather(root, addr, lines int) {
	me, p := c.checkBcastArgs(root, addr, lines)
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeSAG | root)
	vrank := ((me - root) + p) % p
	toID := func(vr int) int { return (vr%p + p + root) % p }

	// sendRange / recvRange move the contiguous slice range [a,b) in
	// rank space, skipping empty ranges.
	rangeLines := func(a, b int) (off, n int) {
		lo, hi := sliceStart(a, lines, p), sliceStart(b, lines, p)
		return addr + lo*scc.CacheLine, hi - lo
	}

	// --- Scatter phase: recursive halving over the binomial tree. ---
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			hi := vrank + mask
			if hi > p {
				hi = p
			}
			if off, n := rangeLines(vrank, hi); n > 0 {
				c.port.Recv(toID(vrank-mask), off, n)
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			hi := vrank + 2*mask
			if hi > p {
				hi = p
			}
			if off, n := rangeLines(vrank+mask, hi); n > 0 {
				c.port.Send(toID(vrank+mask), off, n)
			}
		}
		mask >>= 1
	}

	// Phase separation: the receiver side of a core's first ring
	// exchange shares the one-line `sent` channel with its scatter
	// receive, so a fast core must not start the ring while a slow
	// neighbour is still mid-scatter (two writers on one flag line).
	c.port.Barrier()

	// --- Allgather phase: P−1 ring exchange rounds. In round t, rank r
	// sends slice (r+t) mod P to rank r−1 and receives slice (r+1+t)
	// mod P from rank r+1. RCCE's two-sided send is fully synchronous
	// (it blocks until the receiver has pulled the data), so — like
	// RCCE_comm — the exchange uses strict send/recv with parity
	// ordering for deadlock freedom, putting BOTH transfers on each
	// core's critical path per round. That synchronous coupling is
	// exactly the 2(P−1)(Cmem_put+Cmem_get) term of Formula 16 that
	// OC-Bcast's one-sided design avoids. (An overlapped
	// rcce.SendRecv-based variant would be the paper's §5.4 "adapt
	// scatter-allgather to one-sided primitives" improvement.)
	left, right := toID(vrank-1), toID(vrank+1)
	sendFirst := vrank%2 == 0
	if p%2 == 1 && vrank == p-1 {
		// Odd P leaves two adjacent even ranks (P−1 and 0); rank P−1
		// receives first to break the symmetry.
		sendFirst = false
	}
	for t := 0; t < p-1; t++ {
		sOff, sN := rangeLines((vrank+t)%p, (vrank+t)%p+1)
		rOff, rN := rangeLines((vrank+1+t)%p, (vrank+1+t)%p+1)
		if sendFirst {
			if sN > 0 {
				c.port.Send(left, sOff, sN)
			}
			if rN > 0 {
				c.port.Recv(right, rOff, rN)
			}
		} else {
			if rN > 0 {
				c.port.Recv(right, rOff, rN)
			}
			if sN > 0 {
				c.port.Send(left, sOff, sN)
			}
		}
	}
}

// BcastScatterAllgatherOneSided is the improvement the paper's §5.4
// sketches: "adapting the two-sided scatter-allgather algorithm to use
// the one-sided primitives". The algorithm is identical, but each ring
// exchange stages its outgoing slice and flags the receiver BEFORE
// blocking on the incoming slice (rcce.SendRecv), so the two transfers of
// a round overlap instead of serializing — roughly halving the
// allgather's critical path relative to RCCE's synchronous send/recv
// while remaining well short of OC-Bcast's pipelined tree.
func (c *Comm) BcastScatterAllgatherOneSided(root, addr, lines int) {
	me, p := c.checkBcastArgs(root, addr, lines)
	if p == 1 {
		return
	}
	c.port.SyncShape(rcce.ShapeSAG | root)
	vrank := ((me - root) + p) % p
	toID := func(vr int) int { return (vr%p + p + root) % p }
	rangeLines := func(a, b int) (off, n int) {
		lo, hi := sliceStart(a, lines, p), sliceStart(b, lines, p)
		return addr + lo*scc.CacheLine, hi - lo
	}

	// Scatter phase: unchanged (parent-to-child, already one writer).
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			hi := vrank + mask
			if hi > p {
				hi = p
			}
			if off, n := rangeLines(vrank, hi); n > 0 {
				c.port.Recv(toID(vrank-mask), off, n)
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			hi := vrank + 2*mask
			if hi > p {
				hi = p
			}
			if off, n := rangeLines(vrank+mask, hi); n > 0 {
				c.port.Send(toID(vrank+mask), off, n)
			}
		}
		mask >>= 1
	}

	c.port.Barrier() // same phase separation as the two-sided variant

	// Allgather phase: overlapped one-sided exchanges.
	left, right := toID(vrank-1), toID(vrank+1)
	for t := 0; t < p-1; t++ {
		sOff, sN := rangeLines((vrank+t)%p, (vrank+t)%p+1)
		rOff, rN := rangeLines((vrank+1+t)%p, (vrank+1+t)%p+1)
		switch {
		case sN > 0 && rN > 0:
			c.port.SendRecv(left, sOff, sN, right, rOff, rN)
		case sN > 0:
			c.port.Send(left, sOff, sN)
		case rN > 0:
			c.port.Recv(right, rOff, rN)
		}
	}
}
