package rma

import (
	"repro/internal/obs"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Inter-processor interrupts. The SCC lets a core trigger an interrupt on
// any other core by writing that core's on-die configuration register —
// the mechanism the paper's §7 names for extending OC-Bcast to the MPMD
// model ("leveraging parallel inter-core interrupts", with many-core
// operating systems as the use case). The simulator models an IPI as a
// 1-packet register write (no MPB port involved) plus a fixed
// interrupt-entry overhead on the receiving core.

// ipiHandlerOverhead is the receiver-side cost of taking the interrupt
// (vector dispatch + handler entry on a P54C-class core under sccLinux).
const ipiHandlerOverhead = 2 * sim.Microsecond

// ipiWatchSpace keeps IPI watch keys disjoint from MPB line keys.
const ipiWatchSpace = 1 << 20

// SendIPI triggers an interrupt on core dst. The write completes like a
// 1-line remote register write (o^mpb + 2d·Lhop) and is delivered to the
// destination d·Lhop earlier (no MPB port arbitration: config registers
// have their own path).
func (c *Core) SendIPI(dst int) {
	o := c.beginSpan("ipi.send", obs.BucketFlag,
		obs.Arg{Key: "dst", Val: int64(dst)}, obs.Arg{})
	p := c.chip.Cfg.Params
	d := c.distMPB(dst)
	t0 := c.Now()
	eff := t0 + p.OMpb + sim.Duration(d)*p.Lhop
	c.proc.Advance(p.OMpb + sim.Duration(2*d)*p.Lhop)

	st := &c.chip.ipi[dst]
	st.deliveries = append(st.deliveries, eff)
	c.chip.Engine.Signal(sim.WatchKey{Space: ipiWatchSpace, Line: dst}, eff)
	c.endSpan(o)
}

// WaitIPI blocks until an interrupt is delivered to this core, then
// charges the handler-entry overhead. Interrupts are consumed in
// delivery order; one call consumes one interrupt. It returns the
// virtual time at which the handler began executing.
func (c *Core) WaitIPI() sim.Time {
	o := c.beginSpan("ipi.wait", obs.BucketWait, obs.Arg{}, obs.Arg{})
	st := &c.chip.ipi[c.id]
	key := sim.WatchKey{Space: ipiWatchSpace, Line: c.id}
	for {
		if st.consumed < len(st.deliveries) {
			eff := st.deliveries[st.consumed]
			st.consumed++
			c.proc.AdvanceTo(eff)
			c.proc.Advance(ipiHandlerOverhead)
			c.endSpan(o)
			return c.Now()
		}
		// ipiState is its own Cond, and only the owning core waits on
		// it, so the block path allocates nothing.
		c.proc.BlockCond(key, st)
	}
}

// PendingIPIs reports how many delivered-but-unconsumed interrupts the
// core has at its current virtual time (a non-blocking poll).
func (c *Core) PendingIPIs() int {
	st := &c.chip.ipi[c.id]
	n := 0
	for i := st.consumed; i < len(st.deliveries); i++ {
		if st.deliveries[i] <= c.Now() {
			n++
		}
	}
	return n
}

// ipiState tracks one core's interrupt deliveries in delivery order.
// It doubles as the owning core's wait condition (sim.Cond).
type ipiState struct {
	deliveries []sim.Time
	consumed   int
}

// Holds reports an unconsumed delivery — the WaitIPI wake condition.
func (st *ipiState) Holds() bool { return st.consumed < len(st.deliveries) }

// PutLine writes a full 32-byte line into core dst's MPB — a 1-line put
// with a register/immediate source, like SetFlag but carrying arbitrary
// payload (used for MPMD activation descriptors).
func (c *Core) PutLine(dst, line int, data []byte) {
	o := c.beginSpan("line.put", obs.BucketMPB,
		obs.Arg{Key: "dst", Val: int64(dst)}, obs.Arg{Key: "line", Val: int64(line)})
	p := c.chip.Cfg.Params
	d := c.distMPB(dst)
	t0 := c.Now()

	dstPort := c.reservePort(dst, t0, 1, true)
	mesh := c.meshTraverse(t0, c.coord(), c.coordOf(dst), 1)

	eff := t0 + p.OMpbPut + c.LMpbW(d)
	analytic := t0 + p.OMpbPut + c.CMpbW(d)
	delay := c.finishOp(analytic, dstPort, sim.Duration(d)*p.Lhop, mesh)

	var buf [scc.CacheLine]byte
	copy(buf[:], data)
	c.chip.MPB(dst).WriteLine(line, buf[:], eff+delay)
	c.counters().MPBWriteLines++
	c.endSpan(o)
}

// ReadLineBytes reads a full 32-byte line from core src's MPB, charging
// one line read C^mpb_r(d).
func (c *Core) ReadLineBytes(src, line int) []byte {
	o := c.beginSpan("line.read", obs.BucketMPB,
		obs.Arg{Key: "src", Val: int64(src)}, obs.Arg{Key: "line", Val: int64(line)})
	d := c.distMPB(src)
	t0 := c.Now()
	srcPort := c.reservePort(src, t0, 1, false)
	c.finishOp(t0+c.CMpbR(d), srcPort, sim.Duration(d)*c.chip.Cfg.Params.Lhop, 0)
	c.counters().MPBReadLines++
	c.endSpan(o)
	return c.chip.MPB(src).ReadLine(line, c.Now())
}
