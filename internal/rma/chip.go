// Package rma assembles a simulated SCC chip and provides the one-sided
// Remote Memory Access primitives of the RCCE layer — put and get between
// MPBs and private off-chip memory — with costs charged exactly per the
// paper's LogP-based model (§3.1, Formulas 1–12), plus the MPB-port
// contention model of §3.3.
package rma

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Chip is a fully assembled simulated SCC: engine, per-core MPBs and
// private memories, cache models, optional detailed NoC, and counters.
type Chip struct {
	Cfg     scc.Config
	Engine  *sim.Engine
	NCores  int
	topo    scc.Topology
	mpbs    []*mem.MPB
	privs   []*mem.Private
	caches  []*mem.Cache
	mesh    *noc.Mesh
	Counter []trace.CoreCounters
	ipi     []ipiState

	// cores are the reusable per-proc handles Run passes to its body:
	// one Core per proc, re-pointed each Run, so a reset chip's next
	// simulation reuses each core's scratch and run-list buffers.
	cores []Core
	// runBody/runWrap let Run hand the engine one long-lived adapter
	// closure instead of allocating a fresh one per simulation.
	runBody func(core *Core)
	runWrap func(p *sim.Proc)

	// coords and memDist precompute each core's tile coordinate and
	// controller hop distance: every RMA op consults them (often several
	// times), and the div/mod chains behind Topology.CoreCoord showed up
	// as ~10% of hot-path CPU before caching.
	coords  []scc.Coord
	memDist []int

	// obs, when non-nil, receives the op-level timeline (put/get/flag
	// spans, compute spans). Nil means tracing is off.
	obs *obs.Recorder
}

// NewChip builds a chip with every core of the configured topology (48
// on the default 6×4 SCC).
func NewChip(cfg scc.Config) *Chip {
	return NewChipN(cfg, cfg.Topology().NumCores())
}

// NewChipN builds a chip using the first n cores of the configured
// topology (n ≤ Topology.NumCores()); smaller chips keep unit tests fast
// while exercising identical code paths.
func NewChipN(cfg scc.Config, n int) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	topo := cfg.Topology()
	if n < 1 || n > topo.NumCores() {
		panic(fmt.Sprintf("rma: core count %d out of range [1,%d]", n, topo.NumCores()))
	}
	c := &Chip{
		Cfg:     cfg,
		Engine:  sim.NewEngine(n),
		NCores:  n,
		topo:    topo,
		mpbs:    make([]*mem.MPB, n),
		privs:   make([]*mem.Private, n),
		caches:  make([]*mem.Cache, n),
		Counter: make([]trace.CoreCounters, n),
		ipi:     make([]ipiState, n),
		coords:  make([]scc.Coord, n),
		memDist: make([]int, n),
	}
	for i := 0; i < n; i++ {
		c.coords[i] = topo.CoreCoord(i)
		c.memDist[i] = topo.MemDistance(i)
	}
	for i := 0; i < n; i++ {
		c.mpbs[i] = mem.NewMPB(c.Engine, i, topo.MPBLines, cfg.Contention.ReadSvc)
		c.privs[i] = mem.NewPrivate(i)
		c.caches[i] = mem.NewCache(cfg.CacheEnabled)
	}
	if cfg.NoC == scc.NoCDetailed {
		c.mesh = noc.NewMesh(topo, cfg.LinkSvc)
	}
	return c
}

// SetObserver attaches a timeline recorder to the chip and its engine
// (nil detaches both). Call before Run.
func (c *Chip) SetObserver(r *obs.Recorder) {
	c.obs = r
	c.Engine.SetObserver(r)
}

// Observer returns the attached recorder, or nil when tracing is off.
func (c *Chip) Observer() *obs.Recorder { return c.obs }

// ResourceUsage snapshots the utilization counters of the chip's FIFO
// servers — every MPB port, plus each directed mesh link when the
// detailed NoC model is on. Port rows are present even with the
// contention model disabled; they then simply show zero reservations,
// since nothing books port time.
func (c *Chip) ResourceUsage() []obs.ResUsage {
	var out []obs.ResUsage
	for _, m := range c.mpbs {
		res, units, busy, queued := m.Port.Stats()
		out = append(out, obs.ResUsage{
			Class: obs.ResMPBPort, Name: m.Port.Name(),
			Reservations: res, Units: units,
			Busy: int64(busy), Queued: int64(queued),
		})
	}
	if c.mesh != nil {
		for _, ls := range c.mesh.LinkQueueStats() {
			out = append(out, obs.ResUsage{
				Class: obs.ResNoCLink, Name: ls.Link.String(),
				Reservations: ls.Reservations, Units: ls.Packets,
				Busy: int64(ls.Busy), Queued: int64(ls.Queued),
			})
		}
	}
	return out
}

// Topo reports the chip's geometry.
func (c *Chip) Topo() scc.Topology { return c.topo }

// MPB returns core i's message passing buffer.
func (c *Chip) MPB(i int) *mem.MPB { return c.mpbs[i] }

// Private returns core i's private memory.
func (c *Chip) Private(i int) *mem.Private { return c.privs[i] }

// Cache returns core i's L1 model.
func (c *Chip) Cache(i int) *mem.Cache { return c.caches[i] }

// Mesh returns the detailed NoC model, or nil in analytic mode.
func (c *Chip) Mesh() *noc.Mesh { return c.mesh }

// FlushCaches empties every core's L1 model (between experiment
// iterations, mirroring the paper's fresh-offset methodology).
func (c *Chip) FlushCaches() {
	for _, ca := range c.caches {
		ca.Flush()
	}
}

// Run executes body on every core concurrently in virtual time. A Chip
// supports one Run per construction or Reset; use AcquireChipN /
// ReleaseChip (or Reset directly) to reuse a chip across simulations.
func (c *Chip) Run(body func(core *Core)) {
	if c.cores == nil {
		c.cores = make([]Core, c.NCores)
	}
	if c.runWrap == nil {
		c.runWrap = func(p *sim.Proc) {
			core := &c.cores[p.ID()]
			core.chip, core.proc, core.id = c, p, p.ID()
			c.runBody(core)
		}
	}
	c.runBody = body
	c.Engine.Run(c.runWrap)
	c.runBody = nil
}

// Reset returns a cleanly completed (or never-run) chip to its freshly
// constructed state — zeroed memories, caches, counters and interrupt
// queues — while keeping every warm buffer, so the next Run allocates
// almost nothing. It reports false (and does nothing) when the chip is
// mid-run or its last Run panicked; such a chip must be discarded.
func (c *Chip) Reset() bool {
	if !c.Engine.Reset() {
		return false
	}
	for i := 0; i < c.NCores; i++ {
		c.mpbs[i].Reset()
		c.privs[i].Reset()
		c.caches[i].Flush()
		c.Counter[i] = trace.CoreCounters{}
		st := &c.ipi[i]
		st.deliveries = st.deliveries[:0]
		st.consumed = 0
	}
	if c.mesh != nil {
		// Detailed-NoC link servers carry reservation state; rebuilding
		// is simplest and that mode is off on every hot path.
		c.mesh = noc.NewMesh(c.topo, c.Cfg.LinkSvc)
	}
	c.obs = nil
	return true
}

// Core is a per-process handle exposing the RMA primitives. It is only
// valid inside the body function passed to Chip.Run, on its own goroutine.
type Core struct {
	chip *Chip
	proc *sim.Proc
	id   int

	// scratch is the core's reusable line-staging buffer: every bulk RMA
	// op reads source lines into it and hands it to MPB.WriteLines (which
	// copies), so the steady-state data path allocates nothing per line.
	scratch []byte
	// runs is PutMemToMPB's reusable uniform-stride sub-extent list.
	runs []writeRun

	// opf is the core's reusable RMA-op state machine (see frames.go):
	// one embedded instance suffices because ops never nest.
	opf opFrame
	// flagBuf stages SetFlag's one-line payload between the op's pre
	// and post steps.
	flagBuf [scc.CacheLine]byte
}

// scratchBuf returns the core's scratch buffer sized to n bytes, growing
// it if needed. The contents are unspecified; only one RMA op uses it at
// a time (ops never nest).
func (c *Core) scratchBuf(n int) []byte {
	if cap(c.scratch) < n {
		c.scratch = make([]byte, n)
	}
	return c.scratch[:n]
}

// ID reports the core id.
func (c *Core) ID() int { return c.id }

// N reports the number of cores on the chip.
func (c *Core) N() int { return c.chip.NCores }

// Now reports the core's virtual clock.
func (c *Core) Now() sim.Time { return c.proc.Now() }

// Chip returns the chip the core belongs to.
func (c *Core) Chip() *Chip { return c.chip }

// Compute advances the core's clock by d, modelling local computation.
func (c *Core) Compute(d sim.Duration) {
	if o := c.chip.obs; o != nil && d > 0 {
		o.Begin(c.id, int64(c.proc.Now()), "rma", "compute", obs.BucketCompute,
			obs.Arg{Key: "ps", Val: int64(d)}, obs.Arg{})
		c.proc.Advance(d)
		o.End(c.id, int64(c.proc.Now()))
		return
	}
	c.proc.Advance(d)
}

// Obs returns the chip's recorder, or nil when tracing is off. Layers
// above rma (occoll, the public collectives) emit their spans here.
func (c *Core) Obs() *obs.Recorder { return c.chip.obs }

// beginSpan opens an rma-category span at the core's current clock and
// returns the recorder to close it with, or nil when tracing is off.
// Callers pair it with endSpan after the op's last clock advance.
func (c *Core) beginSpan(name string, b obs.Bucket, a0, a1 obs.Arg) *obs.Recorder {
	o := c.chip.obs
	if o != nil {
		o.Begin(c.id, int64(c.proc.Now()), "rma", name, b, a0, a1)
	}
	return o
}

// endSpan closes a span opened by beginSpan (no-op on nil).
func (c *Core) endSpan(o *obs.Recorder) {
	if o != nil {
		o.End(c.id, int64(c.proc.Now()))
	}
}

// counters returns the core's counter record.
func (c *Core) counters() *trace.CoreCounters { return &c.chip.Counter[c.id] }

// coord is this core's tile coordinate; coordOf is any core's. Both are
// precomputed per chip.
func (c *Core) coord() scc.Coord           { return c.chip.coords[c.id] }
func (c *Core) coordOf(core int) scc.Coord { return c.chip.coords[core] }

// distMPB is the hop distance from this core to core dst's MPB.
func (c *Core) distMPB(dst int) int {
	return scc.HopDistance(c.chip.coords[c.id], c.chip.coords[dst])
}

// distMem is the hop distance from this core to its memory controller.
func (c *Core) distMem() int { return c.chip.memDist[c.id] }
