package harness

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Fig3Sizes are the message sizes plotted in Figure 3.
var Fig3Sizes = []int{1, 4, 8, 16}

// coreWithMemDistance finds a core whose memory-controller distance is d.
func coreWithMemDistance(d int) (int, bool) {
	for c := 0; c < scc.NumCores; c++ {
		if scc.MemDistance(c) == d {
			return c, true
		}
	}
	return 0, false
}

// coreAtMPBDistance finds a core ≠ 0 whose tile is d hops from core 0's.
func coreAtMPBDistance(d int) (int, bool) {
	for tile := 0; tile < scc.NumTiles; tile++ {
		if scc.HopDistance(scc.TileCoord(0), scc.TileCoord(tile)) == d {
			return tile*scc.CoresPerTile + 1, true
		}
	}
	return 0, false
}

// Fig3 regenerates Figure 3: completion times of the four put/get
// families as a function of hop distance, simulated (Exp) versus the
// analytic model (Model). MPB↔MPB ops sweep distances 1–9; memory ops
// sweep memory-controller distances 1–4, operating on the core's own MPB
// — exactly the paper's four panels.
func Fig3(cfg scc.Config) *Table {
	cfg.Contention.Enabled = false // §3.2 measures contention-free ops
	cfg.CacheEnabled = false
	mdl := model.New(cfg.Params)

	tbl := &Table{
		Title:   "Figure 3 — put/get completion time vs distance (µs)",
		Columns: []string{"op", "CL", "dist", "exp(sim)", "model", "err%"},
		Notes: []string{
			"MPB<->MPB ops sweep router distances 1-9; memory ops sweep",
			"memory-controller distances 1-4 (the paper's four panels).",
		},
	}

	type probe struct {
		op   string
		dist int
		run  func(c *rma.Core, target, n int) // executed on core `actor`
		mdl  func(n, d int) sim.Duration
	}

	addRow := func(op string, n, d int, got sim.Duration, want sim.Duration) {
		errPct := 100 * (got.Microseconds() - want.Microseconds()) / want.Microseconds()
		tbl.Rows = append(tbl.Rows, []string{
			op, fmt.Sprint(n), fmt.Sprint(d),
			fmt.Sprintf("%.3f", got.Microseconds()),
			fmt.Sprintf("%.3f", want.Microseconds()),
			fmt.Sprintf("%+.2f", errPct),
		})
	}

	// MPB <-> MPB put/get across distances 1..9, actor = core 0.
	for d := 1; d <= 9; d++ {
		target, ok := coreAtMPBDistance(d)
		if !ok {
			continue
		}
		for _, n := range Fig3Sizes {
			chip := rma.NewChip(cfg)
			var putT, getT sim.Duration
			chip.Run(func(c *rma.Core) {
				if c.ID() != 0 {
					return
				}
				t0 := c.Now()
				c.PutMPBToMPB(target, 0, 0, n)
				putT = c.Now() - t0
				t0 = c.Now()
				c.GetMPBToMPB(target, 0, 0, n)
				getT = c.Now() - t0
			})
			addRow("put mpb->mpb", n, d, putT, mdl.CMpbPut(n, d))
			addRow("get mpb->mpb", n, d, getT, mdl.CMpbGet(n, d))
		}
	}

	// Memory <-> MPB across controller distances 1..4, own MPB (d=1).
	for d := 1; d <= 4; d++ {
		actor, ok := coreWithMemDistance(d)
		if !ok {
			continue
		}
		for _, n := range Fig3Sizes {
			chip := rma.NewChip(cfg)
			chip.Private(actor).Write(0, make([]byte, n*scc.CacheLine))
			var putT, getT sim.Duration
			chip.Run(func(c *rma.Core) {
				if c.ID() != actor {
					return
				}
				t0 := c.Now()
				c.PutMemToMPB(actor, 0, 0, n)
				putT = c.Now() - t0
				t0 = c.Now()
				c.GetMPBToMem(actor, 0, 0, n)
				getT = c.Now() - t0
			})
			addRow("put mem->mpb", n, d, putT, mdl.CMemPut(n, d, 1))
			addRow("get mpb->mem", n, d, getT, mdl.CMemGet(n, 1, d))
		}
	}
	return tbl
}
