package algsel

import (
	"repro/internal/model"
	"repro/internal/occoll"
	"repro/internal/scc"
	"repro/internal/sim"
)

// The built-in algorithm entries: wrappers over the two existing stacks
// (two-sided internal/collective, one-sided internal/occoll) plus the
// algorithms added to prove the registry generalizes — the Rabenseifner
// reduce-scatter+allgather allreduce and the one-sided ring allgather.
//
// Candidate fan-outs cover the paper's latency sweet spot (7), the
// deep-tree end (2, 3) and a wide tree (15); candidate chunks are the
// paper's Moc = 96 and a half chunk that frees MPB room for wide trees
// or extra lanes. The tuner filters combinations whose MPB layout does
// not fit the base configuration.
var (
	treeKs   = []int{2, 3, 7, 15}
	ocChunks = []int{48, 96}
)

// mocOf resolves a choice's chunk size for the model's Moc parameter.
func mocOf(ch Choice, bp model.BcastParams) model.BcastParams {
	if ch.ChunkLines > 0 {
		bp.Moc = ch.ChunkLines
	}
	return bp
}

// kOf resolves a choice's fan-out, defaulting to the paper's 7 for the
// model formulas (Run paths default through cfgFor instead).
func kOf(ch Choice) int {
	if ch.K > 0 {
		return ch.K
	}
	return 7
}

func init() {
	// --- Broadcast ---
	Register(Algorithm{
		Op: OpBcast, Name: "oc", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.OC(ch).Bcast(a.Root, a.Addr, a.Lines) },
		Issue: func(e *Env, ch Choice, a Args) *occoll.Request {
			return e.OC(ch).IBcast(a.Root, a.Addr, a.Lines)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.OCLaneBcastLatency(mocOf(ch, model.BcastParamsFor(t, p, kOf(ch))), lines, kOf(ch))
		},
		Ks: treeKs, Chunks: ocChunks,
	})
	Register(Algorithm{
		// The paper-faithful standalone OC-Bcast (its own flag layout,
		// the Core.Broadcast compat default). Timing-wise it matches
		// "oc", so it registers no model — auto prefers the lane-based
		// twin, which also has a non-blocking form.
		Op: OpBcast, Name: "ocbcast", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.Bcaster(ch).Bcast(a.Root, a.Addr, a.Lines) },
	})
	Register(Algorithm{
		Op: OpBcast, Name: "binomial",
		Run: func(e *Env, ch Choice, a Args) { e.Comm.BcastBinomial(a.Root, a.Addr, a.Lines) },
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.BinomialLatency(model.ReduceParamsFor(t, p, 2), lines)
		},
	})
	Register(Algorithm{
		Op: OpBcast, Name: "sag",
		Run: func(e *Env, ch Choice, a Args) { e.Comm.BcastScatterAllgather(a.Root, a.Addr, a.Lines) },
	})
	Register(Algorithm{
		Op: OpBcast, Name: "sag1s", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.Comm.BcastScatterAllgatherOneSided(a.Root, a.Addr, a.Lines) },
	})
	Register(Algorithm{
		Op: OpBcast, Name: "naive",
		Run: func(e *Env, ch Choice, a Args) { e.Comm.BcastNaive(a.Root, a.Addr, a.Lines) },
	})

	// --- Reduce ---
	Register(Algorithm{
		Op: OpReduce, Name: "oc", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.OC(ch).Reduce(a.Root, a.Addr, a.Lines, a.Reduce) },
		Issue: func(e *Env, ch Choice, a Args) *occoll.Request {
			return e.OC(ch).IReduce(a.Root, a.Addr, a.Lines, a.Reduce)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.OCReduceLatency(mocOf(ch, model.ReduceParamsFor(t, p, kOf(ch))), lines, kOf(ch))
		},
		Ks: treeKs, Chunks: ocChunks,
	})
	Register(Algorithm{
		Op: OpReduce, Name: "twosided",
		Run: func(e *Env, ch Choice, a Args) {
			e.Comm.Reduce(a.Root, a.Addr, a.Scratch, a.Lines, a.Reduce)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.BinomialReduceLatency(model.ReduceParamsFor(t, p, 2), lines)
		},
	})

	// --- AllReduce ---
	Register(Algorithm{
		Op: OpAllReduce, Name: "oc", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.OC(ch).AllReduce(a.Addr, a.Lines, a.Reduce) },
		Issue: func(e *Env, ch Choice, a Args) *occoll.Request {
			return e.OC(ch).IAllReduce(a.Addr, a.Lines, a.Reduce)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.OCAllReduceLatency(mocOf(ch, model.ReduceParamsFor(t, p, kOf(ch))), lines, kOf(ch))
		},
		Ks: treeKs, Chunks: ocChunks,
	})
	Register(Algorithm{
		Op: OpAllReduce, Name: "twosided",
		Run: func(e *Env, ch Choice, a Args) {
			e.Comm.Reduce(0, a.Addr, a.Scratch, a.Lines, a.Reduce)
			e.Comm.BcastBinomial(0, a.Addr, a.Lines)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.TwoSidedAllReduceLatency(model.ReduceParamsFor(t, p, 2), lines)
		},
	})
	Register(Algorithm{
		// The §7 composition: two-sided binomial reduce, OC-Bcast of the
		// result (the public AllReduce's compat default).
		Op: OpAllReduce, Name: "hybrid",
		Run: func(e *Env, ch Choice, a Args) {
			e.Comm.Reduce(0, a.Addr, a.Scratch, a.Lines, a.Reduce)
			e.Bcaster(ch).Bcast(0, a.Addr, a.Lines)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.HybridAllReduceLatency(
				model.ReduceParamsFor(t, p, 2),
				mocOf(ch, model.BcastParamsFor(t, p, kOf(ch))), lines, kOf(ch))
		},
		Ks: treeKs, Chunks: ocChunks,
	})
	Register(Algorithm{
		Op: OpAllReduce, Name: "rabenseifner",
		Run: func(e *Env, ch Choice, a Args) {
			e.Comm.AllReduceRabenseifner(a.Addr, a.Scratch, a.Lines, a.Reduce)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.RabenseifnerLatency(model.ReduceParamsFor(t, p, 2), lines)
		},
	})

	// --- Scatter / Gather --- (no closed forms yet: named overrides
	// only; contention-aware models are a ROADMAP open item)
	Register(Algorithm{
		Op: OpScatter, Name: "oc", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.OC(ch).Scatter(a.Root, a.Addr, a.Lines) },
		Issue: func(e *Env, ch Choice, a Args) *occoll.Request {
			return e.OC(ch).IScatter(a.Root, a.Addr, a.Lines)
		},
		Ks: treeKs, Chunks: ocChunks,
	})
	Register(Algorithm{
		Op: OpScatter, Name: "twosided",
		Run: func(e *Env, ch Choice, a Args) { e.Comm.Scatter(a.Root, a.Addr, a.Lines) },
	})
	Register(Algorithm{
		Op: OpGather, Name: "oc", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.OC(ch).Gather(a.Root, a.Addr, a.Lines) },
		Issue: func(e *Env, ch Choice, a Args) *occoll.Request {
			return e.OC(ch).IGather(a.Root, a.Addr, a.Lines)
		},
		Ks: treeKs, Chunks: ocChunks,
	})
	Register(Algorithm{
		Op: OpGather, Name: "twosided",
		Run: func(e *Env, ch Choice, a Args) { e.Comm.Gather(a.Root, a.Addr, a.Lines) },
	})

	// --- AllGather ---
	Register(Algorithm{
		Op: OpAllGather, Name: "oc", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.OC(ch).AllGather(a.Addr, a.Lines) },
		Issue: func(e *Env, ch Choice, a Args) *occoll.Request {
			return e.OC(ch).IAllGather(a.Addr, a.Lines)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.OCTreeAllGatherLatency(mocOf(ch, model.BcastParamsFor(t, p, kOf(ch))), lines, kOf(ch))
		},
		Ks: treeKs, Chunks: ocChunks,
	})
	Register(Algorithm{
		Op: OpAllGather, Name: "ring", OneSided: true,
		Run: func(e *Env, ch Choice, a Args) { e.OC(ch).AllGatherRing(a.Addr, a.Lines) },
		Issue: func(e *Env, ch Choice, a Args) *occoll.Request {
			return e.OC(ch).IAllGatherRing(a.Addr, a.Lines)
		},
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.OCRingAllGatherLatency(mocOf(ch, model.RingParamsFor(t, p)), lines)
		},
		Chunks: ocChunks,
	})
	Register(Algorithm{
		Op: OpAllGather, Name: "twosided",
		Run: func(e *Env, ch Choice, a Args) { e.Comm.AllGather(a.Addr, a.Lines) },
		Model: func(m model.Model, t scc.Topology, p, lines int, ch Choice) sim.Duration {
			return m.TwoSidedRingAllGatherLatency(model.RingParamsFor(t, p), lines)
		},
	})
}
