package harness

import (
	"fmt"

	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/occoll"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// AllReduce variants measured by fig-allreduce.
//
//	oc        one-sided OC-AllReduce (internal/occoll), fan-out k
//	twosided  binomial two-sided Reduce + binomial two-sided Bcast
//	hybrid    two-sided Reduce + OC-Bcast of the result (the composition
//	          the paper's §7 suggests; the pre-occoll public AllReduce)
const (
	VariantOC       = "oc"
	VariantTwoSided = "twosided"
	VariantHybrid   = "hybrid"
)

// MeasureAllReduce runs `reps` allreduces (sum) of `lines` cache lines on
// n cores and returns per-repetition latencies in microseconds, from the
// first core's call to the last core's return — §6.1 methodology:
// barrier-separated repetitions, each on a fresh payload offset.
func MeasureAllReduce(cfg scc.Config, variant string, k, n, lines, reps int) []float64 {
	return measureCollective(cfg, variant, k, n, lines, reps, false)
}

// MeasureReduce is MeasureAllReduce without the broadcast half: OC-Reduce
// vs the two-sided binomial reduction (variant "hybrid" is identical to
// "twosided" here).
func MeasureReduce(cfg scc.Config, variant string, k, n, lines, reps int) []float64 {
	return measureCollective(cfg, variant, k, n, lines, reps, true)
}

func measureCollective(cfg scc.Config, variant string, k, n, lines, reps int, reduceOnly bool) []float64 {
	if reps <= 0 {
		reps = 3
	}
	chip := rma.AcquireChipN(cfg, n)
	defer rma.ReleaseChip(chip)

	// Every core contributes a distinct payload per repetition.
	msgBytes := lines * scc.CacheLine
	for c := 0; c < n; c++ {
		payload := make([]byte, msgBytes)
		for i := range payload {
			payload[i] = byte(i*7 + c*13 + 5)
		}
		for it := 0; it < reps; it++ {
			chip.Private(c).Write(it*msgBytes, payload)
		}
	}
	scratchBase := (reps + 1) * msgBytes

	starts := make([][]sim.Time, reps)
	returns := make([][]sim.Time, reps)
	for it := range returns {
		starts[it] = make([]sim.Time, n)
		returns[it] = make([]sim.Time, n)
	}

	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		comm := collective.NewComm(port)
		occfg := occore.DefaultConfig()
		occfg.K = k
		var allreduce func(addr int)
		switch variant {
		case VariantOC:
			x := occoll.New(c, port, occfg)
			if reduceOnly {
				allreduce = func(addr int) { x.Reduce(0, addr, lines, collective.SumInt64) }
			} else {
				allreduce = func(addr int) { x.AllReduce(addr, lines, collective.SumInt64) }
			}
		case VariantTwoSided:
			allreduce = func(addr int) {
				comm.Reduce(0, addr, scratchBase, lines, collective.SumInt64)
				if !reduceOnly {
					comm.BcastBinomial(0, addr, lines)
				}
			}
		case VariantHybrid:
			bc := occore.NewBroadcaster(c, occfg)
			allreduce = func(addr int) {
				comm.Reduce(0, addr, scratchBase, lines, collective.SumInt64)
				if !reduceOnly {
					bc.Bcast(0, addr, lines)
				}
			}
		default:
			panic(fmt.Sprintf("harness: unknown allreduce variant %q", variant))
		}
		for it := 0; it < reps; it++ {
			port.Barrier()
			starts[it][c.ID()] = c.Now()
			allreduce(it * msgBytes)
			returns[it][c.ID()] = c.Now()
		}
	})

	out := make([]float64, reps)
	for it := 0; it < reps; it++ {
		first := starts[it][0]
		last := returns[it][0]
		for id := 1; id < n; id++ {
			if starts[it][id] < first {
				first = starts[it][id]
			}
			if returns[it][id] > last {
				last = returns[it][id]
			}
		}
		out[it] = (last - first).Microseconds()
	}
	return out
}

// MeanAllReduce averages MeasureAllReduce. It is the one-cell case of
// MeanAllReduceGrid, so single points and sweeps share the same runner.
func MeanAllReduce(cfg scc.Config, variant string, k, n, lines, reps int) float64 {
	return MeanAllReduceGrid(cfg, n, []AllReduceCell{{Variant: variant, K: k, Lines: lines, Reps: reps}})[0]
}

// MeanReduce averages MeasureReduce. Like MeanAllReduce, it is the
// one-cell case of MeanAllReduceGrid (with ReduceOnly set).
func MeanReduce(cfg scc.Config, variant string, k, n, lines, reps int) float64 {
	return MeanAllReduceGrid(cfg, n, []AllReduceCell{
		{Variant: variant, K: k, Lines: lines, Reps: reps, ReduceOnly: true},
	})[0]
}

func mean(ls []float64) float64 {
	var sum float64
	for _, l := range ls {
		sum += l
	}
	return sum / float64(len(ls))
}

// FigAllReduce measures allreduce latency across payload sizes and
// fan-outs: one-sided OC-AllReduce (k = 2, 3, 7) against the two-sided
// Reduce+Bcast composition and the hybrid (two-sided reduce, OC-Bcast) —
// the paper's §7 extension evaluated with §6.1's methodology.
func FigAllReduce(cfg scc.Config, effort int) *Table {
	t := &Table{
		Title: "fig-allreduce: AllReduce latency (µs), one-sided vs two-sided, 48 cores",
		Columns: []string{"size", "lines", "OC k=2", "OC k=3", "OC k=7",
			"2-sided", "hybrid", "speedup (2-sided/best-OC)"},
		Notes: []string{
			"OC k=x: occoll AllReduce (OC-Reduce + OC-Bcast, one tree, one-sided RMA only).",
			"2-sided: binomial RCCE reduce + binomial RCCE broadcast.",
			"hybrid: binomial RCCE reduce + OC-Bcast k=7 (the §7 composition).",
		},
	}
	reps := 1 + effort
	sizes := []int{1, 8, 32, 96, 256, 512, 1024}
	variants := []AllReduceCell{
		{Variant: VariantOC, K: 2}, {Variant: VariantOC, K: 3}, {Variant: VariantOC, K: 7},
		{Variant: VariantTwoSided, K: 7}, {Variant: VariantHybrid, K: 7},
	}
	var cells []AllReduceCell
	for _, lines := range sizes {
		for _, v := range variants {
			v.Lines, v.Reps = lines, reps
			cells = append(cells, v)
		}
	}
	lat := MeanAllReduceGrid(cfg, scc.NumCores, cells)
	for si, lines := range sizes {
		row := lat[si*len(variants) : (si+1)*len(variants)]
		oc, ts, hy := row[:3], row[3], row[4]
		best := oc[0]
		for _, v := range oc[1:] {
			if v < best {
				best = v
			}
		}
		t.AddRow(sizeLabel(lines), lines, oc[0], oc[1], oc[2], ts, hy,
			fmt.Sprintf("%.2fx", ts/best))
	}
	return t
}

// sizeLabel formats a cache-line count as a byte size.
func sizeLabel(lines int) string {
	b := lines * scc.CacheLine
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
