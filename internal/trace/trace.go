// Package trace collects per-core data-movement counters. The paper's §5
// analysis explains OC-Bcast's advantage by counting off-chip and MPB
// accesses on the critical path; these counters let tests and experiments
// verify those counts directly on the simulator.
package trace

import "fmt"

// CoreCounters tallies one core's memory operations, in cache lines.
type CoreCounters struct {
	MPBReadLines   int64 // cache lines read from any MPB
	MPBWriteLines  int64 // cache lines written to any MPB
	MemReadLines   int64 // cache lines read from private off-chip memory
	MemWriteLines  int64 // cache lines written to private off-chip memory
	CacheHitLines  int64 // private-memory reads served by the L1 model
	FlagSets       int64 // 1-line flag writes
	FlagWaits      int64 // flag wait operations
	FlagPolls      int64 // failed non-blocking flag probes (cost no time)
	PutOps, GetOps int64 // whole put/get invocations
}

// Add accumulates other into c.
func (c *CoreCounters) Add(other CoreCounters) {
	c.MPBReadLines += other.MPBReadLines
	c.MPBWriteLines += other.MPBWriteLines
	c.MemReadLines += other.MemReadLines
	c.MemWriteLines += other.MemWriteLines
	c.CacheHitLines += other.CacheHitLines
	c.FlagSets += other.FlagSets
	c.FlagWaits += other.FlagWaits
	c.FlagPolls += other.FlagPolls
	c.PutOps += other.PutOps
	c.GetOps += other.GetOps
}

// OffChipLines reports total off-chip traffic (reads + writes), the
// quantity the paper argues OC-Bcast minimizes on the critical path.
func (c CoreCounters) OffChipLines() int64 { return c.MemReadLines + c.MemWriteLines }

// String summarizes the counters.
func (c CoreCounters) String() string {
	return fmt.Sprintf("mpbR=%d mpbW=%d memR=%d memW=%d l1hit=%d flagSet=%d flagWait=%d flagPoll=%d put=%d get=%d",
		c.MPBReadLines, c.MPBWriteLines, c.MemReadLines, c.MemWriteLines,
		c.CacheHitLines, c.FlagSets, c.FlagWaits, c.FlagPolls, c.PutOps, c.GetOps)
}

// Sum totals a slice of per-core counters.
func Sum(cs []CoreCounters) CoreCounters {
	var total CoreCounters
	for _, c := range cs {
		total.Add(c)
	}
	return total
}
