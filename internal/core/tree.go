// Package core implements OC-Bcast — the paper's contribution: a pipelined
// k-ary tree broadcast built directly on one-sided RMA, with binary
// notification trees and double buffering (paper §4).
package core

import (
	"fmt"
	"sync"
)

// Tree describes one core's position in the k-ary message-propagation
// tree and in the binary notification trees (paper Figure 5). The tree is
// built from core ids exactly as §4.1 specifies: with root s and P cores,
// the children of the core at rank i (rank = (id−s) mod P) are the cores
// at ranks ik+1 … (i+1)k.
type Tree struct {
	P, K     int
	Root     int
	Self     int
	Rank     int   // position in root-rotated rank space; root has rank 0
	Parent   int   // core id of the propagation-tree parent; -1 for the root
	ChildIdx int   // index of this core among its parent's children (0..K-1); -1 for root
	Children []int // core ids of propagation-tree children, in rank order

	// NotifyFrom is the core that sets this core's notifyFlag: the
	// propagation parent for the first two siblings, an earlier sibling
	// for the rest. -1 for the root.
	NotifyFrom int
	// NotifyFwd lists the sibling core ids this core must forward the
	// parent's notification to (step (i) of §4.1).
	NotifyFwd []int
	// NotifyOwn lists the first (up to) two of this core's own children
	// — the roots of its own binary notification tree (step (iv)).
	NotifyOwn []int
}

// rankToID maps a rank back to a core id for root s.
func rankToID(rank, s, p int) int { return (s + rank) % p }

// BuildTree computes the tree node for core self with root s, P cores and
// fan-out k.
func BuildTree(self, s, p, k int) Tree {
	if p < 1 {
		panic(fmt.Sprintf("core: P=%d", p))
	}
	if k < 1 {
		panic(fmt.Sprintf("core: k=%d must be >= 1", k))
	}
	if self < 0 || self >= p || s < 0 || s >= p {
		panic(fmt.Sprintf("core: self=%d root=%d out of range [0,%d)", self, s, p))
	}
	rank := ((self - s) + p) % p
	t := Tree{P: p, K: k, Root: s, Self: self, Rank: rank, Parent: -1, ChildIdx: -1, NotifyFrom: -1}

	// Propagation children: ranks rank*k+1 .. rank*k+k, bounded by P.
	for j := 1; j <= k; j++ {
		cr := rank*k + j
		if cr >= p {
			break
		}
		t.Children = append(t.Children, rankToID(cr, s, p))
	}

	if rank > 0 {
		parentRank := (rank - 1) / k
		t.Parent = rankToID(parentRank, s, p)
		t.ChildIdx = (rank - 1) % k

		// Sibling group: the parent's children, indexed 0..groupSize-1.
		groupBase := parentRank*k + 1
		groupSize := k
		if groupBase+groupSize > p {
			groupSize = p - groupBase
		}
		j := t.ChildIdx
		// Binary notification tree over the sibling group: the parent
		// notifies indexes 0 and 1; index j notifies 2j+2 and 2j+3.
		if j <= 1 {
			t.NotifyFrom = t.Parent
		} else {
			t.NotifyFrom = rankToID(groupBase+(j-2)/2, s, p)
		}
		for _, nj := range []int{2*j + 2, 2*j + 3} {
			if nj < groupSize {
				t.NotifyFwd = append(t.NotifyFwd, rankToID(groupBase+nj, s, p))
			}
		}
	}

	// Own notification roots: first two propagation children.
	for i := 0; i < len(t.Children) && i < 2; i++ {
		t.NotifyOwn = append(t.NotifyOwn, t.Children[i])
	}
	return t
}

// treeMemo is the process-wide BuildTree memo behind TreeFor. Trees are
// pure functions of (self, root, p, k) and read-only once built, so they
// are shared freely across cores, simulations and pooled chips.
var treeMemo = struct {
	sync.RWMutex
	m map[[4]int32]Tree
}{m: make(map[[4]int32]Tree)}

// TreeFor is a memoized BuildTree. Hot paths that construct a tree per
// collective call (the broadcaster, the non-blocking engine) go through
// it so a long run over rotating roots builds each tree once per process
// instead of once per operation. Callers must treat the returned node's
// slices as immutable.
func TreeFor(self, s, p, k int) Tree {
	key := [4]int32{int32(self), int32(s), int32(p), int32(k)}
	treeMemo.RLock()
	t, ok := treeMemo.m[key]
	treeMemo.RUnlock()
	if ok {
		return t
	}
	t = BuildTree(self, s, p, k)
	treeMemo.Lock()
	treeMemo.m[key] = t
	treeMemo.Unlock()
	return t
}

// IsLeaf reports whether the node has no propagation children.
func (t Tree) IsLeaf() bool { return len(t.Children) == 0 }

// Depth reports the node's depth in the propagation tree (root = 0).
func (t Tree) Depth() int {
	d, r := 0, t.Rank
	for r > 0 {
		r = (r - 1) / t.K
		d++
	}
	return d
}

// TreeDepth reports the depth of the deepest node for P cores and
// fan-out k — the O(log_k P) factor of Formula 13.
func TreeDepth(p, k int) int {
	return BuildTree(p-1, 0, p, k).Depth() // with root 0, rank P-1 is deepest
}
