// Package serve is the multi-tenant serving runtime: the scheduler that
// turns the simulated chip from a one-shot SPMD program into a
// long-running service under load. M independent tenants — each a job
// queue fed by a recorded trace (internal/workload) or a synthetic
// generator — issue streams of collective requests onto one System; the
// runtime admits them against a bounded per-tenant queue, batches
// compatible same-op requests into single collectives, spreads
// concurrent batches over the progress engine's MPB lanes
// (Options.Channels), and arbitrates between tenants with a fairness
// policy (round-robin or weighted deficit round-robin).
//
// Everything runs on simulated virtual time, and determinism is the
// design constraint that shapes the architecture: the simulator's
// collectives are chip-wide SPMD calls, so every core must issue the
// identical sequence. The runtime therefore runs one *scheduler replica
// per core* — identical deterministic state machines whose decisions
// derive only from common knowledge: the stream descriptions (plain
// data, identical everywhere) and a per-round epoch agreed on with a
// max-allreduce of the cores' clocks (Runner.SyncMaxUs). No replica
// ever consults its own local clock for a decision, because local
// clocks diverge across cores after every collective; the epoch is the
// one clock value all replicas share. Two runs of the same mix are
// byte-identical — the conformance suite in the root package holds the
// runtime to that.
//
// The scheduler itself (sched.go) is simulator-free: it drives a small
// per-core Runner interface that the public API (System.Serve in the
// root package) and the harness's pooled-chip path both implement, and
// that the property tests replace with an in-memory fake. Stream
// adapters (streams.go) build request streams from workload traces and
// seeded synthetic generators; format.go gives the ocserve text grammar
// for serving specs; metrics.go aggregates per-tenant completion
// latency, throughput and starvation counters.
package serve

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// Policies. PolicyRoundRobin cycles a pointer over the tenants,
// granting the next non-empty queue each batch slot. PolicyWeighted is
// stride scheduling: each tenant carries a virtual pass, the backlogged
// tenant with the least pass wins each slot (ties to the lowest id),
// and every dispatched request advances the winner's pass inversely to
// its weight — long-run dispatch shares converge to the weights, and a
// backlogged tenant always wins eventually because every grant pushes
// the other passes up (the no-starvation property test holds the
// scheduler to it).
const (
	// PolicyRoundRobin grants batch slots to tenants cyclically.
	PolicyRoundRobin = "rr"
	// PolicyWeighted grants batch slots by weighted deficit counters.
	PolicyWeighted = "wrr"
)

// Defaults for zero-valued Config fields.
const (
	// DefaultQueueBound is the per-tenant admission bound.
	DefaultQueueBound = 64
	// DefaultMaxBatch caps how many requests one batch coalesces.
	DefaultMaxBatch = 8
	// DefaultMaxBatchLines caps one batch's summed payload in cache
	// lines (a single larger request still dispatches, alone).
	DefaultMaxBatchLines = 256
)

// Bounds on configuration values, mirroring the workload trace bounds
// so every downstream computation (layout sizing, credit arithmetic)
// stays far from overflow.
const (
	// MaxQueueBound caps the per-tenant admission queue.
	MaxQueueBound = 1 << 20
	// MaxMaxBatch caps the per-batch request count.
	MaxMaxBatch = 1 << 10
	// MaxLanes caps the concurrent-batch fan-out.
	MaxLanes = 64
	// MaxWeight caps a tenant's fairness weight.
	MaxWeight = 1 << 20
	// MaxTenantName caps a tenant name's length in the ocserve format.
	MaxTenantName = 64
)

// Config tunes the serving runtime. The zero value is a valid
// single-lane round-robin configuration with the defaults above.
type Config struct {
	// Policy is the fairness policy, PolicyRoundRobin or PolicyWeighted;
	// "" means round-robin.
	Policy string
	// QueueBound is the per-tenant admission bound: arrivals beyond a
	// full queue are rejected (counted, never retried). 0 means
	// DefaultQueueBound.
	QueueBound int
	// MaxBatch caps how many compatible requests one batch coalesces
	// into a single collective. 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxBatchLines caps a batch's summed payload in cache lines; a
	// single request may exceed it and then dispatches alone. 0 means
	// DefaultMaxBatchLines.
	MaxBatchLines int
	// Lanes is how many batches one dispatch round may put in flight
	// concurrently over the progress engine's MPB lanes; it must not
	// exceed the chip's Options.Channels. 0 means 1 (System.Serve
	// defaults it to the chip's channel count instead).
	Lanes int
}

// Resolved accessors for the zero-means-default fields.

func (c Config) policy() string {
	if c.Policy == "" {
		return PolicyRoundRobin
	}
	return c.Policy
}

func (c Config) queueBound() int {
	if c.QueueBound == 0 {
		return DefaultQueueBound
	}
	return c.QueueBound
}

func (c Config) maxBatch() int {
	if c.MaxBatch == 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c Config) maxBatchLines() int {
	if c.MaxBatchLines == 0 {
		return DefaultMaxBatchLines
	}
	return c.MaxBatchLines
}

func (c Config) lanes() int {
	if c.Lanes == 0 {
		return 1
	}
	return c.Lanes
}

// Validate checks the configuration's static invariants.
func (c Config) Validate() error {
	switch c.Policy {
	case "", PolicyRoundRobin, PolicyWeighted:
	default:
		return fmt.Errorf("serve: unknown policy %q (want %q or %q)", c.Policy, PolicyRoundRobin, PolicyWeighted)
	}
	if c.QueueBound < 0 || c.QueueBound > MaxQueueBound {
		return fmt.Errorf("serve: queue bound %d out of range [0, %d]", c.QueueBound, MaxQueueBound)
	}
	if c.MaxBatch < 0 || c.MaxBatch > MaxMaxBatch {
		return fmt.Errorf("serve: max batch %d out of range [0, %d]", c.MaxBatch, MaxMaxBatch)
	}
	if c.MaxBatchLines < 0 || c.MaxBatchLines > workload.MaxLines {
		return fmt.Errorf("serve: max batch lines %d out of range [0, %d]", c.MaxBatchLines, workload.MaxLines)
	}
	if c.Lanes < 0 || c.Lanes > MaxLanes {
		return fmt.Errorf("serve: lanes %d out of range [0, %d]", c.Lanes, MaxLanes)
	}
	return nil
}

// Req is one collective request of a tenant's stream.
type Req struct {
	// Op is the collective operation, one of workload.Ops().
	Op string
	// Root is the rooted operations' root core; allreduce and allgather
	// ignore it (write 0).
	Root int
	// Lines is the payload in 32-byte cache lines: the message for
	// bcast/reduce/allreduce, the per-core block for scatter/gather/
	// allgather.
	Lines int
	// GapUs is the open-loop inter-arrival gap in microseconds since the
	// tenant's previous request (since time zero for the first). Offered
	// load scales by shrinking gaps (ScaleGaps), never by waiting for
	// completions — rejected or slow service does not slow arrivals.
	GapUs float64
}

// Validate checks one request's invariants (workload trace bounds).
func (r Req) Validate() error {
	if !workload.ValidOp(r.Op) {
		return fmt.Errorf("unknown op %q", r.Op)
	}
	if r.Root < 0 || r.Root > workload.MaxRoot {
		return fmt.Errorf("root %d out of range [0, %d]", r.Root, workload.MaxRoot)
	}
	if r.Lines < 1 || r.Lines > workload.MaxLines {
		return fmt.Errorf("lines %d out of range [1, %d]", r.Lines, workload.MaxLines)
	}
	if math.IsNaN(r.GapUs) || math.IsInf(r.GapUs, 0) {
		return fmt.Errorf("gap %v is not finite", r.GapUs)
	}
	if r.GapUs < 0 || r.GapUs > workload.MaxGapUs {
		return fmt.Errorf("gap %v out of range [0, %g]", r.GapUs, workload.MaxGapUs)
	}
	return nil
}

// rootedOp reports whether the operation addresses Req.Root; batches
// of rooted operations must share the root to be compatible.
func rootedOp(op string) bool {
	switch op {
	case workload.OpBcast, workload.OpReduce, workload.OpScatter, workload.OpGather:
		return true
	}
	return false
}

// blockOp reports whether the operation addresses n per-core blocks
// (layout sizing).
func blockOp(op string) bool {
	switch op {
	case workload.OpScatter, workload.OpGather, workload.OpAllGather:
		return true
	}
	return false
}

// Stream is one tenant's job queue: its identity, fairness weight and
// open-loop request arrivals.
type Stream struct {
	// Tenant names the stream in metrics and the ocserve format
	// ([A-Za-z0-9._-]+, at most MaxTenantName bytes).
	Tenant string
	// Weight is the tenant's share under PolicyWeighted; 0 means 1.
	Weight int
	// Reqs are the arrivals in stream order.
	Reqs []Req
}

// weight resolves the zero-means-one default.
func (s Stream) weight() int {
	if s.Weight == 0 {
		return 1
	}
	return s.Weight
}

// ValidTenantName reports whether name is usable as a tenant id:
// non-empty, at most MaxTenantName bytes, [A-Za-z0-9._-] only (so the
// ocserve text format round-trips it).
func ValidTenantName(name string) bool {
	if name == "" || len(name) > MaxTenantName {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ValidateStreams checks a tenant mix against a chip of n cores: at
// least one tenant, unique well-formed names, bounded weights, and
// every request valid with rooted roots inside the chip.
func ValidateStreams(streams []Stream, n int) error {
	if len(streams) == 0 {
		return fmt.Errorf("serve: no tenant streams")
	}
	seen := make(map[string]bool, len(streams))
	for t, s := range streams {
		if !ValidTenantName(s.Tenant) {
			return fmt.Errorf("serve: stream %d: invalid tenant name %q", t, s.Tenant)
		}
		if seen[s.Tenant] {
			return fmt.Errorf("serve: duplicate tenant %q", s.Tenant)
		}
		seen[s.Tenant] = true
		if s.Weight < 0 || s.Weight > MaxWeight {
			return fmt.Errorf("serve: tenant %q: weight %d out of range [0, %d]", s.Tenant, s.Weight, MaxWeight)
		}
		if len(s.Reqs) == 0 {
			return fmt.Errorf("serve: tenant %q has no requests", s.Tenant)
		}
		for i, r := range s.Reqs {
			if err := r.Validate(); err != nil {
				return fmt.Errorf("serve: tenant %q request %d: %w", s.Tenant, i, err)
			}
			if rootedOp(r.Op) && r.Root >= n {
				return fmt.Errorf("serve: tenant %q request %d: root %d outside the %d-core chip", s.Tenant, i, r.Root, n)
			}
		}
	}
	return nil
}
