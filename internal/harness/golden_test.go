package harness

import (
	"runtime"
	"testing"

	"repro/internal/scc"
)

// goldenPoint pins the exact simulated per-repetition latencies (µs) of a
// headline experiment point. The values were captured from the simulator
// BEFORE the hot-path overhaul (indexed-heap scheduler, bulk RMA extents,
// parallel sharding) and must stay bit-identical forever: the overhaul's
// contract is that it changes wall-clock time only, never simulated time.
// Latencies are exact — they are integer picosecond timestamps divided by
// 1e6 — so the comparison is float64 equality, not approximate.
type goldenPoint struct {
	name  string
	want  []float64
	run   func() []float64
	heavy bool // skipped with -short (≈1 s of simulation each)
}

func goldenPoints(cfg scc.Config) []goldenPoint {
	return []goldenPoint{
		{
			name: "fig8a/oc-k7-1CL",
			want: []float64{5.088, 5.088, 5.088},
			run: func() []float64 {
				return MeasureBcast(cfg, Alg{Name: "oc", K: 7}, scc.NumCores, 1, 3)
			},
		},
		{
			name: "fig8a/binomial-1CL",
			want: []float64{11.589, 11.589, 11.589},
			run: func() []float64 {
				return MeasureBcast(cfg, Alg{Name: "binomial"}, scc.NumCores, 1, 3)
			},
		},
		{
			name:  "fig8b/oc-k7-8192CL",
			want:  []float64{7908.4312, 7908.4312},
			heavy: true,
			run: func() []float64 {
				return MeasureBcast(cfg, Alg{Name: "oc", K: 7}, scc.NumCores, 8192, 2)
			},
		},
		{
			name:  "fig8b/sag-8192CL",
			want:  []float64{20638.362, 20638.362},
			heavy: true,
			run: func() []float64 {
				return MeasureBcast(cfg, Alg{Name: "sag"}, scc.NumCores, 8192, 2)
			},
		},
		{
			name: "allreduce/oc-k7-8KiB",
			want: []float64{1617.671, 1617.671},
			run: func() []float64 {
				return MeasureAllReduce(cfg, VariantOC, 7, scc.NumCores, 256, 2)
			},
		},
		{
			name: "allreduce/twosided-8KiB",
			want: []float64{2888.771, 2888.771},
			run: func() []float64 {
				return MeasureAllReduce(cfg, VariantTwoSided, 7, scc.NumCores, 256, 2)
			},
		},
		{
			// The blocking collectives are now issue + immediate Wait on
			// the progress engine; this point pins that rewrite to the
			// same pre-engine snapshot value as allreduce/oc-k7-8KiB.
			name: "allreduce/oc-k7-8KiB-blocking-via-engine",
			want: []float64{1617.671},
			run: func() []float64 {
				return []float64{MeasureOverlap(cfg, scc.NumCores, OverlapCell{K: 7, Lines: 256})}
			},
		},
		{
			// IAllReduce + immediate Wait must be byte-identical to the
			// blocking call — the progress engine's headline contract.
			name: "allreduce/oc-k7-8KiB-issue-wait",
			want: []float64{1617.671},
			run: func() []float64 {
				return []float64{MeasureOverlap(cfg, scc.NumCores, OverlapCell{K: 7, Lines: 256, Overlap: true})}
			},
		},
	}
}

func checkGolden(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d repetitions, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: rep %d = %v µs, want exactly %v µs", label, i, got[i], want[i])
		}
	}
}

// TestGoldenSimulatedLatencies asserts the headline points are (a) equal
// to the pre-overhaul snapshot and (b) identical across back-to-back runs
// in the same process.
func TestGoldenSimulatedLatencies(t *testing.T) {
	cfg := scc.DefaultConfig()
	for _, pt := range goldenPoints(cfg) {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			if pt.heavy && testing.Short() {
				t.Skip("heavy golden point skipped with -short")
			}
			checkGolden(t, "snapshot", pt.run(), pt.want)
			checkGolden(t, "run-to-run", pt.run(), pt.want)
		})
	}
}

// TestGoldenSequentialVsParallel asserts that the parallel-sharded grid
// runner produces byte-identical simulated latencies to plain sequential
// MeasureBcast/MeasureAllReduce calls, with GOMAXPROCS raised so
// ParallelMap genuinely runs concurrent workers even on a 1-CPU machine.
func TestGoldenSequentialVsParallel(t *testing.T) {
	cfg := scc.DefaultConfig()

	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	algs := []Alg{{Name: "oc", K: 2}, {Name: "oc", K: 7}, {Name: "binomial"}, {Name: "sag"}}
	sizes := []int{1, 16, 96}
	const reps = 2

	var cells []LatencyCell
	var seq []float64
	for _, lines := range sizes {
		for _, a := range algs {
			cells = append(cells, LatencyCell{Alg: a, Lines: lines, Reps: reps})
			seq = append(seq, mean(MeasureBcast(cfg, a, scc.NumCores, lines, reps)))
		}
	}
	par := MeanLatencyGrid(cfg, scc.NumCores, cells)
	for i := range cells {
		if par[i] != seq[i] {
			t.Errorf("cell %d (%s, %d CL): parallel %v µs != sequential %v µs",
				i, cells[i].Alg.Label(), cells[i].Lines, par[i], seq[i])
		}
	}

	arCells := []AllReduceCell{
		{Variant: VariantOC, K: 7, Lines: 32, Reps: reps},
		{Variant: VariantTwoSided, K: 7, Lines: 32, Reps: reps},
		{Variant: VariantHybrid, K: 7, Lines: 32, Reps: reps},
	}
	var arSeq []float64
	for _, c := range arCells {
		arSeq = append(arSeq, mean(MeasureAllReduce(cfg, c.Variant, c.K, scc.NumCores, c.Lines, c.Reps)))
	}
	arPar := MeanAllReduceGrid(cfg, scc.NumCores, arCells)
	for i := range arCells {
		if arPar[i] != arSeq[i] {
			t.Errorf("allreduce cell %d (%s): parallel %v µs != sequential %v µs",
				i, arCells[i].Variant, arPar[i], arSeq[i])
		}
	}
}
