package workload

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzTraceRoundTrip hammers the octrace parser with arbitrary bytes:
// malformed input must be rejected with a positional error (never a
// panic), and accepted input must round-trip losslessly — parse →
// serialize → parse yields identical records, the canonical text is a
// serialization fixed point, and every parsed trace passes Validate. The
// checked-in corpus under testdata/fuzz seeds both halves; CI runs the
// target for 10s on every push.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte("octrace v1\nallreduce 0 64 12.5 30\nbcast 3 96 0 0\n"))
	f.Add([]byte("octrace v1\n# comment\n\nscatter 1 8 0.125 7.75\ngather 1 8 1e-3 0\n"))
	f.Add([]byte("octrace v1\nreduce 2 1 3.5 0\nallgather 0 4 0 0\n"))
	f.Add([]byte("bcast 0 1 0 0\n"))                          // missing header
	f.Add([]byte("octrace v1\nfrobnicate 0 1 0 0\n"))         // unknown op
	f.Add([]byte("octrace v1\nbcast 0 1 0\n"))                // missing field
	f.Add([]byte("octrace v1\nbcast -1 1 0 0\n"))             // negative root
	f.Add([]byte("octrace v1\nbcast 0 1 1e999 0\n"))          // overflow delta
	f.Add([]byte("octrace v1\nbcast 0 1 NaN Inf\n"))          // non-finite gaps
	f.Add([]byte("octrace v1\nallreduce 0 1048577 0 0\n"))    // lines over cap
	f.Add([]byte("octrace v1\r\nbcast 0 1 0 0\r\n"))          // CRLF input
	f.Add([]byte("octrace v1\n\tbcast\t0\t1\t0.1\t0.25  \n")) // tab separators
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseBytes(data)
		if err != nil {
			// Rejections must be positional and must not drop a trace.
			if tr != nil {
				t.Fatalf("Parse returned both a trace and error %v", err)
			}
			msg := err.Error()
			if !strings.Contains(msg, "workload: ") ||
				!(strings.Contains(msg, "line ") || strings.Contains(msg, "empty input")) {
				t.Fatalf("error %q is not positional", msg)
			}
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parsed trace fails Validate: %v", err)
		}
		canon := tr.Format()
		tr2, err := ParseBytes(canon)
		if err != nil {
			t.Fatalf("canonical text does not reparse: %v\n%q", err, canon)
		}
		if !reflect.DeepEqual(tr.Records, tr2.Records) {
			t.Fatalf("round trip changed records:\n%+v\n%+v", tr.Records, tr2.Records)
		}
		if string(canon) != string(tr2.Format()) {
			t.Fatalf("canonical text is not a fixed point:\n%q\n%q", canon, tr2.Format())
		}
	})
}
