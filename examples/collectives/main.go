// collectives demonstrates the extension collective operations built on
// the reproduction's communication layers (the paper's §7 future work):
// scatter, gather, allgather, reduce and allreduce, composed with
// OC-Bcast. A data-parallel "histogram" pipeline exercises all of them.
package main

import (
	"encoding/binary"
	"fmt"

	ocbcast "repro"
)

const (
	blockLines = 4 // per-core data block
	histLines  = 1 // 4 int64 bins per cache line... 4 lanes used
)

func main() {
	sys := ocbcast.New(ocbcast.Options{Cores: 16})
	n := sys.N()
	bb := blockLines * ocbcast.CacheLineBytes

	// Core 0 owns the full dataset: n blocks of raw bytes.
	for i := 0; i < n; i++ {
		blk := make([]byte, bb)
		for j := range blk {
			blk[j] = byte(i*j + 7)
		}
		sys.WritePrivate(0, i*bb, blk)
	}

	const (
		dataAddr    = 0
		histAddr    = 256 * 1024
		scratchAddr = 257 * 1024
		gatherAddr  = 512 * 1024
	)

	sys.Run(func(c *ocbcast.Core) {
		me := c.ID()

		// 1. Scatter: each core receives its block (at dataAddr+me*bb).
		c.Scatter(0, dataAddr, blockLines)

		// 2. Local histogram of the block's bytes into 4 coarse bins.
		blk := c.ReadOwnPrivate(dataAddr+me*bb, bb)
		var bins [4]int64
		for _, b := range blk {
			bins[int(b)>>6]++
		}
		hist := make([]byte, histLines*ocbcast.CacheLineBytes)
		for lane, v := range bins {
			binary.LittleEndian.PutUint64(hist[lane*8:], uint64(v))
		}
		c.Compute(float64(blockLines)) // ~1µs per line of scanning
		c.WriteOwnPrivate(histAddr, hist)

		// 3. AllReduce the histograms (sum) so every core has the
		//    global distribution; the broadcast half is OC-Bcast.
		c.AllReduce(histAddr, scratchAddr, histLines, ocbcast.SumInt64)

		// 4. Gather the raw blocks back to core 15 for archival.
		c.Barrier()
		c.WriteOwnPrivate(gatherAddr+me*bb, blk)
		c.Gather(15, gatherAddr, blockLines)
	})

	// Verify: global histogram identical on all cores, totals match.
	ref := sys.ReadPrivate(0, histAddr, histLines*ocbcast.CacheLineBytes)
	var total int64
	for lane := 0; lane < 4; lane++ {
		total += int64(binary.LittleEndian.Uint64(ref[lane*8:]))
	}
	for i := 1; i < n; i++ {
		got := sys.ReadPrivate(i, histAddr, len(ref))
		for j := range ref {
			if got[j] != ref[j] {
				panic(fmt.Sprintf("core %d histogram differs", i))
			}
		}
	}
	fmt.Printf("scatter -> local histogram -> allreduce -> gather on %d cores\n", n)
	fmt.Printf("global histogram total = %d bytes (expected %d)\n", total, n*bb)
	for lane := 0; lane < 4; lane++ {
		fmt.Printf("  bin %d: %d\n", lane, binary.LittleEndian.Uint64(ref[lane*8:]))
	}
}
