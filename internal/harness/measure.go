package harness

import (
	"fmt"

	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Alg identifies a broadcast implementation for measurement.
type Alg struct {
	Name string // "oc", "binomial", "sag", "naive"
	K    int    // OC-Bcast fan-out (ignored by the baselines)
	// OCConfig optionally overrides the full OC-Bcast configuration
	// (ablations); when nil, K with the paper defaults is used.
	OCConfig *occore.Config
}

// Label is a human-readable algorithm name.
func (a Alg) Label() string {
	if a.Name == "oc" {
		return fmt.Sprintf("OC-Bcast k=%d", a.K)
	}
	return a.Name
}

// MeasureBcast runs `reps` broadcasts of `lines` cache lines from root 0
// on n cores and returns the per-repetition latency in microseconds —
// the paper's §6.1 methodology: repetitions are separated by barriers,
// each repetition broadcasts from a fresh (uncached) payload offset, and
// latency runs from the root's call to the last core's return.
func MeasureBcast(cfg scc.Config, alg Alg, n, lines, reps int) []float64 {
	if reps <= 0 {
		reps = 5
	}
	chip := rma.AcquireChipN(cfg, n)
	defer rma.ReleaseChip(chip)

	// Pre-stage every repetition's payload at a fresh offset.
	msgBytes := lines * scc.CacheLine
	payload := make([]byte, msgBytes)
	for i := range payload {
		payload[i] = byte(i*7 + 13)
	}
	for it := 0; it < reps; it++ {
		chip.Private(0).Write(it*msgBytes, payload)
	}

	starts := make([]sim.Time, reps)
	returns := make([][]sim.Time, reps)
	for it := range returns {
		returns[it] = make([]sim.Time, n)
	}

	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		var bcast func(addr int)
		switch alg.Name {
		case "oc":
			occfg := occore.DefaultConfig()
			if alg.OCConfig != nil {
				occfg = *alg.OCConfig
			} else {
				occfg.K = alg.K
			}
			b := occore.NewBroadcaster(c, occfg)
			bcast = func(addr int) { b.Bcast(0, addr, lines) }
		case "binomial":
			comm := collective.NewComm(port)
			bcast = func(addr int) { comm.BcastBinomial(0, addr, lines) }
		case "sag":
			comm := collective.NewComm(port)
			bcast = func(addr int) { comm.BcastScatterAllgather(0, addr, lines) }
		case "sag1s":
			comm := collective.NewComm(port)
			bcast = func(addr int) { comm.BcastScatterAllgatherOneSided(0, addr, lines) }
		case "naive":
			comm := collective.NewComm(port)
			bcast = func(addr int) { comm.BcastNaive(0, addr, lines) }
		default:
			panic(fmt.Sprintf("harness: unknown algorithm %q", alg.Name))
		}
		for it := 0; it < reps; it++ {
			port.Barrier()
			if c.ID() == 0 {
				starts[it] = c.Now()
			}
			bcast(it * msgBytes)
			returns[it][c.ID()] = c.Now()
		}
	})

	out := make([]float64, reps)
	for it := 0; it < reps; it++ {
		last := starts[it]
		for _, r := range returns[it] {
			if r > last {
				last = r
			}
		}
		out[it] = (last - starts[it]).Microseconds()
	}
	return out
}

// MeanLatency averages MeasureBcast. It is the one-cell case of
// MeanLatencyGrid, so single points and sweeps share the same runner.
func MeanLatency(cfg scc.Config, alg Alg, n, lines, reps int) float64 {
	return MeanLatencyGrid(cfg, n, []LatencyCell{{Alg: alg, Lines: lines, Reps: reps}})[0]
}

// ThroughputMBps converts a broadcast of `lines` cache lines completing
// in latencyUs microseconds to MB/s (10^6 bytes, as Table 2 uses).
func ThroughputMBps(lines int, latencyUs float64) float64 {
	return float64(lines*scc.CacheLine) / latencyUs
}
