package ocbcast

import (
	"encoding/binary"
	"fmt"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

// The serving runtime: the public face of internal/serve. Where Replay
// runs one application's recorded schedule, Serve runs the chip as a
// long-running multi-tenant service: M tenant streams of collective
// requests are admitted against bounded queues, batched when
// compatible, spread over the progress engine's MPB lanes
// (Options.Channels) and arbitrated by a fairness policy — all on
// simulated virtual time, so every run is bit-deterministic. See the
// internal/serve package comment for the replica architecture.

// Serving types, aliased from internal/serve so callers configure the
// runtime without importing internal packages.
type (
	// ServeConfig tunes the runtime: fairness policy, admission bound,
	// batch caps, lane fan-out.
	ServeConfig = serve.Config
	// ServeStream is one tenant's job queue; ServeRequest one arrival.
	ServeStream  = serve.Stream
	ServeRequest = serve.Req
	// ServeStats is a run's outcome; TenantServeStats one tenant's.
	ServeStats       = serve.Result
	TenantServeStats = serve.TenantMetrics
)

// The fairness policies of ServeConfig.Policy.
const (
	PolicyRoundRobin = serve.PolicyRoundRobin
	PolicyWeighted   = serve.PolicyWeighted
)

// StreamFromTrace turns a recorded trace (ParseTrace, or a kernel
// generator) into a tenant stream: each record one request, arriving
// its delta+compute gap after the previous one.
func StreamFromTrace(tenant string, weight int, t *Trace) ServeStream {
	return serve.FromTrace(tenant, weight, t)
}

// ParseServeSpec parses an ocserve v1 text spec — runtime configuration
// plus tenant mix; see internal/serve/format.go for the grammar:
//
//	ocserve v1
//	policy wrr
//	tenant sgd 3
//	req allreduce 0 64 12.5
//
// FormatServeSpec renders the canonical inverse.
func ParseServeSpec(data []byte) (ServeConfig, []ServeStream, error) {
	sp, err := serve.Parse(data)
	if err != nil {
		return ServeConfig{}, nil, err
	}
	return sp.Config, sp.Streams, nil
}

// FormatServeSpec renders a spec in canonical ocserve v1 text.
func FormatServeSpec(cfg ServeConfig, streams []ServeStream) []byte {
	return serve.Format(&serve.Spec{Config: cfg, Streams: streams})
}

// Serve runs the chip as a multi-tenant collective service until every
// stream drains, and returns the aggregate and per-tenant metrics.
// cfg.Lanes defaults to the chip's Options.Channels and must not exceed
// it; algorithm resolution follows Options.Algorithm like every
// collective (single-batch rounds run the blocking collectives through
// full selection, concurrent batches the non-blocking one-sided twins).
// With Options.Trace the run emits "serve" spans on core 0's track —
// round instants, per-tenant queue-depth counters, async batch spans,
// end-of-run per-tenant summary counters — retrievable via Timeline.
//
// Serve consumes the System's single Run; build a fresh System per
// serving run. Two Serves of the same mix on equal Systems produce
// byte-identical ServeStats (ServeStats.Fingerprint compares them).
func (s *System) Serve(cfg ServeConfig, streams []ServeStream) (ServeStats, error) {
	channels := s.occfg.Channels
	if channels < 1 {
		channels = 1
	}
	if cfg.Lanes == 0 {
		cfg.Lanes = channels
	}
	if cfg.Lanes > channels {
		return ServeStats{}, fmt.Errorf("ocbcast: Serve lanes %d exceed the chip's %d channel(s)", cfg.Lanes, channels)
	}
	if err := cfg.Validate(); err != nil {
		return ServeStats{}, err
	}
	if err := serve.ValidateStreams(streams, s.N()); err != nil {
		return ServeStats{}, err
	}
	l := serve.LayoutFor(cfg, streams, s.N())
	board := serve.NewBoard(streams)
	var rep *serve.Sched
	s.Run(func(c *Core) {
		sc := &serveCore{c: c, ctrl: l.CtrlAddr}
		var h *serve.Hooks
		if s.obs != nil && c.ID() == 0 {
			h = serveHooks(s.obs, c, streams)
		}
		r := serve.Run(sc, cfg, streams, l, board, h)
		if c.ID() == 0 {
			rep = r
			if s.obs != nil {
				emitServeSummary(s.obs, int64(c.Now()), r, board)
			}
		}
	})
	return serve.Collect(rep, board), nil
}

// serveCore adapts a public Core to the scheduler's Runner surface.
// Like replayCore, the op-to-method mapping is part of the contract:
// blocking batches run the public collective of the op's name (full
// algorithm selection), non-blocking batches the one-sided I* twins.
// Reductions combine with SumInt64.
type serveCore struct {
	c    *Core
	ctrl int
	// buf stages the SyncMaxUs clock word; bytes 8..31 stay zero so the
	// control line's other int64 lanes never affect the max.
	buf [CacheLineBytes]byte
}

// ID reports the core's chip-wide rank.
func (a *serveCore) ID() int { return a.c.ID() }

// NowUs reports the core's virtual clock in microseconds.
func (a *serveCore) NowUs() float64 { return a.c.NowMicros() }

// Compute charges local work on the simulated core.
func (a *serveCore) Compute(us float64) { a.c.Compute(us) }

// SyncMaxUs agrees on the round epoch: every core stages its clock in
// picoseconds as an int64 in its control line and a 1-line MaxInt64
// all-reduce leaves the chip-wide maximum everywhere — a real
// control-plane collective, paid for in simulated time. Staging uses
// the raw private store/load (no time charge, like WriteOwnPrivate);
// the division by 1e6 is exact common knowledge, the same bits on
// every core.
func (a *serveCore) SyncMaxUs() float64 {
	binary.LittleEndian.PutUint64(a.buf[:8], uint64(int64(a.c.Now())))
	priv := a.c.rma.Chip().Private(a.c.ID())
	priv.Write(a.ctrl, a.buf[:])
	a.c.AllReduceOC(a.ctrl, 1, MaxInt64)
	priv.Read(a.buf[:8], a.ctrl, 8)
	return float64(int64(binary.LittleEndian.Uint64(a.buf[:8]))) / 1e6
}

// Run executes one blocking batch via the public collective of the op's
// name. A blocking dispatch switches collective families mid-stream, so
// the chip must quiesce on both sides: before, so stragglers still
// draining a non-blocking lane (SyncMaxUs rides the occoll path) are
// done before payload is restaged over live flag lines; after, so an
// intermediate OC node's late done-flag writes land before the next
// lane begin zeroes them. Both barriers ride the shared rcce epoch.
func (a *serveCore) Run(op string, root, addr, scratch, lines int) {
	a.c.port.Barrier()
	switch op {
	case workload.OpBcast:
		a.c.Broadcast(root, addr, lines)
	case workload.OpReduce:
		a.c.Reduce(root, addr, scratch, lines, SumInt64)
	case workload.OpAllReduce:
		a.c.AllReduce(addr, scratch, lines, SumInt64)
	case workload.OpScatter:
		a.c.Scatter(root, addr, lines)
	case workload.OpGather:
		a.c.Gather(root, addr, lines)
	case workload.OpAllGather:
		a.c.AllGather(addr, lines)
	default:
		panic(fmt.Sprintf("ocbcast: serve dispatch of unknown op %q", op))
	}
	a.c.port.Barrier()
}

// Issue starts one non-blocking batch via the one-sided I* twin of the
// op's name and returns its completion handle.
func (a *serveCore) Issue(op string, root, addr, lines int) serve.Pending {
	switch op {
	case workload.OpBcast:
		return a.c.IBcastOC(root, addr, lines)
	case workload.OpReduce:
		return a.c.IReduceOC(root, addr, lines, SumInt64)
	case workload.OpAllReduce:
		return a.c.IAllReduceOC(addr, lines, SumInt64)
	case workload.OpScatter:
		return a.c.IScatterOC(root, addr, lines)
	case workload.OpGather:
		return a.c.IGatherOC(root, addr, lines)
	case workload.OpAllGather:
		return a.c.IAllGatherOC(addr, lines)
	default:
		panic(fmt.Sprintf("ocbcast: serve issue of unknown op %q", op))
	}
}

// serveHooks wires the scheduler's observability callbacks to the
// recorder on core 0's track: an instant per round (epoch + backlog),
// a counter per tenant queue, and an async span per batch from dispatch
// to completion. Hook timestamps use the core's live clock, so per-core
// event times stay nondecreasing as obs requires.
func serveHooks(o *obs.Recorder, c *Core, streams []ServeStream) *serve.Hooks {
	var ids []int64
	return &serve.Hooks{
		Epoch: func(round int, epochUs float64, queued int) {
			o.Instant(0, int64(c.Now()), "serve", "round",
				obs.Arg{Key: "round", Val: int64(round)},
				obs.Arg{Key: "queued", Val: int64(queued)})
		},
		Queue: func(tenant, depth int) {
			o.Counter(0, int64(c.Now()), "serve", streams[tenant].Tenant, int64(depth))
		},
		BatchBegin: func(seq int, op string, members, lines int) {
			id := o.AsyncID()
			ids = append(ids, id)
			o.Emit(obs.Event{
				Kind: obs.KindAsyncBegin, Core: 0, Time: int64(c.Now()),
				Cat: "serve", Name: "batch", ID: id, Str: op,
				A0: obs.Arg{Key: "members", Val: int64(members)},
				A1: obs.Arg{Key: "lines", Val: int64(lines)},
			})
		},
		BatchEnd: func(seq int) {
			o.AsyncEnd(ids[seq-1], 0, int64(c.Now()), "serve", "batch")
		},
	}
}

// emitServeSummary records the per-tenant outcome as end-of-run
// counters on core 0's track (completed, rejected, starved rounds, p99
// in µs), visible in Perfetto next to the batch spans. It runs inside
// core 0's body after the serving loop; t is the core's exact final
// clock, keeping the track's timestamps nondecreasing.
func emitServeSummary(o *obs.Recorder, t int64, rep *serve.Sched, b *serve.Board) {
	res := serve.Collect(rep, b)
	for _, tm := range res.Tenants {
		o.Counter(0, t, "serve.summary", tm.Tenant+"/completed", int64(tm.Completed))
		o.Counter(0, t, "serve.summary", tm.Tenant+"/rejected", int64(tm.Rejected))
		o.Counter(0, t, "serve.summary", tm.Tenant+"/starved_rounds", int64(tm.StarvedRounds))
		o.Counter(0, t, "serve.summary", tm.Tenant+"/p99_us", int64(tm.P99Us))
	}
}
