package harness

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/sim"
)

// TestGoldenInlineVsGoroutine re-runs the light golden points with
// inline machine execution force-disabled: the goroutine-per-proc
// scheduler (the executable spec) must reproduce the exact committed
// latencies, byte for byte. With the knob restored, the same points are
// re-checked in inline mode, so one test pins both directions of the
// execution-mode equivalence — the machine transcriptions of the
// protocols cannot drift from their goroutine originals without
// breaking one of the two subtests.
func TestGoldenInlineVsGoroutine(t *testing.T) {
	cfg := scc.DefaultConfig()
	run := func(t *testing.T) {
		for _, pt := range goldenPoints(cfg) {
			if pt.heavy {
				continue
			}
			checkGolden(t, pt.name, pt.run(), pt.want)
		}
	}
	prev := sim.SetInline(false)
	t.Run("goroutine", run)
	sim.SetInline(prev)
	t.Run("inline", run)
}
