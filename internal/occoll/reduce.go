package occoll

import (
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/scc"
)

// Reduce combines every core's `lines` cache lines at addr with op; the
// result lands at addr on the root. Unlike the two-sided binomial
// reduction, non-root cores' buffers are left untouched (no scratch area
// is needed): each core stages its contribution in its own MPB, and
// parents fold children's chunks into their MPB-resident accumulator with
// one-sided combining gets, pipelined chunk by chunk up the k-ary tree.
func (x *Collectives) Reduce(root, addr, lines int, op ReduceOp) {
	x.IReduce(root, addr, lines, op).Wait()
}

// IReduce is the non-blocking Reduce: it issues the reduction and returns
// a Request to Test or Wait on while the core computes.
func (x *Collectives) IReduce(root, addr, lines int, op ReduceOp) *Request {
	if op == nil {
		panic("occoll: nil reduce op")
	}
	return x.issue("IReduce", root, addr, lines, op, runIReduce)
}

func runIReduce(r *Request) { r.lane.reduceUp(r.tree, r.addr, r.lines, r.rop) }

// AllReduce is OC-Reduce fused with an OC-Bcast of the result: both
// halves share one propagation tree and the same double-buffered MPB
// slots — the reduction's drain handshake doubles as the handoff that
// frees each slot for the broadcast pipeline. Every core ends with the
// combined result at addr.
func (x *Collectives) AllReduce(addr, lines int, op ReduceOp) {
	x.IAllReduce(addr, lines, op).Wait()
}

// IAllReduce is the non-blocking AllReduce: it issues the fused
// reduce+broadcast and returns a Request to Test or Wait on.
func (x *Collectives) IAllReduce(addr, lines int, op ReduceOp) *Request {
	if op == nil {
		panic("occoll: nil reduce op")
	}
	return x.issue("IAllReduce", 0, addr, lines, op, runIAllReduce)
}

func runIAllReduce(r *Request) {
	r.lane.reduceUp(r.tree, r.addr, r.lines, r.rop)
	r.lane.bcastDown(r.tree, r.addr, r.lines)
}

// reduceUp runs the reduction pipeline toward the root. Per chunk, a
// node stages its own contribution into its MPB slot, folds in each
// child's staged chunk with rma.GetMPBCombine (waiting on the child's
// upReady flag, acking with the child's upConsumed flag), then flags its
// own parent. The root instead drains the fully combined chunk to
// private memory. Flags carry 1-based chunk sequence numbers; slots are
// reused double-buffered like OC-Bcast (§4.2).
func (l *lane) reduceUp(t core.Tree, addr, lines int, op ReduceOp) {
	x := l.x
	c, cfg := x.core, x.cfg
	n := x.nchunks(lines)
	nb := x.numBuffers()
	seq := func(ch int) uint64 { return uint64(ch) + 1 }

	for ch := 0; ch < n; ch++ {
		m := x.chunkSpan(ch, lines)
		off := addr + ch*cfg.BufLines*scc.CacheLine
		buf := l.bufLine(ch)

		// Reuse my accumulator slot only after my parent consumed the
		// chunk that previously occupied it.
		if t.Rank != 0 && ch >= nb {
			l.wait(l.upConsumedLine(), seq(ch-nb))
		}
		// Stage my own contribution as the slot's accumulator.
		c.PutMemToMPB(c.ID(), buf, off, m)
		// Fold in each child's chunk, in child order (deterministic and,
		// for the integer ops, exactly associative — results are
		// byte-identical to the two-sided composition).
		for i, child := range t.Children {
			l.wait(l.upReadyLine(i), seq(ch))
			c.GetMPBCombine(child, buf, buf, m, op)
			c.Compute(collective.CombineCost(m))
			c.SetFlag(child, l.upConsumedLine(), seq(ch))
		}
		if t.Rank == 0 {
			// Root: land the fully combined chunk in private memory.
			c.GetMPBToMem(c.ID(), buf, off, m)
		} else {
			c.SetFlag(t.Parent, l.upReadyLine(t.ChildIdx), seq(ch))
		}
	}
	// Drain: my parent must have consumed my last staged chunks before I
	// return (or hand the slots to AllReduce's broadcast half).
	if t.Rank != 0 {
		l.wait(l.upConsumedLine(), seq(n-1))
	}
}
