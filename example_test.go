package ocbcast_test

import (
	"bytes"
	"encoding/binary"
	"fmt"

	ocbcast "repro"
)

// The package-level example is the README quickstart: build the default
// 48-core SCC, stage a payload on core 0, broadcast it with OC-Bcast and
// read it back from the last core. Virtual time is deterministic, so the
// printed facts never flake.
func Example() {
	const lines = 4 // 4 cache lines = 128 bytes
	payload := make([]byte, lines*ocbcast.CacheLineBytes)
	for i := range payload {
		payload[i] = byte(i)
	}

	sys := ocbcast.New(ocbcast.Options{})
	sys.WritePrivate(0, 0, payload)
	sys.Run(func(c *ocbcast.Core) {
		c.Broadcast(0, 0, lines)
	})

	got := sys.ReadPrivate(sys.N()-1, 0, len(payload))
	fmt.Printf("cores: %d\n", sys.N())
	fmt.Printf("delivered to core %d: %v\n", sys.N()-1, bytes.Equal(got, payload))
	// Output:
	// cores: 48
	// delivered to core 47: true
}

// ExampleCore_AllReduceOC sums one vector of int64 lanes across all 48
// cores with the one-sided pipelined allreduce: every core contributes
// its id+1, so lane 0 ends as 1+2+…+48 = 1176 everywhere.
func ExampleCore_AllReduceOC() {
	const lines = 1 // one cache line = 4 int64 lanes
	sys := ocbcast.New(ocbcast.Options{})
	for core := 0; core < sys.N(); core++ {
		buf := make([]byte, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane < len(buf)/8; lane++ {
			binary.LittleEndian.PutUint64(buf[lane*8:], uint64(core+1))
		}
		sys.WritePrivate(core, 0, buf)
	}

	sys.Run(func(c *ocbcast.Core) {
		c.AllReduceOC(0, lines, ocbcast.SumInt64)
	})

	lane0 := binary.LittleEndian.Uint64(sys.ReadPrivate(13, 0, 8))
	fmt.Printf("sum on core 13: %d\n", lane0)
	// Output:
	// sum on core 13: 1176
}

// ExampleCore_IAllReduceOC overlaps communication with computation: the
// non-blocking allreduce is issued first, then each core works through
// its local compute load in slices, polling the progress engine between
// slices. Total time stays close to max(collective, compute) instead of
// their sum.
func ExampleCore_IAllReduceOC() {
	const (
		lines     = 32   // 1 KiB allreduce
		computeUs = 80.0 // independent local work per core
		grainUs   = 2.0  // slice between progress polls
	)
	sys := ocbcast.New(ocbcast.Options{})
	for core := 0; core < sys.N(); core++ {
		buf := make([]byte, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane < len(buf)/8; lane++ {
			binary.LittleEndian.PutUint64(buf[lane*8:], uint64(core+1))
		}
		sys.WritePrivate(core, 0, buf)
	}

	var finish float64
	sys.Run(func(c *ocbcast.Core) {
		r := c.IAllReduceOC(0, lines, ocbcast.SumInt64) // issue
		rem, done := computeUs, false
		for rem > 0 {
			c.Compute(grainUs) // overlapped local work
			rem -= grainUs
			if !done && r.Test() { // progress engine advances here
				done = true
			}
		}
		if !done {
			r.Wait()
		}
		if t := c.NowMicros(); t > finish {
			finish = t
		}
	})

	lane0 := binary.LittleEndian.Uint64(sys.ReadPrivate(13, 0, 8))
	fmt.Printf("sum on core 13: %d\n", lane0)
	fmt.Printf("overlapped: %v\n", finish < 286.0+computeUs) // bare collective is ~286 µs
	// Output:
	// sum on core 13: 1176
	// overlapped: true
}

// ExampleNew_mesh scales the chip beyond the real SCC: an 8×8 grid of
// SCC-style tiles is a 128-core machine, and the same collectives run on
// it unmodified — topology is configuration, not a constant.
func ExampleNew_mesh() {
	const lines = 8
	payload := make([]byte, lines*ocbcast.CacheLineBytes)
	for i := range payload {
		payload[i] = byte(3 * i)
	}

	sys := ocbcast.New(ocbcast.Options{MeshWidth: 8, MeshHeight: 8})
	sys.WritePrivate(0, 0, payload)
	sys.Run(func(c *ocbcast.Core) {
		c.Broadcast(0, 0, lines)
	})

	w, h := sys.Mesh()
	fmt.Printf("mesh: %dx%d tiles, %d cores\n", w, h, sys.N())
	fmt.Printf("delivered to core %d: %v\n", sys.N()-1,
		bytes.Equal(sys.ReadPrivate(sys.N()-1, 0, len(payload)), payload))
	// Output:
	// mesh: 8x8 tiles, 128 cores
	// delivered to core 127: true
}
