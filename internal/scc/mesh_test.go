package scc

import "testing"

func TestSCCMatchesConstants(t *testing.T) {
	s := SCC()
	if s.W != MeshWidth || s.H != MeshHeight || s.TileCores != CoresPerTile || s.MPBLines != MPBLinesPerCore {
		t.Fatalf("SCC() = %+v, want the package constants", s)
	}
	if s.NumTiles() != NumTiles || s.NumCores() != NumCores {
		t.Fatalf("SCC() has %d tiles / %d cores, want %d/%d", s.NumTiles(), s.NumCores(), NumTiles, NumCores)
	}
	if s.MPBBytesPerCore() != MPBBytesPerCore {
		t.Fatalf("SCC() MPB bytes = %d, want %d", s.MPBBytesPerCore(), MPBBytesPerCore)
	}
	if got, want := s.String(), "6x4 mesh (48 cores)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if len(s.Controllers) != len(MemoryControllers) {
		t.Fatalf("SCC() has %d controllers, want %d", len(s.Controllers), len(MemoryControllers))
	}
	for i, c := range s.Controllers {
		if c != MemoryControllers[i] {
			t.Errorf("controller %d at %v, want %v", i, c, MemoryControllers[i])
		}
	}
}

// TestControllerForMatchesQuadrantLUT pins the refactor contract: the
// nearest-controller rule must reproduce the pre-topology quadrant LUT
// (i = (x ≥ 3) + 2·(y ≥ 2)) for every core of the default chip, so the
// 6×4 default keeps byte-identical memory distances.
func TestControllerForMatchesQuadrantLUT(t *testing.T) {
	s := SCC()
	for core := 0; core < NumCores; core++ {
		c := s.CoreCoord(core)
		i := 0
		if c.X >= MeshWidth/2 {
			i = 1
		}
		if c.Y >= MeshHeight/2 {
			i += 2
		}
		if got := s.ControllerFor(core); got != MemoryControllers[i] {
			t.Errorf("core %d at %v: ControllerFor = %v, quadrant LUT says %v", core, c, got, MemoryControllers[i])
		}
	}
}

func TestMeshGeometries(t *testing.T) {
	cases := []struct {
		w, h   int
		cores  int
		maxHop int // corner-to-corner: (w-1)+(h-1)+1
	}{
		{6, 4, 48, 9},
		{8, 8, 128, 15},
		{12, 8, 192, 19},
		{16, 12, 384, 27},
	}
	for _, tc := range cases {
		m := Mesh(tc.w, tc.h)
		if err := m.Validate(); err != nil {
			t.Fatalf("Mesh(%d,%d) invalid: %v", tc.w, tc.h, err)
		}
		if m.NumCores() != tc.cores {
			t.Errorf("Mesh(%d,%d) has %d cores, want %d", tc.w, tc.h, m.NumCores(), tc.cores)
		}
		if d := HopDistance(m.TileCoord(0), m.TileCoord(m.NumTiles()-1)); d != tc.maxHop {
			t.Errorf("Mesh(%d,%d) corner-to-corner = %d hops, want %d", tc.w, tc.h, d, tc.maxHop)
		}
		// Round trips and controller sanity across the whole mesh.
		for tile := 0; tile < m.NumTiles(); tile++ {
			c := m.TileCoord(tile)
			if !m.Contains(c) || m.TileID(c) != tile {
				t.Fatalf("Mesh(%d,%d) tile %d round trip failed (%v)", tc.w, tc.h, tile, c)
			}
		}
		for core := 0; core < m.NumCores(); core++ {
			if d := m.MemDistance(core); d < 1 {
				t.Fatalf("Mesh(%d,%d) core %d memory distance %d < 1", tc.w, tc.h, core, d)
			}
			if ctl := m.ControllerFor(core); !m.Contains(ctl) {
				t.Fatalf("Mesh(%d,%d) core %d controller %v off mesh", tc.w, tc.h, core, ctl)
			}
		}
		// X-Y paths stay on the larger mesh (would panic on the 6×4-bound
		// package helper).
		corner := m.TileCoord(m.NumTiles() - 1)
		if path := m.XYPath(Coord{0, 0}, corner); len(path) != tc.maxHop-1 {
			t.Errorf("Mesh(%d,%d) corner path %d links, want %d", tc.w, tc.h, len(path), tc.maxHop-1)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{W: 0, H: 4, TileCores: 2, MPBLines: 256, Controllers: []Coord{{0, 0}}},
		{W: 6, H: 4, TileCores: 0, MPBLines: 256, Controllers: []Coord{{0, 0}}},
		{W: 6, H: 4, TileCores: 2, MPBLines: 0, Controllers: []Coord{{0, 0}}},
		{W: 6, H: 4, TileCores: 2, MPBLines: 256},
		{W: 6, H: 4, TileCores: 2, MPBLines: 256, Controllers: []Coord{{6, 0}}},
	}
	for i, topo := range bad {
		if topo.Validate() == nil {
			t.Errorf("case %d: invalid topology %+v accepted", i, topo)
		}
	}
	if !(Topology{}).IsZero() {
		t.Error("zero topology not IsZero")
	}
	if SCC().IsZero() {
		t.Error("SCC() reported IsZero")
	}
}

func TestConfigTopologyFallback(t *testing.T) {
	// A zero-Topo config (built by hand before topologies existed) must
	// resolve to the default chip and still validate.
	var c Config
	c.Params = Table1()
	if got := c.Topology(); got.NumCores() != NumCores {
		t.Fatalf("zero-Topo config resolves to %v, want the 48-core default", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("zero-Topo config invalid: %v", err)
	}
	if got := MeshConfig(8, 8).Topology().NumCores(); got != 128 {
		t.Fatalf("MeshConfig(8,8) has %d cores, want 128", got)
	}
}
