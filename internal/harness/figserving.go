package harness

import (
	"encoding/binary"
	"fmt"

	ocbcast "repro"
	"repro/internal/algsel"
	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/occoll"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/serve"
	"repro/internal/workload"
)

// fig-serving is the serving-runtime experiment: the chip as a
// long-running multi-tenant service. A fixed tenant mix — the fig-apps
// kernels as weighted tenants plus a Poisson telemetry stream — is
// served at increasing offered load under the paper-default stacks and
// under Options.Algorithm "auto", and the experiment reports throughput
// and tail latency per (mesh, load, mode) plus the saturation summary:
// the peak aggregate throughput each mode reaches. The acceptance gate
// (ocbench serving) is auto >= default saturation throughput on both
// the 48-core and 384-core meshes, and bit-identical stats across two
// runs of the same mix.

// The serving chip geometry: four MPB lanes so concurrent batches
// genuinely overlap, which needs a smaller chunk than the paper's 96 to
// fit the per-core MPB share.
const (
	servingLanes      = 4
	servingChunkLines = 16
)

// ServingMeshes bounds the sweep by effort: the quick tier (CI smoke)
// runs the paper's 48-core chip, the full tier adds the 384-core mesh
// the acceptance criteria name.
func ServingMeshes(effort int) []scc.Topology {
	if effort <= 1 {
		return []scc.Topology{scc.SCC()}
	}
	return []scc.Topology{scc.SCC(), scc.Mesh(16, 12)}
}

// ServingLoads is the offered-load axis (ScaleGaps divisors) by effort
// tier. The kernels' recorded arrival spans are short relative to their
// service time, so the knee sits below load 0.1: the low points show
// the unsaturated regime, the top loads a real saturation plateau.
func ServingLoads(effort int) []float64 {
	if effort <= 1 {
		return []float64{0.05, 0.5, 4}
	}
	return []float64{0.02, 0.05, 0.2, 1, 4}
}

// ServingConfig is the runtime configuration of the fig-serving sweep:
// weighted fairness over four lanes with moderate batching.
func ServingConfig() serve.Config {
	return serve.Config{
		Policy:        serve.PolicyWeighted,
		QueueBound:    32,
		MaxBatch:      8,
		MaxBatchLines: 128,
		Lanes:         servingLanes,
	}
}

// ServingMix builds the canonical tenant mix for an n-core chip: the
// three fig-apps kernels as weighted tenants (SGD carries the highest
// weight, like a foreground training job) plus a low-weight seeded
// Poisson telemetry tenant of small rooted collectives.
func ServingMix(n int) []serve.Stream {
	weights := map[string]int{"sgd": 3, "stencil": 2, "shuffle": 2}
	var streams []serve.Stream
	for _, k := range workload.Kernels(n) {
		streams = append(streams, serve.FromTrace(k.Name, weights[k.Name], k.Trace))
	}
	streams = append(streams, serve.Synthetic(serve.SyntheticParams{
		Tenant: "telemetry", Weight: 1, Seed: 20260808, Count: 24, N: n,
		Ops:       []string{workload.OpBcast, workload.OpGather},
		Lines:     []int{1, 2, 4, 8},
		MeanGapUs: 120,
	}))
	return streams
}

// MeasureServe serves the canonical mix at one offered load on a fresh
// public System and returns the run's stats. algorithm is
// Options.Algorithm ("", "auto", or a named override); the run goes
// through the same public path an application would use — New,
// System.Serve — so it exercises registry resolution, the decision
// table, batching and the progress engine's lanes end to end.
func MeasureServe(cfg scc.Config, topo scc.Topology, load float64, algorithm string) serve.Result {
	opts := ocbcast.Options{
		Algorithm:         algorithm,
		Channels:          servingLanes,
		ChunkLines:        servingChunkLines,
		DisableContention: !cfg.Contention.Enabled,
		Params:            &cfg.Params,
	}
	if topo.W != scc.SCC().W || topo.H != scc.SCC().H {
		opts.MeshWidth, opts.MeshHeight = topo.W, topo.H
	}
	sys := ocbcast.New(opts)
	streams := ServingMix(sys.N())
	for i := range streams {
		streams[i] = serve.ScaleGaps(streams[i], load)
	}
	res, err := sys.Serve(ServingConfig(), streams)
	if err != nil {
		panic(fmt.Sprintf("harness: serving run failed: %v", err))
	}
	return res
}

// ServeCell is one cell of the serving sweep: one mesh at one offered
// load under one algorithm-resolution mode.
type ServeCell struct {
	Topo scc.Topology
	Load float64
	// Mode is Options.Algorithm: "" (paper defaults) or "auto".
	Mode string
	// ThroughputRps is the aggregate completed-requests-per-second;
	// P50Us/P99Us the aggregate completion-latency percentiles.
	ThroughputRps float64
	P50Us, P99Us  float64
	Completed     int
	Rejected      int
}

// ServeSaturation is the per-mesh summary the acceptance gate reads:
// each mode's peak throughput over the load axis and their ratio.
type ServeSaturation struct {
	Topo scc.Topology
	// DefaultRps and AutoRps are the saturation (peak over loads)
	// aggregate throughputs; Ratio = AutoRps / DefaultRps.
	DefaultRps, AutoRps float64
	Ratio               float64
}

// ServingSweep serves the canonical mix over every (mesh, load, mode)
// cell of the effort tier. Cells are sharded across ParallelMap
// workers; like every harness sweep, the simulated values are
// independent of the sharding.
func ServingSweep(cfg scc.Config, effort int) []ServeCell {
	type job struct {
		topo scc.Topology
		load float64
		mode string
	}
	var jobs []job
	for _, topo := range ServingMeshes(effort) {
		for _, load := range ServingLoads(effort) {
			for _, mode := range []string{"", "auto"} {
				jobs = append(jobs, job{topo, load, mode})
			}
		}
	}
	results := ParallelMap(len(jobs), func(i int) serve.Result {
		j := jobs[i]
		return MeasureServe(cfg, j.topo, j.load, j.mode)
	})
	cells := make([]ServeCell, len(jobs))
	for i, j := range jobs {
		r := results[i]
		cells[i] = ServeCell{
			Topo: j.topo, Load: j.load, Mode: j.mode,
			ThroughputRps: r.ThroughputRps, P50Us: r.P50Us, P99Us: r.P99Us,
			Completed: r.Completed, Rejected: r.Rejected,
		}
	}
	return cells
}

// Saturation reduces sweep cells to the per-mesh acceptance summary.
func Saturation(cells []ServeCell) []ServeSaturation {
	var out []ServeSaturation
	idx := map[[2]int]int{}
	for _, c := range cells {
		key := [2]int{c.Topo.W, c.Topo.H}
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, ServeSaturation{Topo: c.Topo})
		}
		if c.Mode == "auto" {
			if c.ThroughputRps > out[i].AutoRps {
				out[i].AutoRps = c.ThroughputRps
			}
		} else if c.ThroughputRps > out[i].DefaultRps {
			out[i].DefaultRps = c.ThroughputRps
		}
	}
	for i := range out {
		if out[i].DefaultRps > 0 {
			out[i].Ratio = out[i].AutoRps / out[i].DefaultRps
		}
	}
	return out
}

// FigServing renders the serving sweep: the load/latency cells and the
// saturation summary the gate reads.
func FigServing(cfg scc.Config, effort int) []*Table {
	if effort < 1 {
		effort = 1
	}
	cells := ServingSweep(cfg, effort)
	return []*Table{ServingTable(cells), SaturationTable(Saturation(cells))}
}

// ServingTable renders already-computed sweep cells (shared by the
// fig-serving experiment and the ocbench serving subcommand).
func ServingTable(cells []ServeCell) *Table {
	tbl := &Table{
		Title:   "fig-serving — multi-tenant serving: offered load vs throughput and tail latency",
		Columns: []string{"mesh", "cores", "load", "mode", "throughput req/s", "p50 µs", "p99 µs", "completed", "rejected"},
		Notes: []string{
			"The fig-apps kernels as weighted tenants (sgd 3, stencil 2, shuffle 2) plus a Poisson",
			"telemetry tenant (weight 1), served under weighted fairness over 4 MPB lanes; load",
			"scales arrival rates (ScaleGaps). mode is Options.Algorithm: paper defaults vs auto.",
		},
	}
	for _, c := range cells {
		mode := c.Mode
		if mode == "" {
			mode = "default"
		}
		tbl.AddRow(
			fmt.Sprintf("%dx%d", c.Topo.W, c.Topo.H), fmt.Sprint(c.Topo.NumCores()),
			fmt.Sprintf("%gx", c.Load), mode,
			fmt.Sprintf("%.0f", c.ThroughputRps),
			fmt.Sprintf("%.2f", c.P50Us), fmt.Sprintf("%.2f", c.P99Us),
			fmt.Sprint(c.Completed), fmt.Sprint(c.Rejected),
		)
	}
	return tbl
}

// SaturationTable renders the per-mesh saturation summary.
func SaturationTable(sats []ServeSaturation) *Table {
	tbl := &Table{
		Title:   "fig-serving — saturation throughput: auto vs paper-default selection",
		Columns: []string{"mesh", "cores", "default req/s", "auto req/s", "ratio"},
		Notes: []string{
			"Peak aggregate throughput over the load axis per algorithm-resolution mode.",
			"Acceptance: auto >= default on every mesh (ocbench serving gates the ratio).",
		},
	}
	for _, s := range sats {
		tbl.AddRow(
			fmt.Sprintf("%dx%d", s.Topo.W, s.Topo.H), fmt.Sprint(s.Topo.NumCores()),
			fmt.Sprintf("%.0f", s.DefaultRps), fmt.Sprintf("%.0f", s.AutoRps),
			fmt.Sprintf("%.3fx", s.Ratio),
		)
	}
	return tbl
}

// ServeChip serves a mix on a pooled chip with the compat-default
// algorithm stacks, bypassing public System construction — the
// steady-state path the allocation-budget regression pins and the
// harness determinism tests rerun. The runtime configuration must name
// its lanes explicitly (Lanes >= 1).
func ServeChip(cfg scc.Config, n int, scfg serve.Config, streams []serve.Stream) serve.Result {
	if scfg.Lanes < 1 {
		panic("harness: ServeChip needs an explicit Lanes count")
	}
	if err := scfg.Validate(); err != nil {
		panic(fmt.Sprintf("harness: ServeChip config: %v", err))
	}
	if err := serve.ValidateStreams(streams, n); err != nil {
		panic(fmt.Sprintf("harness: ServeChip streams: %v", err))
	}
	chip := rma.AcquireChipN(cfg, n)
	defer rma.ReleaseChip(chip)
	l := serve.LayoutFor(scfg, streams, n)
	base := occore.DefaultConfig()
	if scfg.Lanes > 1 {
		base.Channels = scfg.Lanes
		base.BufLines = servingChunkLines
	}
	board := serve.NewBoard(streams)
	var rep *serve.Sched
	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		col := occoll.New(c, port, base)
		env := algsel.NewEnv(c, port, base, col, occore.NewBroadcaster(c, base))
		r := &serveEnvRunner{envRunner: envRunner{env: env, col: col}, ctrl: l.CtrlAddr}
		s := serve.Run(r, scfg, streams, l, board, nil)
		col.Finish()
		if c.ID() == 0 {
			rep = s
		}
	})
	return serve.Collect(rep, board)
}

// serveEnvRunner adapts the pooled-chip algsel environment to the
// scheduler's Runner surface. It reuses envRunner's resolved-algorithm
// caches; the op-based Run/Issue shadow the embedded record-based ones.
// The clock sync stages the core's clock word with the raw private
// store/load (no time charge) and rides the one-sided non-blocking
// allreduce — issue immediately followed by Wait, which times
// identically to the blocking form.
type serveEnvRunner struct {
	envRunner
	ctrl int
	buf  [scc.CacheLine]byte
}

func (r *serveEnvRunner) ID() int { return r.env.Core.ID() }

func (r *serveEnvRunner) SyncMaxUs() float64 {
	c := r.env.Core
	binary.LittleEndian.PutUint64(r.buf[:8], uint64(int64(c.Now())))
	priv := c.Chip().Private(c.ID())
	priv.Write(r.ctrl, r.buf[:])
	req := r.lookup(workload.OpAllReduce, true).Issue(r.env, algsel.Choice{Alg: "oc"},
		algsel.Args{Addr: r.ctrl, Lines: 1, Reduce: collective.MaxInt64})
	req.Wait()
	priv.Read(r.buf[:8], r.ctrl, 8)
	return float64(int64(binary.LittleEndian.Uint64(r.buf[:8]))) / 1e6
}

func (r *serveEnvRunner) Run(op string, root, addr, scratch, lines int) {
	// Quiesce around a blocking dispatch, mirroring serveCore.Run: drain
	// non-blocking stragglers first, and flush late OC done-flag writes
	// before the next lane begin zeroes their lines.
	r.env.Port.Barrier()
	r.lookup(op, false).Run(r.env, algsel.Choice{Alg: compatDefaults[op]},
		algsel.Args{Root: root, Addr: addr, Scratch: scratch, Lines: lines, Reduce: collective.SumInt64})
	r.env.Port.Barrier()
}

func (r *serveEnvRunner) Issue(op string, root, addr, lines int) serve.Pending {
	return r.lookup(op, true).Issue(r.env, algsel.Choice{Alg: "oc"},
		algsel.Args{Root: root, Addr: addr, Lines: lines, Reduce: collective.SumInt64})
}
