// autotune demonstrates the algorithm registry's model-driven
// auto-selection: it prints the decision table System.Tune materializes
// for the chip (which algorithm, fan-out and pipeline chunk the
// closed-form model predicts fastest per operation and message size),
// then runs the same AllReduce at three sizes that land in three
// different bands — hybrid tree, Rabenseifner reduce-scatter, deep
// one-sided tree — and at a fixed paper-default algorithm, comparing
// virtual-time latencies. The registry and tuner live in
// internal/algsel; Options.Algorithm selects the resolution mode.
package main

import (
	"encoding/binary"
	"fmt"

	ocbcast "repro"
)

const scratch = 1 << 20

// stage writes a distinct int64 vector per core: lane j of core i holds
// i+j, giving a closed-form global sum to verify against.
func stage(sys *ocbcast.System, lines int) {
	for i := 0; i < sys.N(); i++ {
		b := make([]byte, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane*8 < len(b); lane++ {
			binary.LittleEndian.PutUint64(b[lane*8:], uint64(i+lane))
		}
		sys.WritePrivate(i, 0, b)
	}
}

// measure runs one allreduce of `lines` cache lines under the given
// Options.Algorithm mode and returns the completion time (µs) of the
// slowest core.
func measure(algorithm string, lines int) float64 {
	sys := ocbcast.New(ocbcast.Options{Algorithm: algorithm})
	stage(sys, lines)
	done := make([]float64, sys.N())
	sys.Run(func(c *ocbcast.Core) {
		c.Barrier()
		c.AllReduce(0, scratch, lines, ocbcast.SumInt64)
		done[c.ID()] = c.NowMicros()
	})
	// Verify: lane 0 must hold sum over cores of (i+0).
	n := sys.N()
	want := uint64(n * (n - 1) / 2)
	got := binary.LittleEndian.Uint64(sys.ReadPrivate(0, 0, 8))
	if got != want {
		panic(fmt.Sprintf("allreduce wrong: lane 0 = %d, want %d", got, want))
	}
	last := done[0]
	for _, t := range done[1:] {
		if t > last {
			last = t
		}
	}
	return last
}

func main() {
	sys := ocbcast.New(ocbcast.Options{})
	fmt.Println("decision table (6x4 mesh, 48 cores):")
	for _, e := range sys.Tune() {
		if e.Op != "allreduce" {
			continue
		}
		extra := ""
		if e.K > 0 {
			extra = fmt.Sprintf(" (k=%d, chunk=%d)", e.K, e.ChunkLines)
		}
		fmt.Printf("  allreduce up to %4d lines -> %s%s\n", e.MaxLines, e.Algorithm, extra)
	}

	fmt.Println("\nAllReduce latency, auto-selected vs paper-default hybrid (µs):")
	for _, lines := range []int{4, 64, 1024} {
		auto := measure("auto", lines)
		fixed := measure("", lines)
		fmt.Printf("  %4d lines (%5d B): auto %8.1f   default %8.1f   (%.2fx)\n",
			lines, lines*ocbcast.CacheLineBytes, auto, fixed, fixed/auto)
	}
}
