// contention reproduces the paper's Figure 4 experiment through the
// public API: N cores concurrently issue one-sided gets of 128 cache
// lines against core 0's MPB, in a steady loop. The per-core completion
// spread exposes the MPB-port contention knee (~24 accessors) that
// motivates bounding the OC-Bcast fan-out.
package main

import (
	"fmt"

	ocbcast "repro"
)

func main() {
	const lines = 128
	const iters = 50
	fmt.Println("cores  avg(µs)  fastest  slowest  slow/fast")
	for _, n := range []int{1, 8, 16, 24, 32, 47} {
		sys := ocbcast.New(ocbcast.Options{})
		times := make([]float64, 0, n)
		sys.Run(func(c *ocbcast.Core) {
			if c.ID() < 1 || c.ID() > n {
				return // core 0's MPB is the target; it idles
			}
			start := c.NowMicros()
			for i := 0; i < iters; i++ {
				c.GetFromMPB(0, 0, 0, lines)
			}
			times = append(times, (c.NowMicros()-start)/iters)
		})

		var sum, min, max float64
		min = times[0]
		for _, t := range times {
			sum += t
			if t < min {
				min = t
			}
			if t > max {
				max = t
			}
		}
		fmt.Printf("%-6d %-8.2f %-8.2f %-8.2f %.2f\n",
			n, sum/float64(len(times)), min, max, max/min)
	}
	fmt.Println("\npaper §3.3: no measurable contention up to 24 accessors; past the")
	fmt.Println("knee the slowest core is >2x the fastest — hence OC-Bcast's k <= 24.")
}
