package rma_test

import (
	"testing"

	"repro/internal/rma"
	"repro/internal/scc"
)

// TestBulkExtentAllocFree pins the bulk RMA data path: on a warmed
// pooled chip, a full Reset+Run cycle of put/get traffic — extents,
// scratch staging, port reservations, flag signals — performs zero heap
// allocations.
func TestBulkExtentAllocFree(t *testing.T) {
	cfg := scc.DefaultConfig()
	chip := rma.AcquireChipN(cfg, 4)
	defer rma.ReleaseChip(chip)

	body := func(c *rma.Core) {
		if c.ID() == 0 {
			for rep := 0; rep < 4; rep++ {
				c.PutMPBToMPB(1, 0, 0, 16)
				c.PutMemToMPB(2, 0, 0, 16)
				c.SetFlag(3, 40, uint64(rep+1))
			}
		} else if c.ID() == 3 {
			c.WaitFlagGE(40, 4)
		}
	}
	chip.Run(body) // warm scratch buffers, extents, watcher list
	allocs := testing.AllocsPerRun(20, func() {
		if !chip.Reset() {
			t.Fatal("Reset refused")
		}
		chip.Run(body)
	})
	if allocs > 0 {
		t.Errorf("warmed bulk-RMA Reset+Run allocates %.1f times per cycle, want 0", allocs)
	}
}
