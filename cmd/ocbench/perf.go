package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/scc"
)

// simPerf is the schema of BENCH_simperf.json: the repo's wall-clock
// simulator-throughput trajectory. Simulated microseconds are pinned by
// the golden determinism tests; this file tracks how fast the simulator
// produces them. Compare the file across commits to catch hot-path
// regressions.
type simPerf struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Effort     int    `json:"effort"`

	// Single-threaded hot path: one 96-CL OC-Bcast k=7 on 48 cores per
	// simulation (the BenchmarkEngineThroughput workload).
	BcastIters       int     `json:"bcast_iters"`
	BcastMsPerSim    float64 `json:"bcast_ms_per_sim"`
	BcastSimsPerSec  float64 `json:"bcast_sims_per_sec"`
	AllocsPerBcast   float64 `json:"allocs_per_bcast"`
	SimulatedUsBcast float64 `json:"simulated_us_bcast"`

	// Parallel sweep harness: a Fig8a-style (size × algorithm) grid,
	// sharded by ParallelMap vs forced-sequential execution of the same
	// cells. On a 1-CPU host the speedup is ~1.0 by construction.
	SweepCells        int     `json:"sweep_cells"`
	SweepSequentialMs float64 `json:"sweep_sequential_ms"`
	SweepParallelMs   float64 `json:"sweep_parallel_ms"`
	SweepSpeedup      float64 `json:"sweep_speedup"`

	// Topology scaling: one 96-CL OC-Bcast k=7 per ScaleMeshes topology
	// (48..384 cores), so the trajectory covers how simulator wall-clock
	// cost grows with mesh size, not just the fixed 48-core workload.
	Scale []scalePerf `json:"scale"`

	// Overlap: fig-overlap headline cells — blocking AllReduceOC+compute
	// vs the non-blocking IAllReduceOC interleaved with compute slices.
	// Simulated microseconds, so the section is deterministic; it records
	// the achievable communication/computation overlap per message size.
	Overlap []overlapPerf `json:"overlap"`
}

// overlapPerf is one fig-overlap cell of the perf file: compute load
// W = compute_frac·T and polling grain grain_frac·W, with T the bare
// collective latency for that size.
type overlapPerf struct {
	Lines       int     `json:"lines"`
	ComputeFrac float64 `json:"compute_frac"`
	GrainFrac   float64 `json:"grain_frac"`
	BlockingUs  float64 `json:"blocking_us"`
	OverlapUs   float64 `json:"overlap_us"`
	Speedup     float64 `json:"speedup"`
}

// scalePerf is one topology point of the perf file's scaling section.
type scalePerf struct {
	Mesh        string  `json:"mesh"`
	Cores       int     `json:"cores"`
	MsPerSim    float64 `json:"ms_per_sim"`
	SimulatedUs float64 `json:"simulated_us"`
}

// allocsPerRun reports the mean number of heap allocations per call to
// f, like testing.AllocsPerRun but without linking the testing package
// into the CLI. Mallocs from runtime.ReadMemStats is exact (it stops the
// world), so warm-path runs yield a stable count.
func allocsPerRun(runs int, f func() float64) float64 {
	f() // warm caches, pools and lazily allocated state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// runPerf measures wall-clock simulator throughput and writes the result
// to BENCH_simperf.json in the current directory.
func runPerf(cfg scc.Config, effort int) error {
	bcast := func() float64 {
		return harness.MeanLatency(cfg, harness.Alg{Name: "oc", K: 7}, scc.NumCores, 96, 1)
	}

	perf := simPerf{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Effort:     effort,
	}

	// Single-simulation throughput and allocation footprint.
	perf.BcastIters = 20 * effort
	perf.SimulatedUsBcast = bcast() // warm-up; also records the simulated time
	t0 := time.Now()
	for i := 0; i < perf.BcastIters; i++ {
		bcast()
	}
	wall := time.Since(t0)
	perf.BcastMsPerSim = wall.Seconds() * 1e3 / float64(perf.BcastIters)
	perf.BcastSimsPerSec = float64(perf.BcastIters) / wall.Seconds()
	perf.AllocsPerBcast = allocsPerRun(5, bcast)

	// Sweep harness: identical cells, sequential vs sharded. The grid is
	// deliberately independent of -effort so the file stays comparable
	// across commits.
	cells := harness.DefaultSweepCells()
	perf.SweepCells = len(cells)
	t0 = time.Now()
	seq := make([]float64, len(cells))
	for i, c := range cells {
		seq[i] = harness.MeanLatency(cfg, c.Alg, scc.NumCores, c.Lines, c.Reps)
	}
	perf.SweepSequentialMs = time.Since(t0).Seconds() * 1e3
	t0 = time.Now()
	par := harness.MeanLatencyGrid(cfg, scc.NumCores, cells)
	perf.SweepParallelMs = time.Since(t0).Seconds() * 1e3
	perf.SweepSpeedup = perf.SweepSequentialMs / perf.SweepParallelMs
	for i := range cells {
		if seq[i] != par[i] {
			return fmt.Errorf("perf: determinism violation in cell %d: sequential %v µs != parallel %v µs",
				i, seq[i], par[i])
		}
	}

	// Topology scaling: wall-clock cost of one broadcast simulation per
	// mesh size (iteration counts kept small; the point is the trend).
	for _, topo := range harness.ScaleMeshes() {
		cfg2 := cfg
		cfg2.Topo = topo
		n := topo.NumCores()
		run := func() float64 {
			return harness.MeanLatency(cfg2, harness.Alg{Name: "oc", K: 7}, n, 96, 1)
		}
		simUs := run() // warm-up; also records the simulated time
		iters := 2 * effort
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			run()
		}
		perf.Scale = append(perf.Scale, scalePerf{
			Mesh:        fmt.Sprintf("%dx%d", topo.W, topo.H),
			Cores:       n,
			MsPerSim:    time.Since(t0).Seconds() * 1e3 / float64(iters),
			SimulatedUs: simUs,
		})
	}

	// Overlap headline: blocking vs non-blocking AllReduce with compute
	// loads of T/2 and T, polled at W/64 (the finest fig-overlap grain).
	for _, p := range harness.OverlapSweep(cfg, scc.NumCores, 7,
		[]int{32, 96}, []float64{0.5, 1.0}, []float64{1.0 / 64}) {
		perf.Overlap = append(perf.Overlap, overlapPerf{
			Lines:       p.Lines,
			ComputeFrac: p.Ratio,
			GrainFrac:   p.GrainUs / (p.CollUs * p.Ratio),
			BlockingUs:  p.BlockingUs,
			OverlapUs:   p.OverlapUs,
			Speedup:     p.Speedup,
		})
	}

	// Merge through patchPerfFile so sections owned by other subcommands
	// (tune's "crossover") survive a perf refresh.
	var sections map[string]any
	if raw, err := json.Marshal(perf); err != nil {
		return err
	} else if err := json.Unmarshal(raw, &sections); err != nil {
		return err
	}
	if err := patchPerfFile(sections); err != nil {
		return err
	}

	fmt.Printf(`simulator performance (wrote BENCH_simperf.json)
  96-CL OC-Bcast k=7, 48 cores:  %.2f ms/simulation  (%.1f simulations/s)
  allocations per simulation:    %.0f
  sweep %d cells:                %.0f ms sequential, %.0f ms sharded (%.2fx, GOMAXPROCS=%d)
`, perf.BcastMsPerSim, perf.BcastSimsPerSec, perf.AllocsPerBcast,
		perf.SweepCells, perf.SweepSequentialMs, perf.SweepParallelMs,
		perf.SweepSpeedup, perf.GOMAXPROCS)
	for _, s := range perf.Scale {
		fmt.Printf("  scale %-6s (%3d cores):     %.2f ms/simulation (%.0f simulated µs)\n",
			s.Mesh, s.Cores, s.MsPerSim, s.SimulatedUs)
	}
	for _, o := range perf.Overlap {
		fmt.Printf("  overlap %4d CL, W=%.1fT:      %.0f µs blocking -> %.0f µs overlapped (%.2fx)\n",
			o.Lines, o.ComputeFrac, o.BlockingUs, o.OverlapUs, o.Speedup)
	}
	return nil
}

// runPerfVerify is the hot-path performance gate: it re-measures the
// BenchmarkEngineThroughput workload (one 96-CL OC-Bcast k=7 on 48
// cores, tracing disabled — the nil-sink path) and compares it against
// the committed BENCH_simperf.json baseline. Checks, strictest first:
//
//   - simulated_us_bcast must match exactly (simulated time is part of
//     the golden contract; tracing off must be byte-identical);
//   - allocs_per_bcast must stay within allocMaxPct of the baseline, or
//     within allocSlackAbs objects of it — now that the warmed path is
//     down to a dozen allocations, ±2% is less than one object, so a
//     small absolute slack absorbs runtime jitter (map growth, pool
//     state) without weakening the relative gate at larger counts — AND
//     under the absolute allocCap budget (the allocation-free-hot-path
//     contract: a warmed broadcast must never again approach the seed's
//     ~2268 allocations);
//   - bcast_ms_per_sim must stay within wallMaxPct, and simulations/sec
//     must stay above floorPct of the baseline's bcast_sims_per_sec
//     (wall clock varies across machines, so these loose gates only
//     catch gross regressions — the floor default tolerates a 2x
//     slower CI host but fails on an order-of-magnitude collapse).
//
// allocSlackAbs is the absolute allocation jitter runPerfVerify
// tolerates on top of the relative gate (see its doc comment).
const allocSlackAbs = 2

func runPerfVerify(cfg scc.Config, allocMaxPct, wallMaxPct, allocCap, floorPct float64) error {
	raw, err := os.ReadFile(perfFile)
	if err != nil {
		return fmt.Errorf("perf -verify: %w (run `ocbench perf` first)", err)
	}
	var base simPerf
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perf -verify: %s: %w", perfFile, err)
	}
	if base.BcastMsPerSim == 0 || base.AllocsPerBcast == 0 {
		return fmt.Errorf("perf -verify: %s has no bcast baseline (run `ocbench perf`)", perfFile)
	}

	bcast := func() float64 {
		return harness.MeanLatency(cfg, harness.Alg{Name: "oc", K: 7}, scc.NumCores, 96, 1)
	}
	simUs := bcast() // warm-up + determinism check
	if simUs != base.SimulatedUsBcast {
		return fmt.Errorf("perf -verify: simulated time drifted: %v µs, baseline %v µs",
			simUs, base.SimulatedUsBcast)
	}
	allocs := allocsPerRun(5, bcast)
	iters := 20
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		bcast()
	}
	msPerSim := time.Since(t0).Seconds() * 1e3 / float64(iters)

	simsPerSec := 1e3 / msPerSim
	allocPct := 100 * (allocs - base.AllocsPerBcast) / base.AllocsPerBcast
	wallPct := 100 * (msPerSim - base.BcastMsPerSim) / base.BcastMsPerSim
	floor := base.BcastSimsPerSec * floorPct / 100
	fmt.Printf("perf -verify: %.0f allocs/sim (baseline %.1f, %+.2f%%, gate ±%.0f%% and <=%.0f), %.2f ms/sim (baseline %.2f, %+.1f%%, gate +%.0f%%), %.1f sims/s (floor %.1f = %.0f%% of baseline %.1f)\n",
		allocs, base.AllocsPerBcast, allocPct, allocMaxPct, allocCap,
		msPerSim, base.BcastMsPerSim, wallPct, wallMaxPct,
		simsPerSec, floor, floorPct, base.BcastSimsPerSec)
	if math.Abs(allocPct) > allocMaxPct && math.Abs(allocs-base.AllocsPerBcast) > allocSlackAbs {
		return fmt.Errorf("perf -verify: allocations per simulation changed %+.2f%% (gate ±%.0f%% or ±%.0f objects): the nil-sink hot path regressed",
			allocPct, allocMaxPct, float64(allocSlackAbs))
	}
	if allocs > allocCap {
		return fmt.Errorf("perf -verify: %.0f allocations per simulation over the absolute budget %.0f: per-op allocation crept back into the hot path",
			allocs, allocCap)
	}
	if wallPct > wallMaxPct {
		return fmt.Errorf("perf -verify: wall clock per simulation %+.1f%% over baseline (gate +%.0f%%)",
			wallPct, wallMaxPct)
	}
	if base.BcastSimsPerSec > 0 && simsPerSec < floor {
		return fmt.Errorf("perf -verify: %.1f simulations/s below the floor %.1f (%.0f%% of the %.1f baseline)",
			simsPerSec, floor, floorPct, base.BcastSimsPerSec)
	}
	return nil
}
