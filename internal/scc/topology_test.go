package scc

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if NumTiles != 24 || NumCores != 48 {
		t.Fatalf("tiles=%d cores=%d, want 24/48", NumTiles, NumCores)
	}
	if MPBLinesPerCore != 256 {
		t.Fatalf("MPB lines per core = %d, want 256 (8KB / 32B)", MPBLinesPerCore)
	}
}

func TestTileCoordRoundTrip(t *testing.T) {
	for tile := 0; tile < NumTiles; tile++ {
		c := TileCoord(tile)
		if !c.Valid() {
			t.Fatalf("tile %d coord %v invalid", tile, c)
		}
		if c.TileID() != tile {
			t.Fatalf("round trip failed: tile %d -> %v -> %d", tile, c, c.TileID())
		}
	}
}

func TestCoreTileMapping(t *testing.T) {
	// Cores 0,1 share tile 0; cores 46,47 share tile 23.
	if CoreTile(0) != 0 || CoreTile(1) != 0 {
		t.Fatal("cores 0 and 1 must share tile 0")
	}
	if CoreTile(46) != 23 || CoreTile(47) != 23 {
		t.Fatal("cores 46 and 47 must share tile 23")
	}
	if c := CoreCoord(47); c != (Coord{5, 3}) {
		t.Fatalf("core 47 at %v, want (5,3)", c)
	}
}

func TestHopDistanceProperties(t *testing.T) {
	// Same tile: local router only -> d = 1 (paper §2.2 / §3.2: "1-hop
	// distance means accessing the MPB of the other core on the same
	// tile").
	if d := HopDistance(Coord{2, 2}, Coord{2, 2}); d != 1 {
		t.Fatalf("same-tile distance = %d, want 1", d)
	}
	// Maximum distance on the 6x4 mesh is 9 hops (paper §3.2).
	if d := HopDistance(Coord{0, 0}, Coord{5, 3}); d != 9 {
		t.Fatalf("corner-to-corner = %d, want 9", d)
	}
	max := 0
	for a := 0; a < NumTiles; a++ {
		for b := 0; b < NumTiles; b++ {
			d := HopDistance(TileCoord(a), TileCoord(b))
			if d < 1 {
				t.Fatalf("distance %d < 1 for tiles %d,%d", d, a, b)
			}
			if d > max {
				max = d
			}
			// Symmetry.
			if rd := HopDistance(TileCoord(b), TileCoord(a)); rd != d {
				t.Fatalf("asymmetric distance between %d and %d: %d vs %d", a, b, d, rd)
			}
		}
	}
	if max != 9 {
		t.Fatalf("max mesh distance = %d, want 9", max)
	}
}

func TestXYPathProperties(t *testing.T) {
	f := func(sa, sb, da, db uint8) bool {
		src := Coord{int(sa) % MeshWidth, int(sb) % MeshHeight}
		dst := Coord{int(da) % MeshWidth, int(db) % MeshHeight}
		path := XYPath(src, dst)
		// Length: manhattan distance.
		if len(path) != abs(src.X-dst.X)+abs(src.Y-dst.Y) {
			return false
		}
		// Connectivity and X-before-Y ordering.
		cur := src
		turnedY := false
		for _, l := range path {
			if l.From != cur {
				return false
			}
			dx, dy := l.To.X-l.From.X, l.To.Y-l.From.Y
			if abs(dx)+abs(dy) != 1 {
				return false // not a unit mesh step
			}
			if dy != 0 {
				turnedY = true
			}
			if dx != 0 && turnedY {
				return false // X move after a Y move violates X-Y routing
			}
			if !l.To.Valid() {
				return false
			}
			cur = l.To
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControllerAssignment(t *testing.T) {
	// Quadrant corners map to their own controller's tile.
	cases := []struct {
		core int
		want Coord
	}{
		{0, Coord{0, 0}},  // tile (0,0)
		{10, Coord{5, 0}}, // tile 5 = (5,0)
		{24, Coord{0, 2}}, // tile 12 = (0,2)
		{47, Coord{5, 2}}, // tile 23 = (5,3) -> controller (5,2)
	}
	for _, tc := range cases {
		if got := ControllerFor(tc.core); got != tc.want {
			t.Errorf("ControllerFor(%d) = %v, want %v", tc.core, got, tc.want)
		}
	}
	// Every core's controller distance is within the paper's 1..4 range
	// used in Figure 3's memory plots.
	for core := 0; core < NumCores; core++ {
		d := MemDistance(core)
		if d < 1 || d > 4 {
			t.Errorf("core %d memory distance %d outside [1,4]", core, d)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("TileCoord(-1)", func() { TileCoord(-1) })
	mustPanic("TileCoord(24)", func() { TileCoord(NumTiles) })
	mustPanic("CoreTile(48)", func() { CoreTile(NumCores) })
	mustPanic("XYPath off-mesh", func() { XYPath(Coord{-1, 0}, Coord{0, 0}) })
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Params.Lhop = 0
	if bad.Validate() == nil {
		t.Fatal("zero Lhop accepted")
	}
	bad = DefaultConfig()
	bad.Contention.ReadSvc = 0
	if bad.Validate() == nil {
		t.Fatal("zero ReadSvc with contention enabled accepted")
	}
	bad = DefaultConfig()
	bad.NoC = NoCDetailed
	bad.LinkSvc = 0
	if bad.Validate() == nil {
		t.Fatal("detailed NoC with zero LinkSvc accepted")
	}
	if NoCAnalytic.String() != "analytic" || NoCDetailed.String() != "detailed" {
		t.Fatal("NoCMode String broken")
	}
}

func TestTable1Values(t *testing.T) {
	p := Table1()
	// Spot-check against the paper's Table 1 (µs).
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"Lhop", p.Lhop.Microseconds(), 0.005},
		{"ompb", p.OMpb.Microseconds(), 0.126},
		{"omem_w", p.OMemW.Microseconds(), 0.461},
		{"omem_r", p.OMemR.Microseconds(), 0.208},
		{"ompb_put", p.OMpbPut.Microseconds(), 0.069},
		{"ompb_get", p.OMpbGet.Microseconds(), 0.33},
		{"omem_put", p.OMemPut.Microseconds(), 0.19},
		{"omem_get", p.OMemGet.Microseconds(), 0.095},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}
