// Package occoll extends the paper's OC-Bcast technique — pipelined k-ary
// trees over one-sided MPB RMA — to the remaining collectives its §7
// names as future work: reduce, allreduce, scatter, gather and allgather.
// Where the two-sided RCCE-based extensions in internal/collective pay a
// synchronous flag handshake and an off-chip round trip per hop, every
// operation here moves data with one-sided puts/gets between MPBs and
// combines reduction chunks directly in the MPBs (rma.GetMPBCombine), the
// same way OC-Bcast forwards broadcast chunks.
//
// All operations share one propagation tree (core.BuildTree) and are
// parameterized by the same Config as OC-Bcast: fan-out K, chunk size
// BufLines (Moc) and DoubleBuffer. Data chunks live in the same MPB
// buffer region as OC-Bcast's; occoll's synchronization flags occupy a
// dedicated line block placed after OC-Bcast's flags and below the RCCE
// layer's lines, so the three families can coexist on one chip.
//
// Every operation is a chip-wide collective: all cores must call it with
// matching arguments (MPI style). An operation starts by zeroing the
// core's own occoll flag lines and running a barrier, which makes it safe
// to interleave occoll operations with OC-Bcast broadcasts and RCCE
// two-sided traffic that scribble over the shared MPB region; it ends
// fully drained (no peer still reads this core's MPB), so the other
// families are safe to run afterwards.
package occoll

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
)

// Config re-uses OC-Bcast's configuration: K, BufLines and DoubleBuffer
// have identical meaning (the extra occast-only ablation fields are
// ignored here).
type Config = core.Config

// ReduceOp combines src into dst; see collective.ReduceOp.
type ReduceOp = collective.ReduceOp

// Flag-line layout. OC-Bcast occupies [0, nb·BufLines) for data plus
// 1+K flag lines; occoll's flags follow immediately:
//
//	dnNotify            1 line   down direction: chunk available at parent
//	dnDone[K]           K lines  down direction: child i consumed chunk
//	upReady[K]          K lines  up direction: child i staged chunk
//	upConsumed          1 line   up direction: parent consumed my chunk
//
// The block must stay below line 251: the RCCE layer owns 251..255
// (barrier + send/recv handshake) and the MPMD descriptor line is 252.
const maxFlagLine = 250

func flagBase(c Config) int {
	nb := 1
	if c.DoubleBuffer {
		nb = 2
	}
	return nb*c.BufLines + 1 + c.K
}

// Validate reports whether the MPB layout fits: OC-Bcast's buffers and
// flags plus occoll's 2K+2 flag lines within lines 0..250.
func Validate(c Config) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if top := flagBase(c) + 2*c.K + 1; top > maxFlagLine {
		return fmt.Errorf("occoll: layout needs flag lines up to %d, only 0..%d available (reduce BufLines or K)",
			top, maxFlagLine)
	}
	return nil
}

// Collectives holds a core's one-sided collective state. Create one per
// core inside Chip.Run, sharing the core's rcce.Port so barrier epochs
// stay aligned with the program's own Barrier calls.
type Collectives struct {
	core *rma.Core
	port *rcce.Port
	cfg  Config
}

// New prepares one-sided collective state for one core. It panics on a
// configuration whose MPB layout does not fit (a programming error, like
// core.NewBroadcaster).
func New(c *rma.Core, port *rcce.Port, cfg Config) *Collectives {
	if err := Validate(cfg); err != nil {
		panic(err)
	}
	return &Collectives{core: c, port: port, cfg: cfg}
}

// numBuffers reports 2 with double buffering, else 1.
func (x *Collectives) numBuffers() int {
	if x.cfg.DoubleBuffer {
		return 2
	}
	return 1
}

// bufLine maps a chunk/transfer index to its MPB slot's first line.
func (x *Collectives) bufLine(i int) int { return (i % x.numBuffers()) * x.cfg.BufLines }

func (x *Collectives) dnNotifyLine() int     { return flagBase(x.cfg) }
func (x *Collectives) dnDoneLine(i int) int  { return flagBase(x.cfg) + 1 + i }
func (x *Collectives) upReadyLine(i int) int { return flagBase(x.cfg) + 1 + x.cfg.K + i }
func (x *Collectives) upConsumedLine() int   { return flagBase(x.cfg) + 1 + 2*x.cfg.K }

// begin validates the collective's arguments, quiesces the chip and
// resets this core's occoll flag lines, so per-operation sequence numbers
// can restart at 1 regardless of what ran before. It returns this core's
// tree node. ok is false for the trivial 1-core chip.
func (x *Collectives) begin(root, addr, lines int) (t core.Tree, ok bool) {
	c := x.core
	p := c.N()
	if lines <= 0 {
		panic(fmt.Sprintf("occoll: non-positive message size %d", lines))
	}
	if addr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("occoll: address %d not cache-line aligned", addr))
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("occoll: root %d out of range [0,%d)", root, p))
	}
	if p == 1 {
		return core.Tree{P: 1}, false
	}
	// Zero my flag lines BEFORE the barrier: at this point nothing is in
	// flight toward them (the previous occoll operation drained, and
	// non-occoll writers — e.g. a large RCCE send staging over this
	// region — complete synchronously), and no peer re-enters the
	// protocol until it passes the barrier below.
	var zero [scc.CacheLine]byte
	for l := flagBase(x.cfg); l <= flagBase(x.cfg)+2*x.cfg.K+1; l++ {
		c.WriteLocalLine(l, zero[:])
	}
	// The barrier guarantees every core finished all earlier collectives
	// — no stale reader of this core's MPB buffers survives it.
	x.port.Barrier()
	return core.BuildTree(c.ID(), root, p, x.cfg.K), true
}

// chunkSpan returns the line count of chunk ch out of `lines` total.
func (x *Collectives) chunkSpan(ch, lines int) int {
	m := lines - ch*x.cfg.BufLines
	if m > x.cfg.BufLines {
		m = x.cfg.BufLines
	}
	return m
}

// nchunks is the number of BufLines-sized chunks covering `lines`.
func (x *Collectives) nchunks(lines int) int {
	return (lines + x.cfg.BufLines - 1) / x.cfg.BufLines
}

// preorderRanks appends the DFS preorder of the subtree rooted at rank r
// (for p cores, fan-out k) to out. Parent and child compute identical
// orders, which defines the block order of scatter/gather edge streams.
func preorderRanks(r, p, k int, out []int) []int {
	out = append(out, r)
	for j := 1; j <= k; j++ {
		cr := r*k + j
		if cr >= p {
			break
		}
		out = preorderRanks(cr, p, k, out)
	}
	return out
}

// rankID maps a rank back to a core id for root s on p cores.
func rankID(rank, s, p int) int { return (s + rank) % p }
