package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// spanGroup aggregates the closed spans sharing one cat/name key.
type spanGroup struct {
	cat, name string
	durs      []float64 // microseconds
	total     Time
}

// collectSpans reconstructs span durations from the event stream:
// synchronous spans via a per-core stack, async spans via their ids.
// Durations are grouped by cat/name.
func (tl *Timeline) collectSpans() []*spanGroup {
	groups := make(map[string]*spanGroup)
	record := func(cat, name string, d Time) {
		key := cat + "/" + name
		g := groups[key]
		if g == nil {
			g = &spanGroup{cat: cat, name: name}
			groups[key] = g
		}
		g.durs = append(g.durs, psToUS(d))
		g.total += d
	}
	stacks := make([][]Event, tl.NCores)
	asyncOpen := make(map[int64]Event)
	for _, ev := range tl.Events {
		c := int(ev.Core)
		if c < 0 || c >= tl.NCores {
			continue
		}
		switch ev.Kind {
		case KindBegin:
			stacks[c] = append(stacks[c], ev)
		case KindEnd:
			if n := len(stacks[c]); n > 0 {
				open := stacks[c][n-1]
				stacks[c] = stacks[c][:n-1]
				record(open.Cat, open.Name, ev.Time-open.Time)
			}
		case KindAsyncBegin:
			asyncOpen[ev.ID] = ev
		case KindAsyncEnd:
			if open, ok := asyncOpen[ev.ID]; ok {
				delete(asyncOpen, ev.ID)
				record(open.Cat, open.Name, ev.Time-open.Time)
			}
		}
	}
	out := make([]*spanGroup, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].cat+"/"+out[i].name < out[j].cat+"/"+out[j].name
	})
	return out
}

// WriteSummary renders the timeline as a human-readable report: the
// per-core attribution table (with a chip-wide total row), the topN
// span groups by cumulative duration with latency quantiles, and
// resource utilization. topN ≤ 0 means "all".
func (tl *Timeline) WriteSummary(w io.Writer, topN int) error {
	horizon := tl.End
	fmt.Fprintf(w, "simulated horizon: %.3f µs, %d events on %d cores\n\n",
		psToUS(horizon), len(tl.Events), tl.NCores)

	// Attribution table.
	attr := tl.Attribution()
	fmt.Fprintf(w, "time attribution (µs per core)\n")
	fmt.Fprintf(w, "%5s %10s %10s %10s %10s %10s %10s %10s\n",
		"core", "total", BucketCompute, BucketMPB, BucketMem, BucketFlag, BucketWait, BucketOther)
	var chip CoreAttribution
	for _, a := range attr {
		fmt.Fprintf(w, "%5d %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			a.Core, psToUS(a.Total),
			psToUS(a.Buckets[BucketCompute]), psToUS(a.Buckets[BucketMPB]),
			psToUS(a.Buckets[BucketMem]), psToUS(a.Buckets[BucketFlag]),
			psToUS(a.Buckets[BucketWait]), psToUS(a.Buckets[BucketOther]))
		chip.Total += a.Total
		for b := range a.Buckets {
			chip.Buckets[b] += a.Buckets[b]
		}
	}
	fmt.Fprintf(w, "%5s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n\n",
		"all", psToUS(chip.Total),
		psToUS(chip.Buckets[BucketCompute]), psToUS(chip.Buckets[BucketMPB]),
		psToUS(chip.Buckets[BucketMem]), psToUS(chip.Buckets[BucketFlag]),
		psToUS(chip.Buckets[BucketWait]), psToUS(chip.Buckets[BucketOther]))

	// Top spans.
	groups := tl.collectSpans()
	if topN > 0 && len(groups) > topN {
		groups = groups[:topN]
	}
	fmt.Fprintf(w, "top spans by cumulative simulated time (µs)\n")
	fmt.Fprintf(w, "%-20s %8s %12s %10s %10s %10s %10s\n",
		"span", "count", "total", "mean", "p50", "p95", "p99")
	for _, g := range groups {
		s := stats.Summarize(g.durs)
		fmt.Fprintf(w, "%-20s %8d %12.3f %10.3f %10.3f %10.3f %10.3f\n",
			g.cat+"/"+g.name, s.N, psToUS(g.total), s.Mean, s.P50, s.P95, s.P99)
	}

	// Resource utilization; skip untouched resources to keep the report
	// readable on large meshes.
	if len(tl.Resources) > 0 {
		fmt.Fprintf(w, "\nresource utilization over the horizon\n")
		fmt.Fprintf(w, "%-10s %-14s %10s %10s %12s %12s %6s\n",
			"class", "name", "reserv", "units", "busy µs", "queued µs", "util")
		for _, u := range tl.Resources {
			if u.Reservations == 0 {
				continue
			}
			fmt.Fprintf(w, "%-10s %-14s %10d %10d %12.3f %12.3f %5.1f%%\n",
				u.Class, u.Name, u.Reservations, u.Units,
				psToUS(u.Busy), psToUS(u.Queued), 100*u.Utilization(horizon))
		}
	}
	return nil
}
