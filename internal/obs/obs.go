// Package obs is the simulator's observability layer: a structured
// timeline of virtual-time events — spans, instants, async request
// spans and counter samples — recorded while a simulation runs, plus
// the analyses built on that stream (per-core time attribution,
// resource-utilization reports, Chrome/Perfetto trace export).
//
// The paper's argument (§5) is an accounting one: OC-Bcast wins because
// of what sits on the critical path. The aggregate counters in
// internal/trace verify the *counts*; this package shows *where the
// simulated time goes* — MPB transfer vs off-chip memory vs flag
// signalling vs flag-spin — per core and per collective.
//
// The package is a dependency leaf: it deliberately does not import
// internal/sim (which imports it), so timestamps are plain int64
// picoseconds (Time), bit-compatible with sim.Time.
//
// Recording discipline: a Recorder is attached to at most one simulated
// chip, whose engine serializes all cores (exactly one goroutine runs at
// any instant), so Recorder methods need no locking; every emission site
// guards with a nil check, making a disabled recorder literally one
// pointer comparison on the hot path. Emitters must keep synchronous
// Begin/End spans properly nested per core and per-core timestamps
// nondecreasing — Timeline.Validate checks both.
package obs

import (
	"fmt"
	"strings"
)

// Time is a virtual timestamp in integer picoseconds (the same unit and
// representation as sim.Time, without importing it).
type Time = int64

// microsecond is one µs in picoseconds, for formatting.
const microsecond = 1e6

// Kind classifies a timeline event.
type Kind uint8

// Event kinds. Begin/End delimit synchronous spans on a core's track
// (they must nest, like a call stack); AsyncBegin/AsyncEnd delimit
// request-scoped spans that may overlap on one core (matched by ID);
// Instant marks a point; Counter samples a named value.
const (
	KindBegin Kind = iota
	KindEnd
	KindInstant
	KindAsyncBegin
	KindAsyncEnd
	KindCounter
)

// letter is the event kind's Chrome-trace phase letter.
func (k Kind) letter() string {
	switch k {
	case KindBegin:
		return "B"
	case KindEnd:
		return "E"
	case KindInstant:
		return "i"
	case KindAsyncBegin:
		return "b"
	case KindAsyncEnd:
		return "e"
	default:
		return "C"
	}
}

// Bucket is the time-attribution class of a leaf span: every simulated
// nanosecond a core's clock advances inside a span is charged to the
// span's bucket (innermost span wins), so the per-core buckets sum
// exactly to the core's total simulated time.
type Bucket uint8

// Attribution buckets. BucketOther holds time not claimed by any leaf
// span (container spans such as API-level collective calls, and gaps) —
// zero in a fully instrumented run.
const (
	BucketOther Bucket = iota
	// BucketCompute is local computation (rma.Core.Compute), including
	// the charged reduction arithmetic.
	BucketCompute
	// BucketMPB is MPB-to-MPB data movement: puts, gets and in-MPB
	// combining gets that never leave the on-die network.
	BucketMPB
	// BucketMem is data movement with an off-chip end: memory-to-MPB
	// puts and MPB-to-memory gets.
	BucketMem
	// BucketFlag is synchronization signalling: flag writes, remote flag
	// reads and IPI sends.
	BucketFlag
	// BucketWait is time spent waiting: flag-spin (blocked on an MPB
	// line plus the final successful poll read) and IPI waits.
	BucketWait
	// NumBuckets bounds Bucket values for array-indexed tallies.
	NumBuckets
)

// String names the bucket as the attribution table prints it.
func (b Bucket) String() string {
	switch b {
	case BucketCompute:
		return "compute"
	case BucketMPB:
		return "mpb"
	case BucketMem:
		return "mem"
	case BucketFlag:
		return "flag"
	case BucketWait:
		return "wait"
	default:
		return "other"
	}
}

// Arg is one key/value annotation on an event. A zero Arg (empty key)
// means "unused".
type Arg struct {
	Key string
	Val int64
}

// Event is one timeline record. Events are small fixed-size values so
// recording is an amortized slice append with no per-event allocation
// (names and categories are static strings at every emission site).
type Event struct {
	Kind   Kind
	Bucket Bucket
	Core   int32
	Time   Time
	Cat    string
	Name   string
	// Str is an optional string-valued annotation (e.g. the resolved
	// algorithm choice on an API span).
	Str string
	// ID matches AsyncBegin/AsyncEnd pairs, and carries the sampled
	// value for KindCounter events.
	ID int64
	// A0 and A1 are optional integer annotations.
	A0, A1 Arg
}

// String formats the event for diagnostics (deadlock reports, tests):
// e.g. "[1617.671µs] B rma/put.mem dst=0 lines=96".
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%.4fµs] %s %s/%s", float64(e.Time)/microsecond, e.Kind.letter(), e.Cat, e.Name)
	if e.Str != "" {
		fmt.Fprintf(&sb, " %s", e.Str)
	}
	if e.Kind == KindCounter {
		fmt.Fprintf(&sb, " value=%d", e.ID)
	}
	for _, a := range [2]Arg{e.A0, e.A1} {
		if a.Key != "" {
			fmt.Fprintf(&sb, " %s=%d", a.Key, a.Val)
		}
	}
	return sb.String()
}

// Recorder collects the event stream of one simulated chip. The zero
// value is NOT usable; call NewRecorder. A nil *Recorder is the
// "tracing disabled" state every instrumentation site checks for.
type Recorder struct {
	events []Event
	nextID int64
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Emit appends an arbitrary event. Prefer the typed helpers below for
// the common kinds; Emit exists for spans that need every field (e.g.
// API spans carrying a Str annotation).
func (r *Recorder) Emit(ev Event) {
	r.events = append(r.events, ev)
}

// Begin opens a synchronous span on core's track at time t. Spans on one
// core must nest; close with End.
func (r *Recorder) Begin(core int, t Time, cat, name string, b Bucket, a0, a1 Arg) {
	r.events = append(r.events, Event{
		Kind: KindBegin, Bucket: b, Core: int32(core), Time: t,
		Cat: cat, Name: name, A0: a0, A1: a1,
	})
}

// End closes the innermost open synchronous span on core's track at t.
func (r *Recorder) End(core int, t Time) {
	r.events = append(r.events, Event{Kind: KindEnd, Core: int32(core), Time: t})
}

// Instant records a point event on core's track.
func (r *Recorder) Instant(core int, t Time, cat, name string, a0, a1 Arg) {
	r.events = append(r.events, Event{
		Kind: KindInstant, Core: int32(core), Time: t,
		Cat: cat, Name: name, A0: a0, A1: a1,
	})
}

// AsyncID allocates a fresh id for an AsyncBegin/AsyncEnd pair.
func (r *Recorder) AsyncID() int64 {
	r.nextID++
	return r.nextID
}

// AsyncBegin opens an async (request-scoped) span with the given id.
// Async spans may overlap freely on one core; close with AsyncEnd.
func (r *Recorder) AsyncBegin(id int64, core int, t Time, cat, name string, a0, a1 Arg) {
	r.events = append(r.events, Event{
		Kind: KindAsyncBegin, Core: int32(core), Time: t,
		Cat: cat, Name: name, ID: id, A0: a0, A1: a1,
	})
}

// AsyncEnd closes the async span with the given id.
func (r *Recorder) AsyncEnd(id int64, core int, t Time, cat, name string) {
	r.events = append(r.events, Event{
		Kind: KindAsyncEnd, Core: int32(core), Time: t,
		Cat: cat, Name: name, ID: id,
	})
}

// Counter samples a named per-core value (e.g. lanes in flight).
func (r *Recorder) Counter(core int, t Time, cat, name string, value int64) {
	r.events = append(r.events, Event{
		Kind: KindCounter, Core: int32(core), Time: t,
		Cat: cat, Name: name, ID: value,
	})
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Tail returns up to k most recent events recorded for the given core,
// oldest first — the context the engine attaches to deadlock reports.
func (r *Recorder) Tail(core, k int) []Event {
	var out []Event
	for i := len(r.events) - 1; i >= 0 && len(out) < k; i-- {
		if r.events[i].Core == int32(core) {
			out = append(out, r.events[i])
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
