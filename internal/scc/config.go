package scc

import (
	"fmt"

	"repro/internal/sim"
)

// Params holds the timing parameters of the LogP-based communication model
// (paper §3, Table 1). All values are virtual durations.
type Params struct {
	// Lhop is the time for one packet to traverse one router.
	Lhop sim.Duration
	// OMpb is the core overhead of reading or writing one cache line
	// from/to an MPB.
	OMpb sim.Duration
	// OMemW / OMemR are the overheads of writing / reading one cache
	// line to/from off-chip memory (they include the memory-side cost;
	// paper §3.1.2).
	OMemW sim.Duration
	OMemR sim.Duration
	// OMpbPut / OMpbGet are the fixed function-call overheads of
	// put/get whose source (put) or destination (get) is the local MPB.
	OMpbPut sim.Duration
	OMpbGet sim.Duration
	// OMemPut / OMemGet are the corresponding overheads for operations
	// whose source (put) or destination (get) is private off-chip memory.
	OMemPut sim.Duration
	OMemGet sim.Duration
}

// Table1 returns the parameter values measured on the SCC (paper Table 1).
func Table1() Params {
	return Params{
		Lhop:    sim.Micros(0.005),
		OMpb:    sim.Micros(0.126),
		OMemW:   sim.Micros(0.461),
		OMemR:   sim.Micros(0.208),
		OMpbPut: sim.Micros(0.069),
		OMpbGet: sim.Micros(0.33),
		OMemPut: sim.Micros(0.19),
		OMemGet: sim.Micros(0.095),
	}
}

// ContentionParams configure the MPB port FIFO model that reproduces the
// paper's Figure 4 contention measurements (§3.3).
type ContentionParams struct {
	// Enabled turns MPB port queueing on. When off, accesses cost only
	// their analytic LogP time (the contention-free model of §3.1).
	Enabled bool
	// ReadSvc is the MPB port occupancy per cache line read by a remote
	// get. Calibrated so that ~24 concurrent 128-line readers saturate
	// the port exactly when queueing overtakes the analytic latency —
	// the paper's measured contention knee (§3.3).
	ReadSvc sim.Duration
	// WriteSvc is the port occupancy per cache line written by a put.
	WriteSvc sim.Duration
	// Knee is the queue depth beyond which the port degrades
	// superlinearly; the paper measured no contention up to 24
	// concurrent accessors and "non-deterministic overhead after the
	// contention threshold".
	Knee int
	// ReadEscalation / WriteEscalation multiply the service time of
	// reservations issued while the queue depth is ≥ Knee, reproducing
	// the paper's >2× (get) and >4× (put) slowest-vs-fastest spreads at
	// 48 accessors.
	ReadEscalation  float64
	WriteEscalation float64
}

// DefaultContention returns the calibrated contention parameters.
func DefaultContention() ContentionParams {
	return ContentionParams{
		Enabled:         true,
		ReadSvc:         sim.Micros(0.0123),
		WriteSvc:        sim.Micros(0.0092),
		Knee:            24,
		ReadEscalation:  6.0,
		WriteEscalation: 6.0,
	}
}

// NoCMode selects how mesh traversal cost is charged.
type NoCMode int

const (
	// NoCAnalytic charges d·Lhop per packet with no link occupancy
	// tracking. This matches the paper's model (§3.1), which was shown
	// in §3.3 to be valid because the mesh is never a bottleneck at SCC
	// scale.
	NoCAnalytic NoCMode = iota
	// NoCDetailed additionally reserves every link on the X-Y path per
	// packet, exposing (the absence of) mesh contention. Used by the
	// §3.3 mesh-stress experiment and as an ablation.
	NoCDetailed
)

// String names the mode.
func (m NoCMode) String() string {
	switch m {
	case NoCAnalytic:
		return "analytic"
	case NoCDetailed:
		return "detailed"
	default:
		return fmt.Sprintf("NoCMode(%d)", int(m))
	}
}

// Config assembles everything needed to instantiate a simulated chip.
type Config struct {
	// Topo is the chip geometry. The zero value means the paper-faithful
	// 6×4 SCC (use the Topology method to resolve it), so configurations
	// built by hand before topologies existed keep working.
	Topo       Topology
	Params     Params
	Contention ContentionParams
	NoC        NoCMode
	// LinkSvc is the per-packet link occupancy in detailed NoC mode.
	// The SCC mesh moves a 32 B packet as two 16 B flits at 800 MHz
	// (~2.5 ns), i.e. well below per-core issue rates — which is why
	// the paper found no mesh contention.
	LinkSvc sim.Duration
	// CacheEnabled turns on the per-core model of L1-cached
	// private-memory reads (hits cost ~0), which Formula 14 relies on
	// for the binomial baseline.
	CacheEnabled bool
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: Table 1 parameters, calibrated contention model, analytic
// NoC accounting, cache model on.
func DefaultConfig() Config {
	return Config{
		Topo:         SCC(),
		Params:       Table1(),
		Contention:   DefaultContention(),
		NoC:          NoCAnalytic,
		LinkSvc:      sim.Micros(0.0025),
		CacheEnabled: true,
	}
}

// MeshConfig is DefaultConfig on a w×h grid of SCC-style tiles — the
// entry point for beyond-48-core experiments.
func MeshConfig(w, h int) Config {
	cfg := DefaultConfig()
	cfg.Topo = Mesh(w, h)
	return cfg
}

// Topology resolves the configured geometry, falling back to the
// paper-faithful 6×4 SCC when Topo is the zero value.
func (c Config) Topology() Topology {
	if c.Topo.IsZero() {
		return SCC()
	}
	return c.Topo
}

// Validate reports an error if the configuration is unusable.
func (c Config) Validate() error {
	if err := c.Topology().Validate(); err != nil {
		return err
	}
	if c.Params.Lhop <= 0 {
		return fmt.Errorf("scc: Lhop must be positive, got %v", c.Params.Lhop)
	}
	if c.Params.OMpb <= 0 || c.Params.OMemR <= 0 || c.Params.OMemW <= 0 {
		return fmt.Errorf("scc: per-line overheads must be positive")
	}
	if c.Contention.Enabled && (c.Contention.ReadSvc <= 0 || c.Contention.WriteSvc <= 0) {
		return fmt.Errorf("scc: contention enabled but service times not positive")
	}
	if c.Contention.Enabled && c.Contention.Knee < 0 {
		return fmt.Errorf("scc: negative contention knee")
	}
	if c.NoC == NoCDetailed && c.LinkSvc <= 0 {
		return fmt.Errorf("scc: detailed NoC mode requires positive LinkSvc")
	}
	return nil
}
