package occoll

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
)

// run executes body on an n-core chip with per-core occoll state.
func run(n int, cfg Config, body func(c *rma.Core, x *Collectives)) *rma.Chip {
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		body(c, New(c, port, cfg))
	})
	return chip
}

// fillPayload writes a deterministic pseudo-random per-core payload.
func fillPayload(chip *rma.Chip, n, addr, nbytes, salt int) [][]byte {
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(salt*1000 + i)))
		b := make([]byte, nbytes)
		rng.Read(b)
		payloads[i] = b
		chip.Private(i).Write(addr, b)
	}
	return payloads
}

func sumRef(payloads [][]byte) []byte {
	ref := append([]byte(nil), payloads[0]...)
	for _, p := range payloads[1:] {
		collective.SumInt64(ref, p)
	}
	return ref
}

func TestReduceMatchesReference(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7} {
		for _, db := range []bool{true, false} {
			for _, n := range []int{2, 5, 16, 48} {
				for _, root := range []int{0, n - 1} {
					cfg := Config{K: k, BufLines: 4, DoubleBuffer: db}
					const lines = 11 // 3 chunks: 4+4+3
					nbytes := lines * scc.CacheLine
					chip := rma.NewChipN(scc.DefaultConfig(), n)
					payloads := fillPayload(chip, n, 0, nbytes, k*100+n)
					chip.Run(func(c *rma.Core) {
						x := New(c, rcce.NewPort(c), cfg)
						x.Reduce(root, 0, lines, collective.SumInt64)
					})
					got := make([]byte, nbytes)
					chip.Private(root).Read(got, 0, nbytes)
					if !bytes.Equal(got, sumRef(payloads)) {
						t.Fatalf("k=%d db=%v n=%d root=%d: reduce result mismatch", k, db, n, root)
					}
					// Non-root contributions must be untouched.
					for i := 0; i < n; i++ {
						if i == root {
							continue
						}
						b := make([]byte, nbytes)
						chip.Private(i).Read(b, 0, nbytes)
						if !bytes.Equal(b, payloads[i]) {
							t.Fatalf("k=%d n=%d: core %d input clobbered", k, n, i)
						}
					}
				}
			}
		}
	}
}

func TestAllReduceDeliversEverywhere(t *testing.T) {
	for _, k := range []int{2, 3, 7} {
		const n, lines = 48, 10
		nbytes := lines * scc.CacheLine
		cfg := Config{K: k, BufLines: 3, DoubleBuffer: true}
		chip := rma.NewChipN(scc.DefaultConfig(), n)
		payloads := fillPayload(chip, n, 0, nbytes, k)
		chip.Run(func(c *rma.Core) {
			x := New(c, rcce.NewPort(c), cfg)
			x.AllReduce(0, lines, collective.MaxInt64)
		})
		ref := append([]byte(nil), payloads[0]...)
		for _, p := range payloads[1:] {
			collective.MaxInt64(ref, p)
		}
		for i := 0; i < n; i++ {
			got := make([]byte, nbytes)
			chip.Private(i).Read(got, 0, nbytes)
			if !bytes.Equal(got, ref) {
				t.Fatalf("k=%d: core %d allreduce result mismatch", k, i)
			}
		}
	}
}

func TestScatterGatherAllGather(t *testing.T) {
	for _, k := range []int{2, 7} {
		for _, lines := range []int{2, 7} { // below and above BufLines
			const n = 48
			cfg := Config{K: k, BufLines: 4, DoubleBuffer: true}
			bb := lines * scc.CacheLine
			chip := rma.NewChipN(scc.DefaultConfig(), n)
			// Root 3 holds n distinct blocks for scatter.
			blocks := make([][]byte, n)
			for i := range blocks {
				rng := rand.New(rand.NewSource(int64(7*n + i)))
				blocks[i] = make([]byte, bb)
				rng.Read(blocks[i])
				chip.Private(3).Write(i*bb, blocks[i])
			}
			gatherBase := 2 * n * bb
			agBase := 4 * n * bb
			chip.Run(func(c *rma.Core) {
				x := New(c, rcce.NewPort(c), cfg)
				x.Scatter(3, 0, lines)
				// Copy my block into the gather and allgather regions.
				blk := make([]byte, bb)
				c.Chip().Private(c.ID()).Read(blk, c.ID()*bb, bb)
				c.Chip().Private(c.ID()).Write(gatherBase+c.ID()*bb, blk)
				c.Chip().Private(c.ID()).Write(agBase+c.ID()*bb, blk)
				x.Gather(5, gatherBase, lines)
				x.AllGather(agBase, lines)
			})
			for i := 0; i < n; i++ {
				got := make([]byte, bb)
				chip.Private(i).Read(got, i*bb, bb)
				if !bytes.Equal(got, blocks[i]) {
					t.Fatalf("k=%d lines=%d: core %d scatter block mismatch", k, lines, i)
				}
			}
			for i := 0; i < n; i++ {
				got := make([]byte, bb)
				chip.Private(5).Read(got, gatherBase+i*bb, bb)
				if !bytes.Equal(got, blocks[i]) {
					t.Fatalf("k=%d lines=%d: gather block %d mismatch", k, lines, i)
				}
			}
			for c := 0; c < n; c++ {
				for i := 0; i < n; i++ {
					got := make([]byte, bb)
					chip.Private(c).Read(got, agBase+i*bb, bb)
					if !bytes.Equal(got, blocks[i]) {
						t.Fatalf("k=%d lines=%d: core %d allgather block %d mismatch", k, lines, c, i)
					}
				}
			}
		}
	}
}

// TestMixedFamilies interleaves occoll operations with OC-Bcast and the
// RCCE two-sided layer on one chip — the begin() quiesce must keep the
// shared MPB region consistent even after a large two-sided send has
// scribbled over every flag line.
func TestMixedFamilies(t *testing.T) {
	const n, lines = 8, 9
	nbytes := lines * scc.CacheLine
	occfg := occore.DefaultConfig() // K=7, BufLines=96: RCCE sends overlap its flags
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	payloads := fillPayload(chip, n, 0, nbytes, 42)
	bcastSrc := make([]byte, nbytes)
	rand.New(rand.NewSource(99)).Read(bcastSrc)
	chip.Private(2).Write(1<<16, bcastSrc)

	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		x := New(c, port, occfg)
		bc := occore.NewBroadcaster(c, occfg)
		x.AllReduce(0, lines, collective.SumInt64)
		bc.Bcast(2, 1<<16, lines)
		// A 240-line two-sided transfer stages over lines 0..239 of the
		// sender's MPB, covering occoll's and OC-Bcast's flag lines.
		if c.ID() == 0 {
			port.Send(1, 1<<18, 240)
		} else if c.ID() == 1 {
			port.Recv(0, 1<<18, 240)
		}
		x.AllReduce(1<<17, lines, collective.SumInt64) // all-zero inputs
		x.Reduce(1, 0, lines, collective.SumInt64)
	})

	ref := sumRef(payloads)
	for i := 0; i < n; i++ {
		got := make([]byte, nbytes)
		chip.Private(i).Read(got, 1<<16, nbytes)
		if !bytes.Equal(got, bcastSrc) {
			t.Fatalf("core %d bcast payload mismatch after mixing", i)
		}
	}
	// The final reduce onto core 1: inputs were the first allreduce's
	// results (= ref on every core), summed n times.
	want := make([]byte, nbytes)
	for lane := 0; lane+8 <= nbytes; lane += 8 {
		v := int64(binary.LittleEndian.Uint64(ref[lane:])) * int64(n)
		binary.LittleEndian.PutUint64(want[lane:], uint64(v))
	}
	got := make([]byte, nbytes)
	chip.Private(1).Read(got, 0, nbytes)
	if !bytes.Equal(got, want) {
		t.Fatalf("reduce-after-mixing result mismatch")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Config{K: 7, BufLines: 96, DoubleBuffer: true}); err != nil {
		t.Fatalf("paper default config rejected: %v", err)
	}
	if err := Validate(Config{K: 24, BufLines: 96, DoubleBuffer: true}); err == nil {
		t.Fatal("oversized layout accepted")
	}
	if err := Validate(Config{K: 0, BufLines: 96}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSingleCoreNoOp(t *testing.T) {
	run(1, Config{K: 7, BufLines: 96, DoubleBuffer: true}, func(c *rma.Core, x *Collectives) {
		x.Reduce(0, 0, 4, collective.SumInt64)
		x.AllReduce(0, 4, collective.SumInt64)
		x.Scatter(0, 0, 4)
		x.Gather(0, 0, 4)
		x.AllGather(0, 4)
	})
}

// TestLaneIssueAccounting pins the round-robin lane claim: issues spread
// over the configured lanes with counts differing by at most one, and
// LaneIssues sums to the total issue count.
func TestLaneIssueAccounting(t *testing.T) {
	const n, lanes, issues = 4, 3, 7
	cfg := Config{K: 2, BufLines: 2, DoubleBuffer: true, Channels: lanes}
	counts := make([]uint64, lanes)
	run(n, cfg, func(c *rma.Core, x *Collectives) {
		if x.Lanes() != lanes {
			t.Errorf("Lanes() = %d, want %d", x.Lanes(), lanes)
		}
		for i := 0; i < issues; i++ {
			x.IAllReduce(0, 1, collective.SumInt64).Wait()
		}
		x.Finish()
		if c.ID() == 0 {
			copy(counts, x.LaneIssues())
		}
	})
	var total uint64
	for i, got := range counts {
		want := uint64(issues / lanes)
		if i < issues%lanes {
			want++
		}
		if got != want {
			t.Errorf("lane %d carried %d issues, want %d (round-robin)", i, got, want)
		}
		total += got
	}
	if total != issues {
		t.Errorf("lane issues sum to %d, want %d", total, issues)
	}
}
