package collective

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed)*37 + i*11)
	}
	return b
}

type bcastFn func(c *Comm, root, addr, lines int)

var algorithms = map[string]bcastFn{
	"binomial": func(c *Comm, root, addr, lines int) { c.BcastBinomial(root, addr, lines) },
	"scatterAG": func(c *Comm, root, addr, lines int) {
		c.BcastScatterAllgather(root, addr, lines)
	},
	"scatterAG-1sided": func(c *Comm, root, addr, lines int) {
		c.BcastScatterAllgatherOneSided(root, addr, lines)
	},
	"naive": func(c *Comm, root, addr, lines int) { c.BcastNaive(root, addr, lines) },
}

func runBcast(t *testing.T, name string, fn bcastFn, n, root, lines int) *rma.Chip {
	t.Helper()
	chip := rma.NewChipN(scc.DefaultConfig(), n)
	payload := pattern(lines*scc.CacheLine, byte(lines+n))
	chip.Private(root).Write(0, payload)
	chip.Run(func(core *rma.Core) {
		fn(NewComm(rcce.NewPort(core)), root, 0, lines)
	})
	for i := 0; i < n; i++ {
		got := make([]byte, len(payload))
		chip.Private(i).Read(got, 0, len(got))
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s: core %d corrupted (n=%d root=%d lines=%d)", name, i, n, root, lines)
		}
	}
	return chip
}

func TestBcastAlgorithmsDeliver(t *testing.T) {
	for name, fn := range algorithms {
		t.Run(name, func(t *testing.T) {
			for _, tc := range []struct{ n, root, lines int }{
				{2, 0, 1},
				{48, 0, 1},
				{48, 0, 96},
				{48, 13, 97},
				{48, 0, 600}, // multi-chunk sends
				{7, 3, 251},
				{48, 47, 48}, // exactly one line per slice
				{48, 0, 30},  // fewer lines than cores: empty slices
				{1, 0, 5},    // single core no-op
			} {
				runBcast(t, name, fn, tc.n, tc.root, tc.lines)
			}
		})
	}
}

func TestBcastProperty(t *testing.T) {
	for name, fn := range algorithms {
		fn := fn
		t.Run(name, func(t *testing.T) {
			f := func(nRaw, rootRaw uint8, linesRaw uint16) bool {
				n := int(nRaw%24) + 1
				root := int(rootRaw) % n
				lines := int(linesRaw%300) + 1
				chip := rma.NewChipN(scc.DefaultConfig(), n)
				payload := pattern(lines*scc.CacheLine, byte(lines))
				chip.Private(root).Write(0, payload)
				chip.Run(func(core *rma.Core) {
					fn(NewComm(rcce.NewPort(core)), root, 0, lines)
				})
				for i := 0; i < n; i++ {
					got := make([]byte, len(payload))
					chip.Private(i).Read(got, 0, len(got))
					if !bytes.Equal(got, payload) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastBackToBack(t *testing.T) {
	// Consecutive broadcasts, alternating roots, through the same Comm.
	chip := rma.NewChipN(scc.DefaultConfig(), 16)
	p1 := pattern(100*scc.CacheLine, 1)
	p2 := pattern(40*scc.CacheLine, 2)
	chip.Private(0).Write(0, p1)
	chip.Private(9).Write(8192, p2)
	chip.Run(func(core *rma.Core) {
		c := NewComm(rcce.NewPort(core))
		c.BcastBinomial(0, 0, 100)
		c.BcastScatterAllgather(9, 8192, 40)
	})
	for i := 0; i < 16; i++ {
		g1 := make([]byte, len(p1))
		g2 := make([]byte, len(p2))
		chip.Private(i).Read(g1, 0, len(g1))
		chip.Private(i).Read(g2, 8192, len(g2))
		if !bytes.Equal(g1, p1) || !bytes.Equal(g2, p2) {
			t.Fatalf("core %d corrupted in back-to-back broadcasts", i)
		}
	}
}

// TestBinomialBeatsNaiveLatency: the whole point of a tree.
func TestBinomialBeatsNaiveLatency(t *testing.T) {
	lat := func(fn bcastFn) sim.Time {
		chip := rma.NewChipN(scc.DefaultConfig(), 48)
		chip.Private(0).Write(0, pattern(16*scc.CacheLine, 3))
		var last sim.Time
		chip.Run(func(core *rma.Core) {
			fn(NewComm(rcce.NewPort(core)), 0, 0, 16)
			if core.Now() > last {
				last = core.Now()
			}
		})
		return last
	}
	bin, naive := lat(algorithms["binomial"]), lat(algorithms["naive"])
	if bin >= naive {
		t.Fatalf("binomial %v not faster than naive %v", bin, naive)
	}
}

// TestScatterAGBeatsBinomialLargeMessages reproduces the RCCE_comm
// size-based algorithm choice (§6.2): scatter-allgather wins for large
// messages, binomial for small.
func TestScatterAGBeatsBinomialLargeMessages(t *testing.T) {
	lat := func(fn bcastFn, lines int) sim.Time {
		chip := rma.NewChipN(scc.DefaultConfig(), 48)
		chip.Private(0).Write(0, pattern(lines*scc.CacheLine, 3))
		var last sim.Time
		chip.Run(func(core *rma.Core) {
			fn(NewComm(rcce.NewPort(core)), 0, 0, lines)
			if core.Now() > last {
				last = core.Now()
			}
		})
		return last
	}
	const large = 4096
	bin, sag := lat(algorithms["binomial"], large), lat(algorithms["scatterAG"], large)
	if sag >= bin {
		t.Fatalf("scatter-allgather %v not faster than binomial %v at %d lines", sag, bin, large)
	}
	const small = 4
	binS, sagS := lat(algorithms["binomial"], small), lat(algorithms["scatterAG"], small)
	if binS >= sagS {
		t.Fatalf("binomial %v not faster than scatter-allgather %v at %d lines", binS, sagS, small)
	}
}

// TestOneSidedSAGFaster: the §5.4 one-sided adaptation must beat the
// two-sided scatter-allgather for large messages (overlapped exchanges).
func TestOneSidedSAGFaster(t *testing.T) {
	lat := func(fn bcastFn) sim.Time {
		chip := rma.NewChipN(scc.DefaultConfig(), 48)
		chip.Private(0).Write(0, pattern(4096*scc.CacheLine, 3))
		var last sim.Time
		chip.Run(func(core *rma.Core) {
			fn(NewComm(rcce.NewPort(core)), 0, 0, 4096)
			if core.Now() > last {
				last = core.Now()
			}
		})
		return last
	}
	two, one := lat(algorithms["scatterAG"]), lat(algorithms["scatterAG-1sided"])
	if one >= two {
		t.Fatalf("one-sided s-ag %v not faster than two-sided %v", one, two)
	}
}

// TestBinomialOffChipTraffic: an interior binomial node re-reads the
// message from memory (modulo L1 hits) for every child it forwards to —
// the §5 data-movement cost OC-Bcast avoids.
func TestBinomialOffChipTraffic(t *testing.T) {
	const lines = 64
	chip := runBcast(t, "binomial", algorithms["binomial"], 8, 0, lines)
	// vrank 1..7; core 1 (vrank 1) receives once and forwards 0 times?
	// vrank 1 has mask=1 -> receives, sends to nothing below mask.
	// vrank 4 receives at mask 4 and forwards to vranks 5, 6 -> 2 sends.
	c4 := chip.Counter[4]
	if c4.MemWriteLines != lines {
		t.Fatalf("core 4 wrote %d lines off-chip, want %d", c4.MemWriteLines, lines)
	}
	// Sends re-read the payload: first send misses (already cached from
	// the receive's write-allocate), so reads hit L1 — the Formula 14
	// assumption — and MemReadLines stays 0 while CacheHitLines counts
	// 2 sends' worth.
	if c4.CacheHitLines != 2*lines {
		t.Fatalf("core 4 L1 hits = %d, want %d", c4.CacheHitLines, 2*lines)
	}
	if c4.MemReadLines != 0 {
		t.Fatalf("core 4 off-chip reads = %d, want 0 (L1-resident resend)", c4.MemReadLines)
	}
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, f func(c *Comm)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		chip := rma.NewChipN(scc.DefaultConfig(), 2)
		chip.Run(func(core *rma.Core) {
			if core.ID() == 0 {
				f(NewComm(rcce.NewPort(core)))
			}
		})
	}
	mustPanic("bad root", func(c *Comm) { c.BcastBinomial(5, 0, 1) })
	mustPanic("zero lines", func(c *Comm) { c.BcastBinomial(0, 0, 0) })
	mustPanic("misaligned", func(c *Comm) { c.BcastScatterAllgather(0, 33, 1) })
}
