package harness

import (
	"fmt"

	"repro/internal/algsel"
	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/model"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// fig-crossover validates the algorithm registry's model-driven
// auto-selection against ground truth: for every (mesh, operation,
// message size) cell it simulates each modeled algorithm at its tuned
// (K, chunk), asks the plan what "auto" would pick, and reports the
// regret — how much slower auto's pick is than the per-cell best. The
// acceptance target is ≤ 5% regret everywhere: near a crossover the
// contenders are close by definition, so the model only has to rank
// correctly where the gap is wide.

// MeasureAlg runs `reps` barrier-separated repetitions of one registered
// algorithm (at one tunable choice) on n cores and returns per-repetition
// latencies in microseconds, §6.1-style: each repetition works on a fresh
// payload region, and latency runs from the first core's call to the
// last core's return.
func MeasureAlg(cfg scc.Config, a *algsel.Algorithm, ch algsel.Choice, n, lines, reps int) []float64 {
	if reps <= 0 {
		reps = 3
	}
	chip := rma.AcquireChipN(cfg, n)
	defer rma.ReleaseChip(chip)

	// A repetition region holds the op's full working set: n blocks for
	// the rooted/allgather layouts plus one block of slack.
	msgBytes := lines * scc.CacheLine
	regionBytes := (n + 1) * msgBytes
	for c := 0; c < n; c++ {
		payload := make([]byte, reps*regionBytes)
		for i := range payload {
			payload[i] = byte(i*7 + c*13 + 5)
		}
		chip.Private(c).Write(0, payload)
	}
	scratchBase := reps * regionBytes

	starts := make([][]sim.Time, reps)
	returns := make([][]sim.Time, reps)
	for it := range returns {
		starts[it] = make([]sim.Time, n)
		returns[it] = make([]sim.Time, n)
	}

	base := occore.DefaultConfig()
	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		e := algsel.NewEnv(c, port, base, nil, nil)
		for it := 0; it < reps; it++ {
			port.Barrier()
			starts[it][c.ID()] = c.Now()
			a.Run(e, ch, algsel.Args{
				Root:    0,
				Addr:    it * regionBytes,
				Scratch: scratchBase,
				Lines:   lines,
				Reduce:  collective.SumInt64,
			})
			returns[it][c.ID()] = c.Now()
		}
	})

	out := make([]float64, reps)
	for it := 0; it < reps; it++ {
		first, last := starts[it][0], returns[it][0]
		for id := 1; id < n; id++ {
			if starts[it][id] < first {
				first = starts[it][id]
			}
			if returns[it][id] > last {
				last = returns[it][id]
			}
		}
		out[it] = (last - first).Microseconds()
	}
	return out
}

// AlgLatency is one algorithm's showing in a crossover cell.
type AlgLatency struct {
	Choice  algsel.Choice
	SimUs   float64
	ModelUs float64
}

// CrossoverPoint is one cell of the crossover sweep.
type CrossoverPoint struct {
	Topo  scc.Topology
	Op    algsel.Op
	Lines int
	// Algs holds every modeled algorithm's simulated latency at its
	// tuned choice, in registry (name) order.
	Algs []AlgLatency
	// Auto is the plan's pick; AutoUs its simulated latency; BestUs the
	// cell's minimum; RegretPct = 100·(AutoUs/BestUs − 1).
	Auto      algsel.Choice
	AutoUs    float64
	Best      algsel.Choice
	BestUs    float64
	RegretPct float64
}

// CrossoverOps are the operations the sweep covers: the ones with at
// least two modeled algorithms, so auto-selection has a real decision.
func CrossoverOps() []algsel.Op {
	return []algsel.Op{algsel.OpBcast, algsel.OpAllReduce, algsel.OpAllGather}
}

// CrossoverMeshes and CrossoverSizes bound the sweep by effort: the
// quick tier keeps CI smoke cheap, the full tier is the 48–384-core
// sweep recorded in BENCH_simperf.json.
func CrossoverMeshes(effort int) []scc.Topology {
	meshes := ScaleMeshes()
	if effort <= 1 {
		return meshes[:2]
	}
	return meshes
}

// CrossoverSizes lists the swept message sizes in cache lines.
func CrossoverSizes(effort int) []int {
	if effort <= 1 {
		return []int{1, 16, 96}
	}
	return []int{1, 4, 16, 64, 256}
}

// CrossoverSweep simulates every (mesh, op, size) cell; cells are
// sharded across ParallelMap workers and, like every harness sweep, the
// simulated values are independent of the sharding.
func CrossoverSweep(cfg scc.Config, effort int) []CrossoverPoint {
	type cell struct {
		topo  scc.Topology
		op    algsel.Op
		lines int
	}
	var cells []cell
	for _, topo := range CrossoverMeshes(effort) {
		for _, op := range CrossoverOps() {
			for _, lines := range CrossoverSizes(effort) {
				cells = append(cells, cell{topo, op, lines})
			}
		}
	}
	base := occore.DefaultConfig()
	mdl := model.New(cfg.Params)
	reps := 1
	if effort > 1 {
		reps = 2
	}
	return ParallelMap(len(cells), func(i int) CrossoverPoint {
		c := cells[i]
		cfg2 := cfg
		cfg2.Topo = c.topo
		p := c.topo.NumCores()
		plan := algsel.TuneCached(cfg.Params, c.topo, p, base)
		pt := CrossoverPoint{Topo: c.topo, Op: c.op, Lines: c.lines}
		auto, ok := plan.Choose(c.op, c.lines)
		if !ok {
			// CrossoverOps only lists operations with modeled algorithms,
			// so a missing decision table is a wiring bug, not data.
			panic(fmt.Sprintf("harness: no decision table for swept op %s", c.op))
		}
		pt.Auto = auto
		for _, a := range algsel.For(c.op) {
			ch, ok := algsel.BestChoiceFor(mdl, c.topo, p, base, a, c.lines)
			if !ok {
				continue
			}
			al := AlgLatency{
				Choice:  ch,
				SimUs:   mean(MeasureAlg(cfg2, a, ch, p, c.lines, reps)),
				ModelUs: a.Model(mdl, c.topo, p, c.lines, ch).Microseconds(),
			}
			pt.Algs = append(pt.Algs, al)
			if pt.BestUs == 0 || al.SimUs < pt.BestUs {
				pt.Best, pt.BestUs = al.Choice, al.SimUs
			}
			if al.Choice == pt.Auto {
				pt.AutoUs = al.SimUs
			}
		}
		if pt.AutoUs == 0 {
			// The plan's band stores the winner at band granularity, so
			// its (K, chunk) can differ from the per-algorithm best at
			// this exact size. Simulate the auto pick itself — regret
			// must price what auto would actually run, never default to
			// a silently passing zero.
			a, found := algsel.Lookup(c.op, pt.Auto.Alg)
			if !found {
				panic(fmt.Sprintf("harness: plan picked unregistered algorithm %q for %s", pt.Auto.Alg, c.op))
			}
			pt.AutoUs = mean(MeasureAlg(cfg2, a, pt.Auto, p, c.lines, reps))
		}
		pt.RegretPct = 100 * (pt.AutoUs/pt.BestUs - 1)
		return pt
	})
}

// FigCrossover renders the crossover sweep: per cell, every algorithm's
// simulated latency, the auto pick and its regret vs the per-cell best.
func FigCrossover(cfg scc.Config, effort int) *Table {
	if effort < 1 {
		effort = 1
	}
	return CrossoverTable(CrossoverSweep(cfg, effort))
}

// CrossoverTable renders already-computed crossover points (shared by
// the fig-crossover experiment and the ocbench tune subcommand).
func CrossoverTable(pts []CrossoverPoint) *Table {
	tbl := &Table{
		Title:   "fig-crossover — auto-selection vs best algorithm per (mesh, op, size)",
		Columns: []string{"mesh", "cores", "op", "CL", "auto pick", "auto µs", "best", "best µs", "regret%"},
		Notes: []string{
			"Every modeled algorithm simulated at its tuned (K, chunk); 'auto' is the",
			"decision-table pick (Options.Algorithm: \"auto\"), 'best' the cell's fastest.",
			"Acceptance: regret <= 5% everywhere (ocbench tune enforces it).",
		},
	}
	for _, p := range pts {
		tbl.AddRow(
			fmt.Sprintf("%dx%d", p.Topo.W, p.Topo.H), fmt.Sprint(p.Topo.NumCores()),
			string(p.Op), fmt.Sprint(p.Lines),
			p.Auto.String(), fmt.Sprintf("%.2f", p.AutoUs),
			p.Best.String(), fmt.Sprintf("%.2f", p.BestUs),
			fmt.Sprintf("%+.2f", p.RegretPct),
		)
	}
	return tbl
}
