package harness

import (
	"math"
	"strings"
	"testing"

	"repro/internal/algsel"
	occore "repro/internal/core"
	"repro/internal/model"
	"repro/internal/scc"
)

// Cross-validation of the registry algorithms' closed-form latencies
// (internal/model algorithms.go) against the simulator, in the style of
// crossval_test.go: the tuner only needs the models to rank correctly,
// but each curve must also track its simulation within a stated bound
// or the crossover placement drifts.

// algPoint identifies one cross-validation cell.
type algPoint struct {
	op     algsel.Op
	name   string
	lines  int
	tolPct float64
}

func TestAlgorithmModelsTrackSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep skipped with -short")
	}
	cfg := scc.DefaultConfig()
	topo := cfg.Topology()
	p := scc.NumCores
	mdl := model.New(cfg.Params)
	base := occore.DefaultConfig()

	// Tolerances per family: the two-sided formulas are tight (the
	// simulator charges their analytic costs almost directly), the
	// pipelined one-sided ones carry fill/drain approximations.
	pts := []algPoint{
		{algsel.OpAllReduce, "twosided", 32, 10},
		{algsel.OpAllReduce, "twosided", 256, 10},
		{algsel.OpAllReduce, "hybrid", 32, 10},
		{algsel.OpAllReduce, "hybrid", 256, 12},
		{algsel.OpAllReduce, "rabenseifner", 32, 15},
		{algsel.OpAllReduce, "rabenseifner", 256, 15},
		{algsel.OpAllReduce, "oc", 32, 15},
		{algsel.OpAllReduce, "oc", 256, 15},
		{algsel.OpAllGather, "ring", 16, 20},
		{algsel.OpAllGather, "ring", 64, 20},
		{algsel.OpAllGather, "oc", 16, 20},
		{algsel.OpAllGather, "twosided", 16, 15},
		{algsel.OpBcast, "oc", 1, 20},
		{algsel.OpBcast, "oc", 96, 15},
		{algsel.OpBcast, "binomial", 96, 15},
	}
	for _, pt := range pts {
		alg, ok := algsel.Lookup(pt.op, pt.name)
		if !ok || alg.Model == nil {
			t.Fatalf("%s/%s not registered with a model", pt.op, pt.name)
		}
		ch, ok := algsel.BestChoiceFor(mdl, topo, p, base, alg, pt.lines)
		if !ok {
			t.Fatalf("%s/%s: no tuned choice", pt.op, pt.name)
		}
		sim := mean(MeasureAlg(cfg, alg, ch, p, pt.lines, 1))
		mod := alg.Model(mdl, topo, p, pt.lines, ch).Microseconds()
		errPct := 100 * (mod - sim) / sim
		if math.Abs(errPct) > pt.tolPct {
			t.Errorf("%s/%s %s at %d CL: sim %.2f µs, model %.2f µs (%+.1f%%, tol %.0f%%)",
				pt.op, pt.name, ch, pt.lines, sim, mod, errPct, pt.tolPct)
		}
	}
}

// TestMeasureAlgMatchesVariantRunner pins the registry-driven runner to
// the dedicated allreduce runner: same chip staging, same methodology,
// same simulated latencies for the variants both can express.
func TestMeasureAlgMatchesVariantRunner(t *testing.T) {
	cfg := scc.DefaultConfig()
	const lines, reps = 32, 2
	oc, _ := algsel.Lookup(algsel.OpAllReduce, "oc")
	got := MeasureAlg(cfg, oc, algsel.Choice{Alg: "oc", K: 7, ChunkLines: 96}, scc.NumCores, lines, reps)
	want := MeasureAllReduce(cfg, VariantOC, 7, scc.NumCores, lines, reps)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rep %d: MeasureAlg %v µs != MeasureAllReduce %v µs", i, got[i], want[i])
		}
	}
}

// TestCrossoverTableRendering covers the fig-crossover table renderer
// with synthetic points (the sweep itself is exercised by `ocbench
// tune`, which CI runs live and gates at 5% regret).
func TestCrossoverTableRendering(t *testing.T) {
	pts := []CrossoverPoint{
		{
			Topo: scc.SCC(), Op: algsel.OpAllReduce, Lines: 16,
			Auto: algsel.Choice{Alg: "rabenseifner"}, AutoUs: 122.4,
			Best: algsel.Choice{Alg: "rabenseifner"}, BestUs: 122.4, RegretPct: 0,
		},
		{
			Topo: scc.Mesh(16, 12), Op: algsel.OpBcast, Lines: 1,
			Auto: algsel.Choice{Alg: "oc", K: 7, ChunkLines: 48}, AutoUs: 11.85,
			Best: algsel.Choice{Alg: "binomial"}, BestUs: 11.59, RegretPct: 2.29,
		},
	}
	s := CrossoverTable(pts).String()
	for _, want := range []string{"fig-crossover", "rabenseifner", "oc(k=7,chunk=48)", "binomial", "+2.29", "384"} {
		if !strings.Contains(s, want) {
			t.Errorf("crossover table missing %q:\n%s", want, s)
		}
	}
	if len(CrossoverOps()) != 3 || len(CrossoverSizes(2)) != 5 || len(CrossoverMeshes(2)) != 4 {
		t.Error("sweep dimensions changed; update BENCH_simperf.json and this test")
	}
	if len(CrossoverMeshes(1)) != 2 || len(CrossoverSizes(1)) != 3 {
		t.Error("quick-tier sweep dimensions changed")
	}
}
