package rma

import (
	"encoding/binary"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/scc"
	"repro/internal/sim"
)

// This file is the state-machine face of the RMA primitives. Every op
// splits into a *pre* step (all side effects up to the completion-time
// clock advance: span open, port reservations, mesh booking, source
// reads, pre-yield counters) and a *post* step (deferred destination
// writes, remaining counters, span close), with the completion time
// carried between them in the core's embedded opFrame. The blocking
// entry points in ops.go/flags.go run pre → AdvanceTo → post on the
// body goroutine; the Call* entry points push the same frame onto the
// proc's machine stack so inline protocol frames (rcce, core) execute
// the identical op without parking a goroutine. One source of truth,
// two drivers — the equivalence suite pins them byte-identical.

// opFrame opcodes: which post step (deferred writes + counters) runs
// after the completion-time yield. opWait is the multi-state flag wait.
const (
	opPutMPB uint8 = iota
	opPutMem
	opGetMPB
	opGetMem
	opSetFlag
	opWait
)

// Wait-op program counter values (opFrame.pc when op == opWait).
const (
	wpCheck uint8 = iota // evaluate satisfiedAt; arm + block if not
	wpWake               // woken by a Signal: disarm, re-check
	wpPoll               // charge the final successful poll read
	wpDone               // read the value, count, close the span
)

// opFrame is a core's reusable RMA-op state machine: exactly one RMA
// op is in flight per core at a time (ops never nest), so the single
// embedded instance in Core carries any op's pre→post state with zero
// allocation.
type opFrame struct {
	c  *Core
	op uint8
	pc uint8

	// completion is the op's final clock position; delay is the extra
	// completion beyond the analytic time (shifts write visibility).
	completion sim.Time
	delay      sim.Duration

	// Deferred-write parameters for the post step. dst is nil when the
	// op writes nothing after the yield (GetMPBToMem).
	dst    *mem.MPB
	line   int
	m      int
	buf    []byte
	eff0   sim.Time
	stride sim.Duration

	// Flag-wait state (op == opWait).
	eq       bool
	val      uint64
	embedded bool
	result   uint64

	span *obs.Recorder
}

// Step drives one resume-point-to-resume-point section of the op: the
// completion-time advance, then the post step (flag waits carry their
// own multi-state loop in stepWait).
func (f *opFrame) Step(p *sim.Proc) sim.StepStatus {
	if f.op == opWait {
		return f.stepWait(p)
	}
	if f.pc == 0 {
		f.pc = 1
		p.MachineAdvanceTo(f.completion)
		return sim.StepYield
	}
	f.c.opPost(f)
	return sim.StepDone
}

// stepWait mirrors waitOp's check/arm/wake loop plus finishFlagWait's
// epilogue, state by state.
func (f *opFrame) stepWait(p *sim.Proc) sim.StepStatus {
	c := f.c
	own := c.chip.MPB(c.id)
	switch f.pc {
	case wpWake:
		own.DisarmWait(f.embedded)
		fallthrough
	case wpCheck:
		if te, ok := own.WaitSatisfiedAt(f.line, p.Now(), f.eq, f.val); ok {
			f.pc = wpPoll
			p.MachineAdvanceTo(te)
			return sim.StepYield
		}
		f.embedded = own.ArmWait(p, f.line, f.eq, f.val)
		f.pc = wpWake
		return sim.StepBlock
	case wpPoll:
		f.pc = wpDone
		p.MachineAdvance(c.CMpbR(1))
		return sim.StepYield
	default: // wpDone
		f.result = own.PeekU64(f.line, p.Now())
		ctr := c.counters()
		ctr.MPBReadLines++
		ctr.FlagWaits++
		c.endSpan(f.span)
		f.span = nil
		return sim.StepDone
	}
}

// opPost applies the op's deferred writes and remaining counters and
// closes its span — everything the blocking form does after its
// AdvanceTo(completion).
func (c *Core) opPost(f *opFrame) {
	ctr := c.counters()
	switch f.op {
	case opPutMPB:
		f.dst.WriteLines(f.line, f.buf, f.m, f.eff0, f.stride)
		ctr.MPBReadLines += int64(f.m)
		ctr.MPBWriteLines += int64(f.m)
		ctr.PutOps++
	case opPutMem:
		off := 0
		for _, r := range c.runs {
			f.dst.WriteLines(r.line0, f.buf[off:], r.n, r.eff0+f.delay, r.stride)
			off += r.n * scc.CacheLine
		}
		ctr.MPBWriteLines += int64(f.m)
		ctr.PutOps++
	case opGetMPB:
		f.dst.WriteLines(f.line, f.buf, f.m, f.eff0, f.stride)
		ctr.MPBReadLines += int64(f.m)
		ctr.MPBWriteLines += int64(f.m)
		ctr.GetOps++
	case opGetMem:
		ctr.MPBReadLines += int64(f.m)
		ctr.MemWriteLines += int64(f.m)
		ctr.GetOps++
	case opSetFlag:
		f.dst.WriteLine(f.line, c.flagBuf[:], f.eff0)
		ctr.MPBWriteLines++
		ctr.FlagSets++
	}
	c.endSpan(f.span)
	f.span = nil
	f.dst = nil
	f.buf = nil
}

// Inline reports whether the engine driving this core latched inline
// state-machine execution for the current run. Protocol layers branch
// on it between Exec'ing a frame and the blocking body.
func (c *Core) Inline() bool { return c.proc.InlineActive() }

// Exec runs f as an inline machine section of this core's body — see
// sim.Proc.Exec.
func (c *Core) Exec(f sim.Frame) { c.proc.Exec(f) }

// The Call* entry points below are for use inside a sim.Frame.Step of
// this core's own machine: each runs the op's pre step at the current
// clock, pushes the core's opFrame as a child, and returns StepCall
// for the caller to propagate.

// CallPutMPBToMPB is PutMPBToMPB as a child frame.
func (c *Core) CallPutMPBToMPB(dst, dstLine, srcLine, m int) sim.StepStatus {
	c.putMPBPre(&c.opf, dst, dstLine, srcLine, m)
	c.proc.Call(&c.opf)
	return sim.StepCall
}

// CallPutMemToMPB is PutMemToMPB as a child frame.
func (c *Core) CallPutMemToMPB(dst, dstLine, srcAddr, m int) sim.StepStatus {
	c.putMemPre(&c.opf, dst, dstLine, srcAddr, m)
	c.proc.Call(&c.opf)
	return sim.StepCall
}

// CallGetMPBToMPB is GetMPBToMPB as a child frame.
func (c *Core) CallGetMPBToMPB(src, srcLine, dstLine, m int) sim.StepStatus {
	c.getMPBPre(&c.opf, src, srcLine, dstLine, m)
	c.proc.Call(&c.opf)
	return sim.StepCall
}

// CallGetMPBToMem is GetMPBToMem as a child frame.
func (c *Core) CallGetMPBToMem(src, srcLine, dstAddr, m int) sim.StepStatus {
	c.getMemPre(&c.opf, src, srcLine, dstAddr, m)
	c.proc.Call(&c.opf)
	return sim.StepCall
}

// CallSetFlag is SetFlag as a child frame.
func (c *Core) CallSetFlag(dst, line int, value uint64) sim.StepStatus {
	c.setFlagPre(&c.opf, dst, line, value)
	c.proc.Call(&c.opf)
	return sim.StepCall
}

// CallWaitFlagGE is WaitFlagGE as a child frame (the flag value lands
// in the frame's result field; framed protocols don't consume it).
func (c *Core) CallWaitFlagGE(line int, seq uint64) sim.StepStatus {
	return c.callWait(line, false, seq)
}

// CallWaitFlagEQ is WaitFlagEQ as a child frame.
func (c *Core) CallWaitFlagEQ(line int, seq uint64) sim.StepStatus {
	return c.callWait(line, true, seq)
}

func (c *Core) callWait(line int, eq bool, val uint64) sim.StepStatus {
	f := &c.opf
	f.c, f.op, f.pc = c, opWait, wpCheck
	f.line, f.eq, f.val = line, eq, val
	// The span opens before the wait so blocked time lands in its
	// bucket, exactly like WaitFlagGE/EQ.
	f.span = c.beginSpan("flag.wait", obs.BucketWait,
		obs.Arg{Key: "line", Val: int64(line)}, obs.Arg{})
	c.proc.Call(f)
	return sim.StepCall
}

// setFlagPre is SetFlag up to the completion advance.
func (c *Core) setFlagPre(f *opFrame, dst, line int, value uint64) {
	f.c, f.op, f.pc = c, opSetFlag, 0
	f.span = c.beginSpan("flag.set", obs.BucketFlag,
		obs.Arg{Key: "dst", Val: int64(dst)}, obs.Arg{Key: "line", Val: int64(line)})
	p := c.chip.Cfg.Params
	d := c.distMPB(dst)
	t0 := c.Now()

	dstPort := c.reservePort(dst, t0, 1, true)
	mesh := c.meshTraverse(t0, c.coord(), c.coordOf(dst), 1)

	eff := t0 + p.OMpbPut + c.LMpbW(d)
	analytic := t0 + p.OMpbPut + c.CMpbW(d)
	f.completion, f.delay = c.opCompletion(analytic, dstPort, sim.Duration(d)*p.Lhop, mesh)

	c.flagBuf = [scc.CacheLine]byte{}
	binary.LittleEndian.PutUint64(c.flagBuf[:8], value)
	f.dst, f.line, f.eff0 = c.chip.MPB(dst), line, eff+f.delay
}
