package rma

import (
	"sync"

	"repro/internal/scc"
	"repro/internal/sim"
)

// Chip pool. Building a chip is the single largest allocation source of
// a short simulation (~40% of a broadcast's heap traffic: MPB backing
// stores, port servers, private-memory maps, counter slices), so harness
// loops that run thousands of simulations acquire chips here instead of
// constructing fresh ones. A released chip is Reset — which the
// equivalence tests pin as observationally identical to a fresh chip —
// and parked under a key derived from its exact configuration; Acquire
// returns a parked chip only on a full key match.
//
// The pool is safe for concurrent use (ParallelMap shards acquire from
// it simultaneously) and bounded per key, so sweeps over many topologies
// cannot hold more than a few warm chips per shape.

// chipKey identifies a poolable chip configuration exactly. Topology is
// reduced to its fingerprint string because it is not comparable; every
// other Config field is a value type.
type chipKey struct {
	topo    string
	n       int
	params  scc.Params
	cont    scc.ContentionParams
	noc     scc.NoCMode
	linkSvc sim.Duration
	cache   bool
}

func poolKeyOf(cfg scc.Config, n int) chipKey {
	return chipKey{
		topo:    cfg.Topology().Fingerprint(),
		n:       n,
		params:  cfg.Params,
		cont:    cfg.Contention,
		noc:     cfg.NoC,
		linkSvc: cfg.LinkSvc,
		cache:   cfg.CacheEnabled,
	}
}

// poolPerKey bounds how many idle chips one configuration may park: a
// few shards' worth, beyond which ReleaseChip simply drops the chip for
// the garbage collector.
const poolPerKey = 8

var chipPool = struct {
	mu    sync.Mutex
	chips map[chipKey][]*Chip
}{chips: make(map[chipKey][]*Chip)}

// AcquireChipN returns a ready-to-Run chip for cfg's first n cores: a
// pooled one when available, else a freshly built one. Pair with
// ReleaseChip when the simulation is done.
func AcquireChipN(cfg scc.Config, n int) *Chip {
	key := poolKeyOf(cfg, n)
	chipPool.mu.Lock()
	if s := chipPool.chips[key]; len(s) > 0 {
		c := s[len(s)-1]
		s[len(s)-1] = nil
		chipPool.chips[key] = s[:len(s)-1]
		chipPool.mu.Unlock()
		return c
	}
	chipPool.mu.Unlock()
	c := NewChipN(cfg, n)
	// Pooled chips keep their process goroutines parked between runs
	// (the pool bounds how many engines exist, so the parked-goroutine
	// pin is bounded too); ReleaseChip shuts them down before dropping
	// a chip.
	c.Engine.SetPersistent(true)
	return c
}

// AcquireChip is AcquireChipN for every core of cfg's topology.
func AcquireChip(cfg scc.Config) *Chip {
	return AcquireChipN(cfg, cfg.Topology().NumCores())
}

// ReleaseChip resets c and parks it for reuse. A chip that cannot be
// reset (mid-run or panicked) or that exceeds the per-key bound is
// dropped instead — never parked dirty.
func ReleaseChip(c *Chip) {
	if c == nil {
		return
	}
	if !c.Reset() {
		// Mid-run or panicked: parked goroutines (if any) are stuck at
		// arbitrary yield points; abandon the chip as a whole.
		return
	}
	key := poolKeyOf(c.Cfg, c.NCores)
	chipPool.mu.Lock()
	if s := chipPool.chips[key]; len(s) < poolPerKey {
		chipPool.chips[key] = append(s, c)
		chipPool.mu.Unlock()
		return
	}
	chipPool.mu.Unlock()
	// Over the bound: release the engine's parked goroutines so the
	// dropped chip is collectable.
	c.Engine.Shutdown()
}
