package core

import (
	"fmt"

	"repro/internal/rma"
	"repro/internal/scc"
)

// Config parameterizes OC-Bcast.
type Config struct {
	// K is the fan-out of the message-propagation tree. The paper uses
	// k = 7 as the latency/throughput sweet spot and shows k up to 24
	// is contention-safe on the SCC.
	K int
	// BufLines is Moc, the chunk size in cache lines. The paper fixes
	// it to 96 so that two buffers plus k+1 flags fit in the 256-line
	// MPB for any k ≤ 47.
	BufLines int
	// DoubleBuffer enables the two-buffer pipeline of §4.2. Disabling
	// it (single buffer, still chunked and pipelined down the tree) is
	// the paper-motivated ablation.
	DoubleBuffer bool
	// SequentialNotify replaces the binary notification tree with the
	// naive scheme §4.1 argues against: the parent sets all k children's
	// notify flags itself. Ablation only.
	SequentialNotify bool
	// LeafDirect enables the §5.4 optimization the paper describes but
	// leaves out for simplicity: a leaf copies each chunk from its
	// parent's MPB straight to private off-chip memory, skipping its
	// own MPB entirely (it has no children to serve).
	LeafDirect bool
	// Channels is the number of independent MPB lanes the one-sided
	// collective family (internal/occoll) lays out, bounding how many
	// non-blocking collectives can be in flight per core at once. 0 or 1
	// means a single lane — the classic layout. OC-Bcast itself ignores
	// the field; occoll.Validate checks that all lanes fit in the MPB.
	Channels int
}

// DefaultConfig is the configuration of the paper's experiments.
func DefaultConfig() Config {
	return Config{K: 7, BufLines: 96, DoubleBuffer: true}
}

// Validate checks that the MPB layout fits: numBuffers·Moc data lines plus
// 1 notify flag plus k done flags within the 256-line MPB.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("occast: k=%d must be >= 1", c.K)
	}
	if c.BufLines < 1 {
		return fmt.Errorf("occast: BufLines=%d must be >= 1", c.BufLines)
	}
	nb := 1
	if c.DoubleBuffer {
		nb = 2
	}
	// Three lines at the top of the MPB are reserved for the
	// root-change fence barrier.
	avail := scc.MPBLinesPerCore - 3
	need := nb*c.BufLines + 1 + c.K
	if need > avail {
		return fmt.Errorf("occast: layout needs %d MPB lines (buffers %d×%d + %d flags), only %d available",
			need, nb, c.BufLines, c.K+1, avail)
	}
	return nil
}

// Fence barrier flag lines (fixed, independent of Config so that cores
// with different configs could still fence together).
const (
	fenceChildA  = scc.MPBLinesPerCore - 3
	fenceChildB  = scc.MPBLinesPerCore - 2
	fenceRelease = scc.MPBLinesPerCore - 1
)

// numBuffers reports 2 with double buffering, else 1.
func (c Config) numBuffers() int {
	if c.DoubleBuffer {
		return 2
	}
	return 1
}

// MPB line layout helpers.
func (c Config) bufLine(chunk int) int {
	return (chunk % c.numBuffers()) * c.BufLines
}
func (c Config) notifyLine() int    { return c.numBuffers() * c.BufLines }
func (c Config) doneLine(i int) int { return c.numBuffers()*c.BufLines + 1 + i }

// Broadcaster holds a core's persistent OC-Bcast state. Flag values are
// chunk sequence numbers offset by a base that advances after every
// broadcast, so flags never need resetting and stale values can never
// satisfy a later wait (§5.1's one-line-per-flag atomicity argument).
type Broadcaster struct {
	core     *rma.Core
	cfg      Config
	base     uint64
	lastRoot int
	fenceSeq uint64
	fencer   Fencer // optional shared quiesce (SetFence)

	// frame is the reusable inline state machine for the chunk pipeline
	// (see frames.go), used instead of runRoot/runNonRoot when the
	// engine latched inline execution.
	frame bcastFrame
}

// Fencer is a chip-wide barrier the broadcaster can route its
// root-change quiesce through (rcce.Port implements it). An interface
// rather than a func value so wiring one per core stays allocation-free.
type Fencer interface{ Barrier() }

// NewBroadcaster prepares OC-Bcast state for one core. The buffer/flag
// layout (and the fence lines above) anchor at the paper-standard
// 256-line per-core MPB share; topologies below that cannot host the
// protocol (the public API rejects them, and a smaller MPB fails fast on
// the first out-of-range line access).
func NewBroadcaster(core *rma.Core, cfg Config) *Broadcaster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Broadcaster{core: core, cfg: cfg, lastRoot: -1}
}

// SetFence routes the root-change quiesce through f instead of the
// private fence barrier below. Programs that mix OC-Bcast with the
// two-sided layer need this: the private fence's flag lines (the top
// three MPB lines) double as RCCE's handshake lines, and its private
// sequence numbers alias their values, so when the two layers overlap in
// time a fence wait can be falsely satisfied by a stale handshake tag —
// or a fence write can clobber a handshake a peer is still waiting on.
// Routing every quiesce through one shared primitive (rcce's barrier,
// which runs the same gather-release tree on disjoint lines with a
// single monotonic epoch) removes the aliasing. algsel wires this;
// standalone OC-Bcast programs keep the private fence.
func (b *Broadcaster) SetFence(f Fencer) { b.fencer = f }

// fence is a gather-release binary-tree barrier over three dedicated MPB
// flag lines. OC-Bcast's per-core notify lines have a single writer only
// while the tree shape is fixed; when the root changes between
// broadcasts, a new parent could overwrite a notify flag the old tree has
// not consumed yet. The fence quiesces the chip before adopting the new
// tree. (The paper's experiments always broadcast from core 0, so the
// fence never triggers there.)
func (b *Broadcaster) fence() {
	if b.fencer != nil {
		b.fencer.Barrier()
		return
	}
	b.fenceSeq++
	c := b.core
	me, n := c.ID(), c.N()
	left, right := 2*me+1, 2*me+2
	if left < n {
		c.WaitFlagGE(fenceChildA, b.fenceSeq)
	}
	if right < n {
		c.WaitFlagGE(fenceChildB, b.fenceSeq)
	}
	if me != 0 {
		parent := (me - 1) / 2
		line := fenceChildA
		if me == 2*parent+2 {
			line = fenceChildB
		}
		c.SetFlag(parent, line, b.fenceSeq)
		c.WaitFlagGE(fenceRelease, b.fenceSeq)
	}
	if left < n {
		c.SetFlag(left, fenceRelease, b.fenceSeq)
	}
	if right < n {
		c.SetFlag(right, fenceRelease, b.fenceSeq)
	}
}

// Core returns the underlying RMA core handle.
func (b *Broadcaster) Core() *rma.Core { return b.core }

// Bcast broadcasts `lines` cache lines from the root's private memory at
// byte address addr into every other core's private memory at the same
// address. All cores (root included) must call Bcast with matching
// arguments, MPI style. It implements §4 in full:
//
// root, per chunk: wait for the chunk's buffer to be consumed (done
// flags), put the chunk from private memory into its own MPB, notify the
// first two children of its binary notification tree.
//
// non-root, per chunk: wait notifyFlag; (i) forward the notification
// within the parent's notification tree; (ii) get the chunk from the
// parent's MPB into its own MPB (waiting for its own buffer to be free
// first, if it has children); (iii) set its doneFlag in the parent's MPB;
// (iv) notify the first two of its own children; (v) get the chunk from
// its MPB to private off-chip memory.
func (b *Broadcaster) Bcast(root, addr, lines int) {
	c := b.core
	p := c.N()
	if lines <= 0 {
		panic(fmt.Sprintf("occast: non-positive message size %d", lines))
	}
	if addr%scc.CacheLine != 0 {
		panic(fmt.Sprintf("occast: address %d not cache-line aligned", addr))
	}
	if p == 1 {
		return
	}
	if b.lastRoot != -1 && b.lastRoot != root {
		b.fence()
	}
	b.lastRoot = root
	t := b.buildTree(root)
	if c.Inline() {
		pc := nNotifyWait
		if t.Rank == 0 {
			pc = rDoneWait
		}
		b.frame = bcastFrame{b: b, t: t, addr: addr, lines: lines,
			nchunks: (lines + b.cfg.BufLines - 1) / b.cfg.BufLines,
			nb:      b.cfg.numBuffers(), pc: pc}
		c.Exec(&b.frame)
		return
	}
	if t.Rank == 0 {
		b.runRoot(t, addr, lines)
	} else {
		b.runNonRoot(t, addr, lines)
	}
}

// buildTree constructs this core's tree node, applying the ablation
// rewiring when configured.
func (b *Broadcaster) buildTree(root int) Tree {
	t := TreeFor(b.core.ID(), root, b.core.N(), b.cfg.K)
	if b.cfg.SequentialNotify {
		// Ablation: the parent notifies every child itself; nothing is
		// forwarded sibling-to-sibling.
		t.NotifyFwd = nil
		t.NotifyOwn = t.Children
		if t.Parent >= 0 {
			t.NotifyFrom = t.Parent
		}
	}
	return t
}

// runRoot executes the root's side of the chunk pipeline and advances the
// flag-sequence base.
func (b *Broadcaster) runRoot(t Tree, addr, lines int) {
	c, cfg := b.core, b.cfg
	nchunks := (lines + cfg.BufLines - 1) / cfg.BufLines
	nb := cfg.numBuffers()
	seq := func(ch int) uint64 { return b.base + uint64(ch) + 1 }

	for ch := 0; ch < nchunks; ch++ {
		m := lines - ch*cfg.BufLines
		if m > cfg.BufLines {
			m = cfg.BufLines
		}
		buf := cfg.bufLine(ch)
		// Reuse the buffer only after every child consumed the chunk
		// that previously occupied it.
		if ch >= nb {
			for i := range t.Children {
				c.WaitFlagGE(cfg.doneLine(i), seq(ch-nb))
			}
		}
		c.PutMemToMPB(c.ID(), buf, addr+ch*cfg.BufLines*scc.CacheLine, m)
		for _, child := range t.NotifyOwn {
			c.SetFlag(child, cfg.notifyLine(), seq(ch))
		}
	}

	// The root frees its MPB: poll all k done flags for the final chunk
	// (flags are monotone, so the last chunk's sequence covers all
	// earlier ones). This is the k=47 polling cost noted in §5.2.3.
	for i := range t.Children {
		c.WaitFlagGE(cfg.doneLine(i), seq(nchunks-1))
	}
	b.base += uint64(nchunks)
}

// runNonRoot executes an intermediate node's or leaf's side of the chunk
// pipeline and advances the flag-sequence base.
func (b *Broadcaster) runNonRoot(t Tree, addr, lines int) {
	c, cfg := b.core, b.cfg
	nchunks := (lines + cfg.BufLines - 1) / cfg.BufLines
	nb := cfg.numBuffers()
	seq := func(ch int) uint64 { return b.base + uint64(ch) + 1 }

	for ch := 0; ch < nchunks; ch++ {
		m := lines - ch*cfg.BufLines
		if m > cfg.BufLines {
			m = cfg.BufLines
		}
		chunkAddr := addr + ch*cfg.BufLines*scc.CacheLine
		buf := cfg.bufLine(ch)

		// Wait to learn the chunk is in the parent's MPB.
		c.WaitFlagGE(cfg.notifyLine(), seq(ch))
		// (i) Forward the notification to siblings below me in the
		// parent's binary notification tree.
		for _, sib := range t.NotifyFwd {
			c.SetFlag(sib, cfg.notifyLine(), seq(ch))
		}
		if cfg.LeafDirect && t.IsLeaf() {
			// §5.4 optimization: a leaf serves nobody, so it pulls the
			// chunk straight into private memory and releases the
			// parent's buffer — one MPB pass saved per chunk.
			c.GetMPBToMem(t.Parent, buf, chunkAddr, m)
			c.SetFlag(t.Parent, cfg.doneLine(t.ChildIdx), seq(ch))
			continue
		}
		// Intermediate nodes must not overwrite a buffer their own
		// children are still reading.
		if !t.IsLeaf() && ch >= nb {
			for i := range t.Children {
				c.WaitFlagGE(cfg.doneLine(i), seq(ch-nb))
			}
		}
		// (ii) Pull the chunk parent-MPB -> own MPB.
		c.GetMPBToMPB(t.Parent, buf, buf, m)
		// (iii) Tell the parent this chunk is consumed.
		c.SetFlag(t.Parent, cfg.doneLine(t.ChildIdx), seq(ch))
		// (iv) Wake my own subtree.
		for _, child := range t.NotifyOwn {
			c.SetFlag(child, cfg.notifyLine(), seq(ch))
		}
		// (v) Drain the chunk to private off-chip memory.
		c.GetMPBToMem(c.ID(), buf, chunkAddr, m)
	}
	b.base += uint64(nchunks)
}
