package algsel

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/scc"
	"repro/internal/sim"
)

// The tuner: pure closed-form arithmetic (no simulation) that turns the
// registered algorithms' latency models into a per-topology decision
// table. Tune evaluates every modeled algorithm at every candidate
// (fan-out, chunk) over a geometric grid of message sizes, refines each
// winner change to an exact crossover size by bisection, and returns the
// resulting size bands. The table is deterministic — ties break by
// (name, K, chunk) — so every core of a chip derives the same plan.

// MaxTuneLines is the largest message size (cache lines) the decision
// table resolves; larger calls use the last band, whose winner is the
// bandwidth-optimal regime's.
const MaxTuneLines = 8192

// Band is one row of an operation's decision table: Choice wins from the
// previous band's MaxLines+1 up to MaxLines inclusive.
type Band struct {
	MaxLines    int
	Choice      Choice
	PredictedUs float64 // predicted latency at MaxLines
}

// Plan is the materialized decision table for one (topology, core count,
// parameter set): the registry's auto-selection state. Bands ranks every
// modeled algorithm; OneSidedBands ranks only the one-sided (OC) family
// — what the explicitly one-sided public methods (AllReduceOC, IBcastOC,
// ...) consult under "auto", since they promise MPB-RMA-only semantics.
type Plan struct {
	Topo          scc.Topology
	P             int
	Params        scc.Params
	Base          core.Config
	Bands         map[Op][]Band
	OneSidedBands map[Op][]Band
}

// candidate is one (algorithm, choice) pair the tuner scores.
type candidate struct {
	alg *Algorithm
	ch  Choice
}

// candidatesFor enumerates the valid tunable choices of every modeled
// algorithm of an operation under the base configuration.
func candidatesFor(op Op, base core.Config) []candidate {
	var out []candidate
	for _, a := range For(op) {
		if a.Model == nil {
			continue
		}
		ks := a.Ks
		if len(ks) == 0 {
			ks = []int{0}
		}
		chunks := a.Chunks
		if len(chunks) == 0 {
			chunks = []int{0}
		}
		for _, k := range ks {
			for _, chunk := range chunks {
				ch := Choice{Alg: a.Name, K: k, ChunkLines: chunk}
				if ValidChoice(base, a, ch) {
					out = append(out, candidate{alg: a, ch: ch})
				}
			}
		}
	}
	return out
}

// best scores every candidate at one message size and returns the
// winner. Ties break by (name, K, chunk) so the result is deterministic.
func best(m model.Model, topo scc.Topology, p int, cands []candidate, lines int) (Choice, sim.Duration) {
	var win Choice
	var winLat sim.Duration = -1
	for _, c := range cands {
		lat := c.alg.Model(m, topo, p, lines, c.ch)
		switch {
		case winLat < 0 || lat < winLat:
			win, winLat = c.ch, lat
		case lat == winLat:
			if c.ch.Alg < win.Alg ||
				(c.ch.Alg == win.Alg && (c.ch.K < win.K ||
					(c.ch.K == win.K && c.ch.ChunkLines < win.ChunkLines))) {
				win = c.ch
			}
		}
	}
	return win, winLat
}

// BestChoiceFor returns the tunable choice the model prefers for ONE
// algorithm at the given size — what fig-crossover simulates per
// algorithm — and false when the algorithm has no model or no valid
// choice.
func BestChoiceFor(m model.Model, topo scc.Topology, p int, base core.Config, a *Algorithm, lines int) (Choice, bool) {
	if a.Model == nil {
		return Choice{}, false
	}
	var cands []candidate
	for _, c := range candidatesFor(a.Op, base) {
		if c.alg == a {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return Choice{}, false
	}
	ch, _ := best(m, topo, p, cands, lines)
	return ch, true
}

// tuneGrid is the geometric message-size grid the tuner samples:
// quarter-octave steps from 1 to MaxTuneLines.
func tuneGrid() []int {
	var g []int
	for s := 1; s <= MaxTuneLines; {
		g = append(g, s)
		next := s * 5 / 4
		if next <= s {
			next = s + 1
		}
		s = next
	}
	if g[len(g)-1] != MaxTuneLines {
		g = append(g, MaxTuneLines)
	}
	return g
}

// Tune materializes the decision table for the first p cores of a
// topology under the given timing parameters and base one-sided
// configuration. Operations without at least one modeled algorithm get
// no bands (auto-selection falls back to the compat default for them).
func Tune(params scc.Params, topo scc.Topology, p int, base core.Config) *Plan {
	plan := &Plan{
		Topo: topo, P: p, Params: params, Base: base,
		Bands: map[Op][]Band{}, OneSidedBands: map[Op][]Band{},
	}
	m := model.New(params)
	for _, op := range Ops() {
		all := candidatesFor(op, base)
		if bands := tuneBands(m, topo, p, all); bands != nil {
			plan.Bands[op] = bands
		}
		var os []candidate
		for _, c := range all {
			if c.alg.OneSided {
				os = append(os, c)
			}
		}
		if bands := tuneBands(m, topo, p, os); bands != nil {
			plan.OneSidedBands[op] = bands
		}
	}
	return plan
}

// tuneBands builds one decision table over the size grid for a candidate
// set, refining each winner change to an exact crossover by bisection.
func tuneBands(m model.Model, topo scc.Topology, p int, cands []candidate) []Band {
	if len(cands) == 0 {
		return nil
	}
	grid := tuneGrid()
	var bands []Band
	prevWin, _ := best(m, topo, p, cands, grid[0])
	prevSize := grid[0]
	for _, size := range grid[1:] {
		win, _ := best(m, topo, p, cands, size)
		if win != prevWin {
			// Bisect (prevSize, size] for the first size the new winner
			// takes over; the band boundary is just below it.
			lo, hi := prevSize, size
			for lo+1 < hi {
				mid := (lo + hi) / 2
				w, _ := best(m, topo, p, cands, mid)
				if w == prevWin {
					lo = mid
				} else {
					hi = mid
				}
			}
			_, atLat := best(m, topo, p, cands, lo)
			bands = append(bands, Band{MaxLines: lo, Choice: prevWin, PredictedUs: atLat.Microseconds()})
			prevWin = win
		}
		prevSize = size
	}
	_, lastLat := best(m, topo, p, cands, MaxTuneLines)
	return append(bands, Band{MaxLines: MaxTuneLines, Choice: prevWin, PredictedUs: lastLat.Microseconds()})
}

// planKey identifies one Tune invocation exactly: every input that can
// change the decision table. Topology is reduced to its fingerprint
// string because it is not comparable; Params and core.Config are value
// types.
type planKey struct {
	params scc.Params
	topo   string
	p      int
	base   core.Config
}

var planCache = struct {
	mu sync.Mutex
	m  map[planKey]*Plan
}{m: make(map[planKey]*Plan)}

// TuneCached is Tune behind a process-wide memo: repeated calls with
// the same (params, topology, core count, base config) return one
// shared *Plan instead of re-running the full grid-and-bisection sweep
// (~tens of milliseconds per call). Tune is deterministic, so the
// cached plan is byte-identical to a fresh one; callers must treat the
// returned plan as read-only, since concurrent harness shards share it.
// Tuning runs outside the cache lock, so two shards racing on a cold
// key duplicate the work once and agree on the result.
func TuneCached(params scc.Params, topo scc.Topology, p int, base core.Config) *Plan {
	key := planKey{params: params, topo: topo.Fingerprint(), p: p, base: base}
	planCache.mu.Lock()
	pl, ok := planCache.m[key]
	planCache.mu.Unlock()
	if ok {
		return pl
	}
	pl = Tune(params, topo, p, base)
	planCache.mu.Lock()
	if prior, ok := planCache.m[key]; ok {
		pl = prior // keep the first-published plan so all callers alias one
	} else {
		planCache.m[key] = pl
	}
	planCache.mu.Unlock()
	return pl
}

// Choose looks up the planned choice for an operation at a message size.
// ok is false when the operation has no decision table (no modeled
// algorithms); sizes beyond MaxTuneLines use the last band.
func (p *Plan) Choose(op Op, lines int) (Choice, bool) {
	return chooseBand(p.Bands[op], lines)
}

// ChooseOneSided is Choose restricted to the one-sided (OC) family.
func (p *Plan) ChooseOneSided(op Op, lines int) (Choice, bool) {
	return chooseBand(p.OneSidedBands[op], lines)
}

func chooseBand(bands []Band, lines int) (Choice, bool) {
	if len(bands) == 0 {
		return Choice{}, false
	}
	for _, b := range bands {
		if lines <= b.MaxLines {
			return b.Choice, true
		}
	}
	return bands[len(bands)-1].Choice, true
}

// String renders the plan as a compact human-readable table, one line
// per band.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %v, %d cores:\n", p.Topo, p.P)
	for _, op := range Ops() {
		bands := p.Bands[op]
		if len(bands) == 0 {
			continue
		}
		lo := 1
		for _, band := range bands {
			fmt.Fprintf(&b, "  %-10s %6d..%-6d -> %s\n", op, lo, band.MaxLines, band.Choice)
			lo = band.MaxLines + 1
		}
	}
	return b.String()
}
