package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Engine is a deterministic virtual-time scheduler for a fixed set of
// processes. It is single-threaded from the simulation's point of view:
// although each process is a goroutine, exactly one runs at any instant,
// and the engine always picks the runnable process with the smallest
// virtual clock (ties broken by process id). Writes to simulated memory
// are therefore applied in global time order.
type Engine struct {
	procs    []*Proc
	started  bool
	finished int

	// runq holds every runnable process except the one currently
	// executing its step, keyed on (clock, id). The heap is maintained
	// incrementally: start and unblock push, the scheduler pops, and a
	// process that blocks or finishes simply is not pushed back.
	runq runQueue

	// watchers maps a watch key to the processes blocked on it.
	watchers map[WatchKey][]*blockedProc

	// obs, when non-nil, receives scheduling events (block/wake/done
	// instants) and supplies deadlock context. Nil means tracing is off;
	// every emission site guards on that.
	obs *obs.Recorder

	panicVal any // re-panicked on Run if a process panicked
}

// WatchKey identifies a condition a process can block on. Memory
// implementations signal the key when a write may have changed the
// condition's outcome.
type WatchKey struct {
	// Space distinguishes address spaces (e.g. one per MPB).
	Space int
	// Line is the cache-line index within the space.
	Line int
}

type blockedProc struct {
	p    *Proc
	pred func() bool
	// wake is the earliest virtual time the process may resume
	// (typically the effective time of the write that satisfied the
	// predicate).
	wake Time
}

// NewEngine creates an engine with n processes whose ids are 0..n-1.
func NewEngine(n int) *Engine {
	e := &Engine{watchers: make(map[WatchKey][]*blockedProc)}
	e.procs = make([]*Proc, n)
	for i := range e.procs {
		e.procs[i] = newProc(e, i)
	}
	return e
}

// N reports the number of processes.
func (e *Engine) N() int { return len(e.procs) }

// SetObserver attaches a timeline recorder (nil detaches). Call before
// Run; the engine and its processes emit scheduling instants to it.
func (e *Engine) SetObserver(r *obs.Recorder) { e.obs = r }

// Observer returns the attached recorder, or nil when tracing is off.
func (e *Engine) Observer() *obs.Recorder { return e.obs }

// Proc returns process i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Run executes body(p) on every process concurrently in virtual time and
// returns when all processes have finished. It panics if the simulation
// deadlocks (some process blocked forever) or if any process panics.
func (e *Engine) Run(body func(p *Proc)) {
	if e.started {
		panic("sim: Engine.Run called twice; create a new Engine per run")
	}
	e.started = true
	for _, p := range e.procs {
		p.start(body)
		e.runq.push(p)
	}
	e.loop()
	if e.panicVal != nil {
		panic(e.panicVal)
	}
}

// loop drives the scheduler until every process has finished. Each step
// pops the runnable process with the smallest (clock, id) off the run
// queue in O(log n); the process runs until it yields, and is pushed back
// only if it is still runnable (it may instead have blocked — in which
// case a later Signal re-queues it — or finished).
func (e *Engine) loop() {
	for e.finished < len(e.procs) {
		p := e.runq.pop()
		if p == nil {
			e.reportDeadlock()
		}
		p.step()
		if e.panicVal != nil {
			// Unblock remains: tear down by abandoning; goroutines
			// blocked on resume channels are garbage once the engine
			// is dropped (they hold no OS resources).
			return
		}
		if p.state == stateRunnable {
			e.runq.push(p)
		}
	}
}

// Signal re-evaluates every process blocked on key. Processes whose
// predicate now holds become runnable no earlier than at time at.
// Memory implementations call this after applying a write.
func (e *Engine) Signal(key WatchKey, at Time) {
	blocked := e.watchers[key]
	if len(blocked) == 0 {
		return
	}
	remaining := blocked[:0]
	for _, b := range blocked {
		if b.pred() {
			if b.wake < at {
				b.wake = at
			}
			b.pred = nil // release the closure; the record is reused
			b.p.unblock(b.wake)
		} else {
			remaining = append(remaining, b)
		}
	}
	if len(remaining) == 0 {
		delete(e.watchers, key)
	} else {
		e.watchers[key] = remaining
	}
}

// addWatcher registers p as blocked on key with the given predicate. A
// process blocks on at most one key at a time and its watcher entry is
// removed exactly when it is woken, so the record embedded in the Proc
// can be reused — no allocation per block.
func (e *Engine) addWatcher(key WatchKey, p *Proc, pred func() bool) {
	p.blockRec.p = p
	p.blockRec.pred = pred
	p.blockRec.wake = p.now
	e.watchers[key] = append(e.watchers[key], &p.blockRec)
}

// reportDeadlock panics with a description of all blocked processes.
// When tracing is on, the panic message includes each stuck process's
// last few timeline events, so the report says what every blocked core
// was doing — not just that it was blocked.
func (e *Engine) reportDeadlock() {
	var stuck []int
	for _, p := range e.procs {
		if p.state == stateBlocked {
			stuck = append(stuck, p.id)
		}
	}
	sort.Ints(stuck)
	msg := fmt.Sprintf("sim: deadlock — %d/%d processes finished, blocked procs: %v",
		e.finished, len(e.procs), stuck)
	if e.obs != nil {
		var sb strings.Builder
		sb.WriteString(msg)
		for _, id := range stuck {
			fmt.Fprintf(&sb, "\n  proc %d recent events:", id)
			tail := e.obs.Tail(id, deadlockTailEvents)
			if len(tail) == 0 {
				sb.WriteString(" (none recorded)")
			}
			for _, ev := range tail {
				fmt.Fprintf(&sb, "\n    %s", ev)
			}
		}
		msg = sb.String()
	}
	panic(msg)
}

// deadlockTailEvents is how many recent events per stuck process a
// deadlock report includes when tracing is on.
const deadlockTailEvents = 8
