package harness

import (
	"fmt"

	ocbcast "repro"
	"repro/internal/algsel"
	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/occoll"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fig-apps is the whole-application validation of auto-selection: the
// synthetic kernels (internal/workload — data-parallel SGD, stencil halo
// exchange, MapReduce shuffle) are replayed through the public
// System.Replay under the paper-default algorithm stacks and under
// Options.Algorithm "auto", and the experiment reports the whole-app
// speedup per (kernel, mesh). Where fig-crossover bounds per-call regret,
// fig-apps answers the question that matters to a program: does the tuner
// ever make an application slower? The acceptance gate (ocbench apps) is
// auto >= paper-default on every kernel, within noise.

// AppsMeshes bounds the sweep by effort: the quick tier (CI smoke) runs
// the paper's 48-core chip, the full tier adds the 384-core mesh the
// acceptance criteria name.
func AppsMeshes(effort int) []scc.Topology {
	if effort <= 1 {
		return []scc.Topology{scc.SCC()}
	}
	return []scc.Topology{scc.SCC(), scc.Mesh(16, 12)}
}

// AppPoint is one cell of the application sweep: one kernel on one mesh,
// replayed under both algorithm-resolution modes.
type AppPoint struct {
	Kernel  string
	Topo    scc.Topology
	Records int
	// DefaultUs and AutoUs are the whole-app makespans under
	// Options.Algorithm "" and "auto"; Speedup = DefaultUs / AutoUs.
	DefaultUs float64
	AutoUs    float64
	Speedup   float64
}

// MeasureApp replays one kernel trace on a fresh public System and
// returns the whole-application makespan in microseconds. algorithm is
// Options.Algorithm ("", "auto", or a named override). The replay runs
// through the same public path an application would use — New, staged
// private memory, System.Replay — so it exercises registry resolution,
// the decision table and the progress engine end to end. (The public
// construction path always models the L1 cache; cfg's contention flag
// and params are honored.)
func MeasureApp(cfg scc.Config, topo scc.Topology, t *workload.Trace, algorithm string) float64 {
	opts := ocbcast.Options{
		Algorithm:         algorithm,
		DisableContention: !cfg.Contention.Enabled,
		Params:            &cfg.Params,
	}
	if topo.W != scc.SCC().W || topo.H != scc.SCC().H {
		opts.MeshWidth, opts.MeshHeight = topo.W, topo.H
	}
	sys := ocbcast.New(opts)
	st, err := sys.Replay(t)
	if err != nil {
		panic(fmt.Sprintf("harness: kernel replay failed: %v", err))
	}
	return st.MakespanUs
}

// AppsSweep replays every fig-apps kernel on every mesh of the effort
// tier under paper-default and "auto" selection. Cells are sharded across
// ParallelMap workers; like every harness sweep, the simulated values are
// independent of the sharding.
func AppsSweep(cfg scc.Config, effort int) []AppPoint {
	type cell struct {
		topo   scc.Topology
		kernel workload.Kernel
		mode   string
	}
	var cells []cell
	for _, topo := range AppsMeshes(effort) {
		for _, k := range workload.Kernels(topo.NumCores()) {
			for _, mode := range []string{"", "auto"} {
				cells = append(cells, cell{topo, k, mode})
			}
		}
	}
	lat := ParallelMap(len(cells), func(i int) float64 {
		c := cells[i]
		return MeasureApp(cfg, c.topo, c.kernel.Trace, c.mode)
	})
	var out []AppPoint
	for i := 0; i < len(cells); i += 2 {
		c := cells[i]
		p := AppPoint{
			Kernel:    c.kernel.Name,
			Topo:      c.topo,
			Records:   len(c.kernel.Trace.Records),
			DefaultUs: lat[i],
			AutoUs:    lat[i+1],
		}
		p.Speedup = p.DefaultUs / p.AutoUs
		out = append(out, p)
	}
	return out
}

// FigApps renders the application sweep.
func FigApps(cfg scc.Config, effort int) *Table {
	if effort < 1 {
		effort = 1
	}
	return AppsTable(AppsSweep(cfg, effort))
}

// AppsTable renders already-computed application points (shared by the
// fig-apps experiment and the ocbench apps subcommand).
func AppsTable(pts []AppPoint) *Table {
	tbl := &Table{
		Title:   "fig-apps — whole-application replay: paper-default vs auto-selected algorithms",
		Columns: []string{"kernel", "mesh", "cores", "records", "default µs", "auto µs", "speedup"},
		Notes: []string{
			"Each kernel trace (internal/workload) replayed via System.Replay: blocking records",
			"run the public collectives, overlapped records the non-blocking progress engine.",
			"Acceptance: auto never slower than the paper-default stacks (ocbench apps gates it).",
		},
	}
	for _, p := range pts {
		tbl.AddRow(
			p.Kernel,
			fmt.Sprintf("%dx%d", p.Topo.W, p.Topo.H), fmt.Sprint(p.Topo.NumCores()),
			fmt.Sprint(p.Records),
			fmt.Sprintf("%.2f", p.DefaultUs), fmt.Sprintf("%.2f", p.AutoUs),
			fmt.Sprintf("%.3fx", p.Speedup),
		)
	}
	return tbl
}

// ReplayChip replays a trace on a pooled chip with the compat-default
// algorithm stacks, bypassing public System construction: the
// steady-state path the allocation-budget regression pins (a warmed
// replay must not reintroduce per-record garbage) and the golden
// determinism tests rerun. Returns the whole-app makespan in µs.
func ReplayChip(cfg scc.Config, n int, t *workload.Trace) float64 {
	chip := rma.AcquireChipN(cfg, n)
	defer rma.ReleaseChip(chip)
	l := workload.LayoutFor(t, n)
	base := occore.DefaultConfig()
	starts := make([]float64, n)
	ends := make([]float64, n)
	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		col := occoll.New(c, port, base)
		env := algsel.NewEnv(c, port, base, col, occore.NewBroadcaster(c, base))
		r := envRunner{env: env, col: col}
		res := workload.Replay(&r, t, l, workload.ReplayOptions{})
		col.Finish()
		starts[c.ID()], ends[c.ID()] = res.StartUs, res.FinishUs
	})
	first, last := starts[0], ends[0]
	for id := 1; id < n; id++ {
		if starts[id] < first {
			first = starts[id]
		}
		if ends[id] > last {
			last = ends[id]
		}
	}
	return last - first
}

// envRunner drives a replay over an algsel environment with the
// compat-default algorithms — the same mapping the public adapter uses
// under Options.Algorithm "": bcast→ocbcast, reduce/scatter/gather/
// allgather→twosided, allreduce→hybrid, and the one-sided "oc" family
// for the non-blocking path. Algorithm pointers are resolved once at
// construction so the record loop stays allocation-free.
type envRunner struct {
	env *algsel.Env
	col *occoll.Collectives
	blk [6]*algsel.Algorithm
	nbk [6]*algsel.Algorithm
}

// opIndex maps a record op to a fixed slot of the resolved-algorithm
// arrays.
func opIndex(op string) int {
	switch op {
	case workload.OpBcast:
		return 0
	case workload.OpReduce:
		return 1
	case workload.OpAllReduce:
		return 2
	case workload.OpScatter:
		return 3
	case workload.OpGather:
		return 4
	case workload.OpAllGather:
		return 5
	}
	panic(fmt.Sprintf("harness: unknown replay op %q", op))
}

// compatDefaults mirrors the public methods' def arguments in run()/
// issue() calls (ocbcast.go, collectives.go).
var compatDefaults = map[string]string{
	workload.OpBcast:     "ocbcast",
	workload.OpReduce:    "twosided",
	workload.OpAllReduce: "hybrid",
	workload.OpScatter:   "twosided",
	workload.OpGather:    "twosided",
	workload.OpAllGather: "twosided",
}

func (r *envRunner) lookup(op string, nonblocking bool) *algsel.Algorithm {
	idx := opIndex(op)
	cache := &r.blk
	name := compatDefaults[op]
	if nonblocking {
		cache, name = &r.nbk, "oc"
	}
	if cache[idx] == nil {
		a, ok := algsel.Lookup(algsel.Op(op), name)
		if !ok {
			panic(fmt.Sprintf("harness: no registered algorithm %s/%s", op, name))
		}
		cache[idx] = a
	}
	return cache[idx]
}

func (r *envRunner) args(rec workload.Record, addr, scratch int) algsel.Args {
	return algsel.Args{
		Root: rec.Root, Addr: addr, Scratch: scratch,
		Lines: rec.Lines, Reduce: collective.SumInt64,
	}
}

func (r *envRunner) Compute(us float64) { r.env.Core.Compute(sim.Micros(us)) }
func (r *envRunner) Barrier()           { r.env.Port.Barrier() }
func (r *envRunner) NowUs() float64     { return r.env.Core.Now().Microseconds() }

func (r *envRunner) Run(rec workload.Record, addr, scratch int) {
	r.lookup(rec.Op, false).Run(r.env, algsel.Choice{Alg: compatDefaults[rec.Op]}, r.args(rec, addr, scratch))
}

func (r *envRunner) Issue(rec workload.Record, addr, scratch int) workload.Pending {
	return r.lookup(rec.Op, true).Issue(r.env, algsel.Choice{Alg: "oc"}, r.args(rec, addr, scratch))
}
