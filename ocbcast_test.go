package ocbcast_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	ocbcast "repro"
)

func payload(lines int) []byte {
	b := make([]byte, lines*ocbcast.CacheLineBytes)
	for i := range b {
		b[i] = byte(i*17 + 3)
	}
	return b
}

func TestPublicBroadcast(t *testing.T) {
	sys := ocbcast.New(ocbcast.Options{})
	if sys.N() != ocbcast.MaxCores {
		t.Fatalf("default cores = %d, want %d", sys.N(), ocbcast.MaxCores)
	}
	const lines = 100
	p := payload(lines)
	sys.WritePrivate(0, 0, p)
	sys.Run(func(c *ocbcast.Core) {
		c.Broadcast(0, 0, lines)
	})
	for i := 0; i < sys.N(); i++ {
		if !bytes.Equal(sys.ReadPrivate(i, 0, len(p)), p) {
			t.Fatalf("core %d payload corrupted", i)
		}
	}
	// Counters are exposed: root read the message once from off-chip.
	if got := sys.Counters(0).MemReadLines; got != lines {
		t.Fatalf("root off-chip reads = %d, want %d", got, lines)
	}
}

func TestPublicBaselinesAndOptions(t *testing.T) {
	for _, alg := range []string{"binomial", "sag"} {
		sys := ocbcast.New(ocbcast.Options{Cores: 16, K: 3, DisableContention: true})
		const lines = 60
		p := payload(lines)
		sys.WritePrivate(5, 0, p)
		sys.Run(func(c *ocbcast.Core) {
			if alg == "binomial" {
				c.BroadcastBinomial(5, 0, lines)
			} else {
				c.BroadcastScatterAllgather(5, 0, lines)
			}
		})
		for i := 0; i < 16; i++ {
			if !bytes.Equal(sys.ReadPrivate(i, 0, len(p)), p) {
				t.Fatalf("%s: core %d corrupted", alg, i)
			}
		}
	}
}

func TestPublicSendRecvBarrier(t *testing.T) {
	sys := ocbcast.New(ocbcast.Options{Cores: 4})
	p := payload(10)
	sys.WritePrivate(1, 0, p)
	var t3after float64
	sys.Run(func(c *ocbcast.Core) {
		switch c.ID() {
		case 1:
			c.Compute(5)
			c.Send(3, 0, 10)
		case 3:
			c.Recv(1, 0, 10)
		}
		c.Barrier()
		if c.ID() == 0 {
			t3after = c.NowMicros()
		}
	})
	if !bytes.Equal(sys.ReadPrivate(3, 0, len(p)), p) {
		t.Fatal("send/recv corrupted")
	}
	if t3after < 5 {
		t.Fatalf("barrier released core 0 at %.2fµs, before the transfer could finish", t3after)
	}
}

func TestPublicAllReduce(t *testing.T) {
	const n, lines = 8, 2
	sys := ocbcast.New(ocbcast.Options{Cores: n})
	for i := 0; i < n; i++ {
		b := make([]byte, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane*8 < len(b); lane++ {
			binary.LittleEndian.PutUint64(b[lane*8:], uint64(i+1))
		}
		sys.WritePrivate(i, 0, b)
	}
	sys.Run(func(c *ocbcast.Core) {
		c.AllReduce(0, 4096, lines, ocbcast.SumInt64)
	})
	want := uint64(n * (n + 1) / 2)
	for i := 0; i < n; i++ {
		b := sys.ReadPrivate(i, 0, lines*ocbcast.CacheLineBytes)
		for lane := 0; lane*8 < len(b); lane++ {
			if got := binary.LittleEndian.Uint64(b[lane*8:]); got != want {
				t.Fatalf("core %d lane %d = %d, want %d", i, lane, got, want)
			}
		}
	}
}

func TestPublicGatherScatterAllGather(t *testing.T) {
	const n, lines = 6, 1
	bb := lines * ocbcast.CacheLineBytes
	sys := ocbcast.New(ocbcast.Options{Cores: n})
	for i := 0; i < n; i++ {
		blk := payload(lines)
		blk[0] = byte(i)
		sys.WritePrivate(i, i*bb, blk)
	}
	sys.Run(func(c *ocbcast.Core) {
		c.Gather(0, 0, lines)
		c.Barrier()
		c.AllGather(8192, lines) // independent region
	})
	for i := 0; i < n; i++ {
		if got := sys.ReadPrivate(0, i*bb, 1)[0]; got != byte(i) {
			t.Fatalf("gather: root block %d header = %d", i, got)
		}
	}
}

// randPayload is a deterministic pseudo-random buffer (seeded per core).
func randPayload(lines, seed int) []byte {
	b := make([]byte, lines*ocbcast.CacheLineBytes)
	s := uint64(seed)*2654435761 + 12345
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = byte(s >> 56)
	}
	return b
}

// TestAllReduceOCMatchesTwoSidedComposition cross-validates the one-sided
// subsystem: AllReduceOC must produce byte-for-byte the same result as
// the two-sided Reduce + broadcast composition, on random payloads, for
// several fan-outs — exercised on ONE chip so the families' MPB
// coexistence is covered too.
func TestAllReduceOCMatchesTwoSidedComposition(t *testing.T) {
	for _, k := range []int{2, 3, 7} {
		const lines = 13
		nbytes := lines * ocbcast.CacheLineBytes
		const regionA, regionB, scratch = 0, 1 << 16, 1 << 17
		sys := ocbcast.New(ocbcast.Options{K: k})
		for i := 0; i < sys.N(); i++ {
			p := randPayload(lines, 100*k+i)
			sys.WritePrivate(i, regionA, p)
			sys.WritePrivate(i, regionB, p)
		}
		sys.Run(func(c *ocbcast.Core) {
			c.AllReduceOC(regionA, lines, ocbcast.SumInt64)
			// Two-sided composition on identical inputs, same chip.
			c.Reduce(0, regionB, scratch, lines, ocbcast.SumInt64)
			c.BroadcastBinomial(0, regionB, lines)
		})
		for i := 0; i < sys.N(); i++ {
			a := sys.ReadPrivate(i, regionA, nbytes)
			b := sys.ReadPrivate(i, regionB, nbytes)
			if !bytes.Equal(a, b) {
				t.Fatalf("k=%d: core %d AllReduceOC differs from two-sided composition", k, i)
			}
		}
	}
}

// TestPublicOneSidedGatherScatter covers the remaining OC family members
// end to end through the public API.
func TestPublicOneSidedGatherScatter(t *testing.T) {
	const n, lines = 12, 3
	bb := lines * ocbcast.CacheLineBytes
	sys := ocbcast.New(ocbcast.Options{Cores: n, K: 3})
	for i := 0; i < n; i++ {
		sys.WritePrivate(2, i*bb, randPayload(lines, i))
	}
	agBase := 2 * n * bb
	sys.Run(func(c *ocbcast.Core) {
		c.ScatterOC(2, 0, lines)
		blk := c.ReadOwnPrivate(c.ID()*bb, bb)
		c.WriteOwnPrivate(agBase+c.ID()*bb, blk)
		c.AllGatherOC(agBase, lines)
		c.GatherOC(7, agBase, lines) // idempotent on already-complete data
	})
	for i := 0; i < n; i++ {
		want := randPayload(lines, i)
		for cid := 0; cid < n; cid++ {
			if !bytes.Equal(sys.ReadPrivate(cid, agBase+i*bb, bb), want) {
				t.Fatalf("core %d allgather block %d mismatch", cid, i)
			}
		}
	}
}

// TestVirtualTimeDeterminism: repeated identical simulations must yield
// identical virtual-time results (the simulator's core guarantee), for
// several fan-outs.
func TestVirtualTimeDeterminism(t *testing.T) {
	for _, k := range []int{2, 3, 7} {
		const lines = 9
		runOnce := func() ([]float64, []byte) {
			sys := ocbcast.New(ocbcast.Options{K: k})
			times := make([]float64, sys.N())
			for i := 0; i < sys.N(); i++ {
				sys.WritePrivate(i, 0, randPayload(lines, i))
			}
			sys.Run(func(c *ocbcast.Core) {
				c.AllReduceOC(0, lines, ocbcast.SumInt64)
				c.ReduceOC(5, 0, lines, ocbcast.MaxInt64)
				times[c.ID()] = c.NowMicros()
			})
			return times, sys.ReadPrivate(5, 0, lines*ocbcast.CacheLineBytes)
		}
		t1, r1 := runOnce()
		t2, r2 := runOnce()
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Fatalf("k=%d: core %d virtual time differs across runs: %v vs %v", k, i, t1[i], t2[i])
			}
		}
		if !bytes.Equal(r1, r2) {
			t.Fatalf("k=%d: results differ across runs", k)
		}
	}
}

// TestOneSidedLayoutError: fan-outs OC-Bcast alone supports but that
// leave no MPB room for occoll's flags must fail loudly (and only when
// the OC collectives are actually used).
func TestOneSidedLayoutError(t *testing.T) {
	sys := ocbcast.New(ocbcast.Options{Cores: 8, K: 24})
	p := payload(4)
	sys.WritePrivate(0, 0, p)
	sys.Run(func(c *ocbcast.Core) {
		c.Broadcast(0, 0, 4) // OC-Bcast itself still works at k=24
		if c.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("ReduceOC with oversized layout did not panic")
				}
			}()
			c.ReduceOC(0, 0, 4, ocbcast.SumInt64)
		}
	})
	for i := 0; i < sys.N(); i++ {
		if !bytes.Equal(sys.ReadPrivate(i, 0, len(p)), p) {
			t.Fatalf("core %d broadcast payload corrupted", i)
		}
	}
}

func TestPublicModel(t *testing.T) {
	m := ocbcast.Model(nil)
	if got := m.CMpbR(1).Microseconds(); got != 0.136 {
		t.Fatalf("model CMpbR(1) = %v, want 0.136", got)
	}
}

func TestOptionsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid options did not panic")
		}
	}()
	ocbcast.New(ocbcast.Options{K: -1})
}
