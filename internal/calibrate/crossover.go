package calibrate

import (
	"fmt"

	"repro/internal/algsel"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
)

// Crossover calibration. The registry's tuner (internal/algsel) places
// algorithm crossovers — the smallest message size where one algorithm
// overtakes another — from the closed-form model alone. This file
// validates those thresholds the same way calibrate.go validates the
// Table 1 parameters: by measuring the same quantity on the simulator
// and comparing. PredictedCrossover uses only model arithmetic (so it
// also works with *fitted* parameters, closing the fit→predict loop);
// SimulatedCrossover measures both algorithms on a simulated chip.

// Crossover is one located threshold: the smallest message size, in
// cache lines, where algorithm B's latency is at or below algorithm A's.
// Lines is -1 when B never overtakes A within [1, MaxLines].
type Crossover struct {
	Op       algsel.Op
	A, B     string
	MaxLines int
	Lines    int
}

// String formats the threshold like "allreduce: rabenseifner overtakes
// hybrid at 9 lines".
func (c Crossover) String() string {
	if c.Lines < 0 {
		return fmt.Sprintf("%s: %s never overtakes %s up to %d lines", c.Op, c.B, c.A, c.MaxLines)
	}
	return fmt.Sprintf("%s: %s overtakes %s at %d lines", c.Op, c.B, c.A, c.Lines)
}

// latencyFn maps a message size to each algorithm's latency; crossover
// search is generic over it so the predicted (model) and simulated
// searches share one scan.
type latencyFn func(lines int) (aUs, bUs float64)

// findCrossover scans a geometric size grid for the first size where
// B ≤ A and bisects the bracketing interval down to the exact line
// count. It assumes one sign change in [1, maxLines] — true for the
// registered algorithm pairs, whose cost curves differ by slope, not
// oscillation.
func findCrossover(f latencyFn, maxLines int) int {
	check := func(lines int) bool {
		a, b := f(lines)
		return b <= a
	}
	prev := 1
	if check(1) {
		return 1
	}
	for s := 2; ; {
		if s > maxLines {
			s = maxLines
		}
		if check(s) {
			lo, hi := prev, s // lo: A wins, hi: B wins
			for lo+1 < hi {
				mid := (lo + hi) / 2
				if check(mid) {
					hi = mid
				} else {
					lo = mid
				}
			}
			return hi
		}
		if s == maxLines {
			return -1
		}
		prev = s
		s = s * 3 / 2
	}
}

// lookupPair resolves the two algorithm names of an operation.
func lookupPair(op algsel.Op, a, b string) (algA, algB *algsel.Algorithm, err error) {
	algA, okA := algsel.Lookup(op, a)
	algB, okB := algsel.Lookup(op, b)
	if !okA || !okB {
		return nil, nil, fmt.Errorf("calibrate: unknown algorithm pair %s/%s for %s", a, b, op)
	}
	if algA.Model == nil || algB.Model == nil {
		return nil, nil, fmt.Errorf("calibrate: %s/%s for %s lack latency models", a, b, op)
	}
	return algA, algB, nil
}

// PredictedCrossover locates the model's crossover threshold for two
// registered algorithms of an operation on the first p cores of a
// topology, each algorithm evaluated at its tuned (K, chunk). Because it
// is pure arithmetic over a Params value, it accepts fitted parameters
// as readily as configured ones — the round-trip the tests close.
func PredictedCrossover(params scc.Params, topo scc.Topology, p int, base core.Config,
	op algsel.Op, a, b string, maxLines int) (Crossover, error) {
	algA, algB, err := lookupPair(op, a, b)
	if err != nil {
		return Crossover{}, err
	}
	m := model.New(params)
	lat := func(alg *algsel.Algorithm, lines int) float64 {
		ch, _ := algsel.BestChoiceFor(m, topo, p, base, alg, lines)
		return alg.Model(m, topo, p, lines, ch).Microseconds()
	}
	x := findCrossover(func(lines int) (float64, float64) {
		return lat(algA, lines), lat(algB, lines)
	}, maxLines)
	return Crossover{Op: op, A: a, B: b, MaxLines: maxLines, Lines: x}, nil
}

// measureAlg runs one registered algorithm on a fresh simulated chip and
// returns its latency in microseconds (first core's call to last core's
// return). calibrate builds its own lean runner, like Microbench does,
// so the package stays free of the harness layer.
func measureAlg(cfg scc.Config, base core.Config, alg *algsel.Algorithm, ch algsel.Choice, p, lines int) float64 {
	chip := rma.NewChipN(cfg, p)
	msgBytes := lines * scc.CacheLine
	region := (p + 1) * msgBytes
	for c := 0; c < p; c++ {
		buf := make([]byte, region)
		for i := range buf {
			buf[i] = byte(i*5 + c*17 + 1)
		}
		chip.Private(c).Write(0, buf)
	}
	starts := make([]sim.Time, p)
	ends := make([]sim.Time, p)
	chip.Run(func(c *rma.Core) {
		port := rcce.NewPort(c)
		e := algsel.NewEnv(c, port, base, nil, nil)
		port.Barrier()
		starts[c.ID()] = c.Now()
		alg.Run(e, ch, algsel.Args{Root: 0, Addr: 0, Scratch: region, Lines: lines, Reduce: collective.SumInt64})
		ends[c.ID()] = c.Now()
	})
	first, last := starts[0], ends[0]
	for i := 1; i < p; i++ {
		if starts[i] < first {
			first = starts[i]
		}
		if ends[i] > last {
			last = ends[i]
		}
	}
	return (last - first).Microseconds()
}

// SimulatedCrossover locates the same threshold by measurement: both
// algorithms simulated (at their tuned parameters) per probed size. The
// simulator configuration supplies the topology; p of 0 means all cores.
func SimulatedCrossover(cfg scc.Config, base core.Config, op algsel.Op, a, b string, maxLines int) (Crossover, error) {
	algA, algB, err := lookupPair(op, a, b)
	if err != nil {
		return Crossover{}, err
	}
	topo := cfg.Topology()
	p := topo.NumCores()
	m := model.New(cfg.Params)
	lat := func(alg *algsel.Algorithm, lines int) float64 {
		ch, _ := algsel.BestChoiceFor(m, topo, p, base, alg, lines)
		return measureAlg(cfg, base, alg, ch, p, lines)
	}
	x := findCrossover(func(lines int) (float64, float64) {
		return lat(algA, lines), lat(algB, lines)
	}, maxLines)
	return Crossover{Op: op, A: a, B: b, MaxLines: maxLines, Lines: x}, nil
}

// ValidateCrossover locates a threshold both ways and reports whether
// the prediction lands within a factor of the measurement (both -1
// also agrees). Factor 2 is the default acceptance: a crossover is a
// zero of the *difference* of two noisy curves, so its position is far
// more sensitive than the curves themselves; what matters downstream is
// that the regret near the threshold stays small, which fig-crossover
// checks directly.
func ValidateCrossover(cfg scc.Config, base core.Config, op algsel.Op, a, b string, maxLines int, factor float64) (pred, meas Crossover, err error) {
	if factor < 1 {
		return Crossover{}, Crossover{}, fmt.Errorf("calibrate: factor %v must be >= 1", factor)
	}
	pred, err = PredictedCrossover(cfg.Params, cfg.Topology(), cfg.Topology().NumCores(), base, op, a, b, maxLines)
	if err != nil {
		return Crossover{}, Crossover{}, err
	}
	meas, err = SimulatedCrossover(cfg, base, op, a, b, maxLines)
	if err != nil {
		return Crossover{}, Crossover{}, err
	}
	switch {
	case pred.Lines < 0 && meas.Lines < 0:
		return pred, meas, nil
	case pred.Lines < 0 || meas.Lines < 0:
		return pred, meas, fmt.Errorf("calibrate: %v but measurement says %v", pred, meas)
	}
	lo := float64(meas.Lines) / factor
	hi := float64(meas.Lines) * factor
	if f := float64(pred.Lines); f < lo || f > hi {
		return pred, meas, fmt.Errorf("calibrate: predicted %v outside %gx of measured %v", pred, factor, meas)
	}
	return pred, meas, nil
}
