package rma

import (
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Flags are single-cache-line synchronization variables living in MPBs.
// The SCC guarantees 32 B read/write atomicity, so a flag occupies one
// line and needs no locking (paper §5.1). Flag values here are uint64
// sequence numbers (little-endian in the line's first 8 bytes): OC-Bcast
// flags carry the chunk sequence, so they never need resetting on the
// fast path.

// SetFlag writes value into line `line` of core dst's MPB. It is a 1-line
// put whose payload is a register value, so no source read is charged:
// completion = o^mpb_put + C^mpb_w(d).
func (c *Core) SetFlag(dst, line int, value uint64) {
	f := &c.opf
	c.setFlagPre(f, dst, line, value)
	c.proc.AdvanceTo(f.completion)
	c.opPost(f)
}

// ReadFlag reads the flag in line `line` of core src's MPB, charging one
// line read C^mpb_r(d).
func (c *Core) ReadFlag(src, line int) uint64 {
	o := c.beginSpan("flag.read", obs.BucketFlag,
		obs.Arg{Key: "src", Val: int64(src)}, obs.Arg{Key: "line", Val: int64(line)})
	d := c.distMPB(src)
	t0 := c.Now()
	srcPort := c.reservePort(src, t0, 1, false)
	t := t0 + c.CMpbR(d)
	delay := c.finishOp(t, srcPort, sim.Duration(d)*c.chip.Cfg.Params.Lhop, 0)
	_ = delay
	v := c.chip.MPB(src).PeekU64(line, c.Now())
	c.counters().MPBReadLines++
	c.endSpan(o)
	return v
}

// WaitFlag blocks until the flag in this core's own MPB line satisfies
// pred, then charges one local read C^mpb_r(1) — the final successful
// poll. Earlier unsuccessful polls cost no virtual time, matching the
// paper's modelling assumption that flag checking overlaps the wait.
// Sequence-number comparisons should use WaitFlagGE/WaitFlagEQ, whose
// wait path allocates nothing.
func (c *Core) WaitFlag(line int, pred func(uint64) bool) uint64 {
	// The span opens before the wait so blocked time lands in its bucket.
	o := c.beginSpan("flag.wait", obs.BucketWait,
		obs.Arg{Key: "line", Val: int64(line)}, obs.Arg{})
	own := c.chip.MPB(c.id)
	own.WaitU64(c.proc, line, pred)
	return c.finishFlagWait(o, own, line)
}

// WaitFlagGE blocks until the flag is ≥ seq (the common case: flags carry
// monotonically increasing chunk sequence numbers). The comparison rides
// in the MPB's reusable wait record — no closure per call.
func (c *Core) WaitFlagGE(line int, seq uint64) uint64 {
	o := c.beginSpan("flag.wait", obs.BucketWait,
		obs.Arg{Key: "line", Val: int64(line)}, obs.Arg{})
	own := c.chip.MPB(c.id)
	own.WaitU64GE(c.proc, line, seq)
	return c.finishFlagWait(o, own, line)
}

// WaitFlagEQ blocks until the flag is exactly seq — the RCCE handshake
// wait — with the same closure-free path as WaitFlagGE.
func (c *Core) WaitFlagEQ(line int, seq uint64) uint64 {
	o := c.beginSpan("flag.wait", obs.BucketWait,
		obs.Arg{Key: "line", Val: int64(line)}, obs.Arg{})
	own := c.chip.MPB(c.id)
	own.WaitU64EQ(c.proc, line, seq)
	return c.finishFlagWait(o, own, line)
}

// finishFlagWait charges the final successful poll read and closes the
// wait span: the common epilogue of every WaitFlag variant.
func (c *Core) finishFlagWait(o *obs.Recorder, own *mem.MPB, line int) uint64 {
	c.proc.Advance(c.CMpbR(1))
	v := own.PeekU64(line, c.Now())
	ctr := c.counters()
	ctr.MPBReadLines++
	ctr.FlagWaits++
	c.endSpan(o)
	return v
}

// TryFlagGE polls the flag in this core's own MPB line once, without
// blocking. If the flag is ≥ seq it charges the one successful poll read
// C^mpb_r(1) — exactly the final poll WaitFlagGE charges — and reports
// true. A failed probe costs no virtual time (and has no memory side
// effects at all), matching the modelling assumption that flag checking
// overlaps the wait; it is the primitive under the non-blocking
// collectives' Test/Progress path.
func (c *Core) TryFlagGE(line int, seq uint64) bool {
	if !c.ProbeFlagGE(line, seq) {
		return false
	}
	o := c.beginSpan("flag.poll", obs.BucketWait,
		obs.Arg{Key: "line", Val: int64(line)}, obs.Arg{})
	c.proc.Advance(c.CMpbR(1))
	ctr := c.counters()
	ctr.MPBReadLines++
	ctr.FlagWaits++
	c.endSpan(o)
	return true
}

// ProbeFlagGE reports whether the flag in this core's own MPB line is
// already ≥ seq, charging no virtual time either way — the cheap
// pre-check the progress engine runs before context-switching into a
// parked protocol. A false result counts as a failed poll.
func (c *Core) ProbeFlagGE(line int, seq uint64) bool {
	if c.chip.MPB(c.id).ProbeU64(line, c.Now()) >= seq {
		return true
	}
	c.counters().FlagPolls++
	return false
}

// LocalFlag reads a flag from the core's own MPB without charging time —
// for assertions and tests only.
func (c *Core) LocalFlag(line int) uint64 {
	return c.chip.MPB(c.id).PeekU64(line, c.Now())
}

// WriteLocalLine stores a full line into the core's own MPB, charging a
// local line write C^mpb_w(1). Used to initialize buffers and flags.
func (c *Core) WriteLocalLine(line int, data []byte) {
	o := c.beginSpan("line.write", obs.BucketMPB,
		obs.Arg{Key: "line", Val: int64(line)}, obs.Arg{})
	eff := c.Now() + c.LMpbW(1)
	c.chip.MPB(c.id).WriteLine(line, data, eff)
	c.proc.Advance(c.CMpbW(1))
	c.counters().MPBWriteLines++
	c.endSpan(o)
}
