// Command ocbench regenerates the tables and figures of "High-Performance
// RMA-Based Broadcast on the Intel SCC" (SPAA 2012) on the simulated SCC.
//
// Usage:
//
//	ocbench list                 # show available experiments
//	ocbench all                  # run everything
//	ocbench fig8a fig8b table2   # run specific artifacts
//	ocbench fig-allreduce        # one-sided vs two-sided allreduce (§7)
//	ocbench scale                # model vs simulation on 48..384-core meshes
//	ocbench overlap              # non-blocking overlap sweep (fig-overlap)
//	ocbench perf                 # wall-clock simulator throughput -> BENCH_simperf.json
//	ocbench tune                 # decision tables + auto-selection regret -> BENCH_simperf.json
//	ocbench -verify tune         # gate the checked-in crossover table (CI)
//	ocbench apps                 # whole-app kernel replay: default vs auto -> BENCH_simperf.json
//	ocbench -verify apps         # gate the checked-in apps table (CI)
//	ocbench serving              # multi-tenant serving sweep: load vs latency -> BENCH_simperf.json
//	ocbench -verify serving      # gate the checked-in serving table + determinism double-run (CI)
//	ocbench -verify perf         # hot-path perf gate (allocs + throughput) vs the checked-in baseline (CI)
//	ocbench trace -op allreduce  # run one traced collective -> Perfetto JSON + text summary
//
// Flags:
//
//	-effort N        scale repetition counts (default 2)
//	-no-contention   disable the MPB-port contention model
//	-no-cache        disable the L1 model for private-memory reads
//	-cpuprofile F    write a CPU profile of the whole run to F (go tool pprof)
//	-memprofile F    write a heap profile at exit to F
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/harness"
	"repro/internal/scc"
)

// stopProfiles finalizes any profiles requested on the command line; it
// must run before every exit path (os.Exit skips deferred calls, so the
// exit helper below routes through it explicitly).
var stopProfiles = func() {}

// exit finalizes profiles and terminates with the given status.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// startProfiles begins CPU profiling and/or arranges a heap snapshot
// according to the -cpuprofile/-memprofile flags, returning the cleanup
// the exit paths must call. Profiles cover the whole subcommand run —
// point `go tool pprof` at the ocbench binary and the written file.
func startProfiles(cpuProfile, memProfile string) func() {
	var cpuFile *os.File
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot shows live objects
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
}

func main() {
	effort := flag.Int("effort", 2, "repetition-count multiplier (>=1)")
	noContention := flag.Bool("no-contention", false, "disable the MPB contention model")
	noCache := flag.Bool("no-cache", false, "disable the L1 cache model")
	regretMax := flag.Float64("regret-max", 5, "tune: max auto-selection regret in percent before failing")
	verify := flag.Bool("verify", false, "tune/perf: gate against the checked-in BENCH_simperf.json")
	allocMax := flag.Float64("alloc-max-pct", 2, "perf -verify: max allocs-per-simulation drift in percent")
	wallMax := flag.Float64("wall-max-pct", 50, "perf -verify: max wall-clock-per-simulation slowdown in percent")
	allocCap := flag.Float64("alloc-cap", 500, "perf -verify: absolute allocs-per-simulation budget")
	floorPct := flag.Float64("simsps-floor-pct", 50, "perf -verify: min simulations/sec as a percent of the baseline")
	appsMin := flag.Float64("apps-min-speedup", 0.99, "apps: min whole-app auto/default speedup before failing")
	servingMin := flag.Float64("serving-min-ratio", 0.99, "serving: min auto/default saturation-throughput ratio before failing")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	perfLabel := flag.String("perf-label", "dev", "perf: history-entry label (use the PR name; a matching entry is replaced)")
	flag.Usage = usage
	flag.Parse()

	stopProfiles = startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	if *effort < 1 {
		*effort = 1
	}
	cfg := scc.DefaultConfig()
	cfg.Contention.Enabled = !*noContention
	cfg.CacheEnabled = !*noCache

	args := flag.Args()
	if len(args) == 0 {
		usage()
		exit(2)
	}

	var names []string
	switch args[0] {
	case "list":
		fmt.Println("available experiments:")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-10s %s\n", e.Name, e.Desc)
		}
		fmt.Printf("  %-10s %s\n", "perf", "wall-clock simulator throughput -> BENCH_simperf.json")
		fmt.Printf("  %-10s %s\n", "tune", "decision tables + auto-selection regret gate -> BENCH_simperf.json")
		fmt.Printf("  %-10s %s\n", "apps", "whole-app kernel replay speedup gate -> BENCH_simperf.json")
		fmt.Printf("  %-10s %s\n", "serving", "multi-tenant serving sweep + saturation gate -> BENCH_simperf.json")
		fmt.Printf("  %-10s %s\n", "trace", "run one collective with tracing on -> Perfetto JSON + summary")
		return
	case "perf":
		err := error(nil)
		if *verify {
			err = runPerfVerify(cfg, *allocMax, *wallMax, *allocCap, *floorPct)
		} else {
			err = runPerf(cfg, *effort, *perfLabel)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		return
	case "trace":
		if err := runTrace(args[1:], *noContention); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		return
	case "tune":
		err := error(nil)
		if *verify {
			err = runTuneVerify(*regretMax)
		} else {
			err = runTune(cfg, *effort, *regretMax)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		return
	case "apps":
		err := error(nil)
		if *verify {
			err = runAppsVerify(*appsMin)
		} else {
			err = runApps(cfg, *effort, *appsMin)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		return
	case "serving":
		err := error(nil)
		if *verify {
			err = runServingVerify(cfg, *servingMin)
		} else {
			err = runServing(cfg, *effort, *servingMin)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		return
	case "all":
		for _, e := range harness.Registry() {
			names = append(names, e.Name)
		}
	case "scale":
		// Convenience alias for the topology-scaling experiment.
		names = append([]string{"fig-scale"}, args[1:]...)
	case "overlap":
		// Convenience alias for the non-blocking overlap experiment.
		names = append([]string{"fig-overlap"}, args[1:]...)
	default:
		names = args
	}

	for _, name := range names {
		exp, err := harness.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		tables, err := exp.Run(cfg, *effort)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `ocbench — regenerate the SPAA'12 OC-Bcast paper's tables and figures

usage: ocbench [flags] list | all | <experiment>...

`)
	flag.PrintDefaults()
}
