// Package ocbcast is a Go reproduction of "High-Performance RMA-Based
// Broadcast on the Intel SCC" (Petrović, Shahmirzadi, Ropars, Schiper —
// SPAA 2012). It provides a cycle-accurate-style discrete-event model of
// the Intel Single-Chip Cloud Computer — 48 cores by default, 2D-mesh
// NoC, per-core Message Passing Buffers with RMA put/get; the mesh
// dimensions are configuration (Options.MeshWidth/MeshHeight), so chips
// of hundreds of cores simulate with the same code — and, on top of it,
// two complete collective families:
//
//   - the one-sided family: OC-Bcast (the paper's pipelined k-ary tree
//     broadcast over one-sided RMA) and its §7 extensions ReduceOC,
//     AllReduceOC, ScatterOC, GatherOC and AllGatherOC, which pipeline
//     chunks through the MPBs with one-sided gets and combine reduction
//     chunks directly in the MPBs;
//   - the two-sided family: the RCCE_comm baselines the paper evaluated
//     against (binomial tree and scatter-allgather broadcast over
//     two-sided send/receive) plus Reduce, AllReduce, Gather, Scatter
//     and AllGather on the same synchronous substrate.
//
// The basic usage pattern is SPMD, mirroring programming the real SCC:
//
//	sys := ocbcast.New(ocbcast.Options{})
//	sys.WritePrivate(0, 0, payload)       // stage data on core 0
//	sys.Run(func(c *ocbcast.Core) {
//	    c.Broadcast(0, 0, lines)          // all cores call collectives
//	})
//	data := sys.ReadPrivate(47, 0, len(payload))
//
// Virtual time is fully deterministic; c.Now() timestamps taken on
// different cores are directly comparable, like the SCC's global
// counters.
package ocbcast

import (
	"fmt"

	"repro/internal/algsel"
	"repro/internal/collective"
	occore "repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/occoll"
	"repro/internal/rcce"
	"repro/internal/rma"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CacheLineBytes is the SCC's transfer granularity (32 bytes).
const CacheLineBytes = scc.CacheLine

// MaxCores is the real SCC's core count — the capacity of the default
// 6×4 topology. Larger meshes (MeshWidth × MeshHeight) raise the limit
// accordingly.
const MaxCores = scc.NumCores

// Options configure a simulated chip.
type Options struct {
	// MeshWidth and MeshHeight select the chip geometry: a grid of
	// SCC-style tiles (two cores, 16 KB of MPB each) with memory
	// controllers placed as the SCC places them. Both zero means the
	// paper-faithful 6×4 mesh; setting only one panics. The simulator,
	// routing, collectives and model all scale with the mesh, so e.g.
	// MeshWidth: 16, MeshHeight: 12 simulates a 384-core chip.
	MeshWidth, MeshHeight int
	// Cores is the number of simulated cores, 1..MeshWidth×MeshHeight×2.
	// 0 means all cores of the mesh (48 on the default).
	Cores int
	// K is OC-Bcast's propagation-tree fan-out. 0 means the paper's 7.
	K int
	// ChunkLines is OC-Bcast's chunk size Moc. 0 means the paper's 96.
	ChunkLines int
	// Channels is the number of independent MPB lanes for the one-sided
	// collective family — the bound on how many non-blocking collectives
	// (IBcastOC, IAllReduceOC, ...) can be in flight per core at once.
	// 0 or 1 means one lane (the classic layout). Each extra lane costs
	// numBuffers·ChunkLines + 2K+2 MPB lines, so more than one channel
	// usually requires a smaller ChunkLines than the paper's 96.
	Channels int
	// Algorithm selects how the collective methods resolve their
	// implementation through the algorithm registry: "" (default) runs
	// each method's paper-faithful stack, "auto" consults the
	// model-driven decision table (see System.Tune), and a registered
	// name (e.g. "rabenseifner", "ring", "twosided") forces that
	// algorithm wherever the operation registers it. See autotune.go.
	Algorithm string
	// DisableDoubleBuffer turns off the §4.2 double buffering.
	DisableDoubleBuffer bool
	// DisableContention turns off the MPB-port contention model,
	// yielding the paper's contention-free analytic timing (§3.1).
	DisableContention bool
	// DetailedNoC enables per-link packet accounting on the mesh.
	DetailedNoC bool
	// Trace records a full observability timeline of the run — spans for
	// every RMA op and collective, per-core time attribution, resource
	// utilization — retrievable via System.Timeline after Run. Tracing
	// never changes simulated timings; disabled (the default) it costs
	// one nil check per instrumentation point.
	Trace bool
	// Params overrides the Table 1 timing parameters when non-nil.
	Params *scc.Params
}

// System is a simulated SCC chip plus collective-operation state.
type System struct {
	chip  *rma.Chip
	occfg occore.Config
	alg   string
	plan  *algsel.Plan
	obs   *obs.Recorder // non-nil iff Options.Trace
}

// New builds a simulated chip. It panics on invalid options (consistent
// with misconfiguration being a programming error).
func New(opts Options) *System {
	cfg := scc.DefaultConfig()
	if (opts.MeshWidth == 0) != (opts.MeshHeight == 0) {
		panic(fmt.Sprintf("ocbcast: mesh %dx%d: set both MeshWidth and MeshHeight (or neither for the 6x4 default)",
			opts.MeshWidth, opts.MeshHeight))
	}
	if opts.MeshWidth != 0 {
		cfg.Topo = scc.Mesh(opts.MeshWidth, opts.MeshHeight)
	}
	// The RCCE/OC-Bcast MPB line layouts anchor at the paper-standard
	// 256-line per-core share; reject topologies that cannot host them.
	if cfg.Topo.MPBLines < scc.MPBLinesPerCore {
		panic(fmt.Sprintf("ocbcast: MPB share of %d lines is smaller than the %d-line protocol layouts",
			cfg.Topo.MPBLines, scc.MPBLinesPerCore))
	}
	if opts.Params != nil {
		cfg.Params = *opts.Params
	}
	if opts.DisableContention {
		cfg.Contention.Enabled = false
	}
	if opts.DetailedNoC {
		cfg.NoC = scc.NoCDetailed
	}
	n := opts.Cores
	if n == 0 {
		n = cfg.Topo.NumCores()
	}
	occfg := occore.DefaultConfig()
	if opts.K != 0 {
		occfg.K = opts.K
	}
	if opts.ChunkLines != 0 {
		occfg.BufLines = opts.ChunkLines
	}
	occfg.DoubleBuffer = !opts.DisableDoubleBuffer
	occfg.Channels = opts.Channels
	if err := occfg.Validate(); err != nil {
		panic(err)
	}
	if opts.Algorithm != "" && opts.Algorithm != "auto" && !algsel.Known(opts.Algorithm) {
		panic(fmt.Sprintf("ocbcast: unknown algorithm %q (use \"auto\" or a registered name)", opts.Algorithm))
	}
	s := &System{chip: rma.NewChipN(cfg, n), occfg: occfg, alg: opts.Algorithm}
	if opts.Trace {
		s.obs = obs.NewRecorder()
		s.chip.SetObserver(s.obs)
	}
	if s.alg == "auto" {
		s.Tune() // materialize the decision table the cores will consult
	}
	return s
}

// Timeline returns the run's observability record — the event stream,
// per-core time attribution, and end-of-run resource utilization — or
// nil when the System was built without Options.Trace. Call it after
// Run; see the returned Timeline's Attribution, WritePerfetto and
// WriteSummary methods.
func (s *System) Timeline() *obs.Timeline {
	if s.obs == nil {
		return nil
	}
	return obs.Capture(s.obs, s.chip.NCores, s.chip.ResourceUsage())
}

// N reports the number of simulated cores.
func (s *System) N() int { return s.chip.NCores }

// Mesh reports the chip's grid dimensions in tiles (6×4 by default).
func (s *System) Mesh() (w, h int) {
	t := s.chip.Topo()
	return t.W, t.H
}

// WritePrivate stores bytes into core `core`'s private off-chip memory at
// byte address addr, before or after Run.
func (s *System) WritePrivate(core, addr int, data []byte) {
	s.chip.Private(core).Write(addr, data)
}

// ReadPrivate copies n bytes from core `core`'s private memory at addr.
func (s *System) ReadPrivate(core, addr, n int) []byte {
	out := make([]byte, n)
	s.chip.Private(core).Read(out, addr, n)
	return out
}

// Counters returns core `core`'s data-movement counters.
func (s *System) Counters(core int) trace.CoreCounters {
	return s.chip.Counter[core]
}

// Run executes body on every core concurrently in deterministic virtual
// time. A System supports a single Run; build a new System per
// simulation.
func (s *System) Run(body func(c *Core)) {
	colErr := occoll.Validate(s.occfg)
	s.chip.Run(func(rc *rma.Core) {
		port := rcce.NewPort(rc)
		c := &Core{
			rma:     rc,
			port:    port,
			comm:    collective.NewComm(port),
			bc:      occore.NewBroadcaster(rc, s.occfg),
			colErr:  colErr,
			algName: s.alg,
			plan:    s.plan,
		}
		if colErr == nil {
			c.col = occoll.New(rc, port, s.occfg)
		}
		// The registry environment shares the core's engine and
		// broadcaster, so registry-routed calls are byte-identical to
		// the fixed stacks under the default options.
		c.env = algsel.NewEnv(rc, port, s.occfg, c.col, c.bc)
		body(c)
		if c.col != nil {
			// Leaked non-blocking requests panic descriptively here
			// instead of corrupting peers' MPB protocol state.
			c.col.Finish()
		}
	})
}

// Core is the per-core handle available inside Run.
type Core struct {
	rma     *rma.Core
	port    *rcce.Port
	comm    *collective.Comm
	bc      *occore.Broadcaster
	col     *occoll.Collectives
	colErr  error
	env     *algsel.Env
	algName string
	plan    *algsel.Plan
}

// occ returns the one-sided collective state, panicking with the layout
// error when the configured (K, ChunkLines) leave no MPB room for
// occoll's flag block — OC-Bcast alone admits larger fan-outs than the
// full one-sided family does.
func (c *Core) occ() *occoll.Collectives {
	if c.col == nil {
		panic(fmt.Sprintf("ocbcast: one-sided collectives unavailable: %v", c.colErr))
	}
	return c.col
}

// ID reports the core id (0..N-1); N reports the core count.
func (c *Core) ID() int { return c.rma.ID() }

// N reports the number of cores.
func (c *Core) N() int { return c.rma.N() }

// Now reports the core's virtual clock.
func (c *Core) Now() sim.Time { return c.rma.Now() }

// NowMicros reports the virtual clock in microseconds.
func (c *Core) NowMicros() float64 { return c.rma.Now().Microseconds() }

// Compute advances the core's clock by us microseconds of local work.
func (c *Core) Compute(us float64) { c.rma.Compute(sim.Micros(us)) }

// Broadcast runs OC-Bcast: `lines` cache lines from root's private memory
// at byte address addr to the same address on every core. All cores must
// call it with matching arguments. Under Options.Algorithm "auto" (or a
// named override) the registry may select a different broadcast
// algorithm — see autotune.go.
func (c *Core) Broadcast(root, addr, lines int) {
	c.run(algsel.OpBcast, "ocbcast", false, algsel.Args{Root: root, Addr: addr, Lines: lines})
}

// BroadcastBinomial runs the RCCE_comm binomial-tree baseline.
func (c *Core) BroadcastBinomial(root, addr, lines int) {
	c.comm.BcastBinomial(root, addr, lines)
}

// BroadcastScatterAllgather runs the RCCE_comm scatter-allgather baseline.
func (c *Core) BroadcastScatterAllgather(root, addr, lines int) {
	c.comm.BcastScatterAllgather(root, addr, lines)
}

// BroadcastScatterAllgatherOneSided runs the §5.4 one-sided adaptation of
// scatter-allgather (overlapped ring exchanges).
func (c *Core) BroadcastScatterAllgatherOneSided(root, addr, lines int) {
	c.comm.BcastScatterAllgatherOneSided(root, addr, lines)
}

// Send/Recv are RCCE-style two-sided point-to-point operations.
func (c *Core) Send(dst, addr, lines int) { c.port.Send(dst, addr, lines) }

// Recv receives `lines` cache lines from src into private memory at addr.
func (c *Core) Recv(src, addr, lines int) { c.port.Recv(src, addr, lines) }

// Barrier synchronizes all cores.
func (c *Core) Barrier() { c.port.Barrier() }

// Announce starts an MPMD broadcast from this core: receivers need not
// know the arguments — the activation tree delivers a descriptor and an
// inter-core interrupt to every core (the paper's §7 ongoing work).
func (c *Core) Announce(addr, lines int) { c.bc.Announce(addr, lines) }

// HandleAnnounce blocks until an MPMD broadcast activates this core,
// participates, and returns the delivered (root, addr, lines) — what a
// many-core OS service loop would call.
func (c *Core) HandleAnnounce() (root, addr, lines int) { return c.bc.HandleAnnounce() }

// WriteOwnPrivate stores bytes into this core's private memory at addr
// without charging communication time (data preparation; charge compute
// separately if the store pass matters).
func (c *Core) WriteOwnPrivate(addr int, data []byte) {
	c.rma.Chip().Private(c.ID()).Write(addr, data)
}

// ReadOwnPrivate copies n bytes from this core's private memory at addr.
func (c *Core) ReadOwnPrivate(addr, n int) []byte {
	out := make([]byte, n)
	c.rma.Chip().Private(c.ID()).Read(out, addr, n)
	return out
}

// The one-sided RMA primitives underneath everything (paper §2.2): put
// and get move cache lines between private memory and MPBs. Line indices
// address the target MPB (0..255); addresses are 32-byte-aligned private
// memory byte offsets.

// PutToMPB copies `lines` cache lines from this core's private memory at
// srcAddr into core dst's MPB starting at line dstLine (RCCE put).
func (c *Core) PutToMPB(dst, dstLine, srcAddr, lines int) {
	c.rma.PutMemToMPB(dst, dstLine, srcAddr, lines)
}

// GetFromMPB copies `lines` cache lines from core src's MPB starting at
// srcLine into this core's private memory at dstAddr (RCCE get).
func (c *Core) GetFromMPB(src, srcLine, dstAddr, lines int) {
	c.rma.GetMPBToMem(src, srcLine, dstAddr, lines)
}

// GetToOwnMPB copies `lines` cache lines from core src's MPB into this
// core's own MPB — the hop OC-Bcast pipelines down its tree.
func (c *Core) GetToOwnMPB(src, srcLine, dstLine, lines int) {
	c.rma.GetMPBToMPB(src, srcLine, dstLine, lines)
}

// The extension collectives (§7 future work) live in collectives.go, in
// two families: Reduce/AllReduce/Gather/Scatter/AllGather on the
// two-sided RCCE substrate, and ReduceOC/AllReduceOC/GatherOC/ScatterOC/
// AllGatherOC on the one-sided pipelined substrate (internal/occoll).

// Model returns the paper's analytical model for the given parameters
// (Table 1 when p is nil).
func Model(p *scc.Params) model.Model {
	if p == nil {
		return model.New(scc.Table1())
	}
	return model.New(*p)
}
