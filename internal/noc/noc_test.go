package noc

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/sim"
)

func TestTraverseIdleMeshPipelining(t *testing.T) {
	m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
	src, dst := scc.Coord{X: 0, Y: 0}, scc.Coord{X: 3, Y: 0} // 3 links
	// Virtual cut-through: h + n - 1 link-service times.
	got := m.Traverse(0, src, dst, 5)
	want := sim.Time((3 + 5 - 1) * 2 * int(sim.Nanosecond))
	if got != want {
		t.Fatalf("idle traverse finish = %v, want %v", got, want)
	}
}

func TestTraverseZeroPacketsAndSameTile(t *testing.T) {
	m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
	if got := m.Traverse(7, scc.Coord{X: 1, Y: 1}, scc.Coord{X: 2, Y: 1}, 0); got != 7 {
		t.Fatalf("zero packets cost %v, want 7 (no-op)", got)
	}
	if got := m.Traverse(7, scc.Coord{X: 1, Y: 1}, scc.Coord{X: 1, Y: 1}, 4); got != 7 {
		t.Fatalf("same-tile transfer cost %v, want 7 (local router only)", got)
	}
}

func TestTraverseSharedLinkQueues(t *testing.T) {
	m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
	// Two simultaneous transfers share the (2,0)->(3,0) link.
	a := m.Traverse(0, scc.Coord{X: 2, Y: 0}, scc.Coord{X: 3, Y: 0}, 10)
	b := m.Traverse(0, scc.Coord{X: 2, Y: 0}, scc.Coord{X: 3, Y: 0}, 10)
	if b <= a {
		t.Fatalf("second transfer (%v) must queue behind the first (%v)", b, a)
	}
	stats := m.LinkQueueStats()
	if len(stats) != 1 {
		t.Fatalf("expected 1 used link, got %d", len(stats))
	}
	if stats[0].Packets != 20 || stats[0].Queued == 0 {
		t.Fatalf("link stats wrong: %+v", stats[0])
	}
	m.Reset()
	for _, s := range m.LinkQueueStats() {
		if s.Packets != 0 {
			t.Fatalf("reset did not clear link %v", s.Link)
		}
	}
}

func TestDisjointPathsDoNotInterfere(t *testing.T) {
	m := NewMesh(scc.SCC(), 2*sim.Nanosecond)
	a := m.Traverse(0, scc.Coord{X: 0, Y: 0}, scc.Coord{X: 2, Y: 0}, 8)
	// Different row: no shared links under X-Y routing.
	b := m.Traverse(0, scc.Coord{X: 0, Y: 3}, scc.Coord{X: 2, Y: 3}, 8)
	if a != b {
		t.Fatalf("disjoint transfers differ: %v vs %v", a, b)
	}
}
