package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almost(s.StdDev, math.Sqrt(2), 1e-12) {
		t.Fatalf("stddev = %v, want sqrt(2)", s.StdDev)
	}
	if s.P50 != 3 {
		t.Fatalf("median = %v, want 3", s.P50)
	}
	if !almost(s.P95, 4.8, 1e-12) {
		t.Fatalf("p95 = %v, want 4.8", s.P95)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.P50 != 7 || s.P95 != 7 || s.P99 != 7 || s.StdDev != 0 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestQuantileInterpolationEdges(t *testing.T) {
	// Two-point sample: every quantile is a straight line between the
	// endpoints, and the extreme quantiles hit them exactly.
	if got := quantile([]float64{10, 20}, 0); got != 10 {
		t.Fatalf("q=0 of {10,20} = %v, want 10", got)
	}
	if got := quantile([]float64{10, 20}, 1); got != 20 {
		t.Fatalf("q=1 of {10,20} = %v, want 20", got)
	}
	if got := quantile([]float64{10, 20}, 0.99); !almost(got, 19.9, 1e-12) {
		t.Fatalf("q=0.99 of {10,20} = %v, want 19.9", got)
	}

	// 101-point sample 0..100: p99 lands exactly on an element (pos =
	// 0.99·100 = 99, frac 0), so interpolation must not smear it.
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P99 != 99 {
		t.Fatalf("p99 of 0..100 = %v, want 99", s.P99)
	}
	if s.P50 != 50 || s.P95 != 95 {
		t.Fatalf("p50/p95 of 0..100 = %v/%v, want 50/95", s.P50, s.P95)
	}

	// 100-point sample 1..100: p99 falls between the 99th and 100th
	// order statistics (pos = 0.99·99 = 98.01 → 99 + 0.01·1).
	xs = xs[:0]
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	if got := Summarize(xs).P99; !almost(got, 99.01, 1e-9) {
		t.Fatalf("p99 of 1..100 = %v, want 99.01", got)
	}

	// Monotonicity across the summary's quantiles on a skewed sample.
	s = Summarize([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1000})
	if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample did not panic")
		}
	}()
	Summarize(nil)
}

func TestOLSExactFit(t *testing.T) {
	// y = 2 + 3·a − 1.5·b, noiseless.
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{1, a, b})
			y = append(y, 2+3*a-1.5*b)
		}
	}
	beta, r2, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(beta[0], 2, 1e-9) || !almost(beta[1], 3, 1e-9) || !almost(beta[2], -1.5, 1e-9) {
		t.Fatalf("beta = %v, want [2 3 -1.5]", beta)
	}
	if !almost(r2, 1, 1e-12) {
		t.Fatalf("r2 = %v, want 1", r2)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, _, err := OLS(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := OLS([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, _, err := OLS([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := OLS([][]float64{{1, 1}, {2, 2}, {3, 3}}, []float64{1, 2, 3}); err == nil {
		t.Error("singular (collinear) system accepted")
	}
	if _, _, err := OLS([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}

// Property: OLS on noiseless data generated from random coefficients
// recovers them (when the design matrix is well conditioned).
func TestOLSRecoveryProperty(t *testing.T) {
	f := func(c0raw, c1raw int8) bool {
		c0, c1 := float64(c0raw)/8, float64(c1raw)/8
		var x [][]float64
		var y []float64
		for a := 1.0; a <= 12; a++ {
			x = append(x, []float64{1, a})
			y = append(y, c0+c1*a)
		}
		beta, r2, err := OLS(x, y)
		if err != nil {
			return false
		}
		return almost(beta[0], c0, 1e-6) && almost(beta[1], c1, 1e-6) && r2 > 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
