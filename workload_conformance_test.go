package ocbcast_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	ocbcast "repro"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The replay conformance suite pins System.Replay's contract: replaying a
// trace is EXACTLY issuing the documented call sequence by hand — same
// collectives, same addresses (workload.LayoutFor), same overlap slicing
// — so buffers and completion times must match bit for bit. Traces are
// seeded-random over every op, root, payload size and blocking/overlapped
// mix, across mesh shapes up to 8×8, in both scheduler modes.

// conformanceMeshes are the swept chip geometries (tiles are two cores,
// so 8×8 is a 128-core chip).
var conformanceMeshes = [][2]int{{6, 4}, {3, 2}, {8, 8}, {5, 3}}

// randomTrace builds a seeded random trace valid for an n-core chip:
// every op, random roots, 1–6-line payloads, issue deltas and a mix of
// blocking and overlapped records.
func randomTrace(rng *rand.Rand, n, records int) *workload.Trace {
	ops := workload.Ops()
	t := &workload.Trace{}
	for i := 0; i < records; i++ {
		r := workload.Record{
			Op:      ops[rng.Intn(len(ops))],
			Root:    rng.Intn(n),
			Lines:   1 + rng.Intn(6),
			DeltaUs: float64(rng.Intn(40)) / 4,
		}
		if rng.Intn(3) == 0 {
			r.ComputeUs = 1 + float64(rng.Intn(80))/2
		}
		t.Records = append(t.Records, r)
	}
	if err := t.ValidateFor(n); err != nil {
		panic(err)
	}
	return t
}

// stage writes the same deterministic pattern over the full replay
// footprint of every core of a system.
func stage(sys *ocbcast.System, l workload.Layout) {
	buf := make([]byte, l.TotalBytes())
	for core := 0; core < sys.N(); core++ {
		for off := range buf {
			buf[off] = byte(core*31 + off*7 + 11)
		}
		sys.WritePrivate(core, 0, buf)
	}
}

// issueByHand is the documented record-to-method mapping, written out
// longhand against the public API: the reference System.Replay must
// reproduce exactly.
func issueByHand(c *ocbcast.Core, t *workload.Trace, l workload.Layout) float64 {
	c.Barrier()
	for i := range t.Records {
		r := &t.Records[i]
		if r.DeltaUs > 0 {
			c.Compute(r.DeltaUs)
		}
		addr := l.Addr(i)
		if r.ComputeUs > 0 {
			var p *ocbcast.Request
			switch r.Op {
			case workload.OpBcast:
				p = c.IBcastOC(r.Root, addr, r.Lines)
			case workload.OpReduce:
				p = c.IReduceOC(r.Root, addr, r.Lines, ocbcast.SumInt64)
			case workload.OpAllReduce:
				p = c.IAllReduceOC(addr, r.Lines, ocbcast.SumInt64)
			case workload.OpScatter:
				p = c.IScatterOC(r.Root, addr, r.Lines)
			case workload.OpGather:
				p = c.IGatherOC(r.Root, addr, r.Lines)
			case workload.OpAllGather:
				p = c.IAllGatherOC(addr, r.Lines)
			}
			slice := r.ComputeUs / workload.DefaultPolls
			done := false
			for j := 0; j < workload.DefaultPolls; j++ {
				c.Compute(slice)
				if !done && p.Test() {
					done = true
				}
			}
			if !done {
				p.Wait()
			}
		} else {
			switch r.Op {
			case workload.OpBcast:
				c.Broadcast(r.Root, addr, r.Lines)
			case workload.OpReduce:
				c.Reduce(r.Root, addr, l.ScratchAddr, r.Lines, ocbcast.SumInt64)
			case workload.OpAllReduce:
				c.AllReduce(addr, l.ScratchAddr, r.Lines, ocbcast.SumInt64)
			case workload.OpScatter:
				c.Scatter(r.Root, addr, r.Lines)
			case workload.OpGather:
				c.Gather(r.Root, addr, r.Lines)
			case workload.OpAllGather:
				c.AllGather(addr, r.Lines)
			}
		}
	}
	return c.NowMicros()
}

// TestReplayConformance replays seeded random traces and issues the same
// call sequences by hand on identical twin systems: every core's final
// clock and every byte of the replay footprint must agree exactly, on
// every mesh, in both scheduler modes.
func TestReplayConformance(t *testing.T) {
	for _, handoff := range []bool{false, true} {
		for _, mesh := range conformanceMeshes {
			w, h := mesh[0], mesh[1]
			n := w * h * 2
			records := 10
			if n > 64 {
				records = 6
			}
			name := fmt.Sprintf("handoff=%v/%dx%d", handoff, w, h)
			t.Run(name, func(t *testing.T) {
				prev := sim.SetDirectHandoff(handoff)
				defer sim.SetDirectHandoff(prev)
				for seed := int64(1); seed <= 3; seed++ {
					tr := randomTrace(rand.New(rand.NewSource(seed*1000+int64(n))), n, records)
					l := workload.LayoutFor(tr, n)
					opts := ocbcast.Options{MeshWidth: w, MeshHeight: h}

					replaySys := ocbcast.New(opts)
					stage(replaySys, l)
					st, err := replaySys.Replay(tr)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}

					handSys := ocbcast.New(opts)
					stage(handSys, l)
					finish := make([]float64, n)
					handSys.Run(func(c *ocbcast.Core) {
						finish[c.ID()] = issueByHand(c, tr, l)
					})

					for id := 0; id < n; id++ {
						if st.FinishUs[id] != finish[id] {
							t.Fatalf("seed %d core %d: replay finished at %v µs, hand-issued at %v µs",
								seed, id, st.FinishUs[id], finish[id])
						}
						got := replaySys.ReadPrivate(id, 0, l.TotalBytes())
						want := handSys.ReadPrivate(id, 0, l.TotalBytes())
						if !bytes.Equal(got, want) {
							t.Fatalf("seed %d core %d: replayed buffers differ from hand-issued", seed, id)
						}
					}
				}
			})
		}
	}
}
