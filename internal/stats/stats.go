// Package stats provides the small statistical toolkit the calibration
// and experiment harness need: summary statistics and multivariate
// ordinary-least-squares regression (used to re-fit Table 1's model
// parameters from simulated microbenchmarks, as the paper fitted them
// from hardware measurements).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	StdDev         float64
	P50, P95, P99  float64
}

// Summarize computes summary statistics; it panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile reads q from an ascending sample with linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean of a sample.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// OLS fits y ≈ X·β by ordinary least squares via the normal equations
// (XᵀX)β = Xᵀy solved with Gaussian elimination. Rows of x are
// observations; all rows must have the same number of features. Returns
// the coefficient vector and the R² goodness of fit.
func OLS(x [][]float64, y []float64) (beta []float64, r2 float64, err error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, 0, fmt.Errorf("stats: OLS needs matching, non-empty x (%d) and y (%d)", n, len(y))
	}
	k := len(x[0])
	if k == 0 {
		return nil, 0, fmt.Errorf("stats: OLS needs at least one feature")
	}
	for i, row := range x {
		if len(row) != k {
			return nil, 0, fmt.Errorf("stats: row %d has %d features, want %d", i, len(row), k)
		}
	}
	if n < k {
		return nil, 0, fmt.Errorf("stats: underdetermined system: %d observations for %d features", n, k)
	}

	// Normal equations.
	xtx := make([][]float64, k)
	xty := make([]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	for r := 0; r < n; r++ {
		for i := 0; i < k; i++ {
			xty[i] += x[r][i] * y[r]
			for j := 0; j < k; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	beta, err = solve(xtx, xty)
	if err != nil {
		return nil, 0, err
	}

	// R².
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	var ssTot, ssRes float64
	for r := 0; r < n; r++ {
		var pred float64
		for i := 0; i < k; i++ {
			pred += beta[i] * x[r][i]
		}
		ssRes += (y[r] - pred) * (y[r] - pred)
		ssTot += (y[r] - meanY) * (y[r] - meanY)
	}
	if ssTot == 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return beta, r2, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// (a | b).
func solve(a [][]float64, b []float64) ([]float64, error) {
	k := len(a)
	m := make([][]float64, k)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < k; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular system (column %d)", col)
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate below.
		for r := col + 1; r < k; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= k; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back-substitute.
	out := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		v := m[r][k]
		for c := r + 1; c < k; c++ {
			v -= m[r][c] * out[c]
		}
		out[r] = v / m[r][r]
	}
	return out, nil
}
